// Reproduces Figure 6b: ensemble speedup with thread limit 1024 (the
// hardware maximum, §4.2). §4.3's headline observation: the scaling gap is
// most pronounced for AMGmk at this thread limit — the relax kernel
// saturates device memory bandwidth — which this harness asserts.
#include "fig6_common.h"

int main(int argc, char** argv) {
  const std::uint32_t kThreadLimit = 1024;
  const std::uint32_t jobs = dgc::bench::ParseJobsFlag(argc, argv);
  auto series = dgc::bench::RunFig6Panel(kThreadLimit, jobs);
  dgc::bench::CheckPanel(series, kThreadLimit);

  // §4.3: AMGmk@1024 shows the most pronounced scaling gap of the
  // all-counts benchmarks.
  double amgmk_max = 0, others_min = 1e9;
  for (const auto& s : series) {
    if (s.app == "pagerank") continue;  // capped at 4 instances
    if (s.app == "amgmk") {
      amgmk_max = s.MaxSpeedup();
    } else {
      others_min = std::min(others_min, s.MaxSpeedup());
    }
  }
  if (amgmk_max >= others_min) {
    std::fprintf(stderr,
                 "FIG6b CHECK FAILED: AMGmk (%.1fX) should saturate hardest "
                 "at thread limit 1024 (others ≥ %.1fX)\n",
                 amgmk_max, others_min);
    return 1;
  }

  dgc::bench::PrintPanel(series, kThreadLimit);
  dgc::bench::ExportPanelCsv(series, kThreadLimit);
  std::printf("\nqualitative checks: PASS (AMGmk saturates hardest: %.1fX)\n",
              amgmk_max);
  return 0;
}

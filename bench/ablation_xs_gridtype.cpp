// Ablation: XSBench's three lookup acceleration structures under ensemble
// execution. Real XSBench offers the same trade: the unionized grid buys
// the fastest lookup with an O(n_union × n_isotopes) index table, the hash
// grid bounds the search with a small table, and the plain nuclide grid
// pays a full binary search per (nuclide, lookup). Since every structure
// locates the same bracketing index, all runs verify against one host
// reference hash.
#include <cstdio>

#include "apps/common.h"
#include "apps/xsbench.h"
#include "ensemble/experiment.h"
#include "support/str.h"
#include "support/units.h"

using namespace dgc;

int main() {
  apps::RegisterAllApps();
  std::printf("XSBench grid types: 32-instance ensembles, thread limit 32\n");
  std::printf("%-12s %-14s %-12s %-12s %s\n", "grid", "bytes/instance",
              "T1 cycles", "T32 cycles", "speedup@32");

  for (apps::XsGridType type :
       {apps::XsGridType::kUnionized, apps::XsGridType::kHash,
        apps::XsGridType::kNuclide}) {
    ensemble::ExperimentConfig cfg;
    cfg.app = "xsbench";
    cfg.args_for_instance = [type](std::uint32_t i) {
      return std::vector<std::string>{
          "-i", "24", "-g", "256", "-l", "2048",
          "-G", std::string(apps::ToString(type)),
          "-s", StrFormat("%u", i + 1)};
    };
    cfg.instance_counts = {1, 32};
    cfg.thread_limit = 32;
    cfg.spec = sim::DeviceSpec::A100_40GB(512);
    auto series = ensemble::MeasureSpeedup(cfg);
    if (!series.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   std::string(apps::ToString(type)).c_str(),
                   series.status().ToString().c_str());
      return 1;
    }
    apps::XsParams p;
    p.n_isotopes = 24;
    p.n_gridpoints = 256;
    p.n_lookups = 2048;
    p.grid_type = type;
    std::printf("%-12s %-14s %-12llu %-12llu %.2f\n",
                std::string(apps::ToString(type)).c_str(),
                FormatBytes(p.DeviceBytes()).c_str(),
                (unsigned long long)series->points[0].cycles,
                (unsigned long long)series->points[1].cycles,
                series->points[1].speedup);
  }
  std::printf("\nsmaller acceleration tables trade per-lookup search work "
              "for ensemble memory headroom\n");
  return 0;
}

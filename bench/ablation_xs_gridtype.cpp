// Ablation: XSBench's three lookup acceleration structures under ensemble
// execution. Real XSBench offers the same trade: the unionized grid buys
// the fastest lookup with an O(n_union × n_isotopes) index table, the hash
// grid bounds the search with a small table, and the plain nuclide grid
// pays a full binary search per (nuclide, lookup). Since every structure
// locates the same bracketing index, all runs verify against one host
// reference hash.
#include <cstdio>

#include "apps/common.h"
#include "apps/xsbench.h"
#include "fig6_common.h"
#include "ensemble/experiment.h"
#include "support/str.h"
#include "support/units.h"

using namespace dgc;

int main(int argc, char** argv) {
  apps::RegisterAllApps();
  const std::uint32_t jobs = bench::ParseJobsFlag(argc, argv);
  std::printf("XSBench grid types: 32-instance ensembles, thread limit 32\n");
  std::printf("%-12s %-14s %-12s %-12s %s\n", "grid", "bytes/instance",
              "T1 cycles", "T32 cycles", "speedup@32");

  const std::vector<apps::XsGridType> types{apps::XsGridType::kUnionized,
                                            apps::XsGridType::kHash,
                                            apps::XsGridType::kNuclide};
  std::vector<ensemble::ExperimentConfig> configs;
  for (apps::XsGridType type : types) {
    ensemble::ExperimentConfig cfg;
    cfg.app = "xsbench";
    cfg.args_for_instance = [type](std::uint32_t i) {
      return std::vector<std::string>{
          "-i", "24", "-g", "256", "-l", "2048",
          "-G", std::string(apps::ToString(type)),
          "-s", StrFormat("%u", i + 1)};
    };
    cfg.instance_counts = {1, 32};
    cfg.thread_limit = 32;
    cfg.spec = sim::DeviceSpec::A100_40GB(512);
    configs.push_back(std::move(cfg));
  }

  auto all = ensemble::RunSweeps(configs, bench::PanelSweepOptions(jobs));
  if (!all.ok()) {
    std::fprintf(stderr, "failed: %s\n", all.status().ToString().c_str());
    return 1;
  }
  for (std::size_t k = 0; k < types.size(); ++k) {
    const auto& series = (*all)[k];
    apps::XsParams p;
    p.n_isotopes = 24;
    p.n_gridpoints = 256;
    p.n_lookups = 2048;
    p.grid_type = types[k];
    std::printf("%-12s %-14s %-12llu %-12llu %.2f\n",
                std::string(apps::ToString(types[k])).c_str(),
                FormatBytes(p.DeviceBytes()).c_str(),
                (unsigned long long)series.points[0].cycles,
                (unsigned long long)series.points[1].cycles,
                series.points[1].speedup);
  }
  std::printf("\nsmaller acceleration tables trade per-lookup search work "
              "for ensemble memory headroom\n");
  return 0;
}

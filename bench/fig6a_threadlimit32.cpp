// Reproduces Figure 6a: ensemble speedup with thread limit 32 (one warp
// per instance — the hardware scheduler's smallest unit, §4.2).
#include "fig6_common.h"

int main(int argc, char** argv) {
  const std::uint32_t kThreadLimit = 32;
  const std::uint32_t jobs = dgc::bench::ParseJobsFlag(argc, argv);
  auto series = dgc::bench::RunFig6Panel(kThreadLimit, jobs);
  dgc::bench::CheckPanel(series, kThreadLimit);
  dgc::bench::PrintPanel(series, kThreadLimit);
  dgc::bench::ExportPanelCsv(series, kThreadLimit);
  std::printf("\nqualitative checks: PASS\n");
  return 0;
}

// Reproduces Figure 6a: ensemble speedup with thread limit 32 (one warp
// per instance — the hardware scheduler's smallest unit, §4.2).
#include "fig6_common.h"

int main() {
  const std::uint32_t kThreadLimit = 32;
  auto series = dgc::bench::RunFig6Panel(kThreadLimit);
  dgc::bench::CheckPanel(series, kThreadLimit);
  dgc::bench::PrintPanel(series, kThreadLimit);
  dgc::bench::ExportPanelCsv(series, kThreadLimit);
  std::printf("\nqualitative checks: PASS\n");
  return 0;
}

// google-benchmark microbenchmarks for the library's host-side hot paths:
// loader front ends, the arg-script interpreter, and the simulator core.
// These measure the SIMULATOR's throughput (host nanoseconds), not
// simulated GPU cycles.
#include <benchmark/benchmark.h>

#include "apps/common.h"
#include "dgcf/argv.h"
#include "dgcf/libc.h"
#include "dgcf/rpc.h"
#include "ensemble/argfile.h"
#include "ensemble/argscript.h"
#include "ensemble/loader.h"
#include "gpusim/coalesce.h"
#include "gpusim/ctx.h"
#include "gpusim/device.h"
#include "support/arena.h"
#include "support/rng.h"
#include "support/str.h"

using namespace dgc;

namespace {

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.NextU64());
}
BENCHMARK(BM_RngNextU64);

void BM_ArenaAllocate(benchmark::State& state) {
  Arena arena(1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arena.Allocate(48));
    if (arena.bytes_allocated() > (1 << 24)) arena.Reset();
  }
}
BENCHMARK(BM_ArenaAllocate);

void BM_TokenizeCommandLine(benchmark::State& state) {
  const std::string line = "-a 1 -b -c 'data file.bin' --mode=fast -x\\ y";
  for (auto _ : state) benchmark::DoNotOptimize(TokenizeCommandLine(line));
}
BENCHMARK(BM_TokenizeCommandLine);

void BM_ArgfileParse(benchmark::State& state) {
  std::string content;
  for (int i = 0; i < 64; ++i) {
    content += StrFormat("-a %d -b -c data-%d.bin # instance %d\n", i, i, i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ensemble::ParseArgumentLines(content));
  }
}
BENCHMARK(BM_ArgfileParse);

void BM_ArgScriptExpand(benchmark::State& state) {
  const char* script =
      "@seed 42\n"
      "@repeat 64 : -a {i%3+1} -s {rand 1 100} -m {choice small|large} "
      "-k {(i+1)*1000}\n";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ensemble::ExpandScript(script));
  }
}
BENCHMARK(BM_ArgScriptExpand);

void BM_CoalesceContiguous(benchmark::State& state) {
  std::vector<sim::LaneAccess> accesses;
  for (int i = 0; i < 32; ++i) accesses.push_back({0x10000 + std::uint64_t(i) * 8, 8});
  std::vector<std::uint64_t> out;
  for (auto _ : state) {
    sim::CoalesceSectors(accesses, 32, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_CoalesceContiguous);

void BM_CoalesceScattered(benchmark::State& state) {
  Rng rng(3);
  std::vector<sim::LaneAccess> accesses;
  for (int i = 0; i < 32; ++i) accesses.push_back({rng.NextBounded(1 << 20), 8});
  std::vector<std::uint64_t> out;
  for (auto _ : state) {
    sim::CoalesceSectors(accesses, 32, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_CoalesceScattered);

void BM_DeviceMallocFree(benchmark::State& state) {
  sim::DeviceMemory mem(1 << 26);
  for (auto _ : state) {
    auto buf = mem.Allocate(4096);
    benchmark::DoNotOptimize(buf);
    (void)mem.Free(buf->addr);
  }
}
BENCHMARK(BM_DeviceMallocFree);

void BM_ArgvBlockBuild(benchmark::State& state) {
  sim::Device device(sim::DeviceSpec::TestDevice());
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 64; ++i) {
    rows.push_back({"app", "-a", StrFormat("%d", i), "-c",
                    StrFormat("data-%d.bin", i)});
  }
  for (auto _ : state) {
    auto block = dgcf::ArgvBlock::Build(device, rows);
    benchmark::DoNotOptimize(block->argv(63));
  }
}
BENCHMARK(BM_ArgvBlockBuild);

/// Simulator throughput: simulated warp memory instructions per second.
void BM_SimulatorStreamingKernel(benchmark::State& state) {
  sim::Device device(sim::DeviceSpec::TestDevice());
  const std::uint32_t n = 1 << 14;
  auto buf = *device.Malloc(n * sizeof(double));
  auto p = buf.Typed<double>();
  for (auto _ : state) {
    sim::LaunchConfig cfg{.grid = {2, 1, 1}, .block = {64, 1, 1}};
    auto r = device.Launch(cfg, [&](sim::ThreadCtx& ctx) -> sim::DeviceTask<void> {
      for (std::uint32_t i = ctx.block_id * ctx.block_threads + ctx.thread_id;
           i < n; i += ctx.block_threads * ctx.grid_blocks) {
        co_await ctx.Store(p + i, 1.0);
      }
    });
    benchmark::DoNotOptimize(r->cycles);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * n / 32);
}
BENCHMARK(BM_SimulatorStreamingKernel);

/// End-to-end loader cost for a small ensemble of a real app.
void BM_EnsembleLoaderXsbenchSmall(benchmark::State& state) {
  apps::RegisterAllApps();
  for (auto _ : state) {
    sim::Device device(sim::DeviceSpec::TestDevice());
    dgcf::RpcHost rpc(device);
    dgcf::DeviceLibc libc(device);
    dgcf::AppEnv env{&device, &rpc, &libc};
    ensemble::EnsembleOptions opt;
    opt.app = "xsbench";
    for (int i = 0; i < 4; ++i) {
      opt.instance_args.push_back(
          {"-i", "6", "-g", "32", "-l", "64", "-s", StrFormat("%d", i + 1)});
    }
    opt.thread_limit = 32;
    auto run = ensemble::RunEnsemble(env, opt);
    benchmark::DoNotOptimize(run->kernel_cycles);
  }
}
BENCHMARK(BM_EnsembleLoaderXsbenchSmall)->Unit(benchmark::kMillisecond);

/// The hot-path speed gate: one full XSBench ensemble launch at fig6a
/// scale-down, parameterized by instance count. This is the benchmark the
/// CI bench-release job diffs against BENCH_sim_speed.json — it exercises
/// the per-launch path end to end (coalescer, caches, memory system,
/// engine scheduling) with enough simulated work that allocation and
/// indexing costs dominate measurable noise.
void BM_EnsembleLaunchXsbench(benchmark::State& state) {
  apps::RegisterAllApps();
  const int instances = int(state.range(0));
  for (auto _ : state) {
    sim::Device device(sim::DeviceSpec::TestDevice());
    dgcf::RpcHost rpc(device);
    dgcf::DeviceLibc libc(device);
    dgcf::AppEnv env{&device, &rpc, &libc};
    ensemble::EnsembleOptions opt;
    opt.app = "xsbench";
    for (int i = 0; i < instances; ++i) {
      opt.instance_args.push_back({"-i", "12", "-g", "128", "-l", "512", "-s",
                                   StrFormat("%d", i + 1)});
    }
    opt.thread_limit = 32;
    auto run = ensemble::RunEnsemble(env, opt);
    benchmark::DoNotOptimize(run->kernel_cycles);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * instances);
}
BENCHMARK(BM_EnsembleLaunchXsbench)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

/// The same launch through the windowed speculate-then-commit engine
/// (--launch-threads 4). The CI gate for this series is host-aware: on a
/// multi-core runner it demands overlap wins at 16-32 instances; on a
/// single-core runner SpecTeam spawns no workers and the gate only
/// requires the windowed engine to stay within tolerance of the serial
/// series (the degradation contract).
void BM_EnsembleLaunchXsbenchThreaded(benchmark::State& state) {
  apps::RegisterAllApps();
  const int instances = int(state.range(0));
  for (auto _ : state) {
    sim::Device device(sim::DeviceSpec::TestDevice());
    dgcf::RpcHost rpc(device);
    dgcf::DeviceLibc libc(device);
    dgcf::AppEnv env{&device, &rpc, &libc};
    ensemble::EnsembleOptions opt;
    opt.app = "xsbench";
    for (int i = 0; i < instances; ++i) {
      opt.instance_args.push_back({"-i", "12", "-g", "128", "-l", "512", "-s",
                                   StrFormat("%d", i + 1)});
    }
    opt.thread_limit = 32;
    opt.launch_threads = 4;
    auto run = ensemble::RunEnsemble(env, opt);
    benchmark::DoNotOptimize(run->kernel_cycles);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * instances);
}
BENCHMARK(BM_EnsembleLaunchXsbenchThreaded)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

/// Multi-warp speed gate: AMGmk ensembles at fig6b scale-down. With
/// thread_limit 64 every block holds two warps, so this series exercises
/// the paths the xsbench gate cannot: intra-block barriers, shared-memory
/// conflict modelling, and the earliest-block-event speculation rule.
void BM_EnsembleLaunchAmgmk(benchmark::State& state) {
  apps::RegisterAllApps();
  const int instances = int(state.range(0));
  for (auto _ : state) {
    sim::Device device(sim::DeviceSpec::TestDevice());
    dgcf::RpcHost rpc(device);
    dgcf::DeviceLibc libc(device);
    dgcf::AppEnv env{&device, &rpc, &libc};
    ensemble::EnsembleOptions opt;
    opt.app = "amgmk";
    for (int i = 0; i < instances; ++i) {
      opt.instance_args.push_back({"-x", "8", "-y", "8", "-z", "8", "-w", "2",
                                   "-s", StrFormat("%d", i + 1)});
    }
    opt.thread_limit = 64;
    auto run = ensemble::RunEnsemble(env, opt);
    benchmark::DoNotOptimize(run->kernel_cycles);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * instances);
}
BENCHMARK(BM_EnsembleLaunchAmgmk)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

/// The multi-warp launch through the windowed speculate-then-commit
/// engine. Before the earliest-block-event rule this configuration fell
/// back to the serial engine, so this series is the regression gate for
/// the multi-warp speculation ceiling; the CI ratio contract is the same
/// host-aware one as the xsbench threaded series.
void BM_EnsembleLaunchAmgmkThreaded(benchmark::State& state) {
  apps::RegisterAllApps();
  const int instances = int(state.range(0));
  for (auto _ : state) {
    sim::Device device(sim::DeviceSpec::TestDevice());
    dgcf::RpcHost rpc(device);
    dgcf::DeviceLibc libc(device);
    dgcf::AppEnv env{&device, &rpc, &libc};
    ensemble::EnsembleOptions opt;
    opt.app = "amgmk";
    for (int i = 0; i < instances; ++i) {
      opt.instance_args.push_back({"-x", "8", "-y", "8", "-z", "8", "-w", "2",
                                   "-s", StrFormat("%d", i + 1)});
    }
    opt.thread_limit = 64;
    opt.launch_threads = 4;
    auto run = ensemble::RunEnsemble(env, opt);
    benchmark::DoNotOptimize(run->kernel_cycles);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * instances);
}
BENCHMARK(BM_EnsembleLaunchAmgmkThreaded)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

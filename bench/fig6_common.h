// Shared configuration of the Figure 6 reproduction harnesses.
//
// Workloads are scaled 1/512 relative to the paper's A100-40GB testbed
// (capacities AND caches scale together; see DESIGN.md §2/§4), so absolute
// cycle counts are not comparable — the *relative speedups* are.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "apps/common.h"
#include "ensemble/experiment.h"
#include "gpusim/device_spec.h"
#include "support/str.h"
#include "support/thread_pool.h"

namespace dgc::bench {

/// Parses the bench binaries' shared command line: `--jobs N` (sweep
/// worker threads; default one per hardware thread, `--jobs 1` is the
/// fully serial run — output is identical either way). Exits on bad usage.
inline std::uint32_t ParseJobsFlag(int argc, char** argv) {
  std::uint32_t jobs = ThreadPool::DefaultThreads();
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      const auto value = ParseInt(argv[++i]);
      if (!value.ok() || *value < 1) {
        std::fprintf(stderr, "bad --jobs value '%s' (want a count >= 1)\n",
                     argv[i]);
        std::exit(2);
      }
      jobs = std::uint32_t(*value);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [--jobs N]\n"
                  "  --jobs N  concurrent sweep points (default: %u, the\n"
                  "            hardware thread count; 1 = serial)\n",
                  argv[0], ThreadPool::DefaultThreads());
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option '%s' (see --help)\n", argv[i]);
      std::exit(2);
    }
  }
  return jobs;
}

/// Structured per-point progress on stderr so long sweeps are observable.
inline ensemble::SweepOptions PanelSweepOptions(std::uint32_t jobs) {
  ensemble::SweepOptions options;
  options.jobs = jobs;
  options.progress = [](const ensemble::SweepPointEvent& e) {
    if (e.kind == ensemble::SweepPointEvent::Kind::kStarted) {
      std::fprintf(stderr, "[sweep] %s tl=%u n=%u started (%zu/%zu started)\n",
                   e.app.c_str(), e.thread_limit, e.instances,
                   e.points_started, e.points_total);
    } else {
      std::fprintf(stderr,
                   "[sweep] %s tl=%u n=%u %s in %.2fs (%zu/%zu finished)\n",
                   e.app.c_str(), e.thread_limit, e.instances,
                   e.ran ? "finished" : "skipped", e.wall_seconds,
                   e.points_finished, e.points_total);
    }
  };
  return options;
}

inline sim::DeviceSpec Fig6Spec() { return sim::DeviceSpec::A100_40GB(512); }

struct Fig6Benchmark {
  const char* app;
  std::function<std::vector<std::string>(std::uint32_t)> args_for_instance;
  std::vector<std::uint32_t> instance_counts;
};

/// The paper's four benchmarks with per-instance seeds (each instance runs
/// on a different input, §1). Page-Rank includes the 8-instance point so
/// the harness demonstrates the out-of-memory boundary the paper reports.
inline std::vector<Fig6Benchmark> Fig6Benchmarks() {
  return {
      {"xsbench",
       [](std::uint32_t i) {
         return std::vector<std::string>{"-i", "24",   "-g", "256",
                                         "-l", "2048", "-s", StrFormat("%u", i + 1)};
       },
       {1, 2, 4, 8, 16, 32, 64}},
      {"rsbench",
       [](std::uint32_t i) {
         return std::vector<std::string>{"-u", "24", "-w", "16",
                                         "-p", "8",  "-l", "2048",
                                         "-s", StrFormat("%u", i + 1)};
       },
       {1, 2, 4, 8, 16, 32, 64}},
      {"amgmk",
       [](std::uint32_t i) {
         return std::vector<std::string>{"-x", "14", "-y", "14", "-z", "14",
                                         "-s", StrFormat("%u", i + 1)};
       },
       {1, 2, 4, 8, 16, 32, 64}},
      {"pagerank",
       [](std::uint32_t i) {
         return std::vector<std::string>{"-g", "200000", "-d", "10",
                                         "-s", StrFormat("%u", i + 1)};
       },
       {1, 2, 4, 8}},
  };
}

/// Runs one panel of Fig. 6 — all four benchmarks as one pool of
/// independent point-jobs — and returns the series for the qualitative
/// checks. Deterministic for any job count.
inline std::vector<ensemble::SpeedupSeries> RunFig6Panel(
    std::uint32_t thread_limit, std::uint32_t jobs = 1) {
  apps::RegisterAllApps();
  std::vector<ensemble::ExperimentConfig> configs;
  for (const Fig6Benchmark& b : Fig6Benchmarks()) {
    ensemble::ExperimentConfig cfg;
    cfg.app = b.app;
    cfg.args_for_instance = b.args_for_instance;
    cfg.instance_counts = b.instance_counts;
    cfg.thread_limit = thread_limit;
    cfg.spec = Fig6Spec();
    configs.push_back(std::move(cfg));
  }
  auto all = ensemble::RunSweeps(configs, PanelSweepOptions(jobs));
  if (!all.ok()) {
    std::fprintf(stderr, "panel failed: %s\n", all.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*all);
}

/// Asserts the qualitative claims of §4.3 on a panel; aborts on violation
/// so the bench doubles as a regression gate.
inline void CheckPanel(const std::vector<ensemble::SpeedupSeries>& series,
                       std::uint32_t thread_limit) {
  auto fail = [&](const std::string& what) {
    std::fprintf(stderr, "FIG6 CHECK FAILED (tl=%u): %s\n", thread_limit,
                 what.c_str());
    std::exit(1);
  };
  for (const auto& s : series) {
    double prev = 0;
    for (const auto& p : s.points) {
      if (!p.ran) continue;
      // Sub-linear: speedup never exceeds the instance count.
      if (p.speedup > double(p.instances) * 1.005) {
        fail(s.app + " is super-linear");
      }
      // Monotone growth with more instances.
      if (p.speedup + 0.35 < prev) fail(s.app + " speedup regressed");
      prev = std::max(prev, p.speedup);
    }
  }
  // Page-Rank hits the device memory limit past 4 instances (§4.3).
  for (const auto& s : series) {
    if (s.app != "pagerank") continue;
    for (const auto& p : s.points) {
      if (p.instances <= 4 && !p.ran) fail("pagerank OOM below 4 instances");
      if (p.instances > 4 && p.ran) fail("pagerank exceeded the memory cap");
    }
  }
}

/// Writes the panel's CSV next to the binary's working directory.
inline void ExportPanelCsv(const std::vector<ensemble::SpeedupSeries>& series,
                           std::uint32_t thread_limit) {
  const std::string path =
      StrFormat("fig6%s.csv", thread_limit == 32 ? "a" : "b");
  const Status s = ensemble::WriteSpeedupCsv(series, path);
  if (s.ok()) {
    std::printf("csv written: %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "csv export failed: %s\n", s.ToString().c_str());
  }
}

inline void PrintPanel(const std::vector<ensemble::SpeedupSeries>& series,
                       std::uint32_t thread_limit) {
  std::printf("Figure 6%s — relative speedup T1*N/TN, thread limit %u\n",
              thread_limit == 32 ? "a" : "b", thread_limit);
  std::printf("device: %s\n\n", Fig6Spec().name.c_str());
  std::printf("%s", ensemble::FormatSpeedupTable(series).c_str());
  double best = 0;
  for (const auto& s : series) best = std::max(best, s.MaxSpeedup());
  std::printf("\nmax speedup at this thread limit: %.1fX (paper: up to 51X)\n",
              best);
}

}  // namespace dgc::bench

// Extension beyond the paper: the same ensemble sweep on a V100-class
// device (80 SMs, ~60% of the A100's bandwidth). The paper's analysis
// predicts (a) benchmarks limited by bandwidth saturate earlier and
// (b) once the instance count exceeds the SM count, block serialization
// caps even compute-bound ensembles.
#include <cstdio>

#include "apps/common.h"
#include "fig6_common.h"
#include "ensemble/experiment.h"
#include "support/str.h"

using namespace dgc;

int main(int argc, char** argv) {
  apps::RegisterAllApps();
  const std::uint32_t jobs = bench::ParseJobsFlag(argc, argv);

  struct Row {
    const char* app;
    std::function<std::vector<std::string>(std::uint32_t)> args;
  };
  const std::vector<Row> rows = {
      {"xsbench",
       [](std::uint32_t i) {
         return std::vector<std::string>{"-i", "24",   "-g", "256",
                                         "-l", "2048", "-s",
                                         StrFormat("%u", i + 1)};
       }},
      {"amgmk",
       [](std::uint32_t i) {
         return std::vector<std::string>{"-x", "14", "-y", "14", "-z", "14",
                                         "-s", StrFormat("%u", i + 1)};
       }},
  };

  std::printf("A100 vs V100 ensembles, thread limit 1024, speedup at 64 "
              "instances\n");
  std::printf("%-10s %-12s %-12s\n", "benchmark", "A100", "V100");
  // One pool over all (benchmark × device) sweeps; configs stay in
  // row-major order so the series map back per row below.
  std::vector<ensemble::ExperimentConfig> configs;
  for (const Row& row : rows) {
    for (const sim::DeviceSpec& spec :
         {sim::DeviceSpec::A100_40GB(512), sim::DeviceSpec::V100_16GB(204)}) {
      ensemble::ExperimentConfig cfg;
      cfg.app = row.app;
      cfg.args_for_instance = row.args;
      cfg.instance_counts = {1, 64};
      cfg.thread_limit = 1024;
      cfg.spec = spec;
      configs.push_back(std::move(cfg));
    }
  }
  auto all = ensemble::RunSweeps(configs, bench::PanelSweepOptions(jobs));
  if (!all.ok()) {
    std::fprintf(stderr, "failed: %s\n", all.status().ToString().c_str());
    return 1;
  }
  for (std::size_t r = 0; r < rows.size(); ++r) {
    double speedups[2] = {0, 0};
    for (int k = 0; k < 2; ++k) {
      const auto& point = (*all)[r * 2 + std::size_t(k)].points[1];
      speedups[k] = point.ran ? point.speedup : 0.0;
    }
    std::printf("%-10s %-12.1f %-12.1f\n", rows[r].app, speedups[0],
                speedups[1]);
    if (speedups[1] >= speedups[0]) {
      std::fprintf(stderr,
                   "CHECK FAILED: the smaller part must saturate earlier\n");
      return 1;
    }
  }
  std::printf("\nthe smaller device saturates earlier — ensemble scaling is "
              "a device-resource effect, as §4.3 argues\n");
  return 0;
}

// Ablation for §3.1's multi-dimensional mapping: M instances per thread
// block with block shape (thread_limit, M, 1).
//
// The paper argues the mapping raises concurrency when the number of
// resident teams limits the number of concurrent instances. We make that
// regime explicit with a small device (8 SMs × 4 block slots = 32 resident
// blocks) and 128 low-parallelism instances: with M = 1 the ensemble runs
// in ~4 waves of blocks; packing M instances per block keeps every
// instance resident at once.
#include <cstdio>

#include "apps/common.h"
#include "dgcf/libc.h"
#include "dgcf/rpc.h"
#include "ensemble/loader.h"
#include "gpusim/device.h"
#include "support/str.h"

using namespace dgc;

namespace {

sim::DeviceSpec SmallDevice() {
  sim::DeviceSpec s = sim::DeviceSpec::A100_40GB(512);
  s.name = "block-slot-limited device (8 SMs x 4 blocks)";
  s.num_sms = 8;
  s.max_blocks_per_sm = 4;
  s.max_warps_per_sm = 64;
  return s;
}

}  // namespace

int main() {
  apps::RegisterAllApps();
  const std::uint32_t kInstances = 128;
  const std::uint32_t kThreadLimit = 32;

  std::printf("§3.1 multi-dimensional mapping: %u rsbench instances, "
              "thread limit %u\n",
              kInstances, kThreadLimit);
  std::printf("%-18s %-8s %-10s %-14s %s\n", "instances/block", "blocks",
              "resident", "cycles", "speedup vs M=1");

  std::uint64_t base_cycles = 0;
  for (std::uint32_t m : {1u, 2u, 4u, 8u}) {
    sim::Device device(SmallDevice());
    dgcf::RpcHost rpc(device);
    dgcf::DeviceLibc libc(device);
    dgcf::AppEnv env{&device, &rpc, &libc};

    ensemble::EnsembleOptions opt;
    opt.app = "rsbench";
    for (std::uint32_t i = 0; i < kInstances; ++i) {
      opt.instance_args.push_back({"-u", "8", "-w", "8", "-p", "4", "-l",
                                   "256", "-s", StrFormat("%u", i + 1)});
    }
    opt.thread_limit = kThreadLimit;
    opt.teams_per_block = m;

    auto run = ensemble::RunEnsemble(env, opt);
    if (!run.ok() || !run->all_ok()) {
      std::fprintf(stderr, "M=%u failed: %s\n", m,
                   run.ok() ? "instance error" : run.status().ToString().c_str());
      return 1;
    }
    if (m == 1) base_cycles = run->kernel_cycles;
    const std::uint32_t blocks = kInstances / m;
    const std::uint32_t resident = std::min(blocks, 8u * 4u);
    std::printf("%-18u %-8u %-10u %-14llu %.2fx\n", m, blocks, resident,
                (unsigned long long)run->kernel_cycles,
                double(base_cycles) / double(run->kernel_cycles));
  }
  std::printf("\npacking instances into blocks raises concurrency when "
              "block slots are the limit (paper §3.1)\n");
  return 0;
}

// Ablation for §4.3's coalescing observation: ensemble instances walk
// their own heap allocations, and access patterns that don't coalesce
// multiply the sector traffic the shared DRAM must carry.
//
// Part 1: strided vs contiguous streaming under bandwidth-bound load —
// stride s touches ~s× the sectors for the same elements.
// Part 2: heap-allocation alignment — gathers over buffers offset from the
// sector grid fetch an extra sector per batch (the "different heap
// allocations ... typically non-contiguous" cost, in its measurable form).
#include <cstdio>

#include "gpusim/ctx.h"
#include "gpusim/device.h"
#include "support/str.h"

using namespace dgc;
using namespace dgc::sim;

namespace {

struct Measured {
  std::uint64_t cycles;
  std::uint64_t sectors;
  double coalescing;
};

/// Bandwidth-bound streaming: each thread pulls
/// pipelined 32-element batches at the given stride.
Measured StreamKernel(Device& device, std::vector<DevicePtr<double>> bases,
                      std::uint32_t elements_per_block, std::uint32_t stride) {
  LaunchConfig cfg{.grid = {std::uint32_t(bases.size()), 1, 1},
                   .block = {256, 1, 1},
                   .name = "stream"};
  auto result = device.Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    auto p = bases[ctx.block_id];
    double acc = 0;
    constexpr std::uint32_t kChunk = 32;
    for (std::uint32_t i = ctx.thread_id * kChunk; i < elements_per_block;
         i += ctx.block_threads * kChunk) {
      auto g = ctx.Gather<double>();
      for (std::uint32_t j = 0; j < kChunk; ++j) {
        g.Add(p + std::ptrdiff_t(i + j) * stride);
      }
      co_await g;
      for (std::uint32_t j = 0; j < kChunk; ++j) acc += g.Result(j);
    }
    (void)acc;
  });
  DGC_CHECK(result.ok());
  return {result->stats.elapsed_cycles, result->stats.global_sectors,
          result->stats.CoalescingEfficiency()};
}

}  // namespace

int main() {
  const std::uint32_t kBlocks = 16, kElements = 1 << 15;

  std::printf("Part 1 — strided streaming under bandwidth-bound load "
              "(%u blocks x 256 threads)\n", kBlocks);
  std::printf("%-10s %-12s %-12s %-12s %s\n", "stride", "cycles", "sectors",
              "coalescing", "slowdown");
  std::uint64_t base = 0;
  for (std::uint32_t stride : {1u, 2u, 4u, 8u}) {
    Device device(DeviceSpec::A100_40GB(512));
    std::vector<DevicePtr<double>> bases;
    for (std::uint32_t b = 0; b < kBlocks; ++b) {
      auto buf = *device.Malloc(std::uint64_t(kElements) * stride * 8);
      bases.push_back(buf.Typed<double>());
    }
    const Measured m = StreamKernel(device, bases, kElements, stride);
    if (stride == 1) base = m.cycles;
    std::printf("%-10u %-12llu %-12llu %-12.2f %.2fx\n", stride,
                (unsigned long long)m.cycles, (unsigned long long)m.sectors,
                m.coalescing, double(m.cycles) / double(base));
  }

  std::printf("\nPart 2 — sector-aligned vs offset heap allocations\n");
  std::printf("%-22s %-12s %-12s %s\n", "layout", "cycles", "sectors",
              "coalescing");
  Measured aligned{}, offset{};
  for (int pass = 0; pass < 2; ++pass) {
    Device device(DeviceSpec::A100_40GB(512));
    std::vector<DevicePtr<double>> bases;
    for (std::uint32_t b = 0; b < kBlocks; ++b) {
      auto buf = *device.Malloc(std::uint64_t(kElements) * 8 + 64);
      // Second pass: step off the 32-byte sector grid, as data nested in
      // odd-sized heap objects is.
      bases.push_back(pass == 0 ? buf.Typed<double>() : buf.Typed<double>(1));
    }
    const Measured m = StreamKernel(device, bases, kElements, 1);
    (pass == 0 ? aligned : offset) = m;
    std::printf("%-22s %-12llu %-12llu %.2f\n",
                pass == 0 ? "sector-aligned" : "offset by 8 bytes",
                (unsigned long long)m.cycles, (unsigned long long)m.sectors,
                m.coalescing);
  }
  if (offset.sectors <= aligned.sectors) {
    std::fprintf(stderr, "CHECK FAILED: offset layout must cost sectors\n");
    return 1;
  }
  std::printf("\nnon-coalesced / misaligned instance data multiplies sector "
              "traffic on the shared DRAM (paper §4.3)\n");
  return 0;
}

// Ablation for §3.3: running multiple instances in one kernel breaks the
// process-level isolation of mutable globals. A counter global shared by
// all instances races (every instance sees everyone's increments); the
// proposed per-team relocation (IsolatedGlobals) restores correctness.
#include <cstdio>

#include "ensemble/isolation.h"
#include "gpusim/device.h"
#include "gpusim/memcheck.h"
#include "ompx/league.h"

using namespace dgc;
using namespace dgc::sim;

namespace {

struct CounterRun {
  std::vector<std::uint64_t> finals;
  std::uint64_t races = 0;  ///< memcheck cross-instance findings
};

/// Runs 16 "instances"; each increments the global counter 100 times and
/// reports its final value. Correct (isolated) behaviour: every instance
/// reads exactly 100 — and the race detector stays silent.
CounterRun RunCounterEnsemble(ensemble::GlobalsMode mode) {
  Device device(DeviceSpec::A100_40GB(512));
  const std::uint32_t kTeams = 16, kIncrements = 100;

  Memcheck memcheck;
  memcheck.Attach(device.memory());
  ensemble::IsolatedGlobals globals;
  DGC_CHECK(globals.Declare("g_counter", sizeof(std::uint64_t)).ok());
  DGC_CHECK(globals.Materialize(device, kTeams, mode, &memcheck).ok());
  for (std::uint32_t t = 0; t < kTeams; ++t) {
    memcheck.SetTeamInstance(t, std::int32_t(t));
  }

  CounterRun run;
  run.finals.assign(kTeams, 0);
  ompx::TeamsConfig cfg{.num_teams = kTeams, .thread_limit = 32};
  cfg.memcheck = &memcheck;
  auto result = ompx::LaunchTeams(
      device, cfg, [&](ompx::TeamCtx& team) -> DeviceTask<void> {
        auto slot = *globals.Slot<std::uint64_t>(team.team_id, "g_counter");
        for (std::uint32_t i = 0; i < kIncrements; ++i) {
          co_await team.hw->AtomicAdd(slot, std::uint64_t{1});
        }
        run.finals[team.team_id] = co_await team.hw->Load(slot);
      });
  DGC_CHECK(result.ok());
  globals.Release(device);
  run.races = memcheck.report().cross_instance_count;
  return run;
}

}  // namespace

int main() {
  std::printf("§3.3 global-variable isolation: 16 instances x 100 "
              "increments of a global counter\n\n");

  auto shared = RunCounterEnsemble(ensemble::GlobalsMode::kShared);
  auto isolated = RunCounterEnsemble(ensemble::GlobalsMode::kIsolated);

  int shared_correct = 0, isolated_correct = 0;
  for (std::size_t i = 0; i < shared.finals.size(); ++i) {
    shared_correct += (shared.finals[i] == 100);
    isolated_correct += (isolated.finals[i] == 100);
  }
  std::printf("%-28s correct instances: %2d / 16   races flagged: %5llu   "
              "(sample finals: %llu, %llu, %llu)\n",
              "shared global (legacy)", shared_correct,
              (unsigned long long)shared.races,
              (unsigned long long)shared.finals[0],
              (unsigned long long)shared.finals[7],
              (unsigned long long)shared.finals[15]);
  std::printf("%-28s correct instances: %2d / 16   races flagged: %5llu   "
              "(sample finals: %llu, %llu, %llu)\n",
              "per-team replicas (§3.3)", isolated_correct,
              (unsigned long long)isolated.races,
              (unsigned long long)isolated.finals[0],
              (unsigned long long)isolated.finals[7],
              (unsigned long long)isolated.finals[15]);

  if (isolated_correct != 16) {
    std::fprintf(stderr, "CHECK FAILED: isolation must restore correctness\n");
    return 1;
  }
  if (shared_correct == 16) {
    std::fprintf(stderr, "CHECK FAILED: the shared layout should interfere\n");
    return 1;
  }
  if (shared.races == 0) {
    std::fprintf(stderr,
                 "CHECK FAILED: memcheck must flag the shared-global races\n");
    return 1;
  }
  if (isolated.races != 0) {
    std::fprintf(stderr,
                 "CHECK FAILED: isolated replicas must not race (%llu)\n",
                 (unsigned long long)isolated.races);
    return 1;
  }
  std::printf("\nrelocating globals to team-local replicas restores "
              "instance isolation (paper §3.3)\n");
  return 0;
}

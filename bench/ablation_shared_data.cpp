// Ablation for the shared read-only data segment facility: a *replica*
// ensemble (every instance runs the SAME input — a parameter study's
// common case) measured with --share-data on vs off. Sharing collapses
// the duplicated read-only inputs (XS grids, pole tables, CSR matrices)
// to one physical copy, so the per-instance incremental footprint drops
// to the private buffers and the maximum concurrent instance count rises
// to the paper's Fig. 6 capacity and beyond.
#include <cstdio>
#include <string>
#include <vector>

#include "fig6_common.h"
#include "support/units.h"

using namespace dgc;

namespace {

struct AblationApp {
  const char* app;
  std::vector<std::string> args;  ///< identical for every instance
};

/// Workloads tuned so 256 duplicated replicas exceed the Fig. 6 device
/// capacity (1/512-scaled A100) while 256 shared replicas fit: the
/// read-only inputs dominate each app's footprint.
std::vector<AblationApp> AblationApps() {
  return {
      {"xsbench", {"-i", "24", "-g", "256", "-l", "256"}},
      {"rsbench", {"-u", "32", "-w", "64", "-p", "16", "-l", "256"}},
      {"amgmk", {"-x", "14", "-y", "14", "-z", "14"}},
      {"pagerank", {"-g", "10000", "-d", "10"}},
  };
}

std::vector<std::uint32_t> Counts() { return {1, 4, 16, 64, 128, 256}; }

/// Largest instance count whose point ran (0 = none).
std::uint32_t MaxRan(const ensemble::SpeedupSeries& s) {
  std::uint32_t best = 0;
  for (const auto& p : s.points) {
    if (p.ran) best = std::max(best, p.instances);
  }
  return best;
}

const ensemble::SpeedupPoint* FindPoint(const ensemble::SpeedupSeries& s,
                                        std::uint32_t n) {
  for (const auto& p : s.points) {
    if (p.instances == n) return &p;
  }
  return nullptr;
}

/// Incremental device memory per added instance between the 1-instance
/// point and the largest shared point that also ran duplicated.
double PerInstanceBytes(const ensemble::SpeedupSeries& s, std::uint32_t n) {
  const ensemble::SpeedupPoint* base = FindPoint(s, 1);
  const ensemble::SpeedupPoint* point = FindPoint(s, n);
  if (base == nullptr || point == nullptr || !base->ran || !point->ran) {
    return 0.0;
  }
  return double(point->peak_mem_bytes - base->peak_mem_bytes) / double(n - 1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t jobs = bench::ParseJobsFlag(argc, argv);
  apps::RegisterAllApps();

  const auto apps_list = AblationApps();
  std::vector<ensemble::ExperimentConfig> configs;
  for (const AblationApp& a : apps_list) {
    for (const bool share : {false, true}) {
      ensemble::ExperimentConfig cfg;
      cfg.app = a.app;
      cfg.args_for_instance = [args = a.args](std::uint32_t) { return args; };
      cfg.instance_counts = Counts();
      cfg.thread_limit = 32;
      cfg.spec = bench::Fig6Spec();
      cfg.share_data = share;
      configs.push_back(std::move(cfg));
    }
  }
  auto all = ensemble::RunSweeps(configs, bench::PanelSweepOptions(jobs));
  if (!all.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n", all.status().ToString().c_str());
    return 1;
  }

  std::printf("shared read-only data segments — replica ensembles, device %s "
              "(%s)\n\n",
              bench::Fig6Spec().name.c_str(),
              FormatBytes(bench::Fig6Spec().global_memory_bytes).c_str());
  std::printf("%-10s %-11s %9s %14s %16s %14s\n", "benchmark", "layout",
              "max n", "peak @ max n", "bytes/instance", "bytes saved");

  bool ok = true;
  auto fail = [&](const std::string& what) {
    std::fprintf(stderr, "SHARED-DATA CHECK FAILED: %s\n", what.c_str());
    ok = false;
  };

  for (std::size_t a = 0; a < apps_list.size(); ++a) {
    const ensemble::SpeedupSeries& dup = (*all)[2 * a];
    const ensemble::SpeedupSeries& shared = (*all)[2 * a + 1];
    const std::string app = apps_list[a].app;

    const std::uint32_t dup_max = MaxRan(dup);
    const std::uint32_t shared_max = MaxRan(shared);
    // The per-instance comparison uses the largest count both layouts ran.
    std::uint32_t common = 0;
    for (const std::uint32_t n : Counts()) {
      if (n > 1 && n <= dup_max && n <= shared_max) common = n;
    }

    for (const bool share : {false, true}) {
      const ensemble::SpeedupSeries& s = share ? shared : dup;
      const std::uint32_t max_n = share ? shared_max : dup_max;
      const ensemble::SpeedupPoint* at_max = FindPoint(s, max_n);
      const ensemble::SpeedupPoint* at_common = FindPoint(s, common);
      std::printf("%-10s %-11s %9u %14s %16s %14s\n", app.c_str(),
                  share ? "shared" : "duplicated", max_n,
                  at_max != nullptr
                      ? FormatBytes(at_max->peak_mem_bytes).c_str()
                      : "-",
                  common != 0
                      ? FormatBytes(std::uint64_t(PerInstanceBytes(s, common)))
                            .c_str()
                      : "-",
                  at_common != nullptr
                      ? FormatBytes(at_common->shared_bytes_saved).c_str()
                      : "-");
    }

    // Tentpole claims: sharing reaches the full 256-replica ensemble on
    // every app; the duplicated layout hits the device capacity first.
    if (shared_max < 256) {
      fail(app + ": shared layout capped at " + StrFormat("%u", shared_max) +
           " instances (want 256)");
    }
    if (dup_max >= 256) {
      fail(app + ": duplicated layout unexpectedly fit 256 instances — the "
                 "workload no longer exercises the capacity boundary");
    }
    if (common != 0) {
      const double per_dup = PerInstanceBytes(dup, common);
      const double per_shared = PerInstanceBytes(shared, common);
      if (!(per_shared < per_dup)) {
        fail(app + StrFormat(": per-instance memory did not shrink "
                             "(shared %.0f vs duplicated %.0f bytes)",
                             per_shared, per_dup));
      }
      const ensemble::SpeedupPoint* sp = FindPoint(shared, common);
      if (sp != nullptr && sp->shared_bytes_saved == 0) {
        fail(app + ": shared run reported no bytes saved");
      }
    } else {
      fail(app + ": no common instance count ran in both layouts");
    }
  }

  if (!ok) return 1;
  std::printf("\nsharing read-only inputs raises the max replica count to "
              "256+ on every app (duplicated layout OOMs first)\n");
  return 0;
}

// Ablation for §4.3's explanation of the AMGmk scaling gap: the relax
// kernel's ensemble saturates device memory bandwidth. Sweeping the DRAM
// byte rate moves the 32-instance speedup accordingly — the plateau is a
// bandwidth wall, not a scheduling artifact.
#include <cstdio>

#include "apps/common.h"
#include "fig6_common.h"
#include "ensemble/experiment.h"
#include "support/str.h"

using namespace dgc;

int main(int argc, char** argv) {
  apps::RegisterAllApps();
  const std::uint32_t jobs = bench::ParseJobsFlag(argc, argv);
  std::printf("AMGmk ensemble speedup at 32 instances, thread limit 1024, "
              "vs DRAM bandwidth\n");
  std::printf("%-22s %-14s %-10s %s\n", "DRAM bytes/cycle", "T32 cycles",
              "speedup", "DRAM traffic");

  const std::vector<double> bandwidths{275.0, 550.0, 1100.0, 2200.0, 4400.0};
  std::vector<ensemble::ExperimentConfig> configs;
  for (double bw : bandwidths) {
    ensemble::ExperimentConfig cfg;
    cfg.app = "amgmk";
    cfg.args_for_instance = [](std::uint32_t i) {
      return std::vector<std::string>{"-x", "14", "-y", "14", "-z", "14",
                                      "-s", StrFormat("%u", i + 1)};
    };
    cfg.instance_counts = {1, 32};
    cfg.thread_limit = 1024;
    cfg.spec = sim::DeviceSpec::A100_40GB(512);
    cfg.spec.dram_bytes_per_cycle = bw;
    configs.push_back(std::move(cfg));
  }

  auto all = ensemble::RunSweeps(configs, bench::PanelSweepOptions(jobs));
  if (!all.ok()) {
    std::fprintf(stderr, "failed: %s\n", all.status().ToString().c_str());
    return 1;
  }
  double prev = 0;
  for (std::size_t k = 0; k < bandwidths.size(); ++k) {
    const auto& p32 = (*all)[k].points[1];
    std::printf("%-22.0f %-14llu %-10.2f %s\n", bandwidths[k],
                (unsigned long long)p32.cycles, p32.speedup,
                FormatBytes(p32.stats.dram_bytes).c_str());
    if (p32.speedup + 0.25 < prev) {
      std::fprintf(stderr, "CHECK FAILED: speedup should rise with bandwidth\n");
      return 1;
    }
    prev = p32.speedup;
  }
  std::printf("\nspeedup scales with DRAM bandwidth: the ensemble plateau "
              "is a bandwidth wall (paper §4.3)\n");
  return 0;
}

#include "ensemble/isolation.h"

#include <cstring>

#include "support/log.h"
#include "support/str.h"

namespace dgc::ensemble {

Status IsolatedGlobals::Declare(std::string name, std::uint64_t bytes,
                                const void* init) {
  if (materialized_) {
    return Status(ErrorCode::kFailedPrecondition,
                  "cannot declare globals after Materialize");
  }
  if (bytes == 0) {
    return Status(ErrorCode::kInvalidArgument, "zero-sized global");
  }
  if (offsets_.count(name) != 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "global '" + name + "' declared twice");
  }
  Declaration decl;
  decl.bytes = bytes;
  if (init != nullptr) {
    decl.init.resize(bytes);
    std::memcpy(decl.init.data(), init, bytes);
  }
  // 16-byte alignment within the segment keeps any scalar type aligned.
  total_bytes_ = (total_bytes_ + 15) & ~std::uint64_t(15);
  offsets_.emplace(name, total_bytes_);
  total_bytes_ += bytes;
  decls_.emplace_back(std::move(name), std::move(decl));
  return Status::Ok();
}

Status IsolatedGlobals::Materialize(sim::Device& device,
                                    std::uint32_t instances,
                                    GlobalsMode mode,
                                    sim::Memcheck* memcheck) {
  if (materialized_) {
    return Status(ErrorCode::kFailedPrecondition, "already materialized");
  }
  if (instances == 0) {
    return Status(ErrorCode::kInvalidArgument, "need at least one instance");
  }
  if (decls_.empty()) {
    return Status(ErrorCode::kFailedPrecondition, "no globals declared");
  }
  mode_ = mode;
  const std::uint32_t replicas =
      mode == GlobalsMode::kIsolated ? instances : 1;
  segments_.reserve(replicas);
  for (std::uint32_t r = 0; r < replicas; ++r) {
    auto seg = device.Malloc(total_bytes_);
    if (!seg.ok()) {
      Release(device);
      return Status(seg.status().code(),
                    StrFormat("globals replica %u: %s", r,
                              seg.status().message().c_str()));
    }
    std::memset(seg->host, 0, seg->bytes);
    for (const auto& [name, decl] : decls_) {
      if (!decl.init.empty()) {
        std::memcpy(seg->host + offsets_.at(name), decl.init.data(),
                    decl.bytes);
      }
    }
    if (memcheck != nullptr) {
      if (mode == GlobalsMode::kIsolated) {
        memcheck->TagRegion(seg->addr, std::int32_t(r),
                            StrFormat("global segment (instance %u)", r));
      } else {
        memcheck->TagRegion(seg->addr, sim::kSharedOwner, "globals (shared)");
      }
    }
    segments_.push_back(*seg);
  }
  materialized_ = true;
  return Status::Ok();
}

StatusOr<sim::DeviceBuffer> IsolatedGlobals::Segment(
    std::uint32_t instance) const {
  if (!materialized_) {
    return Status(ErrorCode::kFailedPrecondition, "globals not materialized");
  }
  if (mode_ == GlobalsMode::kShared) return segments_[0];
  if (instance >= segments_.size()) {
    return Status(ErrorCode::kInvalidArgument,
                  StrFormat("instance %u out of range (%zu replicas)",
                            instance, segments_.size()));
  }
  return segments_[instance];
}

void IsolatedGlobals::Release(sim::Device& device) {
  for (const sim::DeviceBuffer& seg : segments_) {
    const Status s = device.Free(seg.addr);
    if (!s.ok()) DGC_LOG(kError) << "globals teardown: " << s.ToString();
  }
  segments_.clear();
  materialized_ = false;
}

}  // namespace dgc::ensemble

#include "ensemble/metrics.h"

#include <fstream>

#include "gpusim/profiler.h"
#include "support/json.h"
#include "support/str.h"

namespace dgc::ensemble {

namespace {

std::string U64(std::uint64_t v) {
  return StrFormat("%llu", (unsigned long long)v);
}

/// Fixed-precision doubles keep the document byte-stable across platforms
/// (printf of finite doubles at fixed precision is deterministic).
std::string F6(double v) { return StrFormat("%.6f", v); }

/// Derived rate: fixed-precision number, or null on a zero denominator
/// (the JSON spelling of ToString's "n/a").
std::string RateOrNull(std::uint64_t num, std::uint64_t den) {
  if (den == 0) return "null";
  return F6(double(num) / double(den));
}

/// The shared counter block of "launch", "per_instance" entries and
/// "unattributed". One fixed order; `derived` adds the rate fields.
void AppendCounters(std::string& out, const std::string& indent,
                    const sim::LaunchStats& s, bool derived) {
  auto field = [&](const char* name, const std::string& value, bool last) {
    out += indent + "\"" + name + "\": " + value + (last ? "\n" : ",\n");
  };
  field("elapsed_cycles", U64(s.elapsed_cycles), false);
  field("blocks_launched", U64(s.blocks_launched), false);
  field("warp_instructions", U64(s.warp_instructions), false);
  field("compute_instructions", U64(s.compute_instructions), false);
  field("load_instructions", U64(s.load_instructions), false);
  field("store_instructions", U64(s.store_instructions), false);
  field("atomic_instructions", U64(s.atomic_instructions), false);
  field("external_calls", U64(s.external_calls), false);
  field("barrier_arrivals", U64(s.barrier_arrivals), false);
  field("divergent_replays", U64(s.divergent_replays), false);
  field("global_sectors", U64(s.global_sectors), false);
  field("ideal_sectors", U64(s.ideal_sectors), false);
  field("l1_hits", U64(s.l1_hits), false);
  field("l1_misses", U64(s.l1_misses), false);
  field("l2_hits", U64(s.l2_hits), false);
  field("l2_misses", U64(s.l2_misses), false);
  field("dram_bytes", U64(s.dram_bytes), false);
  field("dram_row_hits", U64(s.dram_row_hits), false);
  field("dram_row_misses", U64(s.dram_row_misses), false);
  field("smem_accesses", U64(s.smem_accesses), false);
  field("smem_bank_conflicts", U64(s.smem_bank_conflicts), false);
  field("dram_queue_cycles", U64(s.dram_queue_cycles), false);
  field("l2_queue_cycles", U64(s.l2_queue_cycles), false);
  field("barrier_stall_cycles", U64(s.barrier_stall_cycles), false);
  field("compute_cycles_issued", U64(s.compute_cycles_issued), false);
  field("memcheck_findings", U64(s.memcheck_findings), false);
  field("lane_traps", U64(s.lane_traps), false);
  field("watchdog_traps", U64(s.watchdog_traps), !derived);
  if (derived) {
    field("coalescing_efficiency", F6(s.CoalescingEfficiency()), false);
    field("l1_hit_rate", RateOrNull(s.l1_hits, s.l1_hits + s.l1_misses),
          false);
    field("l2_hit_rate", RateOrNull(s.l2_hits, s.l2_hits + s.l2_misses),
          false);
    field("dram_row_hit_rate",
          RateOrNull(s.dram_row_hits, s.dram_row_hits + s.dram_row_misses),
          true);
  }
}

void AppendTimeline(std::string& out, const sim::Profiler& profiler) {
  out += "  \"timeline\": {\n";
  out += "    \"sample_interval\": " + U64(profiler.sample_interval()) + ",\n";
  out += "    \"dropped_samples\": " + U64(profiler.dropped_samples()) + ",\n";
  out += "    \"samples\": [";
  const auto& samples = profiler.timeline();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const sim::TimelineSample& s = samples[i];
    out += i == 0 ? "\n" : ",\n";
    out += "      {\"cycle\": " + U64(s.cycle);
    out += ", \"wave\": " + U64(s.wave);
    out += ", \"active_warps\": " + U64(s.active_warps);
    out += ", \"resident_blocks\": " + U64(s.resident_blocks);
    out += ", \"warp_instructions\": " + U64(s.warp_instructions);
    out += ", \"dram_bw_occupancy\": " + F6(s.dram_bw_occupancy);
    out += ", \"l2_bw_occupancy\": " + F6(s.l2_bw_occupancy);
    out += ", \"stalls\": {\"dram_queue\": " + U64(s.dram_queue_stall);
    out += ", \"l2_queue\": " + U64(s.l2_queue_stall);
    out += ", \"barrier\": " + U64(s.barrier_stall);
    out += ", \"bank_conflict\": " + U64(s.bank_conflict_replays);
    out += ", \"divergence\": " + U64(s.divergence_replays);
    out += "}}";
  }
  if (!samples.empty()) out += "\n    ";
  out += "]\n";
  out += "  }\n";
}

}  // namespace

std::string FormatMetricsJson(const MetricsInfo& info,
                              const dgcf::RunResult& run,
                              const sim::Profiler* profiler) {
  std::string out = "{\n";
  out += "  \"schema\": \"dgc-metrics-v1\",\n";
  out += "  \"app\": \"" + JsonEscape(info.app) + "\",\n";
  out += "  \"device\": \"" + JsonEscape(info.device) + "\",\n";
  out += "  \"thread_limit\": " + U64(info.thread_limit) + ",\n";
  out += "  \"instances\": " + U64(info.instances) + ",\n";
  out += "  \"teams_per_block\": " + U64(info.teams_per_block) + ",\n";
  out += "  \"waves\": " + U64(run.waves) + ",\n";
  out += "  \"kernel_cycles\": " + U64(run.kernel_cycles) + ",\n";
  out += "  \"transfer_cycles\": " + U64(run.transfer_cycles) + ",\n";

  const sim::DeviceMemSnapshot& mem = run.device_mem;
  out += "  \"device_mem\": {\n";
  out += "    \"capacity\": " + U64(mem.capacity) + ",\n";
  out += "    \"peak_bytes\": " + U64(mem.peak_bytes) + ",\n";
  out += "    \"bytes_in_use\": " + U64(mem.bytes_in_use) + ",\n";
  out += "    \"allocation_count\": " + U64(mem.allocation_count) + ",\n";
  out += "    \"shared_live\": " + U64(mem.shared_live) + ",\n";
  out += "    \"shared_materialized\": " + U64(mem.shared_materialized) + ",\n";
  out += "    \"shared_attaches\": " + U64(mem.shared_attaches) + ",\n";
  out += "    \"shared_bytes_saved\": " + U64(mem.shared_bytes_saved) + "\n";
  out += "  },\n";

  out += "  \"launch\": {\n";
  AppendCounters(out, "    ", run.stats, /*derived=*/true);
  out += "  },\n";

  // Per-instance section: run.instance_stats entry 0 is the unattributed
  // slot; instance i (when present) sits at entry i + 1 by construction.
  out += "  \"per_instance\": [";
  bool first = true;
  for (std::size_t i = 0; i < run.instances.size(); ++i) {
    const dgcf::InstanceResult& inst = run.instances[i];
    sim::LaunchStats stats;  // zero when the run carried no attribution
    if (i + 1 < run.instance_stats.size()) {
      stats = run.instance_stats[i + 1].stats;
    }
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\n";
    out += "      \"instance\": " + U64(i) + ",\n";
    out += std::string("      \"completed\": ") +
           (inst.completed ? "true" : "false") + ",\n";
    out += "      \"exit_code\": " + StrFormat("%d", inst.exit_code) + ",\n";
    out += "      \"reason\": \"" +
           JsonEscape(dgcf::ToString(inst.reason)) + "\",\n";
    out += "      \"attempts\": " + U64(inst.attempts) + ",\n";
    out += "      \"mem_peak_bytes\": " + U64(inst.mem_peak_bytes) + ",\n";
    out += "      \"mem_allocations\": " + U64(inst.mem_allocations) + ",\n";
    AppendCounters(out, "      ", stats, /*derived=*/true);
    out += "    }";
  }
  if (!first) out += "\n  ";
  out += "],\n";

  if (!run.instance_stats.empty()) {
    out += "  \"unattributed\": {\n";
    AppendCounters(out, "    ", run.instance_stats[0].stats,
                   /*derived=*/false);
    out += "  },\n";
  } else {
    out += "  \"unattributed\": null,\n";
  }

  if (profiler != nullptr) {
    AppendTimeline(out, *profiler);
  } else {
    out += "  \"timeline\": null\n";
  }
  out += "}\n";
  return out;
}

Status WriteMetricsJson(const std::string& path, const MetricsInfo& info,
                        const dgcf::RunResult& run,
                        const sim::Profiler* profiler) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status(ErrorCode::kInvalidArgument, "cannot write " + path);
  }
  out << FormatMetricsJson(info, run, profiler);
  return Status::Ok();
}

}  // namespace dgc::ensemble

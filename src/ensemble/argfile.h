// The command-line-arguments file (paper §3.2, Fig. 5b).
//
// Each line holds the arguments of one application instance:
//
//   -a 1 -b -c data-1.bin
//   -a 2 -b -c data-2.bin
//
// Grammar extensions beyond the paper (documented in README): `#` starts a
// comment, blank lines are skipped, and tokens may be quoted ('...' or
// "...") or backslash-escaped to carry spaces.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace dgc::ensemble {

/// Parses argument-file content; result[i] is instance i's argv[1..] (the
/// loader prepends argv[0], as Fig. 4 does with `argv[0]`).
StatusOr<std::vector<std::vector<std::string>>> ParseArgumentLines(
    std::string_view content);

/// Reads and parses an argument file from the host filesystem.
StatusOr<std::vector<std::vector<std::string>>> LoadArgumentFile(
    const std::string& path);

}  // namespace dgc::ensemble

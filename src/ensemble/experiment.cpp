#include "ensemble/experiment.h"

#include <chrono>
#include <fstream>
#include <mutex>

#include "dgcf/libc.h"
#include "dgcf/loader.h"
#include "dgcf/rpc.h"
#include "ensemble/loader.h"
#include "ensemble/metrics.h"
#include "gpusim/device.h"
#include "gpusim/profiler.h"
#include "support/str.h"
#include "support/thread_pool.h"

namespace dgc::ensemble {
namespace {

Status ValidateConfig(const ExperimentConfig& config) {
  if (config.instance_counts.empty() || config.instance_counts[0] != 1) {
    return Status(ErrorCode::kInvalidArgument,
                  "instance_counts must start with 1 (defines T1)");
  }
  if (!config.args_for_instance) {
    return Status(ErrorCode::kInvalidArgument, "args_for_instance is required");
  }
  return Status::Ok();
}

/// One sweep point on a fresh device. Everything the job touches — device,
/// RPC host, device libc — is local to the call, so points are free to run
/// on concurrent host threads. On success `point` is filled in; a non-OOM
/// failure lands in the returned status and `point` stays not-ran.
Status RunPoint(const ExperimentConfig& config, std::uint32_t n,
                SpeedupPoint& point) {
  point.instances = n;

  // A fresh device per configuration: the paper times independent runs.
  sim::Device device(config.spec);
  dgcf::RpcHost rpc(device);
  dgcf::DeviceLibc libc(device);
  dgcf::AppEnv env{&device, &rpc, &libc};

  EnsembleOptions options;
  options.app = config.app;
  for (std::uint32_t i = 0; i < n; ++i) {
    options.instance_args.push_back(config.args_for_instance(i));
  }
  options.thread_limit = config.thread_limit;
  options.teams_per_block = config.teams_per_block;
  options.watchdog_cycles = config.watchdog_cycles;
  options.instance_watchdog_cycles = config.instance_watchdog_cycles;
  options.max_attempts = config.max_attempts;
  options.retry_shrink = config.retry_shrink;
  options.share_data = config.share_data;
  options.launch_threads = config.launch_threads;
  options.launch_window_cycles = config.launch_window_cycles;

  // Profiling is point-local (like the device): the profiler only observes
  // this simulation, so sidecars cannot depend on job scheduling.
  sim::Profiler::Options profiler_options;
  if (config.profile_interval != 0) {
    profiler_options.sample_interval = config.profile_interval;
  }
  sim::Profiler profiler(profiler_options);
  if (config.profile) options.profiler = &profiler;

  // Each point parses its own plan: consumption counters must start fresh
  // for every (benchmark × count) so the sweep is byte-identical for any
  // --jobs value.
  sim::FaultPlan plan;
  if (!config.inject_spec.empty()) {
    DGC_ASSIGN_OR_RETURN(plan, sim::FaultPlan::Parse(config.inject_spec));
    options.faults = &plan;
    libc.set_fault_plan(&plan);
    rpc.set_fault_plan(&plan);
  }

  auto run = RunEnsemble(env, options);
  if (!run.ok()) {
    if (run.status().code() == ErrorCode::kOutOfMemory) {
      point.note = "out of device memory";
      return Status::Ok();
    }
    return run.status();
  }
  bool oom = false;
  for (const dgcf::InstanceResult& inst : run->instances) {
    if (inst.completed && inst.exit_code == dgcf::kExitNoMem) oom = true;
  }
  if (oom) {
    // The paper's Page-Rank case: the configuration does not fit in
    // device memory, so the point is absent from the figure.
    point.note = "out of device memory";
    return Status::Ok();
  }
  if (!run->all_ok()) {
    // A faulting point is an absence in the figure, not a sweep abort:
    // sibling points (and the other series) still measure. The first
    // failure message says why this one is missing.
    point.note = StrFormat(
        "failed: %s",
        run->failures.empty() ? "nonzero exit code" : run->failures[0].c_str());
    return Status::Ok();
  }

  point.ran = true;
  point.cycles = run->kernel_cycles;
  point.stats = run->stats;
  point.peak_mem_bytes = run->device_mem.peak_bytes;
  point.shared_bytes_saved = run->device_mem.shared_bytes_saved;
  if (config.profile) {
    MetricsInfo info;
    info.app = config.app;
    info.device = config.spec.name;
    info.thread_limit = config.thread_limit;
    info.instances = n;
    info.teams_per_block = config.teams_per_block;
    point.metrics_json = FormatMetricsJson(info, *run, &profiler);
  }
  return Status::Ok();
}

}  // namespace

double SpeedupSeries::MaxSpeedup() const {
  double best = 0;
  for (const SpeedupPoint& p : points) {
    if (p.ran) best = std::max(best, p.speedup);
  }
  return best;
}

StatusOr<std::vector<SpeedupSeries>> RunSweeps(
    const std::vector<ExperimentConfig>& configs, const SweepOptions& options) {
  if (configs.empty()) {
    return Status(ErrorCode::kInvalidArgument, "no sweep configurations");
  }
  for (const ExperimentConfig& config : configs) {
    DGC_RETURN_IF_ERROR(ValidateConfig(config));
  }

  // Pre-assign every point its slot so workers never contend on the series
  // vectors and reassembly is by construction in declaration order.
  std::vector<SpeedupSeries> all(configs.size());
  std::vector<std::vector<Status>> statuses(configs.size());
  struct PointJob {
    std::size_t series;
    std::size_t index;
    std::uint32_t instances;
  };
  std::vector<PointJob> flat;
  for (std::size_t s = 0; s < configs.size(); ++s) {
    all[s].app = configs[s].app;
    all[s].thread_limit = configs[s].thread_limit;
    all[s].points.resize(configs[s].instance_counts.size());
    statuses[s].resize(configs[s].instance_counts.size());
    for (std::size_t k = 0; k < configs[s].instance_counts.size(); ++k) {
      flat.push_back({s, k, configs[s].instance_counts[k]});
    }
  }

  std::mutex progress_mutex;  // serializes the observer and its counters
  std::size_t started = 0, finished = 0;
  auto notify = [&](const PointJob& job, SweepPointEvent::Kind kind, bool ran,
                    double wall_seconds) {
    if (!options.progress) return;
    std::lock_guard<std::mutex> lock(progress_mutex);
    SweepPointEvent event;
    event.kind = kind;
    event.app = configs[job.series].app;
    event.thread_limit = configs[job.series].thread_limit;
    event.instances = job.instances;
    event.points_total = flat.size();
    if (kind == SweepPointEvent::Kind::kStarted) ++started;
    else ++finished;
    event.points_started = started;
    event.points_finished = finished;
    event.ran = ran;
    event.wall_seconds = wall_seconds;
    options.progress(event);
  };

  const Status run_status = ParallelFor(
      flat.size(), options.jobs == 0 ? ThreadPool::DefaultThreads() : options.jobs,
      [&](std::size_t i) {
        const PointJob& job = flat[i];
        notify(job, SweepPointEvent::Kind::kStarted, false, 0.0);
        const auto t0 = std::chrono::steady_clock::now();
        SpeedupPoint& point = all[job.series].points[job.index];
        statuses[job.series][job.index] =
            RunPoint(configs[job.series], job.instances, point);
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
        notify(job, SweepPointEvent::Kind::kFinished, point.ran, wall);
      });
  DGC_RETURN_IF_ERROR(run_status);

  // The first failure in declaration order wins — independent of which
  // worker hit it first.
  for (const std::vector<Status>& series_statuses : statuses) {
    for (const Status& status : series_statuses) {
      DGC_RETURN_IF_ERROR(status);
    }
  }

  // Final sequential pass: speedups depend on the series' T1 baseline, so
  // they are resolved only after every point has landed in its slot.
  for (SpeedupSeries& series : all) {
    SpeedupPoint& baseline = series.points[0];  // counts[0] == 1, validated
    if (!baseline.ran) {
      // T1 is undefined: without it every speedup would silently read as
      // 0 (or garbage). Mark the whole series not-ran instead.
      for (std::size_t k = 1; k < series.points.size(); ++k) {
        SpeedupPoint& point = series.points[k];
        point.ran = false;
        point.speedup = 0.0;
        point.note = StrFormat(
            "no 1-instance baseline (%s); speedup undefined",
            baseline.note.empty() ? "did not run" : baseline.note.c_str());
      }
      continue;
    }
    const std::uint64_t t1 = baseline.cycles;
    for (SpeedupPoint& point : series.points) {
      if (!point.ran) continue;
      point.speedup =
          double(t1) * double(point.instances) / double(point.cycles);
    }
  }
  return all;
}

StatusOr<SpeedupSeries> MeasureSpeedup(const ExperimentConfig& config,
                                       const SweepOptions& options) {
  DGC_ASSIGN_OR_RETURN(std::vector<SpeedupSeries> series,
                       RunSweeps({config}, options));
  return std::move(series[0]);
}

std::string FormatSpeedupTable(const std::vector<SpeedupSeries>& series) {
  if (series.empty()) return "(no series)\n";
  std::string out = StrFormat("%-12s", "benchmark");
  for (const SpeedupPoint& p : series[0].points) {
    out += StrFormat(" %8u", p.instances);
  }
  out += "\n";
  out += StrFormat("%-12s", "Linear");
  for (const SpeedupPoint& p : series[0].points) {
    out += StrFormat(" %8u", p.instances);
  }
  out += "\n";
  for (const SpeedupSeries& s : series) {
    out += StrFormat("%-12s", s.app.c_str());
    for (const SpeedupPoint& p : s.points) {
      if (p.ran) {
        out += StrFormat(" %8.2f", p.speedup);
      } else {
        out += StrFormat(" %8s", "-");
      }
    }
    out += "\n";
  }
  return out;
}


std::string FormatSpeedupCsv(const std::vector<SpeedupSeries>& series) {
  std::string out = "benchmark,thread_limit,instances,ran,cycles,speedup\n";
  for (const SpeedupSeries& s : series) {
    for (const SpeedupPoint& p : s.points) {
      if (p.ran) {
        out += StrFormat("%s,%u,%u,1,%llu,%.6f\n", s.app.c_str(),
                         s.thread_limit, p.instances,
                         (unsigned long long)p.cycles, p.speedup);
      } else {
        // Empty fields, not zeros: a skipped point is an absence, and a
        // plotted 0.0 would be indistinguishable from a measurement.
        out += StrFormat("%s,%u,%u,0,,\n", s.app.c_str(), s.thread_limit,
                         p.instances);
      }
    }
  }
  return out;
}

Status WriteSpeedupCsv(const std::vector<SpeedupSeries>& series,
                       const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status(ErrorCode::kInvalidArgument, "cannot write " + path);
  }
  out << FormatSpeedupCsv(series);
  return Status::Ok();
}

}  // namespace dgc::ensemble

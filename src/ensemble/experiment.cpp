#include "ensemble/experiment.h"

#include <fstream>

#include "dgcf/libc.h"
#include "dgcf/loader.h"
#include "dgcf/rpc.h"
#include "ensemble/loader.h"
#include "gpusim/device.h"
#include "support/str.h"

namespace dgc::ensemble {

double SpeedupSeries::MaxSpeedup() const {
  double best = 0;
  for (const SpeedupPoint& p : points) {
    if (p.ran) best = std::max(best, p.speedup);
  }
  return best;
}

StatusOr<SpeedupSeries> MeasureSpeedup(const ExperimentConfig& config) {
  if (config.instance_counts.empty() || config.instance_counts[0] != 1) {
    return Status(ErrorCode::kInvalidArgument,
                  "instance_counts must start with 1 (defines T1)");
  }
  if (!config.args_for_instance) {
    return Status(ErrorCode::kInvalidArgument, "args_for_instance is required");
  }

  SpeedupSeries series;
  series.app = config.app;
  series.thread_limit = config.thread_limit;

  std::uint64_t t1 = 0;
  for (std::uint32_t n : config.instance_counts) {
    SpeedupPoint point;
    point.instances = n;

    // A fresh device per configuration: the paper times independent runs.
    sim::Device device(config.spec);
    dgcf::RpcHost rpc(device);
    dgcf::DeviceLibc libc(device);
    dgcf::AppEnv env{&device, &rpc, &libc};

    EnsembleOptions options;
    options.app = config.app;
    for (std::uint32_t i = 0; i < n; ++i) {
      options.instance_args.push_back(config.args_for_instance(i));
    }
    options.thread_limit = config.thread_limit;
    options.teams_per_block = config.teams_per_block;

    auto run = RunEnsemble(env, options);
    if (!run.ok()) {
      if (run.status().code() == ErrorCode::kOutOfMemory) {
        point.note = "out of device memory";
        series.points.push_back(std::move(point));
        continue;
      }
      return run.status();
    }
    bool oom = false;
    for (const dgcf::InstanceResult& inst : run->instances) {
      if (inst.completed && inst.exit_code == dgcf::kExitNoMem) oom = true;
    }
    if (oom) {
      // The paper's Page-Rank case: the configuration does not fit in
      // device memory, so the point is absent from the figure.
      point.note = "out of device memory";
      series.points.push_back(std::move(point));
      continue;
    }
    if (!run->all_ok()) {
      std::string detail =
          run->failures.empty() ? "nonzero exit code" : run->failures[0];
      return Status(ErrorCode::kInternal,
                    StrFormat("%s with %u instances failed: %s",
                              config.app.c_str(), n, detail.c_str()));
    }

    point.ran = true;
    point.cycles = run->kernel_cycles;
    point.stats = run->stats;
    if (n == 1) t1 = point.cycles;
    point.speedup = double(t1) * double(n) / double(point.cycles);
    series.points.push_back(std::move(point));
  }
  return series;
}

std::string FormatSpeedupTable(const std::vector<SpeedupSeries>& series) {
  if (series.empty()) return "(no series)\n";
  std::string out = StrFormat("%-12s", "benchmark");
  for (const SpeedupPoint& p : series[0].points) {
    out += StrFormat(" %8u", p.instances);
  }
  out += "\n";
  out += StrFormat("%-12s", "Linear");
  for (const SpeedupPoint& p : series[0].points) {
    out += StrFormat(" %8u", p.instances);
  }
  out += "\n";
  for (const SpeedupSeries& s : series) {
    out += StrFormat("%-12s", s.app.c_str());
    for (const SpeedupPoint& p : s.points) {
      if (p.ran) {
        out += StrFormat(" %8.2f", p.speedup);
      } else {
        out += StrFormat(" %8s", "-");
      }
    }
    out += "\n";
  }
  return out;
}


std::string FormatSpeedupCsv(const std::vector<SpeedupSeries>& series) {
  std::string out = "benchmark,thread_limit,instances,ran,cycles,speedup\n";
  for (const SpeedupSeries& s : series) {
    for (const SpeedupPoint& p : s.points) {
      out += StrFormat("%s,%u,%u,%d,%llu,%.6f\n", s.app.c_str(),
                       s.thread_limit, p.instances, int(p.ran),
                       (unsigned long long)p.cycles, p.speedup);
    }
  }
  return out;
}

Status WriteSpeedupCsv(const std::vector<SpeedupSeries>& series,
                       const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status(ErrorCode::kInvalidArgument, "cannot write " + path);
  }
  out << FormatSpeedupCsv(series);
  return Status::Ok();
}

}  // namespace dgc::ensemble

// Global-variable isolation (paper §3.3).
//
// Running many instances inside one kernel breaks the natural isolation a
// process gives to global variables: a mutable global shared by all teams
// is a data race. The paper proposes relocating globals to team-local
// storage; this module implements that transformation's runtime side:
// an app declares its globals once, and the ensemble loader materializes
// one replica per instance, so `Slot(instance)` is each team's private
// copy. `kShared` mode keeps the single-copy (unsound) layout so tests and
// the ablation bench can demonstrate the interference the paper warns of.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gpusim/device.h"
#include "support/status.h"

namespace dgc::ensemble {

enum class GlobalsMode {
  kShared,    ///< one copy for all instances (legacy layout, races)
  kIsolated,  ///< one replica per instance (the §3.3 proposal)
};

class IsolatedGlobals {
 public:
  /// Declares a global: `name`, its size, and its initial image (may be
  /// null → zero-initialized). Call before Materialize.
  Status Declare(std::string name, std::uint64_t bytes,
                 const void* init = nullptr);

  /// Allocates the replicas on the device: one segment per instance in
  /// kIsolated mode, a single shared segment in kShared mode. Each replica
  /// is a *separate device allocation*, mirroring how per-instance heaps
  /// are laid out (non-contiguous, as §4.3 observes).
  ///
  /// With a memcheck attached, each replica is tagged for the §3.3
  /// cross-instance checker: isolated replicas are owned by their instance
  /// (writes from any other instance are findings), the shared segment is
  /// tagged kSharedOwner (a race is reported once two distinct instances
  /// write it).
  Status Materialize(sim::Device& device, std::uint32_t instances,
                     GlobalsMode mode, sim::Memcheck* memcheck = nullptr);

  /// Device pointer to `name`'s replica for `instance`.
  template <typename T>
  StatusOr<sim::DevicePtr<T>> Slot(std::uint32_t instance,
                                   const std::string& name) const {
    DGC_ASSIGN_OR_RETURN(sim::DeviceBuffer seg, Segment(instance));
    auto it = offsets_.find(name);
    if (it == offsets_.end()) {
      return Status(ErrorCode::kNotFound, "no global named '" + name + "'");
    }
    return sim::DevicePtr<T>{
        seg.addr + it->second,
        reinterpret_cast<T*>(seg.host + it->second)};
  }

  /// Releases the device segments.
  void Release(sim::Device& device);

  std::uint64_t segment_bytes() const { return total_bytes_; }
  std::uint32_t replicas() const { return std::uint32_t(segments_.size()); }
  GlobalsMode mode() const { return mode_; }

 private:
  StatusOr<sim::DeviceBuffer> Segment(std::uint32_t instance) const;

  struct Declaration {
    std::uint64_t bytes;
    std::vector<std::byte> init;
  };

  std::vector<std::pair<std::string, Declaration>> decls_;  // declaration order
  std::map<std::string, std::uint64_t> offsets_;
  std::uint64_t total_bytes_ = 0;
  std::vector<sim::DeviceBuffer> segments_;
  GlobalsMode mode_ = GlobalsMode::kIsolated;
  bool materialized_ = false;
};

}  // namespace dgc::ensemble

// Evaluation harness for the paper's Fig. 6 methodology (§4.2/§4.3):
// run N ∈ {1,2,4,...} concurrent instances, each team executing one
// instance, and report relative speedup T1·N / TN.
//
// Every (benchmark × thread_limit × instance_count) point is an independent
// simulation on a fresh device, so a sweep decomposes into point-jobs that
// can fill all host cores (the paper's own ensemble argument, applied to
// the harness). The runner is deterministic for any job count: points are
// written into pre-assigned slots, reassembled in declaration order, and
// speedups resolved against the 1-instance baseline in a final sequential
// pass — the rendered output is byte-identical to a serial run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gpusim/device_spec.h"
#include "gpusim/stats.h"
#include "support/status.h"

namespace dgc::ensemble {

struct ExperimentConfig {
  std::string app;
  /// Builds instance i's argv[1..] — each instance runs on a different
  /// input, as ensembles do.
  std::function<std::vector<std::string>(std::uint32_t)> args_for_instance;
  std::vector<std::uint32_t> instance_counts{1, 2, 4, 8, 16, 32, 64};
  std::uint32_t thread_limit = 32;
  std::uint32_t teams_per_block = 1;  ///< §3.1 mapping (1 = paper)
  sim::DeviceSpec spec;               ///< fresh device per measurement
  /// Deterministic fault-injection spec (gpusim/faults.h grammar), parsed
  /// into a FRESH FaultPlan for every sweep point: plans carry consumption
  /// counters, so sharing one across concurrently-running points would make
  /// the sweep depend on --jobs. "" = no injection.
  std::string inject_spec;
  /// Fault-tolerance knobs forwarded to EnsembleOptions (same semantics).
  std::uint64_t watchdog_cycles = 0;           ///< 0 = device default
  std::uint64_t instance_watchdog_cycles = 0;  ///< 0 = off
  std::uint32_t max_attempts = 1;
  std::uint32_t retry_shrink = 2;
  /// Profile every point: each point runs under its own Profiler and fills
  /// SpeedupPoint::metrics_json (the --metrics-json sidecar). Profiling is
  /// deterministic, so sidecars stay byte-identical for any --jobs value.
  bool profile = false;
  /// Timeline sample interval when profiling; 0 = the Profiler default.
  std::uint64_t profile_interval = 0;
  /// Share read-only input segments across instances with identical
  /// workloads (EnsembleOptions::share_data). Off by default so existing
  /// harness binaries (fig6a/fig6b) keep the duplicated per-instance
  /// layout byte-for-byte.
  bool share_data = false;
  /// Host threads simulating each launch wave of each point
  /// (EnsembleOptions::launch_threads). Deterministic: sidecars and tables
  /// stay byte-identical for every value, and it composes with
  /// SweepOptions::jobs — point workers fan out launch shards through a
  /// nesting-safe pool.
  unsigned launch_threads = 1;
  /// Speculation window override in cycles (0 = engine default).
  std::uint64_t launch_window_cycles = 0;
};

/// Progress of one sweep point, reported as it starts and finishes so long
/// sweeps are observable. Counters are totals across the whole RunSweeps
/// call (all series), monotone, and include the event being reported.
struct SweepPointEvent {
  enum class Kind : std::uint8_t { kStarted, kFinished };
  Kind kind = Kind::kStarted;
  std::string app;
  std::uint32_t thread_limit = 0;
  std::uint32_t instances = 0;
  std::size_t points_total = 0;
  std::size_t points_started = 0;   ///< points started so far
  std::size_t points_finished = 0;  ///< points finished so far
  bool ran = false;                 ///< kFinished only
  double wall_seconds = 0.0;        ///< kFinished only: host wall time
};

struct SweepOptions {
  /// Concurrent point-jobs. 1 (default) runs fully serial — bit-for-bit
  /// the pre-parallel behaviour, no worker threads; 0 means one job per
  /// hardware thread. Output is identical for every value.
  std::uint32_t jobs = 1;
  /// Optional observer. Invocations are serialized (never concurrent) but
  /// arrive from worker threads when jobs > 1.
  std::function<void(const SweepPointEvent&)> progress;
};

struct SpeedupPoint {
  std::uint32_t instances = 0;
  bool ran = false;        ///< false: configuration skipped (e.g. OOM)
  std::string note;        ///< skip reason
  std::uint64_t cycles = 0;  ///< TN, kernel execution cycles
  double speedup = 0.0;      ///< T1 · N / TN
  sim::LaunchStats stats;
  /// Device-memory footprint of the point: high-water mark and the bytes
  /// the shared-segment facility avoided duplicating (0 when sharing is
  /// off or no instances coincide).
  std::uint64_t peak_mem_bytes = 0;
  std::uint64_t shared_bytes_saved = 0;
  /// Complete dgc-metrics-v1 document for this point (ensemble/metrics.h)
  /// when ExperimentConfig::profile is set and the point ran; "" otherwise.
  std::string metrics_json;
};

struct SpeedupSeries {
  std::string app;
  std::uint32_t thread_limit = 0;
  std::vector<SpeedupPoint> points;

  /// Largest measured speedup (the paper's "up to 51X" headline).
  double MaxSpeedup() const;
};

/// Runs one sweep. The first count must be 1 (it defines T1). A
/// configuration whose instances cannot all allocate (device OOM) is
/// recorded as ran=false — the paper's Page-Rank case. A point with any
/// failed instance (trap, watchdog, nonzero exit) is likewise recorded as
/// ran=false with the first failure in its note: a faulting point skips
/// that point, never the sweep. If the 1-instance baseline itself cannot
/// run, the whole series is marked not-ran (T1 is undefined, so no point
/// may report a speedup).
StatusOr<SpeedupSeries> MeasureSpeedup(const ExperimentConfig& config,
                                       const SweepOptions& options = {});

/// Runs several sweeps as one pool of independent point-jobs (a full
/// Fig. 6 panel is one call), returning the series in `configs` order.
StatusOr<std::vector<SpeedupSeries>> RunSweeps(
    const std::vector<ExperimentConfig>& configs,
    const SweepOptions& options = {});

/// Renders one or more series as the paper-style text table: one column
/// per instance count, one row per benchmark, plus the Linear bound row.
std::string FormatSpeedupTable(const std::vector<SpeedupSeries>& series);

/// CSV form of the series (one row per benchmark×count) for plotting:
/// benchmark,thread_limit,instances,ran,cycles,speedup. Points with ran=0
/// leave cycles and speedup empty — they are absences, not measured zeros.
std::string FormatSpeedupCsv(const std::vector<SpeedupSeries>& series);

/// Writes the CSV to a file (overwrites).
Status WriteSpeedupCsv(const std::vector<SpeedupSeries>& series,
                       const std::string& path);

}  // namespace dgc::ensemble

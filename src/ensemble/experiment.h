// Evaluation harness for the paper's Fig. 6 methodology (§4.2/§4.3):
// run N ∈ {1,2,4,...} concurrent instances, each team executing one
// instance, and report relative speedup T1·N / TN.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gpusim/device_spec.h"
#include "gpusim/stats.h"
#include "support/status.h"

namespace dgc::ensemble {

struct ExperimentConfig {
  std::string app;
  /// Builds instance i's argv[1..] — each instance runs on a different
  /// input, as ensembles do.
  std::function<std::vector<std::string>(std::uint32_t)> args_for_instance;
  std::vector<std::uint32_t> instance_counts{1, 2, 4, 8, 16, 32, 64};
  std::uint32_t thread_limit = 32;
  std::uint32_t teams_per_block = 1;  ///< §3.1 mapping (1 = paper)
  sim::DeviceSpec spec;               ///< fresh device per measurement
};

struct SpeedupPoint {
  std::uint32_t instances = 0;
  bool ran = false;        ///< false: configuration skipped (e.g. OOM)
  std::string note;        ///< skip reason
  std::uint64_t cycles = 0;  ///< TN, kernel execution cycles
  double speedup = 0.0;      ///< T1 · N / TN
  sim::LaunchStats stats;
};

struct SpeedupSeries {
  std::string app;
  std::uint32_t thread_limit = 0;
  std::vector<SpeedupPoint> points;

  /// Largest measured speedup (the paper's "up to 51X" headline).
  double MaxSpeedup() const;
};

/// Runs the sweep. The first count must be 1 (it defines T1). A
/// configuration whose instances cannot all allocate (device OOM) is
/// recorded as ran=false — the paper's Page-Rank case.
StatusOr<SpeedupSeries> MeasureSpeedup(const ExperimentConfig& config);

/// Renders one or more series as the paper-style text table: one column
/// per instance count, one row per benchmark, plus the Linear bound row.
std::string FormatSpeedupTable(const std::vector<SpeedupSeries>& series);

/// CSV form of the series (one row per benchmark×count) for plotting:
/// benchmark,thread_limit,instances,ran,cycles,speedup
std::string FormatSpeedupCsv(const std::vector<SpeedupSeries>& series);

/// Writes the CSV to a file (overwrites).
Status WriteSpeedupCsv(const std::vector<SpeedupSeries>& series,
                       const std::string& path);

}  // namespace dgc::ensemble

#include "ensemble/loader.h"

#include <fstream>
#include <numeric>
#include <sstream>

#include "dgcf/argv.h"
#include "dgcf/libc.h"
#include "dgcf/rpc.h"
#include "ensemble/argfile.h"
#include "ensemble/argscript.h"
#include "gpusim/device.h"
#include "gpusim/lane.h"
#include "gpusim/profiler.h"
#include "gpusim/trace.h"
#include "ompx/league.h"
#include "support/argparse.h"
#include "support/str.h"

namespace dgc::ensemble {

namespace {

/// True when the team is back in its pristine state after a contained trap:
/// every worker alive and parked at the team barrier, no parallel region in
/// flight. Only then can the team safely pick up another instance — a trap
/// that killed workers or unwound rank 0 out of a parallel region leaves
/// the worker state machine desynchronized.
bool TeamIntact(const ompx::TeamCtx& team) {
  if (team.team_size == 1) return true;
  return team.barrier->expected() == team.team_size &&
         team.state->phase == ompx::TeamState::Phase::kIdle;
}

}  // namespace

StatusOr<dgcf::RunResult> RunEnsemble(dgcf::AppEnv& env,
                                      const EnsembleOptions& options) {
  DGC_CHECK(env.device != nullptr);
  DGC_ASSIGN_OR_RETURN(const dgcf::AppInfo* app,
                       dgcf::AppRegistry::Instance().Find(options.app));
  if (options.instance_args.empty()) {
    return Status(ErrorCode::kInvalidArgument, "no instance argument lines");
  }
  // Validate library-caller options up front (the CLI front end performs the
  // same checks on its raw flags); a zero would otherwise reach the launch
  // path and fail with a message that names no EnsembleOptions field.
  if (options.thread_limit == 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "EnsembleOptions::thread_limit must be positive");
  }
  if (options.teams_per_block == 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "EnsembleOptions::teams_per_block must be positive");
  }
  if (options.max_attempts == 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "EnsembleOptions::max_attempts must be positive");
  }
  const std::uint32_t available = std::uint32_t(options.instance_args.size());
  const std::uint32_t ni =
      options.num_instances == 0 ? available : options.num_instances;
  if (ni > available) {
    return Status(
        ErrorCode::kInvalidArgument,
        StrFormat("requested %u instances but the argument file provides "
                  "only %u lines",
                  ni, available));
  }
  if (!options.instance_watchdogs.empty() &&
      options.instance_watchdogs.size() != ni) {
    return Status(ErrorCode::kInvalidArgument,
                  "EnsembleOptions::instance_watchdogs must be empty or have "
                  "one entry per instance");
  }
  const std::uint32_t teams = options.num_teams == 0 ? ni : options.num_teams;
  if (teams > ni) {
    return Status(ErrorCode::kInvalidArgument,
                  "more teams than instances is wasteful; reduce --teams");
  }

  // Attach the sanitizer before any device state is built so the argument
  // block and app buffers enter the shadow map with exact bounds.
  if (options.memcheck != nullptr) {
    options.memcheck->Attach(env.device->memory());
  }

  // Build the device-side argument block (Fig. 4's StringCache/Argc/Argv),
  // prepending argv[0] = app name to every line. Built once; retry waves
  // reuse it.
  std::vector<std::vector<std::string>> rows;
  rows.reserve(ni);
  for (std::uint32_t i = 0; i < ni; ++i) {
    std::vector<std::string> row;
    row.reserve(options.instance_args[i].size() + 1);
    row.push_back(options.app);
    row.insert(row.end(), options.instance_args[i].begin(),
               options.instance_args[i].end());
    rows.push_back(std::move(row));
  }
  DGC_ASSIGN_OR_RETURN(dgcf::ArgvBlock argv,
                       dgcf::ArgvBlock::Build(*env.device, rows));

  dgcf::RunResult run;
  run.instances.resize(ni);
  run.transfer_cycles = argv.transfer_cycles();
  env.share_data = options.share_data;

  const std::uint64_t launch_watchdog =
      options.watchdog_cycles != 0 ? options.watchdog_cycles
                                   : env.device->spec().DefaultWatchdogCycles();
  const std::uint32_t shrink =
      options.retry_shrink >= 2 ? options.retry_shrink : 1;

  // Wave 0 runs every instance; retry waves run only the instances that did
  // not complete execution (a returned nonzero exit *is* a completed
  // execution and is never retried).
  std::vector<std::uint32_t> pending(ni);
  std::iota(pending.begin(), pending.end(), 0u);
  std::uint32_t team_cap = teams;

  for (std::uint32_t wave = 0; wave < options.max_attempts && !pending.empty();
       ++wave) {
    if (wave > 0) {
      team_cap = std::max(1u, team_cap / shrink);
      // Retry waves reuse block ids; a fresh trace wave keeps their rows
      // (and Perfetto tids) distinct from the previous launch's.
      if (options.trace != nullptr) options.trace->BeginWave();
    }
    const std::uint32_t wave_teams =
        std::min<std::uint32_t>(team_cap, std::uint32_t(pending.size()));

    // Which instance each wave-local team is currently executing; feeds the
    // instance_of hook so lane failures are attributed `instance=I`.
    std::vector<std::int32_t> current(wave_teams, -1);
    std::vector<char> started(ni, 0);

    ompx::TeamsConfig cfg;
    cfg.num_teams = wave_teams;
    cfg.thread_limit = options.thread_limit;
    cfg.teams_per_block = options.teams_per_block;
    cfg.name = wave == 0 ? "ensemble" : "ensemble-retry";
    cfg.trace = options.trace;
    cfg.memcheck = options.memcheck;
    cfg.faults = options.faults;
    cfg.profiler = options.profiler;
    cfg.watchdog_cycles = launch_watchdog;
    cfg.launch_threads = options.launch_threads;
    cfg.launch_window_cycles = options.launch_window_cycles;
    const std::uint32_t m = options.teams_per_block;
    const std::uint32_t team_size = options.thread_limit;
    cfg.instance_of = [&current, wave_teams, m,
                       team_size](std::uint32_t block_id,
                                  std::uint32_t thread_id) -> std::int32_t {
      const std::uint32_t team = block_id * m + thread_id / team_size;
      return team < wave_teams ? current[team] : -1;
    };
    // Per-owner device-memory accounting: attribute each allocation to the
    // instance the allocating lane's team is currently executing. `current`
    // is wave-local, so the resolver is reinstalled per wave and detached
    // before the vector dies.
    env.device->memory().set_instance_resolver(
        [&current, wave_teams, m, team_size]() -> std::int32_t {
          const sim::Lane* lane = sim::CurrentLane();
          if (lane == nullptr || lane->ctx == nullptr) return -1;
          const std::uint32_t team =
              lane->ctx->block_id * m + lane->thread_id / team_size;
          return team < wave_teams ? current[team] : -1;
        });

    // The Fig. 4 kernel:  #pragma omp target teams distribute
    //                     for (I = 0; I < NI; ++I)
    //                       Ret[I] = __user_main(Argc[I], &Argv[I][0]);
    // distribute → team t executes iterations t, t+N, t+2N, ... of the
    // pending list. Each instance runs under try/catch: a trap is contained
    // to the instance, and the team moves on to its next instance as long
    // as the trap left it intact.
    auto result = ompx::LaunchTeams(
        *env.device, cfg, [&](ompx::TeamCtx& team) -> sim::DeviceTask<void> {
          for (std::uint32_t idx = team.team_id; idx < pending.size();
               idx += wave_teams) {
            const std::uint32_t i = pending[idx];
            dgcf::InstanceResult& inst = run.instances[i];
            current[team.team_id] = std::int32_t(i);
            if (options.memcheck != nullptr) {
              // Feed the §3.3 cross-instance checker: from here until the
              // next update, accesses by this team belong to instance i.
              options.memcheck->SetTeamInstance(team.team_id,
                                                std::int32_t(i));
            }
            started[i] = 1;
            ++inst.attempts;
            inst.reason = dgcf::TerminationReason::kNotStarted;
            inst.detail.clear();
            const std::uint64_t t0 = team.hw->Now();
            const std::uint64_t inst_budget =
                i < options.instance_watchdogs.size() &&
                        options.instance_watchdogs[i] != 0
                    ? options.instance_watchdogs[i]
                    : options.instance_watchdog_cycles;
            if (inst_budget != 0) {
              team.hw->ArmRowWatchdog(inst_budget);
            }
            bool contained = false;
            try {
              inst.exit_code = co_await app->user_main(
                  env, team, argv.argc(i), argv.argv(i));
              inst.completed = true;
              inst.reason = dgcf::TerminationReason::kReturned;
            } catch (const sim::DeviceTrap& trap) {
              inst.reason = dgcf::ReasonForTrap(trap.kind());
              inst.detail = trap.what();
              contained = true;
            } catch (const std::exception& e) {
              inst.reason = dgcf::TerminationReason::kException;
              inst.detail = e.what();
              contained = true;
            }
            if (inst_budget != 0) {
              team.hw->ArmRowWatchdog(0);  // disarm for the next instance
            }
            inst.cycles += team.hw->Now() - t0;
            current[team.team_id] = -1;
            if (contained && !TeamIntact(team)) {
              // The trap degraded the team (dead workers or a parallel
              // region left in flight): running another instance on it
              // would corrupt the worker state machine. Remaining
              // iterations stay kNotStarted and fall to the retry waves.
              co_return;
            }
          }
        });
    env.device->memory().set_instance_resolver(nullptr);
    DGC_RETURN_IF_ERROR(result.status());

    run.waves = wave + 1;
    run.kernel_cycles += result->cycles;
    // Waves run back-to-back on the device, so their elapsed cycles add —
    // the sequential merge. (Per-instance stats of one wave are the
    // concurrent case; the profiler handles those.)
    run.stats.AccumulateSequential(result->stats);
    for (std::string& f : result->failures) run.failures.push_back(std::move(f));
    // The sanitizer report is cumulative since Attach; the latest wave's
    // snapshot covers all waves so far.
    run.memcheck = std::move(result->memcheck);

    // Post-wave attribution and containment log.
    std::vector<std::uint32_t> next;
    for (std::uint32_t i : pending) {
      dgcf::InstanceResult& inst = run.instances[i];
      if (inst.completed) continue;
      if (started[i] &&
          inst.reason == dgcf::TerminationReason::kNotStarted) {
        // Started but never terminated: its lanes were still parked when
        // the launch drained (deadlock) or the launch ended around it.
        inst.reason = dgcf::TerminationReason::kDeadlock;
        inst.detail = StrFormat("launch %s while the instance was running",
                                result->outcome == sim::LaunchOutcome::kDeadlocked
                                    ? "deadlocked"
                                    : "ended");
      }
      if (started[i] &&
          inst.reason != dgcf::TerminationReason::kNotStarted) {
        run.failures.push_back(StrFormat(
            "instance=%u contained: %s (%s)", i,
            std::string(dgcf::ToString(inst.reason)).c_str(),
            inst.detail.c_str()));
        // Contained traps never reach the launch's lane-death counters, so
        // fold them in here: the run's stats report every trap that fired,
        // whether the loader caught it or a lane died of it.
        if (inst.reason == dgcf::TerminationReason::kWatchdog) {
          ++run.stats.watchdog_traps;
        } else if (inst.reason != dgcf::TerminationReason::kException) {
          ++run.stats.lane_traps;
        }
      }
      next.push_back(i);
    }
    pending = std::move(next);
  }

  // map(from:Ret[:NI])
  run.transfer_cycles +=
      sim::TransferCycles(env.device->spec(), std::uint64_t(ni) * sizeof(int));
  if (options.profiler != nullptr) {
    for (std::uint32_t i = 0; i < ni; ++i) {
      options.profiler->SetInstanceElapsed(std::int32_t(i),
                                           run.instances[i].cycles);
    }
    run.instance_stats = options.profiler->instances();
  }
  run.device_mem = env.device->memory().Snapshot();
  const auto& owner_stats = env.device->memory().owner_stats();
  for (std::uint32_t i = 0; i < ni; ++i) {
    if (auto it = owner_stats.find(std::int32_t(i)); it != owner_stats.end()) {
      run.instances[i].mem_peak_bytes = it->second.peak_bytes;
      run.instances[i].mem_allocations = it->second.total_allocations;
    }
  }
  return run;
}

StatusOr<dgcf::RunResult> RunEnsembleCli(dgcf::AppEnv& env,
                                         const std::string& app,
                                         const std::vector<std::string>& argv,
                                         sim::Trace* trace,
                                         sim::Memcheck* memcheck,
                                         sim::Profiler* profiler) {
  std::string file;
  std::int64_t instances = 0, threads = 1024, teams = 0, per_block = 1;
  std::int64_t seed = 0;
  bool script = false;
  std::string inject;
  std::int64_t watchdog = 0, instance_watchdog = 0;
  std::int64_t retry = 1, retry_shrink = 2;
  std::int64_t launch_threads = 1;
  std::int64_t launch_window = 0;
  std::string share_data = "on";
  ArgParser parser("GPU ensemble loader (paper Fig. 5c)");
  parser.AddString("file", 'f', "command line arguments file", &file,
                   /*required=*/true)
      .AddInt("num-instances", 'n', "instances to launch simultaneously",
              &instances)
      .AddInt("thread-limit", 't', "max threads per instance", &threads)
      .AddInt("teams", 0, "teams (default: one per instance)", &teams)
      .AddInt("teams-per-block", 'm', "instances per thread block (§3.1)",
              &per_block)
      .AddFlag("script", 0, "treat the file as an argument script", &script)
      .AddInt("seed", 0, "argument-script random seed", &seed)
      .AddString("inject", 0, "deterministic fault-injection spec", &inject)
      .AddInt("watchdog", 0, "launch cycle budget (0 = device default)",
              &watchdog)
      .AddInt("instance-watchdog", 0,
              "per-instance cycle budget (0 = off)", &instance_watchdog)
      .AddInt("retry", 0, "max launch attempts per failed instance",
              &retry)
      .AddInt("retry-shrink", 0, "team-cap divisor per retry wave",
              &retry_shrink)
      .AddString("share-data", 0,
                 "share read-only input data across identical instances "
                 "(on|off, default on)",
                 &share_data)
      .AddInt("launch-threads", 0,
              "host threads simulating each launch (deterministic; 1 = "
              "serial)",
              &launch_threads)
      .AddInt("launch-window", 0,
              "speculation window in cycles for the threaded engine "
              "(0 = engine default; any value is byte-identical)",
              &launch_window);
  DGC_RETURN_IF_ERROR(parser.Parse(argv));
  if (share_data != "on" && share_data != "off") {
    return Status(ErrorCode::kInvalidArgument,
                  "--share-data must be 'on' or 'off'");
  }
  if (instances < 0 || threads <= 0 || teams < 0 || per_block <= 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "counts must be positive (instances/teams may be omitted)");
  }
  if (watchdog < 0 || instance_watchdog < 0 || retry <= 0 ||
      retry_shrink < 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "--watchdog/--instance-watchdog must be >= 0 and "
                  "--retry must be positive");
  }
  if (launch_threads <= 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "--launch-threads must be positive");
  }
  if (launch_window < 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "--launch-window must be >= 0 (0 = engine default)");
  }

  EnsembleOptions options;
  options.app = app;
  options.num_instances = std::uint32_t(instances);
  options.thread_limit = std::uint32_t(threads);
  options.num_teams = std::uint32_t(teams);
  options.teams_per_block = std::uint32_t(per_block);
  options.trace = trace;
  options.memcheck = memcheck;
  options.profiler = profiler;
  options.watchdog_cycles = std::uint64_t(watchdog);
  options.instance_watchdog_cycles = std::uint64_t(instance_watchdog);
  options.max_attempts = std::uint32_t(retry);
  options.retry_shrink = std::uint32_t(retry_shrink);
  options.share_data = share_data == "on";
  options.launch_threads = unsigned(launch_threads);
  options.launch_window_cycles = std::uint64_t(launch_window);

  // Validate (and build) the fault plan before touching the argument file:
  // a bad --inject spec is a usage error and must fail before any work. A
  // fresh plan per run keeps count-based faults deterministic; it is wired
  // into the heap and the RPC ring below and detached before it goes out of
  // scope.
  sim::FaultPlan plan;
  if (!inject.empty()) {
    DGC_ASSIGN_OR_RETURN(plan, sim::FaultPlan::Parse(inject));
  }

  if (script) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      return Status(ErrorCode::kNotFound, "cannot open script file: " + file);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    DGC_ASSIGN_OR_RETURN(options.instance_args,
                         ExpandScriptToArgs(buffer.str(), std::uint64_t(seed)));
  } else {
    DGC_ASSIGN_OR_RETURN(options.instance_args, LoadArgumentFile(file));
  }

  if (!inject.empty()) {
    options.faults = &plan;
    if (env.libc != nullptr) env.libc->set_fault_plan(&plan);
    if (env.rpc != nullptr) env.rpc->set_fault_plan(&plan);
  }
  auto run = RunEnsemble(env, options);
  if (!inject.empty()) {
    if (env.libc != nullptr) env.libc->set_fault_plan(nullptr);
    if (env.rpc != nullptr) env.rpc->set_fault_plan(nullptr);
  }
  return run;
}

}  // namespace dgc::ensemble

#include "ensemble/loader.h"

#include <fstream>
#include <sstream>

#include "dgcf/argv.h"
#include "ensemble/argfile.h"
#include "ensemble/argscript.h"
#include "gpusim/device.h"
#include "ompx/league.h"
#include "support/argparse.h"
#include "support/str.h"

namespace dgc::ensemble {

StatusOr<dgcf::RunResult> RunEnsemble(dgcf::AppEnv& env,
                                      const EnsembleOptions& options) {
  DGC_CHECK(env.device != nullptr);
  DGC_ASSIGN_OR_RETURN(const dgcf::AppInfo* app,
                       dgcf::AppRegistry::Instance().Find(options.app));
  if (options.instance_args.empty()) {
    return Status(ErrorCode::kInvalidArgument, "no instance argument lines");
  }
  // Validate library-caller options up front (the CLI front end performs the
  // same checks on its raw flags); a zero would otherwise reach the launch
  // path and fail with a message that names no EnsembleOptions field.
  if (options.thread_limit == 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "EnsembleOptions::thread_limit must be positive");
  }
  if (options.teams_per_block == 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "EnsembleOptions::teams_per_block must be positive");
  }

  const std::uint32_t available = std::uint32_t(options.instance_args.size());
  const std::uint32_t ni =
      options.num_instances == 0 ? available : options.num_instances;
  if (ni > available) {
    return Status(
        ErrorCode::kInvalidArgument,
        StrFormat("requested %u instances but the argument file provides "
                  "only %u lines",
                  ni, available));
  }
  const std::uint32_t teams = options.num_teams == 0 ? ni : options.num_teams;
  if (teams > ni) {
    return Status(ErrorCode::kInvalidArgument,
                  "more teams than instances is wasteful; reduce --teams");
  }

  // Attach the sanitizer before any device state is built so the argument
  // block and app buffers enter the shadow map with exact bounds.
  if (options.memcheck != nullptr) {
    options.memcheck->Attach(env.device->memory());
  }

  // Build the device-side argument block (Fig. 4's StringCache/Argc/Argv),
  // prepending argv[0] = app name to every line.
  std::vector<std::vector<std::string>> rows;
  rows.reserve(ni);
  for (std::uint32_t i = 0; i < ni; ++i) {
    std::vector<std::string> row;
    row.reserve(options.instance_args[i].size() + 1);
    row.push_back(options.app);
    row.insert(row.end(), options.instance_args[i].begin(),
               options.instance_args[i].end());
    rows.push_back(std::move(row));
  }
  DGC_ASSIGN_OR_RETURN(dgcf::ArgvBlock argv,
                       dgcf::ArgvBlock::Build(*env.device, rows));

  dgcf::RunResult run;
  run.instances.resize(ni);
  run.transfer_cycles = argv.transfer_cycles();

  ompx::TeamsConfig cfg;
  cfg.num_teams = teams;
  cfg.thread_limit = options.thread_limit;
  cfg.teams_per_block = options.teams_per_block;
  cfg.name = "ensemble";
  cfg.trace = options.trace;
  cfg.memcheck = options.memcheck;

  // The Fig. 4 kernel:  #pragma omp target teams distribute
  //                     for (I = 0; I < NI; ++I)
  //                       Ret[I] = __user_main(Argc[I], &Argv[I][0]);
  // distribute → team t executes iterations t, t+N, t+2N, ...
  auto result = ompx::LaunchTeams(
      *env.device, cfg, [&](ompx::TeamCtx& team) -> sim::DeviceTask<void> {
        for (std::uint32_t i = team.team_id; i < ni; i += teams) {
          if (options.memcheck != nullptr) {
            // Feed the §3.3 cross-instance checker: from here until the next
            // update, accesses by this team belong to instance i.
            options.memcheck->SetTeamInstance(team.team_id, std::int32_t(i));
          }
          run.instances[i].exit_code =
              co_await app->user_main(env, team, argv.argc(i), argv.argv(i));
          run.instances[i].completed = true;
        }
      });
  DGC_RETURN_IF_ERROR(result.status());

  run.kernel_cycles = result->cycles;
  run.stats = result->stats;
  run.failures = std::move(result->failures);
  run.memcheck = std::move(result->memcheck);
  // map(from:Ret[:NI])
  run.transfer_cycles +=
      sim::TransferCycles(env.device->spec(), std::uint64_t(ni) * sizeof(int));
  return run;
}

StatusOr<dgcf::RunResult> RunEnsembleCli(dgcf::AppEnv& env,
                                         const std::string& app,
                                         const std::vector<std::string>& argv,
                                         sim::Trace* trace,
                                         sim::Memcheck* memcheck) {
  std::string file;
  std::int64_t instances = 0, threads = 1024, teams = 0, per_block = 1;
  std::int64_t seed = 0;
  bool script = false;
  ArgParser parser("GPU ensemble loader (paper Fig. 5c)");
  parser.AddString("file", 'f', "command line arguments file", &file,
                   /*required=*/true)
      .AddInt("num-instances", 'n', "instances to launch simultaneously",
              &instances)
      .AddInt("thread-limit", 't', "max threads per instance", &threads)
      .AddInt("teams", 0, "teams (default: one per instance)", &teams)
      .AddInt("teams-per-block", 'm', "instances per thread block (§3.1)",
              &per_block)
      .AddFlag("script", 0, "treat the file as an argument script", &script)
      .AddInt("seed", 0, "argument-script random seed", &seed);
  DGC_RETURN_IF_ERROR(parser.Parse(argv));
  if (instances < 0 || threads <= 0 || teams < 0 || per_block <= 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "counts must be positive (instances/teams may be omitted)");
  }

  EnsembleOptions options;
  options.app = app;
  options.num_instances = std::uint32_t(instances);
  options.thread_limit = std::uint32_t(threads);
  options.num_teams = std::uint32_t(teams);
  options.teams_per_block = std::uint32_t(per_block);
  options.trace = trace;
  options.memcheck = memcheck;
  if (script) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      return Status(ErrorCode::kNotFound, "cannot open script file: " + file);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    DGC_ASSIGN_OR_RETURN(options.instance_args,
                         ExpandScriptToArgs(buffer.str(), std::uint64_t(seed)));
  } else {
    DGC_ASSIGN_OR_RETURN(options.instance_args, LoadArgumentFile(file));
  }
  return RunEnsemble(env, options);
}

}  // namespace dgc::ensemble

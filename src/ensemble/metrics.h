// Machine-readable metrics export (the `--metrics-json` sidecar).
//
// Serializes a loader RunResult plus the profiler's per-instance
// attribution and utilization timeline into one stable JSON document that
// tools and CI can diff. The schema is versioned ("dgc-metrics-v1") and the
// field order is fixed — byte-identical output for identical runs is part
// of the contract (sweeps emit the same sidecar for any --jobs value).
//
// Document layout (all cycle values are simulated device cycles):
//   {
//     "schema": "dgc-metrics-v1",
//     "app": ..., "device": ..., "thread_limit": ...,
//     "instances": ..., "teams_per_block": ...,
//     "waves": ..., "kernel_cycles": ..., "transfer_cycles": ...,
//     "launch":       { <counters>, <derived rates> },   // launch-global
//     "per_instance": [ { "instance": I, "completed": ..., "exit_code": ...,
//                         "reason": ..., "attempts": ...,
//                         <counters>, <derived rates> }, ... ],
//     (an instance's end-to-end cycles are its "elapsed_cycles" counter)
//     "unattributed": { <counters> },    // work owned by no instance
//     "timeline": { "sample_interval": ..., "dropped_samples": ...,
//                   "samples": [ { "cycle": ..., "wave": ...,
//                                  "active_warps": ..., "resident_blocks": ...,
//                                  "warp_instructions": ...,
//                                  "dram_bw_occupancy": ...,
//                                  "l2_bw_occupancy": ...,
//                                  "stalls": { "dram_queue": ...,
//                                              "l2_queue": ..., "barrier": ...,
//                                              "bank_conflict": ...,
//                                              "divergence": ... } }, ... ] }
//   }
// Derived rates with a zero denominator serialize as null (mirrors the
// "n/a" rule in LaunchStats::ToString). "per_instance", "unattributed" and
// "timeline" degrade to [] / null when the run was not profiled.
#pragma once

#include <cstdint>
#include <string>

#include "dgcf/loader.h"
#include "support/status.h"

namespace dgc::sim {
class Profiler;
}  // namespace dgc::sim

namespace dgc::ensemble {

/// Run identification recorded in the document header.
struct MetricsInfo {
  std::string app;
  std::string device;
  std::uint32_t thread_limit = 0;
  std::uint32_t instances = 0;
  std::uint32_t teams_per_block = 1;
};

/// Serializes the run. `profiler` may be null: the document then carries
/// only the launch-global section (empty per_instance, null timeline).
std::string FormatMetricsJson(const MetricsInfo& info,
                              const dgcf::RunResult& run,
                              const sim::Profiler* profiler);

Status WriteMetricsJson(const std::string& path, const MetricsInfo& info,
                        const dgcf::RunResult& run,
                        const sim::Profiler* profiler);

}  // namespace dgc::ensemble

// The argument-script language (the paper's §3.2/§6 future work: "a script
// language ... to generate command line arguments for each instance
// dynamically").
//
// A script is an argument file whose lines may contain directives and
// generator expressions; expansion produces a plain argument file (one line
// per instance), which then flows through the normal ensemble loader.
//
//   # directives
//   @seed 42                      # seed for {rand ...} (default 0)
//   @repeat 4 : -a {i+1} -c data-{i+1}.bin   # expand 4x, i = 0..3
//
//   # generators inside { }
//   -g {seq 100 400 100} -p 0.5   # one instance per sequence element
//   -s {rand 1 6}                 # uniform integer in [1, 6]
//   -m {choice small|large}       # element i % 2
//   -k {i*1000+4096}              # integer arithmetic over + - * / % ( )
//
// Rules: every {seq ...} on a line must have the same length, which sets
// the line's instance count (or must equal the @repeat count when both are
// present); `i` is the 0-based instance index of the line, `n` the line's
// instance count. Expansion is deterministic for a given seed.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace dgc::ensemble {

/// Expands a script into plain argument-file text (one line per instance).
StatusOr<std::string> ExpandScript(std::string_view script,
                                   std::uint64_t default_seed = 0);

/// Expands and parses in one step; result[i] is instance i's argv[1..].
StatusOr<std::vector<std::vector<std::string>>> ExpandScriptToArgs(
    std::string_view script, std::uint64_t default_seed = 0);

}  // namespace dgc::ensemble

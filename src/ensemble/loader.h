// The enhanced (ensemble) loader — the paper's core contribution (§3).
//
// Extends the single-instance main wrapper to launch NI instances of the
// application inside ONE kernel: instance I's command line comes from line
// I of the argument file; each instance is mapped to a team via
// `target teams distribute num_teams(N) thread_limit(T)` (Fig. 4), and the
// per-instance exit codes are mapped back (`map(from:Ret[:NI])`).
//
// The loader's own command line mirrors Fig. 5c:
//   user_app_gpu -f arguments.txt -n 4 -t 128
// plus two extensions: -m (teams per block, §3.1's multi-dimensional
// mapping) and --teams (decouple N from NI; instances distribute
// round-robin over teams, exactly the Fig. 4 loop).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dgcf/app.h"
#include "dgcf/loader.h"
#include "support/status.h"

namespace dgc::ensemble {

struct EnsembleOptions {
  std::string app;  ///< registered application name
  /// Per-instance argv[1..] (from -f, an arg script, or built directly).
  std::vector<std::vector<std::string>> instance_args;
  /// Instances to launch (-n). 0 → one per argument line. Must not exceed
  /// the number of argument lines.
  std::uint32_t num_instances = 0;
  /// Thread limit per instance (-t).
  std::uint32_t thread_limit = 1024;
  /// Teams (N in Fig. 4). 0 → equal to the instance count (the paper's
  /// evaluation configuration, §4.2).
  std::uint32_t num_teams = 0;
  /// M instances per thread block (§3.1); 1 = the paper's implementation.
  std::uint32_t teams_per_block = 1;
  /// Optional instruction trace of the ensemble kernel (gpusim/trace.h).
  sim::Trace* trace = nullptr;
  /// Optional shadow-memory sanitizer (gpusim/memcheck.h). The loader
  /// attaches it to the device memory, maps each team to the instance it is
  /// currently executing (feeding the §3.3 cross-instance checker), and
  /// returns its findings in RunResult::memcheck.
  sim::Memcheck* memcheck = nullptr;
  /// Optional deterministic fault-injection plan (gpusim/faults.h). The
  /// loader forwards it to every launch wave; the same plan object persists
  /// across retries, so count-based faults fire exactly once and a retry
  /// can recover the instance they hit. The caller wires the plan into the
  /// AppEnv's DeviceLibc/RpcHost for heap/RPC faults (RunEnsembleCli does).
  sim::FaultPlan* faults = nullptr;
  /// Launch watchdog: cycle budget for each kernel launch, after which
  /// every still-running lane traps (kWatchdog) and the launch drains.
  /// 0 derives DeviceSpec::DefaultWatchdogCycles().
  std::uint64_t watchdog_cycles = 0;
  /// Per-instance watchdog: cycles one instance may run before its team's
  /// lanes trap. 0 (default) disables; the launch budget still applies.
  std::uint64_t instance_watchdog_cycles = 0;
  /// Optional per-instance overrides of the watchdog budget, indexed by
  /// instance id: entry I (when nonzero) replaces instance_watchdog_cycles
  /// for instance I. Must be empty or have one entry per instance. A
  /// job-stream scheduler uses this to layer per-job deadline budgets on
  /// the watchdog machinery — each packed job gets its own remaining
  /// budget instead of the batch minimum.
  std::vector<std::uint64_t> instance_watchdogs;
  /// Total launch waves an abnormally-terminated instance may consume
  /// (first run + retries). 1 = no retry. Instances that *returned* with a
  /// nonzero exit code completed execution and are never retried.
  std::uint32_t max_attempts = 1;
  /// When >= 2, each retry wave divides the team cap by this factor
  /// (min 1 team): relaunching failed instances on a smaller wave relieves
  /// the memory/contention pressure that commonly caused the failure.
  /// 0 or 1 = retries reuse the original team count.
  std::uint32_t retry_shrink = 2;
  /// Optional launch profiler (gpusim/profiler.h); null = off. The loader
  /// forwards it to every wave (one profiler observes all waves), records
  /// each instance's elapsed cycles, and fills RunResult::instance_stats.
  sim::Profiler* profiler = nullptr;
  /// Share content-identical read-only inputs across instances: apps
  /// acquire them via content-keyed shared segments, so identical instances
  /// map one physical copy (flagged read-only to the §3.3 race detector).
  /// Off by default — the duplicated layout is the paper's baseline.
  bool share_data = false;
  /// Host threads simulating each launch wave (`--launch-threads`).
  /// 1 (default) = serial engine; N > 1 shards SMs across N host threads
  /// with a deterministic event-merge barrier — results are byte-identical
  /// for every value. Falls back to 1 per launch when a fault plan is
  /// active or blocks carry more than one warp (see
  /// sim::LaunchConfig::launch_threads).
  unsigned launch_threads = 1;
  /// Speculation window override in cycles (0 = engine default). Output is
  /// identical for any value; exposed for tests and tuning.
  std::uint64_t launch_window_cycles = 0;
};

/// Runs the ensemble. Instance I's exit code lands in result.instances[I].
///
/// Failure semantics: an instance that traps (OOM, abort, injected fault,
/// watchdog) or throws is *contained* — its InstanceResult records the
/// TerminationReason and detail while sibling instances run to completion.
/// With max_attempts > 1, instances that did not complete execution are
/// relaunched in follow-up waves (see EnsembleOptions::retry_shrink).
StatusOr<dgcf::RunResult> RunEnsemble(dgcf::AppEnv& env,
                                      const EnsembleOptions& options);

/// Fig. 5c front end: parses `-f <file> -n <instances> -t <threads>`
/// (plus -m/--teams/--script, `--share-data on|off` — default on — and the
/// fault-tolerance flags
/// --inject/--watchdog/--instance-watchdog/--retry/--retry-shrink) for
/// `app`, loading the argument file through the host filesystem, then calls
/// RunEnsemble. --inject parses a FaultPlan spec (gpusim/faults.h) and
/// wires it into the launch, the device libc, and the RPC host for the
/// duration of the run.
StatusOr<dgcf::RunResult> RunEnsembleCli(dgcf::AppEnv& env,
                                         const std::string& app,
                                         const std::vector<std::string>& argv,
                                         sim::Trace* trace = nullptr,
                                         sim::Memcheck* memcheck = nullptr,
                                         sim::Profiler* profiler = nullptr);

}  // namespace dgc::ensemble

// The enhanced (ensemble) loader — the paper's core contribution (§3).
//
// Extends the single-instance main wrapper to launch NI instances of the
// application inside ONE kernel: instance I's command line comes from line
// I of the argument file; each instance is mapped to a team via
// `target teams distribute num_teams(N) thread_limit(T)` (Fig. 4), and the
// per-instance exit codes are mapped back (`map(from:Ret[:NI])`).
//
// The loader's own command line mirrors Fig. 5c:
//   user_app_gpu -f arguments.txt -n 4 -t 128
// plus two extensions: -m (teams per block, §3.1's multi-dimensional
// mapping) and --teams (decouple N from NI; instances distribute
// round-robin over teams, exactly the Fig. 4 loop).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dgcf/app.h"
#include "dgcf/loader.h"
#include "support/status.h"

namespace dgc::ensemble {

struct EnsembleOptions {
  std::string app;  ///< registered application name
  /// Per-instance argv[1..] (from -f, an arg script, or built directly).
  std::vector<std::vector<std::string>> instance_args;
  /// Instances to launch (-n). 0 → one per argument line. Must not exceed
  /// the number of argument lines.
  std::uint32_t num_instances = 0;
  /// Thread limit per instance (-t).
  std::uint32_t thread_limit = 1024;
  /// Teams (N in Fig. 4). 0 → equal to the instance count (the paper's
  /// evaluation configuration, §4.2).
  std::uint32_t num_teams = 0;
  /// M instances per thread block (§3.1); 1 = the paper's implementation.
  std::uint32_t teams_per_block = 1;
  /// Optional instruction trace of the ensemble kernel (gpusim/trace.h).
  sim::Trace* trace = nullptr;
  /// Optional shadow-memory sanitizer (gpusim/memcheck.h). The loader
  /// attaches it to the device memory, maps each team to the instance it is
  /// currently executing (feeding the §3.3 cross-instance checker), and
  /// returns its findings in RunResult::memcheck.
  sim::Memcheck* memcheck = nullptr;
};

/// Runs the ensemble. Instance I's exit code lands in result.instances[I].
StatusOr<dgcf::RunResult> RunEnsemble(dgcf::AppEnv& env,
                                      const EnsembleOptions& options);

/// Fig. 5c front end: parses `-f <file> -n <instances> -t <threads>`
/// (plus -m/--teams/--script) for `app`, loading the argument file through
/// the host filesystem, then calls RunEnsemble. With --script, the -f file
/// is treated as an argument script and expanded first.
StatusOr<dgcf::RunResult> RunEnsembleCli(dgcf::AppEnv& env,
                                         const std::string& app,
                                         const std::vector<std::string>& argv,
                                         sim::Trace* trace = nullptr,
                                         sim::Memcheck* memcheck = nullptr);

}  // namespace dgc::ensemble

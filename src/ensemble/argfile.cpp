#include "ensemble/argfile.h"

#include <fstream>
#include <sstream>

#include "support/str.h"

namespace dgc::ensemble {

StatusOr<std::vector<std::vector<std::string>>> ParseArgumentLines(
    std::string_view content) {
  std::vector<std::vector<std::string>> instances;
  std::size_t line_no = 0;
  for (std::string_view raw : SplitChar(content, '\n')) {
    ++line_no;
    // Strip comments (a # outside quotes begins one). Cheap scan that
    // respects the same quoting rules as the tokenizer.
    std::string_view line = raw;
    char quote = 0;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (quote != 0) {
        // Mirror TokenizeCommandLine exactly: inside double quotes \" and
        // \\ are escapes (a mismatch here would truncate the line mid-token
        // and fail tokenization with "unterminated quote").
        if (c == '\\' && quote == '"' && i + 1 < line.size() &&
            (line[i + 1] == '"' || line[i + 1] == '\\')) {
          ++i;
        } else if (c == quote) {
          quote = 0;
        }
      } else if (c == '\'' || c == '"') {
        quote = c;
      } else if (c == '\\') {
        ++i;
      } else if (c == '#') {
        line = line.substr(0, i);
        break;
      }
    }
    if (TrimWhitespace(line).empty()) continue;

    auto tokens = TokenizeCommandLine(line);
    if (!tokens.ok()) {
      return Status(tokens.status().code(),
                    StrFormat("argument file line %zu: %s", line_no,
                              tokens.status().message().c_str()));
    }
    instances.push_back(std::move(*tokens));
  }
  if (instances.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "argument file contains no instances");
  }
  return instances;
}

StatusOr<std::vector<std::vector<std::string>>> LoadArgumentFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(ErrorCode::kNotFound, "cannot open argument file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseArgumentLines(buffer.str());
}

}  // namespace dgc::ensemble

#include "ensemble/argscript.h"

#include <optional>

#include "ensemble/argfile.h"
#include "support/rng.h"
#include "support/str.h"

namespace dgc::ensemble {
namespace {

// ---------------------------------------------------------------------------
// Integer expression evaluator: + - * / % ( ) over int64, variables i and n.
// Recursive descent; whole input must be consumed.
// ---------------------------------------------------------------------------
class ExprParser {
 public:
  ExprParser(std::string_view text, std::int64_t i, std::int64_t n)
      : text_(text), i_(i), n_(n) {}

  StatusOr<std::int64_t> Evaluate() {
    DGC_ASSIGN_OR_RETURN(std::int64_t v, ParseSum());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("unexpected trailing characters");
    }
    return v;
  }

 private:
  Status Error(std::string_view what) const {
    return Status(ErrorCode::kInvalidArgument,
                  StrFormat("expression '%.*s': %.*s at offset %zu",
                            int(text_.size()), text_.data(), int(what.size()),
                            what.data(), pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() && text_[pos_] == ' ') ++pos_;
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<std::int64_t> ParseSum() {
    DGC_ASSIGN_OR_RETURN(std::int64_t lhs, ParseProduct());
    while (true) {
      if (Consume('+')) {
        DGC_ASSIGN_OR_RETURN(std::int64_t rhs, ParseProduct());
        lhs += rhs;
      } else if (Consume('-')) {
        DGC_ASSIGN_OR_RETURN(std::int64_t rhs, ParseProduct());
        lhs -= rhs;
      } else {
        return lhs;
      }
    }
  }

  StatusOr<std::int64_t> ParseProduct() {
    DGC_ASSIGN_OR_RETURN(std::int64_t lhs, ParseUnary());
    while (true) {
      if (Consume('*')) {
        DGC_ASSIGN_OR_RETURN(std::int64_t rhs, ParseUnary());
        lhs *= rhs;
      } else if (Consume('/')) {
        DGC_ASSIGN_OR_RETURN(std::int64_t rhs, ParseUnary());
        if (rhs == 0) return Error("division by zero");
        lhs /= rhs;
      } else if (Consume('%')) {
        DGC_ASSIGN_OR_RETURN(std::int64_t rhs, ParseUnary());
        if (rhs == 0) return Error("modulo by zero");
        lhs %= rhs;
      } else {
        return lhs;
      }
    }
  }

  StatusOr<std::int64_t> ParseUnary() {
    if (Consume('-')) {
      DGC_ASSIGN_OR_RETURN(std::int64_t v, ParseUnary());
      return -v;
    }
    return ParseAtom();
  }

  StatusOr<std::int64_t> ParseAtom() {
    SkipSpace();
    if (Consume('(')) {
      DGC_ASSIGN_OR_RETURN(std::int64_t v, ParseSum());
      if (!Consume(')')) return Error("expected ')'");
      return v;
    }
    if (pos_ >= text_.size()) return Error("expected a value");
    const char c = text_[pos_];
    if (c == 'i') {
      ++pos_;
      return i_;
    }
    if (c == 'n') {
      ++pos_;
      return n_;
    }
    if (c >= '0' && c <= '9') {
      std::int64_t v = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        v = v * 10 + (text_[pos_] - '0');
        ++pos_;
      }
      return v;
    }
    return Error("expected a value");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::int64_t i_, n_;
};

// One {...} generator occurrence within a template line.
struct Generator {
  std::size_t begin;  ///< offset of '{'
  std::size_t end;    ///< offset past '}'
  std::string_view body;
};

StatusOr<std::vector<Generator>> FindGenerators(std::string_view line) {
  std::vector<Generator> out;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] != '{') continue;
    const std::size_t close = line.find('}', i);
    if (close == std::string_view::npos) {
      return Status(ErrorCode::kInvalidArgument, "unterminated '{' generator");
    }
    out.push_back({i, close + 1, line.substr(i + 1, close - i - 1)});
    i = close;
  }
  return out;
}

/// Length a seq generator expands to; nullopt for per-instance generators.
StatusOr<std::optional<std::uint64_t>> GeneratorLength(std::string_view body) {
  body = TrimWhitespace(body);
  if (StartsWith(body, "seq ")) {
    auto parts = SplitWhitespace(body.substr(4));
    if (parts.size() != 2 && parts.size() != 3) {
      return Status(ErrorCode::kInvalidArgument,
                    "seq needs 'seq first last [step]'");
    }
    std::int64_t vals[3] = {0, 0, 1};
    for (std::size_t k = 0; k < parts.size(); ++k) {
      DGC_ASSIGN_OR_RETURN(vals[k], (ExprParser(parts[k], 0, 1).Evaluate()));
    }
    const std::int64_t first = vals[0], last = vals[1], step = vals[2];
    if (step == 0 || (step > 0 && last < first) || (step < 0 && last > first)) {
      return Status(ErrorCode::kInvalidArgument, "empty or diverging seq");
    }
    return std::optional<std::uint64_t>((std::uint64_t)((last - first) / step) + 1);
  }
  return std::optional<std::uint64_t>();
}

StatusOr<std::string> EvaluateGenerator(std::string_view body, std::uint64_t i,
                                        std::uint64_t n, Rng& rng) {
  body = TrimWhitespace(body);
  if (StartsWith(body, "seq ")) {
    auto parts = SplitWhitespace(body.substr(4));
    std::int64_t vals[3] = {0, 0, 1};
    for (std::size_t k = 0; k < parts.size() && k < 3; ++k) {
      DGC_ASSIGN_OR_RETURN(vals[k], (ExprParser(parts[k], 0, 1).Evaluate()));
    }
    return StrFormat("%lld", (long long)(vals[0] + std::int64_t(i) * vals[2]));
  }
  if (StartsWith(body, "rand ")) {
    auto parts = SplitWhitespace(body.substr(5));
    if (parts.size() != 2) {
      return Status(ErrorCode::kInvalidArgument, "rand needs 'rand lo hi'");
    }
    std::int64_t lo, hi;
    DGC_ASSIGN_OR_RETURN(lo, (ExprParser(parts[0], std::int64_t(i),
                                         std::int64_t(n)).Evaluate()));
    DGC_ASSIGN_OR_RETURN(hi, (ExprParser(parts[1], std::int64_t(i),
                                         std::int64_t(n)).Evaluate()));
    if (hi < lo) {
      return Status(ErrorCode::kInvalidArgument, "rand range is empty");
    }
    return StrFormat("%lld", (long long)rng.NextInRange(lo, hi));
  }
  if (StartsWith(body, "choice ")) {
    auto items = SplitChar(body.substr(7), '|');
    if (items.empty()) {
      return Status(ErrorCode::kInvalidArgument, "choice needs items");
    }
    return std::string(TrimWhitespace(items[i % items.size()]));
  }
  DGC_ASSIGN_OR_RETURN(
      std::int64_t v,
      (ExprParser(body, std::int64_t(i), std::int64_t(n)).Evaluate()));
  return StrFormat("%lld", (long long)v);
}

}  // namespace

StatusOr<std::string> ExpandScript(std::string_view script,
                                   std::uint64_t default_seed) {
  Rng rng(default_seed);
  std::string out;
  std::size_t line_no = 0;

  for (std::string_view raw : SplitChar(script, '\n')) {
    ++line_no;
    auto fail = [&](const Status& s) {
      return Status(s.code(), StrFormat("script line %zu: %s", line_no,
                                        s.message().c_str()));
    };

    std::string_view line = TrimWhitespace(raw);
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) {
      line = TrimWhitespace(line.substr(0, hash));
    }
    if (line.empty()) continue;

    std::uint64_t repeat = 0;  // 0: derive from seq generators
    if (line[0] == '@') {
      if (StartsWith(line, "@seed ")) {
        auto seed = ParseInt(line.substr(6));
        if (!seed.ok()) return fail(seed.status());
        rng = Rng(std::uint64_t(*seed));
        continue;
      }
      if (StartsWith(line, "@repeat ")) {
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos) {
          return fail(Status(ErrorCode::kInvalidArgument,
                             "@repeat needs '@repeat N : template'"));
        }
        auto count = ParseInt(TrimWhitespace(line.substr(8, colon - 8)));
        if (!count.ok()) return fail(count.status());
        if (*count <= 0) {
          return fail(Status(ErrorCode::kInvalidArgument,
                             "@repeat count must be positive"));
        }
        repeat = std::uint64_t(*count);
        line = TrimWhitespace(line.substr(colon + 1));
      } else {
        return fail(Status(ErrorCode::kInvalidArgument,
                           "unknown directive (expected @seed or @repeat)"));
      }
    }

    auto generators = FindGenerators(line);
    if (!generators.ok()) return fail(generators.status());

    // Determine the line's instance count from seq generators / @repeat.
    std::uint64_t count = repeat;
    for (const Generator& g : *generators) {
      auto len = GeneratorLength(g.body);
      if (!len.ok()) return fail(len.status());
      if (!len->has_value()) continue;
      if (count == 0) {
        count = **len;
      } else if (count != **len) {
        return fail(Status(
            ErrorCode::kInvalidArgument,
            StrFormat("seq length %llu conflicts with line count %llu",
                      (unsigned long long)**len, (unsigned long long)count)));
      }
    }
    if (count == 0) count = 1;

    for (std::uint64_t i = 0; i < count; ++i) {
      std::string expanded;
      std::size_t cursor = 0;
      for (const Generator& g : *generators) {
        expanded.append(line.substr(cursor, g.begin - cursor));
        auto value = EvaluateGenerator(g.body, i, count, rng);
        if (!value.ok()) return fail(value.status());
        expanded.append(*value);
        cursor = g.end;
      }
      expanded.append(line.substr(cursor));
      out += expanded;
      out += '\n';
    }
  }
  if (out.empty()) {
    return Status(ErrorCode::kInvalidArgument, "script produced no instances");
  }
  return out;
}

StatusOr<std::vector<std::vector<std::string>>> ExpandScriptToArgs(
    std::string_view script, std::uint64_t default_seed) {
  DGC_ASSIGN_OR_RETURN(std::string text, ExpandScript(script, default_seed));
  return ParseArgumentLines(text);
}

}  // namespace dgc::ensemble

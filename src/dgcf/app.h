// Application registry — the simulator-side equivalent of the direct GPU
// compilation user wrapper.
//
// In the real framework (paper §2.1/§2.2) every user source file is treated
// as device code and the user's `main` is canonicalized to
// `int main(int argc, char *argv[])` and renamed to `__user_main`; the
// framework's main wrapper is the new host entry point. Here, "compiling an
// app for the device" means registering its canonical entry point under a
// name; loaders look it up and invoke it on the device.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "gpusim/address.h"
#include "gpusim/task.h"
#include "ompx/team.h"
#include "support/status.h"

namespace dgc::sim {
class Device;
}

namespace dgc::dgcf {

class DeviceLibc;
class RpcHost;

/// Device-side argv: an array of device string pointers (the loader's
/// StringCache holds the characters in device global memory).
using DeviceArgv = const sim::DevicePtr<char>*;

/// The framework facilities an app sees: the device it runs on, the host
/// RPC endpoint, and the partial device libc. One AppEnv is shared by every
/// instance of an ensemble (they contend for the same heap and RPC ring).
struct AppEnv {
  sim::Device* device = nullptr;
  RpcHost* rpc = nullptr;
  DeviceLibc* libc = nullptr;
  /// When true, apps place their initialized read-only inputs in
  /// content-keyed shared segments (DeviceLibc::AcquireSharedGroup) so
  /// identical instances map one physical copy. Off by default: the
  /// duplicated layout is the paper's baseline.
  bool share_data = false;
};

/// The canonicalized `__user_main`: runs on the team's initial thread; uses
/// ompx::Parallel/ParallelFor for its parallel regions.
using UserMainFn = std::function<sim::DeviceTask<int>(
    AppEnv&, ompx::TeamCtx&, int argc, DeviceArgv argv)>;

/// Conventional exit codes mirroring errno usage in the proxy apps.
inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitNoMem = 12;  // ENOMEM

struct AppInfo {
  std::string name;
  std::string description;
  UserMainFn user_main;
};

/// Process-wide registry of device-compiled applications. Lookups are safe
/// from concurrent sweep workers; registration normally happens at load
/// time / before any launch (an AppInfo pointer returned by Find stays
/// valid only until its name is re-registered).
class AppRegistry {
 public:
  static AppRegistry& Instance();

  /// Registers an app; re-registering a name replaces it (last wins, like
  /// relinking) and returns false.
  bool Register(AppInfo info);

  StatusOr<const AppInfo*> Find(const std::string& name) const;
  std::vector<std::string> Names() const;
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return apps_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, AppInfo> apps_;
};

/// Static-initialization helper for registration at load time:
///   DGC_REGISTER_APP(xsbench, "XSBench proxy", XsBenchUserMain);
#define DGC_REGISTER_APP(name, description, fn)                           \
  namespace {                                                             \
  const bool dgc_registered_##name = ::dgc::dgcf::AppRegistry::Instance() \
                                         .Register({#name, description, fn}); \
  }

}  // namespace dgc::dgcf

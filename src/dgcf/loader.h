// The single-instance loader — the main wrapper of the original direct GPU
// compilation framework ([26], §2.2).
//
// It is the baseline the paper's evaluation measures T1 against: map the
// command line to the device, launch ONE team (single-team semantics keep
// host behaviour), call `__user_main`, and map the exit code back. The
// ensemble loader (ensemble/loader.h) extends this to NI instances.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dgcf/app.h"
#include "gpusim/memcheck.h"
#include "gpusim/stats.h"
#include "support/status.h"

namespace dgc::dgcf {

/// Outcome of one application instance.
struct InstanceResult {
  int exit_code = 0;
  /// False when the instance's initial thread died with an exception
  /// instead of returning from __user_main.
  bool completed = false;
};

/// Outcome of a loader run (single instance or ensemble).
struct RunResult {
  std::vector<InstanceResult> instances;
  std::uint64_t kernel_cycles = 0;    ///< device execution incl. launch
  std::uint64_t transfer_cycles = 0;  ///< argv mapping + result map(from:)
  sim::LaunchStats stats;
  std::vector<std::string> failures;
  /// Sanitizer findings when the run was launched with a memcheck attached
  /// (clean/empty otherwise).
  sim::MemcheckReport memcheck;

  std::uint64_t total_cycles() const { return kernel_cycles + transfer_cycles; }
  bool all_ok() const {
    for (const InstanceResult& r : instances) {
      if (!r.completed || r.exit_code != 0) return false;
    }
    return !instances.empty();
  }
};

struct SingleRunOptions {
  std::string app;                 ///< registered application name
  std::vector<std::string> args;   ///< argv[1..]; argv[0] is the app name
  std::uint32_t thread_limit = 1024;
  /// Optional shadow-memory sanitizer; attached to the device memory (and
  /// seeded with pre-existing allocations) before the run builds state.
  sim::Memcheck* memcheck = nullptr;
};

/// Runs one instance on one team, as the original framework does.
StatusOr<RunResult> RunSingleInstance(AppEnv& env,
                                      const SingleRunOptions& options);

}  // namespace dgc::dgcf

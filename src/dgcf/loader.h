// The single-instance loader — the main wrapper of the original direct GPU
// compilation framework ([26], §2.2).
//
// It is the baseline the paper's evaluation measures T1 against: map the
// command line to the device, launch ONE team (single-team semantics keep
// host behaviour), call `__user_main`, and map the exit code back. The
// ensemble loader (ensemble/loader.h) extends this to NI instances.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dgcf/app.h"
#include "gpusim/faults.h"
#include "gpusim/memcheck.h"
#include "gpusim/stats.h"
#include "support/status.h"

namespace dgc::sim {
class Profiler;
}  // namespace dgc::sim

namespace dgc::dgcf {

/// How one application instance ended. kReturned is the only *completed*
/// execution — `__user_main` came back with an exit code (possibly
/// nonzero). Everything else is an abnormal termination the loader
/// contained to this instance; such instances are candidates for
/// retry-relaunch, a nonzero kReturned exit is not (the program ran).
enum class TerminationReason : std::uint8_t {
  kReturned = 0,   ///< __user_main returned; see exit_code
  kNotStarted,     ///< never reached the device (e.g. team lost earlier)
  kException,      ///< uncaught C++ exception in app code
  kTrapOOM,        ///< unchecked allocation failure (heap or shared memory)
  kTrapAbort,      ///< abort() / failed assert() in app code
  kTrapInjected,   ///< FaultPlan trap site
  kDeadlock,       ///< launch deadlocked while this instance was running
  kWatchdog,       ///< cycle budget exhausted (launch- or instance-level)
};

std::string_view ToString(TerminationReason reason);

/// Maps a contained DeviceTrap to the instance-level reason.
TerminationReason ReasonForTrap(sim::TrapKind kind);

/// Outcome of one application instance.
struct InstanceResult {
  int exit_code = 0;
  /// False when the instance did not return from __user_main (trap,
  /// exception, watchdog, deadlock, or never started).
  bool completed = false;
  TerminationReason reason = TerminationReason::kNotStarted;
  /// Human-readable detail for abnormal terminations (the trap message).
  std::string detail;
  /// Device cycles this instance spent executing (across retry waves).
  std::uint64_t cycles = 0;
  /// Launch waves that ran (or started) this instance; > 1 after a retry.
  std::uint32_t attempts = 0;
  /// Device-memory peak and allocation count attributed to this instance
  /// (from DeviceMemory's per-owner accounting; shared-segment bytes are
  /// charged to the materializing instance only).
  std::uint64_t mem_peak_bytes = 0;
  std::uint64_t mem_allocations = 0;
};

/// Outcome of a loader run (single instance or ensemble).
struct RunResult {
  std::vector<InstanceResult> instances;
  std::uint64_t kernel_cycles = 0;    ///< device execution incl. launch
  std::uint64_t transfer_cycles = 0;  ///< argv mapping + result map(from:)
  /// Launch waves executed: 1 normally, more when retry-relaunch ran.
  std::uint32_t waves = 0;
  sim::LaunchStats stats;
  /// Lane-failure and containment messages, `instance=I`-prefixed when the
  /// owning instance is known.
  std::vector<std::string> failures;
  /// Sanitizer findings when the run was launched with a memcheck attached
  /// (clean/empty otherwise).
  sim::MemcheckReport memcheck;
  /// Per-instance counter attribution when the run was profiled (empty
  /// otherwise): entry 0 is the unattributed slot (instance -1), then one
  /// entry per instance in id order. See gpusim/profiler.h.
  std::vector<sim::InstanceStats> instance_stats;
  /// Device-memory counters at the end of the run (peak is the high-water
  /// mark over the whole run).
  sim::DeviceMemSnapshot device_mem;

  std::uint64_t total_cycles() const { return kernel_cycles + transfer_cycles; }
  /// True when every instance completed with exit code 0. An empty
  /// `instances` vector yields false by definition: "no instance ran" is
  /// not a successful run, so a caller that gates on all_ok() can never
  /// mistake a run that launched nothing for a clean one.
  bool all_ok() const {
    for (const InstanceResult& r : instances) {
      if (!r.completed || r.exit_code != 0) return false;
    }
    return !instances.empty();
  }
};

struct SingleRunOptions {
  std::string app;                 ///< registered application name
  std::vector<std::string> args;   ///< argv[1..]; argv[0] is the app name
  std::uint32_t thread_limit = 1024;
  /// Optional shadow-memory sanitizer; attached to the device memory (and
  /// seeded with pre-existing allocations) before the run builds state.
  sim::Memcheck* memcheck = nullptr;
  /// Optional deterministic fault-injection plan (gpusim/faults.h). The
  /// caller wires the same plan into the AppEnv's DeviceLibc/RpcHost if
  /// heap/RPC faults should fire too.
  sim::FaultPlan* faults = nullptr;
  /// Launch watchdog cycle budget; 0 derives the device-spec default.
  std::uint64_t watchdog_cycles = 0;
  /// Optional launch profiler (gpusim/profiler.h); null = off. When set,
  /// the run fills RunResult::instance_stats from it.
  sim::Profiler* profiler = nullptr;
  /// Share content-identical read-only inputs across instances
  /// (AppEnv::share_data). Moot for a single instance but honored, so T1
  /// baselines measure the same code path as the ensemble.
  bool share_data = false;
};

/// Runs one instance on one team, as the original framework does.
StatusOr<RunResult> RunSingleInstance(AppEnv& env,
                                      const SingleRunOptions& options);

}  // namespace dgc::dgcf

#include "dgcf/libc.h"

#include "support/log.h"
#include "support/str.h"

namespace dgc::dgcf {

sim::DeviceTask<sim::DeviceBuffer> DeviceLibc::Malloc(sim::ThreadCtx& ctx,
                                                      std::uint64_t bytes) {
  co_await ctx.Work(kHeapOpCycles);
  // Heap mutation (and fault-plan consumption) below touches launch-global
  // state: order it at this lane's commit slot so threaded launches
  // allocate in exactly the serial order (addresses feed coalescing).
  co_await ctx.HostFence();
  if (faults_ != nullptr && faults_->NextMallocFails()) {
    ++failed_;
    DGC_LOG(kInfo) << "device malloc(" << bytes << ") failed: injected";
    co_return sim::DeviceBuffer{};
  }
  auto buf = device_.Malloc(bytes);
  if (!buf.ok()) {
    ++failed_;
    DGC_LOG(kInfo) << "device malloc(" << bytes
                   << ") failed: " << buf.status().ToString();
    co_return sim::DeviceBuffer{};
  }
  ++live_;
  co_return *buf;
}

sim::DeviceTask<sim::DeviceBuffer> DeviceLibc::MallocOrTrap(
    sim::ThreadCtx& ctx, std::uint64_t bytes) {
  sim::DeviceBuffer buf = co_await Malloc(ctx, bytes);
  if (buf.host == nullptr) {
    throw sim::DeviceTrap(
        sim::TrapKind::kOOM,
        StrFormat("malloc(%llu) failed with no error check",
                  static_cast<unsigned long long>(bytes)));
  }
  co_return buf;
}

sim::DeviceTask<DeviceLibc::SharedGroup> DeviceLibc::AcquireSharedGroup(
    sim::ThreadCtx& ctx, std::uint64_t content_key,
    const std::vector<std::uint64_t>& sizes, const char* label) {
  // Pay the heap cost up front in one Work op: the acquires themselves must
  // not suspend, so attach-vs-materialize is decided atomically per group.
  std::uint64_t heap_ops = 0;
  for (const std::uint64_t bytes : sizes) heap_ops += bytes != 0 ? 1 : 0;
  if (heap_ops != 0) {
    co_await ctx.Work(kHeapOpCycles * heap_ops);
    // Segment acquisition mutates the device-wide shared-segment registry
    // and heap; commit-order it like Malloc.
    co_await ctx.HostFence();
  }

  SharedGroup group;
  group.buffers.resize(sizes.size());
  bool first = false, failed = false;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (sizes[i] == 0) continue;
    if (faults_ != nullptr && faults_->NextMallocFails()) {
      ++failed_;
      DGC_LOG(kInfo) << "shared acquire(" << sizes[i] << ") failed: injected";
      failed = true;
      break;
    }
    // Mix the ordinal into the key so arrays of equal size in one group
    // never alias each other.
    const std::uint64_t key = content_key ^ (0x9e3779b97f4a7c15ull * (i + 1));
    auto seg = device_.memory().AcquireShared(
        key, sizes[i], StrFormat("%s[%zu]", label, i));
    if (!seg.ok()) {
      DGC_LOG(kInfo) << "shared acquire(" << sizes[i]
                     << ") failed: " << seg.status().ToString();
      ++failed_;
      failed = true;
      break;
    }
    first |= seg->first;
    group.buffers[i] = seg->buffer;
    ++live_;
  }
  if (failed) {
    for (const sim::DeviceBuffer& buf : group.buffers) {
      if (buf.host == nullptr) continue;
      (void)device_.Free(buf.addr);
      --live_;
    }
    co_return SharedGroup{};
  }
  // `first` is true when ANY array materialized: if a departing holder freed
  // part of a group before this acquire, the caller re-fills every array.
  // Re-filling an attached array writes bytes identical to its contents
  // (content-keyed), so that is benign.
  group.first = first;
  group.ok = true;
  co_return group;
}

void DeviceLibc::Abort(const char* why) {
  throw sim::DeviceTrap(sim::TrapKind::kAbort, why);
}

void DeviceLibc::AssertFail(const char* expr, const char* file, int line) {
  throw sim::DeviceTrap(
      sim::TrapKind::kAbort,
      StrFormat("assertion `%s' failed at %s:%d", expr, file, line));
}

sim::DeviceTask<void> DeviceLibc::Free(sim::ThreadCtx& ctx,
                                       sim::DeviceAddr addr) {
  // free(NULL) is a no-op and must not pay the heap-lock cost.
  if (addr == 0) co_return;
  co_await ctx.Work(kHeapOpCycles);
  co_await ctx.HostFence();  // heap mutation: commit order, like Malloc
  const Status s = device_.Free(addr);
  if (s.ok()) {
    --live_;
  } else {
    ++failed_frees_;
    DGC_LOG(kInfo) << "device free(" << addr << ") failed: " << s.ToString();
  }
}

namespace {
/// Word-at-a-time span for the mem* routines (8 bytes per slot).
constexpr std::uint64_t kWordsPerBatch = sim::detail::kMaxGather;
}  // namespace

sim::DeviceTask<void> DeviceLibc::Memset(sim::ThreadCtx& ctx,
                                         sim::DevicePtr<std::uint8_t> dst,
                                         std::uint8_t value,
                                         std::uint64_t bytes) {
  std::uint64_t word = 0;
  for (int b = 0; b < 8; ++b) word = (word << 8) | value;
  // Head: byte stores until dst is naturally aligned for 8-byte words — a
  // misaligned base must not be widened into misaligned word stores.
  const std::uint64_t head = std::min(bytes, (8 - dst.addr % 8) % 8);
  for (std::uint64_t t = 0; t < head; ++t) {
    co_await ctx.Store(dst + std::ptrdiff_t(t), value);
  }
  // Bulk: 8-byte stores in pipelined batches.
  auto dst64 = (dst + std::ptrdiff_t(head)).Cast<std::uint64_t>();
  const std::uint64_t words = (bytes - head) / 8;
  std::uint64_t i = 0;
  while (i < words) {
    auto s = ctx.Scatter<std::uint64_t>();
    const std::uint64_t chunk = std::min(words - i, kWordsPerBatch);
    for (std::uint64_t j = 0; j < chunk; ++j) {
      s.Add(dst64 + std::ptrdiff_t(i + j), word);
    }
    co_await s;
    i += chunk;
  }
  // Tail bytes.
  for (std::uint64_t t = head + words * 8; t < bytes; ++t) {
    co_await ctx.Store(dst + std::ptrdiff_t(t), value);
  }
}

sim::DeviceTask<void> DeviceLibc::Memcpy(sim::ThreadCtx& ctx,
                                         sim::DevicePtr<std::uint8_t> dst,
                                         sim::DevicePtr<std::uint8_t> src,
                                         std::uint64_t bytes) {
  // Head: byte copies until dst is word-aligned. If src does not share
  // dst's alignment the word path would issue misaligned loads, so the
  // whole copy degrades to byte traffic (what compiled code does too).
  std::uint64_t head = std::min(bytes, (8 - dst.addr % 8) % 8);
  if ((src.addr + head) % 8 != 0) head = bytes;
  for (std::uint64_t t = 0; t < head; ++t) {
    const std::uint8_t v = co_await ctx.Load(src + std::ptrdiff_t(t));
    co_await ctx.Store(dst + std::ptrdiff_t(t), v);
  }
  auto dst64 = (dst + std::ptrdiff_t(head)).Cast<std::uint64_t>();
  auto src64 = (src + std::ptrdiff_t(head)).Cast<std::uint64_t>();
  const std::uint64_t words = (bytes - head) / 8;
  std::uint64_t i = 0;
  while (i < words) {
    const std::uint64_t chunk = std::min(words - i, kWordsPerBatch);
    auto g = ctx.LoadRun(src64 + std::ptrdiff_t(i), std::uint32_t(chunk));
    co_await g;
    auto s = ctx.Scatter<std::uint64_t>();
    for (std::uint64_t j = 0; j < chunk; ++j) {
      s.Add(dst64 + std::ptrdiff_t(i + j), g.Result(std::uint32_t(j)));
    }
    co_await s;
    i += chunk;
  }
  for (std::uint64_t t = head + words * 8; t < bytes; ++t) {
    const std::uint8_t v = co_await ctx.Load(src + std::ptrdiff_t(t));
    co_await ctx.Store(dst + std::ptrdiff_t(t), v);
  }
}

std::uint64_t DeviceLibc::StrLen(sim::DevicePtr<char> s) {
  std::uint64_t n = 0;
  while (s.host[n] != '\0') ++n;
  return n;
}

int DeviceLibc::StrCmp(sim::DevicePtr<char> a, const char* b) {
  std::uint64_t i = 0;
  while (a.host[i] != '\0' && a.host[i] == b[i]) ++i;
  return int(static_cast<unsigned char>(a.host[i])) -
         int(static_cast<unsigned char>(b[i]));
}

std::string DeviceLibc::ToString(sim::DevicePtr<char> s) {
  return std::string(s.host, StrLen(s));
}

}  // namespace dgc::dgcf

// Device-side argv construction — the paper's StringCache (Fig. 4).
//
// For each instance the loader builds `argv[0..argc)` as pointers into one
// device allocation holding all argument strings back to back, then maps it
// to the device. The same block serves the single-instance loader (one row)
// and the ensemble loader (one row per instance).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dgcf/app.h"
#include "gpusim/device.h"
#include "support/status.h"

namespace dgc::dgcf {

class ArgvBlock {
 public:
  /// Builds the block: `per_instance_args[i]` is instance i's full argv
  /// (argv[0] included). Charges one H2D transfer for the string cache.
  static StatusOr<ArgvBlock> Build(
      sim::Device& device,
      const std::vector<std::vector<std::string>>& per_instance_args);

  ArgvBlock(ArgvBlock&& o) noexcept;
  ArgvBlock& operator=(ArgvBlock&& o) noexcept;
  ~ArgvBlock();

  std::uint32_t instances() const { return std::uint32_t(argc_.size()); }
  int argc(std::uint32_t instance) const { return argc_[instance]; }
  DeviceArgv argv(std::uint32_t instance) const {
    return argv_[instance].data();
  }

  /// H2D cycles paid to map the strings.
  std::uint64_t transfer_cycles() const { return transfer_cycles_; }
  std::uint64_t cache_bytes() const { return cache_.bytes; }

 private:
  ArgvBlock() = default;

  sim::Device* device_ = nullptr;
  sim::DeviceBuffer cache_;  ///< the StringCache device allocation
  std::vector<int> argc_;
  std::vector<std::vector<sim::DevicePtr<char>>> argv_;
  std::uint64_t transfer_cycles_ = 0;
};

}  // namespace dgc::dgcf

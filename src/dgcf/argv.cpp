#include "dgcf/argv.h"

#include <cstring>

#include "support/log.h"

namespace dgc::dgcf {

StatusOr<ArgvBlock> ArgvBlock::Build(
    sim::Device& device,
    const std::vector<std::vector<std::string>>& per_instance_args) {
  if (per_instance_args.empty()) {
    return Status(ErrorCode::kInvalidArgument, "no instances");
  }
  std::uint64_t total = 0;
  for (const auto& args : per_instance_args) {
    if (args.empty()) {
      return Status(ErrorCode::kInvalidArgument,
                    "an instance needs at least argv[0]");
    }
    for (const auto& arg : args) total += arg.size() + 1;
  }

  ArgvBlock block;
  block.device_ = &device;
  DGC_ASSIGN_OR_RETURN(block.cache_, device.Malloc(total));

  // Fill host-side, then charge one mapping transfer (map(to:) of the
  // cache), exactly like the loader's bulk argument mapping.
  std::uint64_t offset = 0;
  char* base = reinterpret_cast<char*>(block.cache_.host);
  for (const auto& args : per_instance_args) {
    auto& row = block.argv_.emplace_back();
    row.reserve(args.size());
    for (const auto& arg : args) {
      std::memcpy(base + offset, arg.c_str(), arg.size() + 1);
      row.push_back(sim::DevicePtr<char>{block.cache_.addr + offset,
                                         base + offset});
      offset += arg.size() + 1;
    }
    block.argc_.push_back(int(args.size()));
  }
  block.transfer_cycles_ = sim::TransferCycles(device.spec(), total);
  return block;
}

ArgvBlock::ArgvBlock(ArgvBlock&& o) noexcept
    : device_(std::exchange(o.device_, nullptr)),
      cache_(std::exchange(o.cache_, {})),
      argc_(std::move(o.argc_)),
      argv_(std::move(o.argv_)),
      transfer_cycles_(o.transfer_cycles_) {}

ArgvBlock& ArgvBlock::operator=(ArgvBlock&& o) noexcept {
  if (this != &o) {
    this->~ArgvBlock();
    new (this) ArgvBlock(std::move(o));
  }
  return *this;
}

ArgvBlock::~ArgvBlock() {
  if (device_ != nullptr && cache_.host != nullptr) {
    const Status s = device_->Free(cache_.addr);
    if (!s.ok()) DGC_LOG(kError) << "ArgvBlock teardown: " << s.ToString();
  }
}

}  // namespace dgc::dgcf

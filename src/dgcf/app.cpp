#include "dgcf/app.h"

namespace dgc::dgcf {

AppRegistry& AppRegistry::Instance() {
  static AppRegistry registry;
  return registry;
}

bool AppRegistry::Register(AppInfo info) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = apps_.insert_or_assign(info.name, std::move(info));
  (void)it;
  return inserted;
}

StatusOr<const AppInfo*> AppRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = apps_.find(name);
  if (it == apps_.end()) {
    return Status(ErrorCode::kNotFound,
                  "no device-compiled application named '" + name + "'");
  }
  // std::map iterators are stable: the pointer survives other insertions,
  // and outliving a re-registration of the same name is documented out.
  return &it->second;
}

std::vector<std::string> AppRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(apps_.size());
  for (const auto& [name, info] : apps_) names.push_back(name);
  return names;
}

}  // namespace dgc::dgcf

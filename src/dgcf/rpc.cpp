#include "dgcf/rpc.h"

#include <cstring>

// RPC handler lambdas are held in named coroutine locals and passed to
// HostCall by pointer — see the HostCall contract in gpusim/ctx.h. They may
// capture the coroutine's parameters by reference: the frame stays alive
// while the lane is suspended on the call.

namespace dgc::dgcf {

sim::DeviceTask<int> RpcHost::Print(sim::ThreadCtx& ctx, std::string text) {
  std::function<std::uint64_t()> handler = [this, &text]() -> std::uint64_t {
    ++calls_;
    if (InjectFailure()) return std::uint64_t(-1);
    stdout_ += text;
    return text.size();
  };
  const std::uint64_t n = co_await ctx.HostCall(&handler, RoundTrip());
  co_return int(n);
}

sim::DeviceTask<std::int64_t> RpcHost::ReadFile(sim::ThreadCtx& ctx,
                                                std::string path,
                                                sim::DevicePtr<std::byte> dst,
                                                std::uint64_t offset,
                                                std::uint64_t bytes) {
  // The payload crosses PCIe in addition to the ring round trip.
  const std::uint64_t cost =
      RoundTrip() + sim::TransferCycles(device_.spec(), bytes);
  std::function<std::uint64_t()> handler = [this, &path, dst, offset,
                                            bytes]() -> std::uint64_t {
    ++calls_;
    if (InjectFailure()) return std::uint64_t(-1);
    auto it = files_.find(path);
    if (it == files_.end()) return std::uint64_t(-1);
    const auto& data = it->second;
    if (offset >= data.size()) return 0;
    const std::uint64_t n = std::min<std::uint64_t>(bytes, data.size() - offset);
    std::memcpy(dst.host, data.data() + offset, n);
    return n;
  };
  const std::uint64_t reply = co_await ctx.HostCall(&handler, cost);
  co_return std::int64_t(reply);
}

sim::DeviceTask<std::int64_t> RpcHost::FileSize(sim::ThreadCtx& ctx,
                                                std::string path) {
  std::function<std::uint64_t()> handler = [this, &path]() -> std::uint64_t {
    ++calls_;
    if (InjectFailure()) return std::uint64_t(-1);
    auto it = files_.find(path);
    return it == files_.end() ? std::uint64_t(-1) : it->second.size();
  };
  const std::uint64_t reply = co_await ctx.HostCall(&handler, RoundTrip());
  co_return std::int64_t(reply);
}

sim::DeviceTask<std::int64_t> RpcHost::WriteFile(
    sim::ThreadCtx& ctx, std::string path, sim::DevicePtr<const std::byte> src,
    std::uint64_t bytes) {
  const std::uint64_t cost =
      RoundTrip() + sim::TransferCycles(device_.spec(), bytes);
  std::function<std::uint64_t()> handler = [this, &path, src,
                                            bytes]() -> std::uint64_t {
    ++calls_;
    if (InjectFailure()) return std::uint64_t(-1);
    auto& file = files_[path];
    const std::size_t offset = file.size();
    file.resize(offset + bytes);
    std::memcpy(file.data() + offset, src.host, bytes);
    return bytes;
  };
  const std::uint64_t reply = co_await ctx.HostCall(&handler, cost);
  co_return std::int64_t(reply);
}

const std::vector<std::byte>* RpcHost::GetFile(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

void RpcHost::AddFile(std::string path, std::vector<std::byte> contents) {
  files_[std::move(path)] = std::move(contents);
}

void RpcHost::AddTextFile(std::string path, std::string_view contents) {
  std::vector<std::byte> bytes(contents.size());
  std::memcpy(bytes.data(), contents.data(), contents.size());
  AddFile(std::move(path), std::move(bytes));
}

}  // namespace dgc::dgcf

#include "dgcf/loader.h"

#include "dgcf/argv.h"
#include "gpusim/device.h"
#include "gpusim/lane.h"
#include "gpusim/profiler.h"
#include "ompx/league.h"
#include "support/str.h"

namespace dgc::dgcf {

std::string_view ToString(TerminationReason reason) {
  switch (reason) {
    case TerminationReason::kReturned: return "returned";
    case TerminationReason::kNotStarted: return "not-started";
    case TerminationReason::kException: return "exception";
    case TerminationReason::kTrapOOM: return "oom";
    case TerminationReason::kTrapAbort: return "abort";
    case TerminationReason::kTrapInjected: return "injected";
    case TerminationReason::kDeadlock: return "deadlock";
    case TerminationReason::kWatchdog: return "watchdog";
  }
  return "unknown";
}

TerminationReason ReasonForTrap(sim::TrapKind kind) {
  switch (kind) {
    case sim::TrapKind::kOOM: return TerminationReason::kTrapOOM;
    case sim::TrapKind::kAbort: return TerminationReason::kTrapAbort;
    case sim::TrapKind::kWatchdog: return TerminationReason::kWatchdog;
    case sim::TrapKind::kInjected: return TerminationReason::kTrapInjected;
    case sim::TrapKind::kNone: break;
  }
  return TerminationReason::kException;
}

StatusOr<RunResult> RunSingleInstance(AppEnv& env,
                                      const SingleRunOptions& options) {
  DGC_CHECK(env.device != nullptr);
  DGC_ASSIGN_OR_RETURN(const AppInfo* app,
                       AppRegistry::Instance().Find(options.app));
  if (options.memcheck != nullptr) {
    options.memcheck->Attach(env.device->memory());
    options.memcheck->SetTeamInstance(0, 0);
  }
  env.share_data = options.share_data;
  // Attribute device allocations: everything issued from a lane belongs to
  // the single instance; host-side setup stays unattributed (-1).
  env.device->memory().set_instance_resolver(
      [] { return sim::CurrentLane() != nullptr ? 0 : -1; });

  std::vector<std::string> argv_row;
  argv_row.reserve(options.args.size() + 1);
  argv_row.push_back(options.app);
  argv_row.insert(argv_row.end(), options.args.begin(), options.args.end());
  DGC_ASSIGN_OR_RETURN(ArgvBlock argv, ArgvBlock::Build(*env.device, {argv_row}));

  RunResult run;
  run.instances.resize(1);
  run.transfer_cycles = argv.transfer_cycles();

  ompx::TeamsConfig cfg;
  cfg.num_teams = 1;  // single-team execution preserves host semantics
  cfg.thread_limit = options.thread_limit;
  cfg.name = "single-instance";
  cfg.memcheck = options.memcheck;
  cfg.faults = options.faults;
  cfg.watchdog_cycles = options.watchdog_cycles != 0
                            ? options.watchdog_cycles
                            : env.device->spec().DefaultWatchdogCycles();
  // One instance: every lane of the launch belongs to it.
  cfg.instance_of = [](std::uint32_t, std::uint32_t) { return 0; };
  cfg.profiler = options.profiler;

  InstanceResult& inst = run.instances[0];
  auto result = ompx::LaunchTeams(
      *env.device, cfg,
      [&](ompx::TeamCtx& team) -> sim::DeviceTask<void> {
        inst.attempts = 1;
        const std::uint64_t started = team.hw->Now();
        try {
          inst.exit_code =
              co_await app->user_main(env, team, argv.argc(0), argv.argv(0));
          inst.completed = true;
          inst.reason = TerminationReason::kReturned;
        } catch (const sim::DeviceTrap& trap) {
          inst.reason = ReasonForTrap(trap.kind());
          inst.detail = trap.what();
        } catch (const std::exception& e) {
          inst.reason = TerminationReason::kException;
          inst.detail = e.what();
        }
        inst.cycles = team.hw->Now() - started;
        // A trapped initial thread still terminates the team normally (the
        // loader lambda returns), so the launch drains and siblings — here
        // none — are unaffected. Re-raise nothing: the failure is already
        // recorded on the instance; the per-lane failure log entry comes
        // from RecordFailure only for lanes that die, which this one no
        // longer does.
      });
  DGC_RETURN_IF_ERROR(result.status());

  run.waves = 1;
  run.kernel_cycles = result->cycles;
  run.stats = result->stats;
  run.failures = std::move(result->failures);
  run.memcheck = std::move(result->memcheck);
  if (result->outcome == sim::LaunchOutcome::kDeadlocked && !inst.completed &&
      inst.reason == TerminationReason::kNotStarted) {
    inst.reason = TerminationReason::kDeadlock;
  }
  if (!inst.completed && inst.reason != TerminationReason::kNotStarted &&
      inst.reason != TerminationReason::kReturned) {
    // Containment messages reach the failure log even though no lane died.
    run.failures.push_back(StrFormat("instance=0 contained: %s (%s)",
                                     std::string(ToString(inst.reason)).c_str(),
                                     inst.detail.c_str()));
  }
  // Mapping back the Ret value (map(from:Ret[:1])).
  run.transfer_cycles += sim::TransferCycles(env.device->spec(), sizeof(int));
  if (options.profiler != nullptr) {
    options.profiler->SetInstanceElapsed(0, inst.cycles);
    run.instance_stats = options.profiler->instances();
  }
  run.device_mem = env.device->memory().Snapshot();
  const auto& owner_stats = env.device->memory().owner_stats();
  if (auto it = owner_stats.find(0); it != owner_stats.end()) {
    inst.mem_peak_bytes = it->second.peak_bytes;
    inst.mem_allocations = it->second.total_allocations;
  }
  env.device->memory().set_instance_resolver(nullptr);
  return run;
}

}  // namespace dgc::dgcf

#include "dgcf/loader.h"

#include "dgcf/argv.h"
#include "gpusim/device.h"
#include "ompx/league.h"

namespace dgc::dgcf {

StatusOr<RunResult> RunSingleInstance(AppEnv& env,
                                      const SingleRunOptions& options) {
  DGC_CHECK(env.device != nullptr);
  DGC_ASSIGN_OR_RETURN(const AppInfo* app,
                       AppRegistry::Instance().Find(options.app));
  if (options.memcheck != nullptr) {
    options.memcheck->Attach(env.device->memory());
    options.memcheck->SetTeamInstance(0, 0);
  }

  std::vector<std::string> argv_row;
  argv_row.reserve(options.args.size() + 1);
  argv_row.push_back(options.app);
  argv_row.insert(argv_row.end(), options.args.begin(), options.args.end());
  DGC_ASSIGN_OR_RETURN(ArgvBlock argv, ArgvBlock::Build(*env.device, {argv_row}));

  RunResult run;
  run.instances.resize(1);
  run.transfer_cycles = argv.transfer_cycles();

  ompx::TeamsConfig cfg;
  cfg.num_teams = 1;  // single-team execution preserves host semantics
  cfg.thread_limit = options.thread_limit;
  cfg.name = "single-instance";
  cfg.memcheck = options.memcheck;

  InstanceResult& inst = run.instances[0];
  auto result = ompx::LaunchTeams(
      *env.device, cfg,
      [&](ompx::TeamCtx& team) -> sim::DeviceTask<void> {
        inst.exit_code =
            co_await app->user_main(env, team, argv.argc(0), argv.argv(0));
        inst.completed = true;
      });
  DGC_RETURN_IF_ERROR(result.status());

  run.kernel_cycles = result->cycles;
  run.stats = result->stats;
  run.failures = std::move(result->failures);
  run.memcheck = std::move(result->memcheck);
  // Mapping back the Ret value (map(from:Ret[:1])).
  run.transfer_cycles += sim::TransferCycles(env.device->spec(), sizeof(int));
  return run;
}

}  // namespace dgc::dgcf

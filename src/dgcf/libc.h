// Partial device libc.
//
// Direct GPU compilation ships a partial libc as device code ([26], Fig. 2)
// so that ordinary host programs link and run: a device heap, string and
// conversion routines (used by argument parsing in `__user_main`), and
// printf via the host RPC. String helpers here operate on device pointers
// through their host backing; they are *untimed* by design — they run in
// per-instance setup code whose cost is negligible next to the kernels —
// while heap operations charge an allocation cost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/ctx.h"
#include "gpusim/device.h"
#include "gpusim/faults.h"
#include "gpusim/task.h"
#include "support/status.h"

namespace dgc::dgcf {

class DeviceLibc {
 public:
  explicit DeviceLibc(sim::Device& device) : device_(device) {}

  DeviceLibc(const DeviceLibc&) = delete;
  DeviceLibc& operator=(const DeviceLibc&) = delete;

  /// Installs a deterministic fault plan: each Malloc first consults
  /// plan->NextMallocFails() and fails (null buffer) when it says so, as if
  /// the heap were exhausted. nullptr turns injection off.
  void set_fault_plan(sim::FaultPlan* plan) { faults_ = plan; }

  /// Device-side malloc: charges the allocation cost and returns the
  /// buffer, or a null buffer (host == nullptr) on out-of-memory — the
  /// C-malloc contract; callers must check. This is how ensemble instances
  /// contend for device memory capacity (the paper's Page-Rank limit).
  sim::DeviceTask<sim::DeviceBuffer> Malloc(sim::ThreadCtx& ctx,
                                            std::uint64_t bytes);

  /// Malloc for code that does NOT check (most directly-compiled apps
  /// dereference malloc results unconditionally): throws
  /// DeviceTrap(kOOM) on allocation failure instead of returning a null
  /// buffer, so the loader can contain the failure to the instance.
  sim::DeviceTask<sim::DeviceBuffer> MallocOrTrap(sim::ThreadCtx& ctx,
                                                  std::uint64_t bytes);

  /// abort(3): terminates the calling instance with an abort trap.
  /// [[noreturn]] in spirit — always throws DeviceTrap(kAbort).
  static void Abort(const char* why = "abort() called");

  /// assert(3) failure path: formats `expr` at file:line into the trap
  /// message and aborts the instance.
  static void AssertFail(const char* expr, const char* file, int line);

  /// Result of AcquireSharedGroup: one buffer per requested size (null for
  /// zero sizes), plus whether this instance materialized the group and must
  /// fill it. `ok == false` means out of memory — nothing is held.
  struct SharedGroup {
    std::vector<sim::DeviceBuffer> buffers;
    bool first = false;
    bool ok = false;
  };

  /// Acquires a group of content-keyed shared read-only segments in one
  /// atomic step (no suspension between the per-array acquires, so `first`
  /// is uniform across the group). The i-th array's key is derived from
  /// `content_key` and its ordinal. Charges one heap operation per array.
  /// On partial OOM every acquired segment is released and ok is false.
  /// Each buffer is released with an ordinary Free (reference-counted).
  sim::DeviceTask<SharedGroup> AcquireSharedGroup(
      sim::ThreadCtx& ctx, std::uint64_t content_key,
      const std::vector<std::uint64_t>& sizes, const char* label);

  /// Device-side free. free(NULL) is a free no-op, like C; freeing an
  /// unknown address is ignored functionally but counted (and is a
  /// memcheck invalid-free finding when a sanitizer is attached).
  sim::DeviceTask<void> Free(sim::ThreadCtx& ctx, sim::DeviceAddr addr);

  std::uint64_t live_allocations() const { return live_; }
  std::uint64_t failed_allocations() const { return failed_; }
  std::uint64_t failed_frees() const { return failed_frees_; }

  /// Timed memset over device memory: issued as pipelined store batches
  /// (the memory traffic a device-side memset loop generates).
  static sim::DeviceTask<void> Memset(sim::ThreadCtx& ctx,
                                      sim::DevicePtr<std::uint8_t> dst,
                                      std::uint8_t value, std::uint64_t bytes);

  /// Timed device-to-device memcpy: gather + scatter batches.
  static sim::DeviceTask<void> Memcpy(sim::ThreadCtx& ctx,
                                      sim::DevicePtr<std::uint8_t> dst,
                                      sim::DevicePtr<std::uint8_t> src,
                                      std::uint64_t bytes);

  // --- String routines over device pointers (untimed setup-path helpers) ---
  static std::uint64_t StrLen(sim::DevicePtr<char> s);
  static int StrCmp(sim::DevicePtr<char> a, const char* b);
  static std::string ToString(sim::DevicePtr<char> s);

  /// Cost charged per Malloc/Free call, in device cycles (the deviceRTL
  /// heap lock + bookkeeping).
  static constexpr std::uint64_t kHeapOpCycles = 400;

 private:
  sim::Device& device_;
  sim::FaultPlan* faults_ = nullptr;
  std::uint64_t live_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t failed_frees_ = 0;
};

}  // namespace dgc::dgcf

// Host RPC framework.
//
// Direct GPU compilation delegates operations a GPU cannot perform (console
// output, file access, process exit) to a host thread through an RPC ring
// ([26]'s host RPC framework, made automatic in [27]). Each device-side
// call suspends the calling lane, pays the round-trip latency, and the host
// handler runs at service time — consecutive calls serialize, like a real
// single-consumer RPC ring.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gpusim/ctx.h"
#include "gpusim/device.h"
#include "gpusim/faults.h"
#include "gpusim/task.h"
#include "support/status.h"

namespace dgc::dgcf {

class RpcHost {
 public:
  explicit RpcHost(sim::Device& device) : device_(device) {}

  RpcHost(const RpcHost&) = delete;
  RpcHost& operator=(const RpcHost&) = delete;

  /// Installs a deterministic fault plan: each service call first consults
  /// plan->NextRpcFails(); a failed call still pays the full round-trip
  /// latency but the handler performs no work and the device sees -1 (the
  /// errno-style failure return of every service). nullptr turns it off.
  void set_fault_plan(sim::FaultPlan* plan) { faults_ = plan; }

  // --- Device-side services (call from kernels with co_await) --------------

  /// printf: `text` is pre-formatted by the device stub (the real framework
  /// marshals the format string and arguments through the ring; the end
  /// effect and cost are the same). Returns the byte count, like printf.
  sim::DeviceTask<int> Print(sim::ThreadCtx& ctx, std::string text);

  /// Reads up to `bytes` from a host file at `offset` into device memory.
  /// Returns the byte count read, or -1 when the file does not exist.
  sim::DeviceTask<std::int64_t> ReadFile(sim::ThreadCtx& ctx,
                                         std::string path,
                                         sim::DevicePtr<std::byte> dst,
                                         std::uint64_t offset,
                                         std::uint64_t bytes);

  /// Size of a host file, or -1 when absent.
  sim::DeviceTask<std::int64_t> FileSize(sim::ThreadCtx& ctx,
                                         std::string path);

  /// Appends `bytes` of device memory to a host file (created on first
  /// write) — how a directly-compiled app emits its result files.
  sim::DeviceTask<std::int64_t> WriteFile(sim::ThreadCtx& ctx,
                                          std::string path,
                                          sim::DevicePtr<const std::byte> src,
                                          std::uint64_t bytes);

  // --- Host-side state -------------------------------------------------------

  /// The simulated host filesystem visible to device code.
  void AddFile(std::string path, std::vector<std::byte> contents);
  void AddTextFile(std::string path, std::string_view contents);
  /// Reads back a file written by device code; nullptr when absent.
  const std::vector<std::byte>* GetFile(const std::string& path) const;

  /// Everything device code printed, in service order.
  const std::string& stdout_text() const { return stdout_; }
  void ClearStdout() { stdout_.clear(); }

  std::uint64_t calls_serviced() const { return calls_; }
  /// Calls failed by the installed fault plan.
  std::uint64_t calls_failed() const { return failed_calls_; }

 private:
  std::uint64_t RoundTrip() const {
    return device_.spec().rpc_roundtrip_cycles;
  }

  /// True when the fault plan fails the call being serviced (counted).
  bool InjectFailure() {
    if (faults_ == nullptr || !faults_->NextRpcFails()) return false;
    ++failed_calls_;
    return true;
  }

  sim::Device& device_;
  sim::FaultPlan* faults_ = nullptr;
  std::string stdout_;
  std::map<std::string, std::vector<std::byte>> files_;
  std::uint64_t calls_ = 0;
  std::uint64_t failed_calls_ = 0;
};

}  // namespace dgc::dgcf

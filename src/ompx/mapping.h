// OpenMP-style data environment: `map(to/from/tofrom/alloc)` semantics with
// a PCIe transfer cost model. A DataEnv owns the device allocations it
// created and releases them on destruction (end of the data region).
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/device.h"

namespace dgc::ompx {

class DataEnv {
 public:
  explicit DataEnv(sim::Device& device) : device_(device) {}
  ~DataEnv();

  DataEnv(const DataEnv&) = delete;
  DataEnv& operator=(const DataEnv&) = delete;

  /// map(to:) — allocate and copy host→device.
  StatusOr<sim::DeviceBuffer> MapTo(const void* host, std::uint64_t bytes);

  /// map(alloc:) — allocate uninitialized device storage.
  StatusOr<sim::DeviceBuffer> MapAlloc(std::uint64_t bytes);

  /// map(tofrom:) — like MapTo, and registered for copy-back on Sync.
  StatusOr<sim::DeviceBuffer> MapToFrom(void* host, std::uint64_t bytes);

  /// map(from:) — allocate, and register for copy-back on Sync.
  StatusOr<sim::DeviceBuffer> MapFrom(void* host, std::uint64_t bytes);

  /// Copies every from/tofrom mapping back to its host location.
  void Sync();

  /// Device cycles spent on transfers so far (both directions).
  std::uint64_t transfer_cycles() const { return transfer_cycles_; }
  std::uint64_t bytes_to_device() const { return bytes_to_device_; }
  std::uint64_t bytes_from_device() const { return bytes_from_device_; }

 private:
  struct CopyBack {
    void* host;
    sim::DeviceBuffer buffer;
    /// The mapped size as requested — the device allocation is rounded up
    /// to the allocator alignment, but only this many bytes belong to the
    /// host object.
    std::uint64_t bytes;
  };

  sim::Device& device_;
  std::vector<sim::DeviceBuffer> owned_;
  std::vector<CopyBack> copy_backs_;
  std::uint64_t transfer_cycles_ = 0;
  std::uint64_t bytes_to_device_ = 0;
  std::uint64_t bytes_from_device_ = 0;
};

}  // namespace dgc::ompx

#include "ompx/league.h"

#include "support/str.h"

namespace dgc::ompx {

StatusOr<sim::LaunchResult> LaunchTeams(sim::Device& device,
                                        const TeamsConfig& cfg,
                                        const TeamMain& team_main) {
  if (cfg.num_teams == 0) {
    return Status(ErrorCode::kInvalidArgument, "num_teams must be positive");
  }
  if (cfg.thread_limit == 0) {
    return Status(ErrorCode::kInvalidArgument, "thread_limit must be positive");
  }
  if (cfg.teams_per_block == 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "teams_per_block must be positive");
  }
  const std::uint64_t block_threads =
      std::uint64_t(cfg.thread_limit) * cfg.teams_per_block;
  if (block_threads > std::uint64_t(device.spec().max_threads_per_block)) {
    return Status(
        ErrorCode::kInvalidArgument,
        StrFormat("thread_limit %u x %u teams/block exceeds the device "
                  "block limit of %d threads",
                  cfg.thread_limit, cfg.teams_per_block,
                  device.spec().max_threads_per_block));
  }

  const std::uint32_t m = cfg.teams_per_block;
  const std::uint32_t blocks = (cfg.num_teams + m - 1) / m;
  sim::LaunchConfig launch;
  launch.grid = {blocks, 1, 1};
  launch.block = {cfg.thread_limit, m, 1};
  launch.shared_bytes = m * kTeamSharedReserve + cfg.user_shared_bytes;
  launch.name = cfg.name;
  launch.trace = cfg.trace;
  launch.memcheck = cfg.memcheck;
  launch.faults = cfg.faults;
  launch.watchdog_cycles = cfg.watchdog_cycles;
  launch.instance_of = cfg.instance_of;
  launch.profiler = cfg.profiler;
  launch.launch_threads = cfg.launch_threads;
  launch.launch_window_cycles = cfg.launch_window_cycles;

  const std::uint32_t num_teams = cfg.num_teams;
  const std::uint32_t team_size = cfg.thread_limit;

  sim::KernelFn kernel = [&team_main, num_teams, team_size,
                          m](sim::ThreadCtx& ctx) -> sim::DeviceTask<void> {
    // Pre-suspension setup: deterministic (thread 0 of the block runs
    // first), so the control block exists before any lane needs it.
    BlockControl& control = EnsureBlockControl(ctx, m, team_size);
    const std::uint32_t local_team = ctx.tid3.y;
    const std::uint32_t team_id = ctx.block_id * m + local_team;
    if (team_id >= num_teams) co_return;  // padding row in the last block

    TeamCtx team;
    team.hw = &ctx;
    team.team_id = team_id;
    team.num_teams = num_teams;
    team.team_rank = ctx.tid3.x;
    team.team_size = team_size;
    team.barrier = control.team_barriers[local_team].get();
    team.state = &control.team_states[local_team];
    ctx.lane->memberships.push_back(team.barrier);

    if (team.team_rank == 0) {
      std::exception_ptr error;
      try {
        co_await team_main(team);
      } catch (...) {
        // The initial thread is dying; workers must still be released, or
        // they would cycle on the team barrier forever.
        error = std::current_exception();
      }
      if (team.team_size > 1) {
        team.state->phase = TeamState::Phase::kTerminate;
        co_await team.Sync();  // wake workers so they can exit
      }
      if (error) std::rethrow_exception(error);
    } else {
      co_await WorkerLoop(team);
    }
  };

  return device.Launch(launch, kernel);
}

}  // namespace dgc::ompx

// OpenMP team abstraction over simulator thread blocks.
//
// In LLVM OpenMP a team maps to one thread block; the paper's ensemble
// loader maps one application *instance* per team. The §3.1 extension maps
// M instances into one block as rows of a (N/M, M, 1) block shape — so a
// "team" here is either a whole block (M = 1) or one row of it (M > 1),
// with its own barrier domain and control state.
//
// The control state implements the deviceRTL-style worker state machine:
// the team's initial thread (rank 0) runs the sequential user code while
// workers park at the team barrier; a `parallel` region publishes a job,
// releases the workers, joins them, and returns to sequential execution.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "gpusim/barrier.h"
#include "gpusim/block.h"
#include "gpusim/ctx.h"
#include "gpusim/task.h"

namespace dgc::ompx {

/// A parallel-region body: executed by every thread of the team with its
/// rank and the team size (OpenMP `parallel`; `for` loops layer on top).
using ParallelBody = std::function<sim::DeviceTask<void>(
    sim::ThreadCtx&, std::uint32_t rank, std::uint32_t team_size)>;

/// Per-team control block for the worker state machine.
struct TeamState {
  enum class Phase : std::uint8_t { kIdle, kParallel, kTerminate };
  Phase phase = Phase::kIdle;
  const ParallelBody* job = nullptr;  ///< valid while phase == kParallel
};

/// Per-block control: one barrier + state per local team. Created by the
/// first lane of the block to run (deterministically thread 0) and attached
/// to Block::user_state.
struct BlockControl {
  std::vector<std::unique_ptr<sim::Barrier>> team_barriers;
  std::vector<TeamState> team_states;
};

/// View of "my team" for one lane.
struct TeamCtx {
  sim::ThreadCtx* hw = nullptr;   ///< this lane's hardware context
  std::uint32_t team_id = 0;      ///< global team number in the league
  std::uint32_t num_teams = 1;
  std::uint32_t team_rank = 0;    ///< this lane's rank within the team
  std::uint32_t team_size = 1;
  sim::Barrier* barrier = nullptr;
  TeamState* state = nullptr;

  /// Team-wide barrier (all live threads of this team).
  sim::detail::SyncAwaiter Sync() const { return hw->SyncOn(barrier); }
};

/// Lazily creates the block's control state. Must be called before the
/// lane's first suspension point (it is: LaunchTeams calls it first thing).
/// `teams_per_block` is M, `team_size` the threads per team.
BlockControl& EnsureBlockControl(sim::ThreadCtx& ctx,
                                 std::uint32_t teams_per_block,
                                 std::uint32_t team_size);

/// The worker loop run by every non-initial thread of a team: wait for a
/// published job, execute it, join, repeat — until termination.
sim::DeviceTask<void> WorkerLoop(TeamCtx team);

/// Runs `body` on every thread of the team (OpenMP `parallel`). Must be
/// called by the team's initial thread (rank 0); returns when all threads
/// joined. With team_size == 1 the body simply runs inline.
sim::DeviceTask<void> Parallel(TeamCtx& team, const ParallelBody& body);

/// Loop scheduling for ParallelFor.
enum class Schedule {
  /// schedule(static,1): consecutive threads take consecutive iterations —
  /// LLVM's GPU default, because it keeps per-warp accesses coalesced.
  kStaticInterleaved,
  /// schedule(static): each thread takes one contiguous chunk — the CPU
  /// default; on a GPU it scatters each warp's accesses (see the
  /// scheduling test for the measured coalescing difference).
  kStaticChunked,
};

/// `parallel for` over [0, trip_count).
sim::DeviceTask<void> ParallelFor(
    TeamCtx& team, std::uint64_t trip_count,
    const std::function<sim::DeviceTask<void>(sim::ThreadCtx&, std::uint64_t)>&
        body,
    Schedule schedule = Schedule::kStaticInterleaved);

/// Team-wide sum reduction: every thread contributes `value`; every thread
/// receives the total. Uses the team's shared-memory reduction slot.
/// Call from inside a Parallel region (all threads must participate).
sim::DeviceTask<double> TeamReduceSum(TeamCtx& team, double value);

/// Team-wide min/max reductions, same contract as TeamReduceSum.
sim::DeviceTask<double> TeamReduceMin(TeamCtx& team, double value);
sim::DeviceTask<double> TeamReduceMax(TeamCtx& team, double value);

/// Byte offset within the block's shared window of a team's reduction slot;
/// LaunchTeams reserves `teams_per_block * kTeamSharedReserve` bytes.
inline constexpr std::uint32_t kTeamSharedReserve = 64;

}  // namespace dgc::ompx

#include "ompx/team.h"

#include <limits>

#include "support/str.h"

namespace dgc::ompx {

BlockControl& EnsureBlockControl(sim::ThreadCtx& ctx,
                                 std::uint32_t teams_per_block,
                                 std::uint32_t team_size) {
  sim::Block& block = *ctx.block;
  if (block.user_state == nullptr) {
    auto control = std::make_shared<BlockControl>();
    control->team_states.resize(teams_per_block);
    control->team_barriers.reserve(teams_per_block);
    for (std::uint32_t t = 0; t < teams_per_block; ++t) {
      auto barrier = std::make_unique<sim::Barrier>(
          StrFormat("block-%u-team-%u", block.id(), t));
      barrier->AddParticipants(team_size);
      control->team_barriers.push_back(std::move(barrier));
    }
    block.user_state = std::move(control);
  }
  return *static_cast<BlockControl*>(block.user_state.get());
}

sim::DeviceTask<void> WorkerLoop(TeamCtx team) {
  while (true) {
    co_await team.Sync();  // wait for the initial thread to publish work
    if (team.state->phase == TeamState::Phase::kTerminate) co_return;
    if (team.state->phase == TeamState::Phase::kParallel) {
      co_await (*team.state->job)(*team.hw, team.team_rank, team.team_size);
    }
    co_await team.Sync();  // join
  }
}

sim::DeviceTask<void> Parallel(TeamCtx& team, const ParallelBody& body) {
  // Nested parallel regions serialize (OpenMP's default of one level of
  // parallelism on the device): the inner region runs inline on the
  // encountering thread as a team of one.
  if (team.team_size == 1 ||
      team.state->phase == TeamState::Phase::kParallel) {
    co_await body(*team.hw, 0, 1);
    co_return;
  }
  team.state->phase = TeamState::Phase::kParallel;
  team.state->job = &body;
  co_await team.Sync();  // release workers
  co_await body(*team.hw, team.team_rank, team.team_size);
  co_await team.Sync();  // join
  team.state->phase = TeamState::Phase::kIdle;
  team.state->job = nullptr;
}

sim::DeviceTask<void> ParallelFor(
    TeamCtx& team, std::uint64_t trip_count,
    const std::function<sim::DeviceTask<void>(sim::ThreadCtx&, std::uint64_t)>&
        body,
    Schedule schedule) {
  ParallelBody wrapper =
      [&body, trip_count, schedule](sim::ThreadCtx& ctx, std::uint32_t rank,
                                    std::uint32_t size) -> sim::DeviceTask<void> {
    if (schedule == Schedule::kStaticInterleaved) {
      for (std::uint64_t i = rank; i < trip_count; i += size) {
        co_await body(ctx, i);
      }
    } else {
      const std::uint64_t chunk = (trip_count + size - 1) / size;
      const std::uint64_t begin = std::uint64_t(rank) * chunk;
      const std::uint64_t end = std::min(trip_count, begin + chunk);
      for (std::uint64_t i = begin; i < end; ++i) {
        co_await body(ctx, i);
      }
    }
  };
  co_await Parallel(team, wrapper);
}

namespace {

/// Common shape of the slot-based team reductions: init by rank 0, sync,
/// atomic combine, sync, everyone reads the result.
sim::DeviceTask<double> TeamReduceWith(TeamCtx& team, double value,
                                       double init, bool use_min,
                                       bool use_max) {
  const std::uint32_t local_team = team.hw->tid3.y;
  auto slot =
      team.hw->block->SharedAt<double>(local_team * kTeamSharedReserve);
  if (team.team_rank == 0) co_await team.hw->Store(slot, init);
  co_await team.Sync();
  if (use_min) {
    co_await team.hw->AtomicMin(slot, value);
  } else if (use_max) {
    co_await team.hw->AtomicMax(slot, value);
  } else {
    co_await team.hw->AtomicAdd(slot, value);
  }
  co_await team.Sync();
  co_return co_await team.hw->Load(slot);
}

}  // namespace

sim::DeviceTask<double> TeamReduceSum(TeamCtx& team, double value) {
  return TeamReduceWith(team, value, 0.0, false, false);
}

sim::DeviceTask<double> TeamReduceMin(TeamCtx& team, double value) {
  return TeamReduceWith(team, value,
                        std::numeric_limits<double>::infinity(), true, false);
}

sim::DeviceTask<double> TeamReduceMax(TeamCtx& team, double value) {
  return TeamReduceWith(team, value,
                        -std::numeric_limits<double>::infinity(), false, true);
}

}  // namespace dgc::ompx

// `target teams` launching: runs a league of teams, each starting in its
// initial thread with workers parked — the execution model of
// `#pragma omp target teams` under LLVM OpenMP, including the paper §3.1
// multi-dimensional variant that packs M teams into one thread block.
#pragma once

#include <cstdint>
#include <functional>

#include "gpusim/device.h"
#include "ompx/team.h"

namespace dgc::ompx {

struct TeamsConfig {
  std::uint32_t num_teams = 1;
  /// Maximum threads usable by one team (the paper's -t flag).
  std::uint32_t thread_limit = 32;
  /// M teams per thread block: block shape becomes (thread_limit, M, 1)
  /// with each row an independent team (paper §3.1; 1 = the paper's
  /// implemented mapping).
  std::uint32_t teams_per_block = 1;
  /// Extra shared memory per block for user kernels, beyond the runtime's
  /// per-team reduction slots.
  std::uint32_t user_shared_bytes = 0;
  const char* name = "target-teams";
  /// Optional instruction trace sink (gpusim/trace.h).
  sim::Trace* trace = nullptr;
  /// Optional shadow-memory sanitizer (gpusim/memcheck.h), forwarded to the
  /// kernel launch; must already be attached to the device's memory.
  sim::Memcheck* memcheck = nullptr;
  /// Optional deterministic fault-injection plan (gpusim/faults.h),
  /// forwarded to the kernel launch; null = off.
  sim::FaultPlan* faults = nullptr;
  /// Launch watchdog cycle budget (0 = disabled); see LaunchConfig.
  std::uint64_t watchdog_cycles = 0;
  /// Optional instance attribution for lane-failure messages; installed by
  /// the ensemble loader (see sim::InstanceOfFn).
  sim::InstanceOfFn instance_of;
  /// Optional launch profiler (gpusim/profiler.h), forwarded to the kernel
  /// launch; attributes counters per instance through `instance_of`.
  sim::Profiler* profiler = nullptr;
  /// Host threads simulating the launch (LaunchConfig::launch_threads):
  /// 1 = serial engine; N > 1 = SM-sharded speculation with a
  /// deterministic merge barrier. Output is byte-identical either way.
  unsigned launch_threads = 1;
  /// Speculation window override (LaunchConfig::launch_window_cycles);
  /// 0 = default.
  std::uint64_t launch_window_cycles = 0;
};

/// The per-team entry point, run by the team's initial thread only (the
/// "sequential part" of the team). Use Parallel/ParallelFor from team.h to
/// fan out to the team's workers.
using TeamMain = std::function<sim::DeviceTask<void>(TeamCtx&)>;

/// Launches `cfg.num_teams` teams and runs `team_main` in each.
/// Returns the kernel's LaunchResult (cycles include launch overhead).
StatusOr<sim::LaunchResult> LaunchTeams(sim::Device& device,
                                        const TeamsConfig& cfg,
                                        const TeamMain& team_main);

}  // namespace dgc::ompx

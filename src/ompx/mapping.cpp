#include "ompx/mapping.h"

#include "support/log.h"

namespace dgc::ompx {

DataEnv::~DataEnv() {
  for (const sim::DeviceBuffer& buf : owned_) {
    const Status s = device_.Free(buf.addr);
    if (!s.ok()) DGC_LOG(kError) << "DataEnv teardown: " << s.ToString();
  }
}

StatusOr<sim::DeviceBuffer> DataEnv::MapAlloc(std::uint64_t bytes) {
  DGC_ASSIGN_OR_RETURN(sim::DeviceBuffer buf, device_.Malloc(bytes));
  owned_.push_back(buf);
  return buf;
}

StatusOr<sim::DeviceBuffer> DataEnv::MapTo(const void* host,
                                           std::uint64_t bytes) {
  DGC_ASSIGN_OR_RETURN(sim::DeviceBuffer buf, MapAlloc(bytes));
  transfer_cycles_ += device_.CopyToDevice(buf, host, bytes);
  bytes_to_device_ += bytes;
  return buf;
}

StatusOr<sim::DeviceBuffer> DataEnv::MapToFrom(void* host,
                                               std::uint64_t bytes) {
  DGC_ASSIGN_OR_RETURN(sim::DeviceBuffer buf, MapTo(host, bytes));
  copy_backs_.push_back({host, buf, bytes});
  return buf;
}

StatusOr<sim::DeviceBuffer> DataEnv::MapFrom(void* host, std::uint64_t bytes) {
  DGC_ASSIGN_OR_RETURN(sim::DeviceBuffer buf, MapAlloc(bytes));
  copy_backs_.push_back({host, buf, bytes});
  return buf;
}

void DataEnv::Sync() {
  for (const CopyBack& cb : copy_backs_) {
    transfer_cycles_ += device_.CopyFromDevice(cb.host, cb.buffer, cb.bytes);
    bytes_from_device_ += cb.bytes;
  }
}

}  // namespace dgc::ompx

// RSBench — proxy for multipole-representation cross-section lookups
// (Tramm et al., EASC'14): the compute-bound counterpart to XSBench in the
// paper's evaluation (§4.1). Small resonance data, heavy complex
// arithmetic per pole.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.h"

namespace dgc::apps {

struct RsParams {
  std::uint32_t n_nuclides = 24;
  std::uint32_t n_windows = 16;        ///< energy windows per nuclide
  std::uint32_t poles_per_window = 4;
  std::uint32_t n_materials = 12;
  std::uint32_t n_lookups = 2048;
  std::uint64_t seed = 1;
  bool verbose = false;

  /// Parses `-u -w -p -m -l -s -v` from argv[1..].
  static StatusOr<RsParams> Parse(const std::vector<std::string>& args);
  std::uint64_t DeviceBytes() const;
};

struct RsData {
  /// 4 doubles per pole: position (re, im) and residue (rt, ra).
  static constexpr std::uint32_t kPoleDoubles = 4;
  /// 3 doubles per window: the background curve-fit (a, b, c).
  static constexpr std::uint32_t kFitDoubles = 3;

  std::vector<double> poles;  ///< [nuc][window][pole][kPoleDoubles]
  std::vector<double> fits;   ///< [nuc][window][kFitDoubles]
  std::vector<std::uint32_t> mat_offset;
  std::vector<std::uint32_t> mat_nuclide;
  std::vector<double> mat_density;
};

RsData GenerateRsData(const RsParams& params);

/// Per-lookup (unit energy, material) sampling, shared host/device.
void RsSampleLookup(const RsParams& params, std::uint64_t lookup,
                    double& unit_energy, std::uint32_t& material);

/// Host reference verification hash.
std::uint64_t RsHostReference(const RsParams& params);

void RegisterRsbench();

}  // namespace dgc::apps

#include "apps/rsbench.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

#include "apps/common.h"
#include "dgcf/rpc.h"
#include "gpusim/ctx.h"
#include "ompx/team.h"
#include "support/argparse.h"
#include "support/rng.h"
#include "support/str.h"
#include "support/units.h"

namespace dgc::apps {
namespace {

using dgcf::AppEnv;
using dgcf::DeviceArgv;
using sim::DevicePtr;
using sim::DeviceTask;
using sim::ThreadCtx;

/// Windowed-multipole evaluation for one pole at energy e; ~100 FLOPs in
/// real RSBench (a Faddeeva evaluation), modelled by the same arithmetic
/// shape: a complex reciprocal and two fused accumulations.
inline void EvaluatePole(double e, const double* pole, double& sig_t,
                         double& sig_a) {
  const double dr = e - pole[0];
  const double di = pole[1];
  const double inv = 1.0 / (dr * dr + di * di + 1e-9);
  const double re = dr * inv;
  const double im = -di * inv;
  sig_t += pole[2] * re - pole[3] * im;
  sig_a += pole[2] * im + pole[3] * re;
}

std::uint64_t HashSigmas(double sig_t, double sig_a) {
  std::uint64_t h = kFnvOffset;
  h = HashCombine(h, std::uint64_t(std::llround(sig_t * 1e6)));
  h = HashCombine(h, std::uint64_t(std::llround(sig_a * 1e6)));
  return h;
}

/// Device cycles per pole evaluation (the Faddeeva cost).
constexpr std::uint64_t kPoleCycles = 500;

}  // namespace

StatusOr<RsParams> RsParams::Parse(const std::vector<std::string>& args) {
  RsParams p;
  std::int64_t nuclides = p.n_nuclides, windows = p.n_windows;
  std::int64_t poles = p.poles_per_window, materials = p.n_materials;
  std::int64_t lookups = p.n_lookups, seed = std::int64_t(p.seed);
  bool verbose = false;
  ArgParser parser("RSBench: windowed-multipole XS lookup");
  parser.AddInt("nuclides", 'u', "number of nuclides", &nuclides)
      .AddInt("windows", 'w', "energy windows per nuclide", &windows)
      .AddInt("poles", 'p', "poles per window", &poles)
      .AddInt("materials", 'm', "number of materials", &materials)
      .AddInt("lookups", 'l', "cross-section lookups", &lookups)
      .AddInt("seed", 's', "workload seed", &seed)
      .AddFlag("verbose", 'v', "print results via device printf", &verbose);
  DGC_RETURN_IF_ERROR(parser.Parse(args));
  if (nuclides < 2 || windows < 1 || poles < 1 || materials < 1 ||
      lookups < 1) {
    return Status(ErrorCode::kInvalidArgument, "rsbench: sizes too small");
  }
  p.n_nuclides = std::uint32_t(nuclides);
  p.n_windows = std::uint32_t(windows);
  p.poles_per_window = std::uint32_t(poles);
  p.n_materials = std::uint32_t(materials);
  p.n_lookups = std::uint32_t(lookups);
  p.seed = std::uint64_t(seed);
  p.verbose = verbose;
  return p;
}

std::uint64_t RsParams::DeviceBytes() const {
  const std::uint64_t windows = std::uint64_t(n_nuclides) * n_windows;
  return windows * poles_per_window * RsData::kPoleDoubles * sizeof(double) +
         windows * RsData::kFitDoubles * sizeof(double) +
         std::uint64_t(n_lookups) * sizeof(std::uint64_t) + 64 * kKiB;
}

RsData GenerateRsData(const RsParams& params) {
  Rng rng(params.seed);
  RsData data;
  const std::uint64_t windows = std::uint64_t(params.n_nuclides) * params.n_windows;
  data.poles.resize(windows * params.poles_per_window * RsData::kPoleDoubles);
  for (std::uint64_t w = 0; w < windows; ++w) {
    // Pole positions cluster inside their window's energy span so the
    // denominator stays well-conditioned.
    const double w_lo = double(w % params.n_windows) / params.n_windows;
    for (std::uint32_t p = 0; p < params.poles_per_window; ++p) {
      double* pole = &data.poles[(w * params.poles_per_window + p) *
                                 RsData::kPoleDoubles];
      pole[0] = w_lo + rng.NextDouble() / params.n_windows;  // position re
      pole[1] = rng.NextDouble(0.01, 0.1);                   // position im
      pole[2] = rng.NextDouble(-1.0, 1.0);                   // residue rt
      pole[3] = rng.NextDouble(-1.0, 1.0);                   // residue ra
    }
  }
  data.fits.resize(windows * RsData::kFitDoubles);
  for (double& f : data.fits) f = rng.NextDouble(0.0, 2.0);

  data.mat_offset.assign(params.n_materials + 1, 0);
  for (std::uint32_t m = 0; m < params.n_materials; ++m) {
    const std::uint32_t count = std::min(params.n_nuclides, 2 + m % 4);
    data.mat_offset[m + 1] = data.mat_offset[m] + count;
    std::vector<std::uint32_t> picked;
    while (picked.size() < count) {
      const std::uint32_t candidate =
          std::uint32_t(rng.NextBounded(params.n_nuclides));
      if (std::find(picked.begin(), picked.end(), candidate) == picked.end()) {
        picked.push_back(candidate);
      }
    }
    for (std::uint32_t id : picked) {
      data.mat_nuclide.push_back(id);
      data.mat_density.push_back(rng.NextDouble(0.5, 2.0));
    }
  }
  return data;
}

void RsSampleLookup(const RsParams& params, std::uint64_t lookup,
                    double& unit_energy, std::uint32_t& material) {
  SplitMix64 sm(params.seed * 0xff51afd7ed558ccdULL + lookup + 1);
  unit_energy = double(sm.Next() >> 11) * 0x1.0p-53;
  material = std::uint32_t(sm.Next() % params.n_materials);
}

std::uint64_t RsHostReference(const RsParams& params) {
  using Key = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                         std::uint32_t, std::uint32_t, std::uint64_t>;
  // Guarded: concurrent sweep points verify against the cache (a miss
  // recomputes outside the lock — deterministic, so duplicates agree).
  static std::mutex memo_mutex;
  static std::map<Key, std::uint64_t> memo;
  const Key key{params.n_nuclides, params.n_windows, params.poles_per_window,
                params.n_materials, params.n_lookups, params.seed};
  {
    std::lock_guard<std::mutex> lock(memo_mutex);
    if (auto it = memo.find(key); it != memo.end()) return it->second;
  }

  const RsData data = GenerateRsData(params);
  std::uint64_t verification = 0;
  for (std::uint64_t l = 0; l < params.n_lookups; ++l) {
    double e;
    std::uint32_t mat;
    RsSampleLookup(params, l, e, mat);
    const std::uint32_t window = std::min(
        std::uint32_t(e * params.n_windows), params.n_windows - 1);
    double sig_t = 0, sig_a = 0;
    for (std::uint32_t k = data.mat_offset[mat]; k < data.mat_offset[mat + 1];
         ++k) {
      const std::uint32_t n = data.mat_nuclide[k];
      const double density = data.mat_density[k];
      const std::uint64_t w = std::uint64_t(n) * params.n_windows + window;
      const double* fit = &data.fits[w * RsData::kFitDoubles];
      double t = fit[0] + fit[1] * e + fit[2] * e * e;
      double a = 0.5 * t;
      for (std::uint32_t p = 0; p < params.poles_per_window; ++p) {
        EvaluatePole(e,
                     &data.poles[(w * params.poles_per_window + p) *
                                 RsData::kPoleDoubles],
                     t, a);
      }
      sig_t += density * t;
      sig_a += density * a;
    }
    verification ^= HashSigmas(sig_t, sig_a);
  }
  std::lock_guard<std::mutex> lock(memo_mutex);
  memo.emplace(key, verification);
  return verification;
}

namespace {

struct RsView {
  RsParams params;
  DevicePtr<double> poles, fits, mat_density;
  DevicePtr<std::uint32_t> mat_offset, mat_nuclide;
  DevicePtr<std::uint64_t> out;
};

DeviceTask<void> RsDeviceLookup(ThreadCtx& ctx, const RsView& v,
                                std::uint64_t l) {
  const RsParams& params = v.params;
  double e;
  std::uint32_t mat;
  RsSampleLookup(params, l, e, mat);
  const std::uint32_t window =
      std::min(std::uint32_t(e * params.n_windows), params.n_windows - 1);
  co_await ctx.Work(40);

  const std::uint32_t begin = co_await ctx.Load(v.mat_offset + mat);
  const std::uint32_t end = co_await ctx.Load(v.mat_offset + mat + 1);
  double sig_t = 0, sig_a = 0;
  for (std::uint32_t k = begin; k < end; ++k) {
    const std::uint32_t n = co_await ctx.Load(v.mat_nuclide + k);
    const double density = co_await ctx.Load(v.mat_density + k);
    const std::uint64_t w = std::uint64_t(n) * params.n_windows + window;

    auto fit = v.fits + std::ptrdiff_t(w) * RsData::kFitDoubles;
    auto fit_vals = ctx.LoadRun(fit, RsData::kFitDoubles);
    co_await fit_vals;
    double t = fit_vals.Result(0) + fit_vals.Result(1) * e +
               fit_vals.Result(2) * e * e;
    double a = 0.5 * t;

    for (std::uint32_t p = 0; p < params.poles_per_window; ++p) {
      auto pole = v.poles + std::ptrdiff_t(w * params.poles_per_window + p) *
                                RsData::kPoleDoubles;
      auto pole_run = ctx.LoadRun(pole, RsData::kPoleDoubles);
      co_await pole_run;
      double pole_vals[RsData::kPoleDoubles];
      for (std::uint32_t d = 0; d < RsData::kPoleDoubles; ++d) {
        pole_vals[d] = pole_run.Result(d);
      }
      EvaluatePole(e, pole_vals, t, a);
      co_await ctx.Work(kPoleCycles);  // the Faddeeva evaluation
    }
    sig_t += density * t;
    sig_a += density * a;
  }
  co_await ctx.Store(v.out + l, HashSigmas(sig_t, sig_a));
}

DeviceTask<int> RsUserMain(AppEnv& env, ompx::TeamCtx& team, int argc,
                           DeviceArgv argv) {
  auto params_or = RsParams::Parse(ExtractOptionArgs(argc, argv));
  if (!params_or.ok()) co_return dgcf::kExitUsage;
  const RsParams params = *params_or;
  ThreadCtx& ctx = *team.hw;

  const RsData data = GenerateRsData(params);
  const std::uint64_t sizes[6] = {
      data.poles.size() * sizeof(double),
      data.fits.size() * sizeof(double),
      data.mat_offset.size() * sizeof(std::uint32_t),
      data.mat_nuclide.size() * sizeof(std::uint32_t),
      data.mat_density.size() * sizeof(double),
      params.n_lookups * sizeof(std::uint64_t),
  };
  std::vector<sim::DeviceBuffer> buffers(6);
  bool fill_inputs = true;
  if (env.share_data) {
    // Poles, fits, and material tables are read-only input; only the result
    // buffer (buffers[5]) stays per-instance.
    const std::uint64_t key = SharedContentKey(
        "rsbench", {params.n_nuclides, params.n_windows,
                    params.poles_per_window, params.n_materials, params.seed});
    const std::vector<std::uint64_t> ro_sizes(sizes, sizes + 5);
    auto group = co_await env.libc->AcquireSharedGroup(ctx, key, ro_sizes,
                                                       "rsbench");
    if (!group.ok) co_return dgcf::kExitNoMem;
    for (int b = 0; b < 5; ++b) buffers[b] = group.buffers[std::size_t(b)];
    fill_inputs = group.first;
    buffers[5] = co_await env.libc->Malloc(ctx, sizes[5]);
    if (buffers[5].host == nullptr) {
      for (const auto& f : group.buffers) {
        if (f.host != nullptr) co_await env.libc->Free(ctx, f.addr);
      }
      co_return dgcf::kExitNoMem;
    }
  } else {
    for (int b = 0; b < 6; ++b) {
      buffers[b] = co_await env.libc->Malloc(ctx, sizes[b]);
    }
    for (const auto& b : buffers) {
      if (b.host == nullptr) {
        for (const auto& f : buffers) {
          if (f.host != nullptr) co_await env.libc->Free(ctx, f.addr);
        }
        co_return dgcf::kExitNoMem;
      }
    }
  }

  RsView v;
  v.params = params;
  v.poles = buffers[0].Typed<double>();
  v.fits = buffers[1].Typed<double>();
  v.mat_offset = buffers[2].Typed<std::uint32_t>();
  v.mat_nuclide = buffers[3].Typed<std::uint32_t>();
  v.mat_density = buffers[4].Typed<double>();
  v.out = buffers[5].Typed<std::uint64_t>();

  if (fill_inputs) {
    std::copy(data.poles.begin(), data.poles.end(), v.poles.host);
    std::copy(data.fits.begin(), data.fits.end(), v.fits.host);
    std::copy(data.mat_offset.begin(), data.mat_offset.end(),
              v.mat_offset.host);
    std::copy(data.mat_nuclide.begin(), data.mat_nuclide.end(),
              v.mat_nuclide.host);
    std::copy(data.mat_density.begin(), data.mat_density.end(),
              v.mat_density.host);
    co_await ctx.Work(params.DeviceBytes() / 64);
  } else {
    co_await ctx.Work(sizes[5] / 64);
  }

  co_await ompx::ParallelFor(
      team, params.n_lookups,
      [&](ThreadCtx& tctx, std::uint64_t l) -> DeviceTask<void> {
        co_await RsDeviceLookup(tctx, v, l);
      });

  std::uint64_t verification = 0;
  for (std::uint64_t l = 0; l < params.n_lookups; l += sim::detail::kMaxGather) {
    const std::uint32_t chunk = std::uint32_t(
        std::min<std::uint64_t>(params.n_lookups - l, sim::detail::kMaxGather));
    auto results = ctx.LoadRun(v.out + l, chunk);
    co_await results;
    for (std::uint32_t j = 0; j < chunk; ++j) verification ^= results.Result(j);
  }
  if (params.verbose) {
    co_await env.rpc->Print(
        ctx, StrFormat("rsbench: %u lookups, verification %016llx\n",
                       params.n_lookups, (unsigned long long)verification));
  }
  for (const auto& b : buffers) co_await env.libc->Free(ctx, b.addr);
  co_return verification == RsHostReference(params) ? dgcf::kExitOk : 1;
}

}  // namespace

void RegisterRsbench() {
  dgcf::AppRegistry::Instance().Register(
      {"rsbench",
       "RSBench: compute-bound windowed-multipole XS lookup (OpenMC proxy)",
       RsUserMain});
}

}  // namespace dgc::apps

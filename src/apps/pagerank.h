// Page-Rank — the HeCBench-style propagation step on a synthetic
// power-law graph in (in-edge) CSR form. The evaluation's memory-capacity
// stressor: per-instance graphs are large enough that the paper could only
// run 2 and 4 concurrent instances on the 40GB device (§4.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.h"

namespace dgc::apps {

struct PrParams {
  std::uint32_t n_nodes = 20000;
  std::uint32_t avg_degree = 8;   ///< average in-degree
  std::uint32_t iterations = 1;   ///< propagation steps (the measured kernel)
  double damping = 0.85;
  std::uint64_t seed = 1;
  bool verbose = false;

  /// Parses `-g(nodes) -d(degree) -k(iterations) -a(damping) -s -v`.
  static StatusOr<PrParams> Parse(const std::vector<std::string>& args);
  std::uint64_t DeviceBytes() const;
};

struct PrData {
  std::vector<std::uint32_t> row_ptr;     ///< in-edge CSR by destination
  std::vector<std::uint32_t> src;         ///< in-neighbour node ids
  std::vector<std::uint32_t> out_degree;  ///< per node (≥ 1 by construction)
  std::vector<double> rank;               ///< initial ranks (1/n)
};

PrData GeneratePrData(const PrParams& params);

/// Host reference: `iterations` propagation steps; hash of the final ranks.
std::uint64_t PrHostReference(const PrParams& params);

void RegisterPagerank();

}  // namespace dgc::apps

#include "apps/common.h"

#include "apps/amgmk.h"
#include "apps/pagerank.h"
#include "apps/rsbench.h"
#include "apps/xsbench.h"

namespace dgc::apps {

std::vector<std::string> ExtractArgs(int argc, dgcf::DeviceArgv argv) {
  std::vector<std::string> out;
  out.reserve(std::size_t(argc));
  for (int i = 0; i < argc; ++i) {
    out.push_back(dgcf::DeviceLibc::ToString(argv[i]));
  }
  return out;
}

std::vector<std::string> ExtractOptionArgs(int argc, dgcf::DeviceArgv argv) {
  std::vector<std::string> out;
  out.reserve(argc > 0 ? std::size_t(argc) - 1 : 0);
  for (int i = 1; i < argc; ++i) {
    out.push_back(dgcf::DeviceLibc::ToString(argv[i]));
  }
  return out;
}

std::uint64_t HashCombine(std::uint64_t h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t SharedContentKey(std::string_view app,
                               std::initializer_list<std::uint64_t> fields) {
  std::uint64_t h = kFnvOffset;
  for (const char c : app) h = HashCombine(h, std::uint64_t(std::uint8_t(c)));
  for (const std::uint64_t f : fields) h = HashCombine(h, f);
  return h;
}

void RegisterAllApps() {
  RegisterXsbench();
  RegisterRsbench();
  RegisterAmgmk();
  RegisterPagerank();
}

}  // namespace dgc::apps

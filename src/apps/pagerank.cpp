#include "apps/pagerank.h"

#include <cmath>
#include <map>
#include <mutex>

#include "apps/common.h"
#include "dgcf/rpc.h"
#include "gpusim/ctx.h"
#include "ompx/team.h"
#include "support/argparse.h"
#include "support/rng.h"
#include "support/str.h"
#include "support/units.h"

namespace dgc::apps {
namespace {

using dgcf::AppEnv;
using dgcf::DeviceArgv;
using sim::DevicePtr;
using sim::DeviceTask;
using sim::ThreadCtx;

std::uint64_t HashRanks(const double* r, std::uint64_t n) {
  std::uint64_t h = kFnvOffset;
  for (std::uint64_t i = 0; i < n; ++i) {
    h = HashCombine(h, std::uint64_t(std::llround(r[i] * 1e12)));
  }
  return h;
}

void HostPropagate(const PrParams& params, const PrData& data,
                   const std::vector<double>& in, std::vector<double>& out) {
  const double base = (1.0 - params.damping) / params.n_nodes;
  for (std::uint32_t v = 0; v < params.n_nodes; ++v) {
    double acc = 0;
    for (std::uint32_t k = data.row_ptr[v]; k < data.row_ptr[v + 1]; ++k) {
      const std::uint32_t u = data.src[k];
      acc += in[u] / double(data.out_degree[u]);
    }
    out[v] = base + params.damping * acc;
  }
}

}  // namespace

StatusOr<PrParams> PrParams::Parse(const std::vector<std::string>& args) {
  PrParams p;
  std::int64_t nodes = p.n_nodes, degree = p.avg_degree, iters = p.iterations;
  std::int64_t seed = std::int64_t(p.seed);
  double damping = p.damping;
  bool verbose = false;
  ArgParser parser("Page-Rank: propagation step on a power-law graph");
  parser.AddInt("nodes", 'g', "graph nodes", &nodes)
      .AddInt("degree", 'd', "average in-degree", &degree)
      .AddInt("iterations", 'k', "propagation steps", &iters)
      .AddDouble("damping", 'a', "damping factor", &damping)
      .AddInt("seed", 's', "workload seed", &seed)
      .AddFlag("verbose", 'v', "print results via device printf", &verbose);
  DGC_RETURN_IF_ERROR(parser.Parse(args));
  if (nodes < 2 || degree < 1 || iters < 1 || damping <= 0 || damping >= 1) {
    return Status(ErrorCode::kInvalidArgument, "pagerank: bad parameters");
  }
  p.n_nodes = std::uint32_t(nodes);
  p.avg_degree = std::uint32_t(degree);
  p.iterations = std::uint32_t(iters);
  p.damping = damping;
  p.seed = std::uint64_t(seed);
  p.verbose = verbose;
  return p;
}

std::uint64_t PrParams::DeviceBytes() const {
  const std::uint64_t edges = std::uint64_t(n_nodes) * avg_degree;
  return (n_nodes + 1) * sizeof(std::uint32_t)       // row_ptr
         + edges * sizeof(std::uint32_t)             // src
         + n_nodes * sizeof(std::uint32_t)           // out_degree
         + 2 * n_nodes * sizeof(double)              // rank ping-pong
         + 64 * kKiB;
}

PrData GeneratePrData(const PrParams& params) {
  Rng rng(params.seed);
  PrData data;
  const std::uint32_t n = params.n_nodes;
  data.row_ptr.reserve(n + 1);
  data.row_ptr.push_back(0);
  data.out_degree.assign(n, 0);

  for (std::uint32_t v = 0; v < n; ++v) {
    // In-degree varies around the average; sources are skewed toward low
    // node ids (r² sampling) so a few hubs dominate, power-law style.
    const std::uint32_t deg =
        1 + std::uint32_t(rng.NextBounded(2 * params.avg_degree - 1));
    for (std::uint32_t e = 0; e < deg; ++e) {
      const double r = rng.NextDouble();
      const std::uint32_t u = std::uint32_t(double(n) * r * r) % n;
      data.src.push_back(u);
      ++data.out_degree[u];
    }
    data.row_ptr.push_back(std::uint32_t(data.src.size()));
  }
  // Dangling nodes (no out-edges) would divide by zero in the propagation;
  // the HeCBench kernel clamps them the same way.
  for (auto& d : data.out_degree) d = std::max(d, 1u);
  data.rank.assign(n, 1.0 / double(n));
  return data;
}

std::uint64_t PrHostReference(const PrParams& params) {
  using Key = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                         std::int64_t, std::uint64_t>;
  // Guarded: concurrent sweep points verify against the cache (a miss
  // recomputes outside the lock — deterministic, so duplicates agree).
  static std::mutex memo_mutex;
  static std::map<Key, std::uint64_t> memo;
  const Key key{params.n_nodes, params.avg_degree, params.iterations,
                std::llround(params.damping * 1e9), params.seed};
  {
    std::lock_guard<std::mutex> lock(memo_mutex);
    if (auto it = memo.find(key); it != memo.end()) return it->second;
  }

  const PrData data = GeneratePrData(params);
  std::vector<double> r = data.rank;
  std::vector<double> next(r.size());
  for (std::uint32_t it = 0; it < params.iterations; ++it) {
    HostPropagate(params, data, r, next);
    std::swap(r, next);
  }
  const std::uint64_t h = HashRanks(r.data(), r.size());
  std::lock_guard<std::mutex> lock(memo_mutex);
  memo.emplace(key, h);
  return h;
}

namespace {

struct PrView {
  PrParams params;
  DevicePtr<std::uint32_t> row_ptr, src, out_degree;
  DevicePtr<double> rank_in, rank_out;
};

/// One destination node of the propagation step: the irregular gather
/// (rank[src] / out_degree[src]) over the in-edges.
DeviceTask<void> PropagateNode(ThreadCtx& ctx, const PrView& view,
                               std::uint64_t v, DevicePtr<double> rank_in,
                               DevicePtr<double> rank_out) {
  auto header = ctx.LoadRun(view.row_ptr + v, 2);
  co_await header;
  const std::uint32_t begin = header.Result(0);
  const std::uint32_t end = header.Result(1);
  double acc = 0;
  for (std::uint32_t k = begin; k < end; k += sim::detail::kMaxGather) {
    const std::uint32_t chunk =
        std::min<std::uint32_t>(end - k, sim::detail::kMaxGather);
    auto srcs = ctx.LoadRun(view.src + k, chunk);  // streaming run
    co_await srcs;
    auto ranks = ctx.Gather<double>();     // the irregular gather
    auto degs = ctx.Gather<std::uint32_t>();
    for (std::uint32_t j = 0; j < chunk; ++j) {
      ranks.Add(rank_in + srcs.Result(j));
      degs.Add(view.out_degree + srcs.Result(j));
    }
    co_await ranks;
    co_await degs;
    for (std::uint32_t j = 0; j < chunk; ++j) {
      acc += ranks.Result(j) / double(degs.Result(j));
    }
  }
  co_await ctx.Work(3 * (end - begin) + 8);
  const double base = (1.0 - view.params.damping) / view.params.n_nodes;
  co_await ctx.Store(rank_out + v, base + view.params.damping * acc);
}

DeviceTask<int> PrUserMain(AppEnv& env, ompx::TeamCtx& team, int argc,
                           DeviceArgv argv) {
  auto params_or = PrParams::Parse(ExtractOptionArgs(argc, argv));
  if (!params_or.ok()) co_return dgcf::kExitUsage;
  const PrParams params = *params_or;
  ThreadCtx& ctx = *team.hw;
  const std::uint64_t n = params.n_nodes;

  const PrData data = GeneratePrData(params);
  const std::uint64_t sizes[5] = {
      data.row_ptr.size() * sizeof(std::uint32_t),
      data.src.size() * sizeof(std::uint32_t),
      n * sizeof(std::uint32_t),
      n * sizeof(double),
      n * sizeof(double),
  };
  std::vector<sim::DeviceBuffer> buffers(5);
  bool fill_inputs = true;
  if (env.share_data) {
    // The graph (CSR row_ptr/src/out_degree) is read-only input; the rank
    // ping-pong buffers are written every iteration and stay per-instance.
    const std::uint64_t key = SharedContentKey(
        "pagerank", {std::uint64_t(params.n_nodes), params.avg_degree,
                     params.seed});
    const std::vector<std::uint64_t> ro_sizes(sizes, sizes + 3);
    auto group = co_await env.libc->AcquireSharedGroup(ctx, key, ro_sizes,
                                                       "pagerank");
    if (!group.ok) co_return dgcf::kExitNoMem;
    for (int b = 0; b < 3; ++b) buffers[b] = group.buffers[std::size_t(b)];
    fill_inputs = group.first;
    bool oom = false;
    for (int b = 3; b < 5; ++b) {
      buffers[b] = co_await env.libc->Malloc(ctx, sizes[b]);
      if (buffers[b].host == nullptr) oom = true;
    }
    if (oom) {
      for (int b = 0; b < 5; ++b) {
        if (buffers[b].host != nullptr) {
          co_await env.libc->Free(ctx, buffers[b].addr);
        }
      }
      co_return dgcf::kExitNoMem;
    }
  } else {
    for (int b = 0; b < 5; ++b) {
      buffers[b] = co_await env.libc->Malloc(ctx, sizes[b]);
    }
    for (const auto& b : buffers) {
      if (b.host == nullptr) {
        for (const auto& f : buffers) {
          if (f.host != nullptr) co_await env.libc->Free(ctx, f.addr);
        }
        co_return dgcf::kExitNoMem;
      }
    }
  }

  PrView view;
  view.params = params;
  view.row_ptr = buffers[0].Typed<std::uint32_t>();
  view.src = buffers[1].Typed<std::uint32_t>();
  view.out_degree = buffers[2].Typed<std::uint32_t>();
  view.rank_in = buffers[3].Typed<double>();
  view.rank_out = buffers[4].Typed<double>();

  if (fill_inputs) {
    std::copy(data.row_ptr.begin(), data.row_ptr.end(), view.row_ptr.host);
    std::copy(data.src.begin(), data.src.end(), view.src.host);
    std::copy(data.out_degree.begin(), data.out_degree.end(),
              view.out_degree.host);
  }
  // The rank seed is per-instance state (the ping-pong buffers are private
  // even in shared mode), so every instance fills it.
  std::copy(data.rank.begin(), data.rank.end(), view.rank_in.host);
  if (fill_inputs) {
    co_await ctx.Work(params.DeviceBytes() / 64);
  } else {
    co_await ctx.Work((sizes[3] + sizes[4]) / 64);
  }

  DevicePtr<double> rank_in = view.rank_in, rank_out = view.rank_out;
  for (std::uint32_t it = 0; it < params.iterations; ++it) {
    co_await ompx::ParallelFor(
        team, n, [&](ThreadCtx& tctx, std::uint64_t v) -> DeviceTask<void> {
          co_await PropagateNode(tctx, view, v, rank_in, rank_out);
        });
    std::swap(rank_in, rank_out);
  }

  std::uint64_t verification = kFnvOffset;
  for (std::uint64_t i = 0; i < n; i += sim::detail::kMaxGather) {
    const std::uint32_t chunk =
        std::uint32_t(std::min<std::uint64_t>(n - i, sim::detail::kMaxGather));
    auto results = ctx.LoadRun(rank_in + i, chunk);
    co_await results;
    for (std::uint32_t j = 0; j < chunk; ++j) {
      verification = HashCombine(
          verification, std::uint64_t(std::llround(results.Result(j) * 1e12)));
    }
  }
  if (params.verbose) {
    co_await env.rpc->Print(
        ctx, StrFormat("pagerank: %llu nodes, %u steps, verification %016llx\n",
                       (unsigned long long)n, params.iterations,
                       (unsigned long long)verification));
  }
  for (const auto& b : buffers) co_await env.libc->Free(ctx, b.addr);
  co_return verification == PrHostReference(params) ? dgcf::kExitOk : 1;
}

}  // namespace

void RegisterPagerank() {
  dgcf::AppRegistry::Instance().Register(
      {"pagerank",
       "Page-Rank: propagation step on a synthetic power-law graph",
       PrUserMain});
}

}  // namespace dgc::apps

// XSBench — proxy for OpenMC's continuous-energy macroscopic neutron
// cross-section lookup (Tramm et al., PHYSOR'14). The memory-bound kernel
// of the paper's evaluation (§4.1).
//
// Faithful structure, scaled sizes: per-isotope energy grids with 5
// cross-section channels, the *unionized* energy grid with its
// index table (the memory hog and the source of the irregular, cache-
// hostile access pattern), materials with nuclide lists and densities, and
// the lookup kernel: sample (energy, material) → binary search on the
// union grid → accumulate macroscopic XS over the material's nuclides.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.h"

namespace dgc::apps {

/// The lookup acceleration structure, as in real XSBench: the unionized
/// grid (fastest, most memory), the hash grid (bounded walk from a bin
/// start), or plain per-nuclide binary search (no acceleration). All three
/// locate the SAME bracketing index, so the verification hash is identical
/// across grid types.
enum class XsGridType { kUnionized, kHash, kNuclide };

std::string_view ToString(XsGridType type);
StatusOr<XsGridType> ParseXsGridType(std::string_view name);

struct XsParams {
  std::uint32_t n_isotopes = 24;
  std::uint32_t n_gridpoints = 256;  ///< per isotope
  std::uint32_t n_materials = 12;
  std::uint32_t n_lookups = 2048;
  std::uint32_t hash_bins = 512;     ///< hash-grid bins (kHash only)
  XsGridType grid_type = XsGridType::kUnionized;
  std::uint64_t seed = 1;
  bool verbose = false;

  /// Parses `-i -g -m -l -s -v -G <unionized|hash|nuclide> -H <bins>` from
  /// argv[1..] (argv[0] = program name).
  static StatusOr<XsParams> Parse(const std::vector<std::string>& args);

  /// Approximate device bytes one instance allocates (grid-type dependent).
  std::uint64_t DeviceBytes() const;
};

/// The generated problem, in structure-of-arrays form (host image; the
/// device instance copies it into its own allocations).
struct XsData {
  static constexpr std::uint32_t kChannels = 5;

  std::vector<double> nuclide_energy;  ///< [iso * n_gridpoints], sorted per iso
  std::vector<double> nuclide_xs;      ///< [iso * n_gridpoints * kChannels]
  std::vector<double> union_energy;    ///< [n_union], sorted (kUnionized)
  std::vector<std::int32_t> union_index;  ///< [n_union * n_isotopes]
  std::vector<std::int32_t> hash_index;   ///< [hash_bins * n_isotopes] (kHash)
  std::vector<std::uint32_t> mat_offset;  ///< [n_materials + 1]
  std::vector<std::uint32_t> mat_nuclide; ///< nuclide ids, by material
  std::vector<double> mat_density;        ///< parallel to mat_nuclide

  std::uint32_t n_union() const { return std::uint32_t(union_energy.size()); }
};

/// Deterministic workload generation (same data on host and device paths).
XsData GenerateXsData(const XsParams& params);

/// Per-lookup (energy, material) sampling — shared by host and device.
void XsSampleLookup(const XsParams& params, std::uint64_t lookup,
                    double& energy, std::uint32_t& material);

/// Host reference: runs all lookups sequentially on the host and returns
/// the verification hash the device kernel must reproduce bit-for-bit.
std::uint64_t XsHostReference(const XsParams& params);

/// Registers the `xsbench` app (its __user_main) with the AppRegistry.
void RegisterXsbench();

}  // namespace dgc::apps

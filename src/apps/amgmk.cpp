#include "apps/amgmk.h"

#include <cmath>
#include <map>
#include <mutex>

#include "apps/common.h"
#include "dgcf/rpc.h"
#include "gpusim/ctx.h"
#include "ompx/team.h"
#include "support/argparse.h"
#include "support/rng.h"
#include "support/str.h"
#include "support/units.h"

namespace dgc::apps {
namespace {

using dgcf::AppEnv;
using dgcf::DeviceArgv;
using sim::DevicePtr;
using sim::DeviceTask;
using sim::ThreadCtx;

std::uint64_t HashVector(const double* u, std::uint64_t n) {
  std::uint64_t h = kFnvOffset;
  for (std::uint64_t i = 0; i < n; ++i) {
    h = HashCombine(h, std::uint64_t(std::llround(u[i] * 1e9)));
  }
  return h;
}

/// Weighted-Jacobi weight used by AMG smoothers.
constexpr double kOmega = 0.85;

void HostRelax(const AmgData& data, const std::vector<double>& u_in,
               std::vector<double>& u_out) {
  const std::size_t rows = data.diag.size();
  for (std::size_t i = 0; i < rows; ++i) {
    double acc = data.f[i];
    for (std::uint32_t k = data.row_ptr[i]; k < data.row_ptr[i + 1]; ++k) {
      acc -= data.val[k] * u_in[std::size_t(data.col[k])];
    }
    u_out[i] = u_in[i] + kOmega * (acc / data.diag[i] - u_in[i]);
  }
}

}  // namespace

StatusOr<AmgParams> AmgParams::Parse(const std::vector<std::string>& args) {
  AmgParams p;
  std::int64_t nx = p.nx, ny = p.ny, nz = p.nz, sweeps = p.sweeps;
  std::int64_t seed = std::int64_t(p.seed);
  bool verbose = false;
  ArgParser parser("AMGmk: weighted-Jacobi relax on a 27-point Laplacian");
  parser.AddInt("nx", 'x', "grid cells in x", &nx)
      .AddInt("ny", 'y', "grid cells in y", &ny)
      .AddInt("nz", 'z', "grid cells in z", &nz)
      .AddInt("sweeps", 'w', "relaxation sweeps", &sweeps)
      .AddInt("seed", 's', "workload seed", &seed)
      .AddFlag("verbose", 'v', "print results via device printf", &verbose);
  DGC_RETURN_IF_ERROR(parser.Parse(args));
  if (nx < 2 || ny < 2 || nz < 2 || sweeps < 1) {
    return Status(ErrorCode::kInvalidArgument, "amgmk: sizes too small");
  }
  p.nx = std::uint32_t(nx);
  p.ny = std::uint32_t(ny);
  p.nz = std::uint32_t(nz);
  p.sweeps = std::uint32_t(sweeps);
  p.seed = std::uint64_t(seed);
  p.verbose = verbose;
  return p;
}

std::uint64_t AmgParams::DeviceBytes() const {
  const std::uint64_t n = rows();
  const std::uint64_t nnz = n * 27;  // upper bound (interior rows)
  return (n + 1) * sizeof(std::uint32_t) + nnz * sizeof(std::int32_t) +
         nnz * sizeof(double) + 4 * n * sizeof(double) + 64 * kKiB;
}

AmgData GenerateAmgData(const AmgParams& params) {
  Rng rng(params.seed);
  AmgData data;
  const std::uint32_t nx = params.nx, ny = params.ny, nz = params.nz;
  const std::uint64_t rows = params.rows();
  data.row_ptr.reserve(rows + 1);
  data.row_ptr.push_back(0);
  data.diag.reserve(rows);

  auto cell = [&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    return std::int32_t((std::uint64_t(k) * ny + j) * nx + i);
  };

  for (std::uint32_t k = 0; k < nz; ++k) {
    for (std::uint32_t j = 0; j < ny; ++j) {
      for (std::uint32_t i = 0; i < nx; ++i) {
        double offdiag_sum = 0;
        for (int dk = -1; dk <= 1; ++dk) {
          for (int dj = -1; dj <= 1; ++dj) {
            for (int di = -1; di <= 1; ++di) {
              if (di == 0 && dj == 0 && dk == 0) continue;
              const std::int64_t ni = std::int64_t(i) + di;
              const std::int64_t nj = std::int64_t(j) + dj;
              const std::int64_t nk = std::int64_t(k) + dk;
              if (ni < 0 || nj < 0 || nk < 0 || ni >= nx || nj >= ny ||
                  nk >= nz) {
                continue;
              }
              const double w = -(1.0 + 0.05 * rng.NextDouble());
              data.col.push_back(cell(std::uint32_t(ni), std::uint32_t(nj),
                                      std::uint32_t(nk)));
              data.val.push_back(w);
              offdiag_sum += -w;
            }
          }
        }
        // Diagonally dominant: |a_ii| > sum of off-diagonals.
        data.diag.push_back(offdiag_sum + 1.0 + rng.NextDouble());
        data.row_ptr.push_back(std::uint32_t(data.col.size()));
      }
    }
  }
  data.u.resize(rows);
  data.f.resize(rows);
  for (auto& v : data.u) v = rng.NextDouble(-1.0, 1.0);
  for (auto& v : data.f) v = rng.NextDouble(-1.0, 1.0);
  return data;
}

std::uint64_t AmgHostReference(const AmgParams& params) {
  using Key = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                         std::uint32_t, std::uint64_t>;
  // Guarded: concurrent sweep points verify against the cache (a miss
  // recomputes outside the lock — deterministic, so duplicates agree).
  static std::mutex memo_mutex;
  static std::map<Key, std::uint64_t> memo;
  const Key key{params.nx, params.ny, params.nz, params.sweeps, params.seed};
  {
    std::lock_guard<std::mutex> lock(memo_mutex);
    if (auto it = memo.find(key); it != memo.end()) return it->second;
  }

  const AmgData data = GenerateAmgData(params);
  std::vector<double> u = data.u;
  std::vector<double> v(u.size());
  for (std::uint32_t s = 0; s < params.sweeps; ++s) {
    HostRelax(data, u, v);
    std::swap(u, v);
  }
  const std::uint64_t h = HashVector(u.data(), u.size());
  std::lock_guard<std::mutex> lock(memo_mutex);
  memo.emplace(key, h);
  return h;
}

namespace {

struct AmgView {
  AmgParams params;
  DevicePtr<std::uint32_t> row_ptr;
  DevicePtr<std::int32_t> col;
  DevicePtr<double> val, diag, u, v, f;
};

/// How many rows one relax task handles: a 27-point row has ≤ 26
/// off-diagonals, so 3 rows (≤ 78 entries) fit one pipelined gather —
/// the MLP depth a tuned streaming kernel achieves.
constexpr std::uint32_t kRowsPerTask = 3;

/// A strip of rows of the relax kernel: the streaming CSR traversal that
/// makes AMGmk bandwidth-bound. All loads of the strip are independent, so
/// they issue as a handful of wide pipelined gathers.
DeviceTask<void> RelaxRows(ThreadCtx& ctx, const AmgView& view,
                           std::uint64_t row0, std::uint32_t nrows,
                           DevicePtr<double> u_in, DevicePtr<double> u_out) {
  auto header = ctx.LoadRun(view.row_ptr + row0, nrows + 1);
  co_await header;
  const std::uint32_t span_begin = header.Result(0);
  const std::uint32_t span_end = header.Result(nrows);

  auto row_scalars = ctx.Gather<double>();
  for (std::uint32_t r = 0; r < nrows; ++r) {
    row_scalars.Add(view.f + (row0 + r));
    row_scalars.Add(view.diag + (row0 + r));
    row_scalars.Add(u_in + (row0 + r));
  }
  co_await row_scalars;

  double acc[kRowsPerTask];
  for (std::uint32_t r = 0; r < nrows; ++r) acc[r] = row_scalars.Result(3 * r);

  std::uint32_t k = span_begin;
  std::uint32_t row = 0;  // row (relative) owning index k
  while (k < span_end) {
    const std::uint32_t chunk =
        std::min<std::uint32_t>(span_end - k, sim::detail::kMaxGather);
    auto cols = ctx.LoadRun(view.col + k, chunk);
    co_await cols;
    auto vals = ctx.LoadRun(view.val + k, chunk);
    co_await vals;
    auto xs = ctx.Gather<double>();
    for (std::uint32_t j = 0; j < chunk; ++j) xs.Add(u_in + cols.Result(j));
    co_await xs;
    for (std::uint32_t j = 0; j < chunk; ++j) {
      while (k + j >= header.Result(row + 1)) ++row;
      acc[row] -= vals.Result(j) * xs.Result(j);
    }
    k += chunk;
  }
  co_await ctx.Work(2 * (span_end - span_begin) + 10 * nrows);
  auto updates = ctx.Scatter<double>();
  for (std::uint32_t r = 0; r < nrows; ++r) {
    const double diag = row_scalars.Result(3 * r + 1);
    const double u_old = row_scalars.Result(3 * r + 2);
    updates.Add(u_out + (row0 + r), u_old + kOmega * (acc[r] / diag - u_old));
  }
  co_await updates;
}

DeviceTask<int> AmgUserMain(AppEnv& env, ompx::TeamCtx& team, int argc,
                            DeviceArgv argv) {
  auto params_or = AmgParams::Parse(ExtractOptionArgs(argc, argv));
  if (!params_or.ok()) co_return dgcf::kExitUsage;
  const AmgParams params = *params_or;
  ThreadCtx& ctx = *team.hw;
  const std::uint64_t rows = params.rows();

  const AmgData data = GenerateAmgData(params);
  const std::uint64_t sizes[7] = {
      data.row_ptr.size() * sizeof(std::uint32_t),
      data.col.size() * sizeof(std::int32_t),
      data.val.size() * sizeof(double),
      rows * sizeof(double),  // diag
      rows * sizeof(double),  // u
      rows * sizeof(double),  // v
      rows * sizeof(double),  // f
  };
  std::vector<sim::DeviceBuffer> buffers(7);
  bool fill_inputs = true;
  if (env.share_data) {
    // The matrix (row_ptr/col/val/diag) and rhs f are read-only input; the
    // ping-pong vectors u and v are written every sweep and stay private
    // (u is also seed data, so every instance fills its own copy).
    const std::uint64_t key = SharedContentKey(
        "amgmk", {params.nx, params.ny, params.nz, params.seed});
    const std::vector<std::uint64_t> ro_sizes{sizes[0], sizes[1], sizes[2],
                                              sizes[3], sizes[6]};
    auto group = co_await env.libc->AcquireSharedGroup(ctx, key, ro_sizes,
                                                       "amgmk");
    if (!group.ok) co_return dgcf::kExitNoMem;
    for (int b = 0; b < 4; ++b) buffers[b] = group.buffers[std::size_t(b)];
    buffers[6] = group.buffers[4];
    fill_inputs = group.first;
    bool oom = false;
    for (int b = 4; b < 6; ++b) {
      buffers[b] = co_await env.libc->Malloc(ctx, sizes[b]);
      if (buffers[b].host == nullptr) oom = true;
    }
    if (oom) {
      for (int b = 0; b < 7; ++b) {
        if (buffers[b].host != nullptr) {
          co_await env.libc->Free(ctx, buffers[b].addr);
        }
      }
      co_return dgcf::kExitNoMem;
    }
  } else {
    for (int b = 0; b < 7; ++b) {
      buffers[b] = co_await env.libc->Malloc(ctx, sizes[b]);
    }
    for (const auto& b : buffers) {
      if (b.host == nullptr) {
        for (const auto& f : buffers) {
          if (f.host != nullptr) co_await env.libc->Free(ctx, f.addr);
        }
        co_return dgcf::kExitNoMem;
      }
    }
  }

  AmgView view;
  view.params = params;
  view.row_ptr = buffers[0].Typed<std::uint32_t>();
  view.col = buffers[1].Typed<std::int32_t>();
  view.val = buffers[2].Typed<double>();
  view.diag = buffers[3].Typed<double>();
  view.u = buffers[4].Typed<double>();
  view.v = buffers[5].Typed<double>();
  view.f = buffers[6].Typed<double>();

  if (fill_inputs) {
    std::copy(data.row_ptr.begin(), data.row_ptr.end(), view.row_ptr.host);
    std::copy(data.col.begin(), data.col.end(), view.col.host);
    std::copy(data.val.begin(), data.val.end(), view.val.host);
    std::copy(data.diag.begin(), data.diag.end(), view.diag.host);
    std::copy(data.f.begin(), data.f.end(), view.f.host);
  }
  // u is per-instance seed state even in shared mode.
  std::copy(data.u.begin(), data.u.end(), view.u.host);
  if (fill_inputs) {
    co_await ctx.Work(params.DeviceBytes() / 64);
  } else {
    co_await ctx.Work((sizes[4] + sizes[5]) / 64);
  }

  // The measured kernel: `sweeps` relaxations, ping-ponging u and v.
  DevicePtr<double> u_in = view.u, u_out = view.v;
  const std::uint64_t tasks = (rows + kRowsPerTask - 1) / kRowsPerTask;
  for (std::uint32_t s = 0; s < params.sweeps; ++s) {
    co_await ompx::ParallelFor(
        team, tasks,
        [&](ThreadCtx& tctx, std::uint64_t task) -> DeviceTask<void> {
          const std::uint64_t row0 = task * kRowsPerTask;
          const std::uint32_t nrows =
              std::uint32_t(std::min<std::uint64_t>(kRowsPerTask, rows - row0));
          co_await RelaxRows(tctx, view, row0, nrows, u_in, u_out);
        });
    std::swap(u_in, u_out);
  }

  std::uint64_t verification = kFnvOffset;
  for (std::uint64_t i = 0; i < rows; i += sim::detail::kMaxGather) {
    const std::uint32_t chunk =
        std::uint32_t(std::min<std::uint64_t>(rows - i, sim::detail::kMaxGather));
    auto results = ctx.LoadRun(u_in + i, chunk);
    co_await results;
    for (std::uint32_t j = 0; j < chunk; ++j) {
      verification = HashCombine(
          verification, std::uint64_t(std::llround(results.Result(j) * 1e9)));
    }
  }
  if (params.verbose) {
    co_await env.rpc->Print(
        ctx,
        StrFormat("amgmk: %llu rows, %u sweeps, verification %016llx\n",
                  (unsigned long long)rows, params.sweeps,
                  (unsigned long long)verification));
  }
  for (const auto& b : buffers) co_await env.libc->Free(ctx, b.addr);
  co_return verification == AmgHostReference(params) ? dgcf::kExitOk : 1;
}

}  // namespace

void RegisterAmgmk() {
  dgcf::AppRegistry::Instance().Register(
      {"amgmk", "AMGmk: bandwidth-bound Jacobi relax kernel (CORAL proxy)",
       AmgUserMain});
}

}  // namespace dgc::apps

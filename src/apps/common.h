// Shared helpers for the device-compiled mini-apps.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "dgcf/app.h"
#include "dgcf/libc.h"
#include "support/status.h"

namespace dgc::apps {

/// Copies a device argv into host strings (an untimed setup path; see
/// dgcf/libc.h). Includes argv[0].
std::vector<std::string> ExtractArgs(int argc, dgcf::DeviceArgv argv);

/// Like ExtractArgs but without argv[0] — the form ArgParser expects.
std::vector<std::string> ExtractOptionArgs(int argc, dgcf::DeviceArgv argv);

/// FNV-1a, used for the apps' verification checksums — matching the proxy
/// apps' habit of printing a verification hash of all results.
std::uint64_t HashCombine(std::uint64_t h, std::uint64_t v);
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

/// Content key for an app's shared read-only input segments
/// (DeviceLibc::AcquireSharedGroup): hashes the app tag plus every
/// data-determining parameter, so instances share storage iff they would
/// generate byte-identical inputs.
std::uint64_t SharedContentKey(std::string_view app,
                               std::initializer_list<std::uint64_t> fields);

/// Registers every bundled application with the AppRegistry. Idempotent.
/// Call from tests/benches/examples before using app names — static
/// registration alone can be dropped by the linker for static libraries.
void RegisterAllApps();

}  // namespace dgc::apps

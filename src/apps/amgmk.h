// AMGmk — the `relax` kernel of the CORAL AMGmk proxy app (HeCBench
// version): weighted Jacobi relaxation sweeps over a 27-point Laplacian in
// CSR form. Streaming and bandwidth-bound — the benchmark whose ensemble
// scaling saturates first at thread limit 1024 in the paper (§4.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.h"

namespace dgc::apps {

struct AmgParams {
  std::uint32_t nx = 12, ny = 12, nz = 12;  ///< grid dimensions
  std::uint32_t sweeps = 2;                 ///< relaxation sweeps
  std::uint64_t seed = 1;
  bool verbose = false;

  /// Parses `-x -y -z -w(sweeps) -s -v` from argv[1..].
  static StatusOr<AmgParams> Parse(const std::vector<std::string>& args);
  std::uint64_t DeviceBytes() const;
  std::uint32_t rows() const { return nx * ny * nz; }
};

struct AmgData {
  std::vector<std::uint32_t> row_ptr;  ///< [rows + 1]
  std::vector<std::int32_t> col;       ///< [nnz]
  std::vector<double> val;             ///< [nnz]
  std::vector<double> diag;            ///< [rows] (a_ii, kept separate)
  std::vector<double> u;               ///< initial guess
  std::vector<double> f;               ///< right-hand side
};

AmgData GenerateAmgData(const AmgParams& params);

/// Host reference: `sweeps` Jacobi relaxations; returns the verification
/// hash of the final vector.
std::uint64_t AmgHostReference(const AmgParams& params);

void RegisterAmgmk();

}  // namespace dgc::apps

#include "apps/xsbench.h"

#include <algorithm>
#include <cmath>

#include <map>
#include <mutex>

#include "apps/common.h"
#include "dgcf/rpc.h"
#include "support/units.h"
#include "ensemble/loader.h"
#include "gpusim/ctx.h"
#include "ompx/team.h"
#include "support/argparse.h"
#include "support/rng.h"
#include "support/str.h"

namespace dgc::apps {
namespace {

using dgcf::AppEnv;
using dgcf::DeviceArgv;
using sim::DevicePtr;
using sim::DeviceTask;
using sim::ThreadCtx;

constexpr std::uint32_t kC = XsData::kChannels;

}  // namespace

std::string_view ToString(XsGridType type) {
  switch (type) {
    case XsGridType::kUnionized: return "unionized";
    case XsGridType::kHash: return "hash";
    case XsGridType::kNuclide: return "nuclide";
  }
  return "?";
}

StatusOr<XsGridType> ParseXsGridType(std::string_view name) {
  if (name == "unionized") return XsGridType::kUnionized;
  if (name == "hash") return XsGridType::kHash;
  if (name == "nuclide") return XsGridType::kNuclide;
  return Status(ErrorCode::kInvalidArgument,
                "unknown grid type (unionized, hash, nuclide)");
}

StatusOr<XsParams> XsParams::Parse(const std::vector<std::string>& args) {
  XsParams p;
  std::int64_t isotopes = p.n_isotopes, grid = p.n_gridpoints;
  std::int64_t materials = p.n_materials, lookups = p.n_lookups;
  std::int64_t seed = std::int64_t(p.seed), hash_bins = p.hash_bins;
  std::string grid_type(ToString(p.grid_type));
  bool verbose = false;
  ArgParser parser("XSBench: macroscopic XS lookup");
  parser.AddInt("isotopes", 'i', "number of isotopes", &isotopes)
      .AddInt("gridpoints", 'g', "energy gridpoints per isotope", &grid)
      .AddInt("materials", 'm', "number of materials", &materials)
      .AddInt("lookups", 'l', "cross-section lookups", &lookups)
      .AddString("grid-type", 'G', "unionized | hash | nuclide", &grid_type)
      .AddInt("hash-bins", 'H', "hash-grid bins", &hash_bins)
      .AddInt("seed", 's', "workload seed", &seed)
      .AddFlag("verbose", 'v', "print results via device printf", &verbose);
  DGC_RETURN_IF_ERROR(parser.Parse(args));
  if (isotopes < 2 || grid < 2 || materials < 1 || lookups < 1 ||
      hash_bins < 1) {
    return Status(ErrorCode::kInvalidArgument, "xsbench: sizes too small");
  }
  p.n_isotopes = std::uint32_t(isotopes);
  p.n_gridpoints = std::uint32_t(grid);
  p.n_materials = std::uint32_t(materials);
  p.n_lookups = std::uint32_t(lookups);
  p.hash_bins = std::uint32_t(hash_bins);
  DGC_ASSIGN_OR_RETURN(p.grid_type, ParseXsGridType(grid_type));
  p.seed = std::uint64_t(seed);
  p.verbose = verbose;
  return p;
}

std::uint64_t XsParams::DeviceBytes() const {
  const std::uint64_t points = std::uint64_t(n_isotopes) * n_gridpoints;
  std::uint64_t accel = 0;
  switch (grid_type) {
    case XsGridType::kUnionized:
      accel = points * sizeof(double)                       // union energies
              + points * n_isotopes * sizeof(std::int32_t); // index table
      break;
    case XsGridType::kHash:
      accel = std::uint64_t(hash_bins) * n_isotopes * sizeof(std::int32_t);
      break;
    case XsGridType::kNuclide:
      break;
  }
  return points * sizeof(double)                    // nuclide energies
         + points * kC * sizeof(double)             // nuclide XS
         + accel
         + std::uint64_t(n_lookups) * sizeof(std::uint64_t)  // results
         + 64 * kKiB;                               // materials + slack
}

XsData GenerateXsData(const XsParams& params) {
  Rng rng(params.seed);
  XsData data;
  const std::uint32_t iso = params.n_isotopes, grid = params.n_gridpoints;

  // Per-isotope sorted energy grids and XS channel values.
  data.nuclide_energy.resize(std::size_t(iso) * grid);
  data.nuclide_xs.resize(std::size_t(iso) * grid * kC);
  for (std::uint32_t n = 0; n < iso; ++n) {
    double* e = &data.nuclide_energy[std::size_t(n) * grid];
    for (std::uint32_t g = 0; g < grid; ++g) e[g] = rng.NextDouble();
    std::sort(e, e + grid);
    for (std::uint32_t g = 0; g < grid * kC; ++g) {
      data.nuclide_xs[std::size_t(n) * grid * kC + g] = rng.NextDouble(0.1, 10.0);
    }
  }

  // Acceleration structure. The energy span is common to all grid types.
  const auto [emin_it, emax_it] = std::minmax_element(
      data.nuclide_energy.begin(), data.nuclide_energy.end());
  const double e_min = *emin_it, e_max = *emax_it;

  if (params.grid_type == XsGridType::kUnionized) {
    // Unionized grid: all energies, sorted; plus per-union-point index into
    // every isotope's grid (XSBench's memory-dominant acceleration table).
    data.union_energy = data.nuclide_energy;
    std::sort(data.union_energy.begin(), data.union_energy.end());
    const std::uint32_t n_union = data.n_union();
    data.union_index.assign(std::size_t(n_union) * iso, 0);
    for (std::uint32_t n = 0; n < iso; ++n) {
      const double* e = &data.nuclide_energy[std::size_t(n) * grid];
      std::uint32_t cursor = 0;
      for (std::uint32_t u = 0; u < n_union; ++u) {
        while (cursor + 1 < grid && e[cursor + 1] <= data.union_energy[u]) {
          ++cursor;
        }
        // Clamp to grid-2 so interpolation can always use [idx, idx+1].
        data.union_index[std::size_t(u) * iso + n] =
            std::int32_t(std::min(cursor, grid - 2));
      }
    }
  } else if (params.grid_type == XsGridType::kHash) {
    // Hash grid: per bin and isotope, the canonical index at the bin's
    // lower bound; lookups walk forward from there.
    data.hash_index.assign(std::size_t(params.hash_bins) * iso, 0);
    for (std::uint32_t n = 0; n < iso; ++n) {
      const double* e = &data.nuclide_energy[std::size_t(n) * grid];
      std::uint32_t cursor = 0;
      for (std::uint32_t b = 0; b < params.hash_bins; ++b) {
        const double bin_lo =
            e_min + (e_max - e_min) * double(b) / double(params.hash_bins);
        while (cursor + 1 < grid && e[cursor + 1] <= bin_lo) ++cursor;
        data.hash_index[std::size_t(b) * iso + n] =
            std::int32_t(std::min(cursor, grid - 2));
      }
    }
  }

  // Materials: 2..5 distinct nuclides each, with densities.
  data.mat_offset.assign(params.n_materials + 1, 0);
  for (std::uint32_t m = 0; m < params.n_materials; ++m) {
    const std::uint32_t count = std::min(iso, 2 + m % 4);
    data.mat_offset[m + 1] = data.mat_offset[m] + count;
    std::vector<std::uint32_t> picked;
    while (picked.size() < count) {
      const std::uint32_t candidate = std::uint32_t(rng.NextBounded(iso));
      if (std::find(picked.begin(), picked.end(), candidate) == picked.end()) {
        picked.push_back(candidate);
      }
    }
    for (std::uint32_t id : picked) {
      data.mat_nuclide.push_back(id);
      data.mat_density.push_back(rng.NextDouble(0.5, 2.0));
    }
  }
  return data;
}

void XsSampleLookup(const XsParams& params, std::uint64_t lookup,
                    double& unit_energy, std::uint32_t& material) {
  SplitMix64 sm(params.seed * 0x9e3779b97f4a7c15ULL + lookup + 1);
  unit_energy = double(sm.Next() >> 11) * 0x1.0p-53;
  material = std::uint32_t(sm.Next() % params.n_materials);
}

namespace {

/// One lookup's macroscopic XS hash — identical arithmetic on host and
/// device keeps verification bit-exact.
std::uint64_t HashMacroXs(const double macro[kC]) {
  std::uint64_t h = kFnvOffset;
  for (std::uint32_t c = 0; c < kC; ++c) {
    h = HashCombine(h, std::uint64_t(std::llround(macro[c] * 1e8)));
  }
  return h;
}

}  // namespace

std::uint64_t XsHostReference(const XsParams& params) {
  // Memoized: the ensemble harness re-verifies many instances against the
  // same handful of parameter sets.
  using Key = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                         std::uint32_t, std::uint64_t>;
  // Guarded: concurrent sweep points verify against the cache. A miss
  // computes outside the lock (worst case two workers duplicate the same
  // deterministic value).
  static std::mutex memo_mutex;
  static std::map<Key, std::uint64_t> memo;
  const Key key{params.n_isotopes, params.n_gridpoints, params.n_materials,
                params.n_lookups, params.seed};
  {
    std::lock_guard<std::mutex> lock(memo_mutex);
    if (auto it = memo.find(key); it != memo.end()) return it->second;
  }

  // The reference uses the canonical per-nuclide index search directly —
  // every acceleration structure must locate the same bracketing index, so
  // the hash is identical for all grid types (and the memo key needs none).
  XsParams canonical = params;
  canonical.grid_type = XsGridType::kNuclide;
  const XsData data = GenerateXsData(canonical);
  const std::uint32_t grid = params.n_gridpoints;
  const auto [emin_it, emax_it] = std::minmax_element(
      data.nuclide_energy.begin(), data.nuclide_energy.end());
  const double e0 = *emin_it;
  const double e_span = *emax_it - e0;

  std::uint64_t verification = 0;
  for (std::uint64_t l = 0; l < params.n_lookups; ++l) {
    double r;
    std::uint32_t mat;
    XsSampleLookup(params, l, r, mat);
    const double e = e0 + r * e_span;

    double macro[kC] = {0, 0, 0, 0, 0};
    for (std::uint32_t k = data.mat_offset[mat]; k < data.mat_offset[mat + 1];
         ++k) {
      const std::uint32_t n = data.mat_nuclide[k];
      const double density = data.mat_density[k];
      const double* e_grid = &data.nuclide_energy[std::size_t(n) * grid];
      // Canonical: largest idx with e_grid[idx] <= e, clamped to grid-2.
      std::uint32_t lo = 0, hi = grid - 1;
      while (hi - lo > 1) {
        const std::uint32_t mid = (lo + hi) / 2;
        if (e_grid[mid] <= e) lo = mid; else hi = mid;
      }
      const std::int32_t ig = std::int32_t(std::min(lo, grid - 2));
      const double f =
          (e - e_grid[ig]) / (e_grid[ig + 1] - e_grid[ig]);
      const double* xs =
          &data.nuclide_xs[(std::size_t(n) * grid + std::size_t(ig)) * kC];
      const double* xs_hi = xs + kC;
      for (std::uint32_t c = 0; c < kC; ++c) {
        macro[c] += density * (xs[c] + f * (xs_hi[c] - xs[c]));
      }
    }
    verification ^= HashMacroXs(macro);
  }
  std::lock_guard<std::mutex> lock(memo_mutex);
  memo.emplace(key, verification);
  return verification;
}

namespace {

struct XsView {
  XsParams params;
  std::uint32_t n_union = 0;
  double e0 = 0, e_span = 0;
  DevicePtr<double> nuclide_energy, nuclide_xs, union_energy, mat_density;
  DevicePtr<std::int32_t> union_index, hash_index;
  DevicePtr<std::uint32_t> mat_offset, mat_nuclide;
  DevicePtr<std::uint64_t> out;
};

/// Locates the bracketing index for nuclide `n` at energy `e` through the
/// configured acceleration structure (timed device loads).
DeviceTask<std::int32_t> XsFindIndex(ThreadCtx& ctx, const XsView& v,
                                     std::uint32_t n, double e,
                                     std::uint32_t union_lo) {
  const std::uint32_t iso = v.params.n_isotopes;
  const std::uint32_t grid = v.params.n_gridpoints;
  switch (v.params.grid_type) {
    case XsGridType::kUnionized:
      // One table load; the union binary search happened once per lookup.
      co_return co_await ctx.Load(v.union_index +
                                  std::ptrdiff_t(union_lo) * iso + n);
    case XsGridType::kHash: {
      const double u = (e - v.e0) / v.e_span;
      const std::uint32_t bin = std::min(
          std::uint32_t(u * v.params.hash_bins), v.params.hash_bins - 1);
      std::int32_t idx =
          co_await ctx.Load(v.hash_index + std::ptrdiff_t(bin) * iso + n);
      auto e_grid = v.nuclide_energy + std::ptrdiff_t(n) * grid;
      // Bounded forward walk within the bin (dependent loads).
      while (idx < std::int32_t(grid) - 2) {
        const double next = co_await ctx.Load(e_grid + idx + 1);
        if (next > e) break;
        ++idx;
      }
      co_return idx;
    }
    case XsGridType::kNuclide: {
      // Canonical per-nuclide binary search (dependent loads).
      auto e_grid = v.nuclide_energy + std::ptrdiff_t(n) * grid;
      std::uint32_t lo = 0, hi = grid - 1;
      while (hi - lo > 1) {
        const std::uint32_t mid = (lo + hi) / 2;
        const double em = co_await ctx.Load(e_grid + mid);
        if (em <= e) lo = mid; else hi = mid;
      }
      co_return std::int32_t(std::min(lo, grid - 2));
    }
  }
  co_return 0;
}

/// The device lookup: timed binary search + gather + interpolation.
DeviceTask<void> XsDeviceLookup(ThreadCtx& ctx, const XsView& v,
                                std::uint64_t l) {
  double r;
  std::uint32_t mat;
  XsSampleLookup(v.params, l, r, mat);
  const double e = v.e0 + r * v.e_span;
  co_await ctx.Work(40);  // RNG + setup arithmetic

  // The unionized grid pays one binary search per lookup up front; the
  // other grid types locate indices per nuclide inside XsFindIndex.
  std::uint32_t union_lo = 0;
  if (v.params.grid_type == XsGridType::kUnionized) {
    std::uint32_t lo = 0, hi = v.n_union - 1;
    while (hi - lo > 1) {
      const std::uint32_t mid = (lo + hi) / 2;
      const double em = co_await ctx.Load(v.union_energy + mid);
      if (em <= e) lo = mid; else hi = mid;
    }
    union_lo = lo;
  }

  const std::uint32_t grid = v.params.n_gridpoints;
  const std::uint32_t begin = co_await ctx.Load(v.mat_offset + mat);
  const std::uint32_t end = co_await ctx.Load(v.mat_offset + mat + 1);

  double macro[kC] = {0, 0, 0, 0, 0};
  for (std::uint32_t k = begin; k < end; ++k) {
    const std::uint32_t n = co_await ctx.Load(v.mat_nuclide + k);
    const double density = co_await ctx.Load(v.mat_density + k);
    // The index lookup depends on the search; the bracketing energies and
    // the 2×5 XS values are then independent → one gather.
    const std::int32_t ig = co_await XsFindIndex(ctx, v, n, e, union_lo);
    auto e_grid = v.nuclide_energy + std::ptrdiff_t(n) * grid;
    auto xs =
        v.nuclide_xs + (std::ptrdiff_t(n) * grid + std::ptrdiff_t(ig)) * kC;
    auto values = ctx.Gather<double>();
    values.Add(e_grid + ig);
    values.Add(e_grid + ig + 1);
    for (std::uint32_t c = 0; c < 2 * kC; ++c) values.Add(xs + c);
    co_await values;
    const double f = (e - values.Result(0)) / (values.Result(1) - values.Result(0));
    for (std::uint32_t c = 0; c < kC; ++c) {
      const double x_lo = values.Result(2 + c);
      const double x_hi = values.Result(2 + kC + c);
      macro[c] += density * (x_lo + f * (x_hi - x_lo));
    }
    co_await ctx.Work(30);  // interpolation FLOPs for this nuclide
  }
  co_await ctx.Store(v.out + l, HashMacroXs(macro));
}

DeviceTask<int> XsUserMain(AppEnv& env, ompx::TeamCtx& team, int argc,
                           DeviceArgv argv) {
  auto params_or = XsParams::Parse(ExtractOptionArgs(argc, argv));
  if (!params_or.ok()) co_return dgcf::kExitUsage;
  const XsParams params = *params_or;
  ThreadCtx& ctx = *team.hw;

  // --- Initialization (the app generates its own data, like XSBench) ------
  const XsData data = GenerateXsData(params);

  // Optional acceleration arrays allocate only when non-empty.
  std::vector<sim::DeviceBuffer> buffers(8);
  const std::uint64_t sizes[8] = {
      data.nuclide_energy.size() * sizeof(double),
      data.nuclide_xs.size() * sizeof(double),
      data.union_energy.size() * sizeof(double),
      data.union_index.size() * sizeof(std::int32_t),
      data.mat_offset.size() * sizeof(std::uint32_t),
      data.mat_nuclide.size() * sizeof(std::uint32_t),
      data.mat_density.size() * sizeof(double),
      params.n_lookups * sizeof(std::uint64_t),
  };
  sim::DeviceBuffer hash_buf{};
  const std::uint64_t hash_bytes =
      data.hash_index.size() * sizeof(std::int32_t);
  // Everything but the result buffer (buffers[7]) is read-only input. With
  // sharing on, those arrays live in content-keyed shared segments: one
  // physical copy per identical parameter set across co-resident instances.
  bool fill_inputs = true;
  if (env.share_data) {
    const std::uint64_t key = SharedContentKey(
        "xsbench", {params.n_isotopes, params.n_gridpoints,
                    params.n_materials, params.hash_bins,
                    std::uint64_t(params.grid_type), params.seed});
    std::vector<std::uint64_t> ro_sizes(sizes, sizes + 7);
    ro_sizes.push_back(hash_bytes);
    auto group = co_await env.libc->AcquireSharedGroup(ctx, key, ro_sizes,
                                                       "xsbench");
    if (!group.ok) co_return dgcf::kExitNoMem;
    for (int b = 0; b < 7; ++b) buffers[std::size_t(b)] = group.buffers[std::size_t(b)];
    hash_buf = group.buffers[7];
    fill_inputs = group.first;
    buffers[7] = co_await env.libc->Malloc(ctx, sizes[7]);
    if (buffers[7].host == nullptr) {
      for (const auto& f : group.buffers) {
        if (f.host != nullptr) co_await env.libc->Free(ctx, f.addr);
      }
      co_return dgcf::kExitNoMem;
    }
  } else {
    bool oom = false;
    for (int b = 0; b < 8; ++b) {
      if (sizes[b] == 0) continue;
      buffers[std::size_t(b)] = co_await env.libc->Malloc(ctx, sizes[b]);
      if (buffers[std::size_t(b)].host == nullptr) oom = true;
    }
    if (!data.hash_index.empty()) {
      hash_buf = co_await env.libc->Malloc(ctx, hash_bytes);
      if (hash_buf.host == nullptr) oom = true;
    }
    if (oom) {
      for (const auto& f : buffers) {
        if (f.host != nullptr) co_await env.libc->Free(ctx, f.addr);
      }
      if (hash_buf.host != nullptr) co_await env.libc->Free(ctx, hash_buf.addr);
      co_return dgcf::kExitNoMem;
    }
  }

  const auto [emin_it, emax_it] = std::minmax_element(
      data.nuclide_energy.begin(), data.nuclide_energy.end());

  XsView v;
  v.params = params;
  v.n_union = data.n_union();
  v.e0 = *emin_it;
  v.e_span = *emax_it - v.e0;
  v.nuclide_energy = buffers[0].Typed<double>();
  v.nuclide_xs = buffers[1].Typed<double>();
  v.union_energy = buffers[2].Typed<double>();
  v.union_index = buffers[3].Typed<std::int32_t>();
  v.hash_index = hash_buf.Typed<std::int32_t>();
  v.mat_offset = buffers[4].Typed<std::uint32_t>();
  v.mat_nuclide = buffers[5].Typed<std::uint32_t>();
  v.mat_density = buffers[6].Typed<double>();
  v.out = buffers[7].Typed<std::uint64_t>();

  // Fill device data (initialization phase; charged as bulk work rather
  // than per-element timed stores — see DESIGN.md §4). Attachers to shared
  // segments skip the input fill — the materializer already did it — and
  // pay only for their private result buffer.
  if (fill_inputs) {
    std::copy(data.nuclide_energy.begin(), data.nuclide_energy.end(),
              v.nuclide_energy.host);
    std::copy(data.nuclide_xs.begin(), data.nuclide_xs.end(),
              v.nuclide_xs.host);
    if (!data.union_energy.empty()) {
      std::copy(data.union_energy.begin(), data.union_energy.end(),
                v.union_energy.host);
      std::copy(data.union_index.begin(), data.union_index.end(),
                v.union_index.host);
    }
    if (!data.hash_index.empty()) {
      std::copy(data.hash_index.begin(), data.hash_index.end(),
                v.hash_index.host);
    }
    std::copy(data.mat_offset.begin(), data.mat_offset.end(),
              v.mat_offset.host);
    std::copy(data.mat_nuclide.begin(), data.mat_nuclide.end(),
              v.mat_nuclide.host);
    std::copy(data.mat_density.begin(), data.mat_density.end(),
              v.mat_density.host);
    co_await ctx.Work(params.DeviceBytes() / 64);
  } else {
    co_await ctx.Work(sizes[7] / 64);
  }

  // --- The measured kernel: lookups across the team's threads -------------
  co_await ompx::ParallelFor(
      team, params.n_lookups,
      [&](ThreadCtx& tctx, std::uint64_t l) -> DeviceTask<void> {
        co_await XsDeviceLookup(tctx, v, l);
      });

  // --- Verification: fold the per-lookup hashes (sequential epilogue) -----
  std::uint64_t verification = 0;
  for (std::uint64_t l = 0; l < params.n_lookups; l += sim::detail::kMaxGather) {
    const std::uint32_t chunk = std::uint32_t(
        std::min<std::uint64_t>(params.n_lookups - l, sim::detail::kMaxGather));
    auto results = ctx.LoadRun(v.out + l, chunk);
    co_await results;
    for (std::uint32_t j = 0; j < chunk; ++j) verification ^= results.Result(j);
  }
  if (params.verbose) {
    co_await env.rpc->Print(
        ctx, StrFormat("xsbench: %u lookups, verification %016llx\n",
                       params.n_lookups, (unsigned long long)verification));
  }

  for (const auto& b : buffers) {
    if (b.host != nullptr) co_await env.libc->Free(ctx, b.addr);
  }
  if (hash_buf.host != nullptr) co_await env.libc->Free(ctx, hash_buf.addr);
  // Exit code encodes the verification outcome against the host reference.
  co_return verification == XsHostReference(params) ? dgcf::kExitOk : 1;
}

}  // namespace

void RegisterXsbench() {
  dgcf::AppRegistry::Instance().Register(
      {"xsbench", "XSBench: memory-bound macroscopic XS lookup (OpenMC proxy)",
       XsUserMain});
}

}  // namespace dgc::apps

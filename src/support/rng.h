// Deterministic pseudo-random number generation.
//
// The simulator, workload generators, and property tests all need streams
// that are reproducible across runs and platforms, so we implement the
// generators ourselves instead of relying on unspecified standard-library
// distributions. SplitMix64 seeds Xoshiro256**, the main engine.
#pragma once

#include <cstdint>

namespace dgc {

/// SplitMix64: tiny, passes BigCrush; used for seeding and cheap streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x2545f4914f6cdd1dULL);

  std::uint64_t NextU64();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Jump function: advances 2^128 steps, for independent parallel streams.
  void Jump();

 private:
  std::uint64_t s_[4];
};

}  // namespace dgc

// Streaming statistics and fixed-bucket histograms, used by the simulator's
// counters and by the benchmark harnesses' reporting.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dgc {

/// Welford's online mean/variance with min/max tracking.
class RunningStat {
 public:
  void Add(double x);

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  /// Sample variance (n-1); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Histogram over [lo, hi) with uniform buckets; out-of-range samples land
/// in saturating edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double x);
  std::uint64_t bucket_count(std::size_t i) const { return counts_.at(i); }
  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }

  /// Approximate quantile in [0,1] by bucket interpolation.
  double Quantile(double q) const;

  /// Compact ASCII rendering for logs.
  std::string ToString() const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace dgc

#include "support/str.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dgc {
namespace {
bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}
}  // namespace

std::string_view TrimWhitespace(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && IsSpace(s[b])) ++b;
  while (e > b && IsSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> SplitChar(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> SplitWhitespace(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsSpace(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !IsSpace(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

StatusOr<std::vector<std::string>> TokenizeCommandLine(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  bool in_token = false;
  char quote = 0;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quote != 0) {
      if (c == quote) {
        quote = 0;
      } else if (c == '\\' && quote == '"' && i + 1 < line.size() &&
                 (line[i + 1] == '"' || line[i + 1] == '\\')) {
        current += line[++i];
      } else {
        current += c;
      }
      continue;
    }
    if (c == '\'' || c == '"') {
      quote = c;
      in_token = true;
    } else if (c == '\\') {
      if (i + 1 >= line.size()) {
        return Status(ErrorCode::kInvalidArgument,
                      "trailing backslash in command line");
      }
      current += line[++i];
      in_token = true;
    } else if (IsSpace(c)) {
      if (in_token) {
        tokens.push_back(std::move(current));
        current.clear();
        in_token = false;
      }
    } else {
      current += c;
      in_token = true;
    }
  }
  if (quote != 0) {
    return Status(ErrorCode::kInvalidArgument, "unterminated quote in command line");
  }
  if (in_token) tokens.push_back(std::move(current));
  return tokens;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += sep;
    out += pieces[i];
  }
  return out;
}

StatusOr<std::int64_t> ParseInt(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return Status(ErrorCode::kInvalidArgument, "empty integer");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status(ErrorCode::kInvalidArgument, "integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status(ErrorCode::kInvalidArgument, "not an integer: " + buf);
  }
  return std::int64_t(v);
}

StatusOr<double> ParseDouble(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return Status(ErrorCode::kInvalidArgument, "empty number");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status(ErrorCode::kInvalidArgument, "number out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status(ErrorCode::kInvalidArgument, "not a number: " + buf);
  }
  return v;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(std::size_t(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace dgc

#include "support/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace dgc {
namespace {

LogLevel InitialLevel() {
  if (const char* env = std::getenv("DGC_LOG")) {
    LogLevel level;
    if (ParseLogLevel(env, level)) return level;
  }
  return LogLevel::kWarning;
}

// Atomic: sweep workers consult the level concurrently with any host-side
// SetLogLevel (relaxed is enough — the level is an independent knob).
std::atomic<LogLevel>& GlobalLevel() {
  static std::atomic<LogLevel> level{InitialLevel()};
  return level;
}

std::string_view LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

char ToLowerAscii(char c) { return (c >= 'A' && c <= 'Z') ? char(c - 'A' + 'a') : c; }

}  // namespace

void SetLogLevel(LogLevel level) {
  GlobalLevel().store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() {
  return GlobalLevel().load(std::memory_order_relaxed);
}

bool ParseLogLevel(std::string_view text, LogLevel& out) {
  std::string lower(text);
  for (char& c : lower) c = ToLowerAscii(c);
  if (lower == "debug") out = LogLevel::kDebug;
  else if (lower == "info") out = LogLevel::kInfo;
  else if (lower == "warning" || lower == "warn") out = LogLevel::kWarning;
  else if (lower == "error") out = LogLevel::kError;
  else if (lower == "off" || lower == "none") out = LogLevel::kOff;
  else return false;
  return true;
}

namespace detail {
void Emit(LogLevel level, std::string_view message) {
  std::fprintf(stderr, "[dgc %s] %.*s\n", LevelTag(level).data(),
               int(message.size()), message.data());
}
}  // namespace detail

}  // namespace dgc

// String helpers used by the argument-file parser, the arg-script language,
// and the command-line parsers of the loader and the mini-apps.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace dgc {

/// Removes leading/trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// Splits on a single character; empty fields are kept.
std::vector<std::string_view> SplitChar(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace; no empty fields.
std::vector<std::string_view> SplitWhitespace(std::string_view s);

/// Splits a command line into tokens honoring single/double quotes and
/// backslash escapes (the argument-file grammar; see ensemble/argfile.h).
StatusOr<std::vector<std::string>> TokenizeCommandLine(std::string_view line);

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// Strict integer / floating point parsing (whole string must match).
StatusOr<std::int64_t> ParseInt(std::string_view s);
StatusOr<double> ParseDouble(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace dgc

#include "support/json.h"

#include <cctype>

#include "support/str.h"

namespace dgc {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += char(c);
        }
    }
  }
  return out;
}

namespace {

/// Recursive-descent well-formedness checker. `pos` advances past the
/// parsed construct; errors carry the byte offset for diagnostics.
class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  Status Run() {
    SkipWs();
    DGC_RETURN_IF_ERROR(Value(0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after the JSON value");
    }
    return Status::Ok();
  }

 private:
  static constexpr int kMaxDepth = 128;

  Status Error(const std::string& what) const {
    return Status(ErrorCode::kInvalidArgument,
                  StrFormat("JSON error at byte %zu: %s", pos_, what.c_str()));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("invalid literal");
    }
    pos_ += word.size();
    return Status::Ok();
  }

  Status String() {
    if (!Eat('"')) return Error("expected '\"'");
    while (pos_ < text_.size()) {
      const unsigned char c = (unsigned char)text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c < 0x20) return Error("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Error("truncated escape");
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit((unsigned char)text_[pos_ + i])) {
              return Error("bad \\u escape");
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return Error("unknown escape");
        }
        ++pos_;
      } else {
        ++pos_;
      }
    }
    return Error("unterminated string");
  }

  Status Number() {
    const std::size_t start = pos_;
    Eat('-');
    if (Eat('0')) {
      // no further digits allowed in the integer part
    } else {
      if (pos_ >= text_.size() || !std::isdigit((unsigned char)text_[pos_])) {
        return Error("expected digit");
      }
      while (pos_ < text_.size() && std::isdigit((unsigned char)text_[pos_])) {
        ++pos_;
      }
    }
    if (Eat('.')) {
      if (pos_ >= text_.size() || !std::isdigit((unsigned char)text_[pos_])) {
        return Error("expected fraction digit");
      }
      while (pos_ < text_.size() && std::isdigit((unsigned char)text_[pos_])) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit((unsigned char)text_[pos_])) {
        return Error("expected exponent digit");
      }
      while (pos_ < text_.size() && std::isdigit((unsigned char)text_[pos_])) {
        ++pos_;
      }
    }
    if (pos_ == start) return Error("expected number");
    return Status::Ok();
  }

  Status Value(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("expected a value");
    switch (text_[pos_]) {
      case '{': return Object(depth);
      case '[': return Array(depth);
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  Status Object(int depth) {
    Eat('{');
    SkipWs();
    if (Eat('}')) return Status::Ok();
    while (true) {
      SkipWs();
      DGC_RETURN_IF_ERROR(String());
      SkipWs();
      if (!Eat(':')) return Error("expected ':'");
      SkipWs();
      DGC_RETURN_IF_ERROR(Value(depth + 1));
      SkipWs();
      if (Eat('}')) return Status::Ok();
      if (!Eat(',')) return Error("expected ',' or '}'");
    }
  }

  Status Array(int depth) {
    Eat('[');
    SkipWs();
    if (Eat(']')) return Status::Ok();
    while (true) {
      SkipWs();
      DGC_RETURN_IF_ERROR(Value(depth + 1));
      SkipWs();
      if (Eat(']')) return Status::Ok();
      if (!Eat(',')) return Error("expected ',' or ']'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Status JsonValidate(std::string_view text) { return Validator(text).Run(); }

}  // namespace dgc

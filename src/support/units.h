// Units and human-readable formatting for the simulator's reporting paths.
#pragma once

#include <cstdint>
#include <string>

namespace dgc {

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

/// "512 B", "3.25 KiB", "40.00 GiB", ...
std::string FormatBytes(std::uint64_t bytes);

/// "1.41 GHz" style frequency formatting from Hz.
std::string FormatHz(double hz);

/// "12.3 us" / "4.56 ms" / "1.23 s" from seconds.
std::string FormatSeconds(double seconds);

/// Thousands separators: 1234567 -> "1,234,567".
std::string FormatCount(std::uint64_t value);

}  // namespace dgc

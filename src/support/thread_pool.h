// A small fixed-size worker pool for running independent host-side jobs —
// the engine behind the parallel Fig. 6 sweep runner (ensemble/experiment.h).
//
// The pool is deliberately simple: a FIFO queue drained by N workers. Jobs
// start in submission order; completion order is up to the host scheduler,
// so callers that need deterministic output must write results into
// pre-assigned slots and assemble them after RunAll returns (exactly what
// the sweep runner does).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "support/status.h"

namespace dgc {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 picks DefaultThreads().
  explicit ThreadPool(unsigned num_threads = 0);
  /// Drains the queue, then joins the workers.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return unsigned(workers_.size()); }

  /// max(1, std::thread::hardware_concurrency()).
  static unsigned DefaultThreads();

  /// Enqueues one job (must be non-null); jobs start in submission order.
  /// The future completes when the job returns or throws.
  std::future<void> Submit(std::function<void()> job);

  /// Submits every job and blocks until all of them finished. An empty
  /// batch or a null job is rejected with kInvalidArgument before anything
  /// runs. If jobs throw, every job still runs to completion and then the
  /// exception of the smallest-index throwing job is rethrown.
  ///
  /// The caller only waits — a pool worker calling RunAll on its own pool
  /// deadlocks when no other worker is free. Nested use must go through
  /// RunAllParticipating.
  Status RunAll(std::vector<std::function<void()>> jobs);

  /// RunAll, with the calling thread draining the queue alongside the
  /// workers until its batch is done. Progress is guaranteed even when
  /// every worker is busy (or the pool is the caller's own): the caller
  /// itself runs whatever is still queued. This is the nested-submission
  /// path — a sweep worker fanning an intra-launch shard batch into a pool
  /// must use it. Validation and exception semantics match RunAll.
  Status RunAllParticipating(std::vector<std::function<void()>> jobs);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs body(0), ..., body(count-1) to completion. `threads` <= 1 executes
/// inline in index order (no pool, no extra threads — bit-for-bit today's
/// serial behaviour); otherwise min(threads, count) - 1 temporary workers
/// plus the calling thread run the calls concurrently
/// (RunAllParticipating), so calling from inside another pool's worker can
/// never deadlock and never idles the caller. Rejects count == 0 with
/// kInvalidArgument. Exceptions propagate as in ThreadPool::RunAll (inline
/// mode throws at the first failing index).
Status ParallelFor(std::size_t count, unsigned threads,
                   const std::function<void(std::size_t)>& body);

}  // namespace dgc

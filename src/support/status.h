// Lightweight error-handling vocabulary used across the library.
//
// The library is exception-free on its hot paths: fallible operations return
// `Status` or `StatusOr<T>` and callers decide how to react. `DGC_CHECK` is
// reserved for programmer errors (broken invariants), not user input.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace dgc {

/// Coarse error taxonomy; mirrors the failure classes the runtime can hit.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   ///< malformed user input (flags, argument files, ...)
  kOutOfMemory,       ///< device or host allocation failure
  kNotFound,          ///< missing file, symbol, or registered application
  kFailedPrecondition,///< operation not legal in the current state
  kUnsupported,       ///< feature outside the implemented subset
  kInternal,          ///< bug: an invariant the library promised was violated
};

/// Human-readable name of an error code ("OutOfMemory", ...).
std::string_view ToString(ErrorCode code);

/// A success-or-error result with a message. Cheap to move, comparable to ok.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Either a value or a Status error. A minimal `expected`-style type.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : rep_(std::move(value)) {}
  StatusOr(Status status) : rep_(std::move(status)) {
    if (std::get<Status>(rep_).ok()) {
      // An OK status carries no value; treat as a caller bug.
      rep_ = Status(ErrorCode::kInternal, "StatusOr constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  T& value() & { return std::get<T>(rep_); }
  const T& value() const& { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

namespace detail {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);
}  // namespace detail

/// Aborts with a diagnostic when a library invariant is violated.
#define DGC_CHECK(expr)                                                  \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::dgc::detail::CheckFailed(__FILE__, __LINE__, #expr, {});         \
    }                                                                    \
  } while (0)

#define DGC_CHECK_MSG(expr, msg)                                         \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::dgc::detail::CheckFailed(__FILE__, __LINE__, #expr, (msg));      \
    }                                                                    \
  } while (0)

/// Propagates a non-OK Status to the caller.
#define DGC_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::dgc::Status dgc_status_ = (expr);        \
    if (!dgc_status_.ok()) return dgc_status_; \
  } while (0)

/// Unwraps a StatusOr into `lhs`, propagating errors.
#define DGC_ASSIGN_OR_RETURN(lhs, expr)                \
  DGC_ASSIGN_OR_RETURN_IMPL_(                          \
      DGC_STATUS_CONCAT_(dgc_statusor_, __LINE__), lhs, expr)
#define DGC_STATUS_CONCAT_INNER_(a, b) a##b
#define DGC_STATUS_CONCAT_(a, b) DGC_STATUS_CONCAT_INNER_(a, b)
#define DGC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

}  // namespace dgc

#include "support/argparse.h"

#include <set>

#include "support/str.h"

namespace dgc {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

ArgParser& ArgParser::AddString(std::string long_name, char short_name,
                                std::string help, std::string* out,
                                bool required) {
  DGC_CHECK(out != nullptr);
  options_.push_back({std::move(long_name), short_name, std::move(help),
                      Kind::kString, required, out, nullptr, nullptr, nullptr});
  return *this;
}

ArgParser& ArgParser::AddInt(std::string long_name, char short_name,
                             std::string help, std::int64_t* out,
                             bool required) {
  DGC_CHECK(out != nullptr);
  options_.push_back({std::move(long_name), short_name, std::move(help),
                      Kind::kInt, required, nullptr, out, nullptr, nullptr});
  return *this;
}

ArgParser& ArgParser::AddDouble(std::string long_name, char short_name,
                                std::string help, double* out, bool required) {
  DGC_CHECK(out != nullptr);
  options_.push_back({std::move(long_name), short_name, std::move(help),
                      Kind::kDouble, required, nullptr, nullptr, out, nullptr});
  return *this;
}

ArgParser& ArgParser::AddFlag(std::string long_name, char short_name,
                              std::string help, bool* out) {
  DGC_CHECK(out != nullptr);
  options_.push_back({std::move(long_name), short_name, std::move(help),
                      Kind::kFlag, false, nullptr, nullptr, nullptr, out});
  return *this;
}

ArgParser& ArgParser::AddPositionalList(std::string name, std::string help,
                                        std::vector<std::string>* out) {
  DGC_CHECK(out != nullptr);
  positional_name_ = std::move(name);
  positional_help_ = std::move(help);
  positional_out_ = out;
  return *this;
}

const ArgParser::Option* ArgParser::Find(std::string_view long_name,
                                         char short_name) const {
  for (const Option& opt : options_) {
    if (!long_name.empty() && opt.long_name == long_name) return &opt;
    if (short_name != 0 && opt.short_name == short_name) return &opt;
  }
  return nullptr;
}

Status ArgParser::Apply(const Option& opt, std::string_view value) {
  switch (opt.kind) {
    case Kind::kString:
      *opt.str_out = std::string(value);
      return Status::Ok();
    case Kind::kInt: {
      DGC_ASSIGN_OR_RETURN(*opt.int_out, ParseInt(value));
      return Status::Ok();
    }
    case Kind::kDouble: {
      DGC_ASSIGN_OR_RETURN(*opt.dbl_out, ParseDouble(value));
      return Status::Ok();
    }
    case Kind::kFlag:
      *opt.flag_out = true;
      return Status::Ok();
  }
  return Status(ErrorCode::kInternal, "unknown option kind");
}

Status ArgParser::Parse(int argc, const char* const* argv) const {
  std::vector<std::string> args;
  args.reserve(std::size_t(argc));
  for (int i = 0; i < argc; ++i) args.emplace_back(argv[i]);
  return Parse(args);
}

Status ArgParser::Parse(const std::vector<std::string>& args) const {
  std::set<const Option*> seen;
  std::vector<std::string> positionals;
  bool options_done = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (options_done || arg.empty() || arg[0] != '-' || arg == "-") {
      positionals.push_back(arg);
      continue;
    }
    if (arg == "--") {
      options_done = true;
      continue;
    }

    const Option* opt = nullptr;
    std::optional<std::string> inline_value;
    if (StartsWith(arg, "--")) {
      std::string_view body = std::string_view(arg).substr(2);
      const std::size_t eq = body.find('=');
      if (eq != std::string_view::npos) {
        inline_value = std::string(body.substr(eq + 1));
        body = body.substr(0, eq);
      }
      opt = Find(body, 0);
      if (opt == nullptr) {
        return Status(ErrorCode::kInvalidArgument, "unknown option: " + arg);
      }
    } else {
      if (arg.size() < 2) {
        return Status(ErrorCode::kInvalidArgument, "malformed option: " + arg);
      }
      opt = Find({}, arg[1]);
      if (opt == nullptr) {
        return Status(ErrorCode::kInvalidArgument, "unknown option: " + arg);
      }
      if (arg.size() > 2) inline_value = arg.substr(2);  // -n4 style
    }

    if (opt->kind == Kind::kFlag) {
      if (inline_value.has_value()) {
        return Status(ErrorCode::kInvalidArgument,
                      "flag does not take a value: " + arg);
      }
      *opt->flag_out = true;
      seen.insert(opt);
      continue;
    }

    std::string value;
    if (inline_value.has_value()) {
      value = *inline_value;
    } else {
      if (i + 1 >= args.size()) {
        return Status(ErrorCode::kInvalidArgument,
                      "option requires a value: " + arg);
      }
      value = args[++i];
    }
    DGC_RETURN_IF_ERROR(Apply(*opt, value));
    seen.insert(opt);
  }

  for (const Option& opt : options_) {
    if (opt.required && seen.count(&opt) == 0) {
      std::string name = opt.long_name.empty()
                             ? std::string("-") + opt.short_name
                             : "--" + opt.long_name;
      return Status(ErrorCode::kInvalidArgument,
                    "missing required option: " + name);
    }
  }

  if (!positionals.empty()) {
    if (positional_out_ == nullptr) {
      return Status(ErrorCode::kInvalidArgument,
                    "unexpected positional argument: " + positionals.front());
    }
    *positional_out_ = std::move(positionals);
  }
  return Status::Ok();
}

std::string ArgParser::Usage(std::string_view program_name) const {
  std::string out = StrFormat("usage: %.*s [options]", int(program_name.size()),
                              program_name.data());
  if (positional_out_ != nullptr) out += " [" + positional_name_ + "...]";
  out += "\n";
  if (!description_.empty()) out += description_ + "\n";
  for (const Option& opt : options_) {
    std::string names;
    if (opt.short_name != 0) names += StrFormat("-%c", opt.short_name);
    if (!opt.long_name.empty()) {
      if (!names.empty()) names += ", ";
      names += "--" + opt.long_name;
    }
    if (opt.kind != Kind::kFlag) names += " <value>";
    out += StrFormat("  %-28s %s%s\n", names.c_str(), opt.help.c_str(),
                     opt.required ? " (required)" : "");
  }
  if (positional_out_ != nullptr) {
    out += StrFormat("  %-28s %s\n", positional_name_.c_str(),
                     positional_help_.c_str());
  }
  return out;
}

}  // namespace dgc

// Bump-pointer arena.
//
// The warp scheduler allocates one coroutine frame per simulated device
// function call; recycling those frames through an arena keeps the simulator
// allocation-free on its hot path. Also used by the loaders to build
// per-instance argv blocks with stable addresses (the paper's StringCache).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace dgc {

class Arena {
 public:
  explicit Arena(std::size_t block_bytes = 64 * 1024);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Returns `bytes` of storage aligned to `align` (power of two).
  void* Allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  /// Copies a string into the arena and returns a NUL-terminated pointer
  /// that stays valid for the arena's lifetime.
  char* StrDup(std::string_view s);

  /// Constructs a T in arena storage. T must be trivially destructible
  /// (the arena never runs destructors).
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return ::new (Allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  /// Releases all allocations but keeps the blocks for reuse.
  void Reset();

  std::size_t bytes_allocated() const { return bytes_allocated_; }
  std::size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  Block& NewBlock(std::size_t min_bytes);

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t active_ = 0;  // blocks[0..active_) are (partially) used
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace dgc

#include "support/status.h"

namespace dgc {

std::string_view ToString(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kOutOfMemory: return "OutOfMemory";
    case ErrorCode::kNotFound: return "NotFound";
    case ErrorCode::kFailedPrecondition: return "FailedPrecondition";
    case ErrorCode::kUnsupported: return "Unsupported";
    case ErrorCode::kInternal: return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(dgc::ToString(code_));
  out += ": ";
  out += message_;
  return out;
}

namespace detail {
void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& extra) {
  std::fprintf(stderr, "DGC_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}
}  // namespace detail

}  // namespace dgc

// Minimal JSON utilities for the machine-readable exporters (metrics,
// Chrome traces): string escaping for the writers and a strict validator
// used by tests and smoke checks. This is intentionally not a DOM — the
// exporters emit documents with a fixed, schema-documented field order, so
// all we need is to escape correctly and to prove the output parses.
#pragma once

#include <string>
#include <string_view>

#include "support/status.h"

namespace dgc {

/// Escapes `s` for inclusion inside a JSON string literal (quotes are NOT
/// added): ", \, and control characters become their escape sequences.
std::string JsonEscape(std::string_view s);

/// Strict RFC 8259 well-formedness check of a complete JSON document
/// (one value, nothing but whitespace after it). Returns the first error
/// with its byte offset. Does not build a tree; O(n) and allocation-free.
Status JsonValidate(std::string_view text);

}  // namespace dgc

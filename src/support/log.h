// Minimal leveled logger.
//
// Severity is filtered by a process-wide level (default: Warning, override
// with the DGC_LOG env var or SetLogLevel). Output goes to stderr so that
// simulated-application stdout (device printf via RPC) stays clean.
#pragma once

#include <sstream>
#include <string_view>

namespace dgc {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Sets the global level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug"/"info"/"warning"/"error"/"off" (case-insensitive).
bool ParseLogLevel(std::string_view text, LogLevel& out);

namespace detail {
void Emit(LogLevel level, std::string_view message);

/// Stream-style single-message sink; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Emit(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define DGC_LOG(level)                                            \
  if (::dgc::LogLevel::level < ::dgc::GetLogLevel()) {            \
  } else                                                          \
    ::dgc::detail::LogMessage(::dgc::LogLevel::level)

}  // namespace dgc

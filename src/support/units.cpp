#include "support/units.h"

#include "support/str.h"

namespace dgc {

std::string FormatBytes(std::uint64_t bytes) {
  if (bytes < kKiB) return StrFormat("%llu B", (unsigned long long)bytes);
  if (bytes < kMiB) return StrFormat("%.2f KiB", double(bytes) / double(kKiB));
  if (bytes < kGiB) return StrFormat("%.2f MiB", double(bytes) / double(kMiB));
  return StrFormat("%.2f GiB", double(bytes) / double(kGiB));
}

std::string FormatHz(double hz) {
  if (hz < 1e3) return StrFormat("%.0f Hz", hz);
  if (hz < 1e6) return StrFormat("%.2f kHz", hz / 1e3);
  if (hz < 1e9) return StrFormat("%.2f MHz", hz / 1e6);
  return StrFormat("%.2f GHz", hz / 1e9);
}

std::string FormatSeconds(double seconds) {
  if (seconds < 1e-6) return StrFormat("%.1f ns", seconds * 1e9);
  if (seconds < 1e-3) return StrFormat("%.2f us", seconds * 1e6);
  if (seconds < 1.0) return StrFormat("%.2f ms", seconds * 1e3);
  return StrFormat("%.3f s", seconds);
}

std::string FormatCount(std::uint64_t value) {
  std::string digits = StrFormat("%llu", (unsigned long long)value);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace dgc

#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/status.h"
#include "support/str.h"

namespace dgc {

void RunningStat::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / double(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  return count_ < 2 ? 0.0 : m2_ / double(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  DGC_CHECK(buckets > 0);
  DGC_CHECK(hi > lo);
}

void Histogram::Add(double x) {
  const double span = hi_ - lo_;
  double t = (x - lo_) / span * double(counts_.size());
  std::size_t idx;
  if (t < 0) {
    idx = 0;
  } else if (t >= double(counts_.size())) {
    idx = counts_.size() - 1;
  } else {
    idx = std::size_t(t);
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * double(total_);
  double cumulative = 0;
  const double width = (hi_ - lo_) / double(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + double(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] == 0 ? 0.0 : (target - cumulative) / double(counts_[i]);
      return lo_ + (double(i) + frac) * width;
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::ToString() const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  const double width = (hi_ - lo_) / double(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const int bar = int(40.0 * double(counts_[i]) / double(peak));
    out += StrFormat("[%10.3g, %10.3g) %8llu %s\n", lo_ + double(i) * width,
                     lo_ + double(i + 1) * width,
                     (unsigned long long)counts_[i],
                     std::string(std::size_t(bar), '#').c_str());
  }
  return out;
}

}  // namespace dgc

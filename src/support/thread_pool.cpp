#include "support/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace dgc {

unsigned ThreadPool::DefaultThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = DefaultThreads();
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> job) {
  DGC_CHECK(job != nullptr);
  std::packaged_task<void()> task(std::move(job));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

Status ThreadPool::RunAll(std::vector<std::function<void()>> jobs) {
  if (jobs.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "ThreadPool::RunAll: no jobs to run");
  }
  for (const auto& job : jobs) {
    if (job == nullptr) {
      return Status(ErrorCode::kInvalidArgument,
                    "ThreadPool::RunAll: null job");
    }
  }
  std::vector<std::future<void>> futures;
  futures.reserve(jobs.size());
  for (auto& job : jobs) futures.push_back(Submit(std::move(job)));
  // Wait for everything before reporting, so no job outlives the caller's
  // state; the smallest-index exception wins (deterministic under races).
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return Status::Ok();
}

Status ThreadPool::RunAllParticipating(std::vector<std::function<void()>> jobs) {
  if (jobs.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "ThreadPool::RunAllParticipating: no jobs to run");
  }
  for (const auto& job : jobs) {
    if (job == nullptr) {
      return Status(ErrorCode::kInvalidArgument,
                    "ThreadPool::RunAllParticipating: null job");
    }
  }
  std::vector<std::future<void>> futures;
  futures.reserve(jobs.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& job : jobs) {
      std::packaged_task<void()> task(std::move(job));
      futures.push_back(task.get_future());
      queue_.push_back(std::move(task));
    }
  }
  cv_.notify_all();
  // Help: drain the queue on this thread until it is empty. The caller may
  // run tasks from other batches sharing the pool — that only accelerates
  // them — and cannot block: anything still queued is runnable right here.
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (queue_.empty()) break;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
  // Tasks picked up by workers may still be in flight; wait on the batch.
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return Status::Ok();
}

Status ParallelFor(std::size_t count, unsigned threads,
                   const std::function<void(std::size_t)>& body) {
  if (count == 0) {
    return Status(ErrorCode::kInvalidArgument, "ParallelFor: no jobs to run");
  }
  if (body == nullptr) {
    return Status(ErrorCode::kInvalidArgument, "ParallelFor: null body");
  }
  const unsigned concurrency = unsigned(std::min<std::size_t>(threads, count));
  if (concurrency <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return Status::Ok();
  }
  // concurrency - 1 workers; the caller is the final lane. Participation
  // (rather than idle waiting) is what makes nesting safe: a body that
  // itself fans out, or a ParallelFor issued from another pool's worker,
  // always has at least its own thread making progress.
  ThreadPool pool(concurrency - 1);
  std::vector<std::function<void()>> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    jobs.push_back([&body, i] { body(i); });
  }
  return pool.RunAllParticipating(std::move(jobs));
}

}  // namespace dgc

// A small declarative command-line parser.
//
// Used twice: by the ensemble loader for its own flags (-f/-n/-t, §3.2 of the
// paper) and by the mini-apps for their per-instance command lines. It
// supports short (-n 4) and long (--instances 4, --instances=4) options,
// boolean flags, repeated options, and positional arguments. Parsing never
// touches global state, so many instances can parse "their" argv in the same
// process — exactly what ensemble execution needs.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace dgc {

class ArgParser {
 public:
  explicit ArgParser(std::string program_description = {});

  /// Registers `-<short_name>/--<long_name> <value>`; either name may be
  /// empty. `required` options must appear. Returns *this for chaining.
  ArgParser& AddString(std::string long_name, char short_name,
                       std::string help, std::string* out,
                       bool required = false);
  ArgParser& AddInt(std::string long_name, char short_name, std::string help,
                    std::int64_t* out, bool required = false);
  ArgParser& AddDouble(std::string long_name, char short_name,
                       std::string help, double* out, bool required = false);
  /// Boolean flag: present → true.
  ArgParser& AddFlag(std::string long_name, char short_name, std::string help,
                     bool* out);
  /// Positional arguments collected in order after all options.
  ArgParser& AddPositionalList(std::string name, std::string help,
                               std::vector<std::string>* out);

  /// Parses argv (excluding argv[0]). "--" terminates option parsing.
  Status Parse(int argc, const char* const* argv) const;
  Status Parse(const std::vector<std::string>& args) const;

  /// Usage text (program description + per-option help lines).
  std::string Usage(std::string_view program_name) const;

 private:
  enum class Kind { kString, kInt, kDouble, kFlag };
  struct Option {
    std::string long_name;
    char short_name = 0;
    std::string help;
    Kind kind = Kind::kString;
    bool required = false;
    std::string* str_out = nullptr;
    std::int64_t* int_out = nullptr;
    double* dbl_out = nullptr;
    bool* flag_out = nullptr;
  };

  const Option* Find(std::string_view long_name, char short_name) const;
  static Status Apply(const Option& opt, std::string_view value);

  std::string description_;
  std::vector<Option> options_;
  std::string positional_name_;
  std::string positional_help_;
  std::vector<std::string>* positional_out_ = nullptr;
};

}  // namespace dgc

#include "support/rng.h"

namespace dgc {
namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  __uint128_t m = __uint128_t(NextU64()) * bound;
  std::uint64_t lo = std::uint64_t(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = __uint128_t(NextU64()) * bound;
      lo = std::uint64_t(m);
    }
  }
  return std::uint64_t(m >> 64);
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = std::uint64_t(hi - lo) + 1;
  return lo + std::int64_t(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits → uniform in [0,1).
  return double(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

void Rng::Jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
      0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      NextU64();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

}  // namespace dgc

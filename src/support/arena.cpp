#include "support/arena.h"

#include <cstring>
#include <string_view>

#include "support/status.h"

namespace dgc {

Arena::Arena(std::size_t block_bytes) : block_bytes_(block_bytes) {
  DGC_CHECK(block_bytes_ > 0);
}

Arena::Block& Arena::NewBlock(std::size_t min_bytes) {
  // Reuse a retained block if it is large enough.
  while (active_ < blocks_.size()) {
    Block& candidate = blocks_[active_];
    if (candidate.size >= min_bytes) {
      candidate.used = 0;
      ++active_;
      return candidate;
    }
    // Too small for this request; skip it for now (it may serve later
    // requests after the next Reset).
    std::swap(candidate, blocks_.back());
    bytes_reserved_ -= blocks_.back().size;
    blocks_.pop_back();
  }
  const std::size_t size = std::max(block_bytes_, min_bytes);
  Block block;
  block.data = std::make_unique<std::byte[]>(size);
  block.size = size;
  bytes_reserved_ += size;
  blocks_.push_back(std::move(block));
  ++active_;
  return blocks_.back();
}

void* Arena::Allocate(std::size_t bytes, std::size_t align) {
  DGC_CHECK((align & (align - 1)) == 0);
  if (bytes == 0) bytes = 1;
  // Align the *absolute address*, not the intra-block offset: the block's
  // base is only guaranteed operator-new alignment, which can be below the
  // requested one.
  auto aligned_offset = [align](const Block& b) {
    const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(b.data.get());
    return std::size_t(((base + b.used + align - 1) & ~std::uintptr_t(align - 1)) -
                       base);
  };
  Block* block = active_ > 0 ? &blocks_[active_ - 1] : nullptr;
  std::size_t offset = 0;
  if (block != nullptr) {
    offset = aligned_offset(*block);
    if (offset + bytes > block->size) block = nullptr;
  }
  if (block == nullptr) {
    block = &NewBlock(bytes + align);
    offset = aligned_offset(*block);
  }
  block->used = offset + bytes;
  bytes_allocated_ += bytes;
  return block->data.get() + offset;
}

char* Arena::StrDup(std::string_view s) {
  char* out = static_cast<char*>(Allocate(s.size() + 1, 1));
  std::memcpy(out, s.data(), s.size());
  out[s.size()] = '\0';
  return out;
}

void Arena::Reset() {
  active_ = 0;
  bytes_allocated_ = 0;
}

}  // namespace dgc

#include "gpusim/memcheck.h"

#include <algorithm>

#include "gpusim/ctx.h"
#include "gpusim/kernel.h"
#include "gpusim/stats.h"
#include "gpusim/warp.h"
#include "support/str.h"

namespace dgc::sim {
namespace {

/// Retired allocations kept for use-after-free attribution. Old entries are
/// evicted FIFO; a UAF on an evicted range degrades to a wild OOB report.
constexpr std::size_t kMaxFreedShadow = 4096;

const char* OpName(DeviceOp::Kind op) {
  switch (op) {
    case DeviceOp::Kind::kLoad: return "load";
    case DeviceOp::Kind::kLoadBatch: return "gather";
    case DeviceOp::Kind::kStore: return "store";
    case DeviceOp::Kind::kStoreBatch: return "scatter";
    case DeviceOp::Kind::kAtomic: return "atomic";
    default: return "access";
  }
}

std::string OwnerName(std::int32_t owner) {
  if (owner == kSharedOwner) return "shared";
  if (owner == kReadOnlyShared) return "shared read-only";
  if (owner < 0) return "untagged";
  return StrFormat("instance %d", owner);
}

}  // namespace

const char* ToString(MemcheckErrorKind kind) {
  switch (kind) {
    case MemcheckErrorKind::kOutOfBounds: return "out-of-bounds";
    case MemcheckErrorKind::kUseAfterFree: return "use-after-free";
    case MemcheckErrorKind::kDoubleFree: return "double-free";
    case MemcheckErrorKind::kInvalidFree: return "invalid-free";
    case MemcheckErrorKind::kMisaligned: return "misaligned-access";
    case MemcheckErrorKind::kLeak: return "leak";
    case MemcheckErrorKind::kCrossInstance: return "cross-instance-write";
  }
  return "unknown";
}

std::string MemcheckFinding::ToString() const {
  std::string out = StrFormat("%s: %s of %llu byte(s) at 0x%llx",
                              sim::ToString(kind), OpName(op),
                              (unsigned long long)bytes,
                              (unsigned long long)addr);
  if (attributed) {
    out += StrFormat(" by block %u warp %u lane %u", block_id, warp_id,
                     lane_id);
    if (instance != kNoInstance) {
      out += StrFormat(" (instance %d)", instance);
    }
  }
  if (has_region) {
    out += StrFormat("; region [0x%llx, +%llu) owner %s",
                     (unsigned long long)region_base,
                     (unsigned long long)region_bytes,
                     OwnerName(region_owner).c_str());
    if (!region_label.empty()) out += " \"" + region_label + "\"";
  }
  return out;
}

std::string MemcheckReport::ToString() const {
  if (clean()) return "memcheck: no findings\n";
  std::string out = StrFormat(
      "memcheck: %llu finding(s) — oob %llu, use-after-free %llu, "
      "double-free %llu, invalid-free %llu, misaligned %llu, leak %llu, "
      "cross-instance %llu\n",
      (unsigned long long)total(), (unsigned long long)oob_count,
      (unsigned long long)uaf_count, (unsigned long long)double_free_count,
      (unsigned long long)invalid_free_count,
      (unsigned long long)misaligned_count, (unsigned long long)leak_count,
      (unsigned long long)cross_instance_count);
  for (const MemcheckFinding& f : findings) {
    out += "  " + f.ToString() + "\n";
  }
  if (total() > findings.size()) {
    out += StrFormat("  ... %llu further finding(s) not recorded\n",
                     (unsigned long long)(total() - findings.size()));
  }
  return out;
}

Memcheck::Memcheck(MemcheckConfig config) : config_(config) {}

void Memcheck::Attach(DeviceMemory& memory) {
  memory.set_listener(this);
  // Adopt allocations that predate the attach. Only the rounded extent is
  // known for them, so padding overruns inside those regions go unnoticed.
  for (const auto& [addr, bytes] : memory.LiveAllocations()) {
    if (live_.count(addr) != 0) continue;
    ShadowAlloc shadow;
    shadow.addr = addr;
    shadow.bytes = bytes;
    shadow.rounded = bytes;
    live_.emplace(addr, std::move(shadow));
  }
}

void Memcheck::OnAlloc(DeviceAddr addr, std::uint64_t requested,
                       std::uint64_t rounded) {
  // The allocator reuses freed ranges; drop retired shadows they overlap so
  // stale use-after-free attribution cannot shadow the new region.
  auto it = freed_.lower_bound(addr);
  if (it != freed_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.rounded > addr) it = prev;
  }
  while (it != freed_.end() && it->first < addr + rounded) {
    std::erase(freed_order_, it->first);
    it = freed_.erase(it);
  }

  ShadowAlloc shadow;
  shadow.addr = addr;
  shadow.bytes = requested;
  shadow.rounded = rounded;
  if (const Lane* lane = CurrentLane(); lane != nullptr) {
    shadow.device_alloc = true;
    shadow.alloc_attributed = true;
    shadow.alloc_block = lane->ctx != nullptr ? lane->ctx->block_id : 0;
    shadow.alloc_thread = lane->thread_id;
    shadow.alloc_instance = InstanceOf(*lane);
    shadow.owner = shadow.alloc_instance;
  }
  live_[addr] = std::move(shadow);
}

void Memcheck::OnFree(DeviceAddr addr, std::uint64_t /*rounded*/) {
  auto it = live_.find(addr);
  if (it == live_.end()) return;
  if (freed_order_.size() >= kMaxFreedShadow) {
    freed_.erase(freed_order_.front());
    freed_order_.erase(freed_order_.begin());
  }
  freed_order_.push_back(addr);
  freed_[addr] = std::move(it->second);
  live_.erase(it);
}

void Memcheck::OnFreeFailed(DeviceAddr addr) {
  MemcheckFinding f;
  f.addr = addr;
  if (const Lane* lane = CurrentLane(); lane != nullptr) Attribute(f, *lane);
  if (const ShadowAlloc* dead = FindFreed(addr);
      dead != nullptr && dead->addr == addr) {
    f.kind = MemcheckErrorKind::kDoubleFree;
    DescribeRegion(f, *dead);
  } else {
    f.kind = MemcheckErrorKind::kInvalidFree;
    if (const ShadowAlloc* region = FindLive(addr)) DescribeRegion(f, *region);
  }
  Record(std::move(f));
}

void Memcheck::OnSharedRegion(DeviceAddr addr, const std::string& label) {
  TagRegion(addr, kReadOnlyShared, label);
}

void Memcheck::TagRegion(DeviceAddr addr, std::int32_t owner,
                         std::string label) {
  auto it = live_.find(addr);
  if (it == live_.end()) return;
  it->second.owner = owner;
  it->second.first_writer = kNoInstance;
  it->second.label = std::move(label);
}

void Memcheck::SetTeamInstance(std::uint32_t team, std::int32_t instance) {
  team_instances_[team] = instance;
}

void Memcheck::OnLaunchBegin(const LaunchConfig& config) {
  teams_per_block_ = std::max(1u, config.block.y);
  findings_at_launch_begin_ = report_.total();
}

void Memcheck::OnLaunchEnd(LaunchStats& stats) {
  if (config_.check_leaks) {
    for (auto& [addr, shadow] : live_) {
      if (!shadow.device_alloc || shadow.leak_reported) continue;
      shadow.leak_reported = true;
      MemcheckFinding f;
      f.kind = MemcheckErrorKind::kLeak;
      f.addr = addr;
      f.bytes = shadow.bytes;
      f.attributed = shadow.alloc_attributed;
      f.block_id = shadow.alloc_block;
      f.thread_id = shadow.alloc_thread;
      f.lane_id = shadow.alloc_thread % 32;
      f.warp_id = shadow.alloc_thread / 32;
      f.instance = shadow.alloc_instance;
      DescribeRegion(f, shadow);
      Record(std::move(f));
    }
  }
  stats.memcheck_findings += report_.total() - findings_at_launch_begin_;
  findings_at_launch_begin_ = report_.total();
}

bool Memcheck::CheckAccess(const Lane& lane, DeviceOp::Kind op,
                           DeviceAddr addr, std::uint32_t bytes,
                           bool is_write) {
  if (config_.check_alignment && bytes != 0 && addr % bytes != 0) {
    MemcheckFinding f;
    f.kind = MemcheckErrorKind::kMisaligned;
    f.op = op;
    f.addr = addr;
    f.bytes = bytes;
    Attribute(f, lane);
    Record(std::move(f));
  }

  const ShadowAlloc* region = FindLive(addr);
  if (region == nullptr) {
    MemcheckFinding f;
    f.op = op;
    f.addr = addr;
    f.bytes = bytes;
    Attribute(f, lane);
    if (const ShadowAlloc* dead = FindFreed(addr)) {
      f.kind = MemcheckErrorKind::kUseAfterFree;
      DescribeRegion(f, *dead);
    } else {
      f.kind = MemcheckErrorKind::kOutOfBounds;
    }
    Record(std::move(f));
    return false;  // no live backing storage — suppress the access
  }

  if (addr + bytes > region->addr + region->bytes) {
    // Inside the allocator's rounding padding (or straddling the requested
    // end): flagged, but backed by real storage, so the access may proceed.
    MemcheckFinding f;
    f.kind = MemcheckErrorKind::kOutOfBounds;
    f.op = op;
    f.addr = addr;
    f.bytes = bytes;
    Attribute(f, lane);
    DescribeRegion(f, *region);
    Record(std::move(f));
    return addr + bytes <= region->addr + region->rounded;
  }

  if (config_.check_cross_instance && is_write &&
      region->owner != kNoInstance) {
    const std::int32_t inst = InstanceOf(lane);
    if (inst != kNoInstance) {
      bool race = false;
      if (region->owner >= 0) {
        race = inst != region->owner;
      } else if (region->owner == kReadOnlyShared) {
        // A shared read-only input segment: no writer is ever legitimate.
        race = true;
      } else {  // kSharedOwner: first writer claims, later writers race
        ShadowAlloc* mut = const_cast<ShadowAlloc*>(region);
        if (mut->first_writer == kNoInstance) {
          mut->first_writer = inst;
        } else {
          race = inst != mut->first_writer;
        }
      }
      if (race) {
        MemcheckFinding f;
        f.kind = MemcheckErrorKind::kCrossInstance;
        f.op = op;
        f.addr = addr;
        f.bytes = bytes;
        Attribute(f, lane);
        DescribeRegion(f, *region);
        Record(std::move(f));
      }
    }
  }
  return true;
}

void Memcheck::ResetReport() {
  report_ = MemcheckReport{};
  findings_at_launch_begin_ = 0;
}

const Memcheck::ShadowAlloc* Memcheck::FindLive(DeviceAddr addr) const {
  auto it = live_.upper_bound(addr);
  if (it == live_.begin()) return nullptr;
  --it;
  if (addr >= it->first + it->second.rounded) return nullptr;
  return &it->second;
}

const Memcheck::ShadowAlloc* Memcheck::FindFreed(DeviceAddr addr) const {
  auto it = freed_.upper_bound(addr);
  if (it == freed_.begin()) return nullptr;
  --it;
  if (addr >= it->first + it->second.rounded) return nullptr;
  return &it->second;
}

std::int32_t Memcheck::InstanceOf(const Lane& lane) const {
  if (team_instances_.empty() || lane.ctx == nullptr) return kNoInstance;
  const std::uint32_t team =
      lane.ctx->block_id * teams_per_block_ + lane.ctx->tid3.y;
  auto it = team_instances_.find(team);
  return it == team_instances_.end() ? kNoInstance : it->second;
}

void Memcheck::Attribute(MemcheckFinding& f, const Lane& lane) const {
  f.attributed = true;
  f.thread_id = lane.thread_id;
  if (lane.warp != nullptr) {
    f.warp_id = lane.warp->id();
    f.lane_id = lane.thread_id % 32;
  }
  if (lane.ctx != nullptr) f.block_id = lane.ctx->block_id;
  f.instance = InstanceOf(lane);
}

void Memcheck::DescribeRegion(MemcheckFinding& f,
                              const ShadowAlloc& region) const {
  f.has_region = true;
  f.region_base = region.addr;
  f.region_bytes = region.bytes;
  f.region_owner = region.owner;
  f.region_label = region.label;
}

void Memcheck::Record(MemcheckFinding finding) {
  ++CounterFor(finding.kind);
  if (report_.findings.size() < config_.max_findings) {
    report_.findings.push_back(std::move(finding));
  }
}

std::uint64_t& Memcheck::CounterFor(MemcheckErrorKind kind) {
  switch (kind) {
    case MemcheckErrorKind::kOutOfBounds: return report_.oob_count;
    case MemcheckErrorKind::kUseAfterFree: return report_.uaf_count;
    case MemcheckErrorKind::kDoubleFree: return report_.double_free_count;
    case MemcheckErrorKind::kInvalidFree: return report_.invalid_free_count;
    case MemcheckErrorKind::kMisaligned: return report_.misaligned_count;
    case MemcheckErrorKind::kLeak: return report_.leak_count;
    case MemcheckErrorKind::kCrossInstance:
      return report_.cross_instance_count;
  }
  return report_.oob_count;
}

}  // namespace dgc::sim

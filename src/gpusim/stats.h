// Counters collected by the simulator during a kernel launch.
#pragma once

#include <cstdint>
#include <string>

namespace dgc::sim {

struct LaunchStats {
  // Instruction mix (warp granularity).
  std::uint64_t warp_instructions = 0;
  std::uint64_t compute_instructions = 0;
  std::uint64_t load_instructions = 0;
  std::uint64_t store_instructions = 0;
  std::uint64_t atomic_instructions = 0;
  std::uint64_t external_calls = 0;   ///< RPC / host callbacks
  std::uint64_t barrier_arrivals = 0;
  std::uint64_t divergent_replays = 0;  ///< extra serialized op groups

  // Memory behaviour.
  std::uint64_t global_sectors = 0;        ///< after coalescing
  std::uint64_t ideal_sectors = 0;         ///< lower bound (perfect packing)
  std::uint64_t l1_hits = 0, l1_misses = 0;
  std::uint64_t l2_hits = 0, l2_misses = 0;
  std::uint64_t dram_bytes = 0;
  std::uint64_t dram_row_hits = 0, dram_row_misses = 0;
  std::uint64_t smem_accesses = 0;
  std::uint64_t smem_bank_conflicts = 0;  ///< extra serialized bank cycles

  // Compute behaviour.
  std::uint64_t compute_cycles_issued = 0;

  // Outcome.
  std::uint64_t elapsed_cycles = 0;
  std::uint64_t blocks_launched = 0;
  /// Sanitizer findings attributed to this launch (0 when memcheck is off).
  std::uint64_t memcheck_findings = 0;
  /// Lanes retired by a device trap (OOM/abort/injected; watchdog counted
  /// separately below).
  std::uint64_t lane_traps = 0;
  /// Lanes retired by a watchdog cycle budget.
  std::uint64_t watchdog_traps = 0;

  void Accumulate(const LaunchStats& other);

  /// Fraction of coalesced sectors that were strictly necessary (1.0 is
  /// perfectly coalesced; lower means scattered accesses).
  double CoalescingEfficiency() const;
  double L1HitRate() const;
  double L2HitRate() const;
  double DramRowHitRate() const;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

}  // namespace dgc::sim

// Counters collected by the simulator during a kernel launch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dgc::sim {

struct LaunchStats {
  // Instruction mix (warp granularity).
  std::uint64_t warp_instructions = 0;
  std::uint64_t compute_instructions = 0;
  std::uint64_t load_instructions = 0;
  std::uint64_t store_instructions = 0;
  std::uint64_t atomic_instructions = 0;
  std::uint64_t external_calls = 0;   ///< RPC / host callbacks
  std::uint64_t barrier_arrivals = 0;
  std::uint64_t divergent_replays = 0;  ///< extra serialized op groups

  // Memory behaviour.
  std::uint64_t global_sectors = 0;        ///< after coalescing
  std::uint64_t ideal_sectors = 0;         ///< lower bound (perfect packing)
  std::uint64_t l1_hits = 0, l1_misses = 0;
  std::uint64_t l2_hits = 0, l2_misses = 0;
  std::uint64_t dram_bytes = 0;
  std::uint64_t dram_row_hits = 0, dram_row_misses = 0;
  std::uint64_t smem_accesses = 0;
  std::uint64_t smem_bank_conflicts = 0;  ///< extra serialized bank cycles

  // Stall / queueing behaviour (see docs/MODEL.md, "Profiling & metrics").
  /// DRAM-channel backlog found by memory instructions on arrival — the
  /// direct signature of bandwidth saturation. Charged once per channel
  /// per instruction (whole cycles): an instruction's own sectors are
  /// service time, never queue time.
  std::uint64_t dram_queue_cycles = 0;
  /// L2-port backlog found by memory instructions on arrival, charged once
  /// per instruction (whole cycles).
  std::uint64_t l2_queue_cycles = 0;
  /// Cycles lanes spent parked at barriers between arrival and release.
  std::uint64_t barrier_stall_cycles = 0;

  // Compute behaviour.
  std::uint64_t compute_cycles_issued = 0;

  // Outcome.
  std::uint64_t elapsed_cycles = 0;
  std::uint64_t blocks_launched = 0;
  /// Sanitizer findings attributed to this launch (0 when memcheck is off).
  std::uint64_t memcheck_findings = 0;
  /// Lanes retired by a device trap (OOM/abort/injected; watchdog counted
  /// separately below).
  std::uint64_t lane_traps = 0;
  /// Lanes retired by a watchdog cycle budget.
  std::uint64_t watchdog_traps = 0;

  /// Merges counters of work that ran AFTER this work, on the same device
  /// clock (retry waves, successive launches): every counter sums,
  /// including elapsed_cycles — back-to-back durations add.
  void AccumulateSequential(const LaunchStats& other);

  /// Merges counters of work that ran CONCURRENTLY inside one launch
  /// (per-instance stats of co-resident instances): throughput counters
  /// sum, but elapsed_cycles takes the max — two instances that each ran
  /// 1000 overlapping cycles occupied the device for 1000 cycles, not
  /// 2000. Summing here was the historical bug this split fixes.
  void AccumulateConcurrent(const LaunchStats& other);

  /// Fraction of coalesced sectors that were strictly necessary (1.0 is
  /// perfectly coalesced; lower means scattered accesses).
  double CoalescingEfficiency() const;
  double L1HitRate() const;
  double L2HitRate() const;
  double DramRowHitRate() const;

  /// Multi-line human-readable report. Hit rates with zero accesses print
  /// "n/a" (not 0.00): a kernel that never touched a cache did not miss
  /// 100% of the time.
  std::string ToString() const;
};

/// Per-instance slice of a launch's counters, attributed through
/// LaunchConfig::instance_of by the profiler (gpusim/profiler.h).
/// instance == -1 collects work no instance owns (runtime bookkeeping,
/// padding lanes, teams between instances).
struct InstanceStats {
  std::int32_t instance = -1;
  LaunchStats stats;
};

}  // namespace dgc::sim

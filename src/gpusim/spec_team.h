// SpecTeam: a spinning worker team for the threaded launch engine's
// speculation rounds.
//
// A round's parallel phase is tiny — a handful of warp resumes per shard,
// a few microseconds of work — and there are tens of thousands of rounds
// per launch, so the fan-out/join cost *is* the performance story. A
// general thread pool (support/thread_pool.h) pays a packaged_task, a
// future, and two mutex/condvar handshakes per job: ~19us per round,
// which is larger than the work it distributes. This team instead keeps
// its workers parked on a generation counter (spin briefly, then a
// condvar) and runs one fixed job over parts 0..parts-1:
//
//   SpecTeam team(threads - 1, shard_count, [&](unsigned s) { ... });
//   team.Run();   // caller participates; returns when every part ran
//
// Run() is a full barrier: all shard effects are visible to the caller
// afterwards, and the caller's writes before Run() (the shard partition)
// are visible to every worker. A part that throws records the first
// exception, which Run() rethrows after the barrier.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dgc::sim {

class SpecTeam {
 public:
  /// Spawns up to `workers` threads that serve `parts` parts of `job` per
  /// Run(). The job and part count are fixed for the team's lifetime, so
  /// rounds touch only three atomics — no per-round allocation or
  /// packaging. The team never outgrows the hardware: on a machine with
  /// fewer cores than requested threads, extra workers would time-slice
  /// against the commit thread (pure overhead — speculation is only a win
  /// when it genuinely overlaps), so they are not spawned and Run() serves
  /// their parts on the calling thread. Results are byte-identical either
  /// way; only the overlap changes. Tests pass clamp_to_hardware = false
  /// to force real workers (and the barrier's memory-ordering paths) even
  /// on a single-core host.
  SpecTeam(unsigned workers, unsigned parts, std::function<void(unsigned)> job,
           bool clamp_to_hardware = true)
      : job_(std::move(job)), parts_(parts) {
    const unsigned hw = std::thread::hardware_concurrency();
    if (clamp_to_hardware && hw > 0) workers = std::min(workers, hw - 1);
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  /// Worker threads actually spawned (0 = every part runs on the caller).
  unsigned workers() const { return unsigned(threads_.size()); }

  SpecTeam(const SpecTeam&) = delete;
  SpecTeam& operator=(const SpecTeam&) = delete;

  ~SpecTeam() {
    stop_.store(true, std::memory_order_release);
    BumpGeneration();
    for (std::thread& t : threads_) t.join();
  }

  /// Runs job(0..parts-1) across the workers and the calling thread;
  /// returns once every part has finished (acquire barrier).
  void Run() {
    // done_ resets strictly before next_: a straggler worker can only
    // enter this round by claiming the 0 stored into next_, and the
    // release/acquire pair on next_ then orders the done_ reset before
    // the straggler's increment. The reverse order would let a fast
    // straggler bump done_ between the two resets — a lost count, and a
    // barrier that never opens.
    done_.store(0, std::memory_order_relaxed);
    next_.store(0, std::memory_order_release);
    BumpGeneration();
    Work();
    // The caller's remaining wait is bounded by one in-flight part per
    // worker — microseconds — so spin rather than sleep.
    while (done_.load(std::memory_order_acquire) != parts_) {
    }
    if (error_ != nullptr) {
      std::exception_ptr err = error_;
      error_ = nullptr;
      std::rethrow_exception(err);
    }
  }

 private:
  void Work() {
    for (;;) {
      // acq_rel: claiming the 0 stored by Run() also acquires the
      // caller's pre-Run writes (the shard partition) — this matters for
      // a straggler worker that slips into the next round before reading
      // the bumped generation.
      const unsigned part = next_.fetch_add(1, std::memory_order_acq_rel);
      if (part >= parts_) return;
      try {
        job_(part);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex_);
        if (error_ == nullptr) error_ = std::current_exception();
      }
      done_.fetch_add(1, std::memory_order_release);
    }
  }

  /// Publishes a new generation and wakes any parked workers. The empty
  /// critical section is load-bearing: a worker only parks after
  /// re-checking its predicate under wake_mutex_, so acquiring the mutex
  /// between the bump and the notify guarantees the worker either saw the
  /// new state or is already in the wait queue.
  void BumpGeneration() {
    generation_.fetch_add(1, std::memory_order_release);
    { const std::lock_guard<std::mutex> lock(wake_mutex_); }
    wake_cv_.notify_all();
  }

  void WorkerLoop() {
    // The gap between rounds is one commit phase — tens of microseconds —
    // so the spin budget should cover it: a parked worker costs a condvar
    // wake per round, which can exceed what the round distributes. A few
    // hundred microseconds of relaxed loads on an L1-resident line rides
    // out a commit phase; a genuinely idle team (launch finished, long
    // serial stretch) falls through to the condvar.
    //
    // stop_ is part of the spin and of the wait predicate, not only
    // checked after a generation change: on an oversubscribed host a
    // worker may first be scheduled after the destructor already bumped
    // the generation, so its initial `seen` swallows the shutdown round
    // and no further bump will ever arrive.
    constexpr int kSpinIterations = 1 << 18;
    std::uint64_t seen = generation_.load(std::memory_order_acquire);
    for (;;) {
      std::uint64_t gen;
      int spins = 0;
      while ((gen = generation_.load(std::memory_order_acquire)) == seen) {
        if (stop_.load(std::memory_order_acquire)) return;
        if (++spins >= kSpinIterations) {
          std::unique_lock<std::mutex> lock(wake_mutex_);
          wake_cv_.wait(lock, [&] {
            return stop_.load(std::memory_order_acquire) ||
                   (gen = generation_.load(std::memory_order_acquire)) != seen;
          });
          break;
        }
      }
      if (stop_.load(std::memory_order_acquire)) return;
      seen = gen;
      Work();
    }
  }

  const std::function<void(unsigned)> job_;
  const unsigned parts_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<unsigned> next_{0};
  std::atomic<unsigned> done_{0};
  std::atomic<bool> stop_{false};
  std::mutex wake_mutex_;          ///< guards parking only, never the hot path
  std::condition_variable wake_cv_;
  std::mutex error_mutex_;
  std::exception_ptr error_;  ///< first part failure, rethrown by Run()
  std::vector<std::thread> threads_;
};

}  // namespace dgc::sim

// LaunchContext: the per-launch orchestrator.
//
// Owns the event engine, the blocks, and the SM occupancy bookkeeping for
// one kernel launch: blocks are dispatched to SMs as slots free up (the
// GPU's global block scheduler), and the launch completes when every block
// has retired.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gpusim/engine.h"
#include "gpusim/kernel.h"
#include "gpusim/memsys.h"
#include "gpusim/sm.h"
#include "gpusim/stats.h"

namespace dgc::sim {

class Block;

struct LaunchContext {
  LaunchContext(const DeviceSpec& spec, MemorySystem& memsys,
                const LaunchConfig& config, const KernelFn& kernel);
  ~LaunchContext();

  LaunchContext(const LaunchContext&) = delete;
  LaunchContext& operator=(const LaunchContext&) = delete;

  /// Dispatches initial blocks and drains the event queue. A deadlock
  /// (lanes blocked forever — e.g. a barrier nobody releases) is recorded
  /// as outcome = kDeadlocked plus a failure entry, not an error Status:
  /// a deadlocked point in a sweep fails that point, not the process, and
  /// loaders attribute it to the instances that were still running.
  Status Run();

  void OnBlockFinished(Block* block, std::uint64_t now);
  /// Records one lane failure, prefixed with the owning instance when the
  /// launch configured an instance_of hook. `kind` classifies traps for the
  /// stats counters (kNone for ordinary exceptions).
  void RecordFailure(std::uint32_t block, std::uint32_t thread, TrapKind kind,
                     const std::string& what);

  const DeviceSpec& spec;
  MemorySystem& memsys;
  const LaunchConfig& config;
  const KernelFn& kernel;

  Engine engine;
  LaunchStats stats;
  LaunchOutcome outcome = LaunchOutcome::kCompleted;
  std::vector<std::string> failures;
  std::uint64_t failure_count = 0;

 private:
  void TrySchedule(std::uint64_t now);

  std::vector<SM> sms_;
  std::vector<std::unique_ptr<Block>> blocks_;
  std::uint64_t total_blocks_ = 0;
  std::uint64_t next_block_ = 0;
  std::uint64_t done_blocks_ = 0;
  int warps_per_block_ = 0;
};

}  // namespace dgc::sim

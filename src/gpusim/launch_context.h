// LaunchContext: the per-launch orchestrator.
//
// Owns the event engine, the blocks, and the SM occupancy bookkeeping for
// one kernel launch: blocks are dispatched to SMs as slots free up (the
// GPU's global block scheduler), and the launch completes when every block
// has retired.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gpusim/engine.h"
#include "gpusim/kernel.h"
#include "gpusim/memsys.h"
#include "gpusim/sm.h"
#include "gpusim/stats.h"

namespace dgc::sim {

class Block;

struct LaunchContext {
  LaunchContext(const DeviceSpec& spec, MemorySystem& memsys,
                const LaunchConfig& config, const KernelFn& kernel);
  ~LaunchContext();

  LaunchContext(const LaunchContext&) = delete;
  LaunchContext& operator=(const LaunchContext&) = delete;

  /// Dispatches initial blocks and drains the event queue. A deadlock
  /// (lanes blocked forever — e.g. a barrier nobody releases) is recorded
  /// as outcome = kDeadlocked plus a failure entry, not an error Status:
  /// a deadlocked point in a sweep fails that point, not the process, and
  /// loaders attribute it to the instances that were still running.
  ///
  /// With config.launch_threads > 1 the run is windowed: each iteration
  /// snapshots the queued events inside the next cycle window, shard
  /// workers (SMs partitioned by id) speculatively resume each *block's*
  /// earliest event — charging the turn's partition-derived counters into
  /// a shard-local bucket — and the commit thread then replays the
  /// window's events in exact (cycle, insertion-seq) order — the
  /// deterministic merge barrier. Output is byte-identical to
  /// launch_threads == 1.
  Status Run();

  void OnBlockFinished(Block* block, std::uint64_t now);
  /// Records one lane failure, prefixed with the owning instance when the
  /// launch configured an instance_of hook. `kind` classifies traps for the
  /// stats counters (kNone for ordinary exceptions).
  void RecordFailure(std::uint32_t block, std::uint32_t thread, TrapKind kind,
                     const std::string& what);

  /// Stats sink for counter bumps issued on behalf of lane
  /// (`block`, `thread`). Without a profiler this is the launch-global
  /// `stats` (zero overhead over the old direct bumps); with one it is the
  /// per-instance bucket selected by config.instance_of, folded back into
  /// `stats` when the run ends — totals are identical either way.
  LaunchStats& IssueStats(std::uint32_t block, std::uint32_t thread);

  /// Resident warps summed over all SMs (timeline sampling).
  std::uint32_t ActiveWarps() const;
  /// Occupied block slots summed over all SMs (timeline sampling).
  std::uint32_t ResidentBlocks() const;

  const DeviceSpec& spec;
  MemorySystem& memsys;
  const LaunchConfig& config;
  const KernelFn& kernel;

  Engine engine;
  /// Threaded-run round accounting: speculations issued in the current
  /// round and not yet adopted by a committing Turn. The commit loop stops
  /// a round when this reaches zero, so the next round can re-speculate the
  /// warps' freshly scheduled turns (Warp::Turn decrements on adoption).
  std::uint64_t specs_pending = 0;
  LaunchStats stats;
  LaunchOutcome outcome = LaunchOutcome::kCompleted;
  std::vector<std::string> failures;
  std::uint64_t failure_count = 0;

 private:
  void TrySchedule(std::uint64_t now);
  /// Serial event loop (launch_threads <= 1 and every fallback case).
  void DrainEvents();
  /// Windowed speculate-then-commit loop on `threads` >= 2 host threads.
  void DrainEventsThreaded(unsigned threads);
  /// Host threads the configuration actually yields (clamps + fallbacks).
  unsigned EffectiveLaunchThreads() const;

  /// Per-instance counter buckets, live only while config.profiler is set:
  /// index 0 collects unattributed (-1) work, index i + 1 instance i.
  std::vector<LaunchStats> instance_buckets_;
  std::vector<SM> sms_;
  std::vector<std::unique_ptr<Block>> blocks_;
  std::uint64_t total_blocks_ = 0;
  std::uint64_t next_block_ = 0;
  std::uint64_t done_blocks_ = 0;
  int warps_per_block_ = 0;
};

}  // namespace dgc::sim

// Set-associative sector cache with LRU replacement.
//
// Used for both the per-SM L1 and the device-wide L2. The cache tracks tags
// only (the simulator is functional through host memory, so no data is
// stored); Lookup both queries and updates replacement state.
#pragma once

#include <cstdint>
#include <vector>

#include "support/status.h"

namespace dgc::sim {

class SectorCache {
 public:
  /// `capacity_bytes / (sector_bytes * ways)` sets being a power of two is
  /// NOT required; indexing uses a mask when it is (the common case for
  /// every shipped DeviceSpec) and falls back to modulo when not.
  SectorCache(std::uint64_t capacity_bytes, std::uint32_t sector_bytes,
              std::uint32_t ways);

  /// Returns true on hit. On miss the sector is inserted (allocate-on-miss
  /// for both loads and stores — GPUs write-allocate at the L2). Defined
  /// inline: this is the single hottest call in the simulator (every sector
  /// of every memory instruction, twice on the L1-miss path).
  bool Access(std::uint64_t sector) {
    Way* base = &table_[std::size_t(SetIndex(sector)) * ways_];
    ++stamp_;
    Way* victim = base;
    for (std::uint32_t w = 0; w < ways_; ++w) {
      Way& way = base[w];
      if (way.tag == sector) {
        way.lru = stamp_;
        ++hits_;
        return true;
      }
      if (way.lru < victim->lru) victim = &way;
    }
    ++misses_;
    victim->tag = sector;
    victim->lru = stamp_;
    return false;
  }

  /// Hit query without any state change (for tests and stats probes).
  bool Probe(std::uint64_t sector) const;

  /// Invalidates everything (used between kernel launches when requested).
  void Clear();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint32_t sets() const { return sets_; }
  std::uint32_t ways() const { return ways_; }

 private:
  struct Way {
    std::uint64_t tag = kInvalid;
    std::uint64_t lru = 0;  ///< last-use stamp
  };
  static constexpr std::uint64_t kInvalid = ~std::uint64_t(0);

  /// Set index of a sector: masked when sets_ is a power of two (every
  /// access is on the hot path, and hardware divide dominates the lookup
  /// otherwise), modulo as the general fallback.
  std::uint32_t SetIndex(std::uint64_t sector) const {
    return set_mask_ != 0 || sets_ == 1 ? std::uint32_t(sector) & set_mask_
                                        : std::uint32_t(sector % sets_);
  }

  std::uint32_t sets_;
  std::uint32_t set_mask_ = 0;  ///< sets_ - 1 when a power of two, else 0
  std::uint32_t ways_;
  std::uint64_t stamp_ = 0;
  std::vector<Way> table_;  ///< sets_ * ways_
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace dgc::sim

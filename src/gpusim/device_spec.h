// Hardware description of the simulated GPU.
//
// All timing constants live here so that benchmarks can sweep them (the
// bandwidth ablation) and tests can build tiny, fast devices. The default
// preset mirrors the paper's testbed, an NVIDIA A100-SXM4-40GB.
#pragma once

#include <cstdint>
#include <string>

#include "support/units.h"

namespace dgc::sim {

struct DeviceSpec {
  std::string name = "generic";

  // --- Execution resources -------------------------------------------------
  int num_sms = 8;                ///< streaming multiprocessors
  int warp_size = 32;             ///< lanes per warp (fixed by the ISA model)
  int max_threads_per_block = 1024;
  int max_blocks_per_sm = 32;     ///< resident thread-block slots per SM
  int max_warps_per_sm = 64;      ///< resident warp contexts per SM
  int issue_pipes_per_sm = 4;     ///< warp instructions issued concurrently
  double clock_ghz = 1.41;        ///< SM clock, used to convert cycles→time

  // --- Memory sizes ---------------------------------------------------------
  std::uint64_t global_memory_bytes = 4 * kGiB;
  std::uint32_t shared_memory_per_block = 48 * kKiB;

  // --- Memory hierarchy timing (cycles / bytes) -----------------------------
  std::uint32_t sector_bytes = 32;      ///< coalescing + cache granularity
  std::uint32_t l1_bytes = 128 * kKiB;  ///< per SM
  std::uint32_t l1_ways = 4;
  std::uint32_t l1_latency = 28;
  std::uint32_t l2_bytes = 40 * kMiB;   ///< shared
  std::uint32_t l2_ways = 16;
  std::uint32_t l2_latency = 200;
  /// L2 service bandwidth in bytes per cycle (all SMs combined).
  double l2_bytes_per_cycle = 4096.0;

  // --- DRAM ------------------------------------------------------------------
  std::uint32_t dram_latency = 400;        ///< row-hit access latency, cycles
  std::uint32_t dram_row_miss_penalty = 180;///< extra cycles on row activation
  double dram_bytes_per_cycle = 1100.0;    ///< ~1555 GB/s at 1.41 GHz
  std::uint32_t dram_channels = 16;        ///< independently-timed channels
  std::uint32_t dram_banks_per_channel = 8;///< open rows per channel
  std::uint32_t dram_row_bytes = 1024;     ///< row-buffer coverage per bank

  // --- Warp issue ---------------------------------------------------------
  /// Cycles between serialized issue groups of one warp turn (divergence).
  std::uint32_t issue_cycles = 4;
  /// Extra cycles per additional lane in an atomic group.
  std::uint32_t atomic_serialization_cycles = 4;

  // --- Shared memory ----------------------------------------------------------
  std::uint32_t smem_latency = 20;   ///< conflict-free access, cycles
  std::uint32_t smem_banks = 32;     ///< 4-byte banks

  // --- Host link (PCIe) -------------------------------------------------------
  double pcie_bytes_per_cycle = 18.0;     ///< ~25 GB/s at 1.41 GHz
  std::uint32_t pcie_latency_cycles = 2000;
  std::uint32_t kernel_launch_overhead = 8000;  ///< host→device launch, cycles
  std::uint32_t rpc_roundtrip_cycles = 30000;   ///< device→host RPC service

  // --- Presets ----------------------------------------------------------------
  /// The paper's testbed: A100-SXM4-40GB. Memory capacity is scaled down by
  /// `memory_scale` so that workloads (scaled by the same factor in the
  /// figure harness) remain host-backable; timing constants are unscaled.
  static DeviceSpec A100_40GB(std::uint32_t memory_scale = 64);
  /// A V100-like part: fewer SMs, less bandwidth. Used by ablations.
  static DeviceSpec V100_16GB(std::uint32_t memory_scale = 64);
  /// Tiny device for unit tests: 2 SMs, small caches, fast to simulate.
  static DeviceSpec TestDevice();

  /// Warps needed for `threads` threads.
  int WarpsPerBlock(int threads) const {
    return (threads + warp_size - 1) / warp_size;
  }

  /// Converts cycles to seconds at the SM clock.
  double CyclesToSeconds(std::uint64_t cycles) const {
    return double(cycles) / (clock_ghz * 1e9);
  }

  /// Default launch watchdog budget: 10 simulated seconds at the SM clock.
  /// Generous enough that any workload the simulator can practically
  /// execute finishes well inside it, while an instance spinning forever is
  /// retired deterministically instead of hanging the sweep.
  std::uint64_t DefaultWatchdogCycles() const {
    return std::uint64_t(clock_ghz * 1e9) * 10;
  }

  /// Sanity-checks internal consistency (positive sizes, powers of two
  /// where required). Returns a human-readable problem list ("" if OK).
  std::string Validate() const;
};

}  // namespace dgc::sim

#include "gpusim/ctx.h"

#include "gpusim/block.h"
#include "gpusim/launch_context.h"
#include "support/str.h"

namespace dgc::sim {

namespace detail {

void RaisePendingTrap() {
  Lane* lane = CurrentLane();
  if (lane == nullptr || lane->pending_trap == TrapKind::kNone) return;
  const TrapKind kind = lane->pending_trap;
  lane->pending_trap = TrapKind::kNone;
  switch (kind) {
    case TrapKind::kWatchdog:
      throw DeviceTrap(
          kind, StrFormat("watchdog: cycle budget exhausted at cycle %llu",
                          (unsigned long long)lane->trap_cycle));
    default:
      throw DeviceTrap(kind,
                       StrFormat("%.*s trap fired at cycle %llu",
                                 int(ToString(kind).size()),
                                 ToString(kind).data(),
                                 (unsigned long long)lane->trap_cycle));
  }
}

}  // namespace detail

detail::SyncAwaiter ThreadCtx::SyncThreads() const {
  return detail::SyncAwaiter(block->barrier());
}

std::uint64_t ThreadCtx::Now() const {
  // The lane's resume clock, not the engine clock: they agree whenever the
  // lane runs on the commit thread (the engine dispatches the turn at
  // exactly this time), and only the former is correct while the lane is
  // being resumed speculatively ahead of the commit frontier.
  return lane->resume_now;
}

void ThreadCtx::ArmRowWatchdog(std::uint64_t cycles) const {
  block->SetRowWatchdog(tid3.y, cycles == 0 ? 0 : Now() + cycles);
}

}  // namespace dgc::sim

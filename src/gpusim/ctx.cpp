#include "gpusim/ctx.h"

#include "gpusim/block.h"

namespace dgc::sim {

detail::SyncAwaiter ThreadCtx::SyncThreads() const {
  return detail::SyncAwaiter(block->barrier());
}

}  // namespace dgc::sim

// Simulated device global memory: a deterministic allocator over the
// device address space with host-side backing storage.
//
// The allocator is a first-fit free list with splitting and coalescing —
// deliberately similar to a real device heap, because the paper's analysis
// hinges on instances allocating from *distinct, non-contiguous* heap
// regions. Determinism: the same allocation sequence always produces the
// same device addresses.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/address.h"
#include "support/status.h"

namespace dgc::sim {

/// A device allocation: address range plus backing storage.
struct DeviceBuffer {
  DeviceAddr addr = 0;
  std::uint64_t bytes = 0;
  std::byte* host = nullptr;

  template <typename T>
  DevicePtr<T> Typed(std::uint64_t element_offset = 0) const {
    return DevicePtr<T>{addr + element_offset * sizeof(T),
                        reinterpret_cast<T*>(host) + element_offset};
  }
};

/// Observer of allocator events; the memcheck shadow map subscribes to
/// mirror allocation bounds and liveness (gpusim/memcheck.h).
class AllocationListener {
 public:
  virtual ~AllocationListener() = default;
  /// A successful allocation: `requested` is the caller's size, `rounded`
  /// the aligned extent actually reserved at `addr`.
  virtual void OnAlloc(DeviceAddr addr, std::uint64_t requested,
                       std::uint64_t rounded) = 0;
  /// A successful free of the allocation based at `addr`.
  virtual void OnFree(DeviceAddr addr, std::uint64_t rounded) = 0;
  /// A rejected free (unknown or already-freed base address).
  virtual void OnFreeFailed(DeviceAddr addr) = 0;
  /// The allocation based at `addr` became an instance-shared read-only
  /// segment (AcquireShared materialized it). Fires once per physical copy,
  /// after the OnAlloc for the same address. Optional: the default ignores
  /// it so listeners that predate sharing keep working.
  virtual void OnSharedRegion(DeviceAddr addr, const std::string& label) {
    (void)addr;
    (void)label;
  }
};

/// Result of AcquireShared: the (possibly pre-existing) backing buffer plus
/// whether this caller materialized it and must fill the contents.
struct SharedSegment {
  DeviceBuffer buffer;
  bool first = false;  ///< true → caller owns initialization of the data
};

/// Point-in-time allocator counters, exported into dgc-metrics-v1.
struct DeviceMemSnapshot {
  std::uint64_t capacity = 0;
  std::uint64_t bytes_in_use = 0;
  std::uint64_t peak_bytes = 0;
  std::uint64_t allocation_count = 0;
  std::uint64_t shared_live = 0;          ///< live shared segments
  std::uint64_t shared_materialized = 0;  ///< physical copies ever created
  std::uint64_t shared_attaches = 0;      ///< key hits mapped to an existing copy
  std::uint64_t shared_bytes_saved = 0;   ///< rounded bytes attaches did not copy
};

/// Per-owner accounting (owner -1 = unattributed host-side allocations).
struct OwnerMemStats {
  std::uint64_t bytes_in_use = 0;
  std::uint64_t peak_bytes = 0;
  std::uint64_t live_allocations = 0;
  std::uint64_t total_allocations = 0;
};

class DeviceMemory {
 public:
  /// `capacity` bounds the sum of live allocations (the "40GB" the paper's
  /// Page-Rank runs exhaust). `alignment` applies to every allocation.
  explicit DeviceMemory(std::uint64_t capacity, std::uint32_t alignment = 256);

  DeviceMemory(const DeviceMemory&) = delete;
  DeviceMemory& operator=(const DeviceMemory&) = delete;

  /// Allocates `bytes` (rounded up to the alignment); kOutOfMemory when the
  /// capacity would be exceeded or the address space is too fragmented.
  StatusOr<DeviceBuffer> Allocate(std::uint64_t bytes);

  /// Frees a previous allocation by base address. Shared segments are
  /// reference-counted: a Free drops one reference and the storage is only
  /// reclaimed (with the listener's OnFree) when the last reference goes.
  Status Free(DeviceAddr addr);

  /// Content-keyed shared read-only segment. The first caller with a given
  /// (content_key, bytes) pair materializes a physical allocation
  /// (`first = true`; the caller must fill the storage and then treat it as
  /// immutable); later callers with the identical key attach to the same
  /// backing buffer (`first = false`) and must not write it. Each acquire —
  /// first or attach — holds one reference released by Free(addr).
  StatusOr<SharedSegment> AcquireShared(std::uint64_t content_key,
                                        std::uint64_t bytes,
                                        const std::string& label = {});

  /// True when `addr` is the base of a live shared segment.
  bool IsShared(DeviceAddr addr) const {
    return shared_by_addr_.find(addr) != shared_by_addr_.end();
  }

  /// Translates a device address to its backing host pointer; nullptr when
  /// the address is not inside a live allocation.
  std::byte* HostPtr(DeviceAddr addr) const;

  /// True when [addr, addr+bytes) lies inside one live allocation.
  bool Contains(DeviceAddr addr, std::uint64_t bytes) const;

  std::uint64_t bytes_in_use() const { return bytes_in_use_; }
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t allocation_count() const { return live_.size(); }
  /// High-water mark of bytes_in_use over the instance lifetime.
  std::uint64_t peak_bytes() const { return peak_bytes_; }

  /// Current counters in one struct, for the metrics exporter.
  DeviceMemSnapshot Snapshot() const;

  /// At most one listener; replaces any previous one (nullptr detaches).
  void set_listener(AllocationListener* listener) { listener_ = listener; }

  /// Attribution hook for per-owner accounting: called once per Allocate to
  /// label the allocation (-1 = unattributed). Loaders install a resolver
  /// mapping the currently executing lane to its ensemble instance. A shared
  /// segment's physical bytes are attributed to the materializing owner only;
  /// attaches cost their owner nothing.
  void set_instance_resolver(std::function<std::int32_t()> resolver) {
    resolver_ = std::move(resolver);
  }

  /// Per-owner accounting snapshots, keyed by resolver-assigned owner.
  const std::map<std::int32_t, OwnerMemStats>& owner_stats() const {
    return owner_stats_;
  }

  /// Snapshot of live allocations as (base address, rounded bytes) pairs,
  /// in address order — used to seed a late-attached shadow map.
  std::vector<std::pair<DeviceAddr, std::uint64_t>> LiveAllocations() const;

 private:
  struct Region {
    std::uint64_t bytes = 0;
    std::unique_ptr<std::byte[]> storage;  // null for free regions
    std::int32_t owner = -1;               // resolver-assigned at Allocate
  };

  struct SharedInfo {
    DeviceAddr addr = 0;
    std::uint64_t refs = 0;
  };

  std::uint64_t capacity_;
  std::uint32_t alignment_;
  std::uint64_t bytes_in_use_ = 0;
  std::uint64_t peak_bytes_ = 0;
  DeviceAddr frontier_ = kGlobalBase;  ///< first never-used address
  std::map<DeviceAddr, Region> live_;  ///< live allocations by base address
  std::map<DeviceAddr, std::uint64_t> free_;  ///< free holes by base address
  AllocationListener* listener_ = nullptr;

  /// Shared read-only segments, keyed by (content key, requested bytes) so
  /// a key collision across different sizes can never alias storage.
  std::map<std::pair<std::uint64_t, std::uint64_t>, SharedInfo> shared_by_key_;
  std::map<DeviceAddr, std::pair<std::uint64_t, std::uint64_t>> shared_by_addr_;
  std::uint64_t shared_materialized_ = 0;
  std::uint64_t shared_attaches_ = 0;
  std::uint64_t shared_bytes_saved_ = 0;

  std::function<std::int32_t()> resolver_;
  std::map<std::int32_t, OwnerMemStats> owner_stats_;
};

}  // namespace dgc::sim

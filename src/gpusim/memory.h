// Simulated device global memory: a deterministic allocator over the
// device address space with host-side backing storage.
//
// The allocator is a first-fit free list with splitting and coalescing —
// deliberately similar to a real device heap, because the paper's analysis
// hinges on instances allocating from *distinct, non-contiguous* heap
// regions. Determinism: the same allocation sequence always produces the
// same device addresses.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "gpusim/address.h"
#include "support/status.h"

namespace dgc::sim {

/// A device allocation: address range plus backing storage.
struct DeviceBuffer {
  DeviceAddr addr = 0;
  std::uint64_t bytes = 0;
  std::byte* host = nullptr;

  template <typename T>
  DevicePtr<T> Typed(std::uint64_t element_offset = 0) const {
    return DevicePtr<T>{addr + element_offset * sizeof(T),
                        reinterpret_cast<T*>(host) + element_offset};
  }
};

/// Observer of allocator events; the memcheck shadow map subscribes to
/// mirror allocation bounds and liveness (gpusim/memcheck.h).
class AllocationListener {
 public:
  virtual ~AllocationListener() = default;
  /// A successful allocation: `requested` is the caller's size, `rounded`
  /// the aligned extent actually reserved at `addr`.
  virtual void OnAlloc(DeviceAddr addr, std::uint64_t requested,
                       std::uint64_t rounded) = 0;
  /// A successful free of the allocation based at `addr`.
  virtual void OnFree(DeviceAddr addr, std::uint64_t rounded) = 0;
  /// A rejected free (unknown or already-freed base address).
  virtual void OnFreeFailed(DeviceAddr addr) = 0;
};

class DeviceMemory {
 public:
  /// `capacity` bounds the sum of live allocations (the "40GB" the paper's
  /// Page-Rank runs exhaust). `alignment` applies to every allocation.
  explicit DeviceMemory(std::uint64_t capacity, std::uint32_t alignment = 256);

  DeviceMemory(const DeviceMemory&) = delete;
  DeviceMemory& operator=(const DeviceMemory&) = delete;

  /// Allocates `bytes` (rounded up to the alignment); kOutOfMemory when the
  /// capacity would be exceeded or the address space is too fragmented.
  StatusOr<DeviceBuffer> Allocate(std::uint64_t bytes);

  /// Frees a previous allocation by base address.
  Status Free(DeviceAddr addr);

  /// Translates a device address to its backing host pointer; nullptr when
  /// the address is not inside a live allocation.
  std::byte* HostPtr(DeviceAddr addr) const;

  /// True when [addr, addr+bytes) lies inside one live allocation.
  bool Contains(DeviceAddr addr, std::uint64_t bytes) const;

  std::uint64_t bytes_in_use() const { return bytes_in_use_; }
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t allocation_count() const { return live_.size(); }
  /// High-water mark of bytes_in_use over the instance lifetime.
  std::uint64_t peak_bytes() const { return peak_bytes_; }

  /// At most one listener; replaces any previous one (nullptr detaches).
  void set_listener(AllocationListener* listener) { listener_ = listener; }

  /// Snapshot of live allocations as (base address, rounded bytes) pairs,
  /// in address order — used to seed a late-attached shadow map.
  std::vector<std::pair<DeviceAddr, std::uint64_t>> LiveAllocations() const;

 private:
  struct Region {
    std::uint64_t bytes = 0;
    std::unique_ptr<std::byte[]> storage;  // null for free regions
  };

  std::uint64_t capacity_;
  std::uint32_t alignment_;
  std::uint64_t bytes_in_use_ = 0;
  std::uint64_t peak_bytes_ = 0;
  DeviceAddr frontier_ = kGlobalBase;  ///< first never-used address
  std::map<DeviceAddr, Region> live_;  ///< live allocations by base address
  std::map<DeviceAddr, std::uint64_t> free_;  ///< free holes by base address
  AllocationListener* listener_ = nullptr;
};

}  // namespace dgc::sim

#include "gpusim/barrier.h"

#include "gpusim/block.h"
#include "gpusim/engine.h"
#include "gpusim/lane.h"
#include "gpusim/launch_context.h"
#include "gpusim/warp.h"
#include "support/status.h"

namespace dgc::sim {

void Barrier::Arrive(Lane* lane, std::uint64_t now, Engine& engine) {
  DGC_CHECK_MSG(waiters_.size() < expected_,
                "barrier '" + name_ + "': more arrivals than participants");
  lane->state = Lane::State::kBlocked;
  waiters_.push_back({lane, now});
  max_arrival_ = std::max(max_arrival_, now);
  MaybeRelease(engine);
}

void Barrier::ParticipantGone(std::uint64_t now, Engine& engine) {
  DGC_CHECK_MSG(expected_ > 0, "barrier '" + name_ + "': underflow");
  --expected_;
  max_arrival_ = std::max(max_arrival_, now);
  MaybeRelease(engine);
}

void Barrier::MaybeRelease(Engine& engine) {
  if (expected_ == 0 || waiters_.size() < expected_) return;
  ++releases_;
  const std::uint64_t t = max_arrival_;
  std::vector<Waiter> waiters = std::move(waiters_);
  waiters_.clear();
  max_arrival_ = 0;
  for (const Waiter& w : waiters) {
    Lane* lane = w.lane;
    // Each lane stalled from its own arrival to the (shared) release.
    if (lane->block != nullptr && t > w.arrived) {
      lane->block->launch_context()
          ->IssueStats(lane->block->id(), lane->thread_id)
          .barrier_stall_cycles += t - w.arrived;
    }
    lane->state = Lane::State::kReady;
    lane->ready_at = t;
    lane->warp->WakeAt(t, engine);
  }
}

}  // namespace dgc::sim

// Warp: 32 lanes executed in lockstep by the discrete-event scheduler.
//
// A warp "turn" (one engine event) resumes every runnable lane to its next
// suspension point, then issues the collected operations: memory accesses
// are coalesced into sectors and charged to the memory hierarchy, compute
// occupies an SM issue pipe, barrier arrivals block lanes, and host calls
// run their callbacks. Lanes suspended on *different* operation kinds
// serialize into separate issue groups — the divergence penalty.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/coalesce.h"
#include "gpusim/lane.h"

namespace dgc::sim {

class Block;
class Engine;
struct LaunchContext;
struct LaunchStats;

class Warp {
 public:
  Warp(Block* block, std::uint32_t warp_id, std::span<Lane> lanes,
       LaunchContext* lc);

  Warp(const Warp&) = delete;
  Warp& operator=(const Warp&) = delete;

  /// Schedules a turn at time `t` (idempotent-safe: spurious turns are
  /// harmless, so duplicate wake-ups are allowed).
  void WakeAt(std::uint64_t t, Engine& engine);

  /// One scheduler turn at time `now`; called by the engine.
  void Turn(std::uint64_t now);

  std::uint32_t id() const { return warp_id_; }
  Block* block() const { return block_; }

  /// Engine bookkeeping for duplicate wake-up suppression (engine.cpp):
  /// the time of one not-yet-dispatched queued wake, or kNoQueuedWake.
  static constexpr std::uint64_t kNoQueuedWake = ~std::uint64_t(0);
  std::uint64_t queued_wake() const { return queued_wake_; }
  void set_queued_wake(std::uint64_t t) { queued_wake_ = t; }
  void clear_queued_wake() { queued_wake_ = kNoQueuedWake; }

 private:
  /// Resumes runnable lanes to their next suspension; reports terminations.
  bool ResumePhase(std::uint64_t now);
  /// Issues all pending op groups in program order; returns the final time.
  std::uint64_t ProcessPhase(std::uint64_t now, bool& processed_any);

  // Issue helpers charge their counters to `stats` — the launch-global
  // LaunchStats, or the owning instance's bucket when profiling is on
  // (see LaunchContext::IssueStats).
  std::uint64_t IssueMemoryGroup(std::span<Lane*> group, bool is_store,
                                 std::uint64_t t, LaunchStats& stats);
  std::uint64_t IssueBatchGroup(std::span<Lane*> group, std::uint64_t t,
                                bool is_store, LaunchStats& stats);
  std::uint64_t IssueAtomicGroup(std::span<Lane*> group, std::uint64_t t,
                                 LaunchStats& stats);
  std::uint64_t IssueWorkGroup(std::span<Lane*> group, std::uint64_t t,
                               LaunchStats& stats);
  std::uint64_t IssueExternalGroup(std::span<Lane*> group, std::uint64_t t,
                                   LaunchStats& stats);
  void IssueSyncGroup(std::span<Lane*> group, std::uint64_t t);

  Block* block_;
  std::uint32_t warp_id_;
  std::span<Lane> lanes_;
  LaunchContext* lc_;

  // Scratch buffers reused across turns (no per-turn allocation). The
  // issue helpers run to completion inside one turn, so one buffer of each
  // shape serves every group.
  std::vector<Lane*> group_;
  std::vector<Lane*> pending_lanes_;  ///< not-yet-issued candidates, lane order
  std::vector<Lane*> processed_;
  std::vector<std::uint64_t> sectors_;
  std::vector<LaneAccess> accesses_;
  std::vector<std::uint64_t> shared_addrs_;

  std::uint64_t queued_wake_ = kNoQueuedWake;
};

}  // namespace dgc::sim

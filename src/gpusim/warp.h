// Warp: 32 lanes executed in lockstep by the discrete-event scheduler.
//
// A warp "turn" (one engine event) resumes every runnable lane to its next
// suspension point, then issues the collected operations: memory accesses
// are coalesced into sectors and charged to the memory hierarchy, compute
// occupies an SM issue pipe, barrier arrivals block lanes, and host calls
// run their callbacks. Lanes suspended on *different* operation kinds
// serialize into separate issue groups — the divergence penalty.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/coalesce.h"
#include "gpusim/lane.h"

namespace dgc::sim {

class Block;
class Engine;
struct LaunchContext;
struct LaunchStats;

class Warp {
 public:
  Warp(Block* block, std::uint32_t warp_id, std::span<Lane> lanes,
       LaunchContext* lc);

  Warp(const Warp&) = delete;
  Warp& operator=(const Warp&) = delete;

  /// Schedules a turn at time `t` (idempotent-safe: spurious turns are
  /// harmless, so duplicate wake-ups are allowed).
  void WakeAt(std::uint64_t t, Engine& engine);

  /// One scheduler turn at time `now`; called by the engine.
  void Turn(std::uint64_t now);

  // --- Speculative resume (threaded launches) -------------------------------
  //
  // The threaded engine snapshots a cycle window of queued events and lets
  // shard workers run the *resume* half of eligible turns ahead of time;
  // the commit thread then replays the window's events in exact serial
  // order, adopting each speculation instead of resuming again. The shard
  // walker enforces the "earliest block event" rule (one speculation per
  // block per round, always the block's earliest snapshot event — see
  // Block::spec_round_stamp): a block's warps all live on one SM and so in
  // one shard, and nothing can mutate the block between the round snapshot
  // and the adoption of its earliest event — barrier releases need
  // same-block arrivals, the block scheduler only wakes *new* blocks, and
  // other blocks cannot touch this block's lanes, shared allocator, or
  // watchdog deadlines. So the state a speculative resume reads is exactly
  // the state the serial engine would have read, for single- and
  // multi-warp blocks alike.

  /// True when the turn at the queued event time `t` may be resumed
  /// off-thread. The only per-warp exclusion left is an armed fault plan
  /// with a pending trap site for this warp at `t`: MatchTrap consumes
  /// plan state at turn start, which must happen in commit order. Plans
  /// whose sites are elsewhere (or not yet due) speculate normally.
  bool CanSpeculate(std::uint64_t t) const;

  /// Runs the resume phase for the queued event (`t`, `seq`) — which must
  /// be this warp's earliest undispatched event — recording per-lane
  /// outcomes instead of applying launch-global effects: lane termination
  /// bookkeeping is deferred to the commit turn, and a lane reaching a
  /// HostFence parks there (the remaining lanes stay untouched).
  /// `shard_stats`, when non-null, receives the turn's partition-derived
  /// counters (instruction/sector/smem/compute-cycle charges) so the
  /// commit turn can skip them — the caller folds the bucket into the
  /// launch totals after the drain. Pass null when per-instance
  /// attribution is on (profiler) so every counter lands in its
  /// instance bucket at commit as before.
  void SpeculativeResume(std::uint64_t t, std::uint64_t seq,
                         LaunchStats* shard_stats);

  std::uint32_t id() const { return warp_id_; }
  Block* block() const { return block_; }

  /// Engine bookkeeping for duplicate wake-up suppression (engine.cpp):
  /// the time of one not-yet-dispatched queued wake, or kNoQueuedWake.
  static constexpr std::uint64_t kNoQueuedWake = ~std::uint64_t(0);
  std::uint64_t queued_wake() const { return queued_wake_; }
  void set_queued_wake(std::uint64_t t) { queued_wake_ = t; }
  void clear_queued_wake() { queued_wake_ = kNoQueuedWake; }

 private:
  /// What the speculative pass did with each lane (parallel to lanes_).
  enum class SpecOutcome : std::uint8_t {
    kUntouched,  ///< not reached (ineligible, or after a fence stop)
    kResumed,    ///< resumed to its next suspension; pending op is set
    kFinished,   ///< root coroutine completed; bookkeeping deferred
    kAtFence,    ///< parked at a HostFence; commit finishes the resume
  };

  /// One precomputed coalescing result: the sector list (and its stats
  /// inputs) of one global-memory issue group, derived on the shard thread
  /// so the commit turn's ProcessPhase can skip CoalesceSectors — the
  /// single hottest function of the serial engine. The tag fields let the
  /// consumer verify it is adopting the group it thinks it is.
  struct SpecSectors {
    DeviceOp::Kind kind = DeviceOp::Kind::kNone;
    std::uint32_t group_size = 0;
    std::uint64_t total_bytes = 0;
    std::vector<std::uint64_t> sectors;
  };

  /// Resumes runnable lanes to their next suspension; reports terminations.
  bool ResumePhase(std::uint64_t now);
  /// Replays a consumed speculation as this turn's resume phase.
  bool CommitSpeculation(std::uint64_t now);
  /// Selects the next issue group from pending_lanes_[0..remaining) into
  /// group_, compacting the rest in place (shared by ProcessPhase and the
  /// speculative precompute, which must see the identical partition).
  DeviceOp::Kind SelectIssueGroup(std::size_t& remaining);
  /// Walks the issue-group partition of the just-speculated pending ops,
  /// coalesces every global-memory group's sectors ahead of commit, and —
  /// when `bucket` is non-null — charges the partition-derived counters
  /// (warp/kind instructions, global/ideal sectors, smem accesses and
  /// conflicts, compute cycles, external calls, barrier arrivals,
  /// divergent replays) into it, setting spec_stats_charged_ so the
  /// commit turn skips exactly those bumps.
  void PrecomputeIssueSectors(LaunchStats* bucket);
  /// Appends one precomputed entry for group_ (accesses_ already built).
  void EmitSpecSectors(DeviceOp::Kind kind, std::uint64_t total_bytes);
  /// The cached entry for the group about to issue, or null when no valid
  /// precomputed entry exists (caller coalesces inline). Mutable so the
  /// caller can swap the sector list into sectors_, keeping every
  /// downstream consumer (stats, memsys, trace records) on one buffer.
  SpecSectors* ConsumeSpecSectors(DeviceOp::Kind kind,
                                  std::uint64_t total_bytes);
  /// The per-lane resume step of ResumePhase (eligibility + watchdog).
  void TryResumeLane(Lane& lane, std::uint64_t now, bool& resumed_any);
  /// Resumes `lane` (unconditionally) through any HostFence hops.
  void ResumeLaneInline(Lane& lane, std::uint64_t now, bool& resumed_any);
  /// Termination bookkeeping for a lane whose root coroutine completed.
  void FinishLane(Lane& lane, std::uint64_t now);
  /// Issues all pending op groups in program order; returns the final time.
  std::uint64_t ProcessPhase(std::uint64_t now, bool& processed_any);

  // Issue helpers charge their counters to `stats` — the launch-global
  // LaunchStats, or the owning instance's bucket when profiling is on
  // (see LaunchContext::IssueStats). `charge` is false when the turn's
  // partition-derived counters were already charged into a shard bucket at
  // speculation time; functional effects, timing, and the stateful memsys
  // internals (cache hits/misses, DRAM/queue accounting) are applied
  // either way.
  std::uint64_t IssueMemoryGroup(std::span<Lane*> group, bool is_store,
                                 std::uint64_t t, LaunchStats& stats,
                                 bool charge);
  std::uint64_t IssueBatchGroup(std::span<Lane*> group, std::uint64_t t,
                                bool is_store, LaunchStats& stats, bool charge);
  std::uint64_t IssueAtomicGroup(std::span<Lane*> group, std::uint64_t t,
                                 LaunchStats& stats, bool charge);
  std::uint64_t IssueWorkGroup(std::span<Lane*> group, std::uint64_t t,
                               LaunchStats& stats, bool charge);
  std::uint64_t IssueExternalGroup(std::span<Lane*> group, std::uint64_t t,
                                   LaunchStats& stats, bool charge);
  void IssueSyncGroup(std::span<Lane*> group, std::uint64_t t, bool charge);

  Block* block_;
  std::uint32_t warp_id_;
  std::span<Lane> lanes_;
  LaunchContext* lc_;

  // Scratch buffers reused across turns (no per-turn allocation). The
  // issue helpers run to completion inside one turn, so one buffer of each
  // shape serves every group.
  std::vector<Lane*> group_;
  std::vector<Lane*> pending_lanes_;  ///< not-yet-issued candidates, lane order
  std::vector<Lane*> processed_;
  std::vector<std::uint64_t> sectors_;
  std::vector<LaneAccess> accesses_;
  std::vector<std::uint64_t> shared_addrs_;
  // Scratch for MemorySystem::SharedConflictDegree at speculation time
  // (shard threads must not use the device-owned AccessShared scratch).
  std::vector<std::uint64_t> smem_words_scratch_;
  std::vector<std::uint32_t> smem_bank_scratch_;

  std::uint64_t queued_wake_ = kNoQueuedWake;

  // Speculation slot: one per warp, filled by SpeculativeResume on the
  // warp's shard thread, consumed by the next Turn on the commit thread
  // (the thread-pool join between the two phases orders the hand-off).
  bool spec_valid_ = false;
  bool spec_resumed_any_ = false;
  std::uint64_t spec_t_ = 0;
  std::uint64_t spec_seq_ = 0;
  std::vector<SpecOutcome> spec_outcome_;

  // Precomputed coalescing for the speculated turn (entries are reused
  // across rounds; count_/next_ bound the valid/consumed range). Valid only
  // when the speculative pass ran to completion with no fence stop — a
  // fence's commit-side continuation can add pending ops, changing the
  // partition.
  bool spec_sectors_valid_ = false;
  std::size_t spec_sectors_count_ = 0;
  std::size_t spec_sectors_next_ = 0;
  std::vector<SpecSectors> spec_sectors_;

  // True when the speculated turn's partition-derived counters were
  // already charged into a shard-local bucket; the next ProcessPhase
  // consumes (and clears) it, skipping exactly those bumps.
  bool spec_stats_charged_ = false;
};

}  // namespace dgc::sim

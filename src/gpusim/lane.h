// A lane is one simulated GPU thread.
//
// Lanes execute device code as C++20 coroutines: every timed operation
// (global/shared memory access, compute, barrier, host RPC) is a suspension
// point. The warp scheduler resumes its lanes in lockstep, collects the
// pending operations, and charges the timing model — see warp.h.
#pragma once

#include <coroutine>
#include <cstdint>
#include <cstring>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "gpusim/address.h"
#include "gpusim/faults.h"

namespace dgc::sim {

class Barrier;
class Block;
class Warp;
struct ThreadCtx;

/// Bit-level helpers for transporting values (≤ 8 bytes) through DeviceOp.
template <typename T>
std::uint64_t ToBits(T v) {
  static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>);
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(T));
  return b;
}

template <typename T>
T FromBits(std::uint64_t b) {
  static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>);
  T v;
  std::memcpy(&v, &b, sizeof(T));
  return v;
}

/// One element of a batched (pipelined) load — see ThreadCtx::Gather.
struct BatchSlot {
  DeviceAddr addr = 0;
  void* host = nullptr;
  std::uint64_t result = 0;
  std::uint8_t bytes = 0;
};

/// One pending device operation of a suspended lane.
struct DeviceOp {
  enum class Kind : std::uint8_t {
    kNone,
    kLoad,
    kLoadBatch,   ///< independent loads issued together (MLP / streaming)
    kStore,
    kStoreBatch,  ///< independent stores issued together
    kAtomic,
    kWork,      ///< pure compute for `cycles`
    kSync,      ///< barrier arrival
    kExternal,  ///< host callback (RPC); pays `cycles` per call
    /// Zero-cost ordering point (ThreadCtx::HostFence): the continuation
    /// mutates launch-global host state, so it must run on the commit
    /// thread in event order. The warp re-resumes the lane immediately when
    /// executing inline, and parks it here when resuming speculatively —
    /// this op never reaches an issue group and charges nothing.
    kHostFence,
  };

  Kind kind = Kind::kNone;
  std::uint8_t bytes = 0;
  DeviceAddr addr = 0;
  void* host = nullptr;
  std::uint64_t bits = 0;    ///< store value / atomic operand
  std::uint64_t result = 0;  ///< load result / atomic old value / RPC result
  std::uint64_t cycles = 0;  ///< work duration or external latency
  /// Atomic read-modify-write, applied at issue time in lane order.
  std::uint64_t (*apply)(void* host, std::uint64_t operand) = nullptr;
  Barrier* barrier = nullptr;
  std::function<std::uint64_t()>* external = nullptr;
  /// kLoadBatch: the awaiter-owned slots (stable across the suspension).
  BatchSlot* batch = nullptr;
  std::uint32_t batch_count = 0;
};

class Lane {
 public:
  enum class State : std::uint8_t { kReady, kBlocked, kDone, kFailed };

  Lane() = default;
  Lane(const Lane&) = delete;
  Lane& operator=(const Lane&) = delete;
  ~Lane();

  /// Adopts the root coroutine (already created, suspended at its initial
  /// suspend point). `error_slot` points at the root promise's exception
  /// slot so failures can be reported after completion.
  void Start(std::coroutine_handle<> root, std::exception_ptr* error_slot);

  /// Resumes the innermost active coroutine until the next suspension.
  void Resume();

  bool root_finished() const { return root_finished_; }
  std::exception_ptr root_error() const {
    return error_slot_ != nullptr ? *error_slot_ : nullptr;
  }

  // --- Scheduler state (owned by Warp/Block/Barrier) ------------------------
  State state = State::kReady;
  std::uint64_t ready_at = 0;
  DeviceOp pending;
  /// Result of the most recently issued op (read by the awaiter on resume;
  /// survives the warp clearing `pending`).
  std::uint64_t pending_result = 0;
  /// Event time of the resume currently executing (or most recently
  /// executed) on this lane. ThreadCtx::Now() reads this instead of the
  /// engine clock: during a speculative resume the engine is still
  /// committing earlier events, so the engine's `now` is not this lane's
  /// `now`. The warp sets it before every Resume(); inline resumes see the
  /// same value the engine clock would have given.
  std::uint64_t resume_now = 0;
  std::coroutine_handle<> top;  ///< innermost resumable coroutine
  Warp* warp = nullptr;
  Block* block = nullptr;
  ThreadCtx* ctx = nullptr;
  std::uint32_t thread_id = 0;  ///< linear id within the block
  std::vector<Barrier*> memberships;  ///< barriers counting this lane

  /// Armed trap, raised as a DeviceTrap inside the coroutine at the lane's
  /// next resume point (see detail::RaisePendingTrap in ctx.h). Set by the
  /// warp scheduler for watchdog expiry and injected trap sites.
  TrapKind pending_trap = TrapKind::kNone;
  /// Cycle at which pending_trap was armed (for the trap message).
  std::uint64_t trap_cycle = 0;
  /// Per-lane watchdog: trap the lane at its first resume at or after this
  /// cycle. 0 = disarmed. Re-armed per instance by the ensemble loader.
  std::uint64_t watchdog_deadline = 0;

  /// Set by the root coroutine's final awaiter.
  void MarkRootFinished() { root_finished_ = true; }

 private:
  std::coroutine_handle<> root_;
  std::exception_ptr* error_slot_ = nullptr;
  bool root_finished_ = false;
};

/// The lane currently being resumed. Awaiters use it to reach the scheduler
/// without threading a pointer through every promise. Each simulation is
/// single-threaded, but the ensemble sweep harness runs independent Device
/// instances on concurrent host threads — the slot is therefore one per
/// host thread (thread_local), never process-wide.
Lane*& CurrentLane();

}  // namespace dgc::sim

#include "gpusim/profiler.h"

#include "gpusim/device_spec.h"

namespace dgc::sim {

namespace {

/// Sums the counters the timeline needs across all per-instance buckets.
/// (Buckets carry elapsed_cycles = 0, so summing everything is safe, but
/// we only read a handful of fields — keep it explicit and cheap.)
LaunchStats SumBuckets(const std::vector<LaunchStats>& buckets) {
  LaunchStats total;
  for (const LaunchStats& b : buckets) total.AccumulateSequential(b);
  return total;
}

}  // namespace

void Profiler::OnLaunchBegin(const DeviceSpec& spec) {
  ++waves_;
  next_boundary_ = options_.sample_interval;
  window_start_ = 0;
  window_base_ = LaunchStats{};
  dram_bytes_per_cycle_ = spec.dram_bytes_per_cycle;
  l2_bytes_per_cycle_ = spec.l2_bytes_per_cycle;
  sector_bytes_ = spec.sector_bytes;
}

void Profiler::AdvanceTo(std::uint64_t t, std::uint32_t active_warps,
                         std::uint32_t resident_blocks,
                         const std::vector<LaunchStats>& buckets) {
  while (next_boundary_ < t) {
    EmitSample(next_boundary_, active_warps, resident_blocks, buckets);
    next_boundary_ += options_.sample_interval;
  }
}

void Profiler::OnLaunchEnd(std::uint64_t now, std::uint32_t active_warps,
                           std::uint32_t resident_blocks,
                           const std::vector<LaunchStats>& buckets) {
  // Final partial window, only if anything happened past the last sample.
  // This is the wave's closing sample: it must land in the timeline even
  // at capacity (final_flush), or the last < sample_interval cycles of the
  // launch silently vanish from the stall/utilization timeline.
  if (now > window_start_) {
    EmitSample(now, active_warps, resident_blocks, buckets,
               /*final_flush=*/true);
  }
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    // Bucket 0 is the unattributed (-1) slot; i maps to instance i - 1.
    Slot(std::int32_t(i) - 1).stats.AccumulateSequential(buckets[i]);
  }
}

void Profiler::SetInstanceElapsed(std::int32_t instance,
                                  std::uint64_t cycles) {
  Slot(instance).stats.elapsed_cycles = cycles;
}

InstanceStats& Profiler::Slot(std::int32_t instance) {
  // instances_ is indexed by instance + 1 (slot 0 holds the -1 entry);
  // grow with correctly-labelled empty entries so ordering stays by id.
  const std::size_t index = std::size_t(instance + 1);
  while (instances_.size() <= index) {
    InstanceStats entry;
    entry.instance = std::int32_t(instances_.size()) - 1;
    instances_.push_back(entry);
  }
  return instances_[index];
}

void Profiler::EmitSample(std::uint64_t cycle, std::uint32_t active_warps,
                          std::uint32_t resident_blocks,
                          const std::vector<LaunchStats>& buckets,
                          bool final_flush) {
  const std::uint64_t window = cycle - window_start_;
  const LaunchStats total = SumBuckets(buckets);
  if (window != 0) {
    if (final_flush || timeline_.size() < options_.timeline_capacity) {
      TimelineSample s;
      s.cycle = cycle;
      s.wave = waves_ - 1;
      s.active_warps = active_warps;
      s.resident_blocks = resident_blocks;
      s.warp_instructions = total.warp_instructions - window_base_.warp_instructions;
      const double dram_delta = double(total.dram_bytes - window_base_.dram_bytes);
      const double l2_delta =
          double(total.l1_misses - window_base_.l1_misses) * double(sector_bytes_);
      if (dram_bytes_per_cycle_ > 0.0) {
        s.dram_bw_occupancy = dram_delta / (dram_bytes_per_cycle_ * double(window));
      }
      if (l2_bytes_per_cycle_ > 0.0) {
        s.l2_bw_occupancy = l2_delta / (l2_bytes_per_cycle_ * double(window));
      }
      s.dram_queue_stall = total.dram_queue_cycles - window_base_.dram_queue_cycles;
      s.l2_queue_stall = total.l2_queue_cycles - window_base_.l2_queue_cycles;
      s.barrier_stall =
          total.barrier_stall_cycles - window_base_.barrier_stall_cycles;
      s.bank_conflict_replays =
          total.smem_bank_conflicts - window_base_.smem_bank_conflicts;
      s.divergence_replays =
          total.divergent_replays - window_base_.divergent_replays;
      timeline_.push_back(s);
    } else {
      ++dropped_samples_;
    }
  }
  window_start_ = cycle;
  window_base_ = total;
}

}  // namespace dgc::sim

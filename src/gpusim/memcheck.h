// Device memcheck: a compute-sanitizer-style shadow-memory layer.
//
// The shadow map mirrors every DeviceMemory allocation (bounds, liveness,
// owning ensemble instance) and is consulted by the warp scheduler on every
// timed global-memory access. It detects, without perturbing the timing
// model:
//
//   * out-of-bounds accesses — the address lies outside the *requested*
//     extent of its owning allocation (including the allocator's rounding
//     padding) or in no allocation at all;
//   * use-after-free — the address falls inside a retired allocation;
//   * double free / invalid free — a second free of the same base address,
//     or a free of an address that is not an allocation base;
//   * misaligned accesses — an access not naturally aligned to its width
//     (real GPUs fault on these; the functional simulator tolerates them);
//   * leaks — allocations made *by device code* still live at kernel exit;
//   * cross-instance writes — the ensemble race detector (paper §3.3):
//     regions tagged with an owning instance reject writes from other
//     instances, and regions tagged kSharedOwner report a race as soon as
//     two distinct instances write them.
//
// Accesses whose backing storage no longer exists (use-after-free, wild
// out-of-bounds) are *contained*: the functional read/write is suppressed
// (loads return 0), so a broken instance cannot corrupt a co-resident one
// or the host process. Timing is charged as if the access happened.
//
// Usage:
//   Memcheck memcheck;
//   memcheck.Attach(device.memory());   // before building device state
//   config.memcheck = &memcheck;        // opt in on the launch
//   ... launch ...
//   memcheck.report()                    // findings + counters
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gpusim/lane.h"
#include "gpusim/memory.h"

namespace dgc::sim {

struct LaunchConfig;
struct LaunchStats;

/// Sentinel owners for shadow regions (real instance ids are >= 0).
inline constexpr std::int32_t kNoInstance = -1;  ///< unknown / not checked
inline constexpr std::int32_t kSharedOwner = -2; ///< deliberately shared
/// Instance-shared read-only input segment (DeviceMemory::AcquireShared):
/// reads from any instance are benign, but ANY attributed write is a
/// cross-instance race — unlike kSharedOwner there is no first-writer claim.
inline constexpr std::int32_t kReadOnlyShared = -3;

enum class MemcheckErrorKind : std::uint8_t {
  kOutOfBounds,
  kUseAfterFree,
  kDoubleFree,
  kInvalidFree,
  kMisaligned,
  kLeak,
  kCrossInstance,
};

const char* ToString(MemcheckErrorKind kind);

struct MemcheckConfig {
  /// Findings stored verbatim in the report; counters keep counting beyond.
  std::uint32_t max_findings = 64;
  /// Report accesses not naturally aligned to their width.
  bool check_alignment = true;
  /// Run the cross-instance (ensemble isolation) checker. Inert until
  /// regions are tagged / team→instance mappings are set.
  bool check_cross_instance = true;
  /// Flag device-code allocations still live when a kernel retires.
  bool check_leaks = true;
};

struct MemcheckFinding {
  MemcheckErrorKind kind = MemcheckErrorKind::kOutOfBounds;
  /// Access kind for access findings; kNone for free/leak findings.
  DeviceOp::Kind op = DeviceOp::Kind::kNone;
  DeviceAddr addr = 0;
  std::uint64_t bytes = 0;  ///< access width, or allocation size for leaks

  // Attribution: which lane did it (valid when `attributed` is true — frees
  // issued from host setup code have no lane).
  bool attributed = false;
  std::uint32_t block_id = 0;
  std::uint32_t warp_id = 0;
  std::uint32_t lane_id = 0;   ///< lane index within the warp
  std::uint32_t thread_id = 0; ///< linear thread id within the block
  std::int32_t instance = kNoInstance;  ///< accessor's ensemble instance

  // The owning (or formerly owning) allocation, when one exists.
  bool has_region = false;
  DeviceAddr region_base = 0;
  std::uint64_t region_bytes = 0;
  std::int32_t region_owner = kNoInstance;
  std::string region_label;

  std::string ToString() const;
};

struct MemcheckReport {
  std::vector<MemcheckFinding> findings;  ///< first max_findings, in order
  std::uint64_t oob_count = 0;
  std::uint64_t uaf_count = 0;
  std::uint64_t double_free_count = 0;
  std::uint64_t invalid_free_count = 0;
  std::uint64_t misaligned_count = 0;
  std::uint64_t leak_count = 0;
  std::uint64_t cross_instance_count = 0;

  std::uint64_t total() const {
    return oob_count + uaf_count + double_free_count + invalid_free_count +
           misaligned_count + leak_count + cross_instance_count;
  }
  bool clean() const { return total() == 0; }
  std::string ToString() const;
};

class Lane;

class Memcheck : public AllocationListener {
 public:
  explicit Memcheck(MemcheckConfig config = {});

  Memcheck(const Memcheck&) = delete;
  Memcheck& operator=(const Memcheck&) = delete;

  /// Subscribes to `memory`'s allocation events and seeds the shadow map
  /// with its already-live allocations (so buffers set up before the
  /// memcheck existed are still recognized, with rounded bounds).
  void Attach(DeviceMemory& memory);

  // --- AllocationListener ----------------------------------------------------
  void OnAlloc(DeviceAddr addr, std::uint64_t requested,
               std::uint64_t rounded) override;
  void OnFree(DeviceAddr addr, std::uint64_t rounded) override;
  void OnFreeFailed(DeviceAddr addr) override;
  /// A shared read-only segment materialized at `addr`: tags the region
  /// kReadOnlyShared so any attributed write reports a cross-instance race.
  void OnSharedRegion(DeviceAddr addr, const std::string& label) override;

  // --- Cross-instance tagging ------------------------------------------------
  /// Tags the allocation based at `addr` with an owning instance id
  /// (>= 0), or kSharedOwner for a deliberately shared region whose writes
  /// should be race-checked. Untagged regions are bounds-checked only.
  void TagRegion(DeviceAddr addr, std::int32_t owner, std::string label);

  /// Maps a team (as computed from block id and block-dim row) to the
  /// ensemble instance it is currently executing. Loaders update this as
  /// teams move through their `distribute` iterations.
  void SetTeamInstance(std::uint32_t team, std::int32_t instance);

  // --- Launch lifecycle (called by Device::Launch) ---------------------------
  void OnLaunchBegin(const LaunchConfig& config);
  /// Leak-checks device-code allocations and folds the launch's finding
  /// count into `stats.memcheck_findings`.
  void OnLaunchEnd(LaunchStats& stats);

  /// Validates one lane access. Returns false when the access has no live
  /// backing storage (use-after-free / wild out-of-bounds) — the caller
  /// must then suppress the functional effect.
  bool CheckAccess(const Lane& lane, DeviceOp::Kind op, DeviceAddr addr,
                   std::uint32_t bytes, bool is_write);

  const MemcheckReport& report() const { return report_; }
  const MemcheckConfig& config() const { return config_; }
  /// Clears findings and counters (the shadow map is preserved).
  void ResetReport();

 private:
  struct ShadowAlloc {
    DeviceAddr addr = 0;
    std::uint64_t bytes = 0;    ///< requested extent (checked bound)
    std::uint64_t rounded = 0;  ///< allocator extent (lookup bound)
    std::int32_t owner = kNoInstance;
    std::int32_t first_writer = kNoInstance;  ///< kSharedOwner race tracking
    bool device_alloc = false;  ///< allocated from device code (leak-checked)
    bool leak_reported = false;
    std::string label;
    // Allocation-site attribution for leak reports.
    bool alloc_attributed = false;
    std::uint32_t alloc_block = 0;
    std::uint32_t alloc_thread = 0;
    std::int32_t alloc_instance = kNoInstance;
  };

  const ShadowAlloc* FindLive(DeviceAddr addr) const;
  const ShadowAlloc* FindFreed(DeviceAddr addr) const;
  std::int32_t InstanceOf(const Lane& lane) const;
  void Attribute(MemcheckFinding& f, const Lane& lane) const;
  void DescribeRegion(MemcheckFinding& f, const ShadowAlloc& region) const;
  void Record(MemcheckFinding finding);
  std::uint64_t& CounterFor(MemcheckErrorKind kind);

  MemcheckConfig config_;
  MemcheckReport report_;
  std::map<DeviceAddr, ShadowAlloc> live_;
  std::map<DeviceAddr, ShadowAlloc> freed_;  ///< retired allocations (FIFO-bounded)
  std::vector<DeviceAddr> freed_order_;      ///< eviction order for freed_
  std::map<std::uint32_t, std::int32_t> team_instances_;
  std::uint32_t teams_per_block_ = 1;  ///< block-dim y of the current launch
  std::uint64_t findings_at_launch_begin_ = 0;
};

}  // namespace dgc::sim

// Device address space and typed device pointers.
//
// The simulator keeps its own deterministic 64-bit device address space —
// timing (coalescing, caches, DRAM rows) is computed from these addresses,
// never from host pointers, so runs are bit-reproducible. Each device
// allocation is backed by host storage for functional execution; a
// DevicePtr carries both views.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace dgc::sim {

using DeviceAddr = std::uint64_t;

/// Global memory occupies [kGlobalBase, kSharedBase); shared memory windows
/// are placed above kSharedBase (one window per thread block).
inline constexpr DeviceAddr kGlobalBase = 0x0000'0000'0001'0000ULL;
inline constexpr DeviceAddr kSharedBase = 0x4000'0000'0000'0000ULL;

inline constexpr bool IsSharedAddr(DeviceAddr a) { return a >= kSharedBase; }

struct Dim3 {
  std::uint32_t x = 1, y = 1, z = 1;
  constexpr std::uint64_t Count() const {
    return std::uint64_t(x) * y * z;
  }
  friend constexpr bool operator==(const Dim3&, const Dim3&) = default;
};

/// A typed pointer into simulated device memory.
///
/// `addr` is the simulated device address (drives timing); `host` is the
/// backing storage (drives functional effects). Direct dereference through
/// `host` is allowed for *untimed* setup paths; kernels use
/// `ThreadCtx::Load/Store`, which charge the memory system.
template <typename T>
struct DevicePtr {
  static_assert(std::is_trivially_copyable_v<T>,
                "device data must be trivially copyable");

  DeviceAddr addr = 0;
  T* host = nullptr;

  constexpr bool IsNull() const { return host == nullptr; }
  constexpr explicit operator bool() const { return host != nullptr; }

  constexpr DevicePtr operator+(std::ptrdiff_t i) const {
    return {addr + std::uint64_t(i) * sizeof(T), host + i};
  }
  constexpr DevicePtr operator-(std::ptrdiff_t i) const {
    return {addr - std::uint64_t(i) * sizeof(T), host - i};
  }
  constexpr DevicePtr& operator+=(std::ptrdiff_t i) {
    *this = *this + i;
    return *this;
  }

  /// Untimed host-side access (setup / teardown paths only).
  constexpr T& operator*() const { return *host; }
  constexpr T& operator[](std::ptrdiff_t i) const { return host[i]; }

  /// Reinterpret as another trivially-copyable element type.
  template <typename U>
  constexpr DevicePtr<U> Cast() const {
    return {addr, reinterpret_cast<U*>(host)};
  }

  friend constexpr bool operator==(const DevicePtr&, const DevicePtr&) = default;
};

}  // namespace dgc::sim

// The memory hierarchy timing model: per-SM L1 → shared L2 → DRAM.
//
// DRAM is the contended resource that produces the paper's sub-linear
// ensemble scaling: it has a finite byte rate, a small number of channels,
// and per-channel row buffers. Streams from many concurrent instances hit
// disjoint heap allocations, interleave on the channels, and lower the
// row-hit rate — exactly the effect §4.3 describes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/cache.h"
#include "gpusim/device_spec.h"
#include "gpusim/stats.h"

namespace dgc::sim {

class MemorySystem {
 public:
  explicit MemorySystem(const DeviceSpec& spec);

  /// Services one warp memory instruction: `sectors` (unique sector ids
  /// from the coalescer) issued by SM `sm_id` at time `now`. Returns the
  /// completion time. Hits and misses are recorded into `stats`.
  ///
  /// Queue accounting (stats.l2_queue_cycles / dram_queue_cycles): the
  /// instruction is charged the backlog it finds on arrival, once per
  /// resource it actually reaches — the L2 port once, each DRAM channel
  /// once — truncated to whole cycles. An instruction's own sectors never
  /// count toward its own queue charge.
  std::uint64_t Access(int sm_id, std::span<const std::uint64_t> sectors,
                       bool is_store, std::uint64_t now, LaunchStats& stats);

  /// Services one warp *shared-memory* instruction: lane bank indices are
  /// derived from addresses; conflicting banks serialize. Returns completion.
  /// `charge` gates the smem counter bumps (accesses, bank conflicts): the
  /// threaded launch engine pre-charges them into a shard-local bucket at
  /// speculation time and passes false at commit so nothing double-counts.
  /// Timing is computed either way.
  std::uint64_t AccessShared(std::span<const std::uint64_t> addrs,
                             std::uint64_t now, LaunchStats& stats,
                             bool charge = true);

  /// Worst-bank conflict degree for one warp shared-memory instruction
  /// (>= 1 for a non-empty warp; 0 when `addrs` is empty). This is the
  /// stateless core of AccessShared, factored out so shard threads can
  /// evaluate it concurrently: callers supply their own scratch buffers
  /// (cleared and reused; contents unspecified afterward) instead of the
  /// device-owned ones.
  std::uint32_t SharedConflictDegree(std::span<const std::uint64_t> addrs,
                                     std::vector<std::uint64_t>& words_scratch,
                                     std::vector<std::uint32_t>& bank_scratch)
      const;

  /// Resets caches and channel state (between independent launches).
  void Reset();

  /// Fixed-point scale for the busy-until cursors (see below). Public so
  /// tests can reason about quantization exactly.
  static constexpr std::uint32_t kFpBits = 20;
  static constexpr std::uint64_t kFpOne = std::uint64_t(1) << kFpBits;

 private:
  /// One DRAM channel: a shared busy-until cursor (bandwidth) and one open
  /// row per bank (locality). Cursors are *integer fixed-point* cycle
  /// counts (kFpBits fractional bits): a sector's service time is far
  /// below one cycle on a modern part, so whole-cycle rounding would
  /// throttle the hierarchy, while a floating-point cursor accumulates
  /// magnitude-dependent rounding over long launches. Integer accumulation
  /// is exact — completion times are invariant to how a sector stream is
  /// chunked into instructions.
  struct Channel {
    std::uint64_t busy_until_fp = 0;
    /// Stamp of the last Access() call charged for this channel's backlog
    /// (queue cycles are per instruction, not per sector).
    std::uint64_t charge_stamp = 0;
    std::vector<std::uint64_t> open_row;  ///< per bank, ~0 = closed
  };

  const DeviceSpec& spec_;
  std::vector<SectorCache> l1_;  ///< one per SM
  SectorCache l2_;
  std::uint64_t l2_busy_until_fp_ = 0;
  std::uint64_t l2_service_fp_ = 0;    ///< per-sector L2 port occupancy
  std::uint64_t dram_service_fp_ = 0;  ///< per-sector channel occupancy
  std::uint64_t access_stamp_ = 0;     ///< one per Access() call
  std::vector<Channel> channels_;
  // Precomputed index arithmetic for the per-sector DRAM loop. All shipped
  // specs have power-of-two channel/bank/row geometry, so the three hot
  // divisions reduce to shifts and masks; pow2_geometry_ falls back to the
  // div/mod forms (identical results) for exotic specs.
  bool pow2_geometry_ = false;
  std::uint32_t channel_mask_ = 0;   ///< channels - 1
  std::uint32_t channel_shift_ = 0;  ///< log2(channels)
  std::uint32_t row_shift_ = 0;      ///< log2(row_bytes / sector_bytes)
  std::uint32_t bank_mask_ = 0;      ///< banks_per_channel - 1
  std::uint32_t smem_bank_mask_ = 0;  ///< smem_banks - 1 when pow2, else 0
  // AccessShared scratch. The commit thread services one warp turn at a
  // time, so device-owned scratch is safe there; shard threads must go
  // through SharedConflictDegree with their own buffers instead.
  std::vector<std::uint64_t> smem_words_;
  std::vector<std::uint32_t> smem_per_bank_;
};

}  // namespace dgc::sim

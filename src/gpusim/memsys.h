// The memory hierarchy timing model: per-SM L1 → shared L2 → DRAM.
//
// DRAM is the contended resource that produces the paper's sub-linear
// ensemble scaling: it has a finite byte rate, a small number of channels,
// and per-channel row buffers. Streams from many concurrent instances hit
// disjoint heap allocations, interleave on the channels, and lower the
// row-hit rate — exactly the effect §4.3 describes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/cache.h"
#include "gpusim/device_spec.h"
#include "gpusim/stats.h"

namespace dgc::sim {

class MemorySystem {
 public:
  explicit MemorySystem(const DeviceSpec& spec);

  /// Services one warp memory instruction: `sectors` (unique sector ids
  /// from the coalescer) issued by SM `sm_id` at time `now`. Returns the
  /// completion time. Hits and misses are recorded into `stats`.
  std::uint64_t Access(int sm_id, std::span<const std::uint64_t> sectors,
                       bool is_store, std::uint64_t now, LaunchStats& stats);

  /// Services one warp *shared-memory* instruction: lane bank indices are
  /// derived from addresses; conflicting banks serialize. Returns completion.
  std::uint64_t AccessShared(std::span<const std::uint64_t> addrs,
                             std::uint64_t now, LaunchStats& stats);

  /// Resets caches and channel state (between independent launches).
  void Reset();

 private:
  /// One DRAM channel: a shared busy-until cursor (bandwidth) and one open
  /// row per bank (locality). Cursors are fractional: a sector's service
  /// time is far below one cycle on a modern part, and rounding it up
  /// would throttle the whole hierarchy.
  struct Channel {
    double busy_until = 0;
    std::vector<std::uint64_t> open_row;  ///< per bank, ~0 = closed
  };

  const DeviceSpec& spec_;
  std::vector<SectorCache> l1_;  ///< one per SM
  SectorCache l2_;
  double l2_busy_until_ = 0;
  std::vector<Channel> channels_;
};

}  // namespace dgc::sim

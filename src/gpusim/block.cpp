#include "gpusim/block.h"

#include "gpusim/launch_context.h"
#include "gpusim/sm.h"
#include "gpusim/warp.h"
#include "support/str.h"

namespace dgc::sim {

Block::Block(LaunchContext* lc, std::uint32_t block_id, SM* sm)
    : lc_(lc),
      id_(block_id),
      sm_(sm),
      barrier_(StrFormat("block-%u", block_id)) {
  const Dim3 bdim = lc->config.block;
  const std::uint32_t nthreads = std::uint32_t(bdim.Count());
  live_ = nthreads;

  shared_.resize(lc->config.shared_bytes);
  shared_base_ =
      kSharedBase + std::uint64_t(block_id) *
                        std::uint64_t(lc->spec.shared_memory_per_block);

  lanes_ = std::vector<Lane>(nthreads);
  ctxs_.resize(nthreads);
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    Lane& lane = lanes_[i];
    lane.block = this;
    lane.thread_id = i;
    lane.memberships.push_back(&barrier_);

    ThreadCtx& ctx = ctxs_[i];
    ctx.lane = &lane;
    ctx.block = this;
    ctx.thread_id = i;
    ctx.tid3 = Dim3{i % bdim.x, (i / bdim.x) % bdim.y, i / (bdim.x * bdim.y)};
    ctx.block_id = block_id;
    ctx.block_threads = nthreads;
    ctx.block_dim = bdim;
    ctx.grid_blocks = std::uint32_t(lc->config.grid.Count());
    lane.ctx = &ctx;
  }
  barrier_.AddParticipants(nthreads);

  const int wsize = lc->spec.warp_size;
  const std::uint32_t nwarps = (nthreads + wsize - 1) / std::uint32_t(wsize);
  warps_.reserve(nwarps);
  for (std::uint32_t w = 0; w < nwarps; ++w) {
    const std::uint32_t begin = w * std::uint32_t(wsize);
    const std::uint32_t end = std::min(nthreads, begin + std::uint32_t(wsize));
    warps_.push_back(std::make_unique<Warp>(
        this, w, std::span<Lane>(lanes_.data() + begin, end - begin), lc_));
  }
}

Block::~Block() = default;

void Block::Start(std::uint64_t now) {
  for (std::uint32_t i = 0; i < lanes_.size(); ++i) {
    DeviceTask<void> root = lc_->kernel(ctxs_[i]);
    auto handle = root.raw();
    lanes_[i].Start(root.Release(), &handle.promise().error);
  }
  for (auto& warp : warps_) warp->WakeAt(now, lc_->engine);
}

void Block::SetRowWatchdog(std::uint32_t row, std::uint64_t deadline) {
  for (std::uint32_t i = 0; i < lanes_.size(); ++i) {
    if (ctxs_[i].tid3.y != row) continue;
    lanes_[i].watchdog_deadline = deadline;
  }
}

void Block::OnLaneDone(Lane* lane, std::uint64_t now) {
  for (Barrier* b : lane->memberships) b->ParticipantGone(now, lc_->engine);
  DGC_CHECK(live_ > 0);
  --live_;
  if (live_ == 0) lc_->OnBlockFinished(this, now);
}

}  // namespace dgc::sim

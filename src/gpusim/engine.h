// Discrete-event engine: a time-ordered queue of warp wake-ups.
//
// The only actor type is the warp (everything else — barriers, block
// completion, SM occupancy — happens synchronously inside warp turns), so
// the engine stays a minimal priority queue. Ties break by insertion order,
// which makes every simulation fully deterministic.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

namespace dgc::sim {

class Warp;

class Engine {
 public:
  /// Schedules a warp turn no earlier than the current time.
  void Schedule(std::uint64_t t, Warp* warp);

  /// Pops and dispatches one event; false when the queue is empty.
  bool RunOne();

  /// Sentinel returned by next_event_time() on an empty queue.
  static constexpr std::uint64_t kNoEvent = ~std::uint64_t(0);

  /// Timestamp of the next event without dispatching it. Lets the run loop
  /// act between events (timeline sampling) without perturbing them.
  std::uint64_t next_event_time() const {
    return queue_.empty() ? kNoEvent : queue_.top().t;
  }

  std::uint64_t now() const { return now_; }
  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t events_dispatched() const { return dispatched_; }

 private:
  struct Event {
    std::uint64_t t;
    std::uint64_t seq;
    Warp* warp;
    bool operator>(const Event& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::uint64_t now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace dgc::sim

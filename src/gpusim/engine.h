// Discrete-event engine: a time-ordered queue of warp wake-ups.
//
// The only actor type is the warp (everything else — barriers, block
// completion, SM occupancy — happens synchronously inside warp turns), so
// the engine stays a minimal priority queue. Ties break by insertion order,
// which makes every simulation fully deterministic.
#pragma once

#include <cstdint>
#include <vector>

namespace dgc::sim {

class Warp;

class Engine {
 public:
  /// One queued warp wake-up. Public so the threaded launch loop can
  /// snapshot a cycle window of upcoming events (CollectPending).
  struct Event {
    std::uint64_t t;
    std::uint64_t seq;
    Warp* warp;
  };

  /// Schedules a warp turn no earlier than the current time.
  void Schedule(std::uint64_t t, Warp* warp);

  /// Pops and dispatches one event; false when the queue is empty.
  bool RunOne();

  /// Sentinel returned by next_event_time() on an empty queue.
  static constexpr std::uint64_t kNoEvent = ~std::uint64_t(0);

  /// Timestamp of the next event without dispatching it. Lets the run loop
  /// act between events (timeline sampling) without perturbing them.
  std::uint64_t next_event_time() const {
    return heap_.empty() ? kNoEvent : heap_.front().t;
  }

  /// Appends a copy of every queued event with t < `bound` to `out`, in
  /// dispatch order (t, then insertion seq). The queue itself is untouched:
  /// the copies are a read-only preview for speculative execution, and the
  /// originals still dispatch through RunOne in exactly this order.
  void CollectPending(std::uint64_t bound, std::vector<Event>& out) const;

  std::uint64_t now() const { return now_; }
  std::size_t pending_events() const { return heap_.size(); }
  std::uint64_t events_dispatched() const { return dispatched_; }
  /// Insertion seq of the event currently being dispatched by RunOne.
  /// Valid only inside Warp::Turn; used to match speculation to its event.
  std::uint64_t dispatching_seq() const { return dispatching_seq_; }

 private:
  /// Heap comparator: a "later-than" predicate, so the front of the
  /// std::push_heap/pop_heap max-heap is the *earliest* event.
  static bool Later(const Event& a, const Event& b) {
    return a.t != b.t ? a.t > b.t : a.seq > b.seq;
  }

  std::vector<Event> heap_;
  std::uint64_t now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t dispatching_seq_ = 0;
};

}  // namespace dgc::sim

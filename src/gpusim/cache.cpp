#include "gpusim/cache.h"

namespace dgc::sim {

SectorCache::SectorCache(std::uint64_t capacity_bytes,
                         std::uint32_t sector_bytes, std::uint32_t ways)
    : ways_(ways) {
  DGC_CHECK(ways_ > 0);
  DGC_CHECK(sector_bytes > 0);
  const std::uint64_t sectors = capacity_bytes / sector_bytes;
  DGC_CHECK_MSG(sectors >= ways_, "cache smaller than one set");
  sets_ = std::uint32_t(sectors / ways_);
  if ((sets_ & (sets_ - 1)) == 0) set_mask_ = sets_ - 1;
  table_.resize(std::size_t(sets_) * ways_);
}

bool SectorCache::Probe(std::uint64_t sector) const {
  const std::uint32_t set = SetIndex(sector);
  const Way* base = &table_[std::size_t(set) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].tag == sector) return true;
  }
  return false;
}

void SectorCache::Clear() {
  for (Way& w : table_) w = Way{};
  hits_ = misses_ = 0;
}

}  // namespace dgc::sim

#include "gpusim/cache.h"

namespace dgc::sim {

SectorCache::SectorCache(std::uint64_t capacity_bytes,
                         std::uint32_t sector_bytes, std::uint32_t ways)
    : ways_(ways) {
  DGC_CHECK(ways_ > 0);
  DGC_CHECK(sector_bytes > 0);
  const std::uint64_t sectors = capacity_bytes / sector_bytes;
  DGC_CHECK_MSG(sectors >= ways_, "cache smaller than one set");
  sets_ = std::uint32_t(sectors / ways_);
  table_.resize(std::size_t(sets_) * ways_);
}

bool SectorCache::Access(std::uint64_t sector) {
  const std::uint32_t set = std::uint32_t(sector % sets_);
  Way* base = &table_[std::size_t(set) * ways_];
  ++stamp_;
  Way* victim = base;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Way& way = base[w];
    if (way.tag == sector) {
      way.lru = stamp_;
      ++hits_;
      return true;
    }
    if (way.lru < victim->lru) victim = &way;
  }
  ++misses_;
  victim->tag = sector;
  victim->lru = stamp_;
  return false;
}

bool SectorCache::Probe(std::uint64_t sector) const {
  const std::uint32_t set = std::uint32_t(sector % sets_);
  const Way* base = &table_[std::size_t(set) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].tag == sector) return true;
  }
  return false;
}

void SectorCache::Clear() {
  for (Way& w : table_) w = Way{};
  hits_ = misses_ = 0;
}

}  // namespace dgc::sim

#include "gpusim/stats.h"

#include "support/str.h"
#include "support/units.h"

namespace dgc::sim {

void LaunchStats::Accumulate(const LaunchStats& o) {
  warp_instructions += o.warp_instructions;
  compute_instructions += o.compute_instructions;
  load_instructions += o.load_instructions;
  store_instructions += o.store_instructions;
  atomic_instructions += o.atomic_instructions;
  external_calls += o.external_calls;
  barrier_arrivals += o.barrier_arrivals;
  divergent_replays += o.divergent_replays;
  global_sectors += o.global_sectors;
  ideal_sectors += o.ideal_sectors;
  l1_hits += o.l1_hits;
  l1_misses += o.l1_misses;
  l2_hits += o.l2_hits;
  l2_misses += o.l2_misses;
  dram_bytes += o.dram_bytes;
  dram_row_hits += o.dram_row_hits;
  dram_row_misses += o.dram_row_misses;
  smem_accesses += o.smem_accesses;
  smem_bank_conflicts += o.smem_bank_conflicts;
  compute_cycles_issued += o.compute_cycles_issued;
  elapsed_cycles += o.elapsed_cycles;
  blocks_launched += o.blocks_launched;
  memcheck_findings += o.memcheck_findings;
  lane_traps += o.lane_traps;
  watchdog_traps += o.watchdog_traps;
}

namespace {
double Ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : double(num) / double(den);
}
}  // namespace

double LaunchStats::CoalescingEfficiency() const {
  return global_sectors == 0 ? 1.0 : Ratio(ideal_sectors, global_sectors);
}
double LaunchStats::L1HitRate() const { return Ratio(l1_hits, l1_hits + l1_misses); }
double LaunchStats::L2HitRate() const { return Ratio(l2_hits, l2_hits + l2_misses); }
double LaunchStats::DramRowHitRate() const {
  return Ratio(dram_row_hits, dram_row_hits + dram_row_misses);
}

std::string LaunchStats::ToString() const {
  std::string out;
  out += StrFormat("elapsed: %s cycles, blocks: %llu\n",
                   FormatCount(elapsed_cycles).c_str(),
                   (unsigned long long)blocks_launched);
  out += StrFormat(
      "warp instructions: %s (compute %s, load %s, store %s, atomic %s, "
      "external %s)\n",
      FormatCount(warp_instructions).c_str(),
      FormatCount(compute_instructions).c_str(),
      FormatCount(load_instructions).c_str(),
      FormatCount(store_instructions).c_str(),
      FormatCount(atomic_instructions).c_str(),
      FormatCount(external_calls).c_str());
  out += StrFormat(
      "sectors: %s (coalescing efficiency %.2f), L1 %.2f, L2 %.2f, "
      "DRAM %s rows %.2f\n",
      FormatCount(global_sectors).c_str(), CoalescingEfficiency(), L1HitRate(),
      L2HitRate(), FormatBytes(dram_bytes).c_str(), DramRowHitRate());
  out += StrFormat("barriers: %s, divergent replays: %s, smem conflicts: %s\n",
                   FormatCount(barrier_arrivals).c_str(),
                   FormatCount(divergent_replays).c_str(),
                   FormatCount(smem_bank_conflicts).c_str());
  if (memcheck_findings != 0) {
    out += StrFormat("memcheck findings: %s\n",
                     FormatCount(memcheck_findings).c_str());
  }
  if (lane_traps != 0 || watchdog_traps != 0) {
    out += StrFormat("lane traps: %s (watchdog %s)\n",
                     FormatCount(lane_traps + watchdog_traps).c_str(),
                     FormatCount(watchdog_traps).c_str());
  }
  return out;
}

}  // namespace dgc::sim

#include "gpusim/stats.h"

#include <algorithm>

#include "support/str.h"
#include "support/units.h"

namespace dgc::sim {

namespace {

/// Sums every throughput counter of `o` into `s` — everything except
/// elapsed_cycles, whose merge rule depends on whether the two stat sets
/// describe sequential or concurrent work.
void AddCounters(LaunchStats& s, const LaunchStats& o) {
  s.warp_instructions += o.warp_instructions;
  s.compute_instructions += o.compute_instructions;
  s.load_instructions += o.load_instructions;
  s.store_instructions += o.store_instructions;
  s.atomic_instructions += o.atomic_instructions;
  s.external_calls += o.external_calls;
  s.barrier_arrivals += o.barrier_arrivals;
  s.divergent_replays += o.divergent_replays;
  s.global_sectors += o.global_sectors;
  s.ideal_sectors += o.ideal_sectors;
  s.l1_hits += o.l1_hits;
  s.l1_misses += o.l1_misses;
  s.l2_hits += o.l2_hits;
  s.l2_misses += o.l2_misses;
  s.dram_bytes += o.dram_bytes;
  s.dram_row_hits += o.dram_row_hits;
  s.dram_row_misses += o.dram_row_misses;
  s.smem_accesses += o.smem_accesses;
  s.smem_bank_conflicts += o.smem_bank_conflicts;
  s.dram_queue_cycles += o.dram_queue_cycles;
  s.l2_queue_cycles += o.l2_queue_cycles;
  s.barrier_stall_cycles += o.barrier_stall_cycles;
  s.compute_cycles_issued += o.compute_cycles_issued;
  s.blocks_launched += o.blocks_launched;
  s.memcheck_findings += o.memcheck_findings;
  s.lane_traps += o.lane_traps;
  s.watchdog_traps += o.watchdog_traps;
}

}  // namespace

void LaunchStats::AccumulateSequential(const LaunchStats& o) {
  AddCounters(*this, o);
  elapsed_cycles += o.elapsed_cycles;
}

void LaunchStats::AccumulateConcurrent(const LaunchStats& o) {
  AddCounters(*this, o);
  elapsed_cycles = std::max(elapsed_cycles, o.elapsed_cycles);
}

namespace {
double Ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : double(num) / double(den);
}

/// "0.83" for real rates, "n/a" when nothing was accessed: Ratio's zero
/// default would otherwise make an untouched cache look like a 100%-miss
/// cache in reports.
std::string RateOrNa(std::uint64_t num, std::uint64_t den) {
  if (den == 0) return "n/a";
  return StrFormat("%.2f", Ratio(num, den));
}
}  // namespace

double LaunchStats::CoalescingEfficiency() const {
  return global_sectors == 0 ? 1.0 : Ratio(ideal_sectors, global_sectors);
}
double LaunchStats::L1HitRate() const { return Ratio(l1_hits, l1_hits + l1_misses); }
double LaunchStats::L2HitRate() const { return Ratio(l2_hits, l2_hits + l2_misses); }
double LaunchStats::DramRowHitRate() const {
  return Ratio(dram_row_hits, dram_row_hits + dram_row_misses);
}

std::string LaunchStats::ToString() const {
  std::string out;
  out += StrFormat("elapsed: %s cycles, blocks: %llu\n",
                   FormatCount(elapsed_cycles).c_str(),
                   (unsigned long long)blocks_launched);
  out += StrFormat(
      "warp instructions: %s (compute %s, load %s, store %s, atomic %s, "
      "external %s)\n",
      FormatCount(warp_instructions).c_str(),
      FormatCount(compute_instructions).c_str(),
      FormatCount(load_instructions).c_str(),
      FormatCount(store_instructions).c_str(),
      FormatCount(atomic_instructions).c_str(),
      FormatCount(external_calls).c_str());
  out += StrFormat(
      "sectors: %s (coalescing efficiency %.2f), L1 %s, L2 %s, "
      "DRAM %s rows %s\n",
      FormatCount(global_sectors).c_str(), CoalescingEfficiency(),
      RateOrNa(l1_hits, l1_hits + l1_misses).c_str(),
      RateOrNa(l2_hits, l2_hits + l2_misses).c_str(),
      FormatBytes(dram_bytes).c_str(),
      RateOrNa(dram_row_hits, dram_row_hits + dram_row_misses).c_str());
  out += StrFormat("barriers: %s, divergent replays: %s, smem conflicts: %s\n",
                   FormatCount(barrier_arrivals).c_str(),
                   FormatCount(divergent_replays).c_str(),
                   FormatCount(smem_bank_conflicts).c_str());
  if (dram_queue_cycles != 0 || l2_queue_cycles != 0 ||
      barrier_stall_cycles != 0) {
    out += StrFormat(
        "stall cycles: dram-queue %s, l2-queue %s, barrier %s\n",
        FormatCount(dram_queue_cycles).c_str(),
        FormatCount(l2_queue_cycles).c_str(),
        FormatCount(barrier_stall_cycles).c_str());
  }
  if (memcheck_findings != 0) {
    out += StrFormat("memcheck findings: %s\n",
                     FormatCount(memcheck_findings).c_str());
  }
  if (lane_traps != 0 || watchdog_traps != 0) {
    out += StrFormat("lane traps: %s (watchdog %s)\n",
                     FormatCount(lane_traps + watchdog_traps).c_str(),
                     FormatCount(watchdog_traps).c_str());
  }
  return out;
}

}  // namespace dgc::sim

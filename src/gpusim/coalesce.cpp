#include "gpusim/coalesce.h"

#include <algorithm>
#include <atomic>
#include <bit>

namespace dgc::sim {
namespace {

// Process-wide fast-path switch. Defaults to on; the determinism harness
// flips it off to drive whole ensemble runs through the scalar reference
// and assert byte-identical stats (tests/ensemble/perf_determinism_test).
std::atomic<bool> g_fast_path{true};

/// Sorts a warp-sized run of sector ids. Inputs here are at most a few
/// dozen elements (32 lanes, rarely straddling), where an inlined
/// insertion sort beats the generic introsort dispatch; the result is the
/// same sorted sequence either way.
void SortSectors(std::vector<std::uint64_t>& v) {
  if (v.size() > 64) {
    std::sort(v.begin(), v.end());
    return;
  }
  for (std::size_t i = 1; i < v.size(); ++i) {
    const std::uint64_t key = v[i];
    std::size_t j = i;
    for (; j > 0 && v[j - 1] > key; --j) v[j] = v[j - 1];
    v[j] = key;
  }
}

}  // namespace

bool SetCoalesceFastPath(bool enabled) {
  return g_fast_path.exchange(enabled, std::memory_order_relaxed);
}

bool CoalesceFastPathEnabled() {
  return g_fast_path.load(std::memory_order_relaxed);
}

void CoalesceSectorsScalar(std::span<const LaneAccess> accesses,
                           std::uint32_t sector_bytes,
                           std::vector<std::uint64_t>& sectors_out) {
  sectors_out.clear();
  for (const LaneAccess& a : accesses) {
    if (a.bytes == 0) continue;
    const std::uint64_t first = a.addr / sector_bytes;
    const std::uint64_t last = (a.addr + a.bytes - 1) / sector_bytes;
    for (std::uint64_t s = first; s <= last; ++s) sectors_out.push_back(s);
  }
  std::sort(sectors_out.begin(), sectors_out.end());
  sectors_out.erase(std::unique(sectors_out.begin(), sectors_out.end()),
                    sectors_out.end());
}

void CoalesceSectors(std::span<const LaneAccess> accesses,
                     std::uint32_t sector_bytes,
                     std::vector<std::uint64_t>& sectors_out) {
  if (!g_fast_path.load(std::memory_order_relaxed)) {
    CoalesceSectorsScalar(accesses, sector_bytes, sectors_out);
    return;
  }
  sectors_out.clear();

  // Sector size is a power of two on every real device, so addr→sector is
  // a shift; a hardware u64 divide (two per lane otherwise) only backs the
  // exotic-geometry fallback. Same quotients either way.
  const int shift = std::has_single_bit(sector_bytes)
                        ? std::countr_zero(sector_bytes)
                        : -1;
  const auto sector_of = [&](std::uint64_t addr) {
    return shift >= 0 ? addr >> shift : addr / sector_bytes;
  };

  // Fast path: the dominant shape is a full warp of equal-width lanes
  // walking one contiguous ascending run (unit stride). The touched bytes
  // then form a single interval, and the sector run falls out of its two
  // endpoints — no per-lane expansion, no sort, no dedup.
  if (accesses.size() > 1) {
    const std::uint32_t bytes = accesses.front().bytes;
    bool contiguous = bytes != 0;
    for (std::size_t i = 1; contiguous && i < accesses.size(); ++i) {
      contiguous = accesses[i].bytes == bytes &&
                   accesses[i].addr == accesses[i - 1].addr + bytes;
    }
    if (contiguous) {
      const std::uint64_t first = sector_of(accesses.front().addr);
      const std::uint64_t last = sector_of(accesses.back().addr + bytes - 1);
      sectors_out.reserve(std::size_t(last - first + 1));
      for (std::uint64_t s = first; s <= last; ++s) sectors_out.push_back(s);
      return;
    }
  }

  // General path: expand per-lane sector ranges while tracking whether the
  // output is already non-decreasing (typical for sorted-but-gappy
  // patterns); sort only when it is not.
  bool sorted = true;
  std::uint64_t prev = 0;
  for (const LaneAccess& a : accesses) {
    if (a.bytes == 0) continue;
    const std::uint64_t first = sector_of(a.addr);
    const std::uint64_t last = sector_of(a.addr + a.bytes - 1);
    if (!sectors_out.empty() && first < prev) sorted = false;
    for (std::uint64_t s = first; s <= last; ++s) sectors_out.push_back(s);
    prev = last;
  }
  if (!sorted) SortSectors(sectors_out);
  sectors_out.erase(std::unique(sectors_out.begin(), sectors_out.end()),
                    sectors_out.end());
}

std::uint64_t IdealSectorCount(std::span<const LaneAccess> accesses,
                               std::uint32_t sector_bytes) {
  std::uint64_t total = 0;
  for (const LaneAccess& a : accesses) total += a.bytes;
  return IdealSectorCountForBytes(total, sector_bytes);
}

}  // namespace dgc::sim

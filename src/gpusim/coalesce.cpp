#include "gpusim/coalesce.h"

#include <algorithm>

namespace dgc::sim {

void CoalesceSectors(std::span<const LaneAccess> accesses,
                     std::uint32_t sector_bytes,
                     std::vector<std::uint64_t>& sectors_out) {
  sectors_out.clear();
  for (const LaneAccess& a : accesses) {
    if (a.bytes == 0) continue;
    const std::uint64_t first = a.addr / sector_bytes;
    const std::uint64_t last = (a.addr + a.bytes - 1) / sector_bytes;
    for (std::uint64_t s = first; s <= last; ++s) sectors_out.push_back(s);
  }
  std::sort(sectors_out.begin(), sectors_out.end());
  sectors_out.erase(std::unique(sectors_out.begin(), sectors_out.end()),
                    sectors_out.end());
}

std::uint64_t IdealSectorCount(std::span<const LaneAccess> accesses,
                               std::uint32_t sector_bytes) {
  std::uint64_t total = 0;
  for (const LaneAccess& a : accesses) total += a.bytes;
  if (total == 0) return 0;
  return (total + sector_bytes - 1) / sector_bytes;
}

}  // namespace dgc::sim

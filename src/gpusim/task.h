// DeviceTask — the coroutine type for simulated device code.
//
// Device functions return DeviceTask<T>. Nested calls use symmetric
// transfer: `co_await Callee(ctx, ...)` starts the callee, and when the
// callee (or anything it awaits) suspends on a timed operation, control
// returns all the way to the warp scheduler, which resumes the *innermost*
// coroutine on the lane's next turn via Lane::top.
//
// Tasks are lazily started and exception-transparent: an exception thrown
// inside device code is captured in the promise and rethrown at the
// awaiting site, or surfaced as a lane failure at the root.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "gpusim/lane.h"
#include "support/status.h"

namespace dgc::sim {

/// Shared state of every device-coroutine promise.
struct PromiseCore {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;
};

namespace detail {

/// Final awaiter: unwind to the continuation (the awaiting caller) via
/// symmetric transfer, or mark the lane's root coroutine finished.
struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }

  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) const noexcept {
    PromiseCore& core = h.promise();
    Lane* lane = CurrentLane();
    if (core.continuation) {
      lane->top = core.continuation;
      return core.continuation;
    }
    lane->MarkRootFinished();
    return std::noop_coroutine();
  }

  void await_resume() const noexcept {}
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] DeviceTask {
 public:
  struct promise_type : PromiseCore {
    T value{};

    DeviceTask get_return_object() {
      return DeviceTask(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    detail::FinalAwaiter final_suspend() noexcept { return {}; }
    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { this->error = std::current_exception(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  DeviceTask() = default;
  explicit DeviceTask(Handle h) : h_(h) {}
  DeviceTask(DeviceTask&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  DeviceTask& operator=(DeviceTask&& o) noexcept {
    if (this != &o) {
      if (h_) h_.destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  DeviceTask(const DeviceTask&) = delete;
  DeviceTask& operator=(const DeviceTask&) = delete;
  ~DeviceTask() {
    if (h_) h_.destroy();
  }

  /// Transfers frame ownership to the caller (used by Lane for roots).
  Handle Release() { return std::exchange(h_, {}); }
  Handle raw() const { return h_; }

  // --- Awaiting a child task -----------------------------------------------
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    DGC_CHECK(h_ && !h_.done());
    h_.promise().continuation = parent;
    CurrentLane()->top = h_;
    return h_;  // symmetric transfer: start the child now
  }
  T await_resume() {
    if (h_.promise().error) std::rethrow_exception(h_.promise().error);
    return std::move(h_.promise().value);
  }

 private:
  Handle h_;
};

template <>
class [[nodiscard]] DeviceTask<void> {
 public:
  struct promise_type : PromiseCore {
    DeviceTask get_return_object() {
      return DeviceTask(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    detail::FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { this->error = std::current_exception(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  DeviceTask() = default;
  explicit DeviceTask(Handle h) : h_(h) {}
  DeviceTask(DeviceTask&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  DeviceTask& operator=(DeviceTask&& o) noexcept {
    if (this != &o) {
      if (h_) h_.destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  DeviceTask(const DeviceTask&) = delete;
  DeviceTask& operator=(const DeviceTask&) = delete;
  ~DeviceTask() {
    if (h_) h_.destroy();
  }

  Handle Release() { return std::exchange(h_, {}); }
  Handle raw() const { return h_; }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    DGC_CHECK(h_ && !h_.done());
    h_.promise().continuation = parent;
    CurrentLane()->top = h_;
    return h_;
  }
  void await_resume() {
    if (h_.promise().error) std::rethrow_exception(h_.promise().error);
  }

 private:
  Handle h_;
};

}  // namespace dgc::sim

#include "gpusim/engine.h"

#include "gpusim/warp.h"

namespace dgc::sim {

void Engine::Schedule(std::uint64_t t, Warp* warp) {
  if (t < now_) t = now_;
  queue_.push(Event{t, seq_++, warp});
}

bool Engine::RunOne() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.t;
  ++dispatched_;
  ev.warp->Turn(ev.t);
  return true;
}

}  // namespace dgc::sim

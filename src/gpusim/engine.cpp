#include "gpusim/engine.h"

#include <algorithm>

#include "gpusim/warp.h"

namespace dgc::sim {

void Engine::Schedule(std::uint64_t t, Warp* warp) {
  if (t < now_) t = now_;
  // Earliest-wake suppression: if the warp already has an undispatched wake
  // queued at or before `t`, this call is a no-op. Turn is time-driven and
  // always re-derives the warp's next wake from lane state before
  // returning (including on turns that had nothing to resume or issue), so
  // the earlier dispatch regenerates any later wake that is still needed.
  // This is what makes multi-source wakes single-shot: a warp woken in the
  // same window by, say, a memsys completion and a barrier release turns
  // exactly once — the old exact-match rule let a later wake slip past an
  // earlier queued one and dispatch a redundant turn.
  // queued_wake_ is therefore the minimum undispatched queued time (marks
  // only decrease between dispatches) and is cleared when that earliest
  // wake dispatches.
  if (warp->queued_wake() <= t) return;
  warp->set_queued_wake(t);
  heap_.push_back(Event{t, seq_++, warp});
  std::push_heap(heap_.begin(), heap_.end(), Later);
}

bool Engine::RunOne() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later);
  const Event ev = heap_.back();
  heap_.pop_back();
  now_ = ev.t;
  ++dispatched_;
  dispatching_seq_ = ev.seq;
  if (ev.warp->queued_wake() == ev.t) ev.warp->clear_queued_wake();
  ev.warp->Turn(ev.t);
  return true;
}

void Engine::CollectPending(std::uint64_t bound,
                            std::vector<Event>& out) const {
  for (const Event& ev : heap_) {
    if (ev.t < bound) out.push_back(ev);
  }
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  });
}

}  // namespace dgc::sim

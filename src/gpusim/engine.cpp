#include "gpusim/engine.h"

#include "gpusim/warp.h"

namespace dgc::sim {

void Engine::Schedule(std::uint64_t t, Warp* warp) {
  if (t < now_) t = now_;
  // Duplicate wake-up suppression: if the warp already has an undispatched
  // wake queued for exactly `t`, this call is semantically a no-op — Turn
  // is time-driven, so the pending dispatch covers everything this one
  // would do, and it runs no later than the duplicate would have. The mark
  // tracks one pending wake per warp and is cleared when that wake
  // dispatches (or overwritten by a different-time enqueue), so the
  // suppression is conservative: it can miss duplicates, never drop a
  // needed turn. Anything that makes a lane runnable after the pending
  // dispatch re-schedules the warp itself (barrier releases call WakeAt).
  if (warp->queued_wake() == t) return;
  warp->set_queued_wake(t);
  queue_.push(Event{t, seq_++, warp});
}

bool Engine::RunOne() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.t;
  ++dispatched_;
  if (ev.warp->queued_wake() == ev.t) ev.warp->clear_queued_wake();
  ev.warp->Turn(ev.t);
  return true;
}

}  // namespace dgc::sim

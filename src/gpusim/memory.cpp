#include "gpusim/memory.h"

#include "support/str.h"
#include "support/units.h"

namespace dgc::sim {

DeviceMemory::DeviceMemory(std::uint64_t capacity, std::uint32_t alignment)
    : capacity_(capacity), alignment_(alignment) {
  DGC_CHECK(alignment_ != 0 && (alignment_ & (alignment_ - 1)) == 0);
}

StatusOr<DeviceBuffer> DeviceMemory::Allocate(std::uint64_t bytes) {
  if (bytes == 0) {
    return Status(ErrorCode::kInvalidArgument, "zero-byte device allocation");
  }
  const std::uint64_t rounded =
      (bytes + alignment_ - 1) & ~std::uint64_t(alignment_ - 1);
  if (bytes_in_use_ + rounded > capacity_) {
    return Status(
        ErrorCode::kOutOfMemory,
        StrFormat("device OOM: requested %s (rounded to %s), in use %s of %s",
                  FormatBytes(bytes).c_str(), FormatBytes(rounded).c_str(),
                  FormatBytes(bytes_in_use_).c_str(),
                  FormatBytes(capacity_).c_str()));
  }

  // First-fit over free holes (ordered by address → deterministic).
  DeviceAddr addr = 0;
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second >= rounded) {
      addr = it->first;
      const std::uint64_t remaining = it->second - rounded;
      free_.erase(it);
      if (remaining > 0) free_.emplace(addr + rounded, remaining);
      break;
    }
  }
  if (addr == 0) {
    addr = frontier_;
    frontier_ += rounded;
  }

  Region region;
  region.bytes = rounded;
  region.storage = std::make_unique<std::byte[]>(rounded);
  region.owner = resolver_ ? resolver_() : -1;
  std::byte* host = region.storage.get();
  OwnerMemStats& owner = owner_stats_[region.owner];
  owner.bytes_in_use += rounded;
  owner.peak_bytes = std::max(owner.peak_bytes, owner.bytes_in_use);
  ++owner.live_allocations;
  ++owner.total_allocations;
  live_.emplace(addr, std::move(region));
  bytes_in_use_ += rounded;
  peak_bytes_ = std::max(peak_bytes_, bytes_in_use_);
  if (listener_ != nullptr) listener_->OnAlloc(addr, bytes, rounded);
  return DeviceBuffer{addr, rounded, host};
}

StatusOr<SharedSegment> DeviceMemory::AcquireShared(std::uint64_t content_key,
                                                    std::uint64_t bytes,
                                                    const std::string& label) {
  if (bytes == 0) {
    return Status(ErrorCode::kInvalidArgument, "zero-byte shared segment");
  }
  const auto key = std::make_pair(content_key, bytes);
  if (auto it = shared_by_key_.find(key); it != shared_by_key_.end()) {
    SharedInfo& info = it->second;
    ++info.refs;
    ++shared_attaches_;
    const Region& region = live_.at(info.addr);
    shared_bytes_saved_ += region.bytes;
    return SharedSegment{
        DeviceBuffer{info.addr, region.bytes, region.storage.get()}, false};
  }
  auto buf = Allocate(bytes);
  if (!buf.ok()) return buf.status();
  shared_by_key_.emplace(key, SharedInfo{buf->addr, 1});
  shared_by_addr_.emplace(buf->addr, key);
  ++shared_materialized_;
  if (listener_ != nullptr) listener_->OnSharedRegion(buf->addr, label);
  return SharedSegment{*buf, true};
}

Status DeviceMemory::Free(DeviceAddr addr) {
  auto it = live_.find(addr);
  if (it == live_.end()) {
    if (listener_ != nullptr) listener_->OnFreeFailed(addr);
    return Status(ErrorCode::kInvalidArgument,
                  StrFormat("free of unknown device address 0x%llx",
                            (unsigned long long)addr));
  }
  // Shared segments: drop one reference; the physical copy survives until
  // the last holder frees it, so app teardown stays uniform.
  if (auto shared = shared_by_addr_.find(addr);
      shared != shared_by_addr_.end()) {
    SharedInfo& info = shared_by_key_.at(shared->second);
    if (--info.refs > 0) return Status::Ok();
    shared_by_key_.erase(shared->second);
    shared_by_addr_.erase(shared);
  }
  std::uint64_t bytes = it->second.bytes;
  OwnerMemStats& owner = owner_stats_[it->second.owner];
  owner.bytes_in_use -= bytes;
  --owner.live_allocations;
  bytes_in_use_ -= bytes;
  live_.erase(it);
  if (listener_ != nullptr) listener_->OnFree(addr, bytes);

  // Insert the hole and coalesce with neighbours.
  auto [hole, inserted] = free_.emplace(addr, bytes);
  DGC_CHECK(inserted);
  // Merge with successor.
  auto next = std::next(hole);
  if (next != free_.end() && hole->first + hole->second == next->first) {
    hole->second += next->second;
    free_.erase(next);
  }
  // Merge with predecessor.
  if (hole != free_.begin()) {
    auto prev = std::prev(hole);
    if (prev->first + prev->second == hole->first) {
      prev->second += hole->second;
      free_.erase(hole);
      hole = prev;
    }
  }
  // Return frontier-adjacent space to the frontier.
  if (hole->first + hole->second == frontier_) {
    frontier_ = hole->first;
    free_.erase(hole);
  }
  return Status::Ok();
}

std::byte* DeviceMemory::HostPtr(DeviceAddr addr) const {
  auto it = live_.upper_bound(addr);
  if (it == live_.begin()) return nullptr;
  --it;
  if (addr >= it->first + it->second.bytes) return nullptr;
  return it->second.storage.get() + (addr - it->first);
}

std::vector<std::pair<DeviceAddr, std::uint64_t>>
DeviceMemory::LiveAllocations() const {
  std::vector<std::pair<DeviceAddr, std::uint64_t>> out;
  out.reserve(live_.size());
  for (const auto& [addr, region] : live_) out.emplace_back(addr, region.bytes);
  return out;
}

bool DeviceMemory::Contains(DeviceAddr addr, std::uint64_t bytes) const {
  auto it = live_.upper_bound(addr);
  if (it == live_.begin()) return false;
  --it;
  // Tight semantics: `addr` itself must be inside the allocation, so the
  // one-past-the-end address is never contained — not even for an empty
  // range. Written without `addr + bytes` to stay overflow-safe.
  const DeviceAddr end = it->first + it->second.bytes;
  return addr >= it->first && addr < end && bytes <= end - addr;
}

DeviceMemSnapshot DeviceMemory::Snapshot() const {
  DeviceMemSnapshot snap;
  snap.capacity = capacity_;
  snap.bytes_in_use = bytes_in_use_;
  snap.peak_bytes = peak_bytes_;
  snap.allocation_count = live_.size();
  snap.shared_live = shared_by_addr_.size();
  snap.shared_materialized = shared_materialized_;
  snap.shared_attaches = shared_attaches_;
  snap.shared_bytes_saved = shared_bytes_saved_;
  return snap;
}

}  // namespace dgc::sim

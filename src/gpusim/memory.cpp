#include "gpusim/memory.h"

#include "support/str.h"
#include "support/units.h"

namespace dgc::sim {

DeviceMemory::DeviceMemory(std::uint64_t capacity, std::uint32_t alignment)
    : capacity_(capacity), alignment_(alignment) {
  DGC_CHECK(alignment_ != 0 && (alignment_ & (alignment_ - 1)) == 0);
}

StatusOr<DeviceBuffer> DeviceMemory::Allocate(std::uint64_t bytes) {
  if (bytes == 0) {
    return Status(ErrorCode::kInvalidArgument, "zero-byte device allocation");
  }
  const std::uint64_t rounded =
      (bytes + alignment_ - 1) & ~std::uint64_t(alignment_ - 1);
  if (bytes_in_use_ + rounded > capacity_) {
    return Status(ErrorCode::kOutOfMemory,
                  StrFormat("device OOM: requested %s, in use %s of %s",
                            FormatBytes(rounded).c_str(),
                            FormatBytes(bytes_in_use_).c_str(),
                            FormatBytes(capacity_).c_str()));
  }

  // First-fit over free holes (ordered by address → deterministic).
  DeviceAddr addr = 0;
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second >= rounded) {
      addr = it->first;
      const std::uint64_t remaining = it->second - rounded;
      free_.erase(it);
      if (remaining > 0) free_.emplace(addr + rounded, remaining);
      break;
    }
  }
  if (addr == 0) {
    addr = frontier_;
    frontier_ += rounded;
  }

  Region region;
  region.bytes = rounded;
  region.storage = std::make_unique<std::byte[]>(rounded);
  std::byte* host = region.storage.get();
  live_.emplace(addr, std::move(region));
  bytes_in_use_ += rounded;
  peak_bytes_ = std::max(peak_bytes_, bytes_in_use_);
  if (listener_ != nullptr) listener_->OnAlloc(addr, bytes, rounded);
  return DeviceBuffer{addr, rounded, host};
}

Status DeviceMemory::Free(DeviceAddr addr) {
  auto it = live_.find(addr);
  if (it == live_.end()) {
    if (listener_ != nullptr) listener_->OnFreeFailed(addr);
    return Status(ErrorCode::kInvalidArgument,
                  StrFormat("free of unknown device address 0x%llx",
                            (unsigned long long)addr));
  }
  std::uint64_t bytes = it->second.bytes;
  bytes_in_use_ -= bytes;
  live_.erase(it);
  if (listener_ != nullptr) listener_->OnFree(addr, bytes);

  // Insert the hole and coalesce with neighbours.
  auto [hole, inserted] = free_.emplace(addr, bytes);
  DGC_CHECK(inserted);
  // Merge with successor.
  auto next = std::next(hole);
  if (next != free_.end() && hole->first + hole->second == next->first) {
    hole->second += next->second;
    free_.erase(next);
  }
  // Merge with predecessor.
  if (hole != free_.begin()) {
    auto prev = std::prev(hole);
    if (prev->first + prev->second == hole->first) {
      prev->second += hole->second;
      free_.erase(hole);
      hole = prev;
    }
  }
  // Return frontier-adjacent space to the frontier.
  if (hole->first + hole->second == frontier_) {
    frontier_ = hole->first;
    free_.erase(hole);
  }
  return Status::Ok();
}

std::byte* DeviceMemory::HostPtr(DeviceAddr addr) const {
  auto it = live_.upper_bound(addr);
  if (it == live_.begin()) return nullptr;
  --it;
  if (addr >= it->first + it->second.bytes) return nullptr;
  return it->second.storage.get() + (addr - it->first);
}

std::vector<std::pair<DeviceAddr, std::uint64_t>>
DeviceMemory::LiveAllocations() const {
  std::vector<std::pair<DeviceAddr, std::uint64_t>> out;
  out.reserve(live_.size());
  for (const auto& [addr, region] : live_) out.emplace_back(addr, region.bytes);
  return out;
}

bool DeviceMemory::Contains(DeviceAddr addr, std::uint64_t bytes) const {
  auto it = live_.upper_bound(addr);
  if (it == live_.begin()) return false;
  --it;
  return addr >= it->first && addr + bytes <= it->first + it->second.bytes;
}

}  // namespace dgc::sim

#include "gpusim/occupancy.h"

#include <algorithm>

namespace dgc::sim {

StatusOr<Occupancy> ComputeOccupancy(const DeviceSpec& spec,
                                     const LaunchConfig& config) {
  const std::uint64_t threads = config.block.Count();
  if (threads == 0 || config.grid.Count() == 0) {
    return Status(ErrorCode::kInvalidArgument, "empty grid or block");
  }
  if (threads > std::uint64_t(spec.max_threads_per_block)) {
    return Status(ErrorCode::kInvalidArgument,
                  "block exceeds max_threads_per_block");
  }
  if (config.shared_bytes > spec.shared_memory_per_block) {
    return Status(ErrorCode::kInvalidArgument,
                  "shared memory exceeds the per-block limit");
  }

  Occupancy occ;
  occ.warps_per_block = spec.WarpsPerBlock(int(threads));
  if (occ.warps_per_block > spec.max_warps_per_sm) {
    return Status(ErrorCode::kInvalidArgument,
                  "block needs more warp contexts than an SM has");
  }

  const int by_slots = spec.max_blocks_per_sm;
  const int by_warps = spec.max_warps_per_sm / occ.warps_per_block;
  // The SM's shared-memory pool is modelled as per-block-limit × slots
  // (see SM::CanHost); zero shared usage never limits.
  const std::uint64_t smem_pool =
      std::uint64_t(spec.shared_memory_per_block) *
      std::uint64_t(spec.max_blocks_per_sm);
  const int by_smem =
      config.shared_bytes == 0
          ? by_slots
          : int(std::min<std::uint64_t>(smem_pool / config.shared_bytes,
                                        std::uint64_t(by_slots)));

  occ.blocks_per_sm = std::min({by_slots, by_warps, by_smem});
  if (occ.blocks_per_sm == by_warps && by_warps < by_slots) {
    occ.limiter = "warp contexts";
  } else if (occ.blocks_per_sm == by_smem && by_smem < by_slots) {
    occ.limiter = "shared memory";
  } else {
    occ.limiter = "block slots";
  }
  occ.warps_per_sm = occ.blocks_per_sm * occ.warps_per_block;
  occ.warp_occupancy = double(occ.warps_per_sm) / double(spec.max_warps_per_sm);
  occ.resident_blocks =
      std::uint64_t(occ.blocks_per_sm) * std::uint64_t(spec.num_sms);
  occ.waves =
      (config.grid.Count() + occ.resident_blocks - 1) / occ.resident_blocks;
  return occ;
}

}  // namespace dgc::sim

#include "gpusim/memsys.h"

#include <algorithm>
#include <cmath>

#include "support/status.h"

namespace dgc::sim {
namespace {

/// Converts a per-sector service time (bytes / rate cycles) to fixed
/// point, rounding to nearest. The value is computed once per device, so
/// every accumulation step afterwards is exact integer arithmetic.
std::uint64_t FpService(double bytes, double bytes_per_cycle) {
  return std::uint64_t(
      std::llround(bytes * double(MemorySystem::kFpOne) / bytes_per_cycle));
}

bool IsPow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::uint32_t Log2(std::uint64_t v) {
  std::uint32_t s = 0;
  while ((std::uint64_t(1) << s) < v) ++s;
  return s;
}

}  // namespace

MemorySystem::MemorySystem(const DeviceSpec& spec)
    : spec_(spec),
      l2_(spec.l2_bytes, spec.sector_bytes, spec.l2_ways),
      channels_(spec.dram_channels) {
  l1_.reserve(std::size_t(spec.num_sms));
  for (int i = 0; i < spec.num_sms; ++i) {
    l1_.emplace_back(spec.l1_bytes, spec.sector_bytes, spec.l1_ways);
  }
  for (auto& ch : channels_) {
    ch.open_row.assign(spec.dram_banks_per_channel, ~std::uint64_t(0));
  }
  const std::uint64_t sectors_per_row =
      spec.dram_row_bytes / spec.sector_bytes;
  pow2_geometry_ = IsPow2(channels_.size()) &&
                   IsPow2(spec.dram_banks_per_channel) &&
                   spec.dram_row_bytes % spec.sector_bytes == 0 &&
                   IsPow2(sectors_per_row);
  if (pow2_geometry_) {
    channel_mask_ = std::uint32_t(channels_.size() - 1);
    channel_shift_ = Log2(channels_.size());
    row_shift_ = Log2(sectors_per_row);
    bank_mask_ = spec.dram_banks_per_channel - 1;
  }
  if (IsPow2(spec.smem_banks)) smem_bank_mask_ = spec.smem_banks - 1;
  l2_service_fp_ = FpService(spec.sector_bytes, spec.l2_bytes_per_cycle);
  // Per-channel rate is the device rate split evenly across channels, so a
  // sector occupies its channel for sector_bytes * channels / device_rate.
  dram_service_fp_ =
      FpService(double(spec.sector_bytes) * double(channels_.size()),
                spec.dram_bytes_per_cycle);
}

std::uint64_t MemorySystem::Access(int sm_id,
                                   std::span<const std::uint64_t> sectors,
                                   bool is_store, std::uint64_t now,
                                   LaunchStats& stats) {
  DGC_CHECK(sm_id >= 0 && std::size_t(sm_id) < l1_.size());
  std::uint64_t completion = now + spec_.l1_latency;  // at least an L1 trip
  SectorCache& l1 = l1_[std::size_t(sm_id)];
  const std::uint64_t now_fp = now << kFpBits;
  ++access_stamp_;
  bool l2_charged = false;
  // Counter deltas accumulate in registers across the sector loop and
  // flush once — `stats` may be a profiler bucket the compiler cannot
  // prove distinct from the hierarchy state it would otherwise reload.
  std::uint64_t l1_hits = 0, l1_misses = 0, l2_hits = 0, l2_misses = 0;
  std::uint64_t row_hits = 0, row_misses = 0, dram_sectors = 0;
  std::uint64_t l2_queue = 0, dram_queue = 0;

  for (std::uint64_t sector : sectors) {
    // L1: stores write through (they still allocate, modelling sector fill).
    const bool l1_hit = l1.Access(sector);
    if (l1_hit) ++l1_hits; else ++l1_misses;
    if (l1_hit && !is_store) {
      completion = std::max(completion, now + spec_.l1_latency);
      continue;
    }

    // L2: shared bandwidth — sectors serialize on the (fast) L2 port. The
    // instruction's queue charge is the port backlog found on arrival,
    // counted once (its own earlier sectors are service, not queueing).
    if (!l2_charged) {
      if (l2_busy_until_fp_ > now_fp) {
        l2_queue += (l2_busy_until_fp_ - now_fp) >> kFpBits;
      }
      l2_charged = true;
    }
    l2_busy_until_fp_ = std::max(l2_busy_until_fp_, now_fp) + l2_service_fp_;
    const bool l2_hit = l2_.Access(sector);
    if (l2_hit) ++l2_hits; else ++l2_misses;
    if (l2_hit) {
      completion = std::max(
          completion, (l2_busy_until_fp_ >> kFpBits) + spec_.l2_latency);
      continue;
    }

    // DRAM: sectors interleave across channels; within a channel, the
    // *channel-local* address picks the row (so a sequential stream walks
    // one open row) and the row picks the bank. Concurrent streams from
    // different heap allocations hit different rows, thrash the banks'
    // open rows, and pay the activation penalty — §4.3's effect.
    // Channel/row/bank indices; shifts and masks on the (ubiquitous)
    // power-of-two geometry, div/mod otherwise — same values either way.
    Channel& ch = channels_[pow2_geometry_ ? sector & channel_mask_
                                           : sector % channels_.size()];
    const std::uint64_t local =
        pow2_geometry_ ? sector >> channel_shift_ : sector / channels_.size();
    const std::uint64_t row =
        pow2_geometry_ ? local >> row_shift_
                       : local * spec_.sector_bytes / spec_.dram_row_bytes;
    std::uint64_t& open_row =
        ch.open_row[pow2_geometry_ ? row & bank_mask_
                                   : row % ch.open_row.size()];
    std::uint64_t latency = spec_.dram_latency;
    if (open_row == row) {
      ++row_hits;
    } else {
      ++row_misses;
      latency += spec_.dram_row_miss_penalty;
      open_row = row;
    }
    if (ch.charge_stamp != access_stamp_) {
      // Channel backlog at instruction arrival — the direct signature of
      // bandwidth saturation. Charged once per channel per instruction.
      if (ch.busy_until_fp > now_fp) {
        dram_queue += (ch.busy_until_fp - now_fp) >> kFpBits;
      }
      ch.charge_stamp = access_stamp_;
    }
    ch.busy_until_fp = std::max(ch.busy_until_fp, now_fp) + dram_service_fp_;
    ++dram_sectors;
    completion = std::max(
        completion,
        (ch.busy_until_fp >> kFpBits) + latency + spec_.l2_latency);
  }
  stats.l1_hits += l1_hits;
  stats.l1_misses += l1_misses;
  stats.l2_hits += l2_hits;
  stats.l2_misses += l2_misses;
  stats.dram_row_hits += row_hits;
  stats.dram_row_misses += row_misses;
  stats.dram_bytes += dram_sectors * spec_.sector_bytes;
  stats.l2_queue_cycles += l2_queue;
  stats.dram_queue_cycles += dram_queue;
  return completion;
}

std::uint32_t MemorySystem::SharedConflictDegree(
    std::span<const std::uint64_t> addrs,
    std::vector<std::uint64_t>& words_scratch,
    std::vector<std::uint32_t>& bank_scratch) const {
  if (addrs.empty()) return 0;
  // Bank-conflict model: lanes touching distinct 4-byte words in the same
  // bank serialize; the instruction takes conflict_degree bank cycles.
  words_scratch.assign(addrs.begin(), addrs.end());
  for (auto& a : words_scratch) a /= 4;
  std::sort(words_scratch.begin(), words_scratch.end());
  words_scratch.erase(std::unique(words_scratch.begin(), words_scratch.end()),
                      words_scratch.end());

  bank_scratch.assign(spec_.smem_banks, 0);
  if (smem_bank_mask_ != 0) {
    for (std::uint64_t w : words_scratch) ++bank_scratch[w & smem_bank_mask_];
  } else {
    for (std::uint64_t w : words_scratch) ++bank_scratch[w % spec_.smem_banks];
  }
  std::uint32_t degree = 1;
  for (std::uint32_t c : bank_scratch) {
    degree = std::max(degree, std::max(c, 1u));
  }
  return degree;
}

std::uint64_t MemorySystem::AccessShared(std::span<const std::uint64_t> addrs,
                                         std::uint64_t now, LaunchStats& stats,
                                         bool charge) {
  const std::uint32_t degree =
      std::max(SharedConflictDegree(addrs, smem_words_, smem_per_bank_), 1u);
  if (charge) {
    stats.smem_accesses += addrs.size();
    stats.smem_bank_conflicts += degree - 1;
  }
  return now + spec_.smem_latency + (degree - 1);
}

void MemorySystem::Reset() {
  for (auto& c : l1_) c.Clear();
  l2_.Clear();
  l2_busy_until_fp_ = 0;
  access_stamp_ = 0;
  for (auto& ch : channels_) {
    ch.busy_until_fp = 0;
    ch.charge_stamp = 0;
    ch.open_row.assign(spec_.dram_banks_per_channel, ~std::uint64_t(0));
  }
}

}  // namespace dgc::sim

#include "gpusim/memsys.h"

#include <algorithm>

#include "support/status.h"

namespace dgc::sim {

MemorySystem::MemorySystem(const DeviceSpec& spec)
    : spec_(spec),
      l2_(spec.l2_bytes, spec.sector_bytes, spec.l2_ways),
      channels_(spec.dram_channels) {
  l1_.reserve(std::size_t(spec.num_sms));
  for (int i = 0; i < spec.num_sms; ++i) {
    l1_.emplace_back(spec.l1_bytes, spec.sector_bytes, spec.l1_ways);
  }
  for (auto& ch : channels_) {
    ch.open_row.assign(spec.dram_banks_per_channel, ~std::uint64_t(0));
  }
}

std::uint64_t MemorySystem::Access(int sm_id,
                                   std::span<const std::uint64_t> sectors,
                                   bool is_store, std::uint64_t now,
                                   LaunchStats& stats) {
  DGC_CHECK(sm_id >= 0 && std::size_t(sm_id) < l1_.size());
  std::uint64_t completion = now + spec_.l1_latency;  // at least an L1 trip
  SectorCache& l1 = l1_[std::size_t(sm_id)];

  for (std::uint64_t sector : sectors) {
    // L1: stores write through (they still allocate, modelling sector fill).
    const bool l1_hit = l1.Access(sector);
    if (l1_hit) ++stats.l1_hits; else ++stats.l1_misses;
    if (l1_hit && !is_store) {
      completion = std::max(completion, now + spec_.l1_latency);
      continue;
    }

    // L2: shared bandwidth — sectors serialize on the (fast) L2 port.
    const double l2_service =
        double(spec_.sector_bytes) / spec_.l2_bytes_per_cycle;
    if (l2_busy_until_ > double(now)) {
      // Port already busy: this sector queues. Whole cycles per sector.
      stats.l2_queue_cycles += std::uint64_t(l2_busy_until_ - double(now));
    }
    l2_busy_until_ = std::max(l2_busy_until_, double(now)) + l2_service;
    const bool l2_hit = l2_.Access(sector);
    if (l2_hit) ++stats.l2_hits; else ++stats.l2_misses;
    if (l2_hit) {
      completion = std::max(
          completion, std::uint64_t(l2_busy_until_) + spec_.l2_latency);
      continue;
    }

    // DRAM: sectors interleave across channels; within a channel, the
    // *channel-local* address picks the row (so a sequential stream walks
    // one open row) and the row picks the bank. Concurrent streams from
    // different heap allocations hit different rows, thrash the banks'
    // open rows, and pay the activation penalty — §4.3's effect.
    Channel& ch = channels_[sector % channels_.size()];
    const std::uint64_t local = sector / channels_.size();
    const std::uint64_t row =
        local * spec_.sector_bytes / spec_.dram_row_bytes;
    std::uint64_t& open_row = ch.open_row[row % ch.open_row.size()];
    std::uint64_t latency = spec_.dram_latency;
    if (open_row == row) {
      ++stats.dram_row_hits;
    } else {
      ++stats.dram_row_misses;
      latency += spec_.dram_row_miss_penalty;
      open_row = row;
    }
    const double channel_rate =
        spec_.dram_bytes_per_cycle / double(channels_.size());
    const double service = double(spec_.sector_bytes) / channel_rate;
    if (ch.busy_until > double(now)) {
      // Channel backlog — the direct signature of bandwidth saturation.
      stats.dram_queue_cycles += std::uint64_t(ch.busy_until - double(now));
    }
    ch.busy_until = std::max(ch.busy_until, double(now)) + service;
    stats.dram_bytes += spec_.sector_bytes;
    completion = std::max(
        completion, std::uint64_t(ch.busy_until) + latency + spec_.l2_latency);
  }
  return completion;
}

std::uint64_t MemorySystem::AccessShared(std::span<const std::uint64_t> addrs,
                                         std::uint64_t now,
                                         LaunchStats& stats) {
  // Bank-conflict model: lanes touching distinct 4-byte words in the same
  // bank serialize; the instruction takes conflict_degree bank cycles.
  std::vector<std::uint64_t> words(addrs.begin(), addrs.end());
  for (auto& a : words) a /= 4;
  std::sort(words.begin(), words.end());
  words.erase(std::unique(words.begin(), words.end()), words.end());

  std::vector<std::uint32_t> per_bank(spec_.smem_banks, 0);
  for (std::uint64_t w : words) ++per_bank[w % spec_.smem_banks];
  std::uint32_t degree = 1;
  for (std::uint32_t c : per_bank) degree = std::max(degree, std::max(c, 1u));

  stats.smem_accesses += addrs.size();
  stats.smem_bank_conflicts += degree - 1;
  return now + spec_.smem_latency + (degree - 1);
}

void MemorySystem::Reset() {
  for (auto& c : l1_) c.Clear();
  l2_.Clear();
  l2_busy_until_ = 0;
  for (auto& ch : channels_) {
    ch.busy_until = 0;
    ch.open_row.assign(spec_.dram_banks_per_channel, ~std::uint64_t(0));
  }
}

}  // namespace dgc::sim

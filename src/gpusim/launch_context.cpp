#include "gpusim/launch_context.h"

#include <algorithm>

#include "gpusim/block.h"
#include "gpusim/profiler.h"
#include "gpusim/spec_team.h"
#include "gpusim/warp.h"
#include "support/str.h"

namespace dgc::sim {

namespace {
constexpr std::uint64_t kMaxRecordedFailures = 16;
/// Default speculation window (cycles). Large enough that a window spans
/// many turns per warp (one speculated each), small enough that shards
/// re-merge before their views of global time drift apart.
constexpr std::uint64_t kDefaultLaunchWindowCycles = 2048;
}

LaunchContext::LaunchContext(const DeviceSpec& spec_in, MemorySystem& memsys_in,
                             const LaunchConfig& config_in,
                             const KernelFn& kernel_in)
    : spec(spec_in), memsys(memsys_in), config(config_in), kernel(kernel_in) {
  sms_.reserve(std::size_t(spec.num_sms));
  for (int i = 0; i < spec.num_sms; ++i) sms_.emplace_back(i, spec);
  total_blocks_ = config.grid.Count();
  warps_per_block_ =
      spec.WarpsPerBlock(int(config.block.Count()));
}

LaunchContext::~LaunchContext() = default;

Status LaunchContext::Run() {
  Profiler* profiler = config.profiler;
  if (profiler != nullptr) profiler->OnLaunchBegin(spec);
  TrySchedule(0);
  const unsigned threads = EffectiveLaunchThreads();
  if (threads <= 1) {
    DrainEvents();
  } else {
    DrainEventsThreaded(threads);
  }
  if (done_blocks_ != total_blocks_) {
    outcome = LaunchOutcome::kDeadlocked;
    ++failure_count;
    if (failures.size() < kMaxRecordedFailures) {
      failures.push_back(
          StrFormat("kernel '%s' deadlocked: %llu of %llu blocks retired "
                    "(a lane is blocked on a barrier that can never release)",
                    config.name, (unsigned long long)done_blocks_,
                    (unsigned long long)total_blocks_));
    }
  }
  if (profiler != nullptr) {
    profiler->OnLaunchEnd(engine.now(), ActiveWarps(), ResidentBlocks(),
                          instance_buckets_);
    // Fold the buckets back so the launch-global totals are identical to a
    // non-profiled run (buckets carry elapsed_cycles = 0, set below).
    for (const LaunchStats& bucket : instance_buckets_) {
      stats.AccumulateSequential(bucket);
    }
  }
  stats.elapsed_cycles = engine.now();
  stats.blocks_launched = next_block_;
  return Status::Ok();
}

unsigned LaunchContext::EffectiveLaunchThreads() const {
  unsigned threads = config.launch_threads;
  // Shards partition SMs, so more threads than SMs cannot help. Multi-warp
  // blocks and fault plans no longer force a serial fallback: the walker's
  // earliest-block-event rule makes multi-warp speculation safe, and fault
  // plans serialize only the turns with a pending trap site
  // (Warp::CanSpeculate is trap-site-aware).
  threads = std::min(threads, unsigned(spec.num_sms));
  return std::max(threads, 1u);
}

void LaunchContext::DrainEvents() {
  Profiler* profiler = config.profiler;
  while (true) {
    const std::uint64_t t_next = engine.next_event_time();
    if (t_next == Engine::kNoEvent) break;
    // Sample boundaries are crossed between events, never inside one, so
    // profiling cannot perturb event order (determinism).
    if (profiler != nullptr && profiler->NeedsSampleBefore(t_next)) {
      profiler->AdvanceTo(t_next, ActiveWarps(), ResidentBlocks(),
                          instance_buckets_);
    }
    engine.RunOne();
  }
}

void LaunchContext::DrainEventsThreaded(unsigned threads) {
  Profiler* profiler = config.profiler;
  const std::uint64_t window_cycles = config.launch_window_cycles != 0
                                          ? config.launch_window_cycles
                                          : kDefaultLaunchWindowCycles;
  std::vector<Engine::Event> window;
  std::vector<std::vector<Engine::Event>> shards(threads);
  std::vector<std::uint64_t> shard_specs(threads);
  // Shard-local commit: each worker charges its speculated turns'
  // partition-derived counters into its own bucket, written only inside
  // team.Run() (a full barrier), so there is never concurrent access. The
  // buckets are folded into the launch totals once, in shard order, after
  // the drain — every counter is a sum, so the fold order does not affect
  // the result, and the serial totals are reproduced exactly. Disabled
  // under a profiler: per-instance attribution needs each bump in its
  // instance bucket, which only the commit turn can select.
  std::vector<LaunchStats> shard_stats(profiler == nullptr ? threads : 0);
  std::uint64_t round_stamp = 0;
  // The per-round fan-out: shard s's worker walks its (t, seq)-sorted
  // events and speculatively resumes each *block's* earliest one (the
  // per-block stamp dedups later same-block events — with sibling warps a
  // later event's state could otherwise be mutated by the earlier commit).
  // No engine, memsys, launch-global stats, or profiler state is touched
  // here — those stay commit-thread-only. The team's workers persist
  // across rounds and windows, parked on an atomic generation counter:
  // rounds are microseconds of work, so handing them to a mutex/condvar
  // pool would cost more than it distributes (see spec_team.h).
  SpecTeam team(threads - 1, threads, [&](unsigned s) {
    std::uint64_t specs = 0;
    LaunchStats* bucket = shard_stats.empty() ? nullptr : &shard_stats[s];
    for (const Engine::Event& ev : shards[s]) {
      Block* block = ev.warp->block();
      if (block->spec_round_stamp == round_stamp) continue;
      block->spec_round_stamp = round_stamp;
      if (!ev.warp->CanSpeculate(ev.t)) continue;
      ev.warp->SpeculativeResume(ev.t, ev.seq, bucket);
      ++specs;
    }
    shard_specs[s] = specs;
  });
  while (true) {
    const std::uint64_t t0 = engine.next_event_time();
    if (t0 == Engine::kNoEvent) break;
    const std::uint64_t t_end = t0 < Engine::kNoEvent - window_cycles
                                    ? t0 + window_cycles
                                    : Engine::kNoEvent;

    // Rounds within the window: each round speculates the earliest queued
    // event of every eligible warp in parallel, then commits in global
    // order until those speculations are all adopted — at which point the
    // committed turns have scheduled fresh events worth speculating, so
    // the next round re-collects. Without rounds only one turn per warp
    // per window would overlap; with them nearly every turn does.
    while (true) {
      std::uint64_t t_next = engine.next_event_time();
      if (t_next == Engine::kNoEvent || t_next >= t_end) break;
      window.clear();
      engine.CollectPending(t_end, window);
      ++round_stamp;

      // Partition the round's events by SM shard. A block never migrates
      // SMs, so a warp maps to one shard and its state is touched by
      // exactly one worker.
      for (auto& shard : shards) shard.clear();
      for (const Engine::Event& ev : window) {
        const unsigned sm = unsigned(ev.warp->block()->sm()->id());
        shards[sm * threads / unsigned(spec.num_sms)].push_back(ev);
      }

      team.Run();
      specs_pending = 0;
      for (const std::uint64_t c : shard_specs) specs_pending += c;
      const bool none_speculated = specs_pending == 0;

      // Commit phase — the deterministic merge barrier: replay events on
      // one thread in exact (cycle, insertion-seq) order, exactly the
      // serial loop with a window bound. Turns consume their speculation
      // or resume inline; either way every launch-global effect (memory
      // system charges, stats, traces, barrier releases, block
      // retirement, fenced host effects) lands in serial order. The round
      // ends once every speculation is adopted; if nothing was speculable
      // the rest of the window drains serially (rounds would spin).
      while (true) {
        t_next = engine.next_event_time();
        if (t_next == Engine::kNoEvent || t_next >= t_end) break;
        if (!none_speculated && specs_pending == 0) break;
        if (profiler != nullptr && profiler->NeedsSampleBefore(t_next)) {
          profiler->AdvanceTo(t_next, ActiveWarps(), ResidentBlocks(),
                              instance_buckets_);
        }
        engine.RunOne();
      }
    }
  }
  // Fold the shard buckets (spec-time charges) into the launch totals.
  // Buckets carry elapsed_cycles = 0, so AccumulateSequential adds pure
  // counters; Run() stamps elapsed/blocks afterward as usual.
  for (const LaunchStats& bucket : shard_stats) {
    stats.AccumulateSequential(bucket);
  }
}

LaunchStats& LaunchContext::IssueStats(std::uint32_t block,
                                       std::uint32_t thread) {
  if (config.profiler == nullptr) return stats;
  std::int32_t instance = -1;
  if (config.instance_of) instance = config.instance_of(block, thread);
  const std::size_t index = std::size_t(instance + 1);
  if (instance_buckets_.size() <= index) instance_buckets_.resize(index + 1);
  return instance_buckets_[index];
}

std::uint32_t LaunchContext::ActiveWarps() const {
  std::uint32_t total = 0;
  for (const SM& sm : sms_) total += std::uint32_t(sm.resident_warps());
  return total;
}

std::uint32_t LaunchContext::ResidentBlocks() const {
  std::uint32_t total = 0;
  for (const SM& sm : sms_) total += std::uint32_t(sm.resident_blocks());
  return total;
}

void LaunchContext::OnBlockFinished(Block* block, std::uint64_t now) {
  block->sm()->RemoveBlock(warps_per_block_, config.shared_bytes);
  ++done_blocks_;
  TrySchedule(now);
}

void LaunchContext::RecordFailure(std::uint32_t block, std::uint32_t thread,
                                  TrapKind kind, const std::string& what) {
  ++failure_count;
  if (kind == TrapKind::kWatchdog) {
    ++IssueStats(block, thread).watchdog_traps;
  } else if (kind != TrapKind::kNone) {
    ++IssueStats(block, thread).lane_traps;
  }
  if (failures.size() >= kMaxRecordedFailures) return;
  std::string prefix;
  if (config.instance_of) {
    const std::int32_t instance = config.instance_of(block, thread);
    if (instance >= 0) prefix = StrFormat("instance=%d ", instance);
  }
  failures.push_back(StrFormat("%sblock %u thread %u: %s", prefix.c_str(),
                               block, thread, what.c_str()));
}

void LaunchContext::TrySchedule(std::uint64_t now) {
  while (next_block_ < total_blocks_) {
    // Least-loaded SM that can host the block (lowest id breaks ties).
    SM* best = nullptr;
    for (SM& sm : sms_) {
      if (!sm.CanHost(warps_per_block_, config.shared_bytes)) continue;
      if (best == nullptr || sm.resident_warps() < best->resident_warps()) {
        best = &sm;
      }
    }
    if (best == nullptr) return;
    best->AddBlock(warps_per_block_, config.shared_bytes);
    auto block = std::make_unique<Block>(this, std::uint32_t(next_block_), best);
    block->Start(now);
    blocks_.push_back(std::move(block));
    ++next_block_;
  }
}

}  // namespace dgc::sim

#include "gpusim/launch_context.h"

#include "gpusim/block.h"
#include "gpusim/profiler.h"
#include "support/str.h"

namespace dgc::sim {

namespace {
constexpr std::uint64_t kMaxRecordedFailures = 16;
}

LaunchContext::LaunchContext(const DeviceSpec& spec_in, MemorySystem& memsys_in,
                             const LaunchConfig& config_in,
                             const KernelFn& kernel_in)
    : spec(spec_in), memsys(memsys_in), config(config_in), kernel(kernel_in) {
  sms_.reserve(std::size_t(spec.num_sms));
  for (int i = 0; i < spec.num_sms; ++i) sms_.emplace_back(i, spec);
  total_blocks_ = config.grid.Count();
  warps_per_block_ =
      spec.WarpsPerBlock(int(config.block.Count()));
}

LaunchContext::~LaunchContext() = default;

Status LaunchContext::Run() {
  Profiler* profiler = config.profiler;
  if (profiler != nullptr) profiler->OnLaunchBegin(spec);
  TrySchedule(0);
  while (true) {
    const std::uint64_t t_next = engine.next_event_time();
    if (t_next == Engine::kNoEvent) break;
    // Sample boundaries are crossed between events, never inside one, so
    // profiling cannot perturb event order (determinism).
    if (profiler != nullptr && profiler->NeedsSampleBefore(t_next)) {
      profiler->AdvanceTo(t_next, ActiveWarps(), ResidentBlocks(),
                          instance_buckets_);
    }
    engine.RunOne();
  }
  if (done_blocks_ != total_blocks_) {
    outcome = LaunchOutcome::kDeadlocked;
    ++failure_count;
    if (failures.size() < kMaxRecordedFailures) {
      failures.push_back(
          StrFormat("kernel '%s' deadlocked: %llu of %llu blocks retired "
                    "(a lane is blocked on a barrier that can never release)",
                    config.name, (unsigned long long)done_blocks_,
                    (unsigned long long)total_blocks_));
    }
  }
  if (profiler != nullptr) {
    profiler->OnLaunchEnd(engine.now(), ActiveWarps(), ResidentBlocks(),
                          instance_buckets_);
    // Fold the buckets back so the launch-global totals are identical to a
    // non-profiled run (buckets carry elapsed_cycles = 0, set below).
    for (const LaunchStats& bucket : instance_buckets_) {
      stats.AccumulateSequential(bucket);
    }
  }
  stats.elapsed_cycles = engine.now();
  stats.blocks_launched = next_block_;
  return Status::Ok();
}

LaunchStats& LaunchContext::IssueStats(std::uint32_t block,
                                       std::uint32_t thread) {
  if (config.profiler == nullptr) return stats;
  std::int32_t instance = -1;
  if (config.instance_of) instance = config.instance_of(block, thread);
  const std::size_t index = std::size_t(instance + 1);
  if (instance_buckets_.size() <= index) instance_buckets_.resize(index + 1);
  return instance_buckets_[index];
}

std::uint32_t LaunchContext::ActiveWarps() const {
  std::uint32_t total = 0;
  for (const SM& sm : sms_) total += std::uint32_t(sm.resident_warps());
  return total;
}

std::uint32_t LaunchContext::ResidentBlocks() const {
  std::uint32_t total = 0;
  for (const SM& sm : sms_) total += std::uint32_t(sm.resident_blocks());
  return total;
}

void LaunchContext::OnBlockFinished(Block* block, std::uint64_t now) {
  block->sm()->RemoveBlock(warps_per_block_, config.shared_bytes);
  ++done_blocks_;
  TrySchedule(now);
}

void LaunchContext::RecordFailure(std::uint32_t block, std::uint32_t thread,
                                  TrapKind kind, const std::string& what) {
  ++failure_count;
  if (kind == TrapKind::kWatchdog) {
    ++IssueStats(block, thread).watchdog_traps;
  } else if (kind != TrapKind::kNone) {
    ++IssueStats(block, thread).lane_traps;
  }
  if (failures.size() >= kMaxRecordedFailures) return;
  std::string prefix;
  if (config.instance_of) {
    const std::int32_t instance = config.instance_of(block, thread);
    if (instance >= 0) prefix = StrFormat("instance=%d ", instance);
  }
  failures.push_back(StrFormat("%sblock %u thread %u: %s", prefix.c_str(),
                               block, thread, what.c_str()));
}

void LaunchContext::TrySchedule(std::uint64_t now) {
  while (next_block_ < total_blocks_) {
    // Least-loaded SM that can host the block (lowest id breaks ties).
    SM* best = nullptr;
    for (SM& sm : sms_) {
      if (!sm.CanHost(warps_per_block_, config.shared_bytes)) continue;
      if (best == nullptr || sm.resident_warps() < best->resident_warps()) {
        best = &sm;
      }
    }
    if (best == nullptr) return;
    best->AddBlock(warps_per_block_, config.shared_bytes);
    auto block = std::make_unique<Block>(this, std::uint32_t(next_block_), best);
    block->Start(now);
    blocks_.push_back(std::move(block));
    ++next_block_;
  }
}

}  // namespace dgc::sim

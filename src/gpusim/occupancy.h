// Occupancy calculator: how a launch configuration maps onto the device's
// SM resources — the planning tool behind the §3.1 mapping discussion
// ("the number of instances that can execute concurrently is limited by
// the number of teams available").
#pragma once

#include <cstdint>
#include <string>

#include "gpusim/device_spec.h"
#include "gpusim/kernel.h"
#include "support/status.h"

namespace dgc::sim {

struct Occupancy {
  int warps_per_block = 0;
  /// Max co-resident blocks per SM under all limits.
  int blocks_per_sm = 0;
  /// Co-resident warps per SM (blocks_per_sm × warps_per_block).
  int warps_per_sm = 0;
  /// warps_per_sm / max_warps_per_sm.
  double warp_occupancy = 0.0;
  /// Which resource binds: "block slots", "warp contexts", "shared memory".
  std::string limiter;
  /// Device-wide co-resident blocks.
  std::uint64_t resident_blocks = 0;
  /// Waves of blocks needed for the whole grid.
  std::uint64_t waves = 0;
};

/// Computes the occupancy of `config` on `spec`; kInvalidArgument when the
/// configuration cannot launch at all.
StatusOr<Occupancy> ComputeOccupancy(const DeviceSpec& spec,
                                     const LaunchConfig& config);

}  // namespace dgc::sim

#include "gpusim/device_spec.h"

#include "support/str.h"

namespace dgc::sim {

namespace {
// Caches shrink with the workload scale so that the capacity *ratios* of
// the real machine are preserved: a working set that does not fit the real
// L2 must not fit the scaled L2 either, or scaled runs would enjoy cache
// residency the paper's GB-scale datasets never had. Floors keep the
// models structurally sane (a few sets per SM at minimum).
std::uint32_t ScaledCache(std::uint64_t real_bytes, std::uint32_t scale,
                          std::uint32_t floor_bytes) {
  return std::uint32_t(std::max<std::uint64_t>(real_bytes / scale, floor_bytes));
}
}  // namespace

DeviceSpec DeviceSpec::A100_40GB(std::uint32_t memory_scale) {
  DeviceSpec s;
  s.name = StrFormat("A100-SXM4-40GB (capacity 1/%u)", memory_scale);
  s.num_sms = 108;
  s.max_blocks_per_sm = 32;
  s.max_warps_per_sm = 64;
  s.issue_pipes_per_sm = 4;
  s.clock_ghz = 1.41;
  s.global_memory_bytes = 40 * kGiB / memory_scale;
  s.shared_memory_per_block = 48 * kKiB;
  s.l1_bytes = ScaledCache(128 * kKiB, memory_scale, 4 * kKiB);
  s.l2_bytes = ScaledCache(40 * kMiB, memory_scale, 64 * kKiB);
  s.dram_bytes_per_cycle = 1100.0;  // ~1555 GB/s
  return s;
}

DeviceSpec DeviceSpec::V100_16GB(std::uint32_t memory_scale) {
  DeviceSpec s;
  s.name = StrFormat("V100-SXM2-16GB (capacity 1/%u)", memory_scale);
  s.num_sms = 80;
  s.max_blocks_per_sm = 32;
  s.max_warps_per_sm = 64;
  s.issue_pipes_per_sm = 4;
  s.clock_ghz = 1.53;
  s.global_memory_bytes = 16 * kGiB / memory_scale;
  s.l1_bytes = ScaledCache(96 * kKiB, memory_scale, 4 * kKiB);
  s.l2_bytes = ScaledCache(6 * kMiB, memory_scale, 64 * kKiB);
  s.dram_bytes_per_cycle = 588.0;  // ~900 GB/s
  return s;
}

DeviceSpec DeviceSpec::TestDevice() {
  DeviceSpec s;
  s.name = "test-device";
  s.num_sms = 2;
  s.max_blocks_per_sm = 4;
  s.max_warps_per_sm = 16;
  s.issue_pipes_per_sm = 2;
  s.global_memory_bytes = 64 * kMiB;
  s.l1_bytes = 8 * kKiB;
  s.l2_bytes = 64 * kKiB;
  s.l2_latency = 60;
  s.dram_latency = 150;
  s.dram_bytes_per_cycle = 64.0;
  s.kernel_launch_overhead = 100;
  s.pcie_latency_cycles = 50;
  s.rpc_roundtrip_cycles = 500;
  return s;
}

namespace {
bool IsPow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

std::string DeviceSpec::Validate() const {
  std::string problems;
  auto require = [&](bool ok, const char* what) {
    if (!ok) {
      problems += what;
      problems += "; ";
    }
  };
  require(num_sms > 0, "num_sms must be positive");
  require(warp_size > 0 && IsPow2(std::uint64_t(warp_size)),
          "warp_size must be a power of two");
  require(max_threads_per_block >= warp_size,
          "max_threads_per_block must hold at least one warp");
  require(max_blocks_per_sm > 0, "max_blocks_per_sm must be positive");
  require(max_warps_per_sm > 0, "max_warps_per_sm must be positive");
  require(issue_pipes_per_sm > 0, "issue_pipes_per_sm must be positive");
  require(clock_ghz > 0, "clock must be positive");
  require(IsPow2(sector_bytes), "sector_bytes must be a power of two");
  require(l1_ways > 0 && l2_ways > 0, "cache associativity must be positive");
  require(l1_bytes % (sector_bytes * l1_ways) == 0,
          "l1 must divide into ways of sectors");
  require(l2_bytes % (sector_bytes * l2_ways) == 0,
          "l2 must divide into ways of sectors");
  require(dram_bytes_per_cycle > 0, "dram bandwidth must be positive");
  require(dram_channels > 0, "dram_channels must be positive");
  require(dram_banks_per_channel > 0, "dram_banks_per_channel must be positive");
  require(IsPow2(dram_row_bytes), "dram_row_bytes must be a power of two");
  require(smem_banks > 0, "smem_banks must be positive");
  require(pcie_bytes_per_cycle > 0, "pcie bandwidth must be positive");
  if (!problems.empty()) problems.resize(problems.size() - 2);
  return problems;
}

}  // namespace dgc::sim

// Per-warp memory coalescing: lane addresses → unique memory sectors.
//
// A warp memory instruction touches, per lane, `bytes` at `addr`. The
// hardware merges those into 32-byte sector transactions; the number of
// unique sectors is what the memory system is charged for. This is the
// mechanism behind the paper's §4.3 observation: lanes of one warp access
// one instance's contiguous data (few sectors), but different blocks walk
// different heap allocations (no cross-block merging happens anywhere).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/address.h"

namespace dgc::sim {

/// One lane's contribution to a warp memory instruction.
struct LaneAccess {
  DeviceAddr addr = 0;
  std::uint32_t bytes = 0;  ///< 0 marks an inactive lane
};

/// Computes the unique sector indices (addr / sector_bytes) touched by the
/// given lane accesses. The result is sorted and deduplicated; inactive
/// lanes (bytes == 0) contribute nothing. An access may straddle sector
/// boundaries and then contributes every covered sector.
///
/// This is the optimized entry point: full-warp unit-stride runs compute
/// their sector interval directly, and already-sorted patterns skip the
/// sort. The output is defined to be identical to CoalesceSectorsScalar
/// for every input.
void CoalesceSectors(std::span<const LaneAccess> accesses,
                     std::uint32_t sector_bytes,
                     std::vector<std::uint64_t>& sectors_out);

/// Reference implementation: per-lane sector expansion followed by
/// sort+unique, with no shape-dependent shortcuts. Kept callable so tests
/// and the determinism harness can pin the fast path against it.
void CoalesceSectorsScalar(std::span<const LaneAccess> accesses,
                           std::uint32_t sector_bytes,
                           std::vector<std::uint64_t>& sectors_out);

/// Enables/disables the CoalesceSectors fast path process-wide (default
/// on); returns the previous setting. Off routes every call through the
/// scalar reference — used by the determinism harness to prove the two
/// paths produce byte-identical runs.
bool SetCoalesceFastPath(bool enabled);
bool CoalesceFastPathEnabled();

/// The minimum number of sectors any permutation of these accesses could
/// produce (= ceil(total distinct bytes / sector size) is a lower bound; we
/// report the tight bound assuming perfect packing). Used by stats to
/// report a coalescing-efficiency ratio.
std::uint64_t IdealSectorCount(std::span<const LaneAccess> accesses,
                               std::uint32_t sector_bytes);

/// IdealSectorCount when the caller already holds the byte total (the warp
/// issue loops accumulate it while gathering lane accesses, saving a
/// second pass over the group).
inline std::uint64_t IdealSectorCountForBytes(std::uint64_t total_bytes,
                                              std::uint32_t sector_bytes) {
  return total_bytes == 0 ? 0
                          : (total_bytes + sector_bytes - 1) / sector_bytes;
}

}  // namespace dgc::sim

// Per-warp memory coalescing: lane addresses → unique memory sectors.
//
// A warp memory instruction touches, per lane, `bytes` at `addr`. The
// hardware merges those into 32-byte sector transactions; the number of
// unique sectors is what the memory system is charged for. This is the
// mechanism behind the paper's §4.3 observation: lanes of one warp access
// one instance's contiguous data (few sectors), but different blocks walk
// different heap allocations (no cross-block merging happens anywhere).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/address.h"

namespace dgc::sim {

/// One lane's contribution to a warp memory instruction.
struct LaneAccess {
  DeviceAddr addr = 0;
  std::uint32_t bytes = 0;  ///< 0 marks an inactive lane
};

/// Computes the unique sector indices (addr / sector_bytes) touched by the
/// given lane accesses. The result is sorted and deduplicated; inactive
/// lanes (bytes == 0) contribute nothing. An access may straddle sector
/// boundaries and then contributes every covered sector.
void CoalesceSectors(std::span<const LaneAccess> accesses,
                     std::uint32_t sector_bytes,
                     std::vector<std::uint64_t>& sectors_out);

/// The minimum number of sectors any permutation of these accesses could
/// produce (= ceil(total distinct bytes / sector size) is a lower bound; we
/// report the tight bound assuming perfect packing). Used by stats to
/// report a coalescing-efficiency ratio.
std::uint64_t IdealSectorCount(std::span<const LaneAccess> accesses,
                               std::uint32_t sector_bytes);

}  // namespace dgc::sim

// Streaming multiprocessor: occupancy accounting and compute issue pipes.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/device_spec.h"
#include "gpusim/stats.h"

namespace dgc::sim {

class SM {
 public:
  SM(int id, const DeviceSpec& spec)
      : id_(id), spec_(spec), pipe_free_(std::size_t(spec.issue_pipes_per_sm), 0) {}

  int id() const { return id_; }

  /// True if a block of `warps` warps using `shared_bytes` of shared memory
  /// fits next to the currently resident blocks.
  bool CanHost(int warps, std::uint32_t shared_bytes) const {
    return resident_blocks_ < spec_.max_blocks_per_sm &&
           resident_warps_ + warps <= spec_.max_warps_per_sm &&
           shared_in_use_ + shared_bytes <=
               std::uint64_t(spec_.shared_memory_per_block) *
                   std::uint64_t(spec_.max_blocks_per_sm);
  }

  void AddBlock(int warps, std::uint32_t shared_bytes) {
    ++resident_blocks_;
    resident_warps_ += warps;
    shared_in_use_ += shared_bytes;
  }

  void RemoveBlock(int warps, std::uint32_t shared_bytes) {
    --resident_blocks_;
    resident_warps_ -= warps;
    shared_in_use_ -= shared_bytes;
  }

  /// Occupies one issue pipe for `cycles` starting no earlier than `t`;
  /// returns the completion time. Pipes are a shared, contended resource:
  /// co-resident warps (and blocks) queue on them. `charge` gates the
  /// compute_cycles_issued bump (the threaded launch engine pre-charges it
  /// into a shard-local bucket at speculation time); pipe state always
  /// advances.
  std::uint64_t IssueCompute(std::uint64_t t, std::uint64_t cycles,
                             LaunchStats& stats, bool charge = true) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < pipe_free_.size(); ++i) {
      if (pipe_free_[i] < pipe_free_[best]) best = i;
    }
    const std::uint64_t start = std::max(t, pipe_free_[best]);
    pipe_free_[best] = start + cycles;
    if (charge) stats.compute_cycles_issued += cycles;
    return pipe_free_[best];
  }

  int resident_warps() const { return resident_warps_; }
  int resident_blocks() const { return resident_blocks_; }

 private:
  int id_;
  const DeviceSpec& spec_;
  int resident_blocks_ = 0;
  int resident_warps_ = 0;
  std::uint64_t shared_in_use_ = 0;
  std::vector<std::uint64_t> pipe_free_;
};

}  // namespace dgc::sim

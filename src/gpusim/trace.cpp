#include "gpusim/trace.h"

#include <fstream>

#include "support/str.h"

namespace dgc::sim {

std::string_view TraceKindName(DeviceOp::Kind kind) {
  switch (kind) {
    case DeviceOp::Kind::kNone: return "none";
    case DeviceOp::Kind::kLoad: return "load";
    case DeviceOp::Kind::kLoadBatch: return "gather";
    case DeviceOp::Kind::kStore: return "store";
    case DeviceOp::Kind::kStoreBatch: return "scatter";
    case DeviceOp::Kind::kAtomic: return "atomic";
    case DeviceOp::Kind::kWork: return "work";
    case DeviceOp::Kind::kSync: return "sync";
    case DeviceOp::Kind::kExternal: return "rpc";
  }
  return "?";
}

std::string Trace::ToChromeJson() const {
  std::string out = "[\n";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) out += ",\n";
    first = false;
    const std::uint64_t dur = e.complete > e.issue ? e.complete - e.issue : 1;
    out += StrFormat(
        R"(  {"name":"%.*s","ph":"X","ts":%llu,"dur":%llu,"pid":%d,)"
        R"("tid":%u,"args":{"block":%u,"warp":%u,"lanes":%u,"sectors":%u}})",
        int(TraceKindName(e.kind).size()), TraceKindName(e.kind).data(),
        (unsigned long long)e.issue, (unsigned long long)dur, e.sm,
        e.block * 100 + e.warp, e.block, e.warp, e.lanes, e.sectors);
  }
  out += "\n]\n";
  return out;
}

Status Trace::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status(ErrorCode::kInvalidArgument, "cannot write " + path);
  }
  out << ToChromeJson();
  return Status::Ok();
}

}  // namespace dgc::sim

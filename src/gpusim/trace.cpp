#include "gpusim/trace.h"

#include <fstream>

#include "support/str.h"

namespace dgc::sim {

std::string_view TraceKindName(DeviceOp::Kind kind) {
  switch (kind) {
    case DeviceOp::Kind::kNone: return "none";
    case DeviceOp::Kind::kLoad: return "load";
    case DeviceOp::Kind::kLoadBatch: return "gather";
    case DeviceOp::Kind::kStore: return "store";
    case DeviceOp::Kind::kStoreBatch: return "scatter";
    case DeviceOp::Kind::kAtomic: return "atomic";
    case DeviceOp::Kind::kWork: return "work";
    case DeviceOp::Kind::kSync: return "sync";
    case DeviceOp::Kind::kExternal: return "rpc";
  }
  return "?";
}

std::string Trace::ToChromeJson() const {
  std::string out = "[\n";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) out += ",\n";
    first = false;
    const std::uint64_t dur = e.complete > e.issue ? e.complete - e.issue : 1;
    // The tid folds wave, block and warp into one integer: waves are widely
    // separated so that rows from different retry waves never collide.
    const std::uint64_t tid =
        std::uint64_t(e.wave) * 1000000 + std::uint64_t(e.block) * 100 + e.warp;
    out += StrFormat(
        R"(  {"name":"%.*s","ph":"X","ts":%llu,"dur":%llu,"pid":%d,)"
        R"("tid":%llu,"args":{"wave":%u,"block":%u,"warp":%u,"lanes":%u,)"
        R"("sectors":%u}})",
        int(TraceKindName(e.kind).size()), TraceKindName(e.kind).data(),
        (unsigned long long)e.issue, (unsigned long long)dur, e.sm,
        (unsigned long long)tid, e.wave, e.block, e.warp, e.lanes, e.sectors);
  }
  out += "\n]\n";
  return out;
}

Status Trace::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status(ErrorCode::kInvalidArgument, "cannot write " + path);
  }
  out << ToChromeJson();
  return Status::Ok();
}

}  // namespace dgc::sim

// Thread block (OpenMP team): lanes, warps, the block barrier, and the
// block's shared-memory window.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gpusim/barrier.h"
#include "gpusim/ctx.h"
#include "gpusim/kernel.h"
#include "gpusim/lane.h"
#include "support/status.h"

namespace dgc::sim {

class SM;
class Warp;
struct LaunchContext;

class Block {
 public:
  Block(LaunchContext* lc, std::uint32_t block_id, SM* sm);
  ~Block();

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  /// Creates the lanes' root coroutines and schedules every warp at `now`.
  void Start(std::uint64_t now);

  /// Called by warps when one of this block's lanes terminates.
  void OnLaneDone(Lane* lane, std::uint64_t now);

  /// Bump-allocates `count` elements of shared memory (team-local).
  /// Exhausting the block's shared reservation throws a DeviceTrap(kOOM):
  /// from device code it retires the faulting lane (and is containable per
  /// instance by the ensemble loader) instead of aborting the process.
  template <typename T>
  DevicePtr<T> SharedAlloc(std::uint64_t count) {
    const std::uint64_t bytes = count * sizeof(T);
    const std::uint64_t offset = (shared_used_ + alignof(T) - 1) & ~std::uint64_t(alignof(T) - 1);
    if (offset + bytes > shared_.size()) {
      throw DeviceTrap(TrapKind::kOOM,
                       "shared memory reservation exhausted");
    }
    shared_used_ = offset + bytes;
    return DevicePtr<T>{shared_base_ + offset,
                        reinterpret_cast<T*>(shared_.data() + offset)};
  }

  /// Views the block's shared window at a fixed byte offset without
  /// allocating — the idiom for kernels where every lane addresses the same
  /// statically-placed shared variable (like CUDA `__shared__`). Throws a
  /// DeviceTrap(kOOM) when the window is exceeded, like SharedAlloc.
  template <typename T>
  DevicePtr<T> SharedAt(std::uint64_t byte_offset) {
    if (byte_offset + sizeof(T) > shared_.size()) {
      throw DeviceTrap(TrapKind::kOOM, "shared memory window exceeded");
    }
    return DevicePtr<T>{shared_base_ + byte_offset,
                        reinterpret_cast<T*>(shared_.data() + byte_offset)};
  }

  /// Arms (deadline > 0) or disarms (0) the per-lane watchdog of every lane
  /// in block row `row` (tid3.y). Rows are the §3.1 sub-team unit, so this
  /// is how a loader bounds one instance's cycles without touching its
  /// block-mates.
  void SetRowWatchdog(std::uint32_t row, std::uint64_t deadline);

  Barrier* barrier() { return &barrier_; }
  SM* sm() const { return sm_; }
  std::uint32_t id() const { return id_; }
  std::uint32_t threads() const { return std::uint32_t(lanes_.size()); }
  std::uint32_t warp_count() const { return std::uint32_t(warps_.size()); }
  std::uint32_t live_lanes() const { return live_; }
  LaunchContext* launch_context() const { return lc_; }

  /// Slot for higher layers (the ompx team state machine) to attach
  /// per-team control state. Owned by the block.
  std::shared_ptr<void> user_state;

  /// Round marker for the threaded launch engine's speculation walker.
  /// All warps of a block live on one SM and therefore in one shard, so
  /// exactly one shard thread reads/writes this per round: the walker
  /// stamps a block at its earliest pending event and skips any later
  /// same-block events that round, which is what makes speculating a
  /// warp of a multi-warp block safe (no sibling activity — barrier
  /// release, shared-memory allocation, watchdog arming — can commit
  /// between the round snapshot and the adoption of the block's earliest
  /// event). See LaunchContext::DrainEventsThreaded.
  std::uint64_t spec_round_stamp = 0;

 private:
  LaunchContext* lc_;
  std::uint32_t id_;
  SM* sm_;
  std::vector<Lane> lanes_;
  std::vector<ThreadCtx> ctxs_;
  std::vector<std::unique_ptr<Warp>> warps_;
  Barrier barrier_;
  std::vector<std::byte> shared_;
  std::uint64_t shared_used_ = 0;
  DeviceAddr shared_base_ = 0;
  std::uint32_t live_ = 0;
};

}  // namespace dgc::sim

// Per-instance traps and deterministic fault injection.
//
// The ensemble loader's promise (paper §3) is that NI *independent*
// instances share one kernel — which only holds if a misbehaving instance
// cannot take its siblings down with it. This header defines the trap
// vocabulary the simulator uses for recoverable device faults (out of
// memory, abort(), watchdog expiry, injected faults) and the seeded
// FaultPlan that injects such faults at deterministic points so the
// containment machinery is testable end to end.
//
// A trap is an exception (DeviceTrap) raised *inside* the faulting lane's
// coroutine at its next resume point. It propagates through the normal
// exception-transparent task machinery, so a loader that wraps an instance
// in try/catch contains the fault to that instance while sibling teams run
// on undisturbed.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace dgc::sim {

/// Why a lane (or the instance it was running) was terminated abnormally.
enum class TrapKind : std::uint8_t {
  kNone = 0,
  kOOM,       ///< unchecked allocation failure (heap or shared memory)
  kAbort,     ///< abort() / failed assert() in app code
  kWatchdog,  ///< cycle budget exhausted (launch- or instance-level)
  kInjected,  ///< FaultPlan trap site
};

std::string_view ToString(TrapKind kind);

/// The exception type of a device trap. Thrown by device code (device libc
/// abort/OOM paths, shared-memory exhaustion) and by the scheduler at a
/// lane's resume point when a trap is pending (watchdog, injected traps).
class DeviceTrap : public std::runtime_error {
 public:
  DeviceTrap(TrapKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  TrapKind kind() const { return kind_; }

 private:
  TrapKind kind_;
};

/// How a launch as a whole ended. Lane-level failures (including traps) do
/// not prevent completion — the remaining blocks retire normally. Deadlock
/// means the event queue drained with blocks still resident: some lane is
/// parked on a barrier that can never release.
enum class LaunchOutcome : std::uint8_t { kCompleted = 0, kDeadlocked };

std::string_view ToString(LaunchOutcome outcome);

/// A deterministic fault-injection plan. Counters are mutated as the
/// simulation consumes the plan, so one plan shared across retry waves
/// injects each listed fault exactly once (which is what lets a retry
/// recover an injected-OOM instance). Each Device runs single-threaded, so
/// no synchronization is needed; sweep harnesses must parse one fresh plan
/// per point to stay deterministic under concurrent jobs.
///
/// Spec grammar (semicolon-separated clauses; see docs/MODEL.md):
///   seed@<n>               seed for the probabilistic clauses (default 1)
///   malloc-fail@<n>[,...]  fail the n-th device malloc call (1-based)
///   malloc-fail@p<pct>     fail each malloc with pct% probability (seeded)
///   rpc-fail@<n>[,...]     fail the n-th host RPC call (1-based)
///   rpc-fail@p<pct>        fail each RPC call with pct% probability
///   trap@b<B>.w<W>.c<C>    trap every lane of block B warp W at the warp's
///                          first turn at cycle >= C (fires once)
///   slow@b<B>.x<F>         multiply block B's compute-op cycles by F
struct FaultPlan {
  struct TrapSite {
    std::uint32_t block = 0;
    std::uint32_t warp = 0;
    std::uint64_t cycle = 0;
    bool fired = false;
  };
  struct Slowdown {
    std::uint32_t block = 0;
    std::uint64_t factor = 1;
  };

  std::uint64_t seed = 1;
  std::vector<std::uint64_t> malloc_fail;  ///< 1-based call ordinals
  double malloc_fail_p = 0.0;              ///< per-call failure probability
  std::vector<std::uint64_t> rpc_fail;     ///< 1-based call ordinals
  double rpc_fail_p = 0.0;
  std::vector<TrapSite> traps;
  std::vector<Slowdown> slowdowns;

  // --- Consumption state (advances as the simulation runs) -----------------
  std::uint64_t malloc_calls = 0;
  std::uint64_t rpc_calls = 0;

  /// True when the plan injects nothing (a default-constructed plan).
  bool empty() const {
    return malloc_fail.empty() && malloc_fail_p == 0.0 && rpc_fail.empty() &&
           rpc_fail_p == 0.0 && traps.empty() && slowdowns.empty();
  }

  /// Counts a device malloc call; true if the plan fails it.
  bool NextMallocFails();
  /// Counts a host RPC call; true if the plan fails it.
  bool NextRpcFails();
  /// First unfired trap site matching (block, warp) with cycle <= now;
  /// marks it fired. Null when none.
  TrapSite* MatchTrap(std::uint32_t block, std::uint32_t warp,
                      std::uint64_t now);
  /// True when MatchTrap(block, warp, now) would fire — without consuming
  /// anything. Const and therefore safe to call from shard threads: the
  /// threaded launch engine uses it to keep a warp's turn out of
  /// speculation exactly when that turn would arm an injected trap, so
  /// plan state is only ever consumed on the commit thread in serial
  /// order. Sites are static after parsing and a site's `fired` flag is
  /// only flipped by its own warp's committed turns, so the answer cannot
  /// change between the speculation check and the commit.
  bool HasPendingTrap(std::uint32_t block, std::uint32_t warp,
                      std::uint64_t now) const;
  /// Compute-cycle multiplier for `block` (1 when unaffected).
  std::uint64_t WorkScale(std::uint32_t block) const;

  /// Parses the spec grammar above. An empty spec yields an empty plan.
  static StatusOr<FaultPlan> Parse(std::string_view spec);
  /// Canonical spec string (parseable by Parse; "" for an empty plan).
  std::string ToString() const;

  // --- Service-level plan construction --------------------------------------
  // A scheduler that packs jobs into launches compiles its per-job fault
  // decisions down to this launch-level vocabulary: job slot S becomes a
  // trap or slowdown on the block running S. These helpers build such
  // plans programmatically (the spec grammar stays the human front end).

  /// Appends a trap site (fires once, like a parsed `trap@` clause).
  void AddTrap(std::uint32_t block, std::uint32_t warp, std::uint64_t cycle) {
    traps.push_back(TrapSite{block, warp, cycle, false});
  }
  /// Appends a compute slowdown for `block` (factor >= 1).
  void AddSlowdown(std::uint32_t block, std::uint64_t factor) {
    slowdowns.push_back(Slowdown{block, factor == 0 ? 1 : factor});
  }

  /// The deterministic per-ordinal coin flip behind the probabilistic
  /// clauses: hashing (seed, stream, ordinal) keeps each decision
  /// independent of evaluation order. Streams 1 (malloc) and 2 (rpc) are
  /// taken by this plan's own clauses; service-level plans draw from
  /// streams >= 16 so their decisions never correlate with launch-level
  /// injection under a shared seed.
  static bool SeededFlip(std::uint64_t seed, std::uint64_t stream,
                         std::uint64_t ordinal, double p);
};

}  // namespace dgc::sim

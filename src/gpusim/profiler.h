// Launch profiler: per-instance counter attribution plus a sampled
// stall/utilization timeline.
//
// The profiler is passive storage plus sampling policy; the hot-path hooks
// live in LaunchContext. When a LaunchConfig carries a Profiler, the
// context routes every counter bump into per-instance buckets (keyed by
// LaunchConfig::instance_of) instead of bumping the launch-global
// LaunchStats directly, and the run loop asks the profiler — between
// events, never inside one — whether the next event crosses a sample
// boundary. Each sample records window *deltas* (work issued since the
// previous sample) and instantaneous occupancy, so DRAM-bandwidth
// saturation is directly visible as instance count grows.
//
// One Profiler may observe several sequential launches (ensemble retry
// waves): each OnLaunchBegin opens a new wave, the timeline keeps growing,
// and per-instance buckets accumulate with sequential merge semantics
// (LaunchStats::AccumulateSequential — wave clocks are back-to-back).
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/stats.h"

namespace dgc::sim {

struct DeviceSpec;

/// One timeline entry. All counter fields are deltas over the window that
/// ends at `cycle`; occupancy fields are window averages. Cycle values are
/// in the clock of the wave the sample belongs to (each launch restarts
/// the engine clock at 0).
struct TimelineSample {
  std::uint64_t cycle = 0;       ///< window end (the sample boundary)
  std::uint32_t wave = 0;        ///< retry wave this window belongs to
  std::uint32_t active_warps = 0;     ///< resident warps across all SMs
  std::uint32_t resident_blocks = 0;  ///< occupied block slots across SMs
  std::uint64_t warp_instructions = 0;  ///< issued in this window
  /// DRAM traffic in the window divided by the device's peak
  /// (dram_bytes_per_cycle * window). Deliberately NOT clamped to 1.0:
  /// values above 1 mean the channels served queued backlog faster than
  /// the nominal per-cycle rate sustained over the window — i.e. demand
  /// oversubscription, exactly the saturation signal we want visible.
  double dram_bw_occupancy = 0.0;
  /// L1-miss traffic into L2 divided by l2_bytes_per_cycle * window.
  double l2_bw_occupancy = 0.0;
  // Issue-stall breakdown for the window (same units as the LaunchStats
  // counters they are deltas of).
  std::uint64_t dram_queue_stall = 0;
  std::uint64_t l2_queue_stall = 0;
  std::uint64_t barrier_stall = 0;
  std::uint64_t bank_conflict_replays = 0;
  std::uint64_t divergence_replays = 0;
};

class Profiler {
 public:
  struct Options {
    /// Cycles between timeline samples. Smaller = finer timeline, more
    /// samples; the engine does no extra work between boundaries either way.
    std::uint64_t sample_interval = 8192;
    /// Timeline ring limit; samples past it are counted, not stored
    /// (mirrors Trace's capacity/dropped contract). Exception: the closing
    /// sample of each wave — the final partial interval at launch end — is
    /// always stored, even at capacity. Dropping it would silently truncate
    /// the stall/utilization timeline short of the launch's last cycles,
    /// exactly the tail a saturation analysis needs.
    std::size_t timeline_capacity = 1u << 16;
  };

  Profiler() = default;
  explicit Profiler(Options options) : options_(options) {}

  // --- Hooks called by LaunchContext / loaders -----------------------------

  /// Opens a new wave: resets the sampling window to the (restarted) engine
  /// clock and captures the device's bandwidth constants. The first call is
  /// wave 0.
  void OnLaunchBegin(const DeviceSpec& spec);

  /// True when the next event (at time `t`) is strictly past the pending
  /// sample boundary, i.e. the run loop must call AdvanceTo before
  /// dispatching it. Inline: this is called once per engine event.
  bool NeedsSampleBefore(std::uint64_t t) const { return t > next_boundary_; }

  /// Emits one sample per boundary < `t`. `buckets` are the context's
  /// cumulative per-instance stats (index 0 = unattributed, i+1 = instance
  /// i); occupancy/delta fields diff them against the previous sample.
  void AdvanceTo(std::uint64_t t, std::uint32_t active_warps,
                 std::uint32_t resident_blocks,
                 const std::vector<LaunchStats>& buckets);

  /// Closes the wave at time `now`: emits the final partial-window sample
  /// and folds `buckets` into the cumulative per-instance stats
  /// (sequential merge — waves run back-to-back).
  void OnLaunchEnd(std::uint64_t now, std::uint32_t active_warps,
                   std::uint32_t resident_blocks,
                   const std::vector<LaunchStats>& buckets);

  /// Records an instance's end-to-end elapsed cycles (loaders know this;
  /// the launch does not). Overwrites — callers pass the final total.
  void SetInstanceElapsed(std::int32_t instance, std::uint64_t cycles);

  // --- Results -------------------------------------------------------------

  /// Cumulative per-instance stats across all observed waves, ordered by
  /// instance id with the unattributed (-1) entry first. Entries exist only
  /// for instances that did work or were registered via SetInstanceElapsed.
  const std::vector<InstanceStats>& instances() const { return instances_; }
  const std::vector<TimelineSample>& timeline() const { return timeline_; }
  std::uint64_t dropped_samples() const { return dropped_samples_; }
  std::uint64_t sample_interval() const { return options_.sample_interval; }
  /// Number of waves observed (OnLaunchBegin calls).
  std::uint32_t waves() const { return waves_; }

 private:
  /// `final_flush` marks the wave-closing sample, which bypasses the
  /// capacity limit (see Options::timeline_capacity).
  void EmitSample(std::uint64_t cycle, std::uint32_t active_warps,
                  std::uint32_t resident_blocks,
                  const std::vector<LaunchStats>& buckets,
                  bool final_flush = false);
  /// Bucket slot for `instance` (>= -1), created on first use.
  InstanceStats& Slot(std::int32_t instance);

  Options options_;
  std::vector<InstanceStats> instances_;
  std::vector<TimelineSample> timeline_;
  std::uint64_t dropped_samples_ = 0;

  // Current-wave sampling state.
  std::uint32_t waves_ = 0;
  std::uint64_t next_boundary_ = 0;
  std::uint64_t window_start_ = 0;
  LaunchStats window_base_;  ///< summed bucket counters at the last sample
  double dram_bytes_per_cycle_ = 0.0;
  double l2_bytes_per_cycle_ = 0.0;
  std::uint32_t sector_bytes_ = 0;
};

}  // namespace dgc::sim

// Lane-granular barrier.
//
// Barriers synchronize *sets of lanes*: a thread block's __syncthreads is a
// barrier over all live lanes of the block, and the ensemble runtime's
// sub-team mapping (paper §3.1, M instances per block) creates barriers
// over a row of the block. Membership is dynamic: when a lane exits, it is
// removed from its barriers, and a release is re-evaluated — this is what
// lets the main thread of a team terminate while workers idle at a barrier.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dgc::sim {

class Engine;
class Lane;

class Barrier {
 public:
  explicit Barrier(std::string name = "barrier") : name_(std::move(name)) {}

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Registers `n` more participating lanes.
  void AddParticipants(std::uint32_t n) { expected_ += n; }

  /// A lane reached the barrier at time `now`. Blocks the lane; when every
  /// current participant has arrived, all waiters are released at the
  /// latest arrival time and their warps are re-scheduled.
  void Arrive(Lane* lane, std::uint64_t now, Engine& engine);

  /// A participating lane terminated; it no longer counts toward release.
  void ParticipantGone(std::uint64_t now, Engine& engine);

  std::uint32_t expected() const { return expected_; }
  std::uint32_t arrived() const { return std::uint32_t(waiters_.size()); }
  std::uint64_t releases() const { return releases_; }
  const std::string& name() const { return name_; }

 private:
  /// A parked lane plus its arrival time, so the release can charge each
  /// lane's wait (release − arrival) to barrier_stall_cycles.
  struct Waiter {
    Lane* lane;
    std::uint64_t arrived;
  };

  void MaybeRelease(Engine& engine);

  std::string name_;
  std::uint32_t expected_ = 0;
  std::uint64_t max_arrival_ = 0;
  std::uint64_t releases_ = 0;
  std::vector<Waiter> waiters_;
};

}  // namespace dgc::sim

#include "gpusim/warp.h"

#include <algorithm>
#include <cstring>

#include "gpusim/block.h"
#include "gpusim/coalesce.h"
#include "gpusim/engine.h"
#include "gpusim/launch_context.h"
#include "gpusim/memcheck.h"
#include "gpusim/trace.h"
#include "support/str.h"

namespace dgc::sim {
namespace {

// Fixed-size memcpy compiles to a single (unaligned-tolerant) load/store;
// the variable-length fallback is an out-of-line libc call, noticeable at
// one call per lane-slot on the hot path. 8 and 4 cover f64/i64 and
// f32/i32 — essentially all traffic.
std::uint64_t ReadBits(const void* host, std::uint8_t bytes) {
  if (bytes == 8) {
    std::uint64_t b;
    std::memcpy(&b, host, 8);
    return b;
  }
  if (bytes == 4) {
    std::uint32_t b;
    std::memcpy(&b, host, 4);
    return b;
  }
  std::uint64_t b = 0;
  std::memcpy(&b, host, bytes);
  return b;
}

void WriteBits(void* host, std::uint8_t bytes, std::uint64_t bits) {
  if (bytes == 8) {
    std::memcpy(host, &bits, 8);
  } else if (bytes == 4) {
    std::memcpy(host, &bits, 4);
  } else {
    std::memcpy(host, &bits, bytes);
  }
}

}  // namespace

Warp::Warp(Block* block, std::uint32_t warp_id, std::span<Lane> lanes,
           LaunchContext* lc)
    : block_(block), warp_id_(warp_id), lanes_(lanes), lc_(lc) {
  for (Lane& lane : lanes_) lane.warp = this;
}

void Warp::WakeAt(std::uint64_t t, Engine& engine) { engine.Schedule(t, this); }

void Warp::Turn(std::uint64_t now) {
  // Injected trap sites fire at the warp's first turn at or after their
  // cycle: every live lane of the warp is armed, and each raises the trap
  // inside its coroutine at its next resume (a trap is a lane-level event,
  // like a real illegal-instruction fault).
  if (FaultPlan* faults = lc_->config.faults) {
    while (FaultPlan::TrapSite* site =
               faults->MatchTrap(block_->id(), warp_id_, now)) {
      (void)site;
      for (Lane& lane : lanes_) {
        if (lane.root_finished() || lane.state == Lane::State::kDone ||
            lane.state == Lane::State::kFailed) {
          continue;
        }
        if (lane.pending_trap == TrapKind::kNone) {
          lane.pending_trap = TrapKind::kInjected;
          lane.trap_cycle = now;
        }
      }
    }
  }
  bool resumed_any;
  if (spec_valid_) {
    // Adopt the speculative resume. It was taken against the block's
    // earliest queued event (the walker's per-round block stamp enforces
    // that), and nothing can enqueue an earlier one — barrier releases
    // need same-block arrivals and the block scheduler only wakes new
    // blocks — so the first dispatch after speculation is always the
    // speculated event itself.
    DGC_CHECK(spec_t_ == now &&
              spec_seq_ == lc_->engine.dispatching_seq());
    spec_valid_ = false;
    --lc_->specs_pending;
    resumed_any = CommitSpeculation(now);
  } else {
    resumed_any = ResumePhase(now);
  }
  bool processed_any = false;
  ProcessPhase(now, processed_any);
  (void)resumed_any;
  (void)processed_any;

  // Schedule the next turn at the earliest time a lane becomes runnable.
  // Lanes blocked on barriers are woken by the barrier release instead.
  // This scan runs on every turn, including spurious wake-ups: with the
  // engine's earliest-wake suppression (engine.cpp), a suppressed later
  // wake is re-derived here, so skipping the scan could strand a lane.
  std::uint64_t t_next = ~std::uint64_t(0);
  for (Lane& lane : lanes_) {
    if (lane.state != Lane::State::kReady || lane.root_finished()) continue;
    if (lane.pending.kind != DeviceOp::Kind::kNone) continue;
    t_next = std::min(t_next, std::max(lane.ready_at, now + 1));
  }
  if (t_next != ~std::uint64_t(0)) WakeAt(t_next, lc_->engine);
}

bool Warp::ResumePhase(std::uint64_t now) {
  bool resumed_any = false;
  for (Lane& lane : lanes_) TryResumeLane(lane, now, resumed_any);
  return resumed_any;
}

void Warp::TryResumeLane(Lane& lane, std::uint64_t now, bool& resumed_any) {
  if (lane.state != Lane::State::kReady || lane.root_finished()) return;
  if (lane.pending.kind != DeviceOp::Kind::kNone) return;
  if (lane.ready_at > now) return;
  // Watchdog enforcement happens at the resume point: a lane past the
  // launch budget (or its own per-instance deadline) is armed to trap,
  // and the resume below raises it inside the coroutine.
  const std::uint64_t budget = lc_->config.watchdog_cycles;
  if (lane.pending_trap == TrapKind::kNone &&
      ((budget != 0 && now >= budget) ||
       (lane.watchdog_deadline != 0 && now >= lane.watchdog_deadline))) {
    lane.pending_trap = TrapKind::kWatchdog;
    lane.trap_cycle = now;
  }
  ResumeLaneInline(lane, now, resumed_any);
}

void Warp::ResumeLaneInline(Lane& lane, std::uint64_t now, bool& resumed_any) {
  for (;;) {
    lane.resume_now = now;
    lane.Resume();
    resumed_any = true;
    if (lane.root_finished()) {
      FinishLane(lane, now);
      return;
    }
    if (lane.pending.kind != DeviceOp::Kind::kHostFence) return;
    // HostFence executed inline is invisible: the fenced continuation runs
    // right here, at the same side-effect slot as code without the fence.
    lane.pending = DeviceOp{};
  }
}

void Warp::FinishLane(Lane& lane, std::uint64_t now) {
  if (std::exception_ptr err = lane.root_error()) {
    lane.state = Lane::State::kFailed;
    std::string what = "unknown device exception";
    TrapKind kind = TrapKind::kNone;
    try {
      std::rethrow_exception(err);
    } catch (const DeviceTrap& trap) {
      what = trap.what();
      kind = trap.kind();
    } catch (const std::exception& e) {
      what = e.what();
    } catch (...) {
    }
    lc_->RecordFailure(block_->id(), lane.thread_id, kind, what);
  } else {
    lane.state = Lane::State::kDone;
  }
  block_->OnLaneDone(&lane, now);
}

bool Warp::CanSpeculate(std::uint64_t t) const {
  // Multi-warp safety comes from the walker, not from here: the per-round
  // block stamp guarantees only a block's earliest snapshot event is ever
  // speculated, so no sibling activity (barrier release, shared-memory
  // allocation, row-watchdog re-arm, team-state writes) can intervene
  // before adoption. The one remaining exclusion is trap-site-aware: a
  // turn that would fire MatchTrap at `t` consumes fault-plan state,
  // which must happen in commit order, so exactly those turns stay
  // serial. WorkScale and the malloc/rpc ordinals are safe — the former
  // is const, the latter are consumed at commit time only (HostFence and
  // host-call issue paths).
  const FaultPlan* faults = lc_->config.faults;
  return faults == nullptr ||
         !faults->HasPendingTrap(block_->id(), warp_id_, t);
}

void Warp::SpeculativeResume(std::uint64_t t, std::uint64_t seq,
                             LaunchStats* shard_stats) {
  spec_outcome_.assign(lanes_.size(), SpecOutcome::kUntouched);
  spec_resumed_any_ = false;
  bool at_fence = false;
  const std::uint64_t budget = lc_->config.watchdog_cycles;
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    Lane& lane = lanes_[i];
    if (lane.state != Lane::State::kReady || lane.root_finished()) continue;
    if (lane.pending.kind != DeviceOp::Kind::kNone) continue;
    if (lane.ready_at > t) continue;
    if (lane.pending_trap == TrapKind::kNone &&
        ((budget != 0 && t >= budget) ||
         (lane.watchdog_deadline != 0 && t >= lane.watchdog_deadline))) {
      lane.pending_trap = TrapKind::kWatchdog;
      lane.trap_cycle = t;
    }
    lane.resume_now = t;
    lane.Resume();
    spec_resumed_any_ = true;
    if (lane.root_finished()) {
      // Classification, failure recording, and OnLaneDone mutate launch
      // state (barrier membership, SM occupancy, the block scheduler) —
      // all deferred to the commit turn.
      spec_outcome_[i] = SpecOutcome::kFinished;
      continue;
    }
    if (lane.pending.kind == DeviceOp::Kind::kHostFence) {
      // The continuation mutates launch-global host state; park this lane
      // and stop the pass — the commit turn resumes from here inline, so
      // the fenced effect lands at its exact serial-order slot, and the
      // remaining lanes follow it in lane order as the serial engine would.
      spec_outcome_[i] = SpecOutcome::kAtFence;
      at_fence = true;
      break;
    }
    spec_outcome_[i] = SpecOutcome::kResumed;
  }
  spec_valid_ = true;
  spec_t_ = t;
  spec_seq_ = seq;
  // With no fence stop the turn's pending ops are final, so the expensive
  // half of the issue path — sector coalescing — can run here, off the
  // commit thread. A fence's commit-side continuation can add pending ops
  // and change the partition, so those turns coalesce inline at commit.
  if (at_fence) {
    spec_sectors_valid_ = false;
  } else {
    PrecomputeIssueSectors(shard_stats);
  }
}

bool Warp::CommitSpeculation(std::uint64_t now) {
  bool resumed_any = spec_resumed_any_;
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    Lane& lane = lanes_[i];
    switch (spec_outcome_[i]) {
      case SpecOutcome::kResumed:
        break;  // already at its next suspension; ProcessPhase issues it
      case SpecOutcome::kFinished:
        FinishLane(lane, now);
        break;
      case SpecOutcome::kAtFence:
        lane.pending = DeviceOp{};
        ResumeLaneInline(lane, now, resumed_any);
        break;
      case SpecOutcome::kUntouched:
        // Skipped by the speculative pass — either ineligible (those
        // conditions are warp-local and unchanged since) or past a fence
        // stop; the normal inline step handles both.
        TryResumeLane(lane, now, resumed_any);
        break;
    }
  }
  return resumed_any;
}

DeviceOp::Kind Warp::SelectIssueGroup(std::size_t& remaining) {
  // The first un-issued lane (in lane order) defines the group: all
  // remaining lanes whose pending op matches its kind (and barrier /
  // address space) issue together.
  const DeviceOp::Kind kind = pending_lanes_.front()->pending.kind;
  Barrier* const barrier = pending_lanes_.front()->pending.barrier;
  const bool shared_space = IsSharedAddr(pending_lanes_.front()->pending.addr);
  const bool is_mem = kind == DeviceOp::Kind::kLoad ||
                      kind == DeviceOp::Kind::kStore ||
                      kind == DeviceOp::Kind::kAtomic ||
                      kind == DeviceOp::Kind::kLoadBatch ||
                      kind == DeviceOp::Kind::kStoreBatch;
  group_.clear();
  std::size_t keep = 0;
  for (std::size_t i = 0; i < remaining; ++i) {
    Lane* lane = pending_lanes_[i];
    const bool match =
        lane->pending.kind == kind &&
        (kind != DeviceOp::Kind::kSync || lane->pending.barrier == barrier) &&
        (!is_mem || IsSharedAddr(lane->pending.addr) == shared_space);
    if (match) {
      group_.push_back(lane);
    } else {
      pending_lanes_[keep++] = lane;
    }
  }
  remaining = keep;
  return kind;
}

void Warp::PrecomputeIssueSectors(LaunchStats* bucket) {
  // Runs on the warp's shard thread, after the speculative resume set the
  // turn's pending ops. The partition below replays exactly what the
  // commit turn's ProcessPhase will select (same candidates, same
  // SelectIssueGroup), so entries can be consumed positionally. Sector
  // derivation happens here because it depends on nothing but the ops'
  // addresses; with `bucket` set, the partition-derived *counters* are
  // charged here too (shard-local commit) — they are pure functions of
  // the ops, independent of memsys/cache state, so charging them into a
  // per-shard bucket and folding the buckets after the drain reproduces
  // the serial totals exactly. Functional effects, timing, and the
  // stateful memsys internals stay with the commit thread.
  spec_sectors_count_ = 0;
  spec_sectors_next_ = 0;
  spec_sectors_valid_ = true;
  pending_lanes_.clear();
  for (Lane& lane : lanes_) {
    if (lane.state != Lane::State::kReady) continue;
    if (lane.pending.kind == DeviceOp::Kind::kNone) continue;
    pending_lanes_.push_back(&lane);
  }
  std::size_t remaining = pending_lanes_.size();
  int groups = 0;
  while (remaining != 0) {
    const DeviceOp::Kind kind = SelectIssueGroup(remaining);
    ++groups;
    switch (kind) {
      case DeviceOp::Kind::kLoad:
      case DeviceOp::Kind::kStore:
      case DeviceOp::Kind::kAtomic: {
        if (IsSharedAddr(group_.front()->pending.addr)) {
          if (bucket != nullptr) {
            shared_addrs_.clear();
            for (Lane* lane : group_) {
              shared_addrs_.push_back(lane->pending.addr - kSharedBase);
            }
            const std::uint32_t degree =
                std::max(lc_->memsys.SharedConflictDegree(
                             shared_addrs_, smem_words_scratch_,
                             smem_bank_scratch_),
                         1u);
            bucket->smem_accesses += shared_addrs_.size();
            bucket->smem_bank_conflicts += degree - 1;
          }
          break;
        }
        accesses_.clear();
        std::uint64_t total_bytes = 0;
        for (Lane* lane : group_) {
          const DeviceOp& op = lane->pending;
          accesses_.push_back({op.addr, op.bytes});
          total_bytes += op.bytes;
        }
        EmitSpecSectors(kind, total_bytes);
        if (bucket != nullptr) {
          bucket->global_sectors +=
              spec_sectors_[spec_sectors_count_ - 1].sectors.size();
          bucket->ideal_sectors +=
              IdealSectorCountForBytes(total_bytes, lc_->spec.sector_bytes);
        }
        break;
      }
      case DeviceOp::Kind::kLoadBatch:
      case DeviceOp::Kind::kStoreBatch: {
        accesses_.clear();
        std::uint64_t total_bytes = 0;
        for (Lane* lane : group_) {
          const DeviceOp& op = lane->pending;
          for (std::uint32_t i = 0; i < op.batch_count; ++i) {
            accesses_.push_back({op.batch[i].addr, op.batch[i].bytes});
            total_bytes += op.batch[i].bytes;
          }
        }
        EmitSpecSectors(kind, total_bytes);
        if (bucket != nullptr) {
          bucket->global_sectors +=
              spec_sectors_[spec_sectors_count_ - 1].sectors.size();
          bucket->ideal_sectors +=
              IdealSectorCountForBytes(total_bytes, lc_->spec.sector_bytes);
        }
        break;
      }
      case DeviceOp::Kind::kWork: {
        if (bucket != nullptr) {
          std::uint64_t cycles = 1;
          for (Lane* lane : group_) {
            cycles = std::max(cycles, lane->pending.cycles);
          }
          if (const FaultPlan* faults = lc_->config.faults) {
            cycles *= faults->WorkScale(block_->id());
          }
          bucket->compute_cycles_issued += cycles;
        }
        break;
      }
      case DeviceOp::Kind::kExternal:
        if (bucket != nullptr) bucket->external_calls += group_.size();
        break;
      case DeviceOp::Kind::kSync:
        if (bucket != nullptr) bucket->barrier_arrivals += group_.size();
        break;
      default:
        break;
    }
    if (bucket != nullptr) {
      ++bucket->warp_instructions;
      switch (kind) {
        case DeviceOp::Kind::kWork:
          ++bucket->compute_instructions;
          break;
        case DeviceOp::Kind::kLoad:
        case DeviceOp::Kind::kLoadBatch:
          ++bucket->load_instructions;
          break;
        case DeviceOp::Kind::kStore:
        case DeviceOp::Kind::kStoreBatch:
          ++bucket->store_instructions;
          break;
        case DeviceOp::Kind::kAtomic:
          ++bucket->atomic_instructions;
          break;
        default:
          break;
      }
    }
  }
  if (bucket != nullptr) {
    if (groups > 1) bucket->divergent_replays += std::uint64_t(groups - 1);
    spec_stats_charged_ = true;
  }
}

void Warp::EmitSpecSectors(DeviceOp::Kind kind, std::uint64_t total_bytes) {
  if (spec_sectors_.size() <= spec_sectors_count_) {
    spec_sectors_.emplace_back();
  }
  SpecSectors& entry = spec_sectors_[spec_sectors_count_++];
  entry.kind = kind;
  entry.group_size = std::uint32_t(group_.size());
  entry.total_bytes = total_bytes;
  CoalesceSectors(accesses_, lc_->spec.sector_bytes, entry.sectors);
}

Warp::SpecSectors* Warp::ConsumeSpecSectors(DeviceOp::Kind kind,
                                            std::uint64_t total_bytes) {
  if (!spec_sectors_valid_ || spec_sectors_next_ >= spec_sectors_count_) {
    return nullptr;
  }
  SpecSectors& entry = spec_sectors_[spec_sectors_next_];
  // The tag must match: precompute and commit walked the same partition
  // over the same pending ops, so any divergence is a speculation bug, not
  // a recoverable condition.
  DGC_CHECK(entry.kind == kind &&
            entry.group_size == std::uint32_t(group_.size()) &&
            entry.total_bytes == total_bytes);
  ++spec_sectors_next_;
  return &entry;
}

std::uint64_t Warp::ProcessPhase(std::uint64_t now, bool& processed_any) {
  // Divergent subsets of a warp serialize at ISSUE (one group per issue
  // slot, kIssueCycles apart) but their latencies overlap — both sides of
  // a branch can have memory in flight. The turn completes, and all lanes
  // re-converge, at the slowest group's completion.
  const std::uint64_t kIssueCycles = lc_->spec.issue_cycles;
  std::uint64_t t = now;       // final (max) completion
  std::uint64_t issue = now;   // next group's issue time
  int groups = 0;
  // When the speculated turn already charged its partition-derived
  // counters into a shard bucket, this commit replay must not charge them
  // again. The flag is good for exactly one turn (like the sector cache).
  const bool charge = !spec_stats_charged_;
  spec_stats_charged_ = false;
  // Candidate lanes are fixed for the whole phase: a lane with a pending op
  // is Ready (blocked lanes surrendered their op at the barrier), issuing a
  // group never hands a new op to another lane, and group order is lane
  // order. One pass collects the candidates; each divergent replay then
  // scans only the not-yet-issued remainder, compacting in place — the
  // repeated full-warp rescans this replaces were the scheduler's main
  // per-turn cost.
  pending_lanes_.clear();
  for (Lane& lane : lanes_) {
    if (lane.state != Lane::State::kReady) continue;
    if (lane.pending.kind == DeviceOp::Kind::kNone) continue;
    pending_lanes_.push_back(&lane);
  }
  std::size_t remaining = pending_lanes_.size();
  while (remaining != 0) {
    const DeviceOp::Kind kind = SelectIssueGroup(remaining);
    ++groups;
    processed_any = true;
    // One stats sink per issue group: lanes of a group share an op and —
    // with the block/team-granular instance_of maps the loaders install —
    // an owning instance, so the leading lane speaks for the group.
    LaunchStats& gstats =
        lc_->IssueStats(block_->id(), group_.front()->thread_id);
    if (charge) ++gstats.warp_instructions;

    std::uint64_t t_end = issue;
    switch (kind) {
      case DeviceOp::Kind::kWork:
        if (charge) ++gstats.compute_instructions;
        t_end = IssueWorkGroup(group_, issue, gstats, charge);
        break;
      case DeviceOp::Kind::kLoad:
        if (charge) ++gstats.load_instructions;
        t_end =
            IssueMemoryGroup(group_, /*is_store=*/false, issue, gstats, charge);
        break;
      case DeviceOp::Kind::kLoadBatch:
        if (charge) ++gstats.load_instructions;
        t_end =
            IssueBatchGroup(group_, issue, /*is_store=*/false, gstats, charge);
        break;
      case DeviceOp::Kind::kStoreBatch:
        if (charge) ++gstats.store_instructions;
        t_end =
            IssueBatchGroup(group_, issue, /*is_store=*/true, gstats, charge);
        break;
      case DeviceOp::Kind::kStore:
        if (charge) ++gstats.store_instructions;
        t_end =
            IssueMemoryGroup(group_, /*is_store=*/true, issue, gstats, charge);
        break;
      case DeviceOp::Kind::kAtomic:
        if (charge) ++gstats.atomic_instructions;
        t_end = IssueAtomicGroup(group_, issue, gstats, charge);
        break;
      case DeviceOp::Kind::kExternal:
        t_end = IssueExternalGroup(group_, issue, gstats, charge);
        break;
      case DeviceOp::Kind::kSync:
        IssueSyncGroup(group_, issue, charge);
        issue += kIssueCycles;
        continue;  // lanes are blocked; no completion time to propagate
      case DeviceOp::Kind::kNone:
      case DeviceOp::Kind::kHostFence:  // consumed by the resume loop
        DGC_CHECK(false);
    }

    t_end = std::max(t_end, issue + 1);  // an instruction costs ≥ 1 cycle
    if (lc_->config.trace != nullptr) {
      const bool is_mem = kind == DeviceOp::Kind::kLoad ||
                          kind == DeviceOp::Kind::kStore ||
                          kind == DeviceOp::Kind::kAtomic ||
                          kind == DeviceOp::Kind::kLoadBatch ||
                          kind == DeviceOp::Kind::kStoreBatch;
      lc_->config.trace->Record({block_->id(), warp_id_, block_->sm()->id(),
                                 kind, issue, t_end,
                                 std::uint32_t(group_.size()),
                                 is_mem ? std::uint32_t(sectors_.size()) : 0});
    }
    for (Lane* lane : group_) {
      lane->pending = DeviceOp{};
      processed_.push_back(lane);
    }
    t = std::max(t, t_end);
    issue += kIssueCycles;
  }
  if (charge && groups > 1) {
    lc_->IssueStats(block_->id(), lanes_.front().thread_id).divergent_replays +=
        std::uint64_t(groups - 1);
  }

  // Warp-synchronous re-convergence: every lane processed this turn
  // resumes together at the slowest group's completion. Without this,
  // latency variance between groups staggers the lanes permanently,
  // fragmenting every later turn into ever smaller issue groups — real
  // warps are lockstep and do not do that.
  for (Lane* lane : processed_) {
    if (lane->state == Lane::State::kReady) lane->ready_at = t;
  }
  processed_.clear();
  // Precomputed sectors are good for exactly one turn: the ops they were
  // derived from are consumed above, so a stale cache must never survive
  // into a later turn's groups.
  spec_sectors_valid_ = false;
  return t;
}

std::uint64_t Warp::IssueMemoryGroup(std::span<Lane*> group, bool is_store,
                                     std::uint64_t t, LaunchStats& stats,
                                     bool charge) {
  const bool shared_space = IsSharedAddr(group.front()->pending.addr);
  Memcheck* const memcheck = lc_->config.memcheck;

  // Single pass: functional effect at issue time (in lane order — the
  // sanitizer vetoes accesses without live backing storage; the timing
  // charge still applies) fused with the timing-input gather.
  accesses_.clear();
  shared_addrs_.clear();
  std::uint64_t total_bytes = 0;
  for (Lane* lane : group) {
    DeviceOp& op = lane->pending;
    const bool allowed =
        memcheck == nullptr || shared_space ||
        memcheck->CheckAccess(*lane, op.kind, op.addr, op.bytes, is_store);
    if (is_store) {
      if (allowed) WriteBits(op.host, op.bytes, op.bits);
    } else {
      lane->pending_result = allowed ? ReadBits(op.host, op.bytes) : 0;
    }
    if (shared_space) {
      shared_addrs_.push_back(op.addr - kSharedBase);
    } else {
      accesses_.push_back({op.addr, op.bytes});
      total_bytes += op.bytes;
    }
  }

  if (shared_space) {
    return lc_->memsys.AccessShared(shared_addrs_, t, stats, charge);
  }

  if (SpecSectors* cached =
          ConsumeSpecSectors(group.front()->pending.kind, total_bytes)) {
    sectors_.swap(cached->sectors);
  } else {
    CoalesceSectors(accesses_, lc_->spec.sector_bytes, sectors_);
  }
  if (charge) {
    stats.global_sectors += sectors_.size();
    stats.ideal_sectors +=
        IdealSectorCountForBytes(total_bytes, lc_->spec.sector_bytes);
  }
  return lc_->memsys.Access(block_->sm()->id(), sectors_, is_store, t, stats);
}

std::uint64_t Warp::IssueBatchGroup(std::span<Lane*> group, std::uint64_t t,
                                    bool is_store, LaunchStats& stats,
                                    bool charge) {
  // Pipelined independent loads/stores: every slot of every lane coalesces
  // into one stream of sectors that pays bandwidth-serialized service but
  // only one latency trip — the scoreboarded-MLP behaviour of streaming
  // code.
  Memcheck* const memcheck = lc_->config.memcheck;
  accesses_.clear();
  std::uint64_t total_bytes = 0;
  for (Lane* lane : group) {
    DeviceOp& op = lane->pending;
    for (std::uint32_t i = 0; i < op.batch_count; ++i) {
      BatchSlot& slot = op.batch[i];
      DGC_CHECK_MSG(!IsSharedAddr(slot.addr),
                    "Gather/Scatter target global memory only");
      const bool allowed =
          memcheck == nullptr ||
          memcheck->CheckAccess(*lane, op.kind, slot.addr, slot.bytes,
                                is_store);
      if (is_store) {
        if (allowed) WriteBits(slot.host, slot.bytes, slot.result);
      } else {
        slot.result = allowed ? ReadBits(slot.host, slot.bytes) : 0;
      }
      accesses_.push_back({slot.addr, slot.bytes});
      total_bytes += slot.bytes;
    }
  }
  if (SpecSectors* cached =
          ConsumeSpecSectors(group.front()->pending.kind, total_bytes)) {
    sectors_.swap(cached->sectors);
  } else {
    CoalesceSectors(accesses_, lc_->spec.sector_bytes, sectors_);
  }
  if (charge) {
    stats.global_sectors += sectors_.size();
    stats.ideal_sectors +=
        IdealSectorCountForBytes(total_bytes, lc_->spec.sector_bytes);
  }
  return lc_->memsys.Access(block_->sm()->id(), sectors_, is_store, t, stats);
}

std::uint64_t Warp::IssueAtomicGroup(std::span<Lane*> group, std::uint64_t t,
                                     LaunchStats& stats, bool charge) {
  Memcheck* const memcheck = lc_->config.memcheck;
  const bool shared_space = IsSharedAddr(group.front()->pending.addr);
  // Functional read-modify-write in lane order (deterministic), fused with
  // the timing-input gather.
  accesses_.clear();
  shared_addrs_.clear();
  std::uint64_t total_bytes = 0;
  for (Lane* lane : group) {
    DeviceOp& op = lane->pending;
    const bool allowed =
        memcheck == nullptr || IsSharedAddr(op.addr) ||
        memcheck->CheckAccess(*lane, op.kind, op.addr, op.bytes,
                              /*is_write=*/true);
    lane->pending_result = allowed ? op.apply(op.host, op.bits) : 0;
    if (shared_space) {
      shared_addrs_.push_back(op.addr - kSharedBase);
    } else {
      accesses_.push_back({op.addr, op.bytes});
      total_bytes += op.bytes;
    }
  }
  std::uint64_t t_end;
  if (shared_space) {
    t_end = lc_->memsys.AccessShared(shared_addrs_, t, stats, charge);
  } else {
    if (SpecSectors* cached =
            ConsumeSpecSectors(DeviceOp::Kind::kAtomic, total_bytes)) {
      sectors_.swap(cached->sectors);
    } else {
      CoalesceSectors(accesses_, lc_->spec.sector_bytes, sectors_);
    }
    if (charge) {
      stats.global_sectors += sectors_.size();
      stats.ideal_sectors +=
          IdealSectorCountForBytes(total_bytes, lc_->spec.sector_bytes);
    }
    t_end = lc_->memsys.Access(block_->sm()->id(), sectors_, /*is_store=*/true,
                               t, stats);
  }
  // Lanes updating memory atomically serialize on the atomic unit.
  return t_end + std::uint64_t(lc_->spec.atomic_serialization_cycles) *
                     (group.size() - 1);
}

std::uint64_t Warp::IssueWorkGroup(std::span<Lane*> group, std::uint64_t t,
                                   LaunchStats& stats, bool charge) {
  std::uint64_t cycles = 1;
  for (Lane* lane : group) cycles = std::max(cycles, lane->pending.cycles);
  if (const FaultPlan* faults = lc_->config.faults) {
    // Injected slowdown (e.g. modeling a thermally-throttled block).
    cycles *= faults->WorkScale(block_->id());
  }
  return block_->sm()->IssueCompute(t, cycles, stats, charge);
}

std::uint64_t Warp::IssueExternalGroup(std::span<Lane*> group, std::uint64_t t,
                                       LaunchStats& stats, bool charge) {
  // Host calls are serviced sequentially by the host RPC thread.
  std::uint64_t t_end = t;
  for (Lane* lane : group) {
    DeviceOp& op = lane->pending;
    lane->pending_result = (*op.external)();
    t_end += std::max<std::uint64_t>(op.cycles, 1);
    if (charge) ++stats.external_calls;
  }
  return t_end;
}

void Warp::IssueSyncGroup(std::span<Lane*> group, std::uint64_t t,
                          bool charge) {
  for (Lane* lane : group) {
    Barrier* barrier = lane->pending.barrier;
    lane->pending = DeviceOp{};
    // Arrivals attribute per lane: with teams packed into one block, lanes
    // of a sync group can belong to different instances.
    if (charge) {
      ++lc_->IssueStats(block_->id(), lane->thread_id).barrier_arrivals;
    }
    barrier->Arrive(lane, t, lc_->engine);
  }
}

}  // namespace dgc::sim

#include "gpusim/lane.h"

#include "support/status.h"

namespace dgc::sim {

Lane*& CurrentLane() {
  // thread_local, not static: each device simulation is single-threaded,
  // but the sweep harness runs independent Device instances on concurrent
  // host threads, each needing its own resumption cursor.
  thread_local Lane* current = nullptr;
  return current;
}

Lane::~Lane() {
  if (root_) root_.destroy();
}

void Lane::Start(std::coroutine_handle<> root, std::exception_ptr* error_slot) {
  DGC_CHECK(!root_);
  root_ = root;
  top = root;
  error_slot_ = error_slot;
}

void Lane::Resume() {
  DGC_CHECK(state == State::kReady);
  DGC_CHECK(pending.kind == DeviceOp::Kind::kNone);
  DGC_CHECK(top && !root_finished_);
  Lane* prev = CurrentLane();
  CurrentLane() = this;
  top.resume();
  CurrentLane() = prev;
}

}  // namespace dgc::sim

#include "gpusim/faults.h"

#include "support/rng.h"
#include "support/str.h"

namespace dgc::sim {

std::string_view ToString(TrapKind kind) {
  switch (kind) {
    case TrapKind::kNone: return "none";
    case TrapKind::kOOM: return "oom";
    case TrapKind::kAbort: return "abort";
    case TrapKind::kWatchdog: return "watchdog";
    case TrapKind::kInjected: return "injected";
  }
  return "unknown";
}

std::string_view ToString(LaunchOutcome outcome) {
  switch (outcome) {
    case LaunchOutcome::kCompleted: return "completed";
    case LaunchOutcome::kDeadlocked: return "deadlocked";
  }
  return "unknown";
}

bool FaultPlan::SeededFlip(std::uint64_t seed, std::uint64_t stream,
                           std::uint64_t ordinal, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  SplitMix64 mix(seed ^ (stream * 0x9e3779b97f4a7c15ULL) ^ ordinal);
  return double(mix.Next() >> 11) * 0x1.0p-53 < p;
}

namespace {

bool Contains(const std::vector<std::uint64_t>& v, std::uint64_t x) {
  for (std::uint64_t e : v) {
    if (e == x) return true;
  }
  return false;
}

}  // namespace

bool FaultPlan::NextMallocFails() {
  const std::uint64_t n = ++malloc_calls;
  return Contains(malloc_fail, n) || SeededFlip(seed, 1, n, malloc_fail_p);
}

bool FaultPlan::NextRpcFails() {
  const std::uint64_t n = ++rpc_calls;
  return Contains(rpc_fail, n) || SeededFlip(seed, 2, n, rpc_fail_p);
}

FaultPlan::TrapSite* FaultPlan::MatchTrap(std::uint32_t block,
                                          std::uint32_t warp,
                                          std::uint64_t now) {
  for (TrapSite& site : traps) {
    if (site.fired || site.block != block || site.warp != warp) continue;
    if (now < site.cycle) continue;
    site.fired = true;
    return &site;
  }
  return nullptr;
}

bool FaultPlan::HasPendingTrap(std::uint32_t block, std::uint32_t warp,
                               std::uint64_t now) const {
  for (const TrapSite& site : traps) {
    if (!site.fired && site.block == block && site.warp == warp &&
        site.cycle <= now) {
      return true;
    }
  }
  return false;
}

std::uint64_t FaultPlan::WorkScale(std::uint32_t block) const {
  for (const Slowdown& s : slowdowns) {
    if (s.block == block) return s.factor == 0 ? 1 : s.factor;
  }
  return 1;
}

namespace {

Status BadClause(std::string_view clause, const char* why) {
  return Status(ErrorCode::kInvalidArgument,
                StrFormat("bad fault clause '%.*s': %s", int(clause.size()),
                          clause.data(), why));
}

/// Parses "<letter><int>" (e.g. "b3"); whole field must match.
StatusOr<std::uint64_t> ParsePrefixed(std::string_view field, char prefix,
                                      std::string_view clause) {
  if (field.size() < 2 || field[0] != prefix) {
    return BadClause(clause, "expected <letter><number> fields");
  }
  auto v = ParseInt(field.substr(1));
  if (!v.ok() || *v < 0) {
    return BadClause(clause, "expected a non-negative number");
  }
  return std::uint64_t(*v);
}

/// Parses the value of malloc-fail/rpc-fail: "p<pct>" or "n[,n...]".
Status ParseFailList(std::string_view value, std::string_view clause,
                     std::vector<std::uint64_t>* ordinals, double* probability) {
  if (!value.empty() && value[0] == 'p') {
    auto pct = ParseDouble(value.substr(1));
    if (!pct.ok() || *pct < 0.0 || *pct > 100.0) {
      return BadClause(clause, "probability must be p<0..100>");
    }
    *probability = *pct / 100.0;
    return Status::Ok();
  }
  for (std::string_view part : SplitChar(value, ',')) {
    auto n = ParseInt(part);
    if (!n.ok() || *n < 1) {
      return BadClause(clause, "ordinals are 1-based positive integers");
    }
    ordinals->push_back(std::uint64_t(*n));
  }
  if (ordinals->empty()) return BadClause(clause, "empty ordinal list");
  return Status::Ok();
}

}  // namespace

StatusOr<FaultPlan> FaultPlan::Parse(std::string_view spec) {
  FaultPlan plan;
  for (std::string_view raw : SplitChar(spec, ';')) {
    const std::string_view clause = TrimWhitespace(raw);
    if (clause.empty()) continue;
    const std::size_t at = clause.find('@');
    if (at == std::string_view::npos) {
      return BadClause(clause, "expected <kind>@<value>");
    }
    const std::string_view kind = clause.substr(0, at);
    const std::string_view value = clause.substr(at + 1);
    if (kind == "seed") {
      auto v = ParseInt(value);
      if (!v.ok() || *v < 0) return BadClause(clause, "bad seed");
      plan.seed = std::uint64_t(*v);
    } else if (kind == "malloc-fail") {
      DGC_RETURN_IF_ERROR(ParseFailList(value, clause, &plan.malloc_fail,
                                        &plan.malloc_fail_p));
    } else if (kind == "rpc-fail") {
      DGC_RETURN_IF_ERROR(
          ParseFailList(value, clause, &plan.rpc_fail, &plan.rpc_fail_p));
    } else if (kind == "trap") {
      const auto fields = SplitChar(value, '.');
      if (fields.size() != 3) {
        return BadClause(clause, "expected trap@b<B>.w<W>.c<C>");
      }
      TrapSite site;
      DGC_ASSIGN_OR_RETURN(std::uint64_t b,
                           ParsePrefixed(fields[0], 'b', clause));
      DGC_ASSIGN_OR_RETURN(std::uint64_t w,
                           ParsePrefixed(fields[1], 'w', clause));
      DGC_ASSIGN_OR_RETURN(site.cycle, ParsePrefixed(fields[2], 'c', clause));
      site.block = std::uint32_t(b);
      site.warp = std::uint32_t(w);
      plan.traps.push_back(site);
    } else if (kind == "slow") {
      const auto fields = SplitChar(value, '.');
      if (fields.size() != 2) {
        return BadClause(clause, "expected slow@b<B>.x<F>");
      }
      Slowdown slow;
      DGC_ASSIGN_OR_RETURN(std::uint64_t b,
                           ParsePrefixed(fields[0], 'b', clause));
      DGC_ASSIGN_OR_RETURN(slow.factor, ParsePrefixed(fields[1], 'x', clause));
      if (slow.factor == 0) return BadClause(clause, "factor must be >= 1");
      slow.block = std::uint32_t(b);
      plan.slowdowns.push_back(slow);
    } else {
      return BadClause(clause,
                       "unknown kind (seed, malloc-fail, rpc-fail, trap, slow)");
    }
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::vector<std::string> clauses;
  if (seed != 1) clauses.push_back(StrFormat("seed@%llu",
                                             (unsigned long long)seed));
  auto list_clause = [&](const char* name,
                         const std::vector<std::uint64_t>& ordinals,
                         double p) {
    if (!ordinals.empty()) {
      std::string body;
      for (std::size_t i = 0; i < ordinals.size(); ++i) {
        body += StrFormat(i == 0 ? "%llu" : ",%llu",
                          (unsigned long long)ordinals[i]);
      }
      clauses.push_back(std::string(name) + "@" + body);
    }
    if (p > 0.0) clauses.push_back(StrFormat("%s@p%g", name, p * 100.0));
  };
  list_clause("malloc-fail", malloc_fail, malloc_fail_p);
  list_clause("rpc-fail", rpc_fail, rpc_fail_p);
  for (const TrapSite& t : traps) {
    clauses.push_back(StrFormat("trap@b%u.w%u.c%llu", t.block, t.warp,
                                (unsigned long long)t.cycle));
  }
  for (const Slowdown& s : slowdowns) {
    clauses.push_back(StrFormat("slow@b%u.x%llu", s.block,
                                (unsigned long long)s.factor));
  }
  return Join(clauses, ";");
}

}  // namespace dgc::sim

// Device: the public façade of the GPU simulator.
//
// Owns the device memory, the memory-hierarchy model, and lifetime
// statistics; executes kernels through per-launch LaunchContexts. All host
// interactions that cost time (H2D/D2H copies, kernel launch overhead)
// return their cost in device cycles so callers can compose end-to-end
// timings explicitly.
#pragma once

#include <cstdint>
#include <memory>

#include "gpusim/device_spec.h"
#include "gpusim/kernel.h"
#include "gpusim/memcheck.h"
#include "gpusim/memory.h"
#include "gpusim/memsys.h"
#include "gpusim/stats.h"
#include "support/status.h"

namespace dgc::sim {

struct LaunchResult {
  /// Kernel duration in device cycles, including launch overhead.
  std::uint64_t cycles = 0;
  LaunchStats stats;
  /// How the launch ended. kDeadlocked means the event queue drained with
  /// blocks still resident — the kernel retired abnormally but the process
  /// (and sweep siblings) carry on; loaders map it to per-instance
  /// TerminationReason::kDeadlock.
  LaunchOutcome outcome = LaunchOutcome::kCompleted;
  /// Messages from lanes that terminated with an exception (up to 16),
  /// `instance=I`-prefixed when the config provides instance attribution.
  std::vector<std::string> failures;
  std::uint64_t failure_count = 0;
  /// Snapshot of the sanitizer report after the launch's leak check;
  /// empty/clean when the launch ran without a memcheck.
  MemcheckReport memcheck;

  bool ok() const {
    return failure_count == 0 && outcome == LaunchOutcome::kCompleted;
  }
};

class Device {
 public:
  explicit Device(DeviceSpec spec);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceSpec& spec() const { return spec_; }
  DeviceMemory& memory() { return memory_; }

  /// Allocates device global memory.
  StatusOr<DeviceBuffer> Malloc(std::uint64_t bytes) {
    return memory_.Allocate(bytes);
  }
  Status Free(DeviceAddr addr) { return memory_.Free(addr); }

  /// Host→device copy; returns the transfer cost in device cycles.
  std::uint64_t CopyToDevice(const DeviceBuffer& dst, const void* src,
                             std::uint64_t bytes,
                             std::uint64_t dst_offset = 0);
  /// Device→host copy; returns the transfer cost in device cycles.
  std::uint64_t CopyFromDevice(void* dst, const DeviceBuffer& src,
                               std::uint64_t bytes,
                               std::uint64_t src_offset = 0);

  /// Runs a kernel to completion. Validates the configuration against the
  /// device limits. Lane failures are reported in the result, not as a
  /// Status (a kernel with a crashed thread still retires).
  StatusOr<LaunchResult> Launch(const LaunchConfig& config,
                                const KernelFn& kernel);

  /// Statistics accumulated over every launch on this device.
  const LaunchStats& lifetime_stats() const { return lifetime_stats_; }
  std::uint64_t launches() const { return launches_; }

 private:
  DeviceSpec spec_;
  DeviceMemory memory_;
  MemorySystem memsys_;
  LaunchStats lifetime_stats_;
  std::uint64_t launches_ = 0;
};

/// Convenience: PCIe transfer cost in device cycles for `bytes`.
std::uint64_t TransferCycles(const DeviceSpec& spec, std::uint64_t bytes);

}  // namespace dgc::sim

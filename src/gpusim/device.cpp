#include "gpusim/device.h"

#include <cstring>

#include "gpusim/launch_context.h"
#include "support/str.h"

namespace dgc::sim {

Device::Device(DeviceSpec spec)
    : spec_(std::move(spec)),
      memory_(spec_.global_memory_bytes),
      memsys_(spec_) {
  const std::string problems = spec_.Validate();
  DGC_CHECK_MSG(problems.empty(), "invalid DeviceSpec: " + problems);
}

std::uint64_t TransferCycles(const DeviceSpec& spec, std::uint64_t bytes) {
  return spec.pcie_latency_cycles +
         std::uint64_t(double(bytes) / spec.pcie_bytes_per_cycle);
}

std::uint64_t Device::CopyToDevice(const DeviceBuffer& dst, const void* src,
                                   std::uint64_t bytes,
                                   std::uint64_t dst_offset) {
  DGC_CHECK_MSG(dst_offset + bytes <= dst.bytes, "H2D copy out of bounds");
  std::memcpy(dst.host + dst_offset, src, bytes);
  return TransferCycles(spec_, bytes);
}

std::uint64_t Device::CopyFromDevice(void* dst, const DeviceBuffer& src,
                                     std::uint64_t bytes,
                                     std::uint64_t src_offset) {
  DGC_CHECK_MSG(src_offset + bytes <= src.bytes, "D2H copy out of bounds");
  std::memcpy(dst, src.host + src_offset, bytes);
  return TransferCycles(spec_, bytes);
}

StatusOr<LaunchResult> Device::Launch(const LaunchConfig& config,
                                      const KernelFn& kernel) {
  if (!kernel) {
    return Status(ErrorCode::kInvalidArgument, "null kernel");
  }
  if (config.grid.Count() == 0 || config.block.Count() == 0) {
    return Status(ErrorCode::kInvalidArgument, "empty grid or block");
  }
  if (config.block.Count() > std::uint64_t(spec_.max_threads_per_block)) {
    return Status(
        ErrorCode::kInvalidArgument,
        StrFormat("block of %llu threads exceeds the device limit of %d",
                  (unsigned long long)config.block.Count(),
                  spec_.max_threads_per_block));
  }
  if (config.shared_bytes > spec_.shared_memory_per_block) {
    return Status(ErrorCode::kInvalidArgument,
                  "shared memory request exceeds the per-block limit");
  }
  const int warps = spec_.WarpsPerBlock(int(config.block.Count()));
  if (warps > spec_.max_warps_per_sm) {
    return Status(ErrorCode::kInvalidArgument,
                  "block needs more warp contexts than an SM has");
  }

  memsys_.Reset();  // cold caches per launch; deterministic across launches
  if (config.memcheck != nullptr) config.memcheck->OnLaunchBegin(config);
  LaunchContext lc(spec_, memsys_, config, kernel);
  DGC_RETURN_IF_ERROR(lc.Run());
  if (config.memcheck != nullptr) config.memcheck->OnLaunchEnd(lc.stats);

  LaunchResult result;
  result.outcome = lc.outcome;
  result.stats = lc.stats;
  result.cycles = lc.stats.elapsed_cycles + spec_.kernel_launch_overhead;
  result.failures = std::move(lc.failures);
  result.failure_count = lc.failure_count;
  if (config.memcheck != nullptr) result.memcheck = config.memcheck->report();

  lifetime_stats_.AccumulateSequential(lc.stats);
  ++launches_;
  return result;
}

}  // namespace dgc::sim

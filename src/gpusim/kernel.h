// Kernel launch configuration and the kernel function type.
#pragma once

#include <cstdint>
#include <functional>

#include "gpusim/address.h"
#include "gpusim/task.h"

namespace dgc::sim {

class Memcheck;
class Trace;
struct ThreadCtx;

/// A kernel is a coroutine entry point invoked once per lane. The same
/// callable serves every lane; identity comes from the ThreadCtx.
using KernelFn = std::function<DeviceTask<void>(ThreadCtx&)>;

struct LaunchConfig {
  Dim3 grid{1, 1, 1};   ///< thread blocks (teams)
  Dim3 block{32, 1, 1}; ///< threads per block; .y carries multi-dim mapping
  std::uint32_t shared_bytes = 0;  ///< per-block shared-memory reservation
  /// Label for diagnostics and stats reports.
  const char* name = "kernel";
  /// Optional instruction trace sink (see gpusim/trace.h); null = off.
  Trace* trace = nullptr;
  /// Optional shadow-memory sanitizer (see gpusim/memcheck.h); null = off.
  /// Must already be Attach()ed to the device's memory.
  Memcheck* memcheck = nullptr;
};

}  // namespace dgc::sim

// Kernel launch configuration and the kernel function type.
#pragma once

#include <cstdint>
#include <functional>

#include "gpusim/address.h"
#include "gpusim/faults.h"
#include "gpusim/task.h"

namespace dgc::sim {

class Memcheck;
class Profiler;
class Trace;
struct ThreadCtx;

/// Maps a failing lane to the application instance currently running on it
/// (>= 0), or -1 when unattributable. Installed by the ensemble loader so
/// failure messages carry an `instance=I` prefix.
using InstanceOfFn =
    std::function<std::int32_t(std::uint32_t block_id, std::uint32_t thread_id)>;

/// A kernel is a coroutine entry point invoked once per lane. The same
/// callable serves every lane; identity comes from the ThreadCtx.
using KernelFn = std::function<DeviceTask<void>(ThreadCtx&)>;

struct LaunchConfig {
  Dim3 grid{1, 1, 1};   ///< thread blocks (teams)
  Dim3 block{32, 1, 1}; ///< threads per block; .y carries multi-dim mapping
  std::uint32_t shared_bytes = 0;  ///< per-block shared-memory reservation
  /// Label for diagnostics and stats reports.
  const char* name = "kernel";
  /// Optional instruction trace sink (see gpusim/trace.h); null = off.
  Trace* trace = nullptr;
  /// Optional shadow-memory sanitizer (see gpusim/memcheck.h); null = off.
  /// Must already be Attach()ed to the device's memory.
  Memcheck* memcheck = nullptr;
  /// Optional deterministic fault-injection plan (see gpusim/faults.h);
  /// null = off. Non-owning; consumption counters advance during the run.
  FaultPlan* faults = nullptr;
  /// Launch watchdog: lanes still running at this cycle trap with
  /// TrapKind::kWatchdog, so infinite loops terminate deterministically.
  /// 0 = disabled (the raw simulator default; loaders derive a budget from
  /// the device spec).
  std::uint64_t watchdog_cycles = 0;
  /// Optional instance attribution for failure messages (see InstanceOfFn).
  InstanceOfFn instance_of = nullptr;
  /// Optional launch profiler (see gpusim/profiler.h); null = off. When
  /// set, counters are attributed per instance through `instance_of` and a
  /// utilization timeline is sampled. Non-owning; one profiler may observe
  /// several sequential launches (retry waves).
  Profiler* profiler = nullptr;
  /// Host threads simulating this one launch. 1 (default) is the fully
  /// serial engine; N > 1 shards SMs across N threads that speculatively
  /// run the resume half of upcoming turns inside a bounded cycle window,
  /// while a single commit thread replays every event in exact serial
  /// order — stats, metrics JSON, and traces are byte-identical for every
  /// value. Clamped to the SM count. Multi-warp blocks speculate too (one
  /// in-flight turn per block per round — the walker's earliest-block-event
  /// rule); with a fault plan installed only turns with a pending trap
  /// site serialize (see launch_context.cpp / Warp::CanSpeculate).
  unsigned launch_threads = 1;
  /// Cycle-window length for the threaded engine (how far ahead of the
  /// commit frontier speculation may run). 0 picks the default (2048).
  /// Ignored when the launch executes serially. Any value yields identical
  /// output; this only trades merge-barrier frequency against speculation
  /// depth.
  std::uint64_t launch_window_cycles = 0;
};

}  // namespace dgc::sim

// ThreadCtx: the per-lane device-code API.
//
// Every simulated device function receives a ThreadCtx& and awaits its
// operations:
//
//   DeviceTask<double> Sum(ThreadCtx& ctx, DevicePtr<double> a, int n) {
//     double s = 0;
//     for (int i = ctx.thread_id; i < n; i += ctx.block_threads)
//       s += co_await ctx.Load(a + i);
//     co_return s;
//   }
//
// Loads/stores are *timed*: they suspend the lane, the warp coalesces the
// 32 lanes' addresses, and the memory hierarchy charges cycles. Untimed
// host-side access (DevicePtr::operator*) is reserved for setup paths.
#pragma once

#include <functional>

#include "gpusim/address.h"
#include "gpusim/lane.h"
#include "gpusim/task.h"

namespace dgc::sim {

class Barrier;
class Block;

namespace detail {

/// Raises the current lane's pending trap (if armed) as a DeviceTrap.
/// Called by every awaiter at its resume point, i.e. *inside* the resumed
/// coroutine, so the trap unwinds through the normal exception-transparent
/// task machinery and can be contained per instance by a loader's
/// try/catch. Clears the trap: it fires exactly once.
void RaisePendingTrap();

/// Base for suspending awaiters: parks the op on the current lane and
/// points the lane's resume cursor at the suspended coroutine.
struct OpAwaiterBase {
  DeviceOp op;
  Lane* lane = nullptr;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    lane = CurrentLane();
    lane->pending = op;
    lane->top = h;
  }
};

template <typename T>
struct LoadAwaiter : OpAwaiterBase {
  explicit LoadAwaiter(DevicePtr<T> p) {
    op.kind = DeviceOp::Kind::kLoad;
    op.bytes = sizeof(T);
    op.addr = p.addr;
    op.host = p.host;
  }
  T await_resume() const {
    RaisePendingTrap();
    return FromBits<T>(lane->pending_result);
  }
};

template <typename T>
struct StoreAwaiter : OpAwaiterBase {
  StoreAwaiter(DevicePtr<T> p, T value) {
    op.kind = DeviceOp::Kind::kStore;
    op.bytes = sizeof(T);
    op.addr = p.addr;
    op.host = p.host;
    op.bits = ToBits(value);
  }
  void await_resume() const { RaisePendingTrap(); }
};

template <typename T>
struct AtomicAwaiter : OpAwaiterBase {
  AtomicAwaiter(DevicePtr<T> p, T operand,
                std::uint64_t (*apply)(void*, std::uint64_t)) {
    op.kind = DeviceOp::Kind::kAtomic;
    op.bytes = sizeof(T);
    op.addr = p.addr;
    op.host = p.host;
    op.bits = ToBits(operand);
    op.apply = apply;
  }
  /// Returns the value observed *before* the update, like CUDA atomics.
  T await_resume() const {
    RaisePendingTrap();
    return FromBits<T>(lane->pending_result);
  }
};

struct WorkAwaiter : OpAwaiterBase {
  explicit WorkAwaiter(std::uint64_t cycles) {
    op.kind = DeviceOp::Kind::kWork;
    op.cycles = cycles;
  }
  void await_resume() const { RaisePendingTrap(); }
};

struct SyncAwaiter : OpAwaiterBase {
  explicit SyncAwaiter(Barrier* barrier) {
    op.kind = DeviceOp::Kind::kSync;
    op.barrier = barrier;
  }
  void await_resume() const { RaisePendingTrap(); }
};

/// Pipelined batch load: up to kMaxGather *independent* loads issued as one
/// memory instruction. Models the memory-level parallelism a streaming
/// kernel gets from hardware scoreboarding: the batch pays ONE latency trip
/// plus bandwidth-serialized sector service, instead of one latency per
/// element. Use for loads whose addresses do not depend on each other
/// (CSR rows, gathers); keep dependent chains (binary search, pointer
/// chasing) on scalar Load — that latency is real.
inline constexpr std::uint32_t kMaxGather = 96;

template <typename T>
struct GatherAwaiter {
  static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>);

  BatchSlot slots[kMaxGather];
  std::uint32_t count = 0;
  Lane* lane = nullptr;

  GatherAwaiter() = default;

  /// Appends one element; silently ignored beyond kMaxGather (callers
  /// chunk; Full() lets them check).
  void Add(DevicePtr<T> p) {
    if (count >= kMaxGather) return;
    slots[count++] = BatchSlot{p.addr, p.host, 0, sizeof(T)};
  }
  bool Full() const { return count >= kMaxGather; }

  bool await_ready() const noexcept { return count == 0; }
  void await_suspend(std::coroutine_handle<> h) {
    lane = CurrentLane();
    lane->pending = DeviceOp{};
    lane->pending.kind = DeviceOp::Kind::kLoadBatch;
    lane->pending.batch = slots;
    lane->pending.batch_count = count;
    lane->top = h;
  }
  void await_resume() const { RaisePendingTrap(); }

  /// The i-th loaded value, valid after the co_await completes.
  T Result(std::uint32_t i) const { return FromBits<T>(slots[i].result); }
};

/// Pipelined batch store — the write-side counterpart of GatherAwaiter.
/// Values are staged in the slots at Add time and written at issue.
template <typename T>
struct ScatterAwaiter {
  static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>);

  BatchSlot slots[kMaxGather];
  std::uint32_t count = 0;

  void Add(DevicePtr<T> p, T value) {
    if (count >= kMaxGather) return;
    slots[count++] = BatchSlot{p.addr, p.host, ToBits(value), sizeof(T)};
  }
  bool Full() const { return count >= kMaxGather; }

  bool await_ready() const noexcept { return count == 0; }
  void await_suspend(std::coroutine_handle<> h) {
    Lane* lane = CurrentLane();
    lane->pending = DeviceOp{};
    lane->pending.kind = DeviceOp::Kind::kStoreBatch;
    lane->pending.batch = slots;
    lane->pending.batch_count = count;
    lane->top = h;
  }
  void await_resume() const { RaisePendingTrap(); }
};

/// Suspends at a zero-cost ordering point — see ThreadCtx::HostFence.
struct HostFenceAwaiter {
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    Lane* lane = CurrentLane();
    lane->pending = DeviceOp{};
    lane->pending.kind = DeviceOp::Kind::kHostFence;
    lane->top = h;
  }
  void await_resume() const { RaisePendingTrap(); }
};

struct ExternalAwaiter {
  std::function<std::uint64_t()>* fn;  ///< caller-owned; see HostCall docs
  std::uint64_t latency;
  Lane* lane = nullptr;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    lane = CurrentLane();
    lane->pending = DeviceOp{};
    lane->pending.kind = DeviceOp::Kind::kExternal;
    lane->pending.cycles = latency;
    lane->pending.external = fn;
    lane->top = h;
  }
  std::uint64_t await_resume() const {
    RaisePendingTrap();
    return lane->pending_result;
  }
};

// Every awaiter must be trivially destructible: temporaries inside a
// `co_await` full-expression that need destruction after the suspension
// point are miscompiled by some compilers (observed with GCC 12), so the
// device API never hands out one. Non-trivial state (e.g. an RPC handler)
// lives in a named coroutine local owned by the caller.
static_assert(std::is_trivially_destructible_v<HostFenceAwaiter>);
static_assert(std::is_trivially_destructible_v<WorkAwaiter>);
static_assert(std::is_trivially_destructible_v<SyncAwaiter>);
static_assert(std::is_trivially_destructible_v<ExternalAwaiter>);
static_assert(std::is_trivially_destructible_v<LoadAwaiter<double>>);
static_assert(std::is_trivially_destructible_v<GatherAwaiter<double>>);
static_assert(std::is_trivially_destructible_v<ScatterAwaiter<double>>);
static_assert(std::is_trivially_destructible_v<StoreAwaiter<double>>);
static_assert(std::is_trivially_destructible_v<AtomicAwaiter<double>>);

// Atomic functional updates, applied by the warp at issue time.
template <typename T>
std::uint64_t ApplyAdd(void* host, std::uint64_t operand) {
  T* p = static_cast<T*>(host);
  const T old = *p;
  *p = T(old + FromBits<T>(operand));
  return ToBits(old);
}

template <typename T>
std::uint64_t ApplyMin(void* host, std::uint64_t operand) {
  T* p = static_cast<T*>(host);
  const T old = *p;
  const T v = FromBits<T>(operand);
  if (v < old) *p = v;
  return ToBits(old);
}

template <typename T>
std::uint64_t ApplyMax(void* host, std::uint64_t operand) {
  T* p = static_cast<T*>(host);
  const T old = *p;
  const T v = FromBits<T>(operand);
  if (v > old) *p = v;
  return ToBits(old);
}

template <typename T>
std::uint64_t ApplyExch(void* host, std::uint64_t operand) {
  T* p = static_cast<T*>(host);
  const T old = *p;
  *p = FromBits<T>(operand);
  return ToBits(old);
}

}  // namespace detail

struct ThreadCtx {
  Lane* lane = nullptr;
  Block* block = nullptr;

  // Identity within the launch.
  std::uint32_t thread_id = 0;   ///< linear id within the block
  Dim3 tid3;                     ///< 3-D id within the block
  std::uint32_t block_id = 0;    ///< linear id within the grid
  std::uint32_t block_threads = 1;
  Dim3 block_dim;
  std::uint32_t grid_blocks = 1;

  // --- Timed device operations (co_await the result) ------------------------
  template <typename T>
  detail::LoadAwaiter<T> Load(DevicePtr<T> p) const {
    return detail::LoadAwaiter<T>(p);
  }
  template <typename T>
  detail::StoreAwaiter<T> Store(DevicePtr<T> p, T value) const {
    return detail::StoreAwaiter<T>(p, value);
  }
  template <typename T>
  detail::AtomicAwaiter<T> AtomicAdd(DevicePtr<T> p, T v) const {
    return detail::AtomicAwaiter<T>(p, v, &detail::ApplyAdd<T>);
  }
  template <typename T>
  detail::AtomicAwaiter<T> AtomicMin(DevicePtr<T> p, T v) const {
    return detail::AtomicAwaiter<T>(p, v, &detail::ApplyMin<T>);
  }
  template <typename T>
  detail::AtomicAwaiter<T> AtomicMax(DevicePtr<T> p, T v) const {
    return detail::AtomicAwaiter<T>(p, v, &detail::ApplyMax<T>);
  }
  template <typename T>
  detail::AtomicAwaiter<T> AtomicExch(DevicePtr<T> p, T v) const {
    return detail::AtomicAwaiter<T>(p, v, &detail::ApplyExch<T>);
  }

  /// Pure compute for `cycles` SM cycles (contends for issue pipes).
  detail::WorkAwaiter Work(std::uint64_t cycles) const {
    return detail::WorkAwaiter(cycles);
  }

  /// Empty gather to fill with Add() and then co_await:
  ///   auto g = ctx.Gather<double>();
  ///   for (...) g.Add(ptrs[i]);
  ///   co_await g;           // one pipelined instruction
  ///   ... g.Result(i) ...
  template <typename T>
  detail::GatherAwaiter<T> Gather() const {
    return {};
  }

  /// Gather of `count` consecutive elements starting at `p` (a streaming
  /// run). count must be ≤ kMaxGather.
  template <typename T>
  detail::GatherAwaiter<T> LoadRun(DevicePtr<T> p, std::uint32_t count) const {
    detail::GatherAwaiter<T> g;
    for (std::uint32_t i = 0; i < count; ++i) g.Add(p + i);
    return g;
  }

  /// Empty scatter (pipelined independent stores) to fill with Add():
  ///   auto s = ctx.Scatter<double>();
  ///   for (...) s.Add(out + i, value[i]);
  ///   co_await s;
  template <typename T>
  detail::ScatterAwaiter<T> Scatter() const {
    return {};
  }

  /// Block-wide barrier (__syncthreads). Implemented in ctx.cpp — it needs
  /// the Block definition.
  detail::SyncAwaiter SyncThreads() const;

  /// Current device time in cycles (the launch's event-engine clock).
  /// Untimed — a convenience for runtimes that account per-instance cycles.
  std::uint64_t Now() const;

  /// Arms (cycles > 0) or disarms (cycles == 0) a watchdog over every lane
  /// of this lane's team row (tid3.y): each lane traps with kWatchdog at
  /// its first resume at or after now + cycles. The ensemble loader re-arms
  /// this per instance so a hung instance is killed without bounding its
  /// well-behaved siblings.
  void ArmRowWatchdog(std::uint64_t cycles) const;

  /// Zero-cost commit-order fence for host-visible side effects. Device
  /// runtime code that mutates launch-global host state from inside a
  /// coroutine (the libc heap walking DeviceMemory, shared-segment
  /// acquisition) must put the mutation *after* a HostFence:
  ///
  ///   co_await ctx.HostFence();
  ///   device.Malloc(bytes);   // now runs on the commit thread, in order
  ///
  /// Executing inline (launch_threads == 1, or any lane the threaded
  /// engine resumes on the commit thread), the warp re-resumes the lane
  /// immediately — the fence is invisible: no cycles, no counters, same
  /// side-effect order as code without it. Under speculative resume the
  /// lane parks at the fence and the commit turn finishes it at the exact
  /// event-order slot the serial engine would have, which is what keeps
  /// `--launch-threads N` byte-identical to N = 1.
  detail::HostFenceAwaiter HostFence() const {
    return detail::HostFenceAwaiter{};
  }

  /// Barrier over an explicit lane set (sub-team synchronization).
  detail::SyncAwaiter SyncOn(Barrier* barrier) const {
    return detail::SyncAwaiter(barrier);
  }

  /// Host callback (the RPC hook): pays `latency` device cycles and runs
  /// `*fn` on the host at service time; resumes with fn's return value.
  ///
  /// `*fn` must be a named local of the calling coroutine (it must stay
  /// alive across the suspension):
  ///
  ///   std::function<std::uint64_t()> handler = [...] { ... };
  ///   auto reply = co_await ctx.HostCall(&handler, latency);
  detail::ExternalAwaiter HostCall(std::function<std::uint64_t()>* fn,
                                   std::uint64_t latency) const {
    return detail::ExternalAwaiter{fn, latency};
  }
};

}  // namespace dgc::sim

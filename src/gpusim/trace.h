// Optional per-launch instruction tracing.
//
// When a LaunchConfig carries a Trace sink, every issued warp instruction
// group is recorded (kind, issue/completion cycle, lanes, sectors). The
// trace can be exported as Chrome-trace JSON (chrome://tracing /
// ui.perfetto.dev): one row per warp, grouped by SM — the quickest way to
// see why an ensemble bends (DRAM queueing shows up as stretching memory
// slices).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/lane.h"
#include "support/status.h"

namespace dgc::sim {

struct TraceEvent {
  std::uint32_t block = 0;
  std::uint32_t warp = 0;  ///< warp id within the block
  std::int32_t sm = 0;
  DeviceOp::Kind kind = DeviceOp::Kind::kNone;
  std::uint64_t issue = 0;     ///< cycle the group issued
  std::uint64_t complete = 0;  ///< cycle the group completed
  std::uint32_t lanes = 0;     ///< lanes in the group
  std::uint32_t sectors = 0;   ///< memory sectors touched (mem kinds only)
  /// Relaunch wave the event belongs to (stamped by Record from the trace's
  /// current wave). Block ids repeat across retry waves; without the wave in
  /// the row key, unrelated waves would merge into one Perfetto row.
  std::uint32_t wave = 0;
};

/// Human-readable tag for an op kind ("load", "work", ...).
std::string_view TraceKindName(DeviceOp::Kind kind);

class Trace {
 public:
  /// `capacity` bounds memory use; further events are dropped (counted).
  explicit Trace(std::size_t capacity = 1 << 20) : capacity_(capacity) {}

  void Record(const TraceEvent& event) {
    if (events_.size() < capacity_) {
      events_.push_back(event);
      events_.back().wave = current_wave_;
    } else {
      ++dropped_;
    }
  }

  /// Marks the start of a relaunch wave: events recorded from here on are
  /// stamped with the next wave index. Called by the ensemble loader before
  /// each retry launch (the initial launch is wave 0).
  void BeginWave() { ++current_wave_; }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint32_t current_wave() const { return current_wave_; }
  void Clear() {
    events_.clear();
    dropped_ = 0;
    current_wave_ = 0;
  }

  /// Chrome-trace JSON ("ts"/"dur" in simulated cycles, pid = SM,
  /// tid = wave:block:warp so retry waves get distinct rows).
  std::string ToChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
  std::uint32_t current_wave_ = 0;
};

}  // namespace dgc::sim

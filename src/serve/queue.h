// The bounded job queue: backpressure made explicit.
//
// A production service must never let its backlog grow without bound — an
// overload burst is answered with a *reject-with-reason*, not with memory
// growth and eventual collapse. This queue holds admitted-but-not-yet-
// launched job ids, refuses pushes at capacity, and hands the scheduler a
// deterministic dispatch order: priority descending, FIFO within a
// priority level.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/job.h"
#include "support/status.h"

namespace dgc::serve {

class BoundedJobQueue {
 public:
  explicit BoundedJobQueue(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }
  bool Empty() const { return entries_.empty(); }
  bool Full() const { return entries_.size() >= capacity_; }
  /// High-water mark of the queue depth over the service lifetime.
  std::size_t peak_depth() const { return peak_depth_; }

  /// Enqueues a job; kFailedPrecondition at capacity (the caller turns
  /// that into a kQueueFull rejection — the queue itself never grows past
  /// its bound).
  Status Push(JobId id, std::int64_t priority);

  /// Removes one job (dispatched, expired, or cancelled). False when the
  /// id is not queued.
  bool Remove(JobId id);

  /// Job ids in dispatch order: priority descending, then enqueue order.
  std::vector<JobId> OrderedIds() const;

  /// Removes and returns every queued id (dispatch order) — the drain path.
  std::vector<JobId> TakeAll();

 private:
  struct Entry {
    JobId id = 0;
    std::int64_t priority = 0;
    std::uint64_t seq = 0;  ///< enqueue order, the FIFO tiebreak
  };

  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
  std::size_t peak_depth_ = 0;
  std::vector<Entry> entries_;  ///< unordered; OrderedIds sorts a copy
};

}  // namespace dgc::serve

#include "serve/job.h"

namespace dgc::serve {

std::string_view ToString(JobOutcome outcome) {
  switch (outcome) {
    case JobOutcome::kPending: return "pending";
    case JobOutcome::kSucceeded: return "succeeded";
    case JobOutcome::kAppError: return "app-error";
    case JobOutcome::kFailed: return "failed";
    case JobOutcome::kDeadlineMissed: return "deadline-missed";
    case JobOutcome::kRejected: return "rejected";
    case JobOutcome::kCancelled: return "cancelled";
  }
  return "unknown";
}

std::string_view ToString(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue-full";
    case RejectReason::kMalformed: return "malformed";
    case RejectReason::kQuarantined: return "quarantined";
    case RejectReason::kDraining: return "draining";
  }
  return "unknown";
}

}  // namespace dgc::serve

// The ensemble service scheduler: a simulated-time event loop that packs a
// job stream into ensemble launches.
//
// Where a batch loader runs once and exits, the service runs an event loop
// in *virtual device time*: arrivals, launch completions, retry backoffs,
// quarantine probes, and the drain point are all events on one totally
// ordered queue (cycle, kind, sequence). Launch durations come from the
// simulator itself — a launch started at cycle T whose simulation reports
// C cycles completes at T+C — so the loop is driven by completions, not by
// wall-clock. Host threads only *accelerate* the simulations of launches
// that are concurrently in flight on different device slots; every
// scheduling decision happens on the loop thread at a deterministic
// virtual time. Same seed + same job stream ⇒ byte-identical outcome log
// and metrics sidecars for any --jobs value.
//
// Robustness mechanisms (see docs/MODEL.md "Failure semantics"):
//   admission   occupancy team cap + learned memory estimates (admission.h)
//   backpressure bounded queue, reject-with-reason (queue.h)
//   deadlines   per-job budgets lowered onto instance watchdogs
//   retry       exponential backoff + per-wave team-cap shrink (policy.h)
//   quarantine  per-app circuit breaker with half-open probes (policy.h)
//   drain       finish in-flight, cancel queued, reject new, final report
//   chaos       seeded service-level fault schedule (chaos.h)
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <queue>
#include <string>
#include <vector>

#include "serve/admission.h"
#include "serve/chaos.h"
#include "serve/job.h"
#include "serve/policy.h"
#include "serve/queue.h"
#include "gpusim/device_spec.h"
#include "support/status.h"
#include "support/thread_pool.h"

namespace dgc::dgcf {
struct RunResult;
}  // namespace dgc::dgcf

namespace dgc::serve {

struct ServeConfig {
  sim::DeviceSpec spec;            ///< one spec shared by every device slot
  std::uint32_t thread_limit = 128;
  std::uint32_t teams_per_block = 1;
  std::uint32_t devices = 1;       ///< independent device slots
  unsigned jobs = 1;               ///< host worker threads (0 = hardware)
  std::size_t queue_capacity = 16;
  AdmissionConfig admission;
  RetryPolicy retry;
  CircuitBreaker::Config breaker;
  /// Within-launch retry waves (EnsembleOptions::max_attempts/retry_shrink).
  std::uint32_t launch_attempts = 1;
  std::uint32_t retry_shrink = 2;
  std::uint64_t watchdog_cycles = 0;          ///< per-launch budget (0=spec)
  std::uint64_t instance_watchdog_cycles = 0; ///< per-instance cap (0=off)
  bool share_data = false;
  ChaosPlan chaos;
  /// Deterministic drain point in service cycles (0 = none): the scripted
  /// stand-in for SIGTERM in replayable runs.
  std::uint64_t drain_at = 0;
  /// Polled once per loop iteration; returning true begins the drain. The
  /// CLI wires its SIGTERM flag here — the scheduler itself stays
  /// signal-free and testable.
  std::function<bool()> drain_poll;
  std::ostream* log = nullptr;     ///< outcome log sink (null = silent)
  /// When non-empty, each launch writes `<prefix>.launch<N>.json`
  /// (dgc-metrics-v1, profiled).
  std::string metrics_prefix;
};

/// The final report — also serialized as the log's trailing lines.
struct ServeReport {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_full = 0;
  std::uint64_t rejected_malformed = 0;
  std::uint64_t rejected_quarantined = 0;
  std::uint64_t rejected_draining = 0;
  std::uint64_t succeeded = 0;
  std::uint64_t app_error = 0;
  std::uint64_t failed = 0;
  std::uint64_t deadline_missed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t retries = 0;
  std::uint64_t launches = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t peak_queue_depth = 0;
  std::uint64_t final_cycle = 0;
  bool drained = false;

  /// Service success: no *admitted* job ended abnormally. Rejections are
  /// backpressure doing its job; cancellations are the drain's.
  bool ok() const {
    return app_error == 0 && failed == 0 && deadline_missed == 0;
  }
};

class Scheduler {
 public:
  explicit Scheduler(ServeConfig config);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Builds device slots and the admission caps. Call once before Run.
  Status Init();

  /// Appends parsed requests as arrival events (arrival cycle = the later
  /// of the request's @at and the current virtual time).
  void EnqueueStream(const std::vector<JobRequest>& requests);

  /// Runs the event loop until no events remain and every device is idle
  /// (or the drain finished). Re-entrant: a follow-mode front end may
  /// alternate EnqueueStream and Run. Never hangs: a queue the devices can
  /// never serve fails deterministically instead of stalling.
  Status Run();

  /// Begins a graceful drain (idempotent): in-flight launches finish,
  /// queued jobs are cancelled, new work is rejected.
  void RequestDrain();
  bool draining() const { return draining_; }

  /// Writes the `report:` block to the log and returns the report.
  ServeReport WriteReport();

  const std::vector<JobRecord>& records() const { return records_; }
  ServeReport report() const;
  std::uint64_t now() const { return now_; }

 private:
  struct DeviceSlot;
  struct InFlight;

  enum class EventKind : std::uint8_t {
    // Completion events sort before arrivals at the same cycle: freed
    // capacity and queue slots are visible to same-cycle admissions.
    kJobDone = 0,
    kDeviceFree,
    kBreakerProbe,
    kDrain,
    kArrival,
  };

  struct Event {
    std::uint64_t cycle = 0;
    EventKind kind = EventKind::kArrival;
    std::uint64_t seq = 0;  ///< tiebreak: creation order
    std::uint32_t a = 0;    ///< job id / launch id / slot
    std::uint32_t b = 0;    ///< slot-in-batch / flags
    std::string app;        ///< breaker-probe target

    bool operator>(const Event& other) const {
      if (cycle != other.cycle) return cycle > other.cycle;
      if (kind != other.kind) return kind > other.kind;
      return seq > other.seq;
    }
  };

  void PushEvent(Event event);
  void Log(const std::string& line);
  CircuitBreaker& BreakerFor(const std::string& app);

  void HandleArrival(const Event& event);
  void HandleJobDone(const Event& event);
  void HandleDeviceFree(const Event& event);
  void HandleBreakerProbe(const Event& event);
  void BeginDrain(const char* reason);
  void FinalizeReject(JobId id, RejectReason reason);
  void FinalizeJob(JobId id, JobOutcome outcome, const std::string& detail);
  void ExpireQueuedDeadlines();
  void StartLaunches();
  bool StartOneLaunch(std::uint32_t slot);
  bool ProbeInFlight(const std::string& app) const;
  void ResolveInFlight();
  void FailStalledQueue();

  ServeConfig config_;
  bool initialized_ = false;
  bool draining_ = false;
  std::uint64_t now_ = 0;
  std::uint64_t event_seq_ = 0;
  std::uint64_t arrival_floor_ = 0;   ///< arrivals never go backwards
  std::uint64_t next_ordinal_ = 0;    ///< submission ordinals (chaos key)
  std::uint32_t next_launch_ = 0;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::vector<JobRecord> records_;    ///< indexed by JobId
  BoundedJobQueue queue_;
  AdmissionController admission_;
  std::map<std::string, CircuitBreaker> breakers_;
  std::vector<std::unique_ptr<DeviceSlot>> slots_;
  std::vector<std::unique_ptr<InFlight>> in_flight_;  ///< by launch id
  std::unique_ptr<ThreadPool> pool_;  ///< accelerates concurrent launches
  ServeReport tally_;                 ///< counters not derivable from records
};

}  // namespace dgc::serve

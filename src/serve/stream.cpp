#include "serve/stream.h"

#include <fstream>
#include <sstream>

#include "ensemble/argfile.h"
#include "support/str.h"

namespace dgc::serve {

namespace {

Status BadLine(const std::vector<std::string>& tokens, const char* why) {
  return Status(ErrorCode::kInvalidArgument,
                StrFormat("bad job line '%s': %s",
                          Join(tokens, " ").c_str(), why));
}

/// Parses the value of "@name=<n>" into a non-negative integer.
StatusOr<std::int64_t> DirectiveValue(std::string_view token,
                                      std::string_view name,
                                      const std::vector<std::string>& tokens) {
  const std::string_view value = token.substr(name.size());
  auto v = ParseInt(value);
  if (!v.ok() || *v < 0) {
    return BadLine(tokens, "directive value must be a non-negative integer");
  }
  return *v;
}

}  // namespace

StatusOr<JobRequest> ParseJobTokens(const std::vector<std::string>& tokens) {
  JobRequest request;
  std::size_t i = 0;
  for (; i < tokens.size(); ++i) {
    const std::string_view t = tokens[i];
    if (t.empty() || t[0] != '@') break;
    if (t.rfind("@at=", 0) == 0) {
      DGC_ASSIGN_OR_RETURN(std::int64_t v, DirectiveValue(t, "@at=", tokens));
      request.at = std::uint64_t(v);
    } else if (t.rfind("@deadline=", 0) == 0) {
      DGC_ASSIGN_OR_RETURN(std::int64_t v,
                           DirectiveValue(t, "@deadline=", tokens));
      request.deadline_budget = std::uint64_t(v);
    } else if (t.rfind("@prio=", 0) == 0) {
      const std::string_view value = t.substr(6);
      auto v = ParseInt(value);
      if (!v.ok()) return BadLine(tokens, "@prio= must be an integer");
      request.priority = *v;
    } else {
      return BadLine(tokens, "unknown directive (@at=, @deadline=, @prio=)");
    }
  }
  if (i == tokens.size()) {
    return BadLine(tokens, "missing app name after directives");
  }
  request.app = tokens[i++];
  request.args.assign(tokens.begin() + std::ptrdiff_t(i), tokens.end());
  return request;
}

StatusOr<std::vector<JobRequest>> ParseJobStream(std::string_view content) {
  DGC_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                       ensemble::ParseArgumentLines(content));
  std::vector<JobRequest> requests;
  requests.reserve(rows.size());
  std::uint64_t floor = 0;
  for (const std::vector<std::string>& row : rows) {
    DGC_ASSIGN_OR_RETURN(JobRequest request, ParseJobTokens(row));
    // Arrival cycles never go backwards: a smaller (or absent) @at inherits
    // the previous job's arrival.
    floor = std::max(floor, request.at);
    request.at = floor;
    requests.push_back(std::move(request));
  }
  return requests;
}

StatusOr<std::vector<JobRequest>> LoadJobStream(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(ErrorCode::kNotFound, "cannot open job stream: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseJobStream(buffer.str());
}

}  // namespace dgc::serve

// Service-level chaos: a seeded, deterministic fault schedule over the
// *job stream* — the testing story for every service failure path.
//
// Launch-level injection (gpusim/faults.h) answers "what if this lane
// traps"; chaos answers "what if the service is fed garbage": malformed
// submissions, jobs that trap mid-launch, jobs that run pathologically
// slow. Decisions are keyed on the job's 1-based submission ordinal and a
// seed, using the same hash behind FaultPlan's probabilistic clauses —
// evaluation order never matters, so a chaos run replays byte-identically.
//
// Spec grammar (semicolon-separated clauses):
//   seed@<n>                 decision seed (default 1)
//   malformed@<n>[,...]      reject the n-th submitted job as malformed
//   malformed@p<pct>         ... or each job with pct% probability
//   trap@<n>[,...]           inject a trap into the n-th job's launch slot
//   trap@p<pct>              ... or each job with pct% probability
//   slow@<n>[,...].x<F>      scale the n-th job's compute by F
//   slow@p<pct>.x<F>         ... or each job with pct% probability
//
// Trap/slow decisions are *compiled down* to the launch-level vocabulary
// by the scheduler: job slot S becomes FaultPlan::AddTrap/AddSlowdown on
// the block running S.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace dgc::serve {

struct ChaosPlan {
  /// SeededFlip streams for chaos decisions. FaultPlan's own clauses use
  /// streams 1-2; chaos starts at 16 so a shared seed never correlates
  /// service-level and launch-level injection.
  static constexpr std::uint64_t kMalformedStream = 16;
  static constexpr std::uint64_t kTrapStream = 17;
  static constexpr std::uint64_t kSlowStream = 18;

  std::uint64_t seed = 1;
  std::vector<std::uint64_t> malformed;  ///< 1-based job ordinals
  double malformed_p = 0.0;
  std::vector<std::uint64_t> trap;
  double trap_p = 0.0;
  std::vector<std::uint64_t> slow;
  double slow_p = 0.0;
  std::uint64_t slow_factor = 1;

  /// What chaos does to the job with this submission ordinal.
  struct Decision {
    bool malformed = false;
    bool trap = false;
    std::uint64_t slow_factor = 1;  ///< 1 = unaffected
  };

  bool empty() const {
    return malformed.empty() && malformed_p == 0.0 && trap.empty() &&
           trap_p == 0.0 && slow.empty() && slow_p == 0.0;
  }

  /// Stateless, order-independent decision for one submission ordinal.
  Decision Decide(std::uint64_t ordinal) const;

  /// Parses the grammar above; an empty spec yields an empty plan.
  static StatusOr<ChaosPlan> Parse(std::string_view spec);
  /// Canonical spec string ("" for an empty plan).
  std::string ToString() const;
};

}  // namespace dgc::serve

// Job-stream parsing: the textual front end of dgc-serve.
//
// A job stream is a sequence of lines, one job per line, reusing the
// ensemble argument-file lexer (comments with '#', double quotes, escape
// sequences). Each line is
//
//   [@at=<cycle>] [@deadline=<cycles>] [@prio=<n>] <app> [argv...]
//
// where the optional leading @-directives set the arrival cycle (absolute,
// clamped monotonically non-decreasing across the stream; default = the
// previous job's arrival), the deadline budget (cycles from arrival;
// 0/absent = none), and the dispatch priority (higher first; default 0).
// The first token that is not a directive names the registered app; the
// rest is the instance's argv[1..].
#pragma once

#include <string_view>
#include <vector>

#include "serve/job.h"
#include "support/status.h"

namespace dgc::serve {

/// Parses one tokenized job line (comment filtering already done).
StatusOr<JobRequest> ParseJobTokens(const std::vector<std::string>& tokens);

/// Parses a whole job-stream document. Arrival cycles are clamped to be
/// monotonically non-decreasing; a line with no @at inherits the previous
/// arrival cycle (0 for the first).
StatusOr<std::vector<JobRequest>> ParseJobStream(std::string_view content);

/// Loads and parses a job-stream file from the host filesystem.
StatusOr<std::vector<JobRequest>> LoadJobStream(const std::string& path);

}  // namespace dgc::serve

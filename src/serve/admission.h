// Admission control: how many jobs fit one launch, and in how much memory.
//
// Two independent caps bound each ensemble launch the scheduler packs:
//
//  - Occupancy (gpusim/occupancy.h): the device's co-resident block slots
//    at the service's launch shape bound the teams one wave can run
//    without oversubscription — the §3.1 "instances limited by teams"
//    argument, applied at admission time.
//
//  - Device memory: each packed job is charged an estimated footprint
//    against the device's remaining budget (capacity × headroom minus
//    bytes already in use — leaked bytes shrink future budgets, which is
//    graceful degradation, not a crash). Estimates start at a configured
//    default and are tightened by observation: every finished instance
//    feeds its measured peak back (PR 5's per-owner accounting). With
//    shared read-only data on, duplicate jobs of an identical argv are
//    charged the much smaller *attach* estimate — the admission-side
//    mirror of content-keyed shared segments.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "gpusim/device_spec.h"
#include "support/status.h"

namespace dgc::serve {

struct AdmissionConfig {
  /// Hard cap on jobs per launch; 0 = occupancy cap only.
  std::uint32_t max_batch = 0;
  /// Footprint charged for an app never observed before, bytes.
  std::uint64_t default_estimate = 1 << 20;
  /// Fraction of device memory the scheduler may plan into.
  double headroom = 0.9;
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config)
      : config_(config) {}

  /// Computes the occupancy team cap for the service's launch shape.
  Status Init(const sim::DeviceSpec& spec, std::uint32_t thread_limit,
              std::uint32_t teams_per_block);

  /// Max teams (= jobs at one job per team) a launch may carry.
  std::uint32_t team_cap() const { return team_cap_; }
  /// Max jobs per launch after the configured batch cap.
  std::uint32_t batch_cap() const;

  /// Planning budget for a device currently using `bytes_in_use` of
  /// `capacity` bytes: headroom × capacity − in-use (0 when exhausted).
  std::uint64_t MemoryBudget(std::uint64_t capacity,
                             std::uint64_t bytes_in_use) const;

  /// Estimated full footprint of one `app` job.
  std::uint64_t EstimateFor(const std::string& app) const;
  /// Estimated footprint of a job that re-attaches shared input data.
  std::uint64_t AttachEstimateFor(const std::string& app) const;

  /// Feeds back a finished instance's measured peak (full materialization).
  void Observe(const std::string& app, std::uint64_t peak_bytes);
  /// Feeds back the measured peak of an instance that attached to an
  /// existing shared segment instead of materializing its own copy.
  void ObserveAttach(const std::string& app, std::uint64_t peak_bytes);

 private:
  struct Estimate {
    std::uint64_t full = 0;    ///< 0 = never observed
    std::uint64_t attach = 0;  ///< 0 = never observed
  };

  /// Padded estimate: observed peak + 1/8 — tight enough to pack well,
  /// padded enough that run-to-run jitter does not oscillate admission.
  static std::uint64_t Padded(std::uint64_t peak) { return peak + peak / 8; }

  AdmissionConfig config_;
  std::uint32_t team_cap_ = 1;
  std::map<std::string, Estimate> estimates_;
};

}  // namespace dgc::serve

#include "serve/policy.h"

#include <algorithm>

namespace dgc::serve {

void CircuitBreaker::RecordSuccess() {
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  cooldown_multiplier_ = 1;
  open_until_ = 0;
}

bool CircuitBreaker::RecordFailure(std::uint64_t now) {
  if (config_.failure_threshold == 0) return false;
  ++consecutive_failures_;
  const bool trip = state_ == State::kHalfOpen ||
                    consecutive_failures_ >= config_.failure_threshold;
  if (!trip) return false;
  const bool reopening = state_ != State::kClosed;
  state_ = State::kOpen;
  open_until_ = now + config_.cooldown * cooldown_multiplier_;
  if (reopening) {
    // Each failed probe doubles the cooldown (capped): a persistently bad
    // app consumes geometrically less probe capacity.
    cooldown_multiplier_ =
        std::min(cooldown_multiplier_ * 2, config_.max_cooldown_multiplier);
  }
  return true;
}

void CircuitBreaker::HalfOpen() {
  if (state_ == State::kOpen) state_ = State::kHalfOpen;
}

std::string_view ToString(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "unknown";
}

}  // namespace dgc::serve

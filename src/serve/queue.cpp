#include "serve/queue.h"

#include <algorithm>

namespace dgc::serve {

Status BoundedJobQueue::Push(JobId id, std::int64_t priority) {
  if (Full()) {
    return Status(ErrorCode::kFailedPrecondition, "job queue at capacity");
  }
  entries_.push_back(Entry{id, priority, next_seq_++});
  peak_depth_ = std::max(peak_depth_, entries_.size());
  return Status::Ok();
}

bool BoundedJobQueue::Remove(JobId id) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].id == id) {
      entries_.erase(entries_.begin() + std::ptrdiff_t(i));
      return true;
    }
  }
  return false;
}

std::vector<JobId> BoundedJobQueue::OrderedIds() const {
  std::vector<Entry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.seq < b.seq;
  });
  std::vector<JobId> ids;
  ids.reserve(sorted.size());
  for (const Entry& e : sorted) ids.push_back(e.id);
  return ids;
}

std::vector<JobId> BoundedJobQueue::TakeAll() {
  std::vector<JobId> ids = OrderedIds();
  entries_.clear();
  return ids;
}

}  // namespace dgc::serve

#include "serve/chaos.h"

#include "gpusim/faults.h"
#include "support/str.h"

namespace dgc::serve {

namespace {

Status BadClause(std::string_view clause, const char* why) {
  return Status(ErrorCode::kInvalidArgument,
                StrFormat("bad chaos clause '%.*s': %s", int(clause.size()),
                          clause.data(), why));
}

/// Parses "p<pct>" or "n[,n...]" (the FaultPlan fail-list shape).
Status ParseOrdinalList(std::string_view value, std::string_view clause,
                        std::vector<std::uint64_t>* ordinals, double* p) {
  if (!value.empty() && value[0] == 'p') {
    auto pct = ParseDouble(value.substr(1));
    if (!pct.ok() || *pct < 0.0 || *pct > 100.0) {
      return BadClause(clause, "probability must be p<0..100>");
    }
    *p = *pct / 100.0;
    return Status::Ok();
  }
  for (std::string_view part : SplitChar(value, ',')) {
    auto n = ParseInt(part);
    if (!n.ok() || *n < 1) {
      return BadClause(clause, "ordinals are 1-based positive integers");
    }
    ordinals->push_back(std::uint64_t(*n));
  }
  if (ordinals->empty()) return BadClause(clause, "empty ordinal list");
  return Status::Ok();
}

bool Contains(const std::vector<std::uint64_t>& v, std::uint64_t x) {
  for (std::uint64_t e : v) {
    if (e == x) return true;
  }
  return false;
}

std::string FormatOrdinalList(const char* name,
                              const std::vector<std::uint64_t>& ordinals,
                              double p, const char* suffix) {
  std::string out;
  if (!ordinals.empty()) {
    std::string body;
    for (std::size_t i = 0; i < ordinals.size(); ++i) {
      body += StrFormat(i == 0 ? "%llu" : ",%llu",
                        (unsigned long long)ordinals[i]);
    }
    out = std::string(name) + "@" + body + suffix;
  } else if (p > 0.0) {
    out = StrFormat("%s@p%g%s", name, p * 100.0, suffix);
  }
  return out;
}

}  // namespace

ChaosPlan::Decision ChaosPlan::Decide(std::uint64_t ordinal) const {
  Decision d;
  d.malformed = Contains(malformed, ordinal) ||
                sim::FaultPlan::SeededFlip(seed, kMalformedStream, ordinal,
                                           malformed_p);
  // A malformed job never reaches a launch, so further decisions are moot
  // but still computed — keeping every decision independent of the others
  // is what makes the schedule replayable clause by clause.
  d.trap = Contains(trap, ordinal) ||
           sim::FaultPlan::SeededFlip(seed, kTrapStream, ordinal, trap_p);
  const bool slowed =
      Contains(slow, ordinal) ||
      sim::FaultPlan::SeededFlip(seed, kSlowStream, ordinal, slow_p);
  d.slow_factor = slowed && slow_factor > 1 ? slow_factor : 1;
  return d;
}

StatusOr<ChaosPlan> ChaosPlan::Parse(std::string_view spec) {
  ChaosPlan plan;
  for (std::string_view raw : SplitChar(spec, ';')) {
    const std::string_view clause = TrimWhitespace(raw);
    if (clause.empty()) continue;
    const std::size_t at = clause.find('@');
    if (at == std::string_view::npos) {
      return BadClause(clause, "expected <kind>@<value>");
    }
    const std::string_view kind = clause.substr(0, at);
    std::string_view value = clause.substr(at + 1);
    if (kind == "seed") {
      auto v = ParseInt(value);
      if (!v.ok() || *v < 0) return BadClause(clause, "bad seed");
      plan.seed = std::uint64_t(*v);
    } else if (kind == "malformed") {
      DGC_RETURN_IF_ERROR(ParseOrdinalList(value, clause, &plan.malformed,
                                           &plan.malformed_p));
    } else if (kind == "trap") {
      DGC_RETURN_IF_ERROR(
          ParseOrdinalList(value, clause, &plan.trap, &plan.trap_p));
    } else if (kind == "slow") {
      // slow@<list|p..>.x<F> — the factor rides after the last '.'.
      const std::size_t dot = value.rfind(".x");
      if (dot == std::string_view::npos) {
        return BadClause(clause, "expected slow@<jobs>.x<factor>");
      }
      auto factor = ParseInt(value.substr(dot + 2));
      if (!factor.ok() || *factor < 1) {
        return BadClause(clause, "factor must be >= 1");
      }
      plan.slow_factor = std::uint64_t(*factor);
      value = value.substr(0, dot);
      DGC_RETURN_IF_ERROR(
          ParseOrdinalList(value, clause, &plan.slow, &plan.slow_p));
    } else {
      return BadClause(clause, "unknown kind (seed, malformed, trap, slow)");
    }
  }
  return plan;
}

std::string ChaosPlan::ToString() const {
  std::vector<std::string> clauses;
  if (seed != 1) {
    clauses.push_back(StrFormat("seed@%llu", (unsigned long long)seed));
  }
  std::string c = FormatOrdinalList("malformed", malformed, malformed_p, "");
  if (!c.empty()) clauses.push_back(std::move(c));
  c = FormatOrdinalList("trap", trap, trap_p, "");
  if (!c.empty()) clauses.push_back(std::move(c));
  const std::string suffix =
      StrFormat(".x%llu", (unsigned long long)slow_factor);
  c = FormatOrdinalList("slow", slow, slow_p, suffix.c_str());
  if (!c.empty()) clauses.push_back(std::move(c));
  return Join(clauses, ";");
}

}  // namespace dgc::serve

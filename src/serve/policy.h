// Failure policy: service-level retry backoff and per-app circuit breaking.
//
// PR 3's loader already retries *within* a launch (waves with team-cap
// shrink). The service layers two more mechanisms on top:
//
//  - RetryPolicy: a job whose launch attempt terminated abnormally is
//    re-enqueued after an exponential backoff delay, up to a per-job
//    attempt budget. Backoff is in simulated cycles, so retries interleave
//    deterministically with the rest of the event stream.
//
//  - CircuitBreaker (one per app): an app whose jobs trap K times in a row
//    would otherwise poison every wave it is packed into. After K
//    consecutive abnormal terminations the breaker opens — new submissions
//    for the app are rejected (kQuarantined) and queued jobs wait — for a
//    cooldown period. It then half-opens: the scheduler launches a single
//    probe job; success closes the breaker, failure re-opens it with a
//    doubled cooldown (capped). Classic closed → open → half-open.
#pragma once

#include <cstdint>
#include <string_view>

namespace dgc::serve {

struct RetryPolicy {
  /// Total service-level launch attempts per job (1 = no retry). Distinct
  /// from EnsembleOptions::max_attempts, which retries *within* a launch.
  std::uint32_t job_attempts = 1;
  /// Backoff before attempt N+1 = backoff_base << (N-1) cycles.
  std::uint64_t backoff_base = 4096;

  /// Delay after `attempts` consumed attempts (>= 1). Shift-saturated.
  std::uint64_t BackoffDelay(std::uint32_t attempts) const {
    const std::uint32_t shift = attempts >= 1 ? attempts - 1 : 0;
    if (shift >= 32) return backoff_base << 32;
    return backoff_base << shift;
  }
};

class CircuitBreaker {
 public:
  struct Config {
    /// Consecutive abnormal terminations that open the breaker.
    /// 0 disables circuit breaking entirely.
    std::uint32_t failure_threshold = 3;
    /// Cooldown cycles while open before the half-open probe.
    std::uint64_t cooldown = 65536;
    /// Cap on the cooldown multiplier doubled by each failed probe.
    std::uint64_t max_cooldown_multiplier = 8;
  };

  enum class State : std::uint8_t { kClosed = 0, kOpen, kHalfOpen };

  explicit CircuitBreaker(const Config& config) : config_(config) {}

  State state() const { return state_; }
  /// Cycle at which an open breaker half-opens for its probe.
  std::uint64_t open_until() const { return open_until_; }

  /// A job of this app completed execution: closes the breaker and resets
  /// the failure streak and cooldown.
  void RecordSuccess();

  /// A job of this app terminated abnormally at `now`. Returns true when
  /// this failure (re)opened the breaker — the caller quarantines the app
  /// and schedules a probe at open_until(). A failure while half-open
  /// re-opens immediately with a doubled cooldown.
  bool RecordFailure(std::uint64_t now);

  /// The cooldown elapsed: the breaker admits exactly one probe job.
  void HalfOpen();

  /// True when new submissions for this app are turned away.
  bool Rejecting() const { return state_ == State::kOpen; }

 private:
  Config config_;
  State state_ = State::kClosed;
  std::uint32_t consecutive_failures_ = 0;
  std::uint64_t open_until_ = 0;
  std::uint64_t cooldown_multiplier_ = 1;
};

std::string_view ToString(CircuitBreaker::State state);

}  // namespace dgc::serve

#include "serve/admission.h"

#include <algorithm>

#include "gpusim/kernel.h"
#include "gpusim/occupancy.h"

namespace dgc::serve {

Status AdmissionController::Init(const sim::DeviceSpec& spec,
                                 std::uint32_t thread_limit,
                                 std::uint32_t teams_per_block) {
  sim::LaunchConfig shape;
  shape.grid = {1, 1, 1};
  shape.block = {thread_limit, teams_per_block, 1};
  DGC_ASSIGN_OR_RETURN(sim::Occupancy occ, sim::ComputeOccupancy(spec, shape));
  // One job per team; teams_per_block teams ride each resident block.
  const std::uint64_t cap = occ.resident_blocks * teams_per_block;
  team_cap_ = std::uint32_t(std::max<std::uint64_t>(1, cap));
  return Status::Ok();
}

std::uint32_t AdmissionController::batch_cap() const {
  if (config_.max_batch == 0) return team_cap_;
  return std::min(team_cap_, config_.max_batch);
}

std::uint64_t AdmissionController::MemoryBudget(
    std::uint64_t capacity, std::uint64_t bytes_in_use) const {
  const std::uint64_t planned = std::uint64_t(double(capacity) *
                                              std::clamp(config_.headroom,
                                                         0.0, 1.0));
  return planned > bytes_in_use ? planned - bytes_in_use : 0;
}

std::uint64_t AdmissionController::EstimateFor(const std::string& app) const {
  auto it = estimates_.find(app);
  if (it != estimates_.end() && it->second.full != 0) return it->second.full;
  return config_.default_estimate;
}

std::uint64_t AdmissionController::AttachEstimateFor(
    const std::string& app) const {
  auto it = estimates_.find(app);
  if (it != estimates_.end() && it->second.attach != 0) {
    return it->second.attach;
  }
  // Never observed: attaching skips the input copy, so plan a fraction of
  // the full footprint until a measurement arrives.
  return std::max<std::uint64_t>(1, EstimateFor(app) / 4);
}

void AdmissionController::Observe(const std::string& app,
                                  std::uint64_t peak_bytes) {
  Estimate& e = estimates_[app];
  e.full = std::max(e.full, Padded(peak_bytes));
}

void AdmissionController::ObserveAttach(const std::string& app,
                                        std::uint64_t peak_bytes) {
  Estimate& e = estimates_[app];
  e.attach = std::max(e.attach, Padded(peak_bytes));
}

}  // namespace dgc::serve

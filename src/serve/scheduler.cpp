#include "serve/scheduler.h"

#include <algorithm>

#include "dgcf/app.h"
#include "dgcf/libc.h"
#include "dgcf/loader.h"
#include "dgcf/rpc.h"
#include "ensemble/loader.h"
#include "ensemble/metrics.h"
#include "gpusim/device.h"
#include "gpusim/faults.h"
#include "gpusim/profiler.h"
#include "support/str.h"

namespace dgc::serve {

/// One independent device: its own memory, RPC ring, and libc, reused
/// across launches (launch-local state — the argv block, app buffers — is
/// freed between launches; leaks persist and shrink future admission
/// budgets, which is the graceful-degradation story).
struct Scheduler::DeviceSlot {
  explicit DeviceSlot(const sim::DeviceSpec& spec)
      : device(spec), rpc(device), libc(device) {}

  sim::Device device;
  dgcf::RpcHost rpc;
  dgcf::DeviceLibc libc;
  bool busy = false;
  std::uint32_t launch_id = 0;  ///< valid while busy
};

/// One launch the pool is simulating (or has simulated). Completion is
/// folded back into the event stream at deterministic virtual times.
struct Scheduler::InFlight {
  std::uint32_t id = 0;
  std::uint32_t slot = 0;
  std::uint64_t start = 0;  ///< service cycle the launch began
  std::string app;
  std::vector<JobId> jobs;          ///< slot-in-batch → job id
  std::vector<char> is_duplicate;   ///< slot had an identical argv earlier
  std::vector<char> deadline_slot;  ///< slot's watchdog is deadline-derived
  bool probe = false;               ///< half-open circuit-breaker probe
  std::unique_ptr<sim::FaultPlan> plan;      ///< compiled chaos (may be null)
  std::unique_ptr<sim::Profiler> profiler;   ///< metrics sidecar (may be null)
  ensemble::EnsembleOptions options;

  std::future<void> future;
  bool resolved = false;
  bool launch_error = false;  ///< RunEnsemble itself returned a Status error
  std::string error_detail;
  dgcf::RunResult run;
};

Scheduler::Scheduler(ServeConfig config)
    : config_(std::move(config)),
      queue_(config_.queue_capacity),
      admission_(config_.admission) {}

Scheduler::~Scheduler() {
  // Never leave pool workers touching dying slots: join everything.
  for (auto& fl : in_flight_) {
    if (fl->future.valid() && !fl->resolved) fl->future.get();
  }
}

Status Scheduler::Init() {
  if (initialized_) return Status::Ok();
  if (config_.devices == 0 || config_.thread_limit == 0 ||
      config_.teams_per_block == 0 || config_.queue_capacity == 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "devices, thread-limit, teams-per-block and queue capacity "
                  "must be positive");
  }
  DGC_RETURN_IF_ERROR(admission_.Init(config_.spec, config_.thread_limit,
                                      config_.teams_per_block));
  slots_.reserve(config_.devices);
  for (std::uint32_t d = 0; d < config_.devices; ++d) {
    slots_.push_back(std::make_unique<DeviceSlot>(config_.spec));
  }
  pool_ = std::make_unique<ThreadPool>(config_.jobs);
  if (config_.drain_at != 0) {
    PushEvent(Event{config_.drain_at, EventKind::kDrain, 0, 0, 0, {}});
  }
  initialized_ = true;
  return Status::Ok();
}

void Scheduler::PushEvent(Event event) {
  event.seq = event_seq_++;
  events_.push(std::move(event));
}

void Scheduler::Log(const std::string& line) {
  if (config_.log != nullptr) *config_.log << line << "\n";
}

CircuitBreaker& Scheduler::BreakerFor(const std::string& app) {
  auto it = breakers_.find(app);
  if (it == breakers_.end()) {
    it = breakers_.emplace(app, CircuitBreaker(config_.breaker)).first;
  }
  return it->second;
}

void Scheduler::EnqueueStream(const std::vector<JobRequest>& requests) {
  for (const JobRequest& request : requests) {
    arrival_floor_ = std::max({arrival_floor_, now_, request.at});
    JobRecord record;
    record.job.id = JobId(records_.size());
    record.job.ordinal = ++next_ordinal_;
    record.job.app = request.app;
    record.job.args = request.args;
    record.job.priority = request.priority;
    record.job.arrival = arrival_floor_;
    record.job.deadline = request.deadline_budget == 0
                              ? 0
                              : arrival_floor_ + request.deadline_budget;
    const ChaosPlan::Decision chaos = config_.chaos.Decide(record.job.ordinal);
    record.job.chaos_trap = chaos.trap;
    record.job.chaos_slow = chaos.slow_factor;
    PushEvent(Event{record.job.arrival, EventKind::kArrival, 0, record.job.id,
                    /*b=*/0, {}});
    records_.push_back(std::move(record));
  }
}

void Scheduler::RequestDrain() {
  if (initialized_) BeginDrain("request");
}

Status Scheduler::Run() {
  if (!initialized_) {
    return Status(ErrorCode::kFailedPrecondition,
                  "Scheduler::Init must succeed before Run");
  }
  while (true) {
    if (config_.drain_poll && !draining_ && config_.drain_poll()) {
      BeginDrain("signal");
    }
    // Join every launch the pool finished simulating and fold its
    // completion into the event stream (slot order ⇒ deterministic).
    ResolveInFlight();
    if (events_.empty()) {
      if (!queue_.Empty()) {
        // No event will ever arrive, yet jobs are queued: nothing can
        // start them (estimates too big for a dirtied device, every
        // tenant quarantined with no probe pending, ...). Never hang —
        // fail the backlog deterministically.
        FailStalledQueue();
        continue;
      }
      break;
    }
    // Process every event at the earliest pending cycle, then let the
    // packing pass see the post-event world (freed devices, new queue
    // entries) before time advances further.
    const std::uint64_t cycle = events_.top().cycle;
    now_ = std::max(now_, cycle);
    while (!events_.empty() && events_.top().cycle == cycle) {
      const Event event = events_.top();
      events_.pop();
      switch (event.kind) {
        case EventKind::kJobDone: HandleJobDone(event); break;
        case EventKind::kDeviceFree: HandleDeviceFree(event); break;
        case EventKind::kBreakerProbe: HandleBreakerProbe(event); break;
        case EventKind::kDrain: BeginDrain("drain-at"); break;
        case EventKind::kArrival: HandleArrival(event); break;
      }
    }
    StartLaunches();
  }
  return Status::Ok();
}

void Scheduler::HandleArrival(const Event& event) {
  JobRecord& record = records_[event.a];
  const bool retry = event.b != 0;
  if (retry) {
    // A backed-off retry re-enters the queue. Drain and overflow make the
    // failure permanent — the job was admitted, so it counts against the
    // exit code either way.
    if (draining_) {
      FinalizeJob(event.a, JobOutcome::kFailed, "drain during retry backoff");
      return;
    }
    if (!queue_.Push(event.a, record.job.priority).ok()) {
      FinalizeJob(event.a, JobOutcome::kFailed, "queue full on retry");
      return;
    }
    Log(StrFormat("@%llu requeue job=%u attempt=%u queue=%zu",
                  (unsigned long long)now_, record.job.id, record.attempts,
                  queue_.size()));
    return;
  }

  ++tally_.submitted;
  Log(StrFormat("@%llu submit job=%u app=%s prio=%lld deadline=%llu",
                (unsigned long long)now_, record.job.id,
                record.job.app.c_str(), (long long)record.job.priority,
                (unsigned long long)record.job.deadline));
  const bool chaos_malformed =
      config_.chaos.Decide(record.job.ordinal).malformed;
  if (chaos_malformed ||
      !dgcf::AppRegistry::Instance().Find(record.job.app).ok()) {
    record.detail = chaos_malformed ? "chaos: malformed submission"
                                    : "unregistered app";
    FinalizeReject(event.a, RejectReason::kMalformed);
    return;
  }
  if (draining_) {
    FinalizeReject(event.a, RejectReason::kDraining);
    return;
  }
  if (BreakerFor(record.job.app).Rejecting()) {
    FinalizeReject(event.a, RejectReason::kQuarantined);
    return;
  }
  if (!queue_.Push(record.job.id, record.job.priority).ok()) {
    FinalizeReject(event.a, RejectReason::kQueueFull);
    return;
  }
  record.admitted = true;
  ++tally_.admitted;
  Log(StrFormat("@%llu admit job=%u queue=%zu", (unsigned long long)now_,
                record.job.id, queue_.size()));
}

void Scheduler::HandleJobDone(const Event& event) {
  InFlight& fl = *in_flight_[event.a];
  const JobId id = fl.jobs[event.b];
  JobRecord& record = records_[id];
  CircuitBreaker& breaker = BreakerFor(fl.app);

  std::string detail;
  bool completed = false;
  int exit_code = 0;
  bool deadline_watchdog = false;
  if (fl.launch_error) {
    detail = StrFormat("launch failed: %s", fl.error_detail.c_str());
  } else {
    const dgcf::InstanceResult& inst = fl.run.instances[event.b];
    record.cycles += inst.cycles;
    completed = inst.completed;
    exit_code = inst.exit_code;
    detail = inst.detail.empty() ? std::string(dgcf::ToString(inst.reason))
                                 : inst.detail;
    // Feed the measured footprint back into admission (PR 5 per-owner
    // accounting): estimates tighten as the service observes the app.
    if (inst.mem_peak_bytes != 0) {
      if (fl.is_duplicate[event.b] && config_.share_data) {
        admission_.ObserveAttach(fl.app, inst.mem_peak_bytes);
      } else {
        admission_.Observe(fl.app, inst.mem_peak_bytes);
      }
    }
    deadline_watchdog = fl.deadline_slot[event.b] &&
                        inst.reason == dgcf::TerminationReason::kWatchdog &&
                        event.cycle >= record.job.deadline;
  }

  if (completed) {
    record.exit_code = exit_code;
    breaker.RecordSuccess();
    FinalizeJob(id, exit_code == 0 ? JobOutcome::kSucceeded
                                   : JobOutcome::kAppError,
                detail);
    return;
  }
  if (deadline_watchdog) {
    // The deadline budget armed this watchdog: a missed deadline, not an
    // app failure — it neither trips the breaker nor earns a retry.
    FinalizeJob(id, JobOutcome::kDeadlineMissed, "deadline budget exhausted");
    return;
  }
  // Abnormal termination: trips the breaker and may retry with backoff.
  if (breaker.RecordFailure(now_)) {
    ++tally_.quarantines;
    Log(StrFormat("@%llu quarantine app=%s until=%llu",
                  (unsigned long long)now_, fl.app.c_str(),
                  (unsigned long long)breaker.open_until()));
    PushEvent(Event{breaker.open_until(), EventKind::kBreakerProbe, 0, 0, 0,
                    fl.app});
  }
  if (record.attempts < config_.retry.job_attempts && !draining_) {
    const std::uint64_t delay =
        config_.retry.BackoffDelay(record.attempts);
    ++tally_.retries;
    Log(StrFormat("@%llu retry job=%u attempt=%u at=%llu",
                  (unsigned long long)now_, id, record.attempts + 1,
                  (unsigned long long)(now_ + delay)));
    record.detail = detail;
    PushEvent(Event{now_ + delay, EventKind::kArrival, 0, id, /*b=*/1, {}});
    return;
  }
  FinalizeJob(id, JobOutcome::kFailed, detail);
}

void Scheduler::HandleDeviceFree(const Event& event) {
  InFlight& fl = *in_flight_[event.a];
  DeviceSlot& slot = *slots_[fl.slot];
  slot.busy = false;
  Log(StrFormat("@%llu free device=%u launch=%u cycles=%llu",
                (unsigned long long)now_, fl.slot, fl.id,
                (unsigned long long)(event.cycle - fl.start)));
}

void Scheduler::HandleBreakerProbe(const Event& event) {
  if (draining_) return;
  CircuitBreaker& breaker = BreakerFor(event.app);
  if (breaker.state() == CircuitBreaker::State::kOpen &&
      now_ >= breaker.open_until()) {
    breaker.HalfOpen();
    Log(StrFormat("@%llu probe app=%s", (unsigned long long)now_,
                  event.app.c_str()));
  }
}

void Scheduler::BeginDrain(const char* reason) {
  if (draining_) return;
  draining_ = true;
  tally_.drained = true;
  Log(StrFormat("@%llu drain reason=%s", (unsigned long long)now_, reason));
  for (JobId id : queue_.TakeAll()) {
    FinalizeJob(id, JobOutcome::kCancelled, "drain");
  }
}

void Scheduler::FinalizeReject(JobId id, RejectReason reason) {
  JobRecord& record = records_[id];
  record.outcome = JobOutcome::kRejected;
  record.reject = reason;
  record.finish_cycle = now_;
  switch (reason) {
    case RejectReason::kQueueFull: ++tally_.rejected_full; break;
    case RejectReason::kMalformed: ++tally_.rejected_malformed; break;
    case RejectReason::kQuarantined: ++tally_.rejected_quarantined; break;
    case RejectReason::kDraining: ++tally_.rejected_draining; break;
    case RejectReason::kNone: break;
  }
  Log(StrFormat("@%llu reject job=%u app=%s reason=%s",
                (unsigned long long)now_, id, record.job.app.c_str(),
                std::string(ToString(reason)).c_str()));
}

void Scheduler::FinalizeJob(JobId id, JobOutcome outcome,
                            const std::string& detail) {
  JobRecord& record = records_[id];
  record.outcome = outcome;
  if (!detail.empty()) record.detail = detail;
  record.finish_cycle = now_;
  switch (outcome) {
    case JobOutcome::kSucceeded: ++tally_.succeeded; break;
    case JobOutcome::kAppError: ++tally_.app_error; break;
    case JobOutcome::kFailed: ++tally_.failed; break;
    case JobOutcome::kDeadlineMissed: ++tally_.deadline_missed; break;
    case JobOutcome::kCancelled: ++tally_.cancelled; break;
    case JobOutcome::kPending:
    case JobOutcome::kRejected: break;
  }
  std::string line = StrFormat(
      "@%llu done job=%u outcome=%s exit=%d attempts=%u cycles=%llu",
      (unsigned long long)now_, id,
      std::string(ToString(outcome)).c_str(), record.exit_code,
      record.attempts, (unsigned long long)record.cycles);
  if (outcome != JobOutcome::kSucceeded && !record.detail.empty()) {
    line += StrFormat(" detail=\"%s\"", record.detail.c_str());
  }
  Log(line);
}

void Scheduler::ExpireQueuedDeadlines() {
  for (JobId id : queue_.OrderedIds()) {
    const JobRecord& record = records_[id];
    if (record.job.deadline != 0 && now_ >= record.job.deadline) {
      queue_.Remove(id);
      FinalizeJob(id, JobOutcome::kDeadlineMissed,
                  "deadline expired in queue");
    }
  }
}

void Scheduler::StartLaunches() {
  if (draining_) return;
  ExpireQueuedDeadlines();
  for (std::uint32_t s = 0; s < slots_.size(); ++s) {
    // A pass may fail an unschedulable job without starting anything —
    // keep trying the slot until it launches or nothing is packable.
    while (!slots_[s]->busy && StartOneLaunch(s)) {
    }
  }
}

bool Scheduler::ProbeInFlight(const std::string& app) const {
  for (const auto& fl : in_flight_) {
    if (fl->probe && fl->app == app && slots_[fl->slot]->busy &&
        slots_[fl->slot]->launch_id == fl->id) {
      return true;
    }
  }
  return false;
}

bool Scheduler::StartOneLaunch(std::uint32_t s) {
  const std::vector<JobId> ordered = queue_.OrderedIds();
  if (ordered.empty()) return false;
  DeviceSlot& slot = *slots_[s];
  const std::uint64_t capacity = slot.device.memory().capacity();
  const std::uint64_t in_use = slot.device.memory().bytes_in_use();
  const std::uint64_t budget = admission_.MemoryBudget(capacity, in_use);

  for (std::size_t p = 0; p < ordered.size(); ++p) {
    JobRecord& anchor = records_[ordered[p]];
    const std::string& app = anchor.job.app;
    CircuitBreaker& breaker = BreakerFor(app);
    if (breaker.state() == CircuitBreaker::State::kOpen) continue;
    const bool probe = breaker.state() == CircuitBreaker::State::kHalfOpen;
    if (probe && ProbeInFlight(app)) continue;
    const std::uint64_t estimate = admission_.EstimateFor(app);
    if (estimate > budget) {
      if (in_use == 0) {
        // The cleanest device this service will ever have cannot hold the
        // job: admission failure, not a wait.
        queue_.Remove(ordered[p]);
        FinalizeJob(ordered[p], JobOutcome::kFailed,
                    "estimated footprint exceeds the device memory budget");
        return true;
      }
      continue;  // a leaner job may still fit this (dirtied) device
    }

    // Pack same-app jobs behind the anchor while the occupancy team cap
    // and the memory budget allow. With shared data on, a job whose argv
    // already appears in the batch re-attaches instead of materializing —
    // charge it the attach estimate.
    std::vector<JobId> batch;
    std::vector<char> duplicates;
    std::map<std::string, char> seen_argv;
    std::uint64_t mem = 0;
    for (std::size_t q = p;
         q < ordered.size() && batch.size() < admission_.batch_cap(); ++q) {
      JobRecord& candidate = records_[ordered[q]];
      if (candidate.job.app != app) continue;
      const std::string signature = Join(candidate.job.args, "\x1f");
      const bool duplicate = seen_argv.count(signature) != 0;
      const std::uint64_t charge =
          duplicate && config_.share_data
              ? admission_.AttachEstimateFor(app)
              : estimate;
      if (mem + charge > budget) break;
      mem += charge;
      seen_argv[signature] = 1;
      batch.push_back(ordered[q]);
      duplicates.push_back(duplicate ? 1 : 0);
      if (probe) break;  // a half-open app gets exactly one probe job
    }
    if (batch.empty()) continue;

    auto fl = std::make_unique<InFlight>();
    fl->id = next_launch_++;
    fl->slot = s;
    fl->start = now_;
    fl->app = app;
    fl->jobs = batch;
    fl->is_duplicate = std::move(duplicates);
    fl->probe = probe;

    ensemble::EnsembleOptions& options = fl->options;
    options.app = app;
    options.thread_limit = config_.thread_limit;
    options.teams_per_block = config_.teams_per_block;
    options.max_attempts = config_.launch_attempts;
    options.retry_shrink = config_.retry_shrink;
    options.watchdog_cycles = config_.watchdog_cycles;
    options.instance_watchdog_cycles = config_.instance_watchdog_cycles;
    options.share_data = config_.share_data;

    std::vector<std::uint64_t> budgets(batch.size(), 0);
    bool any_budget = false;
    auto chaos_plan = std::make_unique<sim::FaultPlan>();
    std::string jobs_list;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      JobRecord& record = records_[batch[i]];
      queue_.Remove(batch[i]);
      ++record.attempts;
      options.instance_args.push_back(record.job.args);
      fl->deadline_slot.push_back(record.job.deadline != 0 ? 1 : 0);
      if (record.job.deadline != 0) {
        // Remaining budget becomes this instance's watchdog (the queue
        // sweep guarantees deadline > now). The configured per-instance
        // cap still applies when it is tighter.
        std::uint64_t remaining = record.job.deadline - now_;
        if (config_.instance_watchdog_cycles != 0) {
          remaining = std::min(remaining, config_.instance_watchdog_cycles);
        }
        budgets[i] = remaining;
        any_budget = true;
      }
      // Compile chaos decisions down to launch-level injection. Block
      // granularity: with teams_per_block > 1 a trapped/slowed job takes
      // its block-mates along — the blast radius the §3.1 mapping trades
      // for occupancy.
      const std::uint32_t block =
          std::uint32_t(i) / config_.teams_per_block;
      if (record.job.chaos_trap) chaos_plan->AddTrap(block, 0, 0);
      if (record.job.chaos_slow > 1) {
        chaos_plan->AddSlowdown(block, record.job.chaos_slow);
      }
      jobs_list += StrFormat(i == 0 ? "%u" : ",%u", batch[i]);
    }
    if (any_budget) options.instance_watchdogs = std::move(budgets);
    if (!chaos_plan->empty()) {
      fl->plan = std::move(chaos_plan);
      options.faults = fl->plan.get();
    }
    if (!config_.metrics_prefix.empty()) {
      fl->profiler = std::make_unique<sim::Profiler>();
      options.profiler = fl->profiler.get();
    }

    ++tally_.launches;
    Log(StrFormat("@%llu launch id=%u device=%u app=%s jobs=[%s] teams=%zu%s",
                  (unsigned long long)now_, fl->id, s, app.c_str(),
                  jobs_list.c_str(), batch.size(), probe ? " probe" : ""));
    slot.busy = true;
    slot.launch_id = fl->id;
    InFlight* raw = fl.get();
    DeviceSlot* slot_ptr = &slot;
    raw->future = pool_->Submit([raw, slot_ptr] {
      dgcf::AppEnv env{&slot_ptr->device, &slot_ptr->rpc, &slot_ptr->libc};
      auto result = ensemble::RunEnsemble(env, raw->options);
      if (result.ok()) {
        raw->run = std::move(*result);
      } else {
        raw->launch_error = true;
        raw->error_detail = result.status().message();
      }
    });
    in_flight_.push_back(std::move(fl));
    return true;
  }
  return false;
}

void Scheduler::ResolveInFlight() {
  for (auto& fl_ptr : in_flight_) {
    InFlight& fl = *fl_ptr;
    if (fl.resolved || !fl.future.valid()) continue;
    fl.future.get();
    fl.resolved = true;
    const std::uint64_t duration =
        fl.launch_error ? 1 : fl.run.total_cycles();
    const std::uint64_t free_cycle = fl.start + duration;
    for (std::size_t b = 0; b < fl.jobs.size(); ++b) {
      std::uint64_t finish = free_cycle;
      if (!fl.launch_error) {
        finish = std::min(fl.start + fl.run.instances[b].cycles, free_cycle);
        finish = std::max(finish, fl.start + 1);
      }
      PushEvent(Event{finish, EventKind::kJobDone, 0, fl.id,
                      std::uint32_t(b), {}});
    }
    PushEvent(Event{free_cycle, EventKind::kDeviceFree, 0, fl.id, 0, {}});
    if (!config_.metrics_prefix.empty() && !fl.launch_error) {
      ensemble::MetricsInfo info;
      info.app = fl.app;
      info.device = config_.spec.name;
      info.thread_limit = config_.thread_limit;
      info.instances = std::uint32_t(fl.jobs.size());
      info.teams_per_block = config_.teams_per_block;
      const std::string path =
          StrFormat("%s.launch%u.json", config_.metrics_prefix.c_str(),
                    fl.id);
      const Status written =
          ensemble::WriteMetricsJson(path, info, fl.run, fl.profiler.get());
      if (!written.ok()) {
        Log(StrFormat("@%llu metrics-error launch=%u %s",
                      (unsigned long long)now_, fl.id,
                      written.message().c_str()));
      }
    }
    // App stdout stays in the slot's RPC buffer; clear it between
    // launches so a long-lived service does not accumulate it.
    slots_[fl.slot]->rpc.ClearStdout();
  }
}

void Scheduler::FailStalledQueue() {
  for (JobId id : queue_.TakeAll()) {
    FinalizeJob(id, JobOutcome::kFailed,
                "unschedulable: no device can ever serve this job");
  }
}

ServeReport Scheduler::report() const {
  ServeReport report = tally_;
  report.peak_queue_depth = queue_.peak_depth();
  report.final_cycle = now_;
  return report;
}

ServeReport Scheduler::WriteReport() {
  const ServeReport report_out = report();
  Log(StrFormat(
      "report: submitted=%llu admitted=%llu succeeded=%llu app-error=%llu "
      "failed=%llu deadline-missed=%llu cancelled=%llu",
      (unsigned long long)report_out.submitted,
      (unsigned long long)report_out.admitted,
      (unsigned long long)report_out.succeeded,
      (unsigned long long)report_out.app_error,
      (unsigned long long)report_out.failed,
      (unsigned long long)report_out.deadline_missed,
      (unsigned long long)report_out.cancelled));
  Log(StrFormat(
      "report: rejected queue-full=%llu malformed=%llu quarantined=%llu "
      "draining=%llu",
      (unsigned long long)report_out.rejected_full,
      (unsigned long long)report_out.rejected_malformed,
      (unsigned long long)report_out.rejected_quarantined,
      (unsigned long long)report_out.rejected_draining));
  Log(StrFormat(
      "report: launches=%llu retries=%llu quarantines=%llu peak-queue=%llu "
      "final-cycle=%llu drained=%d exit=%d",
      (unsigned long long)report_out.launches,
      (unsigned long long)report_out.retries,
      (unsigned long long)report_out.quarantines,
      (unsigned long long)report_out.peak_queue_depth,
      (unsigned long long)report_out.final_cycle, report_out.drained ? 1 : 0,
      report_out.ok() ? 0 : 1));
  return report_out;
}

}  // namespace dgc::serve

// Job model for the ensemble service (dgc-serve).
//
// The paper's loader consumes a static batch; the service consumes a
// *stream* of jobs — each one app invocation (app + argv) with optional
// deadline budget and priority — and packs compatible jobs into ensemble
// launches. A JobRecord tracks one job from submission to its terminal
// outcome; the scheduler's outcome log and final report are derived from
// these records, so the full lifecycle vocabulary lives here.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dgc::serve {

using JobId = std::uint32_t;

/// Terminal state of one job. Only kSucceeded/kAppError/kFailed/
/// kDeadlineMissed jobs were admitted; the service exit code is nonzero
/// iff any *admitted* job ended in kAppError/kFailed/kDeadlineMissed
/// (rejections are backpressure, not failures; cancellations are drain).
enum class JobOutcome : std::uint8_t {
  kPending = 0,
  kSucceeded,       ///< completed execution, exit code 0
  kAppError,        ///< completed execution, nonzero exit code (no retry)
  kFailed,          ///< abnormal termination, retries exhausted (or none)
  kDeadlineMissed,  ///< deadline budget expired (queued or running)
  kRejected,        ///< never admitted (see RejectReason)
  kCancelled,       ///< admitted but still queued when the drain began
};

/// Why a submission was turned away at the door.
enum class RejectReason : std::uint8_t {
  kNone = 0,
  kQueueFull,     ///< bounded queue at capacity — explicit backpressure
  kMalformed,     ///< unparseable/unregistered job (includes injected chaos)
  kQuarantined,   ///< the app's circuit breaker is open
  kDraining,      ///< the service is shutting down
};

std::string_view ToString(JobOutcome outcome);
std::string_view ToString(RejectReason reason);

/// One unit of work: a single app invocation.
struct Job {
  JobId id = 0;              ///< dense submission index (log key)
  std::uint64_t ordinal = 0; ///< 1-based submission ordinal (chaos key)
  std::string app;           ///< registered application name
  std::vector<std::string> args;  ///< argv[1..] for the instance
  std::int64_t priority = 0; ///< higher = dispatched first (FIFO within)
  std::uint64_t arrival = 0; ///< service cycle the job arrived
  /// Absolute service cycle by which the job must finish; 0 = none. The
  /// scheduler lowers the remaining budget onto the instance watchdog at
  /// launch time.
  std::uint64_t deadline = 0;
  // --- Chaos decisions (stamped deterministically at arrival) --------------
  bool chaos_trap = false;        ///< compile an injected trap into the launch
  std::uint64_t chaos_slow = 1;   ///< compute slowdown factor (1 = none)
};

/// A job plus its lifecycle state. Indexed by JobId in the scheduler.
struct JobRecord {
  Job job;
  JobOutcome outcome = JobOutcome::kPending;
  RejectReason reject = RejectReason::kNone;
  bool admitted = false;          ///< made it past admission into the queue
  std::uint32_t attempts = 0;     ///< service-level launch attempts consumed
  int exit_code = 0;              ///< valid when the instance returned
  std::string detail;             ///< failure detail (trap message, reason)
  std::uint64_t finish_cycle = 0; ///< service cycle of the terminal event
  std::uint64_t cycles = 0;       ///< device cycles the job consumed
};

/// One parsed line of a job stream, before admission. `at` is the earliest
/// service cycle the job may arrive (clamped to be monotonically
/// non-decreasing across the stream); `deadline_budget` is relative to the
/// arrival cycle (0 = no deadline).
struct JobRequest {
  std::string app;
  std::vector<std::string> args;
  std::int64_t priority = 0;
  std::uint64_t at = 0;
  std::uint64_t deadline_budget = 0;
};

}  // namespace dgc::serve

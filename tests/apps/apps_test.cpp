// Verification tests for the four benchmark apps: every device kernel must
// reproduce its host reference hash bit-for-bit, under both loaders, at
// several thread limits, and packed into ensembles.
#include <gtest/gtest.h>

#include "apps/amgmk.h"
#include "apps/common.h"
#include "apps/pagerank.h"
#include "apps/rsbench.h"
#include "apps/xsbench.h"
#include "dgcf/libc.h"
#include "dgcf/loader.h"
#include "dgcf/rpc.h"
#include "ensemble/loader.h"
#include "gpusim/device.h"
#include "support/str.h"

namespace dgc::apps {
namespace {

using dgcf::RunResult;
using dgcf::SingleRunOptions;
using sim::Device;
using sim::DeviceSpec;

class AppsTest : public testing::Test {
 protected:
  static void SetUpTestSuite() { RegisterAllApps(); }

  struct Env {
    Device device{DeviceSpec::TestDevice()};
    dgcf::RpcHost rpc{device};
    dgcf::DeviceLibc libc{device};
    dgcf::AppEnv app_env{&device, &rpc, &libc};
  };

  /// Runs one instance and returns its exit code (0 = verified).
  int RunSingle(const std::string& app, std::vector<std::string> args,
                std::uint32_t thread_limit = 64) {
    Env env;
    SingleRunOptions opt;
    opt.app = app;
    opt.args = std::move(args);
    opt.thread_limit = thread_limit;
    auto run = dgcf::RunSingleInstance(env.app_env, opt);
    if (!run.ok()) {
      ADD_FAILURE() << run.status().ToString();
      return -1;
    }
    if (!run->failures.empty()) ADD_FAILURE() << run->failures[0];
    EXPECT_TRUE(run->instances[0].completed);
    return run->instances[0].exit_code;
  }
};

TEST_F(AppsTest, AllFourAppsAreRegistered) {
  for (const char* name : {"xsbench", "rsbench", "amgmk", "pagerank"}) {
    EXPECT_TRUE(dgcf::AppRegistry::Instance().Find(name).ok()) << name;
  }
}

// --- XSBench ---------------------------------------------------------------

TEST_F(AppsTest, XsbenchMatchesHostReference) {
  EXPECT_EQ(RunSingle("xsbench", {"-i", "8", "-g", "64", "-l", "256"}), 0);
}

TEST_F(AppsTest, XsbenchThreadLimitSweepAllVerify) {
  for (std::uint32_t tl : {1u, 32u, 64u, 128u}) {
    EXPECT_EQ(RunSingle("xsbench", {"-i", "8", "-g", "64", "-l", "200"}, tl), 0)
        << "thread limit " << tl;
  }
}

TEST_F(AppsTest, XsbenchDifferentSeedsDifferentHashes) {
  XsParams a, b;
  a.n_isotopes = b.n_isotopes = 8;
  a.n_gridpoints = b.n_gridpoints = 64;
  a.n_lookups = b.n_lookups = 128;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(XsHostReference(a), XsHostReference(b));
}

TEST_F(AppsTest, XsbenchUnionIndexIsConsistent) {
  XsParams p;
  p.n_isotopes = 6;
  p.n_gridpoints = 32;
  const XsData data = GenerateXsData(p);
  const std::uint32_t n_union = data.n_union();
  ASSERT_EQ(n_union, p.n_isotopes * p.n_gridpoints);
  EXPECT_TRUE(std::is_sorted(data.union_energy.begin(),
                             data.union_energy.end()));
  for (std::uint32_t u = 0; u < n_union; ++u) {
    for (std::uint32_t n = 0; n < p.n_isotopes; ++n) {
      const std::int32_t ig = data.union_index[std::size_t(u) * p.n_isotopes + n];
      ASSERT_GE(ig, 0);
      ASSERT_LE(ig, std::int32_t(p.n_gridpoints) - 2);
      const double* e = &data.nuclide_energy[std::size_t(n) * p.n_gridpoints];
      // e[ig] <= union_e unless the union point is below the isotope's
      // first gridpoint (then ig is clamped to 0).
      if (data.union_energy[u] >= e[0]) {
        EXPECT_LE(e[ig], data.union_energy[u]);
      }
    }
  }
}

TEST_F(AppsTest, XsbenchBadArgsGiveUsageExit) {
  EXPECT_EQ(RunSingle("xsbench", {"--bogus"}), dgcf::kExitUsage);
  EXPECT_EQ(RunSingle("xsbench", {"-i", "1"}), dgcf::kExitUsage);
}

TEST_F(AppsTest, XsbenchOomExitsCleanly) {
  EXPECT_EQ(RunSingle("xsbench", {"-i", "64", "-g", "4096", "-l", "16"}),
            dgcf::kExitNoMem);
}

// --- RSBench ---------------------------------------------------------------

TEST_F(AppsTest, RsbenchMatchesHostReference) {
  EXPECT_EQ(RunSingle("rsbench", {"-u", "8", "-w", "8", "-l", "256"}), 0);
}

TEST_F(AppsTest, RsbenchThreadLimitSweepAllVerify) {
  for (std::uint32_t tl : {1u, 32u, 128u}) {
    EXPECT_EQ(RunSingle("rsbench", {"-u", "8", "-w", "8", "-l", "200"}, tl), 0)
        << "thread limit " << tl;
  }
}

TEST_F(AppsTest, RsbenchIsComputeHeavierThanXsbenchPerByte) {
  // Sanity on the memory/compute characterization the paper relies on:
  // RSBench issues far more compute cycles relative to DRAM traffic.
  Env env;
  SingleRunOptions xs{.app = "xsbench",
                      .args = {"-i", "8", "-g", "64", "-l", "256"},
                      .thread_limit = 64};
  SingleRunOptions rs{.app = "rsbench",
                      .args = {"-u", "8", "-w", "8", "-l", "256"},
                      .thread_limit = 64};
  auto xs_run = dgcf::RunSingleInstance(env.app_env, xs);
  Env env2;
  auto rs_run = dgcf::RunSingleInstance(env2.app_env, rs);
  ASSERT_TRUE(xs_run.ok());
  ASSERT_TRUE(rs_run.ok());
  const double xs_ratio = double(xs_run->stats.compute_cycles_issued) /
                          double(xs_run->stats.dram_bytes + 1);
  const double rs_ratio = double(rs_run->stats.compute_cycles_issued) /
                          double(rs_run->stats.dram_bytes + 1);
  EXPECT_GT(rs_ratio, 2.0 * xs_ratio);
}

// --- AMGmk -----------------------------------------------------------------

TEST_F(AppsTest, AmgmkMatchesHostReference) {
  EXPECT_EQ(RunSingle("amgmk", {"-x", "6", "-y", "6", "-z", "6"}), 0);
}

TEST_F(AppsTest, AmgmkMultipleSweepsVerify) {
  EXPECT_EQ(
      RunSingle("amgmk", {"-x", "5", "-y", "5", "-z", "5", "-w", "4"}), 0);
}

TEST_F(AppsTest, AmgmkMatrixIsDiagonallyDominant) {
  AmgParams p;
  p.nx = p.ny = p.nz = 5;
  const AmgData data = GenerateAmgData(p);
  ASSERT_EQ(data.row_ptr.size(), std::size_t(p.rows()) + 1);
  for (std::uint32_t i = 0; i < p.rows(); ++i) {
    double offdiag = 0;
    for (std::uint32_t k = data.row_ptr[i]; k < data.row_ptr[i + 1]; ++k) {
      ASSERT_GE(data.col[k], 0);
      ASSERT_LT(data.col[k], std::int32_t(p.rows()));
      ASSERT_NE(data.col[k], std::int32_t(i));  // diagonal kept separately
      offdiag += std::abs(data.val[k]);
    }
    EXPECT_GT(data.diag[i], offdiag);  // Jacobi converges
  }
}

TEST_F(AppsTest, AmgmkInteriorRowsHave27PointStencil) {
  AmgParams p;
  p.nx = p.ny = p.nz = 5;
  const AmgData data = GenerateAmgData(p);
  // Row of the central cell (2,2,2): 26 off-diagonal neighbours.
  const std::uint32_t center = (2 * 5 + 2) * 5 + 2;
  EXPECT_EQ(data.row_ptr[center + 1] - data.row_ptr[center], 26u);
  // A corner has 7 neighbours.
  EXPECT_EQ(data.row_ptr[1] - data.row_ptr[0], 7u);
}

// --- Page-Rank ---------------------------------------------------------------

TEST_F(AppsTest, PagerankMatchesHostReference) {
  EXPECT_EQ(RunSingle("pagerank", {"-g", "2000", "-d", "4"}), 0);
}

TEST_F(AppsTest, PagerankMultipleIterationsVerify) {
  EXPECT_EQ(RunSingle("pagerank", {"-g", "1000", "-d", "4", "-k", "3"}), 0);
}

TEST_F(AppsTest, PagerankRanksSumToOneIsh) {
  PrParams p;
  p.n_nodes = 5000;
  p.avg_degree = 6;
  p.iterations = 2;
  const PrData data = GeneratePrData(p);
  ASSERT_EQ(data.row_ptr.size(), std::size_t(p.n_nodes) + 1);
  for (std::uint32_t u : data.src) ASSERT_LT(u, p.n_nodes);
  for (std::uint32_t d : data.out_degree) ASSERT_GE(d, 1u);
}

TEST_F(AppsTest, PagerankGraphIsSkewed) {
  PrParams p;
  p.n_nodes = 10000;
  p.avg_degree = 8;
  const PrData data = GeneratePrData(p);
  // Power-law-ish: the busiest node has far more out-edges than average.
  std::uint32_t max_deg = 0;
  for (std::uint32_t d : data.out_degree) max_deg = std::max(max_deg, d);
  EXPECT_GT(max_deg, 5 * p.avg_degree);
}

// --- Ensembles of real apps ---------------------------------------------------

TEST_F(AppsTest, EnsembleOfXsbenchInstancesAllVerify) {
  Env env;
  ensemble::EnsembleOptions opt;
  opt.app = "xsbench";
  for (int i = 0; i < 6; ++i) {
    opt.instance_args.push_back(
        {"-i", "8", "-g", "64", "-l", "128", "-s", StrFormat("%d", i + 1)});
  }
  opt.thread_limit = 32;
  auto run = ensemble::RunEnsemble(env.app_env, opt);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->all_ok()) << (run->failures.empty() ? "exit codes"
                                                       : run->failures[0]);
}

TEST_F(AppsTest, MixedSizeEnsembleVerifies) {
  Env env;
  ensemble::EnsembleOptions opt;
  opt.app = "amgmk";
  opt.instance_args = {
      {"-x", "4", "-y", "4", "-z", "4"},
      {"-x", "6", "-y", "5", "-z", "4"},
      {"-x", "5", "-y", "5", "-z", "5", "-w", "3"},
  };
  opt.thread_limit = 32;
  auto run = ensemble::RunEnsemble(env.app_env, opt);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->all_ok());
}

TEST_F(AppsTest, EnsembleWithMultiDimMappingVerifies) {
  Env env;
  ensemble::EnsembleOptions opt;
  opt.app = "rsbench";
  for (int i = 0; i < 4; ++i) {
    opt.instance_args.push_back(
        {"-u", "6", "-w", "8", "-l", "96", "-s", StrFormat("%d", i + 1)});
  }
  opt.thread_limit = 16;
  opt.teams_per_block = 4;
  auto run = ensemble::RunEnsemble(env.app_env, opt);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->all_ok());
  EXPECT_EQ(run->stats.blocks_launched, 1u);
}

TEST_F(AppsTest, DeviceStdoutInterleavesAcrossInstances) {
  Env env;
  ensemble::EnsembleOptions opt;
  opt.app = "rsbench";
  for (int i = 0; i < 3; ++i) {
    opt.instance_args.push_back(
        {"-u", "4", "-w", "4", "-l", "32", "-s", StrFormat("%d", i), "-v"});
  }
  opt.thread_limit = 32;
  auto run = ensemble::RunEnsemble(env.app_env, opt);
  ASSERT_TRUE(run.ok());
  // Three verification lines total, one per instance, in host service order.
  int lines = 0;
  for (char c : env.rpc.stdout_text()) lines += (c == '\n');
  EXPECT_EQ(lines, 3);
}

}  // namespace
}  // namespace dgc::apps

namespace dgc::apps {
namespace {

class XsGridTypes : public testing::TestWithParam<XsGridType> {
 protected:
  static void SetUpTestSuite() { RegisterAllApps(); }
};

TEST_P(XsGridTypes, DeviceMatchesHostReference) {
  sim::Device device(sim::DeviceSpec::TestDevice());
  dgcf::RpcHost rpc(device);
  dgcf::DeviceLibc libc(device);
  dgcf::AppEnv env{&device, &rpc, &libc};
  dgcf::SingleRunOptions opt;
  opt.app = "xsbench";
  opt.args = {"-i", "8", "-g", "64", "-l", "200", "-G",
              std::string(ToString(GetParam()))};
  opt.thread_limit = 64;
  auto run = dgcf::RunSingleInstance(env, opt);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->failures.empty())
      << (run->failures.empty() ? "" : run->failures[0]);
  EXPECT_EQ(run->instances[0].exit_code, 0);
}

INSTANTIATE_TEST_SUITE_P(All, XsGridTypes,
                         testing::Values(XsGridType::kUnionized,
                                         XsGridType::kHash,
                                         XsGridType::kNuclide),
                         [](const testing::TestParamInfo<XsGridType>& p) {
                           return std::string(ToString(p.param));
                         });

TEST(XsGridTypesExtra, AllGridTypesShareOneReferenceHash) {
  // The acceleration structures must be result-invariant: the host
  // reference is grid-type independent by construction.
  XsParams a, b, c;
  a.n_isotopes = b.n_isotopes = c.n_isotopes = 8;
  a.n_gridpoints = b.n_gridpoints = c.n_gridpoints = 64;
  a.n_lookups = b.n_lookups = c.n_lookups = 100;
  a.grid_type = XsGridType::kUnionized;
  b.grid_type = XsGridType::kHash;
  c.grid_type = XsGridType::kNuclide;
  EXPECT_EQ(XsHostReference(a), XsHostReference(b));
  EXPECT_EQ(XsHostReference(b), XsHostReference(c));
}

TEST(XsGridTypesExtra, HashIndexStartsAtOrBelowCanonical) {
  XsParams p;
  p.n_isotopes = 6;
  p.n_gridpoints = 48;
  p.grid_type = XsGridType::kHash;
  p.hash_bins = 32;
  const XsData data = GenerateXsData(p);
  ASSERT_EQ(data.hash_index.size(), std::size_t(p.hash_bins) * p.n_isotopes);
  for (std::uint32_t n = 0; n < p.n_isotopes; ++n) {
    std::int32_t prev = 0;
    for (std::uint32_t bin = 0; bin < p.hash_bins; ++bin) {
      const std::int32_t idx = data.hash_index[std::size_t(bin) * p.n_isotopes + n];
      ASSERT_GE(idx, prev);  // monotone per isotope
      ASSERT_LE(idx, std::int32_t(p.n_gridpoints) - 2);
      prev = idx;
    }
  }
}

TEST(XsGridTypesExtra, GridTypesTradeMemoryForLookupWork) {
  XsParams u, h, n;
  u.grid_type = XsGridType::kUnionized;
  h.grid_type = XsGridType::kHash;
  n.grid_type = XsGridType::kNuclide;
  EXPECT_GT(u.DeviceBytes(), h.DeviceBytes());
  EXPECT_GT(h.DeviceBytes(), n.DeviceBytes());
}

TEST(XsGridTypesExtra, BadGridTypeIsUsageError) {
  auto p = XsParams::Parse({"-G", "quantum"});
  ASSERT_FALSE(p.ok());
}

}  // namespace
}  // namespace dgc::apps

namespace dgc::apps {
namespace {

// --- Parameter parsing edge cases across all apps -----------------------------

TEST(AppParams, XsDefaultsAndOverrides) {
  auto p = XsParams::Parse({});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->n_isotopes, 24u);
  EXPECT_EQ(p->grid_type, XsGridType::kUnionized);

  auto q = XsParams::Parse({"-i", "10", "-g", "33", "-m", "3", "-l", "7",
                            "-s", "99", "-G", "hash", "-H", "17", "-v"});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->n_isotopes, 10u);
  EXPECT_EQ(q->n_gridpoints, 33u);
  EXPECT_EQ(q->n_materials, 3u);
  EXPECT_EQ(q->n_lookups, 7u);
  EXPECT_EQ(q->seed, 99u);
  EXPECT_EQ(q->grid_type, XsGridType::kHash);
  EXPECT_EQ(q->hash_bins, 17u);
  EXPECT_TRUE(q->verbose);
}

TEST(AppParams, XsRejectsDegenerateSizes) {
  EXPECT_FALSE(XsParams::Parse({"-i", "1"}).ok());
  EXPECT_FALSE(XsParams::Parse({"-g", "1"}).ok());
  EXPECT_FALSE(XsParams::Parse({"-l", "0"}).ok());
  EXPECT_FALSE(XsParams::Parse({"-H", "0"}).ok());
  EXPECT_FALSE(XsParams::Parse({"-i", "abc"}).ok());
}

TEST(AppParams, RsDefaultsAndRejections) {
  auto p = RsParams::Parse({});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->poles_per_window, 4u);
  EXPECT_FALSE(RsParams::Parse({"-u", "1"}).ok());
  EXPECT_FALSE(RsParams::Parse({"-p", "0"}).ok());
  EXPECT_FALSE(RsParams::Parse({"--nope"}).ok());
}

TEST(AppParams, AmgDefaultsAndRejections) {
  auto p = AmgParams::Parse({"-x", "3", "-y", "4", "-z", "5"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->rows(), 60u);
  EXPECT_FALSE(AmgParams::Parse({"-x", "1"}).ok());
  EXPECT_FALSE(AmgParams::Parse({"-w", "0"}).ok());
}

TEST(AppParams, PrDefaultsAndRejections) {
  auto p = PrParams::Parse({"-g", "5000", "-a", "0.9"});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->damping, 0.9);
  EXPECT_FALSE(PrParams::Parse({"-g", "1"}).ok());
  EXPECT_FALSE(PrParams::Parse({"-a", "1.5"}).ok());
  EXPECT_FALSE(PrParams::Parse({"-a", "0"}).ok());
  EXPECT_FALSE(PrParams::Parse({"-d", "0"}).ok());
}

// --- Workload generation properties --------------------------------------------

TEST(AppGen, RsPolesStayInTheirWindows) {
  RsParams p;
  p.n_nuclides = 6;
  p.n_windows = 8;
  p.poles_per_window = 4;
  const RsData data = GenerateRsData(p);
  const std::uint64_t windows = std::uint64_t(p.n_nuclides) * p.n_windows;
  ASSERT_EQ(data.poles.size(),
            windows * p.poles_per_window * RsData::kPoleDoubles);
  for (std::uint64_t w = 0; w < windows; ++w) {
    const double w_lo = double(w % p.n_windows) / p.n_windows;
    for (std::uint32_t k = 0; k < p.poles_per_window; ++k) {
      const double* pole =
          &data.poles[(w * p.poles_per_window + k) * RsData::kPoleDoubles];
      EXPECT_GE(pole[0], w_lo);
      EXPECT_LE(pole[0], w_lo + 1.0 / p.n_windows);
      EXPECT_GT(pole[1], 0.0);  // imaginary part keeps denominators sane
    }
  }
}

TEST(AppGen, GenerationIsDeterministicPerSeed) {
  XsParams xa, xb;
  xa.seed = xb.seed = 42;
  EXPECT_EQ(GenerateXsData(xa).nuclide_energy, GenerateXsData(xb).nuclide_energy);
  PrParams pa, pb;
  pa.n_nodes = pb.n_nodes = 3000;
  pa.seed = pb.seed = 5;
  EXPECT_EQ(GeneratePrData(pa).src, GeneratePrData(pb).src);
  pb.seed = 6;
  EXPECT_NE(GeneratePrData(pa).src, GeneratePrData(pb).src);
}

TEST(AppGen, PagerankCsrIsWellFormed) {
  PrParams p;
  p.n_nodes = 2000;
  p.avg_degree = 5;
  const PrData data = GeneratePrData(p);
  EXPECT_TRUE(std::is_sorted(data.row_ptr.begin(), data.row_ptr.end()));
  EXPECT_EQ(data.row_ptr.back(), data.src.size());
  EXPECT_EQ(data.rank.size(), std::size_t(p.n_nodes));
  double total = 0;
  for (double r : data.rank) total += r;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace
}  // namespace dgc::apps

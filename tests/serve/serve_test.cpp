// The service-level robustness contract, end to end: bounded-queue
// backpressure, occupancy/memory admission, per-job deadlines, retry with
// backoff, per-app circuit breaking, graceful drain, seeded chaos — and
// byte-identical replay of the outcome log for any host-thread count.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "dgcf/app.h"
#include "dgcf/libc.h"
#include "dgcf/loader.h"
#include "dgcf/rpc.h"
#include "ensemble/loader.h"
#include "gpusim/device.h"
#include "ompx/team.h"
#include "serve/admission.h"
#include "serve/chaos.h"
#include "serve/policy.h"
#include "serve/queue.h"
#include "serve/scheduler.h"
#include "serve/stream.h"

namespace dgc::serve {
namespace {

using dgcf::AppEnv;
using dgcf::DeviceArgv;
using dgcf::DeviceLibc;
using ompx::TeamCtx;
using sim::DeviceSpec;
using sim::DeviceTask;
using sim::ThreadCtx;

// A service probe app, one behavior per flag:
//   -x <code>  return <code>
//   -h         hang until a watchdog fires
//   -a         abort()
//   -w <n>     n units of well-behaved compute
//   -b <n>     allocate and free an <n>-byte buffer (footprint probe)
DeviceTask<int> ServeProbeMain(AppEnv& env, TeamCtx& team, int argc,
                               DeviceArgv argv) {
  ThreadCtx& ctx = *team.hw;
  for (int i = 1; i < argc; ++i) {
    if (DeviceLibc::StrCmp(argv[i], "-x") == 0 && i + 1 < argc) {
      co_return int(std::strtol(DeviceLibc::ToString(argv[++i]).c_str(),
                                nullptr, 10));
    } else if (DeviceLibc::StrCmp(argv[i], "-h") == 0) {
      while (true) co_await ctx.Work(100);
    } else if (DeviceLibc::StrCmp(argv[i], "-a") == 0) {
      DeviceLibc::Abort();
    } else if (DeviceLibc::StrCmp(argv[i], "-w") == 0 && i + 1 < argc) {
      const long reps =
          std::strtol(DeviceLibc::ToString(argv[++i]).c_str(), nullptr, 10);
      for (long r = 0; r < reps; ++r) co_await ctx.Work(50);
    } else if (DeviceLibc::StrCmp(argv[i], "-b") == 0 && i + 1 < argc) {
      const long bytes =
          std::strtol(DeviceLibc::ToString(argv[++i]).c_str(), nullptr, 10);
      auto buf = co_await env.libc->MallocOrTrap(ctx, std::uint64_t(bytes));
      co_await env.libc->Free(ctx, buf.addr);
    } else {
      co_return dgcf::kExitUsage;
    }
  }
  co_return 0;
}

DGC_REGISTER_APP(serveprobe, "service probe", ServeProbeMain)
DGC_REGISTER_APP(servealt, "second tenant probe", ServeProbeMain)

JobRequest Req(const char* app, std::vector<std::string> args,
               std::uint64_t at = 0, std::uint64_t deadline = 0,
               std::int64_t prio = 0) {
  JobRequest r;
  r.app = app;
  r.args = std::move(args);
  r.at = at;
  r.deadline_budget = deadline;
  r.priority = prio;
  return r;
}

ServeConfig BaseConfig() {
  ServeConfig config;
  config.spec = DeviceSpec::TestDevice();
  config.thread_limit = 4;
  config.queue_capacity = 16;
  config.jobs = 1;
  return config;
}

// ---------------------------------------------------------------------------
// Stream parsing

TEST(JobStream, ParsesDirectivesAndArgv) {
  auto requests = ParseJobStream(
      "# comment\n"
      "serveprobe -w 2\n"
      "@at=100 @deadline=5000 @prio=3 serveprobe -x 1 \"a b\"\n");
  ASSERT_TRUE(requests.ok()) << requests.status().ToString();
  ASSERT_EQ(requests->size(), 2u);
  EXPECT_EQ((*requests)[0].app, "serveprobe");
  EXPECT_EQ((*requests)[0].args, (std::vector<std::string>{"-w", "2"}));
  EXPECT_EQ((*requests)[1].at, 100u);
  EXPECT_EQ((*requests)[1].deadline_budget, 5000u);
  EXPECT_EQ((*requests)[1].priority, 3);
  EXPECT_EQ((*requests)[1].args,
            (std::vector<std::string>{"-x", "1", "a b"}));
}

TEST(JobStream, ArrivalsNeverGoBackwards) {
  auto requests = ParseJobStream(
      "@at=500 serveprobe -w 1\n"
      "serveprobe -w 1\n"
      "@at=100 serveprobe -w 1\n");
  ASSERT_TRUE(requests.ok());
  EXPECT_EQ((*requests)[0].at, 500u);
  EXPECT_EQ((*requests)[1].at, 500u);  // inherits
  EXPECT_EQ((*requests)[2].at, 500u);  // clamped
}

TEST(JobStream, RejectsBadDirectivesAndEmptyApp) {
  EXPECT_FALSE(ParseJobStream("@bogus=1 serveprobe\n").ok());
  EXPECT_FALSE(ParseJobStream("@at=x serveprobe\n").ok());
  EXPECT_FALSE(ParseJobStream("@at=5\n").ok());  // directives, no app
}

// ---------------------------------------------------------------------------
// Bounded queue

TEST(BoundedQueue, RejectsAtCapacityAndTracksPeak) {
  BoundedJobQueue queue(2);
  EXPECT_TRUE(queue.Push(0, 0).ok());
  EXPECT_TRUE(queue.Push(1, 0).ok());
  EXPECT_FALSE(queue.Push(2, 0).ok());
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.peak_depth(), 2u);
  EXPECT_TRUE(queue.Remove(0));
  EXPECT_FALSE(queue.Remove(0));
  EXPECT_TRUE(queue.Push(2, 0).ok());
}

TEST(BoundedQueue, OrdersByPriorityThenFifo) {
  BoundedJobQueue queue(8);
  ASSERT_TRUE(queue.Push(0, 0).ok());
  ASSERT_TRUE(queue.Push(1, 5).ok());
  ASSERT_TRUE(queue.Push(2, 0).ok());
  ASSERT_TRUE(queue.Push(3, 5).ok());
  EXPECT_EQ(queue.OrderedIds(), (std::vector<JobId>{1, 3, 0, 2}));
}

// ---------------------------------------------------------------------------
// Policy

TEST(CircuitBreaker, OpensAfterConsecutiveFailures) {
  CircuitBreaker::Config config;
  config.failure_threshold = 3;
  config.cooldown = 1000;
  CircuitBreaker breaker(config);
  EXPECT_FALSE(breaker.RecordFailure(10));
  EXPECT_FALSE(breaker.RecordFailure(20));
  breaker.RecordSuccess();  // resets the streak
  EXPECT_FALSE(breaker.RecordFailure(30));
  EXPECT_FALSE(breaker.RecordFailure(40));
  EXPECT_TRUE(breaker.RecordFailure(50));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.open_until(), 1050u);
  EXPECT_TRUE(breaker.Rejecting());
}

TEST(CircuitBreaker, ProbeFailureDoublesCooldownProbeSuccessCloses) {
  CircuitBreaker::Config config;
  config.failure_threshold = 1;
  config.cooldown = 1000;
  config.max_cooldown_multiplier = 4;
  CircuitBreaker breaker(config);
  EXPECT_TRUE(breaker.RecordFailure(0));
  breaker.HalfOpen();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Rejecting());  // the probe may run
  // Escalation kicks in from the second failed probe: each reopen applies
  // the current multiplier, then doubles it (capped).
  EXPECT_TRUE(breaker.RecordFailure(2000));  // probe failed: reopen
  EXPECT_EQ(breaker.open_until(), 2000u + 1000u);
  breaker.HalfOpen();
  EXPECT_TRUE(breaker.RecordFailure(5000));
  EXPECT_EQ(breaker.open_until(), 5000u + 1000u * 2u);
  breaker.HalfOpen();
  EXPECT_TRUE(breaker.RecordFailure(9000));
  EXPECT_EQ(breaker.open_until(), 9000u + 1000u * 4u);  // capped at 4x
  breaker.HalfOpen();
  EXPECT_TRUE(breaker.RecordFailure(20000));
  EXPECT_EQ(breaker.open_until(), 20000u + 1000u * 4u);
  breaker.HalfOpen();
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_FALSE(breaker.Rejecting());
}

TEST(RetryPolicy, BackoffDoublesPerAttempt) {
  RetryPolicy policy;
  policy.backoff_base = 100;
  EXPECT_EQ(policy.BackoffDelay(1), 100u);
  EXPECT_EQ(policy.BackoffDelay(2), 200u);
  EXPECT_EQ(policy.BackoffDelay(3), 400u);
}

// ---------------------------------------------------------------------------
// Chaos

TEST(Chaos, ParseRoundTripAndOrdinalDecisions) {
  auto plan = ChaosPlan::Parse("seed@9;malformed@2;trap@3,4;slow@5.x8");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->ToString(), "seed@9;malformed@2;trap@3,4;slow@5.x8");
  EXPECT_TRUE(plan->Decide(2).malformed);
  EXPECT_FALSE(plan->Decide(1).malformed);
  EXPECT_TRUE(plan->Decide(3).trap);
  EXPECT_TRUE(plan->Decide(4).trap);
  EXPECT_EQ(plan->Decide(5).slow_factor, 8u);
  EXPECT_EQ(plan->Decide(3).slow_factor, 1u);
}

TEST(Chaos, ProbabilisticDecisionsAreSeededAndStateless) {
  auto plan = ChaosPlan::Parse("seed@11;trap@p50");
  ASSERT_TRUE(plan.ok());
  // Stateless: the same ordinal always decides the same way, regardless of
  // evaluation order; ~half the ordinals trap.
  int traps = 0;
  for (std::uint64_t n = 1; n <= 100; ++n) {
    const bool first = plan->Decide(n).trap;
    EXPECT_EQ(first, plan->Decide(n).trap);
    traps += first ? 1 : 0;
  }
  EXPECT_GT(traps, 25);
  EXPECT_LT(traps, 75);
}

TEST(Chaos, ParseErrors) {
  EXPECT_FALSE(ChaosPlan::Parse("trap@").ok());
  EXPECT_FALSE(ChaosPlan::Parse("slow@2").ok());        // missing .x factor
  EXPECT_FALSE(ChaosPlan::Parse("slow@2.x0").ok());     // factor < 1
  EXPECT_FALSE(ChaosPlan::Parse("nonsense@1").ok());
  EXPECT_FALSE(ChaosPlan::Parse("malformed@p200").ok());
}

// ---------------------------------------------------------------------------
// Admission

TEST(Admission, OccupancyTeamCapAndMemoryBudget) {
  AdmissionConfig config;
  config.default_estimate = 1000;
  config.headroom = 0.5;
  AdmissionController admission(config);
  ASSERT_TRUE(admission.Init(DeviceSpec::TestDevice(), 4, 1).ok());
  // TestDevice: 2 SMs x 4 block slots = 8 resident blocks at tiny shapes.
  EXPECT_EQ(admission.team_cap(), 8u);
  EXPECT_EQ(admission.batch_cap(), 8u);
  EXPECT_EQ(admission.MemoryBudget(1000, 0), 500u);
  EXPECT_EQ(admission.MemoryBudget(1000, 400), 100u);
  EXPECT_EQ(admission.MemoryBudget(1000, 600), 0u);
}

TEST(Admission, EstimatesLearnFromObservation) {
  AdmissionConfig config;
  config.default_estimate = 1000;
  AdmissionController admission(config);
  EXPECT_EQ(admission.EstimateFor("app"), 1000u);
  EXPECT_EQ(admission.AttachEstimateFor("app"), 250u);  // default/4
  admission.Observe("app", 8000);
  EXPECT_EQ(admission.EstimateFor("app"), 9000u);  // peak + peak/8
  admission.Observe("app", 4000);                  // never shrinks
  EXPECT_EQ(admission.EstimateFor("app"), 9000u);
  admission.ObserveAttach("app", 800);
  EXPECT_EQ(admission.AttachEstimateFor("app"), 900u);
}

TEST(Admission, BatchCapHonorsMaxBatch) {
  AdmissionConfig config;
  config.max_batch = 3;
  AdmissionController admission(config);
  ASSERT_TRUE(admission.Init(DeviceSpec::TestDevice(), 4, 1).ok());
  EXPECT_EQ(admission.batch_cap(), 3u);
}

// ---------------------------------------------------------------------------
// Scheduler end to end

TEST(Scheduler, PacksJobsAndCompletesThem) {
  ServeConfig config = BaseConfig();
  Scheduler scheduler(std::move(config));
  ASSERT_TRUE(scheduler.Init().ok());
  scheduler.EnqueueStream({Req("serveprobe", {"-w", "2"}),
                           Req("serveprobe", {"-w", "3"}),
                           Req("serveprobe", {"-w", "1"})});
  ASSERT_TRUE(scheduler.Run().ok());
  const ServeReport report = scheduler.report();
  EXPECT_EQ(report.submitted, 3u);
  EXPECT_EQ(report.succeeded, 3u);
  EXPECT_EQ(report.launches, 1u);  // one packed launch — the paper's point
  EXPECT_TRUE(report.ok());
}

TEST(Scheduler, FullQueueRejectsInsteadOfHanging) {
  ServeConfig config = BaseConfig();
  config.queue_capacity = 2;
  Scheduler scheduler(std::move(config));
  ASSERT_TRUE(scheduler.Init().ok());
  std::vector<JobRequest> burst;
  for (int i = 0; i < 5; ++i) burst.push_back(Req("serveprobe", {"-w", "1"}));
  scheduler.EnqueueStream(burst);
  ASSERT_TRUE(scheduler.Run().ok());
  const ServeReport report = scheduler.report();
  EXPECT_EQ(report.admitted, 2u);
  EXPECT_EQ(report.rejected_full, 3u);
  EXPECT_EQ(report.succeeded, 2u);
  // Backpressure is not failure: the service itself is healthy.
  EXPECT_TRUE(report.ok());
  for (JobId id = 2; id < 5; ++id) {
    EXPECT_EQ(scheduler.records()[id].outcome, JobOutcome::kRejected);
    EXPECT_EQ(scheduler.records()[id].reject, RejectReason::kQueueFull);
  }
}

TEST(Scheduler, AppErrorCountsAgainstExitButCompletes) {
  ServeConfig config = BaseConfig();
  Scheduler scheduler(std::move(config));
  ASSERT_TRUE(scheduler.Init().ok());
  scheduler.EnqueueStream(
      {Req("serveprobe", {"-x", "3"}), Req("serveprobe", {"-w", "1"})});
  ASSERT_TRUE(scheduler.Run().ok());
  const ServeReport report = scheduler.report();
  EXPECT_EQ(report.app_error, 1u);
  EXPECT_EQ(report.succeeded, 1u);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(scheduler.records()[0].exit_code, 3);
}

TEST(Scheduler, UnregisteredAppIsMalformed) {
  ServeConfig config = BaseConfig();
  Scheduler scheduler(std::move(config));
  ASSERT_TRUE(scheduler.Init().ok());
  scheduler.EnqueueStream({Req("ghost", {"-w", "1"})});
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(scheduler.report().rejected_malformed, 1u);
  EXPECT_TRUE(scheduler.report().ok());  // never admitted
}

TEST(Scheduler, QuarantineStopsBadTenantWhileOthersComplete) {
  ServeConfig config = BaseConfig();
  config.breaker.failure_threshold = 2;
  config.breaker.cooldown = 1 << 20;  // stay quarantined for the test
  Scheduler scheduler(std::move(config));
  ASSERT_TRUE(scheduler.Init().ok());
  scheduler.EnqueueStream({
      Req("serveprobe", {"-a"}),            // abort
      Req("serveprobe", {"-a"}),            // abort → breaker opens
      Req("servealt", {"-w", "2"}),         // healthy tenant
      Req("serveprobe", {"-w", "1"}, 60000),  // arrives while quarantined
      Req("servealt", {"-w", "2"}, 60000),  // healthy tenant keeps flowing
  });
  ASSERT_TRUE(scheduler.Run().ok());
  const ServeReport report = scheduler.report();
  EXPECT_EQ(report.quarantines, 1u);
  EXPECT_EQ(report.failed, 2u);
  EXPECT_EQ(report.rejected_quarantined, 1u);
  EXPECT_EQ(report.succeeded, 2u);  // both servealt jobs
  EXPECT_EQ(scheduler.records()[3].reject, RejectReason::kQuarantined);
  EXPECT_EQ(scheduler.records()[2].outcome, JobOutcome::kSucceeded);
  EXPECT_EQ(scheduler.records()[4].outcome, JobOutcome::kSucceeded);
}

TEST(Scheduler, HalfOpenProbeClosesBreakerAgain) {
  ServeConfig config = BaseConfig();
  config.breaker.failure_threshold = 1;
  config.breaker.cooldown = 10000;
  config.chaos = *ChaosPlan::Parse("trap@1");  // only the first job traps
  Scheduler scheduler(std::move(config));
  ASSERT_TRUE(scheduler.Init().ok());
  scheduler.EnqueueStream({
      Req("serveprobe", {"-w", "1"}),           // chaos-trapped → quarantine
      Req("serveprobe", {"-w", "1"}, 200000),   // after cooldown: the probe
      Req("serveprobe", {"-w", "1"}, 200000),   // runs once probe succeeds
  });
  ASSERT_TRUE(scheduler.Run().ok());
  const ServeReport report = scheduler.report();
  EXPECT_EQ(report.quarantines, 1u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.succeeded, 2u);
}

TEST(Scheduler, DeadlineMissedInQueueAndAtRuntime) {
  ServeConfig config = BaseConfig();
  config.retry.job_attempts = 3;  // deadline misses must NOT retry
  Scheduler scheduler(std::move(config));
  ASSERT_TRUE(scheduler.Init().ok());
  scheduler.EnqueueStream({
      Req("serveprobe", {"-h"}, 0, 5000),     // hang: watchdog = deadline
      Req("servealt", {"-w", "2"}, 10, 1),    // expires while queued
  });
  ASSERT_TRUE(scheduler.Run().ok());
  const ServeReport report = scheduler.report();
  EXPECT_EQ(report.deadline_missed, 2u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(scheduler.records()[0].outcome, JobOutcome::kDeadlineMissed);
  EXPECT_EQ(scheduler.records()[0].attempts, 1u);
  EXPECT_EQ(scheduler.records()[1].outcome, JobOutcome::kDeadlineMissed);
  EXPECT_EQ(scheduler.records()[1].attempts, 0u);
  EXPECT_FALSE(report.ok());
}

TEST(Scheduler, RetryWithBackoffThenPermanentFailure) {
  ServeConfig config = BaseConfig();
  config.instance_watchdog_cycles = 4000;  // config watchdog, not deadline
  config.retry.job_attempts = 2;
  config.retry.backoff_base = 1000;
  config.breaker.failure_threshold = 0;  // isolate retry from quarantine
  Scheduler scheduler(std::move(config));
  ASSERT_TRUE(scheduler.Init().ok());
  scheduler.EnqueueStream({Req("serveprobe", {"-h"})});
  ASSERT_TRUE(scheduler.Run().ok());
  const ServeReport report = scheduler.report();
  EXPECT_EQ(report.retries, 1u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(scheduler.records()[0].attempts, 2u);
  EXPECT_EQ(scheduler.records()[0].outcome, JobOutcome::kFailed);
}

TEST(Scheduler, ChaosTrapAndSlowCompileToLaunchFaults) {
  ServeConfig config = BaseConfig();
  config.chaos = *ChaosPlan::Parse("trap@1;slow@2.x4");
  Scheduler scheduler(std::move(config));
  ASSERT_TRUE(scheduler.Init().ok());
  scheduler.EnqueueStream({Req("serveprobe", {"-w", "4"}),
                           Req("serveprobe", {"-w", "4"}),
                           Req("serveprobe", {"-w", "4"})});
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(scheduler.report().failed, 1u);
  EXPECT_EQ(scheduler.report().succeeded, 2u);
  EXPECT_EQ(scheduler.records()[0].outcome, JobOutcome::kFailed);
  // The slowed job burns ~4x the cycles of its identical sibling.
  EXPECT_GT(scheduler.records()[1].cycles,
            scheduler.records()[2].cycles * 2);
}

TEST(Scheduler, ChaosMalformedRejectsAtSubmit) {
  ServeConfig config = BaseConfig();
  config.chaos = *ChaosPlan::Parse("malformed@2");
  Scheduler scheduler(std::move(config));
  ASSERT_TRUE(scheduler.Init().ok());
  scheduler.EnqueueStream(
      {Req("serveprobe", {"-w", "1"}), Req("serveprobe", {"-w", "1"})});
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(scheduler.report().rejected_malformed, 1u);
  EXPECT_EQ(scheduler.report().succeeded, 1u);
  EXPECT_TRUE(scheduler.report().ok());
}

TEST(Scheduler, DrainFinishesInFlightCancelsQueuedRejectsNew) {
  ServeConfig config = BaseConfig();
  config.drain_at = 1000;
  Scheduler scheduler(std::move(config));
  ASSERT_TRUE(scheduler.Init().ok());
  scheduler.EnqueueStream({
      Req("serveprobe", {"-w", "50"}),        // in flight at the drain point
      Req("servealt", {"-w", "2"}),           // still queued (other app)
      Req("serveprobe", {"-w", "1"}, 2000),   // arrives after the drain
  });
  ASSERT_TRUE(scheduler.Run().ok());
  const ServeReport report = scheduler.report();
  EXPECT_TRUE(report.drained);
  EXPECT_EQ(report.succeeded, 1u);  // the in-flight launch completed
  EXPECT_EQ(report.cancelled, 1u);
  EXPECT_EQ(report.rejected_draining, 1u);
  EXPECT_EQ(scheduler.records()[0].outcome, JobOutcome::kSucceeded);
  EXPECT_EQ(scheduler.records()[1].outcome, JobOutcome::kCancelled);
  EXPECT_EQ(scheduler.records()[2].reject, RejectReason::kDraining);
  EXPECT_TRUE(report.ok());  // cancelled/rejected are not failures
}

TEST(Scheduler, RequestDrainIsTheSignalPath) {
  ServeConfig config = BaseConfig();
  bool want_drain = false;
  config.drain_poll = [&want_drain] { return want_drain; };
  Scheduler scheduler(std::move(config));
  ASSERT_TRUE(scheduler.Init().ok());
  scheduler.EnqueueStream({Req("serveprobe", {"-w", "1"})});
  ASSERT_TRUE(scheduler.Run().ok());
  want_drain = true;
  scheduler.EnqueueStream({Req("serveprobe", {"-w", "1"})});
  ASSERT_TRUE(scheduler.Run().ok());
  const ServeReport report = scheduler.report();
  EXPECT_TRUE(report.drained);
  EXPECT_EQ(report.succeeded, 1u);
  EXPECT_EQ(report.rejected_draining, 1u);
}

TEST(Scheduler, OversizedJobFailsInsteadOfStalling) {
  ServeConfig config = BaseConfig();
  // TestDevice has 64 MiB; an estimate beyond headroom can never fit.
  config.admission.default_estimate = std::uint64_t(1) << 40;
  Scheduler scheduler(std::move(config));
  ASSERT_TRUE(scheduler.Init().ok());
  scheduler.EnqueueStream({Req("serveprobe", {"-w", "1"})});
  ASSERT_TRUE(scheduler.Run().ok());  // terminates — never hangs
  EXPECT_EQ(scheduler.report().failed, 1u);
  EXPECT_EQ(scheduler.records()[0].outcome, JobOutcome::kFailed);
}

TEST(Scheduler, PriorityJobsDispatchFirst) {
  ServeConfig config = BaseConfig();
  config.admission.max_batch = 1;  // serialize launches to expose order
  Scheduler scheduler(std::move(config));
  ASSERT_TRUE(scheduler.Init().ok());
  scheduler.EnqueueStream({Req("serveprobe", {"-w", "2"}, 0, 0, 0),
                           Req("serveprobe", {"-w", "2"}, 0, 0, 7)});
  ASSERT_TRUE(scheduler.Run().ok());
  // The high-priority job launched first, so it finished first.
  EXPECT_LT(scheduler.records()[1].finish_cycle,
            scheduler.records()[0].finish_cycle);
}

std::string RunLogged(unsigned jobs, std::uint32_t devices) {
  ServeConfig config = BaseConfig();
  config.jobs = jobs;
  config.devices = devices;
  config.retry.job_attempts = 2;
  config.breaker.failure_threshold = 2;
  config.chaos = *ChaosPlan::Parse("seed@5;trap@p20;slow@p10.x4");
  std::ostringstream log;
  config.log = &log;
  Scheduler scheduler(std::move(config));
  EXPECT_TRUE(scheduler.Init().ok());
  std::vector<JobRequest> stream;
  for (int i = 0; i < 12; ++i) {
    stream.push_back(Req(i % 3 == 0 ? "servealt" : "serveprobe",
                         {"-w", i % 2 == 0 ? "2" : "5"},
                         std::uint64_t(i) * 700));
  }
  stream.push_back(Req("serveprobe", {"-h"}, 9000, 6000));
  EXPECT_TRUE(scheduler.Run().ok());
  scheduler.EnqueueStream(stream);
  EXPECT_TRUE(scheduler.Run().ok());
  scheduler.WriteReport();
  return log.str();
}

TEST(Scheduler, OutcomeLogIsByteIdenticalAcrossJobsAndReplay) {
  const std::string serial = RunLogged(1, 2);
  const std::string threaded = RunLogged(4, 2);
  const std::string replay = RunLogged(1, 2);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, threaded);
  EXPECT_EQ(serial, replay);
}

// ---------------------------------------------------------------------------
// Loader support: per-instance watchdog budgets

TEST(InstanceWatchdogs, PerInstanceBudgetsOverrideTheGlobal) {
  sim::Device device{DeviceSpec::TestDevice()};
  dgcf::RpcHost rpc{device};
  DeviceLibc libc{device};
  AppEnv env{&device, &rpc, &libc};
  ensemble::EnsembleOptions options;
  options.app = "serveprobe";
  options.instance_args = {{"-h"}, {"-w", "2"}, {"-h"}};
  options.thread_limit = 4;
  // Global budget generous; instance 0 gets a tight personal budget.
  options.instance_watchdog_cycles = 500000;
  options.instance_watchdogs = {3000, 0, 0};
  auto run = ensemble::RunEnsemble(env, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->instances[0].reason, dgcf::TerminationReason::kWatchdog);
  EXPECT_EQ(run->instances[1].reason, dgcf::TerminationReason::kReturned);
  EXPECT_EQ(run->instances[2].reason, dgcf::TerminationReason::kWatchdog);
  // Instance 0's tight budget fires far earlier than instance 2's global.
  EXPECT_LT(run->instances[0].cycles, run->instances[2].cycles);
}

TEST(InstanceWatchdogs, SizeMismatchIsRejected) {
  sim::Device device{DeviceSpec::TestDevice()};
  dgcf::RpcHost rpc{device};
  DeviceLibc libc{device};
  AppEnv env{&device, &rpc, &libc};
  ensemble::EnsembleOptions options;
  options.app = "serveprobe";
  options.instance_args = {{"-w", "1"}, {"-w", "1"}};
  options.thread_limit = 4;
  options.instance_watchdogs = {100};  // 1 entry, 2 instances
  EXPECT_FALSE(ensemble::RunEnsemble(env, options).ok());
}

}  // namespace
}  // namespace dgc::serve

#include "support/argparse.h"

#include <gtest/gtest.h>

namespace dgc {
namespace {

struct LoaderFlags {
  std::string file;
  std::int64_t instances = 1;
  std::int64_t threads = 1024;
  bool verbose = false;
};

ArgParser MakeLoaderParser(LoaderFlags& f) {
  ArgParser p("ensemble loader");
  p.AddString("file", 'f', "argument file", &f.file, /*required=*/true)
      .AddInt("num-instances", 'n', "instances", &f.instances)
      .AddInt("thread-limit", 't', "threads per instance", &f.threads)
      .AddFlag("verbose", 'v', "verbose output", &f.verbose);
  return p;
}

TEST(ArgParser, PaperStyleInvocation) {
  // "./user_app_gpu -f arguments.txt -n 4 -t 128" (Fig. 5c).
  LoaderFlags f;
  auto p = MakeLoaderParser(f);
  ASSERT_TRUE(p.Parse({"-f", "arguments.txt", "-n", "4", "-t", "128"}).ok());
  EXPECT_EQ(f.file, "arguments.txt");
  EXPECT_EQ(f.instances, 4);
  EXPECT_EQ(f.threads, 128);
  EXPECT_FALSE(f.verbose);
}

TEST(ArgParser, LongNamesAndEquals) {
  LoaderFlags f;
  auto p = MakeLoaderParser(f);
  ASSERT_TRUE(
      p.Parse({"--file=a.txt", "--num-instances", "8", "--verbose"}).ok());
  EXPECT_EQ(f.file, "a.txt");
  EXPECT_EQ(f.instances, 8);
  EXPECT_TRUE(f.verbose);
}

TEST(ArgParser, ShortOptionGluedValue) {
  LoaderFlags f;
  auto p = MakeLoaderParser(f);
  ASSERT_TRUE(p.Parse({"-fargs.txt", "-n64"}).ok());
  EXPECT_EQ(f.file, "args.txt");
  EXPECT_EQ(f.instances, 64);
}

TEST(ArgParser, MissingRequired) {
  LoaderFlags f;
  auto p = MakeLoaderParser(f);
  Status s = p.Parse({"-n", "4"});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(s.message().find("--file"), std::string::npos);
}

TEST(ArgParser, UnknownOption) {
  LoaderFlags f;
  auto p = MakeLoaderParser(f);
  EXPECT_FALSE(p.Parse({"-f", "x", "--bogus"}).ok());
  EXPECT_FALSE(p.Parse({"-f", "x", "-z"}).ok());
}

TEST(ArgParser, MissingValue) {
  LoaderFlags f;
  auto p = MakeLoaderParser(f);
  EXPECT_FALSE(p.Parse({"-f"}).ok());
}

TEST(ArgParser, BadIntValue) {
  LoaderFlags f;
  auto p = MakeLoaderParser(f);
  EXPECT_FALSE(p.Parse({"-f", "x", "-n", "four"}).ok());
}

TEST(ArgParser, FlagRejectsValue) {
  LoaderFlags f;
  auto p = MakeLoaderParser(f);
  EXPECT_FALSE(p.Parse({"-f", "x", "--verbose=1"}).ok());
}

TEST(ArgParser, PositionalsAndDashDash) {
  LoaderFlags f;
  std::vector<std::string> pos;
  auto p = MakeLoaderParser(f);
  p.AddPositionalList("inputs", "input files", &pos);
  ASSERT_TRUE(p.Parse({"-f", "x", "a.bin", "--", "-n", "b.bin"}).ok());
  EXPECT_EQ(pos, (std::vector<std::string>{"a.bin", "-n", "b.bin"}));
  EXPECT_EQ(f.instances, 1);  // -n after -- is positional
}

TEST(ArgParser, UnexpectedPositionalFails) {
  LoaderFlags f;
  auto p = MakeLoaderParser(f);
  EXPECT_FALSE(p.Parse({"-f", "x", "stray"}).ok());
}

TEST(ArgParser, DoubleOption) {
  double rate = 0;
  ArgParser p;
  p.AddDouble("rate", 'r', "sample rate", &rate);
  ASSERT_TRUE(p.Parse({"-r", "0.25"}).ok());
  EXPECT_DOUBLE_EQ(rate, 0.25);
}

TEST(ArgParser, LastOccurrenceWins) {
  LoaderFlags f;
  auto p = MakeLoaderParser(f);
  ASSERT_TRUE(p.Parse({"-f", "a", "-f", "b"}).ok());
  EXPECT_EQ(f.file, "b");
}

TEST(ArgParser, UsageMentionsOptions) {
  LoaderFlags f;
  auto p = MakeLoaderParser(f);
  const std::string usage = p.Usage("loader");
  EXPECT_NE(usage.find("--file"), std::string::npos);
  EXPECT_NE(usage.find("-n"), std::string::npos);
  EXPECT_NE(usage.find("required"), std::string::npos);
}

}  // namespace
}  // namespace dgc

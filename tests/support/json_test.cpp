#include "support/json.h"

#include <gtest/gtest.h>

namespace dgc {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("xsbench"), "xsbench");
  EXPECT_EQ(JsonEscape(""), "");
  EXPECT_EQ(JsonEscape("a b-c_d/e.f"), "a b-c_d/e.f");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("C:\\tmp"), "C:\\\\tmp");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("nul\0byte", 8)), "nul\\u0000byte");
  EXPECT_EQ(JsonEscape("\x01"), "\\u0001");
}

TEST(JsonEscape, EscapedStringsValidateInsideADocument) {
  const std::string doc =
      "{\"k\": \"" + JsonEscape("tricky \"\\\n\x02 value") + "\"}";
  EXPECT_TRUE(JsonValidate(doc).ok());
}

TEST(JsonValidate, AcceptsWellFormedDocuments) {
  EXPECT_TRUE(JsonValidate("{}").ok());
  EXPECT_TRUE(JsonValidate("[]").ok());
  EXPECT_TRUE(JsonValidate("null").ok());
  EXPECT_TRUE(JsonValidate("-12.5e+3").ok());
  EXPECT_TRUE(JsonValidate(R"({"a": [1, 2.0, true, false, null],
                               "b": {"c": "d"}})")
                  .ok());
}

TEST(JsonValidate, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonValidate("").ok());
  EXPECT_FALSE(JsonValidate("{").ok());
  EXPECT_FALSE(JsonValidate("[1,]").ok());
  EXPECT_FALSE(JsonValidate("{\"a\" 1}").ok());
  EXPECT_FALSE(JsonValidate("{'a': 1}").ok());
  EXPECT_FALSE(JsonValidate("01").ok());     // no leading zeros
  EXPECT_FALSE(JsonValidate("1.").ok());     // digit required after '.'
  EXPECT_FALSE(JsonValidate("nul").ok());
  EXPECT_FALSE(JsonValidate("{} {}").ok());  // one value per document
  EXPECT_FALSE(JsonValidate("\"a\nb\"").ok());  // raw control char
  EXPECT_FALSE(JsonValidate("\"\\x41\"").ok());  // bad escape
}

TEST(JsonValidate, ReportsByteOffsets) {
  const Status s = JsonValidate("[1, 2, x]");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("byte 7"), std::string::npos) << s.ToString();
}

TEST(JsonValidate, BoundsNestingDepth) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(JsonValidate(deep).ok());
  std::string fine(100, '[');
  fine += std::string(100, ']');
  EXPECT_TRUE(JsonValidate(fine).ok());
}

}  // namespace
}  // namespace dgc

// Tests for the sweep harness's worker pool (support/thread_pool.h).
#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace dgc {
namespace {

TEST(ThreadPool, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
}

TEST(ThreadPool, ZeroRequestedThreadsFallsBackToDefault) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), ThreadPool::DefaultThreads());
}

TEST(ThreadPool, SubmitRunsJobAndCompletesFuture) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  auto future = pool.Submit([&] { value = 42; });
  future.get();
  EXPECT_EQ(value, 42);
}

TEST(ThreadPool, RunAllRunsEveryJob) {
  ThreadPool pool(4);
  constexpr std::size_t kJobs = 64;
  std::vector<int> hits(kJobs, 0);
  std::vector<std::function<void()>> jobs;
  for (std::size_t i = 0; i < kJobs; ++i) {
    jobs.push_back([&hits, i] { hits[i] += 1; });  // slot per job: no races
  }
  ASSERT_TRUE(pool.RunAll(std::move(jobs)).ok());
  for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 16; ++i) {
    jobs.push_back([&order, i] { order.push_back(i); });
  }
  ASSERT_TRUE(pool.RunAll(std::move(jobs)).ok());
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(ThreadPool, ZeroJobsRejected) {
  ThreadPool pool(2);
  const Status s = pool.RunAll({});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
}

TEST(ThreadPool, NullJobRejectedBeforeAnythingRuns) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> jobs;
  jobs.push_back([&] { ++ran; });
  jobs.push_back(nullptr);
  const Status s = pool.RunAll(std::move(jobs));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(ran, 0);
}

TEST(ThreadPool, FirstIndexExceptionPropagatesAfterAllJobsFinish) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  std::vector<std::function<void()>> jobs;
  jobs.push_back([&] { ++completed; });
  jobs.push_back([] { throw std::runtime_error("job 1 failed"); });
  jobs.push_back([] { throw std::logic_error("job 2 failed"); });
  jobs.push_back([&] { ++completed; });
  try {
    pool.RunAll(std::move(jobs));
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // The smallest-index throwing job wins, not whichever finished first.
    EXPECT_STREQ(e.what(), "job 1 failed");
  }
  EXPECT_EQ(completed, 2);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  for (unsigned threads : {1u, 4u}) {
    constexpr std::size_t kCount = 40;
    std::vector<int> hits(kCount, 0);
    ASSERT_TRUE(
        ParallelFor(kCount, threads, [&](std::size_t i) { hits[i] += 1; })
            .ok());
    for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i], 1) << i;
  }
}

TEST(ThreadPool, ParallelForRejectsEmptyRangeAndNullBody) {
  EXPECT_EQ(ParallelFor(0, 2, [](std::size_t) {}).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(ParallelFor(3, 2, nullptr).code(), ErrorCode::kInvalidArgument);
}

TEST(ThreadPool, ParallelForInlineModeThrowsAtFirstFailingIndex) {
  std::vector<std::size_t> seen;
  EXPECT_THROW(ParallelFor(8, 1,
                           [&](std::size_t i) {
                             seen.push_back(i);
                             if (i == 3) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3}));
}

// --- Nested submission (the sweep-worker-runs-a-threaded-launch shape) -----

TEST(ThreadPool, NestedRunAllParticipatingFromOwnWorkerCompletes) {
  // Regression: a pool worker fanning a batch back into its own pool. With
  // plain RunAll this deadlocks on a single-worker pool — the worker waits
  // for jobs only it could run. RunAllParticipating drains the queue on
  // the calling (worker) thread, so the batch completes regardless of how
  // many workers are free.
  ThreadPool pool(1);
  std::atomic<int> inner_runs{0};
  auto outer = pool.Submit([&] {
    std::vector<std::function<void()>> inner;
    for (int i = 0; i < 4; ++i) {
      inner.push_back([&] { inner_runs.fetch_add(1); });
    }
    const Status status = pool.RunAllParticipating(std::move(inner));
    ASSERT_TRUE(status.ok()) << status.ToString();
  });
  outer.get();
  EXPECT_EQ(inner_runs.load(), 4);
}

TEST(ThreadPool, ParallelForFromInsidePoolWorkerCompletes) {
  // ParallelFor spawns its own temporary participating crew, so calling it
  // from another pool's worker must neither deadlock nor idle the caller.
  ThreadPool pool(1);
  std::atomic<int> hits{0};
  auto outer = pool.Submit([&] {
    const Status status =
        ParallelFor(16, 4, [&](std::size_t) { hits.fetch_add(1); });
    ASSERT_TRUE(status.ok()) << status.ToString();
  });
  outer.get();
  EXPECT_EQ(hits.load(), 16);
}

TEST(ThreadPool, NestedParticipatingBatchesPropagateExceptions) {
  ThreadPool pool(1);
  auto outer = pool.Submit([&] {
    std::vector<std::function<void()>> inner;
    inner.push_back([] {});
    inner.push_back([]() -> void { throw std::runtime_error("inner boom"); });
    EXPECT_THROW(
        { (void)pool.RunAllParticipating(std::move(inner)); },
        std::runtime_error);
  });
  outer.get();
}

}  // namespace
}  // namespace dgc

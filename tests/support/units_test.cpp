#include "support/units.h"

#include <gtest/gtest.h>

namespace dgc {
namespace {

TEST(Units, FormatBytes) {
  EXPECT_EQ(FormatBytes(0), "0 B");
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1024), "1.00 KiB");
  EXPECT_EQ(FormatBytes(3 * kMiB + kMiB / 2), "3.50 MiB");
  EXPECT_EQ(FormatBytes(40 * kGiB), "40.00 GiB");
}

TEST(Units, FormatHz) {
  EXPECT_EQ(FormatHz(500), "500 Hz");
  EXPECT_EQ(FormatHz(1.41e9), "1.41 GHz");
  EXPECT_EQ(FormatHz(2.5e6), "2.50 MHz");
}

TEST(Units, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(5e-9), "5.0 ns");
  EXPECT_EQ(FormatSeconds(12.3e-6), "12.30 us");
  EXPECT_EQ(FormatSeconds(4.56e-3), "4.56 ms");
  EXPECT_EQ(FormatSeconds(1.234), "1.234 s");
}

TEST(Units, FormatCount) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
}

}  // namespace
}  // namespace dgc

#include "support/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dgc {
namespace {

TEST(SplitMix64, KnownSequence) {
  // Reference values for seed 1234567 from the public-domain reference code.
  SplitMix64 sm(0);
  const std::uint64_t a = sm.Next();
  const std::uint64_t b = sm.Next();
  EXPECT_NE(a, b);
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.Next(), a);
  EXPECT_EQ(sm2.Next(), b);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(Rng, BoundedZeroIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, DoubleRange) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble(-2.5, 4.5);
    EXPECT_GE(d, -2.5);
    EXPECT_LT(d, 4.5);
  }
}

TEST(Rng, BoolProbabilityEdges) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(Rng, BoolProbabilityApproximate) {
  Rng rng(14);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.25);
  EXPECT_NEAR(double(hits) / 10000.0, 0.25, 0.02);
}

TEST(Rng, JumpProducesDisjointStream) {
  Rng a(99);
  Rng b(99);
  b.Jump();
  std::set<std::uint64_t> first;
  for (int i = 0; i < 1000; ++i) first.insert(a.NextU64());
  int overlap = 0;
  for (int i = 0; i < 1000; ++i) overlap += first.count(b.NextU64());
  EXPECT_EQ(overlap, 0);
}

}  // namespace
}  // namespace dgc

#include "support/str.h"

#include <gtest/gtest.h>

namespace dgc {
namespace {

TEST(Trim, Basics) {
  EXPECT_EQ(TrimWhitespace("  a b \t"), "a b");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \n\t "), "");
  EXPECT_EQ(TrimWhitespace("x"), "x");
}

TEST(SplitChar, KeepsEmptyFields) {
  auto parts = SplitChar("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitWhitespace, CollapsesRuns) {
  auto parts = SplitWhitespace("  -a  1 \t -b\n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "-a");
  EXPECT_EQ(parts[1], "1");
  EXPECT_EQ(parts[2], "-b");
}

TEST(SplitWhitespace, EmptyInput) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(Tokenize, PlainArgs) {
  auto r = TokenizeCommandLine("-a 1 -b -c data-1.bin");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"-a", "1", "-b", "-c", "data-1.bin"}));
}

TEST(Tokenize, SingleQuotesPreserveSpaces) {
  auto r = TokenizeCommandLine("-m 'hello world' x");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"-m", "hello world", "x"}));
}

TEST(Tokenize, DoubleQuoteEscapes) {
  auto r = TokenizeCommandLine(R"(-m "say \"hi\" now")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"-m", "say \"hi\" now"}));
}

TEST(Tokenize, BackslashEscapesSpace) {
  auto r = TokenizeCommandLine(R"(a\ b c)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"a b", "c"}));
}

TEST(Tokenize, EmptyQuotedToken) {
  auto r = TokenizeCommandLine("a '' b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"a", "", "b"}));
}

TEST(Tokenize, UnterminatedQuoteFails) {
  EXPECT_FALSE(TokenizeCommandLine("a 'b").ok());
  EXPECT_FALSE(TokenizeCommandLine(R"(a "b)").ok());
}

TEST(Tokenize, TrailingBackslashFails) {
  EXPECT_FALSE(TokenizeCommandLine("a b\\").ok());
}

TEST(Tokenize, EmptyLineGivesNoTokens) {
  auto r = TokenizeCommandLine("   ");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(Join, Basics) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(ParseInt, Valid) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt("-7"), -7);
  EXPECT_EQ(*ParseInt("  123 "), 123);
  EXPECT_EQ(*ParseInt("0"), 0);
}

TEST(ParseInt, Invalid) {
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("12x").ok());
  EXPECT_FALSE(ParseInt("4.5").ok());
  EXPECT_FALSE(ParseInt("99999999999999999999999").ok());
}

TEST(ParseDouble, Valid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble(" 2 "), 2.0);
}

TEST(ParseDouble, Invalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("x").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
  EXPECT_TRUE(EndsWith("file.bin", ".bin"));
  EXPECT_FALSE(EndsWith("bin", "data.bin"));
}

TEST(StrFormat, Basics) {
  EXPECT_EQ(StrFormat("x=%d y=%s", 3, "abc"), "x=3 y=abc");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

}  // namespace
}  // namespace dgc

#include "support/log.h"

#include <gtest/gtest.h>

namespace dgc {
namespace {

TEST(Log, ParseLevels) {
  LogLevel l;
  EXPECT_TRUE(ParseLogLevel("debug", l));
  EXPECT_EQ(l, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", l));
  EXPECT_EQ(l, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warn", l));
  EXPECT_EQ(l, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", l));
  EXPECT_EQ(l, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("off", l));
  EXPECT_EQ(l, LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("loud", l));
}

TEST(Log, SetGetRoundTrip) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(prev);
}

TEST(Log, FilteredMessageDoesNotEvaluateStream) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return 1;
  };
  DGC_LOG(kDebug) << "never " << count();
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(prev);
}

}  // namespace
}  // namespace dgc

#include "support/status.h"

#include <gtest/gtest.h>

namespace dgc {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s(ErrorCode::kNotFound, "no such app");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.message(), "no such app");
  EXPECT_EQ(s.ToString(), "NotFound: no such app");
}

TEST(Status, AllCodesHaveNames) {
  for (ErrorCode c : {ErrorCode::kOk, ErrorCode::kInvalidArgument,
                      ErrorCode::kOutOfMemory, ErrorCode::kNotFound,
                      ErrorCode::kFailedPrecondition, ErrorCode::kUnsupported,
                      ErrorCode::kInternal}) {
    EXPECT_FALSE(ToString(c).empty());
    EXPECT_NE(ToString(c), "Unknown");
  }
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v(Status(ErrorCode::kInvalidArgument, "bad"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), ErrorCode::kInvalidArgument);
}

TEST(StatusOr, OkStatusIsRejected) {
  StatusOr<int> v(Status::Ok());
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), ErrorCode::kInternal);
}

TEST(StatusOr, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status(ErrorCode::kInvalidArgument, "not positive");
  return x;
}

Status UsesAssignOrReturn(int x, int& out) {
  DGC_ASSIGN_OR_RETURN(out, ParsePositive(x));
  return Status::Ok();
}

TEST(StatusMacros, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(5, out).ok());
  EXPECT_EQ(out, 5);
  Status err = UsesAssignOrReturn(-1, out);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), ErrorCode::kInvalidArgument);
}

TEST(StatusMacros, ReturnIfErrorPropagates) {
  auto f = [](bool fail) -> Status {
    DGC_RETURN_IF_ERROR(fail ? Status(ErrorCode::kInternal, "x") : Status::Ok());
    return Status(ErrorCode::kNotFound, "reached end");
  };
  EXPECT_EQ(f(true).code(), ErrorCode::kInternal);
  EXPECT_EQ(f(false).code(), ErrorCode::kNotFound);
}

TEST(StatusMacros, CheckAbortsOnFailure) {
  EXPECT_DEATH({ DGC_CHECK(1 == 2); }, "DGC_CHECK failed");
}

}  // namespace
}  // namespace dgc

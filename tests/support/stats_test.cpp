#include "support/stats.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace dgc {
namespace {

TEST(RunningStat, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownValues) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);  // sample variance
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleSample) {
  RunningStat s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStat, MatchesBatchComputation) {
  Rng rng(5);
  RunningStat s;
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble(-10, 10);
    xs.push_back(x);
    s.Add(x);
  }
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= double(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= double(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(Histogram, BucketsAndSaturation) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);   // bucket 0
  h.Add(9.5);   // bucket 9
  h.Add(-5.0);  // saturates to bucket 0
  h.Add(42.0);  // saturates to bucket 9
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, QuantileUniform) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(77);
  for (int i = 0; i < 100000; ++i) h.Add(rng.NextDouble());
  EXPECT_NEAR(h.Quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.Quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.Quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, QuantileEmpty) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2.0);
}

TEST(Histogram, ToStringHasOneLinePerBucket) {
  Histogram h(0.0, 4.0, 4);
  h.Add(1.0);
  const std::string s = h.ToString();
  int lines = 0;
  for (char c : s) lines += (c == '\n');
  EXPECT_EQ(lines, 4);
}

}  // namespace
}  // namespace dgc

#include "support/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>

namespace dgc {
namespace {

TEST(Arena, BasicAllocation) {
  Arena arena(128);
  void* a = arena.Allocate(16);
  void* b = arena.Allocate(16);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(arena.bytes_allocated(), 32u);
}

TEST(Arena, AlignmentRespected) {
  Arena arena(256);
  arena.Allocate(1, 1);
  for (std::size_t align : {2u, 4u, 8u, 16u, 32u, 64u}) {
    void* p = arena.Allocate(3, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u) << align;
  }
}

TEST(Arena, LargeAllocationSpansBlocks) {
  Arena arena(64);
  void* p = arena.Allocate(1000);
  EXPECT_NE(p, nullptr);
  std::memset(p, 0xab, 1000);  // must be writable
}

TEST(Arena, AllocationsDoNotOverlap) {
  Arena arena(128);
  std::vector<std::pair<std::byte*, std::size_t>> allocs;
  for (std::size_t i = 1; i <= 100; ++i) {
    auto* p = static_cast<std::byte*>(arena.Allocate(i));
    allocs.emplace_back(p, i);
    std::memset(p, int(i & 0xff), i);
  }
  // Verify every allocation still holds its fill pattern (overlap would
  // have clobbered earlier ones).
  for (auto& [p, n] : allocs) {
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(p[j], std::byte(n & 0xff));
    }
  }
}

TEST(Arena, ResetReusesMemory) {
  Arena arena(1024);
  arena.Allocate(512);
  const std::size_t reserved = arena.bytes_reserved();
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  arena.Allocate(512);
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // no new block needed
}

TEST(Arena, StrDupNulTerminates) {
  Arena arena;
  char* s = arena.StrDup("hello");
  EXPECT_STREQ(s, "hello");
  char* empty = arena.StrDup("");
  EXPECT_STREQ(empty, "");
}

TEST(Arena, StrDupStableAcrossMoreAllocations) {
  Arena arena(64);
  char* s = arena.StrDup("-a 1 -b -c data-1.bin");
  for (int i = 0; i < 100; ++i) arena.StrDup("filler string to force new blocks");
  EXPECT_STREQ(s, "-a 1 -b -c data-1.bin");
}

TEST(Arena, NewConstructsInPlace) {
  Arena arena;
  struct Pod {
    int a;
    double b;
  };
  Pod* p = arena.New<Pod>(3, 2.5);
  EXPECT_EQ(p->a, 3);
  EXPECT_DOUBLE_EQ(p->b, 2.5);
}

TEST(Arena, ZeroByteAllocationIsValid) {
  Arena arena;
  void* a = arena.Allocate(0);
  void* b = arena.Allocate(0);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace dgc

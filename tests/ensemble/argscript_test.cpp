#include "ensemble/argscript.h"

#include <gtest/gtest.h>

namespace dgc::ensemble {
namespace {

TEST(ArgScript, PlainLinesPassThrough) {
  auto args = ExpandScriptToArgs("-a 1 -b\n-a 2\n");
  ASSERT_TRUE(args.ok());
  ASSERT_EQ(args->size(), 2u);
  EXPECT_EQ((*args)[0], (std::vector<std::string>{"-a", "1", "-b"}));
}

TEST(ArgScript, RepeatWithIndexExpression) {
  // The paper's Fig. 5b inputs, generated instead of hand-written.
  auto text = ExpandScript("@repeat 4 : -a {i%3+1} -b -c data-{i+1}.bin\n");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text,
            "-a 1 -b -c data-1.bin\n"
            "-a 2 -b -c data-2.bin\n"
            "-a 3 -b -c data-3.bin\n"
            "-a 1 -b -c data-4.bin\n");
}

TEST(ArgScript, SeqGeneratesOneInstancePerElement) {
  auto args = ExpandScriptToArgs("-g {seq 100 400 100} -p 5\n");
  ASSERT_TRUE(args.ok());
  ASSERT_EQ(args->size(), 4u);
  EXPECT_EQ((*args)[0], (std::vector<std::string>{"-g", "100", "-p", "5"}));
  EXPECT_EQ((*args)[3], (std::vector<std::string>{"-g", "400", "-p", "5"}));
}

TEST(ArgScript, SeqDefaultStepIsOne) {
  auto args = ExpandScriptToArgs("-k {seq 3 5}\n");
  ASSERT_TRUE(args.ok());
  ASSERT_EQ(args->size(), 3u);
}

TEST(ArgScript, NegativeStepSeq) {
  auto text = ExpandScript("-k {seq 3 1 -1}\n");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "-k 3\n-k 2\n-k 1\n");
}

TEST(ArgScript, TwoSeqsMustAgreeOnLength) {
  EXPECT_TRUE(ExpandScript("-a {seq 1 3} -b {seq 10 30 10}\n").ok());
  auto bad = ExpandScript("-a {seq 1 3} -b {seq 1 2}\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("conflicts"), std::string::npos);
}

TEST(ArgScript, RepeatAndSeqMustAgree) {
  EXPECT_TRUE(ExpandScript("@repeat 3 : -a {seq 1 3}\n").ok());
  EXPECT_FALSE(ExpandScript("@repeat 4 : -a {seq 1 3}\n").ok());
}

TEST(ArgScript, RandIsDeterministicPerSeed) {
  const char* script = "@repeat 8 : -s {rand 1 1000}\n";
  auto a = ExpandScript(script, 7);
  auto b = ExpandScript(script, 7);
  auto c = ExpandScript(script, 8);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_NE(*a, *c);
}

TEST(ArgScript, SeedDirectiveOverridesDefault) {
  auto a = ExpandScript("@seed 5\n@repeat 4 : -s {rand 1 100}\n", 1);
  auto b = ExpandScript("@seed 5\n@repeat 4 : -s {rand 1 100}\n", 2);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, *b);  // @seed wins over the default seed
}

TEST(ArgScript, RandStaysInRange) {
  auto args = ExpandScriptToArgs("@repeat 100 : -s {rand 5 9}\n", 3);
  ASSERT_TRUE(args.ok());
  for (const auto& row : *args) {
    const int v = std::stoi(row[1]);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(ArgScript, ChoiceCycles) {
  auto text = ExpandScript("@repeat 4 : -m {choice small|large}\n");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "-m small\n-m large\n-m small\n-m large\n");
}

TEST(ArgScript, ArithmeticWithPrecedenceAndParens) {
  auto text = ExpandScript("@repeat 2 : -k {(i+1)*10-2} -j {i*2+3*4}\n");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "-k 8 -j 12\n-k 18 -j 14\n");
}

TEST(ArgScript, NVariableIsCount) {
  auto text = ExpandScript("@repeat 3 : -frac {i}/{n}\n");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "-frac 0/3\n-frac 1/3\n-frac 2/3\n");
}

TEST(ArgScript, DivisionByZeroRejected) {
  auto bad = ExpandScript("@repeat 2 : -k {1/i}\n");  // i = 0 divides
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("division"), std::string::npos);
}

TEST(ArgScript, ErrorsCarryLineNumbers) {
  auto bad = ExpandScript("-a 1\n-b {seq }\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(ArgScript, UnterminatedGeneratorRejected) {
  EXPECT_FALSE(ExpandScript("-a {seq 1 3\n").ok());
}

TEST(ArgScript, UnknownDirectiveRejected) {
  EXPECT_FALSE(ExpandScript("@frobnicate 3\n").ok());
}

TEST(ArgScript, EmptyScriptRejected) {
  EXPECT_FALSE(ExpandScript("# nothing\n").ok());
}

TEST(ArgScript, MultipleLinesConcatenate) {
  auto args = ExpandScriptToArgs(
      "@repeat 2 : -a {i}\n"
      "-g {seq 7 8}\n"
      "-z fixed\n");
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->size(), 5u);  // 2 + 2 + 1
}

}  // namespace
}  // namespace dgc::ensemble

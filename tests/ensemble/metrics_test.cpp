// The --metrics-json document (ensemble/metrics.h): validity, determinism,
// escaping, and a golden-file lock on the dgc-metrics-v1 schema shape.
#include "ensemble/metrics.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "dgcf/libc.h"
#include "dgcf/rpc.h"
#include "ensemble/loader.h"
#include "gpusim/device.h"
#include "gpusim/profiler.h"
#include "ompx/team.h"
#include "support/json.h"
#include "support/str.h"

namespace dgc::ensemble {
namespace {

using dgcf::AppEnv;
using dgcf::DeviceArgv;
using dgcf::DeviceLibc;
using ompx::TeamCtx;
using sim::Device;
using sim::DeviceSpec;
using sim::DeviceTask;
using sim::ThreadCtx;

struct Env {
  Device device{DeviceSpec::TestDevice()};
  dgcf::RpcHost rpc{device};
  DeviceLibc libc{device};
  AppEnv app_env{&device, &rpc, &libc};
};

// Small deterministic app with memory traffic and a parallel region, so
// every counter family in the document is exercised.
DeviceTask<int> MetricsProbeMain(AppEnv& env, TeamCtx& team, int argc,
                                 DeviceArgv argv) {
  std::uint64_t size = 64;
  if (argc > 1) {
    size = std::uint64_t(
        std::strtoll(DeviceLibc::ToString(argv[1]).c_str(), nullptr, 10));
  }
  auto buf = co_await env.libc->Malloc(*team.hw, size * sizeof(std::uint64_t));
  if (buf.host == nullptr) co_return dgcf::kExitNoMem;
  auto p = buf.Typed<std::uint64_t>();
  co_await ompx::ParallelFor(
      team, size, [&](ThreadCtx& ctx, std::uint64_t i) -> DeviceTask<void> {
        co_await ctx.Store(p + i, i);
        co_await ctx.Work(8);
      });
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < size; ++i) {
    sum += co_await team.hw->Load(p + i);
  }
  co_await env.libc->Free(*team.hw, buf.addr);
  co_return sum == size * (size - 1) / 2 ? 0 : 9;
}

DGC_REGISTER_APP(metrics_probe, "metrics export probe", MetricsProbeMain)

struct ProfiledRun {
  dgcf::RunResult run;
  sim::Profiler profiler{sim::Profiler::Options{.sample_interval = 64}};
};

ProfiledRun RunProbe(std::uint32_t instances) {
  Env env;
  EnsembleOptions opt;
  opt.app = "metrics_probe";
  for (std::uint32_t i = 0; i < instances; ++i) {
    opt.instance_args.push_back({StrFormat("%u", 64 + 8 * i)});
  }
  opt.thread_limit = 32;
  ProfiledRun out;
  opt.profiler = &out.profiler;
  auto run = RunEnsemble(env.app_env, opt);
  DGC_CHECK(run.ok());
  out.run = std::move(*run);
  return out;
}

MetricsInfo ProbeInfo(std::uint32_t instances) {
  MetricsInfo info;
  info.app = "metrics_probe";
  info.device = "TEST";
  info.thread_limit = 32;
  info.instances = instances;
  return info;
}

TEST(Metrics, DocumentIsValidJson) {
  ProfiledRun pr = RunProbe(2);
  const std::string json =
      FormatMetricsJson(ProbeInfo(2), pr.run, &pr.profiler);
  const Status valid = JsonValidate(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  EXPECT_NE(json.find("\"schema\": \"dgc-metrics-v1\""), std::string::npos);
}

TEST(Metrics, UnprofiledDocumentDegradesAndStaysValid) {
  ProfiledRun pr = RunProbe(1);
  const std::string json = FormatMetricsJson(ProbeInfo(1), pr.run, nullptr);
  EXPECT_TRUE(JsonValidate(json).ok());
  EXPECT_NE(json.find("\"timeline\": null"), std::string::npos);
}

TEST(Metrics, IdenticalRunsSerializeByteIdentically) {
  // The sweep contract: the sidecar for a point must not depend on when or
  // where the point ran, only on its configuration.
  ProfiledRun a = RunProbe(2);
  ProfiledRun b = RunProbe(2);
  EXPECT_EQ(FormatMetricsJson(ProbeInfo(2), a.run, &a.profiler),
            FormatMetricsJson(ProbeInfo(2), b.run, &b.profiler));
}

TEST(Metrics, HeaderStringsAreEscaped) {
  ProfiledRun pr = RunProbe(1);
  MetricsInfo info = ProbeInfo(1);
  info.app = "weird \"name\"\nwith\\controls";
  const std::string json = FormatMetricsJson(info, pr.run, &pr.profiler);
  const Status valid = JsonValidate(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  EXPECT_NE(json.find("weird \\\"name\\\"\\nwith\\\\controls"),
            std::string::npos);
}

TEST(Metrics, PerInstanceSectionMatchesAttribution) {
  ProfiledRun pr = RunProbe(3);
  ASSERT_EQ(pr.run.instances.size(), 3u);
  ASSERT_EQ(pr.run.instance_stats.size(), 4u);  // unattributed + 3
  const std::string json =
      FormatMetricsJson(ProbeInfo(3), pr.run, &pr.profiler);
  // Instance 1's serialized elapsed_cycles is its attributed counter, not
  // the launch-global one.
  const std::string expect = StrFormat(
      "\"instance\": 1,\n      \"completed\": true,\n      \"exit_code\": 0,\n"
      "      \"reason\": \"returned\",\n      \"attempts\": 1,\n"
      "      \"mem_peak_bytes\": %llu,\n      \"mem_allocations\": %llu,\n"
      "      \"elapsed_cycles\": %llu,",
      (unsigned long long)pr.run.instances[1].mem_peak_bytes,
      (unsigned long long)pr.run.instances[1].mem_allocations,
      (unsigned long long)pr.run.instance_stats[2].stats.elapsed_cycles);
  EXPECT_NE(json.find(expect), std::string::npos) << json.substr(0, 2000);
}

// --- Golden schema test ----------------------------------------------------
//
// Locks the document SHAPE (keys, nesting, field order), not the values:
// numbers become '#', booleans '?', and the per_instance/samples arrays are
// collapsed to their first element. Regenerate after an intentional schema
// change with: DGC_REGEN_GOLDEN=1 ./test_ensemble --gtest_filter='*Golden*'

/// Replaces every number token outside strings with '#' and booleans
/// with '?'. null is kept: it is schema-relevant (degraded sections).
std::string NormalizeScalars(const std::string& json) {
  std::string out;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      out += c;
      if (c == '\\' && i + 1 < json.size()) out += json[++i];
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') {
      in_string = true;
      out += c;
    } else if (c == '-' || (c >= '0' && c <= '9')) {
      while (i + 1 < json.size() &&
             (std::isdigit((unsigned char)json[i + 1]) || json[i + 1] == '.' ||
              json[i + 1] == 'e' || json[i + 1] == 'E' || json[i + 1] == '+' ||
              json[i + 1] == '-')) {
        ++i;
      }
      out += '#';
    } else if (json.compare(i, 4, "true") == 0) {
      out += '?';
      i += 3;
    } else if (json.compare(i, 5, "false") == 0) {
      out += '?';
      i += 4;
    } else {
      out += c;
    }
  }
  return out;
}

/// Collapses the array value of `key` to its first element (the schema of
/// element N is the schema of element 0).
std::string CollapseArray(const std::string& json, const std::string& key) {
  const std::size_t open = json.find("\"" + key + "\": [");
  if (open == std::string::npos) return json;
  const std::size_t start = json.find('[', open);
  int depth = 0;
  std::size_t first_end = std::string::npos, close = std::string::npos;
  for (std::size_t i = start; i < json.size(); ++i) {
    if (json[i] == '[' || json[i] == '{') ++depth;
    if (json[i] == ']' || json[i] == '}') {
      --depth;
      if (depth == 1 && first_end == std::string::npos) first_end = i + 1;
      if (depth == 0) {
        close = i;
        break;
      }
    }
  }
  if (close == std::string::npos || first_end == std::string::npos) {
    return json;
  }
  return json.substr(0, first_end) + "\n  ]" + json.substr(close + 1);
}

TEST(Metrics, GoldenSchemaShape) {
  ProfiledRun pr = RunProbe(2);
  const std::string json =
      FormatMetricsJson(ProbeInfo(2), pr.run, &pr.profiler);
  std::string normalized = NormalizeScalars(json);
  normalized = CollapseArray(normalized, "per_instance");
  normalized = CollapseArray(normalized, "samples");

  const std::string path =
      std::string(DGC_TESTDATA_DIR) + "/metrics_schema.golden";
  if (std::getenv("DGC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(bool(out)) << "cannot write " << path;
    out << normalized;
    GTEST_SKIP() << "golden regenerated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(bool(in)) << "missing golden file " << path
                        << " (regenerate with DGC_REGEN_GOLDEN=1)";
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(normalized, golden.str())
      << "dgc-metrics-v1 schema shape changed; if intentional, bump the "
         "schema version and regenerate with DGC_REGEN_GOLDEN=1";
}

}  // namespace
}  // namespace dgc::ensemble

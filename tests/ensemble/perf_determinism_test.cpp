// Determinism harness for the hot-path optimizations (ctest label: perf).
//
// The simulator's speed work (warp scratch reuse, coalescer fast path,
// masked cache indexing, duplicate wake-up suppression) is gated by a
// byte-identical-stats bar: a fig6a-style sweep at small scale must render
// the same CSV and the same dgc-metrics-v1 sidecars whether the coalescer
// runs its optimized path or the scalar reference, and for any --jobs
// value — the same bar RunSweeps already meets.
#include <gtest/gtest.h>

#include "apps/common.h"
#include "dgcf/libc.h"
#include "dgcf/rpc.h"
#include "ensemble/experiment.h"
#include "ensemble/loader.h"
#include "ensemble/metrics.h"
#include "gpusim/coalesce.h"
#include "gpusim/device.h"
#include "gpusim/profiler.h"
#include "support/str.h"

namespace dgc::ensemble {
namespace {

/// fig6a methodology (thread limit 32, per-instance seeds) shrunk to test
/// scale: the paper's two lookup benchmarks on the test device.
std::vector<ExperimentConfig> SmallFig6aConfigs() {
  std::vector<ExperimentConfig> configs;
  ExperimentConfig xs;
  xs.app = "xsbench";
  xs.args_for_instance = [](std::uint32_t i) {
    return std::vector<std::string>{"-i", "8",  "-g", "64",
                                    "-l", "96", "-s", StrFormat("%u", i + 1)};
  };
  xs.instance_counts = {1, 2, 4};
  xs.thread_limit = 32;
  xs.spec = sim::DeviceSpec::TestDevice();
  xs.profile = true;
  configs.push_back(xs);

  ExperimentConfig rs;
  rs.app = "rsbench";
  rs.args_for_instance = [](std::uint32_t i) {
    return std::vector<std::string>{"-u", "6",  "-w", "4",
                                    "-l", "64", "-s", StrFormat("%u", i + 1)};
  };
  rs.instance_counts = {1, 2, 4};
  rs.thread_limit = 32;
  rs.spec = sim::DeviceSpec::TestDevice();
  rs.profile = true;
  configs.push_back(rs);

  // Multi-warp leg: thread limit 64 puts two warps in every block, so the
  // launch-threads matrix below also proves the earliest-block-event
  // speculation rule (barriers, shared memory, sibling-warp state) renders
  // byte-identical output — the configuration that used to fall back to
  // the serial engine.
  ExperimentConfig amg;
  amg.app = "amgmk";
  amg.args_for_instance = [](std::uint32_t i) {
    return std::vector<std::string>{"-x", "8", "-y", "8", "-z", "8",
                                    "-w", "2", "-s", StrFormat("%u", i + 1)};
  };
  amg.instance_counts = {1, 2, 4};
  amg.thread_limit = 64;
  amg.spec = sim::DeviceSpec::TestDevice();
  amg.profile = true;
  configs.push_back(amg);
  return configs;
}

struct PanelRender {
  std::string csv;
  std::vector<std::string> sidecars;  ///< dgc-metrics-v1 per ran point
};

PanelRender RunPanel(std::uint32_t jobs, bool fast_path,
                     unsigned launch_threads = 1) {
  apps::RegisterAllApps();
  const bool was = sim::SetCoalesceFastPath(fast_path);
  SweepOptions options;
  options.jobs = jobs;
  auto configs = SmallFig6aConfigs();
  for (ExperimentConfig& config : configs) {
    config.launch_threads = launch_threads;
  }
  auto series = RunSweeps(configs, options);
  sim::SetCoalesceFastPath(was);
  EXPECT_TRUE(series.ok()) << series.status().ToString();
  PanelRender render;
  if (!series.ok()) return render;
  render.csv = FormatSpeedupCsv(*series);
  for (const auto& s : *series) {
    for (const auto& p : s.points) {
      EXPECT_TRUE(p.ran) << s.app << " n=" << p.instances << ": " << p.note;
      render.sidecars.push_back(p.metrics_json);
    }
  }
  return render;
}

TEST(PerfDeterminism, FastPathMatchesScalarReferenceEndToEnd) {
  const PanelRender fast = RunPanel(/*jobs=*/1, /*fast_path=*/true);
  const PanelRender scalar = RunPanel(/*jobs=*/1, /*fast_path=*/false);
  EXPECT_EQ(fast.csv, scalar.csv);
  ASSERT_EQ(fast.sidecars.size(), scalar.sidecars.size());
  for (std::size_t i = 0; i < fast.sidecars.size(); ++i) {
    EXPECT_EQ(fast.sidecars[i], scalar.sidecars[i]) << "sidecar " << i;
  }
}

TEST(PerfDeterminism, JobsCountDoesNotChangeOutput) {
  const PanelRender serial = RunPanel(/*jobs=*/1, /*fast_path=*/true);
  const PanelRender parallel = RunPanel(/*jobs=*/4, /*fast_path=*/true);
  EXPECT_EQ(serial.csv, parallel.csv);
  ASSERT_EQ(serial.sidecars.size(), parallel.sidecars.size());
  for (std::size_t i = 0; i < serial.sidecars.size(); ++i) {
    EXPECT_EQ(serial.sidecars[i], parallel.sidecars[i]) << "sidecar " << i;
  }
}

TEST(PerfDeterminism, ScalarPathUnderParallelJobsStillIdentical) {
  // Crossed axes: the toggle is process-wide, so exercise scalar × jobs=4
  // against the fast × jobs=1 reference too.
  const PanelRender reference = RunPanel(/*jobs=*/1, /*fast_path=*/true);
  const PanelRender crossed = RunPanel(/*jobs=*/4, /*fast_path=*/false);
  EXPECT_EQ(reference.csv, crossed.csv);
  ASSERT_EQ(reference.sidecars.size(), crossed.sidecars.size());
  for (std::size_t i = 0; i < reference.sidecars.size(); ++i) {
    EXPECT_EQ(reference.sidecars[i], crossed.sidecars[i]) << "sidecar " << i;
  }
}

TEST(PerfDeterminism, LaunchThreadsMatrixIsByteIdentical) {
  // The intra-launch sharding axis, crossed with sweep-level parallelism
  // and both coalescer implementations: --launch-threads {1,2,8} x
  // --jobs {1,8} x {fast,scalar} must all render the reference CSV and
  // dgc-metrics-v1 sidecars byte for byte. This is the tentpole's
  // acceptance bar — the speculate-then-commit engine may only change
  // wall-clock, never output.
  const PanelRender reference =
      RunPanel(/*jobs=*/1, /*fast_path=*/true, /*launch_threads=*/1);
  ASSERT_FALSE(reference.sidecars.empty());
  for (const unsigned launch_threads : {2u, 8u}) {
    for (const std::uint32_t jobs : {1u, 8u}) {
      for (const bool fast_path : {true, false}) {
        const PanelRender cell = RunPanel(jobs, fast_path, launch_threads);
        const std::string label =
            StrFormat("launch_threads=%u jobs=%u %s", launch_threads, jobs,
                      fast_path ? "fast" : "scalar");
        EXPECT_EQ(reference.csv, cell.csv) << label;
        ASSERT_EQ(reference.sidecars.size(), cell.sidecars.size()) << label;
        for (std::size_t i = 0; i < reference.sidecars.size(); ++i) {
          EXPECT_EQ(reference.sidecars[i], cell.sidecars[i])
              << label << " sidecar " << i;
        }
      }
    }
  }
}

TEST(PerfDeterminism, SingleEnsembleLaunchStatsIdenticalAcrossPaths) {
  // One profiled ensemble launch, compared counter-for-counter via the
  // metrics document (it serializes every LaunchStats field, launch-global
  // and per-instance).
  apps::RegisterAllApps();
  auto run_once = [](bool fast_path) {
    const bool was = sim::SetCoalesceFastPath(fast_path);
    sim::Device device(sim::DeviceSpec::TestDevice());
    dgcf::RpcHost rpc(device);
    dgcf::DeviceLibc libc(device);
    dgcf::AppEnv env{&device, &rpc, &libc};
    sim::Profiler profiler;
    EnsembleOptions opt;
    opt.app = "xsbench";
    for (int i = 0; i < 4; ++i) {
      opt.instance_args.push_back(
          {"-i", "8", "-g", "64", "-l", "96", "-s", StrFormat("%d", i + 1)});
    }
    opt.thread_limit = 32;
    opt.profiler = &profiler;
    auto run = RunEnsemble(env, opt);
    sim::SetCoalesceFastPath(was);
    EXPECT_TRUE(run.ok());
    MetricsInfo info{"xsbench", device.spec().name, 32, 4, 1};
    return FormatMetricsJson(info, *run, &profiler);
  };
  EXPECT_EQ(run_once(true), run_once(false));
}

}  // namespace
}  // namespace dgc::ensemble

// Tests for the evaluation harness (ensemble/experiment.h) — the machinery
// that regenerates the paper's Fig. 6 series.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "apps/common.h"
#include "ensemble/experiment.h"
#include "gpusim/device_spec.h"
#include "support/str.h"

namespace dgc::ensemble {
namespace {

class ExperimentTest : public testing::Test {
 protected:
  static void SetUpTestSuite() { apps::RegisterAllApps(); }

  static ExperimentConfig SmallConfig() {
    ExperimentConfig cfg;
    cfg.app = "rsbench";
    cfg.args_for_instance = [](std::uint32_t i) {
      return std::vector<std::string>{"-u", "6", "-w", "4", "-l", "64",
                                      "-s", StrFormat("%u", i + 1)};
    };
    cfg.instance_counts = {1, 2, 4};
    cfg.thread_limit = 32;
    cfg.spec = sim::DeviceSpec::TestDevice();
    return cfg;
  }
};

TEST_F(ExperimentTest, MeasuresAllPoints) {
  auto series = MeasureSpeedup(SmallConfig());
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  ASSERT_EQ(series->points.size(), 3u);
  EXPECT_DOUBLE_EQ(series->points[0].speedup, 1.0);
  for (const auto& p : series->points) {
    EXPECT_TRUE(p.ran);
    EXPECT_GT(p.cycles, 0u);
    EXPECT_GT(p.speedup, 0.0);
    // Near-sub-linear: instances run DIFFERENT seeds, so TN is bounded by
    // the slowest instance, not instance 0's T1 — allow a small excess.
    EXPECT_LE(p.speedup, double(p.instances) * 1.05);
  }
  EXPECT_EQ(series->app, "rsbench");
  EXPECT_EQ(series->thread_limit, 32u);
}

TEST_F(ExperimentTest, SpeedupFormulaIsT1TimesNOverTN) {
  auto series = MeasureSpeedup(SmallConfig());
  ASSERT_TRUE(series.ok());
  const double t1 = double(series->points[0].cycles);
  for (const auto& p : series->points) {
    EXPECT_NEAR(p.speedup, t1 * p.instances / double(p.cycles), 1e-9);
  }
}

TEST_F(ExperimentTest, DeterministicAcrossInvocations) {
  auto a = MeasureSpeedup(SmallConfig());
  auto b = MeasureSpeedup(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t i = 0; i < a->points.size(); ++i) {
    EXPECT_EQ(a->points[i].cycles, b->points[i].cycles);
  }
}

// The tentpole guarantee: a parallel sweep renders byte-identically to the
// serial one — points land in declaration order, speedups are resolved in
// the final sequential pass.
TEST_F(ExperimentTest, ParallelSweepOutputIsByteIdenticalToSerial) {
  // Two series, including one with a not-ran (OOM) tail, so reassembly,
  // baseline resolution, and skip handling are all exercised.
  ExperimentConfig oom = SmallConfig();
  oom.app = "pagerank";
  oom.args_for_instance = [](std::uint32_t i) {
    return std::vector<std::string>{"-g", "150000", "-d", "12",
                                    "-s", StrFormat("%u", i + 1)};
  };
  oom.instance_counts = {1, 2, 8};
  const std::vector<ExperimentConfig> configs{SmallConfig(), oom};

  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 8;
  auto a = RunSweeps(configs, serial);
  auto b = RunSweeps(configs, parallel);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(FormatSpeedupCsv(*a), FormatSpeedupCsv(*b));
  EXPECT_EQ(FormatSpeedupTable(*a), FormatSpeedupTable(*b));
}

TEST_F(ExperimentTest, ProgressEventsCoverEveryPoint) {
  SweepOptions options;
  options.jobs = 4;
  std::size_t started = 0, finished = 0, max_total = 0;
  bool monotone = true;
  std::size_t last_started = 0, last_finished = 0;
  options.progress = [&](const SweepPointEvent& e) {
    // Serialized by the runner, so plain counters are safe here.
    if (e.kind == SweepPointEvent::Kind::kStarted) ++started;
    else ++finished;
    if (e.points_started < last_started || e.points_finished < last_finished) {
      monotone = false;
    }
    last_started = e.points_started;
    last_finished = e.points_finished;
    max_total = std::max(max_total, e.points_total);
    if (e.kind == SweepPointEvent::Kind::kFinished) {
      if (e.ran) EXPECT_GE(e.wall_seconds, 0.0);
    }
  };
  auto series = MeasureSpeedup(SmallConfig(), options);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(started, 3u);
  EXPECT_EQ(finished, 3u);
  EXPECT_EQ(max_total, 3u);
  EXPECT_TRUE(monotone);
}

// Regression: a series whose 1-instance baseline cannot run must not
// report speedups at all — T1 = 0 would silently render every later point
// as speedup 0.000000 in the figure.
TEST_F(ExperimentTest, BaselineOomMarksWholeSeriesNotRan) {
  ExperimentConfig cfg = SmallConfig();
  cfg.app = "pagerank";
  // One instance alone exceeds the 64 MiB test device.
  cfg.args_for_instance = [](std::uint32_t i) {
    return std::vector<std::string>{"-g", "1500000", "-d", "12",
                                    "-s", StrFormat("%u", i + 1)};
  };
  cfg.instance_counts = {1, 2};
  auto series = MeasureSpeedup(cfg);
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  ASSERT_EQ(series->points.size(), 2u);
  for (const auto& p : series->points) {
    EXPECT_FALSE(p.ran);
    EXPECT_EQ(p.speedup, 0.0);
  }
  EXPECT_NE(series->points[0].note.find("memory"), std::string::npos);
  EXPECT_NE(series->points[1].note.find("baseline"), std::string::npos);
  // And the CSV renders absences, not zero measurements.
  const std::string csv = FormatSpeedupCsv({*series});
  EXPECT_EQ(csv.find("0.000000"), std::string::npos);
}

TEST_F(ExperimentTest, RunSweepsPreservesConfigOrder) {
  ExperimentConfig second = SmallConfig();
  second.thread_limit = 16;
  auto all = RunSweeps({SmallConfig(), second});
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[0].thread_limit, 32u);
  EXPECT_EQ((*all)[1].thread_limit, 16u);
}

TEST_F(ExperimentTest, RunSweepsRejectsEmptyConfigList) {
  EXPECT_FALSE(RunSweeps({}).ok());
}

TEST_F(ExperimentTest, OomConfigurationsAreSkippedNotFatal) {
  ExperimentConfig cfg = SmallConfig();
  cfg.app = "pagerank";
  // 64 MiB test device; each instance ~11 MiB → 8 instances cannot fit.
  cfg.args_for_instance = [](std::uint32_t i) {
    return std::vector<std::string>{"-g", "150000", "-d", "12",
                                    "-s", StrFormat("%u", i + 1)};
  };
  cfg.instance_counts = {1, 2, 8};
  auto series = MeasureSpeedup(cfg);
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  EXPECT_TRUE(series->points[0].ran);
  EXPECT_TRUE(series->points[1].ran);
  EXPECT_FALSE(series->points[2].ran);
  EXPECT_NE(series->points[2].note.find("memory"), std::string::npos);
}

TEST_F(ExperimentTest, RequiresLeadingOne) {
  ExperimentConfig cfg = SmallConfig();
  cfg.instance_counts = {2, 4};
  EXPECT_FALSE(MeasureSpeedup(cfg).ok());
  cfg.instance_counts = {};
  EXPECT_FALSE(MeasureSpeedup(cfg).ok());
}

TEST_F(ExperimentTest, RequiresArgsBuilder) {
  ExperimentConfig cfg = SmallConfig();
  cfg.args_for_instance = nullptr;
  EXPECT_FALSE(MeasureSpeedup(cfg).ok());
}

TEST_F(ExperimentTest, UnknownAppPropagates) {
  ExperimentConfig cfg = SmallConfig();
  cfg.app = "ghost";
  auto series = MeasureSpeedup(cfg);
  ASSERT_FALSE(series.ok());
  EXPECT_EQ(series.status().code(), ErrorCode::kNotFound);
}

TEST_F(ExperimentTest, MaxSpeedupPicksLargestRanPoint) {
  SpeedupSeries s;
  s.points.push_back({.instances = 1, .ran = true, .speedup = 1.0});
  s.points.push_back({.instances = 2, .ran = true, .speedup = 1.8});
  s.points.push_back({.instances = 4, .ran = false, .speedup = 0.0});
  EXPECT_DOUBLE_EQ(s.MaxSpeedup(), 1.8);
}

TEST_F(ExperimentTest, TableFormatsLinearRowAndSkips) {
  SpeedupSeries s;
  s.app = "demo";
  s.points.push_back({.instances = 1, .ran = true, .speedup = 1.0});
  s.points.push_back({.instances = 2, .ran = false, .note = "oom"});
  const std::string table = FormatSpeedupTable({s});
  EXPECT_NE(table.find("Linear"), std::string::npos);
  EXPECT_NE(table.find("demo"), std::string::npos);
  EXPECT_NE(table.find("-"), std::string::npos);  // the skipped point
  EXPECT_EQ(FormatSpeedupTable({}), "(no series)\n");
}

TEST_F(ExperimentTest, MultiDimMappingConfigRuns) {
  ExperimentConfig cfg = SmallConfig();
  cfg.thread_limit = 16;
  cfg.teams_per_block = 2;
  auto series = MeasureSpeedup(cfg);
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  for (const auto& p : series->points) EXPECT_TRUE(p.ran);
}

}  // namespace
}  // namespace dgc::ensemble

namespace dgc::ensemble {
namespace {

TEST(SpeedupCsv, FormatsHeaderAndRows) {
  SpeedupSeries s;
  s.app = "demo";
  s.thread_limit = 32;
  s.points.push_back({.instances = 1, .ran = true, .cycles = 100, .speedup = 1.0});
  s.points.push_back({.instances = 8, .ran = false, .note = "oom"});
  const std::string csv = FormatSpeedupCsv({s});
  EXPECT_NE(csv.find("benchmark,thread_limit,instances,ran,cycles,speedup"),
            std::string::npos);
  EXPECT_NE(csv.find("demo,32,1,1,100,1.000000"), std::string::npos);
  EXPECT_NE(csv.find("demo,32,8,0,,"), std::string::npos);
}

// Regression: a skipped point must never render as cycles=0,speedup=0 —
// plotting scripts ingest those as real measured zeros.
TEST(SpeedupCsv, NotRanRowsHaveEmptyFieldsNotZeros) {
  SpeedupSeries s;
  s.app = "demo";
  s.thread_limit = 1024;
  s.points.push_back({.instances = 8, .ran = false, .note = "oom"});
  const std::string csv = FormatSpeedupCsv({s});
  EXPECT_NE(csv.find("demo,1024,8,0,,\n"), std::string::npos);
  EXPECT_EQ(csv.find(",0,0,"), std::string::npos);
  EXPECT_EQ(csv.find("0.000000"), std::string::npos);
}

TEST(SpeedupCsv, WritesAndReadsBack) {
  SpeedupSeries s;
  s.app = "demo";
  s.thread_limit = 1024;
  s.points.push_back({.instances = 2, .ran = true, .cycles = 7, .speedup = 1.9});
  const std::string path = testing::TempDir() + "/dgc_csv_test.csv";
  ASSERT_TRUE(WriteSpeedupCsv({s}, path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, FormatSpeedupCsv({s}));
  std::remove(path.c_str());
}

TEST(SpeedupCsv, BadPathFails) {
  EXPECT_FALSE(WriteSpeedupCsv({}, "/nonexistent/dir/x.csv").ok());
}

}  // namespace
}  // namespace dgc::ensemble

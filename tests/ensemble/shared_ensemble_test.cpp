// Ensemble-level tests of the shared read-only data segment facility:
// capacity gains on replica ensembles, the §3.3 memcheck contract (reads
// benign, any write a cross-instance race), sharing staying inert for
// distinct workloads, and the exported per-instance memory accounting.
#include <gtest/gtest.h>

#include "apps/common.h"
#include "dgcf/libc.h"
#include "dgcf/rpc.h"
#include "ensemble/loader.h"
#include "gpusim/ctx.h"
#include "gpusim/device.h"
#include "gpusim/faults.h"
#include "gpusim/memcheck.h"
#include "ompx/team.h"
#include "support/str.h"
#include "support/units.h"

namespace dgc::ensemble {
namespace {

using dgcf::AppEnv;
using sim::Device;
using sim::DeviceSpec;
using sim::DeviceTask;

/// A small device whose capacity a handful of duplicated Page-Rank replicas
/// exceeds while the shared layout fits comfortably.
DeviceSpec TightDevice() {
  DeviceSpec spec = DeviceSpec::TestDevice();
  spec.global_memory_bytes = 512 * kKiB;
  return spec;
}

std::vector<std::string> ReplicaArgs() {
  return {"-g", "2000", "-d", "8", "-k", "2"};
}

StatusOr<dgcf::RunResult> RunReplicas(const DeviceSpec& spec,
                                      std::uint32_t instances, bool share,
                                      sim::Memcheck* memcheck = nullptr,
                                      bool distinct_seeds = false,
                                      sim::FaultPlan* faults = nullptr,
                                      std::uint32_t max_attempts = 1) {
  apps::RegisterAllApps();
  Device device(spec);
  dgcf::RpcHost rpc(device);
  dgcf::DeviceLibc libc(device);
  AppEnv env{&device, &rpc, &libc};

  EnsembleOptions opt;
  opt.app = "pagerank";
  for (std::uint32_t i = 0; i < instances; ++i) {
    std::vector<std::string> args = ReplicaArgs();
    if (distinct_seeds) {
      args.push_back("-s");
      args.push_back(StrFormat("%u", i + 1));
    }
    opt.instance_args.push_back(std::move(args));
  }
  opt.thread_limit = 32;
  opt.share_data = share;
  opt.memcheck = memcheck;
  opt.faults = faults;
  opt.max_attempts = max_attempts;
  return RunEnsemble(env, opt);
}

// The tentpole claim in miniature: replicas that OOM with duplicated
// read-only inputs all fit — and still verify — once the inputs are shared.
TEST(SharedEnsemble, SharedLayoutFitsWhereDuplicatedOoms) {
  auto duplicated = RunReplicas(TightDevice(), 8, /*share=*/false);
  ASSERT_TRUE(duplicated.ok()) << duplicated.status().ToString();
  bool oom = false;
  for (const auto& inst : duplicated->instances) {
    if (inst.completed && inst.exit_code == dgcf::kExitNoMem) oom = true;
  }
  EXPECT_TRUE(oom) << "duplicated layout unexpectedly fit — shrink the device";

  auto shared = RunReplicas(TightDevice(), 8, /*share=*/true);
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();
  EXPECT_TRUE(shared->all_ok());
  for (const auto& inst : shared->instances) {
    EXPECT_TRUE(inst.completed);
    EXPECT_EQ(inst.exit_code, 0);  // every replica verified its result
  }
  EXPECT_GT(shared->device_mem.shared_attaches, 0u);
  EXPECT_GT(shared->device_mem.shared_bytes_saved, 0u);
  EXPECT_LT(shared->device_mem.peak_bytes, duplicated->device_mem.capacity);
}

// Sharing is content-keyed: instances on distinct inputs never coincide,
// so --share-data=on degrades to the duplicated layout for real ensembles.
TEST(SharedEnsemble, DistinctWorkloadsDoNotShare) {
  auto run = RunReplicas(DeviceSpec::TestDevice(), 4, /*share=*/true,
                         nullptr, /*distinct_seeds=*/true);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->all_ok());
  EXPECT_EQ(run->device_mem.shared_attaches, 0u);
  EXPECT_EQ(run->device_mem.shared_bytes_saved, 0u);
}

// With sharing off nothing reaches the shared facility at all — the legacy
// allocation sequence is preserved by construction.
TEST(SharedEnsemble, OffModeNeverTouchesSharedFacility) {
  auto run = RunReplicas(DeviceSpec::TestDevice(), 4, /*share=*/false);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->all_ok());
  EXPECT_EQ(run->device_mem.shared_materialized, 0u);
  EXPECT_EQ(run->device_mem.shared_attaches, 0u);
}

TEST(SharedEnsemble, SharedRunsAreDeterministic) {
  auto a = RunReplicas(DeviceSpec::TestDevice(), 4, /*share=*/true);
  auto b = RunReplicas(DeviceSpec::TestDevice(), 4, /*share=*/true);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->kernel_cycles, b->kernel_cycles);
  EXPECT_EQ(a->device_mem.peak_bytes, b->device_mem.peak_bytes);
}

// Per-instance accounting: every replica allocated something; the
// materializer (instance 0) carries the shared segments' physical bytes,
// so its peak exceeds a pure attacher's.
TEST(SharedEnsemble, PerInstanceMemoryStatsAreExported) {
  auto run = RunReplicas(DeviceSpec::TestDevice(), 4, /*share=*/true);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->instances.size(), 4u);
  for (const auto& inst : run->instances) {
    EXPECT_GT(inst.mem_peak_bytes, 0u);
    EXPECT_GT(inst.mem_allocations, 0u);
  }
  EXPECT_GT(run->instances[0].mem_peak_bytes,
            run->instances[1].mem_peak_bytes);
  EXPECT_GT(run->device_mem.peak_bytes, 0u);
  EXPECT_EQ(run->device_mem.capacity,
            DeviceSpec::TestDevice().global_memory_bytes);
}

// A correct shared-mode app under the sanitizer: reads from the shared
// segments come from every instance and must all be benign.
TEST(SharedEnsemble, CorrectSharedAppRunsMemcheckClean) {
  sim::Memcheck memcheck;
  auto run = RunReplicas(DeviceSpec::TestDevice(), 4, /*share=*/true,
                         &memcheck);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->all_ok());
  EXPECT_TRUE(run->memcheck.clean()) << run->memcheck.ToString();
}

// Checking is observation: memcheck must not change shared-mode timing.
TEST(SharedEnsemble, MemcheckDoesNotPerturbSharedTiming) {
  auto plain = RunReplicas(DeviceSpec::TestDevice(), 4, /*share=*/true);
  sim::Memcheck memcheck;
  auto checked = RunReplicas(DeviceSpec::TestDevice(), 4, /*share=*/true,
                             &memcheck);
  ASSERT_TRUE(plain.ok() && checked.ok());
  EXPECT_EQ(plain->kernel_cycles, checked->kernel_cycles);
}

// The §3.3 contract's teeth: a device-code write into a shared read-only
// segment — from ANY instance, even the materializer — is reported as a
// cross-instance race against the kReadOnlyShared owner.
TEST(SharedEnsemble, WriteToSharedSegmentIsReportedAsRace) {
  dgcf::AppRegistry::Instance().Register(
      {"shared_writer", "test app: writes its shared read-only segment",
       [](AppEnv& env, ompx::TeamCtx& team, int, dgcf::DeviceArgv)
           -> DeviceTask<int> {
         sim::ThreadCtx& ctx = *team.hw;
         const std::vector<std::uint64_t> sizes{256};
         auto group = co_await env.libc->AcquireSharedGroup(
             ctx, /*content_key=*/0x5eed, sizes, "ro_seg");
         if (!group.ok) co_return dgcf::kExitNoMem;
         auto ptr = group.buffers[0].Typed<std::uint64_t>();
         if (group.first) {
           // Legitimate initialization: an untimed host-side fill.
           for (int i = 0; i < 32; ++i) ptr.host[i] = std::uint64_t(i);
         }
         // The bug under test: a timed device write to shared storage.
         co_await ctx.Store(ptr, std::uint64_t{42});
         co_await env.libc->Free(ctx, group.buffers[0].addr);
         co_return 0;
       }});

  Device device(DeviceSpec::TestDevice());
  dgcf::RpcHost rpc(device);
  dgcf::DeviceLibc libc(device);
  AppEnv env{&device, &rpc, &libc};
  sim::Memcheck memcheck;

  EnsembleOptions opt;
  opt.app = "shared_writer";
  opt.instance_args = {{}, {}};
  opt.thread_limit = 32;
  opt.share_data = true;
  opt.memcheck = &memcheck;

  auto run = RunEnsemble(env, opt);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GE(run->memcheck.cross_instance_count, 2u)  // both instances wrote
      << run->memcheck.ToString();
  ASSERT_FALSE(run->memcheck.findings.empty());
  const sim::MemcheckFinding& f = run->memcheck.findings[0];
  EXPECT_EQ(f.kind, sim::MemcheckErrorKind::kCrossInstance);
  EXPECT_EQ(f.region_owner, sim::kReadOnlyShared);
  EXPECT_EQ(f.region_label, "ro_seg[0]");
}

// Retry × shared data: a replica killed mid-wave by an injected trap leaks
// its attach reference, which pins the content-keyed segments past the end
// of the first wave; the retry wave must re-attach to those live segments
// rather than materialize duplicate physical copies.
TEST(SharedEnsemble, RetryWaveReattachesWithoutRematerializing) {
  auto baseline = RunReplicas(DeviceSpec::TestDevice(), 6, /*share=*/true);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_TRUE(baseline->all_ok());
  const std::uint64_t segments = baseline->device_mem.shared_materialized;
  ASSERT_GT(segments, 0u);

  // Block 2 runs instance 2; cycle 50000 is mid-run, well after the
  // allocation/attach phase of a ~214k-cycle replica. The trap fires once,
  // so the retry wave recovers the instance.
  auto plan = *sim::FaultPlan::Parse("trap@b2.w0.c50000");
  auto run = RunReplicas(DeviceSpec::TestDevice(), 6, /*share=*/true,
                         /*memcheck=*/nullptr, /*distinct_seeds=*/false,
                         &plan, /*max_attempts=*/2);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->waves, 2u);
  EXPECT_TRUE(run->all_ok());
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(run->instances[i].completed) << i;
    EXPECT_EQ(run->instances[i].exit_code, 0) << i;
    EXPECT_EQ(run->instances[i].attempts, i == 2 ? 2u : 1u) << i;
  }

  // The tentpole claim: the retry never re-materialized — every physical
  // copy in the faulted run already existed in the clean run's count, and
  // the extra wave shows up purely as additional attaches.
  EXPECT_EQ(run->device_mem.shared_materialized, segments);
  EXPECT_GT(run->device_mem.shared_attaches,
            baseline->device_mem.shared_attaches);
  EXPECT_GT(run->device_mem.shared_bytes_saved,
            baseline->device_mem.shared_bytes_saved);

  // Refcount honesty: the trapped first attempt never released its attach,
  // so exactly the leaked references keep the segments live at the end of
  // the run; the clean baseline releases everything.
  EXPECT_EQ(baseline->device_mem.shared_live, 0u);
  EXPECT_EQ(run->device_mem.shared_live, segments);
}

// The same dance under the sanitizer: reads from retried instances against
// wave-1-materialized segments are benign. The trapped first attempt shows
// up as leaks — and ONLY leaks, attributed to the trapped instance and the
// segments its attach pinned; re-attaching must produce no out-of-bounds,
// lifetime, or cross-instance findings.
TEST(SharedEnsemble, RetryWithSharedDataHasNoRaceOrLifetimeFindings) {
  sim::Memcheck memcheck;
  auto plan = *sim::FaultPlan::Parse("trap@b2.w0.c50000");
  auto run = RunReplicas(DeviceSpec::TestDevice(), 6, /*share=*/true,
                         &memcheck, /*distinct_seeds=*/false, &plan,
                         /*max_attempts=*/2);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->waves, 2u);
  EXPECT_TRUE(run->all_ok());
  ASSERT_FALSE(run->memcheck.findings.empty());  // the leak is real
  for (const auto& finding : run->memcheck.findings) {
    EXPECT_EQ(finding.kind, sim::MemcheckErrorKind::kLeak)
        << run->memcheck.ToString();
  }
}

// Determinism survives the fault + retry path: two identical faulted runs
// agree on timing, attach counts, and peak footprint.
TEST(SharedEnsemble, RetryWithSharedDataIsDeterministic) {
  auto plan_a = *sim::FaultPlan::Parse("trap@b2.w0.c50000");
  auto a = RunReplicas(DeviceSpec::TestDevice(), 6, /*share=*/true, nullptr,
                       false, &plan_a, /*max_attempts=*/2);
  auto plan_b = *sim::FaultPlan::Parse("trap@b2.w0.c50000");
  auto b = RunReplicas(DeviceSpec::TestDevice(), 6, /*share=*/true, nullptr,
                       false, &plan_b, /*max_attempts=*/2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->kernel_cycles, b->kernel_cycles);
  EXPECT_EQ(a->device_mem.shared_attaches, b->device_mem.shared_attaches);
  EXPECT_EQ(a->device_mem.peak_bytes, b->device_mem.peak_bytes);
}

}  // namespace
}  // namespace dgc::ensemble

// Ensemble-level memcheck integration: the §3.3 cross-instance race
// detector over shared vs isolated globals, and clean reports on real
// ensemble application runs.
#include <gtest/gtest.h>

#include "apps/common.h"
#include "dgcf/libc.h"
#include "dgcf/rpc.h"
#include "ensemble/isolation.h"
#include "ensemble/loader.h"
#include "gpusim/memcheck.h"
#include "ompx/league.h"
#include "support/str.h"

namespace dgc::ensemble {
namespace {

using ompx::TeamCtx;
using sim::Device;
using sim::DeviceSpec;
using sim::DeviceTask;

// Four teams, one instance each, every team writing "its" replica of a
// single declared global — the ablation_isolation bench in miniature.
sim::MemcheckReport RunGlobalsWrites(GlobalsMode mode) {
  Device device(DeviceSpec::TestDevice());
  sim::Memcheck memcheck;
  memcheck.Attach(device.memory());

  const std::uint32_t teams = 4;
  IsolatedGlobals globals;
  EXPECT_TRUE(globals.Declare("g_state", sizeof(std::uint64_t)).ok());
  EXPECT_TRUE(globals.Materialize(device, teams, mode, &memcheck).ok());
  for (std::uint32_t t = 0; t < teams; ++t) {
    memcheck.SetTeamInstance(t, std::int32_t(t));
  }

  ompx::TeamsConfig cfg{.num_teams = teams, .thread_limit = 32};
  cfg.name = "globals-probe";
  cfg.memcheck = &memcheck;
  auto result = ompx::LaunchTeams(
      device, cfg, [&](TeamCtx& team) -> DeviceTask<void> {
        auto slot = globals.Slot<std::uint64_t>(team.team_id, "g_state");
        EXPECT_TRUE(slot.ok());
        co_await team.hw->Store(*slot, std::uint64_t(team.team_id) + 1);
      });
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  globals.Release(device);
  return memcheck.report();
}

TEST(EnsembleMemcheck, SharedGlobalsReportCrossInstanceRaces) {
  const sim::MemcheckReport report = RunGlobalsWrites(GlobalsMode::kShared);
  // Four instances write the single shared copy: the first claims it, the
  // other three race.
  EXPECT_EQ(report.cross_instance_count, 3u) << report.ToString();
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings[0].kind, sim::MemcheckErrorKind::kCrossInstance);
  EXPECT_EQ(report.findings[0].region_label, "globals (shared)");
}

TEST(EnsembleMemcheck, IsolatedGlobalsAreClean) {
  const sim::MemcheckReport report = RunGlobalsWrites(GlobalsMode::kIsolated);
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(EnsembleMemcheck, WriteToForeignReplicaIsFlagged) {
  Device device(DeviceSpec::TestDevice());
  sim::Memcheck memcheck;
  memcheck.Attach(device.memory());

  IsolatedGlobals globals;
  ASSERT_TRUE(globals.Declare("g", sizeof(std::uint64_t)).ok());
  ASSERT_TRUE(
      globals.Materialize(device, 2, GlobalsMode::kIsolated, &memcheck).ok());
  memcheck.SetTeamInstance(0, 0);

  ompx::TeamsConfig cfg{.num_teams = 1, .thread_limit = 32};
  cfg.memcheck = &memcheck;
  auto result = ompx::LaunchTeams(
      device, cfg, [&](TeamCtx& team) -> DeviceTask<void> {
        // Instance 0 writes instance 1's replica — exactly the bug class
        // §3.3's isolation is meant to rule out.
        auto foreign = globals.Slot<std::uint64_t>(1, "g");
        EXPECT_TRUE(foreign.ok());
        co_await team.hw->Store(*foreign, std::uint64_t{7});
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  globals.Release(device);

  EXPECT_EQ(memcheck.report().cross_instance_count, 1u)
      << memcheck.report().ToString();
  EXPECT_EQ(memcheck.report().findings[0].region_owner, 1);
  EXPECT_EQ(memcheck.report().findings[0].instance, 0);
}

// A real application ensemble under the sanitizer: a correct app must
// produce a completely clean report (no leaks: instances free their heap).
TEST(EnsembleMemcheck, RealAppEnsembleRunsClean) {
  apps::RegisterAllApps();
  Device device(DeviceSpec::TestDevice());
  dgcf::RpcHost rpc(device);
  dgcf::DeviceLibc libc(device);
  dgcf::AppEnv env{&device, &rpc, &libc};
  sim::Memcheck memcheck;
  memcheck.Attach(device.memory());

  EnsembleOptions opt;
  opt.app = "rsbench";
  for (std::uint32_t i = 0; i < 4; ++i) {
    opt.instance_args.push_back(
        {"-u", "6", "-w", "4", "-l", "64", "-s", StrFormat("%u", i + 1)});
  }
  opt.thread_limit = 32;
  opt.memcheck = &memcheck;

  auto run = RunEnsemble(env, opt);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->all_ok());
  EXPECT_TRUE(run->memcheck.clean()) << run->memcheck.ToString();
  EXPECT_EQ(run->stats.memcheck_findings, 0u);
  EXPECT_EQ(libc.failed_frees(), 0u);
}

// Identical runs with and without the sanitizer must cost identical cycles:
// checking is observation, not simulation work.
TEST(EnsembleMemcheck, SanitizerDoesNotPerturbTiming) {
  apps::RegisterAllApps();
  auto run_once = [](bool check) -> std::uint64_t {
    Device device(DeviceSpec::TestDevice());
    dgcf::RpcHost rpc(device);
    dgcf::DeviceLibc libc(device);
    dgcf::AppEnv env{&device, &rpc, &libc};
    sim::Memcheck memcheck;
    if (check) memcheck.Attach(device.memory());

    EnsembleOptions opt;
    opt.app = "rsbench";
    for (std::uint32_t i = 0; i < 3; ++i) {
      opt.instance_args.push_back(
          {"-u", "4", "-w", "3", "-l", "32", "-s", StrFormat("%u", i + 1)});
    }
    opt.thread_limit = 32;
    if (check) opt.memcheck = &memcheck;
    auto run = RunEnsemble(env, opt);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return run->kernel_cycles;
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

}  // namespace
}  // namespace dgc::ensemble

// Fault-tolerant ensemble execution, end to end: a trapping or hanging
// instance is contained to its own InstanceResult while siblings run to
// completion; retry-relaunch recovers recoverable instances on a smaller
// wave; and fault-injected sweeps stay byte-identical for any --jobs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "dgcf/libc.h"
#include "dgcf/loader.h"
#include "dgcf/rpc.h"
#include "ensemble/experiment.h"
#include "ensemble/loader.h"
#include "gpusim/device.h"
#include "ompx/team.h"
#include "support/str.h"

namespace dgc::ensemble {
namespace {

using dgcf::AppEnv;
using dgcf::DeviceArgv;
using dgcf::DeviceLibc;
using dgcf::TerminationReason;
using ompx::TeamCtx;
using sim::Device;
using sim::DeviceSpec;
using sim::DeviceTask;
using sim::FaultPlan;
using sim::ThreadCtx;

struct Env {
  Device device{DeviceSpec::TestDevice()};
  dgcf::RpcHost rpc{device};
  DeviceLibc libc{device};
  AppEnv app_env{&device, &rpc, &libc};
};

// A fault-probe app, one failure mode per flag:
//   -x <code>  return <code> (a *completed* execution, never retried)
//   -h         hang: spin forever (killed by a watchdog)
//   -o         allocate via the unchecked-malloc path (traps on OOM)
//   -a         call abort()
//   -p         printf via RPC; returns 7 when the RPC call fails
//   -w <n>     n units of well-behaved compute (the default citizen)
DeviceTask<int> FaultProbeMain(AppEnv& env, TeamCtx& team, int argc,
                               DeviceArgv argv) {
  ThreadCtx& ctx = *team.hw;
  for (int i = 1; i < argc; ++i) {
    if (DeviceLibc::StrCmp(argv[i], "-x") == 0 && i + 1 < argc) {
      co_return int(std::strtol(DeviceLibc::ToString(argv[++i]).c_str(),
                                nullptr, 10));
    } else if (DeviceLibc::StrCmp(argv[i], "-h") == 0) {
      while (true) co_await ctx.Work(100);
    } else if (DeviceLibc::StrCmp(argv[i], "-o") == 0) {
      auto buf = co_await env.libc->MallocOrTrap(ctx, 256);
      co_await env.libc->Free(ctx, buf.addr);
    } else if (DeviceLibc::StrCmp(argv[i], "-a") == 0) {
      DeviceLibc::Abort();
    } else if (DeviceLibc::StrCmp(argv[i], "-p") == 0) {
      const int n = co_await env.rpc->Print(ctx, "probe\n");
      if (n < 0) co_return 7;
    } else if (DeviceLibc::StrCmp(argv[i], "-w") == 0 && i + 1 < argc) {
      const long reps =
          std::strtol(DeviceLibc::ToString(argv[++i]).c_str(), nullptr, 10);
      for (long r = 0; r < reps; ++r) co_await ctx.Work(50);
    } else {
      co_return dgcf::kExitUsage;
    }
  }
  co_return 0;
}

DGC_REGISTER_APP(faultprobe, "fault-injection probe", FaultProbeMain)

// The acceptance scenario: 8 instances, instance 2 hits an injected OOM
// trap, instance 5 hangs until the per-instance watchdog kills it, the
// other six run to completion.
EnsembleOptions MixedOptions() {
  EnsembleOptions opt;
  opt.app = "faultprobe";
  for (std::uint32_t i = 0; i < 8; ++i) {
    if (i == 2) opt.instance_args.push_back({"-o"});
    else if (i == 5) opt.instance_args.push_back({"-h"});
    else opt.instance_args.push_back({"-w", "20"});
  }
  opt.thread_limit = 8;
  opt.instance_watchdog_cycles = 100000;
  return opt;
}

TEST(FaultEnsemble, MixedOutcomesAreContainedPerInstance) {
  Env env;
  auto plan = *FaultPlan::Parse("malloc-fail@1");
  env.libc.set_fault_plan(&plan);
  auto opt = MixedOptions();
  opt.faults = &plan;
  auto run = RunEnsemble(env.app_env, opt);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->instances.size(), 8u);
  EXPECT_EQ(run->waves, 1u);

  // The injected-OOM instance.
  EXPECT_FALSE(run->instances[2].completed);
  EXPECT_EQ(run->instances[2].reason, TerminationReason::kTrapOOM);
  EXPECT_NE(run->instances[2].detail.find("malloc"), std::string::npos);
  EXPECT_EQ(run->instances[2].attempts, 1u);

  // The hung instance, retired by the per-instance watchdog.
  EXPECT_FALSE(run->instances[5].completed);
  EXPECT_EQ(run->instances[5].reason, TerminationReason::kWatchdog);
  EXPECT_EQ(run->instances[5].attempts, 1u);

  // Six siblings exit 0, untouched.
  std::set<TerminationReason> failure_reasons;
  for (std::uint32_t i = 0; i < 8; ++i) {
    if (i == 2 || i == 5) {
      failure_reasons.insert(run->instances[i].reason);
      continue;
    }
    EXPECT_TRUE(run->instances[i].completed) << i;
    EXPECT_EQ(run->instances[i].exit_code, 0) << i;
    EXPECT_EQ(run->instances[i].reason, TerminationReason::kReturned) << i;
    EXPECT_GT(run->instances[i].cycles, 0u) << i;
  }
  EXPECT_EQ(failure_reasons.size(), 2u);  // two distinct reasons
  EXPECT_FALSE(run->all_ok());

  // Failures name their owning instance.
  bool oom_attributed = false, watchdog_attributed = false;
  for (const std::string& f : run->failures) {
    if (f.find("instance=2") != std::string::npos) oom_attributed = true;
    if (f.find("instance=5") != std::string::npos) watchdog_attributed = true;
  }
  EXPECT_TRUE(oom_attributed);
  EXPECT_TRUE(watchdog_attributed);
  EXPECT_GE(run->stats.watchdog_traps, 1u);
}

TEST(FaultEnsemble, RetryRecoversTheOomInstanceOnASmallerWave) {
  Env env;
  auto plan = *FaultPlan::Parse("malloc-fail@1");
  env.libc.set_fault_plan(&plan);
  auto opt = MixedOptions();
  opt.faults = &plan;
  opt.max_attempts = 2;
  opt.retry_shrink = 2;
  auto run = RunEnsemble(env.app_env, opt);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->waves, 2u);

  // The injected allocation failure was consumed in wave 1, so the retry's
  // malloc succeeds: the instance recovers.
  EXPECT_TRUE(run->instances[2].completed);
  EXPECT_EQ(run->instances[2].exit_code, 0);
  EXPECT_EQ(run->instances[2].reason, TerminationReason::kReturned);
  EXPECT_EQ(run->instances[2].attempts, 2u);

  // The hang is deterministic: the watchdog kills it again.
  EXPECT_FALSE(run->instances[5].completed);
  EXPECT_EQ(run->instances[5].reason, TerminationReason::kWatchdog);
  EXPECT_EQ(run->instances[5].attempts, 2u);
  EXPECT_FALSE(run->all_ok());
}

TEST(FaultEnsemble, RetryWaveLeavesFirstWaveSiblingsUntouched) {
  // The first wave must be identical whether or not a retry follows it:
  // run the mixed ensemble with and without retry and compare the
  // successful siblings' results cycle for cycle.
  auto run_with = [](std::uint32_t attempts) {
    Env env;
    auto plan = *FaultPlan::Parse("malloc-fail@1");
    env.libc.set_fault_plan(&plan);
    auto opt = MixedOptions();
    opt.faults = &plan;
    opt.max_attempts = attempts;
    auto run = RunEnsemble(env.app_env, opt);
    EXPECT_TRUE(run.ok());
    return *run;
  };
  const dgcf::RunResult base = run_with(1);
  const dgcf::RunResult retried = run_with(2);
  for (std::uint32_t i = 0; i < 8; ++i) {
    if (i == 2 || i == 5) continue;
    EXPECT_EQ(base.instances[i].exit_code, retried.instances[i].exit_code) << i;
    EXPECT_EQ(base.instances[i].completed, retried.instances[i].completed) << i;
    EXPECT_EQ(base.instances[i].cycles, retried.instances[i].cycles) << i;
    EXPECT_EQ(base.instances[i].attempts, retried.instances[i].attempts) << i;
  }
}

TEST(FaultEnsemble, NonzeroExitIsCompletedAndNeverRetried) {
  Env env;
  EnsembleOptions opt;
  opt.app = "faultprobe";
  opt.instance_args = {{"-x", "3"}, {"-w", "5"}};
  opt.thread_limit = 4;
  opt.max_attempts = 3;
  auto run = RunEnsemble(env.app_env, opt);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->waves, 1u);  // nothing retryable: one wave only
  EXPECT_TRUE(run->instances[0].completed);
  EXPECT_EQ(run->instances[0].exit_code, 3);
  EXPECT_EQ(run->instances[0].attempts, 1u);
  EXPECT_FALSE(run->all_ok());  // nonzero exit still fails the run
}

TEST(FaultEnsemble, AbortTrapsAreContainedAndAttributed) {
  Env env;
  EnsembleOptions opt;
  opt.app = "faultprobe";
  opt.instance_args = {{"-w", "5"}, {"-a"}, {"-w", "5"}};
  opt.thread_limit = 4;
  auto run = RunEnsemble(env.app_env, opt);
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->instances[1].completed);
  EXPECT_EQ(run->instances[1].reason, TerminationReason::kTrapAbort);
  EXPECT_TRUE(run->instances[0].completed);
  EXPECT_TRUE(run->instances[2].completed);
}

TEST(FaultEnsemble, RpcFailureIsAnErrnoReturnNotACrash) {
  Env env;
  auto plan = *FaultPlan::Parse("rpc-fail@1");
  env.rpc.set_fault_plan(&plan);
  EnsembleOptions opt;
  opt.app = "faultprobe";
  opt.instance_args = {{"-p"}};
  opt.thread_limit = 4;
  opt.faults = &plan;
  auto run = RunEnsemble(env.app_env, opt);
  ASSERT_TRUE(run.ok());
  // The app sees -1 from the failed printf and turns it into exit 7 — a
  // completed execution.
  EXPECT_TRUE(run->instances[0].completed);
  EXPECT_EQ(run->instances[0].exit_code, 7);
  EXPECT_EQ(env.rpc.calls_failed(), 1u);
  EXPECT_TRUE(env.rpc.stdout_text().empty());  // the print never landed
}

TEST(FaultEnsemble, SameSeedSameResultsAcrossRuns) {
  auto run_once = [] {
    Env env;
    auto plan = *FaultPlan::Parse("seed@9;malloc-fail@1");
    env.libc.set_fault_plan(&plan);
    auto opt = MixedOptions();
    opt.faults = &plan;
    opt.max_attempts = 2;
    auto run = RunEnsemble(env.app_env, opt);
    EXPECT_TRUE(run.ok());
    return *run;
  };
  const dgcf::RunResult a = run_once();
  const dgcf::RunResult b = run_once();
  EXPECT_EQ(a.kernel_cycles, b.kernel_cycles);
  EXPECT_EQ(a.waves, b.waves);
  ASSERT_EQ(a.instances.size(), b.instances.size());
  for (std::size_t i = 0; i < a.instances.size(); ++i) {
    EXPECT_EQ(a.instances[i].exit_code, b.instances[i].exit_code) << i;
    EXPECT_EQ(a.instances[i].cycles, b.instances[i].cycles) << i;
    EXPECT_EQ(int(a.instances[i].reason), int(b.instances[i].reason)) << i;
    EXPECT_EQ(a.instances[i].attempts, b.instances[i].attempts) << i;
  }
  EXPECT_EQ(a.failures, b.failures);
}

// --- Single-instance loader containment --------------------------------------

TEST(FaultSingle, AbortIsContainedWithAReason) {
  Env env;
  dgcf::SingleRunOptions opt;
  opt.app = "faultprobe";
  opt.args = {"-a"};
  opt.thread_limit = 4;
  auto run = dgcf::RunSingleInstance(env.app_env, opt);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_FALSE(run->instances[0].completed);
  EXPECT_EQ(run->instances[0].reason, TerminationReason::kTrapAbort);
  EXPECT_NE(run->instances[0].detail.find("abort"), std::string::npos);
  EXPECT_FALSE(run->all_ok());
  ASSERT_FALSE(run->failures.empty());
  EXPECT_NE(run->failures[0].find("instance=0"), std::string::npos);
}

TEST(FaultSingle, WatchdogKillsAHungSingleInstance) {
  Env env;
  dgcf::SingleRunOptions opt;
  opt.app = "faultprobe";
  opt.args = {"-h"};
  opt.thread_limit = 4;
  opt.watchdog_cycles = 100000;
  auto run = dgcf::RunSingleInstance(env.app_env, opt);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_FALSE(run->instances[0].completed);
  EXPECT_EQ(run->instances[0].reason, TerminationReason::kWatchdog);
}

TEST(FaultSingle, AllOkIsFalseForAnEmptyRun) {
  // "No instance ran" must never read as success (documented contract).
  dgcf::RunResult empty;
  EXPECT_FALSE(empty.all_ok());
}

// --- Sweep-level behaviour ---------------------------------------------------

ExperimentConfig FaultSweepConfig() {
  ExperimentConfig cfg;
  cfg.app = "faultprobe";
  // Instance 3 allocates through the unchecked path; everyone else is pure
  // compute. With malloc-fail@1, the first device malloc of each point
  // fails — which is instance 3's, the only one that allocates. Points
  // with fewer than 4 instances never allocate and run clean.
  cfg.args_for_instance = [](std::uint32_t i) -> std::vector<std::string> {
    if (i == 3) return {"-o"};
    return {"-w", StrFormat("%u", 10 + i)};
  };
  cfg.instance_counts = {1, 2, 4, 8};
  cfg.thread_limit = 8;
  cfg.spec = DeviceSpec::TestDevice();
  cfg.inject_spec = "malloc-fail@1";
  return cfg;
}

TEST(FaultSweep, FaultingPointIsSkippedNotFatal) {
  auto series = MeasureSpeedup(FaultSweepConfig());
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  ASSERT_EQ(series->points.size(), 4u);
  EXPECT_TRUE(series->points[0].ran);   // n=1: no malloc, clean
  EXPECT_TRUE(series->points[1].ran);   // n=2: clean
  EXPECT_FALSE(series->points[2].ran);  // n=4: instance 3 traps
  EXPECT_FALSE(series->points[3].ran);  // n=8: instance 3 traps
  EXPECT_NE(series->points[2].note.find("failed"), std::string::npos);
  EXPECT_NE(series->points[2].note.find("instance=3"), std::string::npos);
}

TEST(FaultSweep, InjectedSweepIsByteIdenticalForAnyJobCount) {
  // Two series × four points, every point parsing its own FaultPlan: the
  // rendered CSV must not depend on how many worker threads ran the points.
  auto run_with_jobs = [](std::uint32_t jobs) {
    ExperimentConfig a = FaultSweepConfig();
    ExperimentConfig b = FaultSweepConfig();
    b.thread_limit = 4;
    SweepOptions options;
    options.jobs = jobs;
    auto series = RunSweeps({a, b}, options);
    EXPECT_TRUE(series.ok());
    return FormatSpeedupCsv(*series);
  };
  const std::string serial = run_with_jobs(1);
  const std::string parallel = run_with_jobs(8);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find(",0,,"), std::string::npos);  // skipped points present
}

TEST(FaultSweep, LaunchThreadCountNeverChangesInjectedOutcomes) {
  // Fault plans consume injection state in commit order. Launches with a
  // plan installed still run the threaded engine — only turns with a
  // pending trap site for their (block, warp) serialize (trap-site-aware
  // Warp::CanSpeculate) — so the plan's consumption order is exactly the
  // serial one. The contract this pins: thread count is invisible in
  // every injected outcome — which points ran, the notes, and the CSV.
  auto run_with_launch_threads = [](unsigned launch_threads) {
    ExperimentConfig cfg = FaultSweepConfig();
    cfg.launch_threads = launch_threads;
    auto series = MeasureSpeedup(cfg);
    EXPECT_TRUE(series.ok()) << series.status().ToString();
    std::string digest = FormatSpeedupCsv({*series});
    for (const auto& p : series->points) {
      digest += StrFormat("|n=%u ran=%d note=%s", p.instances, int(p.ran),
                          p.note.c_str());
    }
    return digest;
  };
  const std::string serial = run_with_launch_threads(1);
  EXPECT_EQ(serial, run_with_launch_threads(2));
  EXPECT_EQ(serial, run_with_launch_threads(8));
  EXPECT_NE(serial.find("instance=3"), std::string::npos);
}

TEST(FaultSweep, RetryInSweepRecoversInjectedPoint) {
  ExperimentConfig cfg = FaultSweepConfig();
  cfg.max_attempts = 2;
  cfg.retry_shrink = 2;
  auto series = MeasureSpeedup(cfg);
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  // With a retry, the injected allocation failure is consumed in wave 1
  // and instance 3 recovers in wave 2: every point measures.
  for (const SpeedupPoint& p : series->points) {
    EXPECT_TRUE(p.ran) << "n=" << p.instances << ": " << p.note;
  }
}

}  // namespace
}  // namespace dgc::ensemble

#include "ensemble/argfile.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace dgc::ensemble {
namespace {

TEST(ArgFile, PaperFigure5b) {
  const char* content =
      "-a 1 -b -c data-1.bin\n"
      "-a 2 -b -c data-2.bin\n"
      "-a 1 -b -c data-3.bin\n"
      "-a 3 -b -c data-4.bin\n";
  auto lines = ParseArgumentLines(content);
  ASSERT_TRUE(lines.ok());
  ASSERT_EQ(lines->size(), 4u);
  EXPECT_EQ((*lines)[0],
            (std::vector<std::string>{"-a", "1", "-b", "-c", "data-1.bin"}));
  EXPECT_EQ((*lines)[3],
            (std::vector<std::string>{"-a", "3", "-b", "-c", "data-4.bin"}));
}

TEST(ArgFile, CommentsAndBlankLinesSkipped) {
  const char* content =
      "# ensemble inputs\n"
      "\n"
      "-n 100   # trailing comment\n"
      "   \n"
      "-n 200\n";
  auto lines = ParseArgumentLines(content);
  ASSERT_TRUE(lines.ok());
  ASSERT_EQ(lines->size(), 2u);
  EXPECT_EQ((*lines)[0], (std::vector<std::string>{"-n", "100"}));
}

TEST(ArgFile, QuotedHashIsNotComment) {
  auto lines = ParseArgumentLines("-m '#5' -x \"a # b\"\n");
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ((*lines)[0], (std::vector<std::string>{"-m", "#5", "-x", "a # b"}));
}

// Regression: the comment scanner must honor the tokenizer's \" escape
// inside double quotes. It used to treat the escaped quote as the closing
// one, truncate the line at the #, and fail with "unterminated quote".
TEST(ArgFile, EscapedQuoteInsideDoubleQuotesIsNotAComment) {
  auto lines = ParseArgumentLines("prog \"a\\\"# b\"\n");
  ASSERT_TRUE(lines.ok()) << lines.status().ToString();
  EXPECT_EQ((*lines)[0], (std::vector<std::string>{"prog", "a\"# b"}));
}

TEST(ArgFile, EscapedBackslashInsideDoubleQuotesEndsTheQuote) {
  // "c:\\" is a complete token (literal c:\); the # after it is a comment.
  auto lines = ParseArgumentLines("-x \"c:\\\\\" # trailing\n");
  ASSERT_TRUE(lines.ok()) << lines.status().ToString();
  EXPECT_EQ((*lines)[0], (std::vector<std::string>{"-x", "c:\\"}));
}

TEST(ArgFile, EscapedHashAfterDoubleQuotedEscapeStillComments) {
  // Single quotes take no escapes: \" inside '' stays two characters, and
  // the scanner must agree with the tokenizer on that too.
  auto lines = ParseArgumentLines("-y '\\' # comment\n");
  ASSERT_TRUE(lines.ok()) << lines.status().ToString();
  EXPECT_EQ((*lines)[0], (std::vector<std::string>{"-y", "\\"}));
}

TEST(ArgFile, QuotedArgumentsKeepSpaces) {
  auto lines = ParseArgumentLines("-m 'hello world'\n-m plain\n");
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ((*lines)[0][1], "hello world");
}

TEST(ArgFile, EmptyFileIsAnError) {
  EXPECT_FALSE(ParseArgumentLines("").ok());
  EXPECT_FALSE(ParseArgumentLines("# only comments\n\n").ok());
}

TEST(ArgFile, BadQuoteReportsLineNumber) {
  auto lines = ParseArgumentLines("-a 1\n-b 'oops\n");
  ASSERT_FALSE(lines.ok());
  EXPECT_NE(lines.status().message().find("line 2"), std::string::npos);
}

TEST(ArgFile, LoadFromDisk) {
  const std::string path = testing::TempDir() + "/dgc_argfile_test.txt";
  {
    std::ofstream out(path);
    out << "-s 1\n-s 2\n";
  }
  auto lines = LoadArgumentFile(path);
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ(lines->size(), 2u);
  std::remove(path.c_str());
}

TEST(ArgFile, MissingFileIsNotFound) {
  auto lines = LoadArgumentFile("/nonexistent/args.txt");
  ASSERT_FALSE(lines.ok());
  EXPECT_EQ(lines.status().code(), ErrorCode::kNotFound);
}

TEST(ArgFile, WindowsLineEndings) {
  auto lines = ParseArgumentLines("-a 1\r\n-a 2\r\n");
  ASSERT_TRUE(lines.ok());
  ASSERT_EQ(lines->size(), 2u);
  EXPECT_EQ((*lines)[0], (std::vector<std::string>{"-a", "1"}));
}

}  // namespace
}  // namespace dgc::ensemble

// End-to-end tests of the ensemble loader — the paper's core contribution.
#include <gtest/gtest.h>

#include <set>

#include <fstream>

#include "dgcf/libc.h"
#include "dgcf/rpc.h"
#include "ensemble/isolation.h"
#include "ensemble/loader.h"
#include "gpusim/trace.h"
#include "gpusim/device.h"
#include "ompx/team.h"
#include "support/str.h"

namespace dgc::ensemble {
namespace {

using dgcf::AppEnv;
using dgcf::DeviceArgv;
using dgcf::DeviceLibc;
using ompx::TeamCtx;
using sim::Device;
using sim::DeviceSpec;
using sim::DeviceTask;
using sim::ThreadCtx;

struct Env {
  Device device{DeviceSpec::TestDevice()};
  dgcf::RpcHost rpc{device};
  DeviceLibc libc{device};
  AppEnv app_env{&device, &rpc, &libc};
};

// An ensemble-style app: parses -s <size> -v <value>, mallocs, fills in
// parallel, checks the sum, prints a line, and exits with the size modulo
// 100 so the test can verify per-instance argument routing.
DeviceTask<int> EnsembleProbeMain(AppEnv& env, TeamCtx& team, int argc,
                                  DeviceArgv argv) {
  std::uint64_t size = 0;
  std::uint64_t value = 1;
  for (int i = 1; i < argc; ++i) {
    if (DeviceLibc::StrCmp(argv[i], "-s") == 0 && i + 1 < argc) {
      size = std::uint64_t(
          std::strtoll(DeviceLibc::ToString(argv[++i]).c_str(), nullptr, 10));
    } else if (DeviceLibc::StrCmp(argv[i], "-v") == 0 && i + 1 < argc) {
      value = std::uint64_t(
          std::strtoll(DeviceLibc::ToString(argv[++i]).c_str(), nullptr, 10));
    } else {
      co_return dgcf::kExitUsage;
    }
  }
  if (size == 0) co_return dgcf::kExitUsage;

  auto buf = co_await env.libc->Malloc(*team.hw, size * sizeof(std::uint64_t));
  if (buf.host == nullptr) co_return dgcf::kExitNoMem;
  auto p = buf.Typed<std::uint64_t>();

  co_await ompx::ParallelFor(
      team, size, [&](ThreadCtx& ctx, std::uint64_t i) -> DeviceTask<void> {
        co_await ctx.Store(p + i, value);
      });

  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < size; ++i) {
    sum += co_await team.hw->Load(p + i);
  }
  co_await env.libc->Free(*team.hw, buf.addr);
  if (sum != size * value) co_return 99;  // corruption across instances
  co_return int(size % 100);
}

DGC_REGISTER_APP(ensemble_probe, "per-instance argument probe",
                 EnsembleProbeMain)

EnsembleOptions ProbeOptions(std::uint32_t instances,
                             std::uint32_t thread_limit = 32) {
  EnsembleOptions opt;
  opt.app = "ensemble_probe";
  for (std::uint32_t i = 0; i < instances; ++i) {
    opt.instance_args.push_back(
        {"-s", StrFormat("%u", 100 + i), "-v", StrFormat("%u", i + 1)});
  }
  opt.thread_limit = thread_limit;
  return opt;
}

TEST(EnsembleLoader, EachInstanceGetsItsOwnArguments) {
  Env env;
  auto run = RunEnsemble(env.app_env, ProbeOptions(6));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->instances.size(), 6u);
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(run->instances[i].completed) << i;
    EXPECT_EQ(run->instances[i].exit_code, int(100 + i) % 100) << i;
  }
  EXPECT_GT(run->kernel_cycles, 0u);
}

TEST(EnsembleLoader, SingleKernelLaunchForAllInstances) {
  Env env;
  const auto launches_before = env.device.launches();
  ASSERT_TRUE(RunEnsemble(env.app_env, ProbeOptions(4)).ok());
  EXPECT_EQ(env.device.launches(), launches_before + 1);
}

TEST(EnsembleLoader, OneTeamPerInstanceByDefault) {
  Env env;
  auto run = RunEnsemble(env.app_env, ProbeOptions(5));
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->stats.blocks_launched, 5u);
}

TEST(EnsembleLoader, NumInstancesSelectsPrefixOfFile) {
  Env env;
  auto opt = ProbeOptions(6);
  opt.num_instances = 3;
  auto run = RunEnsemble(env.app_env, opt);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->instances.size(), 3u);
}

TEST(EnsembleLoader, MoreInstancesThanLinesRejected) {
  Env env;
  auto opt = ProbeOptions(2);
  opt.num_instances = 4;
  auto run = RunEnsemble(env.app_env, opt);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), ErrorCode::kInvalidArgument);
}

TEST(EnsembleLoader, FewerTeamsThanInstancesDistributes) {
  // Fig. 4's distribute loop: team t runs instances t, t+N, ...
  Env env;
  auto opt = ProbeOptions(8);
  opt.num_teams = 2;
  auto run = RunEnsemble(env.app_env, opt);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->stats.blocks_launched, 2u);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(run->instances[i].exit_code, int(100 + i) % 100) << i;
  }
}

TEST(EnsembleLoader, MultiDimMappingPacksInstancesPerBlock) {
  Env env;
  auto opt = ProbeOptions(8, /*thread_limit=*/16);
  opt.teams_per_block = 4;  // (16, 4, 1) blocks
  auto run = RunEnsemble(env.app_env, opt);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->stats.blocks_launched, 2u);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(run->instances[i].completed);
    EXPECT_EQ(run->instances[i].exit_code, int(100 + i) % 100) << i;
  }
}

TEST(EnsembleLoader, InstanceResultsIndependentOfCoResidents) {
  // Property: an instance's exit code must not depend on which other
  // instances share the kernel (isolation).
  Env env1, env2;
  auto solo = RunEnsemble(env1.app_env, ProbeOptions(1));
  auto packed = RunEnsemble(env2.app_env, ProbeOptions(6));
  ASSERT_TRUE(solo.ok());
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(solo->instances[0].exit_code, packed->instances[0].exit_code);
}

TEST(EnsembleLoader, OomInstanceReportsExitCode) {
  Env env;  // 64 MiB test device
  EnsembleOptions opt;
  opt.app = "ensemble_probe";
  opt.instance_args.push_back({"-s", "100"});
  opt.instance_args.push_back({"-s", "100000000"});  // 800 MB → OOM
  opt.thread_limit = 32;
  auto run = RunEnsemble(env.app_env, opt);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->instances[0].exit_code, 0);
  EXPECT_EQ(run->instances[1].exit_code, dgcf::kExitNoMem);
  EXPECT_FALSE(run->all_ok());
}

TEST(EnsembleLoader, UnknownAppRejected) {
  Env env;
  EnsembleOptions opt;
  opt.app = "ghost";
  opt.instance_args.push_back({"-s", "1"});
  EXPECT_EQ(RunEnsemble(env.app_env, opt).status().code(),
            ErrorCode::kNotFound);
}

TEST(EnsembleLoader, EmptyArgsRejected) {
  Env env;
  EnsembleOptions opt;
  opt.app = "ensemble_probe";
  EXPECT_EQ(RunEnsemble(env.app_env, opt).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(EnsembleLoader, ZeroThreadLimitRejectedByName) {
  // Library callers bypass the CLI's flag checks; the loader must still
  // reject a zeroed field with a message that names it.
  Env env;
  auto opt = ProbeOptions(2);
  opt.thread_limit = 0;
  auto run = RunEnsemble(env.app_env, opt);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(run.status().message().find("thread_limit"), std::string::npos)
      << run.status().ToString();
}

TEST(EnsembleLoader, ZeroTeamsPerBlockRejectedByName) {
  Env env;
  auto opt = ProbeOptions(2);
  opt.teams_per_block = 0;
  auto run = RunEnsemble(env.app_env, opt);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(run.status().message().find("teams_per_block"), std::string::npos)
      << run.status().ToString();
}

TEST(EnsembleLoader, CliFrontEndMatchesFig5c) {
  Env env;
  const std::string path = testing::TempDir() + "/dgc_ensemble_args.txt";
  {
    std::ofstream out(path);
    for (int i = 0; i < 4; ++i) out << "-s " << (100 + i) << "\n";
  }
  auto run = RunEnsembleCli(env.app_env, "ensemble_probe",
                            {"-f", path, "-n", "4", "-t", "32"});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->instances.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(run->instances[std::size_t(i)].exit_code, i);
  std::remove(path.c_str());
}

TEST(EnsembleLoader, CliScriptMode) {
  Env env;
  const std::string path = testing::TempDir() + "/dgc_ensemble_script.txt";
  {
    std::ofstream out(path);
    out << "@repeat 3 : -s {i+100}\n";
  }
  auto run = RunEnsembleCli(env.app_env, "ensemble_probe",
                            {"-f", path, "-t", "32", "--script"});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->instances.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(run->instances[std::size_t(i)].exit_code, i);
  std::remove(path.c_str());
}

TEST(EnsembleLoader, CliRejectsBadFlags) {
  Env env;
  EXPECT_FALSE(RunEnsembleCli(env.app_env, "ensemble_probe", {"-n", "4"}).ok());
  EXPECT_FALSE(
      RunEnsembleCli(env.app_env, "ensemble_probe", {"-f", "/nope"}).ok());
}

// --- Global-variable isolation (§3.3) --------------------------------------

TEST(IsolatedGlobals, ReplicasAreIndependent) {
  Device device(DeviceSpec::TestDevice());
  IsolatedGlobals globals;
  const double init = 1.5;
  ASSERT_TRUE(globals.Declare("g_total", sizeof(double), &init).ok());
  ASSERT_TRUE(globals.Declare("g_count", sizeof(std::uint64_t)).ok());
  ASSERT_TRUE(
      globals.Materialize(device, 4, GlobalsMode::kIsolated).ok());
  EXPECT_EQ(globals.replicas(), 4u);

  for (std::uint32_t i = 0; i < 4; ++i) {
    auto slot = globals.Slot<double>(i, "g_total");
    ASSERT_TRUE(slot.ok());
    EXPECT_DOUBLE_EQ(*slot->host, 1.5);
    *slot->host += double(i);
  }
  // Writes did not leak between replicas.
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(*globals.Slot<double>(i, "g_total")->host, 1.5 + i);
  }
  globals.Release(device);
  EXPECT_EQ(device.memory().allocation_count(), 0u);
}

TEST(IsolatedGlobals, SharedModeAliases) {
  Device device(DeviceSpec::TestDevice());
  IsolatedGlobals globals;
  ASSERT_TRUE(globals.Declare("g", sizeof(std::uint64_t)).ok());
  ASSERT_TRUE(globals.Materialize(device, 4, GlobalsMode::kShared).ok());
  EXPECT_EQ(globals.replicas(), 1u);
  *globals.Slot<std::uint64_t>(0, "g")->host = 42;
  EXPECT_EQ(*globals.Slot<std::uint64_t>(3, "g")->host, 42u);  // the race
  globals.Release(device);
}

TEST(IsolatedGlobals, DeclarationErrors) {
  Device device(DeviceSpec::TestDevice());
  IsolatedGlobals globals;
  EXPECT_FALSE(globals.Declare("z", 0).ok());
  ASSERT_TRUE(globals.Declare("a", 8).ok());
  EXPECT_FALSE(globals.Declare("a", 8).ok());  // duplicate
  ASSERT_TRUE(globals.Materialize(device, 2, GlobalsMode::kIsolated).ok());
  EXPECT_FALSE(globals.Declare("late", 8).ok());
  EXPECT_FALSE(globals.Slot<int>(9, "a").ok());       // bad instance
  EXPECT_FALSE(globals.Slot<int>(0, "nope").ok());    // bad name
  globals.Release(device);
}

TEST(IsolatedGlobals, ReplicasAreDistinctAllocations) {
  // §4.3: per-instance data lives in distinct, non-contiguous allocations.
  Device device(DeviceSpec::TestDevice());
  IsolatedGlobals globals;
  ASSERT_TRUE(globals.Declare("g", 64).ok());
  const auto before = device.memory().allocation_count();
  ASSERT_TRUE(globals.Materialize(device, 8, GlobalsMode::kIsolated).ok());
  EXPECT_EQ(device.memory().allocation_count(), before + 8);
  globals.Release(device);
}

}  // namespace
}  // namespace dgc::ensemble

namespace dgc::ensemble {
namespace {

TEST(EnsembleLoader, TraceCapturesTheEnsembleKernel) {
  Env env;
  sim::Trace trace;
  auto opt = ProbeOptions(3);
  opt.trace = &trace;
  auto run = RunEnsemble(env.app_env, opt);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_FALSE(trace.events().empty());
  // All three instances (blocks) appear in the trace.
  std::set<std::uint32_t> blocks;
  for (const sim::TraceEvent& e : trace.events()) blocks.insert(e.block);
  EXPECT_EQ(blocks.size(), 3u);
  // The trace spans the kernel: max completion ≈ elapsed cycles.
  std::uint64_t last = 0;
  for (const sim::TraceEvent& e : trace.events()) {
    last = std::max(last, e.complete);
  }
  EXPECT_LE(last, run->stats.elapsed_cycles + 1);
  EXPECT_GE(last, run->stats.elapsed_cycles / 2);
}

}  // namespace
}  // namespace dgc::ensemble

// Regression tests for the device libc heap and mem* routines: free(NULL)
// cost, failed-free accounting, and byte-accurate handling of misaligned
// memset/memcpy spans.
#include <gtest/gtest.h>

#include <cstring>

#include "dgcf/libc.h"
#include "gpusim/ctx.h"
#include "gpusim/device.h"
#include "gpusim/memcheck.h"

namespace dgc::dgcf {
namespace {

using sim::Device;
using sim::DeviceSpec;
using sim::DeviceTask;
using sim::ThreadCtx;

sim::LaunchConfig OneWarp() {
  return sim::LaunchConfig{.grid = {1, 1, 1}, .block = {32, 1, 1},
                           .name = "libc"};
}

std::uint64_t CyclesOf(Device& device, DeviceLibc& libc,
                       std::uint32_t null_frees) {
  auto result = device.Launch(
      OneWarp(), [&](ThreadCtx& ctx) -> DeviceTask<void> {
        if (ctx.thread_id != 0) co_return;
        for (std::uint32_t i = 0; i < null_frees; ++i) {
          co_await libc.Free(ctx, 0);
        }
      });
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result->cycles;
}

TEST(DeviceLibcHeap, FreeNullIsAFreeNoOp) {
  Device device(DeviceSpec::TestDevice());
  DeviceLibc libc(device);
  const std::uint64_t baseline = CyclesOf(device, libc, 0);
  const std::uint64_t with_frees = CyclesOf(device, libc, 10);
  // free(NULL) must not charge the heap-lock cost: ten of them stay well
  // under a single real heap operation.
  EXPECT_LT(with_frees, baseline + DeviceLibc::kHeapOpCycles);
  EXPECT_EQ(libc.failed_frees(), 0u);
}

TEST(DeviceLibcHeap, FailedFreesAreCounted) {
  Device device(DeviceSpec::TestDevice());
  DeviceLibc libc(device);
  auto result = device.Launch(
      OneWarp(), [&](ThreadCtx& ctx) -> DeviceTask<void> {
        if (ctx.thread_id != 0) co_return;
        auto buf = co_await libc.Malloc(ctx, 64);
        EXPECT_NE(buf.host, nullptr);
        co_await libc.Free(ctx, buf.addr);
        co_await libc.Free(ctx, buf.addr);      // double free
        co_await libc.Free(ctx, 0xdead0000);    // wild free
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(libc.live_allocations(), 0u);
  EXPECT_EQ(libc.failed_frees(), 2u);
}

TEST(DeviceLibcHeap, FailedFreesAreMemcheckFindings) {
  Device device(DeviceSpec::TestDevice());
  sim::Memcheck memcheck;
  memcheck.Attach(device.memory());
  DeviceLibc libc(device);
  auto cfg = OneWarp();
  cfg.memcheck = &memcheck;
  auto result = device.Launch(
      cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
        if (ctx.thread_id != 0) co_return;
        auto buf = co_await libc.Malloc(ctx, 64);
        co_await libc.Free(ctx, buf.addr);
        co_await libc.Free(ctx, buf.addr);
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(memcheck.report().double_free_count, 1u);
  // The finding is attributed to the freeing lane.
  ASSERT_FALSE(memcheck.report().findings.empty());
  EXPECT_TRUE(memcheck.report().findings[0].attributed);
}

// Runs Memset on a [offset, offset+len) span of a 64-byte buffer and
// verifies byte-exact results plus (optionally) memcheck cleanliness.
void CheckMemset(std::uint64_t offset, std::uint64_t len) {
  Device device(DeviceSpec::TestDevice());
  sim::Memcheck memcheck;
  memcheck.Attach(device.memory());
  auto buf = *device.Malloc(64);
  std::memset(buf.host, 0x11, 64);

  auto cfg = OneWarp();
  cfg.memcheck = &memcheck;
  auto dst = buf.Typed<std::uint8_t>() + std::ptrdiff_t(offset);
  auto result = device.Launch(
      cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
        if (ctx.thread_id != 0) co_return;
        co_await DeviceLibc::Memset(ctx, dst, 0xAB, len);
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (std::uint64_t i = 0; i < 64; ++i) {
    const std::uint8_t expected =
        (i >= offset && i < offset + len) ? 0xAB : 0x11;
    ASSERT_EQ(buf.Typed<std::uint8_t>()[std::ptrdiff_t(i)], expected)
        << "byte " << i << " (offset " << offset << ", len " << len << ")";
  }
  // A byte head/tail around aligned word stores: no misaligned traffic.
  EXPECT_EQ(memcheck.report().misaligned_count, 0u)
      << memcheck.report().ToString();
}

TEST(DeviceLibcMem, MemsetAlignedBase) { CheckMemset(0, 64); }
TEST(DeviceLibcMem, MemsetMisalignedBase) { CheckMemset(3, 21); }
TEST(DeviceLibcMem, MemsetMisalignedLongSpan) { CheckMemset(5, 43); }
TEST(DeviceLibcMem, MemsetTinySpan) { CheckMemset(7, 3); }

// Memcpy src→dst at the given offsets within two 64-byte buffers.
void CheckMemcpy(std::uint64_t dst_off, std::uint64_t src_off,
                 std::uint64_t len) {
  Device device(DeviceSpec::TestDevice());
  sim::Memcheck memcheck;
  memcheck.Attach(device.memory());
  auto src = *device.Malloc(64);
  auto dst = *device.Malloc(64);
  for (int i = 0; i < 64; ++i) src.Typed<std::uint8_t>()[i] = std::uint8_t(i);
  std::memset(dst.host, 0xEE, 64);

  auto cfg = OneWarp();
  cfg.memcheck = &memcheck;
  auto d = dst.Typed<std::uint8_t>() + std::ptrdiff_t(dst_off);
  auto s = src.Typed<std::uint8_t>() + std::ptrdiff_t(src_off);
  auto result = device.Launch(
      cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
        if (ctx.thread_id != 0) co_return;
        co_await DeviceLibc::Memcpy(ctx, d, s, len);
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (std::uint64_t i = 0; i < 64; ++i) {
    const std::uint8_t expected =
        (i >= dst_off && i < dst_off + len) ? std::uint8_t(src_off + i - dst_off)
                                            : 0xEE;
    ASSERT_EQ(dst.Typed<std::uint8_t>()[std::ptrdiff_t(i)], expected)
        << "byte " << i;
  }
  EXPECT_EQ(memcheck.report().misaligned_count, 0u)
      << memcheck.report().ToString();
}

TEST(DeviceLibcMem, MemcpyAligned) { CheckMemcpy(0, 0, 64); }
TEST(DeviceLibcMem, MemcpyCoMisaligned) { CheckMemcpy(3, 3, 40); }
TEST(DeviceLibcMem, MemcpyRelativelyMisaligned) { CheckMemcpy(2, 1, 33); }
TEST(DeviceLibcMem, MemcpyTiny) { CheckMemcpy(6, 6, 5); }

}  // namespace
}  // namespace dgc::dgcf

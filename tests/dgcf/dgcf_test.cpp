// Tests for the direct-GPU-compilation framework: app registry, host RPC,
// device libc, argv marshalling, and the single-instance (baseline) loader.
#include <gtest/gtest.h>

#include "dgcf/app.h"
#include "dgcf/argv.h"
#include "dgcf/libc.h"
#include "dgcf/loader.h"
#include "dgcf/rpc.h"
#include "ompx/league.h"
#include "support/str.h"

namespace dgc::dgcf {
namespace {

using ompx::TeamCtx;
using sim::Device;
using sim::DeviceSpec;
using sim::DeviceTask;
using sim::ThreadCtx;

struct Env {
  Device device{DeviceSpec::TestDevice()};
  RpcHost rpc{device};
  DeviceLibc libc{device};
  AppEnv app_env{&device, &rpc, &libc};
};

// A miniature "legacy CPU application": parses -n <count> and -x <value>,
// device-mallocs a vector, fills it in parallel, reduces, prints the total,
// and returns 0 (or a usage / OOM error).
DeviceTask<int> TestAppMain(AppEnv& env, TeamCtx& team, int argc,
                            DeviceArgv argv) {
  std::uint64_t n = 0;
  double x = 1.0;
  for (int i = 1; i < argc; ++i) {
    if (DeviceLibc::StrCmp(argv[i], "-n") == 0 && i + 1 < argc) {
      n = std::uint64_t(std::strtoll(DeviceLibc::ToString(argv[++i]).c_str(),
                                     nullptr, 10));
    } else if (DeviceLibc::StrCmp(argv[i], "-x") == 0 && i + 1 < argc) {
      x = std::strtod(DeviceLibc::ToString(argv[++i]).c_str(), nullptr);
    } else {
      co_return kExitUsage;
    }
  }
  if (n == 0) co_return kExitUsage;

  sim::DeviceBuffer buf =
      co_await env.libc->Malloc(*team.hw, n * sizeof(double));
  if (buf.host == nullptr) co_return kExitNoMem;
  auto p = buf.Typed<double>();

  co_await ompx::ParallelFor(
      team, n, [&](ThreadCtx& ctx, std::uint64_t i) -> DeviceTask<void> {
        co_await ctx.Store(p + i, x);
      });

  double sum = 0;
  co_await ompx::Parallel(
      team, [&](ThreadCtx&, std::uint32_t rank,
                std::uint32_t size) -> DeviceTask<void> {
        double local = 0;
        for (std::uint64_t i = rank; i < n; i += size) {
          local += co_await team.hw->Load(p + i);
        }
        const double total = co_await ompx::TeamReduceSum(team, local);
        if (rank == 0) sum = total;
      });

  co_await env.rpc->Print(*team.hw, StrFormat("sum=%.1f\n", sum));
  co_await env.libc->Free(*team.hw, buf.addr);
  co_return kExitOk;
}

DGC_REGISTER_APP(testapp, "fill-and-reduce smoke app", TestAppMain)

TEST(AppRegistry, FindRegisteredApp) {
  auto app = AppRegistry::Instance().Find("testapp");
  ASSERT_TRUE(app.ok());
  EXPECT_EQ((*app)->name, "testapp");
  EXPECT_FALSE((*app)->description.empty());
}

TEST(AppRegistry, UnknownAppIsNotFound) {
  auto app = AppRegistry::Instance().Find("no-such-app");
  ASSERT_FALSE(app.ok());
  EXPECT_EQ(app.status().code(), ErrorCode::kNotFound);
}

TEST(AppRegistry, NamesListed) {
  auto names = AppRegistry::Instance().Names();
  EXPECT_NE(std::find(names.begin(), names.end(), "testapp"), names.end());
}

TEST(ArgvBlock, PaperFigure4Layout) {
  Env env;
  // The four command lines of Fig. 5b, with argv[0] prepended (Fig. 4).
  std::vector<std::vector<std::string>> args{
      {"user_app", "-a", "1", "-b", "-c", "data-1.bin"},
      {"user_app", "-a", "2", "-b", "-c", "data-2.bin"},
      {"user_app", "-a", "1", "-b", "-c", "data-3.bin"},
      {"user_app", "-a", "3", "-b", "-c", "data-4.bin"},
  };
  auto block = ArgvBlock::Build(env.device, args);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->instances(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(block->argc(i), 6);
    EXPECT_EQ(DeviceLibc::ToString(block->argv(i)[0]), "user_app");
    EXPECT_EQ(DeviceLibc::ToString(block->argv(i)[5]),
              StrFormat("data-%u.bin", i + 1));
    // Strings live in device memory.
    EXPECT_TRUE(env.device.memory().Contains(block->argv(i)[5].addr, 11));
  }
  EXPECT_GT(block->transfer_cycles(), 0u);
}

TEST(ArgvBlock, RejectsEmptyInstances) {
  Env env;
  EXPECT_FALSE(ArgvBlock::Build(env.device, {}).ok());
  EXPECT_FALSE(ArgvBlock::Build(env.device, {{}}).ok());
}

TEST(ArgvBlock, FreesCacheOnDestruction) {
  Env env;
  const auto before = env.device.memory().allocation_count();
  {
    auto block = ArgvBlock::Build(env.device, {{"a", "b"}});
    ASSERT_TRUE(block.ok());
    EXPECT_EQ(env.device.memory().allocation_count(), before + 1);
  }
  EXPECT_EQ(env.device.memory().allocation_count(), before);
}

TEST(RpcHost, PrintCollectsInServiceOrder) {
  Env env;
  ompx::TeamsConfig cfg{.num_teams = 1, .thread_limit = 1};
  auto result = ompx::LaunchTeams(
      env.device, cfg, [&](TeamCtx& team) -> DeviceTask<void> {
        co_await env.rpc.Print(*team.hw, "hello ");
        co_await env.rpc.Print(*team.hw, "world\n");
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(env.rpc.stdout_text(), "hello world\n");
  EXPECT_EQ(env.rpc.calls_serviced(), 2u);
  // Two round trips dominate this kernel's runtime.
  EXPECT_GE(result->stats.elapsed_cycles,
            2ull * env.device.spec().rpc_roundtrip_cycles);
}

TEST(RpcHost, FileReadIntoDeviceMemory) {
  Env env;
  env.rpc.AddTextFile("data.bin", "0123456789");
  auto buf = *env.device.Malloc(16);
  ompx::TeamsConfig cfg{.num_teams = 1, .thread_limit = 1};
  std::int64_t got_size = -2, got_read = -2, got_missing = -2;
  auto result = ompx::LaunchTeams(
      env.device, cfg, [&](TeamCtx& team) -> DeviceTask<void> {
        got_size = co_await env.rpc.FileSize(*team.hw, "data.bin");
        got_read = co_await env.rpc.ReadFile(
            *team.hw, "data.bin", buf.Typed<std::byte>(), 2, 4);
        got_missing = co_await env.rpc.FileSize(*team.hw, "nope.bin");
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(got_size, 10);
  EXPECT_EQ(got_read, 4);
  EXPECT_EQ(got_missing, -1);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf.host), 4), "2345");
}

TEST(DeviceLibc, MallocFreeAccounting) {
  Env env;
  ompx::TeamsConfig cfg{.num_teams = 1, .thread_limit = 1};
  auto result = ompx::LaunchTeams(
      env.device, cfg, [&](TeamCtx& team) -> DeviceTask<void> {
        auto a = co_await env.libc.Malloc(*team.hw, 1024);
        auto b = co_await env.libc.Malloc(*team.hw, 2048);
        if (a.host == nullptr || b.host == nullptr) {
          throw std::runtime_error("unexpected OOM");
        }
        co_await env.libc.Free(*team.hw, a.addr);
        co_await env.libc.Free(*team.hw, b.addr);
        co_await env.libc.Free(*team.hw, 0);  // free(NULL) is a no-op
      });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(env.libc.live_allocations(), 0u);
  EXPECT_EQ(env.libc.failed_allocations(), 0u);
}

TEST(DeviceLibc, MallocReturnsNullOnOom) {
  Env env;
  ompx::TeamsConfig cfg{.num_teams = 1, .thread_limit = 1};
  bool got_null = false;
  auto result = ompx::LaunchTeams(
      env.device, cfg, [&](TeamCtx& team) -> DeviceTask<void> {
        auto huge = co_await env.libc.Malloc(
            *team.hw, env.device.spec().global_memory_bytes * 2);
        got_null = huge.host == nullptr;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(got_null);
  EXPECT_EQ(env.libc.failed_allocations(), 1u);
}

TEST(DeviceLibc, StringHelpers) {
  Env env;
  auto buf = *env.device.Malloc(32);
  char* s = reinterpret_cast<char*>(buf.host);
  std::strcpy(s, "-n");
  auto p = buf.Typed<char>();
  EXPECT_EQ(DeviceLibc::StrLen(p), 2u);
  EXPECT_EQ(DeviceLibc::StrCmp(p, "-n"), 0);
  EXPECT_LT(DeviceLibc::StrCmp(p, "-x"), 0);
  EXPECT_GT(DeviceLibc::StrCmp(p, "-a"), 0);
  EXPECT_EQ(DeviceLibc::ToString(p), "-n");
}

TEST(SingleLoader, RunsAppEndToEnd) {
  Env env;
  SingleRunOptions opt;
  opt.app = "testapp";
  opt.args = {"-n", "500", "-x", "2.0"};
  opt.thread_limit = 64;
  auto run = RunSingleInstance(env.app_env, opt);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->instances.size(), 1u);
  EXPECT_TRUE(run->instances[0].completed);
  EXPECT_EQ(run->instances[0].exit_code, kExitOk);
  EXPECT_EQ(env.rpc.stdout_text(), "sum=1000.0\n");
  EXPECT_GT(run->kernel_cycles, 0u);
  EXPECT_GT(run->transfer_cycles, 0u);
  EXPECT_TRUE(run->all_ok());
}

TEST(SingleLoader, MemcheckCleanOnCorrectApp) {
  Env env;
  sim::Memcheck memcheck;
  memcheck.Attach(env.device.memory());
  SingleRunOptions opt;
  opt.app = "testapp";
  opt.args = {"-n", "500", "-x", "2.0"};
  opt.thread_limit = 64;
  opt.memcheck = &memcheck;
  auto run = RunSingleInstance(env.app_env, opt);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->all_ok());
  EXPECT_TRUE(run->memcheck.clean()) << run->memcheck.ToString();
  EXPECT_EQ(run->stats.memcheck_findings, 0u);
}

TEST(SingleLoader, UsageErrorSurfacesAsExitCode) {
  Env env;
  SingleRunOptions opt;
  opt.app = "testapp";
  opt.args = {"--bogus"};
  opt.thread_limit = 32;
  auto run = RunSingleInstance(env.app_env, opt);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->instances[0].completed);
  EXPECT_EQ(run->instances[0].exit_code, kExitUsage);
  EXPECT_FALSE(run->all_ok());
}

TEST(SingleLoader, OomSurfacesAsExitCode) {
  Env env;
  SingleRunOptions opt;
  opt.app = "testapp";
  // 64 MiB test device: ask for 100M doubles.
  opt.args = {"-n", "100000000"};
  opt.thread_limit = 32;
  auto run = RunSingleInstance(env.app_env, opt);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->instances[0].exit_code, kExitNoMem);
}

TEST(SingleLoader, UnknownAppFails) {
  Env env;
  SingleRunOptions opt;
  opt.app = "missing";
  auto run = RunSingleInstance(env.app_env, opt);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), ErrorCode::kNotFound);
}

TEST(SingleLoader, ThreadLimitChangesParallelPerformance) {
  Env env;
  auto time_with = [&](std::uint32_t tl) {
    SingleRunOptions opt;
    opt.app = "testapp";
    opt.args = {"-n", "20000"};
    opt.thread_limit = tl;
    auto run = RunSingleInstance(env.app_env, opt);
    EXPECT_TRUE(run.ok());
    return run->kernel_cycles;
  };
  const auto t1 = time_with(1);
  const auto t64 = time_with(64);
  EXPECT_GT(t1, t64);  // the parallel fill/reduce dominates
}

}  // namespace
}  // namespace dgc::dgcf

namespace dgc::dgcf {
namespace {

using ompx::TeamsConfig;

TEST(DeviceLibc, MemsetFillsExactRange) {
  Env env;
  auto buf = *env.device.Malloc(256);
  std::memset(buf.host, 0xEE, 256);
  TeamsConfig cfg{.num_teams = 1, .thread_limit = 1};
  auto result = ompx::LaunchTeams(
      env.device, cfg, [&](ompx::TeamCtx& team) -> sim::DeviceTask<void> {
        // 100 bytes starting at offset 3: straddles word boundaries.
        co_await DeviceLibc::Memset(*team.hw,
                                    buf.Typed<std::uint8_t>(3), 0xAB, 100);
      });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
  auto* bytes = reinterpret_cast<unsigned char*>(buf.host);
  EXPECT_EQ(bytes[2], 0xEE);
  for (int i = 3; i < 103; ++i) ASSERT_EQ(bytes[i], 0xAB) << i;
  EXPECT_EQ(bytes[103], 0xEE);
}

TEST(DeviceLibc, MemcpyCopiesAndCharges) {
  Env env;
  const std::uint64_t n = 1000;
  auto src = *env.device.Malloc(n);
  auto dst = *env.device.Malloc(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    src.host[i] = std::byte(i & 0xff);
    dst.host[i] = std::byte{0};
  }
  TeamsConfig cfg{.num_teams = 1, .thread_limit = 1};
  auto result = ompx::LaunchTeams(
      env.device, cfg, [&](ompx::TeamCtx& team) -> sim::DeviceTask<void> {
        co_await DeviceLibc::Memcpy(*team.hw, dst.Typed<std::uint8_t>(),
                                    src.Typed<std::uint8_t>(), n);
      });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(std::memcmp(src.host, dst.host, n), 0);
  // Traffic was charged: ~2n bytes of sectors touched.
  EXPECT_GE(result->stats.global_sectors, 2 * n / 32);
}

TEST(RpcHost, WriteFileRoundTrip) {
  Env env;
  auto buf = *env.device.Malloc(16);
  std::memcpy(buf.host, "ensemble result!", 16);
  TeamsConfig cfg{.num_teams = 1, .thread_limit = 1};
  std::int64_t wrote = 0;
  auto result = ompx::LaunchTeams(
      env.device, cfg, [&](ompx::TeamCtx& team) -> sim::DeviceTask<void> {
        wrote = co_await env.rpc.WriteFile(
            *team.hw, "out.bin", buf.Typed<const std::byte>(), 16);
        // Second write appends.
        co_await env.rpc.WriteFile(*team.hw, "out.bin",
                                   buf.Typed<const std::byte>(), 8);
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(wrote, 16);
  const auto* file = env.rpc.GetFile("out.bin");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(file->size(), 24u);
  EXPECT_EQ(std::memcmp(file->data(), "ensemble result!", 16), 0);
  EXPECT_EQ(std::memcmp(file->data() + 16, "ensemble", 8), 0);
  EXPECT_EQ(env.rpc.GetFile("missing.bin"), nullptr);
}

}  // namespace
}  // namespace dgc::dgcf

#include "gpusim/memsys.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>

namespace dgc::sim {
namespace {

DeviceSpec Spec() { return DeviceSpec::TestDevice(); }

TEST(MemorySystem, L1HitIsFast) {
  DeviceSpec spec = Spec();
  MemorySystem mem(spec);
  LaunchStats stats;
  std::vector<std::uint64_t> sectors{100};
  const std::uint64_t cold = mem.Access(0, sectors, false, 0, stats);
  const std::uint64_t warm = mem.Access(0, sectors, false, cold, stats) - cold;
  EXPECT_GT(cold, std::uint64_t(spec.l1_latency));
  EXPECT_EQ(warm, std::uint64_t(spec.l1_latency));
  EXPECT_EQ(stats.l1_hits, 1u);
  EXPECT_EQ(stats.l1_misses, 1u);
}

TEST(MemorySystem, L2SharedAcrossSms) {
  DeviceSpec spec = Spec();
  MemorySystem mem(spec);
  LaunchStats stats;
  std::vector<std::uint64_t> sectors{55};
  mem.Access(0, sectors, false, 0, stats);  // SM0 pulls into L1+L2
  stats = {};
  mem.Access(1, sectors, false, 0, stats);  // SM1 misses L1, hits L2
  EXPECT_EQ(stats.l1_misses, 1u);
  EXPECT_EQ(stats.l2_hits, 1u);
  EXPECT_EQ(stats.dram_bytes, 0u);
}

TEST(MemorySystem, DramBytesCharged) {
  DeviceSpec spec = Spec();
  MemorySystem mem(spec);
  LaunchStats stats;
  std::vector<std::uint64_t> sectors;
  for (std::uint64_t s = 0; s < 100; ++s) sectors.push_back(s * 977 + 5);
  mem.Access(0, sectors, false, 0, stats);
  EXPECT_EQ(stats.dram_bytes, 100ull * spec.sector_bytes);
}

TEST(MemorySystem, BandwidthContentionQueues) {
  // Two equal bursts issued at the same instant must finish later than one
  // burst alone: they share the DRAM channels.
  DeviceSpec spec = Spec();
  LaunchStats stats;
  std::vector<std::uint64_t> burst_a, burst_b;
  for (std::uint64_t s = 0; s < 200; ++s) {
    burst_a.push_back(s);
    burst_b.push_back(100000 + s);
  }
  MemorySystem solo(spec);
  const std::uint64_t t_solo = solo.Access(0, burst_a, false, 0, stats);

  MemorySystem both(spec);
  both.Access(0, burst_a, false, 0, stats);
  const std::uint64_t t_both = both.Access(1, burst_b, false, 0, stats);
  EXPECT_GT(t_both, t_solo);
}

TEST(MemorySystem, RowBufferLocalityMatters) {
  DeviceSpec spec = Spec();
  LaunchStats seq_stats, scat_stats;
  // Sequential sectors: mostly row hits. Scattered: mostly row misses.
  std::vector<std::uint64_t> seq, scattered;
  for (std::uint64_t i = 0; i < 256; ++i) {
    seq.push_back(i);
    scattered.push_back(i * 8191);
  }
  MemorySystem a(spec);
  a.Access(0, seq, false, 0, seq_stats);
  MemorySystem b(spec);
  b.Access(0, scattered, false, 0, scat_stats);
  EXPECT_GT(seq_stats.dram_row_hits, scat_stats.dram_row_hits);
  EXPECT_LT(seq_stats.dram_row_misses, scat_stats.dram_row_misses);
}

TEST(MemorySystem, SharedConflictFreeIsOneTrip) {
  DeviceSpec spec = Spec();
  MemorySystem mem(spec);
  LaunchStats stats;
  std::vector<std::uint64_t> addrs;
  for (std::uint64_t i = 0; i < 32; ++i) addrs.push_back(i * 4);  // 32 banks
  EXPECT_EQ(mem.AccessShared(addrs, 10, stats), 10 + spec.smem_latency);
  EXPECT_EQ(stats.smem_bank_conflicts, 0u);
}

TEST(MemorySystem, SharedBankConflictSerializes) {
  DeviceSpec spec = Spec();
  MemorySystem mem(spec);
  LaunchStats stats;
  std::vector<std::uint64_t> addrs;
  // All 32 lanes hit bank 0 with distinct words: 32-way conflict.
  for (std::uint64_t i = 0; i < 32; ++i) addrs.push_back(i * 4 * spec.smem_banks);
  EXPECT_EQ(mem.AccessShared(addrs, 0, stats),
            std::uint64_t(spec.smem_latency) + 31);
  EXPECT_EQ(stats.smem_bank_conflicts, 31u);
}

TEST(MemorySystem, SharedBroadcastNoConflict) {
  DeviceSpec spec = Spec();
  MemorySystem mem(spec);
  LaunchStats stats;
  std::vector<std::uint64_t> addrs(32, 64);  // same word: broadcast
  EXPECT_EQ(mem.AccessShared(addrs, 0, stats), std::uint64_t(spec.smem_latency));
}

TEST(MemorySystem, ResetClearsState) {
  DeviceSpec spec = Spec();
  MemorySystem mem(spec);
  LaunchStats stats;
  std::vector<std::uint64_t> sectors{42};
  mem.Access(0, sectors, false, 0, stats);
  mem.Reset();
  stats = {};
  mem.Access(0, sectors, false, 0, stats);
  EXPECT_EQ(stats.l1_misses, 1u);  // cold again
}

// --- Queue-cycle accounting (per-instruction backlog semantics) -------------
//
// Historical bug: l2/dram queue cycles were charged per *sector* against
// the instruction's fixed `now`, so a coalesced access with S sectors
// re-counted its own earlier sectors' service time roughly quadratically.
// The fixed semantics: an instruction is charged the backlog it finds on
// arrival, once per resource it reaches (L2 port once, each DRAM channel
// once).

TEST(MemorySystemQueue, SingleCoalescedAccessChargesNoQueueCycles) {
  // A fresh memory system has no backlog: a single S-sector instruction
  // must record zero queue cycles no matter how large S is. (TestDevice:
  // 16 channels at 4 B/cyc → 8 cycles per 32 B sector; under per-sector
  // charging, 64 sectors = 4 per channel would have charged
  // 16 × (8+16+24) = 768 cycles of self-inflicted "queueing".)
  DeviceSpec spec = Spec();
  MemorySystem mem(spec);
  LaunchStats stats;
  std::vector<std::uint64_t> sectors;
  for (std::uint64_t s = 0; s < 64; ++s) sectors.push_back(s);
  mem.Access(0, sectors, false, 0, stats);
  EXPECT_EQ(stats.dram_queue_cycles, 0u);
  EXPECT_EQ(stats.l2_queue_cycles, 0u);
}

TEST(MemorySystemQueue, BacklogChargedOncePerChannelPerInstruction) {
  DeviceSpec spec = Spec();
  MemorySystem mem(spec);
  LaunchStats stats;
  // First instruction: one sector per channel → each channel busy for 8
  // cycles (32 B at 4 B/cyc).
  std::vector<std::uint64_t> first;
  for (std::uint64_t s = 0; s < 16; ++s) first.push_back(s);
  mem.Access(0, first, false, 0, stats);
  EXPECT_EQ(stats.dram_queue_cycles, 0u);

  // Second instruction, same instant, two fresh sectors per channel: the
  // backlog at arrival is 8 cycles per channel, charged once per channel —
  // not once per sector (which would add 8+16 per channel).
  stats = {};
  std::vector<std::uint64_t> second;
  for (std::uint64_t s = 16; s < 48; ++s) second.push_back(s);
  mem.Access(0, second, false, 0, stats);
  EXPECT_EQ(stats.dram_queue_cycles, 16u * 8u);

  // Third instruction at the same instant: backlog is now 8 + 2×8 = 24
  // cycles per channel; again exactly one charge per channel.
  stats = {};
  std::vector<std::uint64_t> third;
  for (std::uint64_t s = 48; s < 64; ++s) third.push_back(s);
  mem.Access(0, third, false, 0, stats);
  EXPECT_EQ(stats.dram_queue_cycles, 16u * 24u);
}

TEST(MemorySystemQueue, L2BacklogChargedOncePerInstruction) {
  // Funnel everything through one channel-heavy L2 port: make the L2 port
  // slow (1 byte/cycle → 32 cycles per sector) so its backlog is visible
  // in whole cycles.
  DeviceSpec spec = Spec();
  spec.l2_bytes_per_cycle = 1.0;
  MemorySystem mem(spec);
  LaunchStats stats;
  std::vector<std::uint64_t> first;
  for (std::uint64_t s = 0; s < 4; ++s) first.push_back(s);
  mem.Access(0, first, false, 0, stats);
  EXPECT_EQ(stats.l2_queue_cycles, 0u);  // no backlog on arrival

  // Port backlog after 4 sectors: 128 cycles. A second 4-sector
  // instruction at now=0 is charged those 128 cycles once — not
  // 128+160+192+224 as per-sector charging would.
  stats = {};
  std::vector<std::uint64_t> second{100, 101, 102, 103};
  mem.Access(0, second, false, 0, stats);
  EXPECT_EQ(stats.l2_queue_cycles, 128u);
}

TEST(MemorySystemQueue, PureL1HitInstructionChargesNothing) {
  DeviceSpec spec = Spec();
  MemorySystem mem(spec);
  LaunchStats stats;
  std::vector<std::uint64_t> sectors{5};
  mem.Access(0, sectors, false, 0, stats);  // warm L1
  // Build L2-port backlog with a burst from another SM.
  std::vector<std::uint64_t> burst;
  for (std::uint64_t s = 1000; s < 1200; ++s) burst.push_back(s);
  mem.Access(1, burst, false, 0, stats);
  // An L1-hitting load never reaches the L2 port or DRAM: no queue charge
  // regardless of the backlog behind it.
  stats = {};
  const std::uint64_t t = mem.Access(0, sectors, false, 0, stats);
  EXPECT_EQ(stats.l2_queue_cycles, 0u);
  EXPECT_EQ(stats.dram_queue_cycles, 0u);
  EXPECT_EQ(t, std::uint64_t(spec.l1_latency));
}

// --- Fixed-point cycle arithmetic (float-drift regression) ------------------

TEST(MemorySystemFixedPoint, CompletionExactlyLinearInStreamLength) {
  // Service time 32/3 cycles per sector is not binary-representable: the
  // old double-typed busy-until cursors accumulated rounding that made the
  // per-sector cost drift with stream length (and the uint64_t conversion
  // truncated the drifted value toward zero). The fixed-point cursors
  // accumulate exactly, so completion is an exact linear function of the
  // sector count at EVERY length.
  DeviceSpec spec = Spec();
  spec.dram_channels = 1;
  spec.dram_banks_per_channel = 1;
  spec.dram_bytes_per_cycle = 3.0;
  spec.dram_row_miss_penalty = 0;  // keep the expected completion closed-form
  const std::uint64_t service_fp = std::uint64_t(
      std::llround(32.0 * double(MemorySystem::kFpOne) / 3.0));
  for (const std::uint64_t n :
       {std::uint64_t(1), std::uint64_t(1000), std::uint64_t(100000)}) {
    MemorySystem mem(spec);
    LaunchStats stats;
    std::vector<std::uint64_t> sectors;
    sectors.reserve(n);
    // Consecutive sectors: one open row per 32 sectors, deterministic mix
    // of row hits and misses; the final completion is the channel cursor
    // plus the last sector's latency.
    for (std::uint64_t s = 0; s < n; ++s) sectors.push_back(s);
    const std::uint64_t done = mem.Access(0, sectors, false, 0, stats);
    const std::uint64_t busy = (n * service_fp) >> MemorySystem::kFpBits;
    EXPECT_EQ(done, busy + spec.dram_latency + spec.l2_latency) << "n=" << n;
  }
}

TEST(MemorySystemFixedPoint, ChunkingInvariance) {
  // Issuing one long stream as a single instruction or as many short
  // instructions at the same instant must land the channel cursors in the
  // same place: the backlog a FOLLOWING instruction observes is identical.
  DeviceSpec spec = Spec();
  spec.dram_bytes_per_cycle = 3.0;  // non-representable service
  auto run = [&](std::size_t chunk) {
    MemorySystem mem(spec);
    LaunchStats stats;
    std::vector<std::uint64_t> sectors;
    for (std::uint64_t s = 0; s < 4096; ++s) sectors.push_back(s * 7);
    for (std::size_t i = 0; i < sectors.size(); i += chunk) {
      const std::size_t len = std::min(chunk, sectors.size() - i);
      mem.Access(0, std::span<const std::uint64_t>(&sectors[i], len), false,
                 0, stats);
    }
    // Probe instruction: its completion exposes the accumulated cursor.
    LaunchStats probe_stats;
    std::vector<std::uint64_t> probe{1u << 20};
    return mem.Access(1, probe, false, 0, probe_stats);
  };
  const std::uint64_t whole = run(4096);
  EXPECT_EQ(run(1), whole);
  EXPECT_EQ(run(3), whole);
  EXPECT_EQ(run(64), whole);
}

TEST(MemorySystem, StoresWriteThroughL1) {
  DeviceSpec spec = Spec();
  MemorySystem mem(spec);
  LaunchStats stats;
  std::vector<std::uint64_t> sectors{7};
  mem.Access(0, sectors, true, 0, stats);   // store: misses, fills
  stats = {};
  mem.Access(0, sectors, true, 0, stats);   // store again: L1 hit but still L2 trip
  EXPECT_EQ(stats.l1_hits, 1u);
  EXPECT_EQ(stats.l2_hits, 1u);
}

}  // namespace
}  // namespace dgc::sim

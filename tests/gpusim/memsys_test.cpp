#include "gpusim/memsys.h"

#include <gtest/gtest.h>

namespace dgc::sim {
namespace {

DeviceSpec Spec() { return DeviceSpec::TestDevice(); }

TEST(MemorySystem, L1HitIsFast) {
  DeviceSpec spec = Spec();
  MemorySystem mem(spec);
  LaunchStats stats;
  std::vector<std::uint64_t> sectors{100};
  const std::uint64_t cold = mem.Access(0, sectors, false, 0, stats);
  const std::uint64_t warm = mem.Access(0, sectors, false, cold, stats) - cold;
  EXPECT_GT(cold, std::uint64_t(spec.l1_latency));
  EXPECT_EQ(warm, std::uint64_t(spec.l1_latency));
  EXPECT_EQ(stats.l1_hits, 1u);
  EXPECT_EQ(stats.l1_misses, 1u);
}

TEST(MemorySystem, L2SharedAcrossSms) {
  DeviceSpec spec = Spec();
  MemorySystem mem(spec);
  LaunchStats stats;
  std::vector<std::uint64_t> sectors{55};
  mem.Access(0, sectors, false, 0, stats);  // SM0 pulls into L1+L2
  stats = {};
  mem.Access(1, sectors, false, 0, stats);  // SM1 misses L1, hits L2
  EXPECT_EQ(stats.l1_misses, 1u);
  EXPECT_EQ(stats.l2_hits, 1u);
  EXPECT_EQ(stats.dram_bytes, 0u);
}

TEST(MemorySystem, DramBytesCharged) {
  DeviceSpec spec = Spec();
  MemorySystem mem(spec);
  LaunchStats stats;
  std::vector<std::uint64_t> sectors;
  for (std::uint64_t s = 0; s < 100; ++s) sectors.push_back(s * 977 + 5);
  mem.Access(0, sectors, false, 0, stats);
  EXPECT_EQ(stats.dram_bytes, 100ull * spec.sector_bytes);
}

TEST(MemorySystem, BandwidthContentionQueues) {
  // Two equal bursts issued at the same instant must finish later than one
  // burst alone: they share the DRAM channels.
  DeviceSpec spec = Spec();
  LaunchStats stats;
  std::vector<std::uint64_t> burst_a, burst_b;
  for (std::uint64_t s = 0; s < 200; ++s) {
    burst_a.push_back(s);
    burst_b.push_back(100000 + s);
  }
  MemorySystem solo(spec);
  const std::uint64_t t_solo = solo.Access(0, burst_a, false, 0, stats);

  MemorySystem both(spec);
  both.Access(0, burst_a, false, 0, stats);
  const std::uint64_t t_both = both.Access(1, burst_b, false, 0, stats);
  EXPECT_GT(t_both, t_solo);
}

TEST(MemorySystem, RowBufferLocalityMatters) {
  DeviceSpec spec = Spec();
  LaunchStats seq_stats, scat_stats;
  // Sequential sectors: mostly row hits. Scattered: mostly row misses.
  std::vector<std::uint64_t> seq, scattered;
  for (std::uint64_t i = 0; i < 256; ++i) {
    seq.push_back(i);
    scattered.push_back(i * 8191);
  }
  MemorySystem a(spec);
  a.Access(0, seq, false, 0, seq_stats);
  MemorySystem b(spec);
  b.Access(0, scattered, false, 0, scat_stats);
  EXPECT_GT(seq_stats.dram_row_hits, scat_stats.dram_row_hits);
  EXPECT_LT(seq_stats.dram_row_misses, scat_stats.dram_row_misses);
}

TEST(MemorySystem, SharedConflictFreeIsOneTrip) {
  DeviceSpec spec = Spec();
  MemorySystem mem(spec);
  LaunchStats stats;
  std::vector<std::uint64_t> addrs;
  for (std::uint64_t i = 0; i < 32; ++i) addrs.push_back(i * 4);  // 32 banks
  EXPECT_EQ(mem.AccessShared(addrs, 10, stats), 10 + spec.smem_latency);
  EXPECT_EQ(stats.smem_bank_conflicts, 0u);
}

TEST(MemorySystem, SharedBankConflictSerializes) {
  DeviceSpec spec = Spec();
  MemorySystem mem(spec);
  LaunchStats stats;
  std::vector<std::uint64_t> addrs;
  // All 32 lanes hit bank 0 with distinct words: 32-way conflict.
  for (std::uint64_t i = 0; i < 32; ++i) addrs.push_back(i * 4 * spec.smem_banks);
  EXPECT_EQ(mem.AccessShared(addrs, 0, stats),
            std::uint64_t(spec.smem_latency) + 31);
  EXPECT_EQ(stats.smem_bank_conflicts, 31u);
}

TEST(MemorySystem, SharedBroadcastNoConflict) {
  DeviceSpec spec = Spec();
  MemorySystem mem(spec);
  LaunchStats stats;
  std::vector<std::uint64_t> addrs(32, 64);  // same word: broadcast
  EXPECT_EQ(mem.AccessShared(addrs, 0, stats), std::uint64_t(spec.smem_latency));
}

TEST(MemorySystem, ResetClearsState) {
  DeviceSpec spec = Spec();
  MemorySystem mem(spec);
  LaunchStats stats;
  std::vector<std::uint64_t> sectors{42};
  mem.Access(0, sectors, false, 0, stats);
  mem.Reset();
  stats = {};
  mem.Access(0, sectors, false, 0, stats);
  EXPECT_EQ(stats.l1_misses, 1u);  // cold again
}

TEST(MemorySystem, StoresWriteThroughL1) {
  DeviceSpec spec = Spec();
  MemorySystem mem(spec);
  LaunchStats stats;
  std::vector<std::uint64_t> sectors{7};
  mem.Access(0, sectors, true, 0, stats);   // store: misses, fills
  stats = {};
  mem.Access(0, sectors, true, 0, stats);   // store again: L1 hit but still L2 trip
  EXPECT_EQ(stats.l1_hits, 1u);
  EXPECT_EQ(stats.l2_hits, 1u);
}

}  // namespace
}  // namespace dgc::sim

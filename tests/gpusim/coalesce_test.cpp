#include "gpusim/coalesce.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/rng.h"

namespace dgc::sim {
namespace {

constexpr std::uint32_t kSector = 32;

std::vector<std::uint64_t> Sectors(std::vector<LaneAccess> accesses) {
  std::vector<std::uint64_t> out;
  CoalesceSectors(accesses, kSector, out);
  return out;
}

TEST(Coalesce, ContiguousDoublesAreFullyCoalesced) {
  // 32 lanes × 8-byte loads, consecutive: 256 bytes → 8 sectors.
  std::vector<LaneAccess> accesses;
  for (int i = 0; i < 32; ++i) {
    accesses.push_back({0x10000 + std::uint64_t(i) * 8, 8});
  }
  EXPECT_EQ(Sectors(accesses).size(), 8u);
  EXPECT_EQ(IdealSectorCount(accesses, kSector), 8u);
}

TEST(Coalesce, StridedAccessesExplode) {
  // 32 lanes, stride 128 bytes: each lane in its own sector.
  std::vector<LaneAccess> accesses;
  for (int i = 0; i < 32; ++i) {
    accesses.push_back({0x10000 + std::uint64_t(i) * 128, 8});
  }
  EXPECT_EQ(Sectors(accesses).size(), 32u);
  EXPECT_EQ(IdealSectorCount(accesses, kSector), 8u);
}

TEST(Coalesce, SameAddressBroadcast) {
  std::vector<LaneAccess> accesses(32, LaneAccess{0x10008, 4});
  EXPECT_EQ(Sectors(accesses).size(), 1u);
}

TEST(Coalesce, StraddlingAccessCoversTwoSectors) {
  // 8-byte access at sector_end-4 touches two sectors.
  std::vector<LaneAccess> accesses{{kSector - 4, 8}};
  EXPECT_EQ(Sectors(accesses).size(), 2u);
}

TEST(Coalesce, InactiveLanesIgnored) {
  std::vector<LaneAccess> accesses(32, LaneAccess{0, 0});
  accesses[5] = {0x20000, 8};
  EXPECT_EQ(Sectors(accesses).size(), 1u);
  EXPECT_EQ(IdealSectorCount(accesses, kSector), 1u);
}

TEST(Coalesce, EmptyInput) {
  EXPECT_TRUE(Sectors({}).empty());
  EXPECT_EQ(IdealSectorCount({}, kSector), 0u);
}

TEST(Coalesce, OutputSortedUnique) {
  std::vector<LaneAccess> accesses{
      {0x30000, 8}, {0x10000, 8}, {0x30000, 8}, {0x20000, 8}};
  auto sectors = Sectors(accesses);
  EXPECT_TRUE(std::is_sorted(sectors.begin(), sectors.end()));
  EXPECT_EQ(std::adjacent_find(sectors.begin(), sectors.end()), sectors.end());
  EXPECT_EQ(sectors.size(), 3u);
}

// Property: permutation invariance — the sector set does not depend on the
// lane order of the accesses.
TEST(CoalesceProperty, PermutationInvariance) {
  Rng rng(314);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<LaneAccess> accesses;
    for (int i = 0; i < 32; ++i) {
      accesses.push_back(
          {0x10000 + rng.NextBounded(4096), 1u << rng.NextBounded(4)});
    }
    auto base = Sectors(accesses);
    // Fisher-Yates shuffle with our deterministic RNG.
    for (std::size_t i = accesses.size(); i > 1; --i) {
      std::swap(accesses[i - 1], accesses[rng.NextBounded(i)]);
    }
    EXPECT_EQ(Sectors(accesses), base);
  }
}

// Property: bounds — sector count is between the ideal count and the total
// number of (access × covered-sector) pairs.
TEST(CoalesceProperty, SectorCountBounds) {
  Rng rng(2718);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<LaneAccess> accesses;
    std::uint64_t upper = 0;
    for (int i = 0; i < 32; ++i) {
      const std::uint32_t bytes = 1u << rng.NextBounded(4);
      const std::uint64_t addr = 0x10000 + rng.NextBounded(1 << 16);
      accesses.push_back({addr, bytes});
      upper += (addr + bytes - 1) / kSector - addr / kSector + 1;
    }
    const auto sectors = Sectors(accesses);
    EXPECT_GE(sectors.size(), IdealSectorCount(accesses, kSector) > 32
                                  ? 0u  // ideal can exceed actual only via overlap
                                  : 0u);
    EXPECT_LE(sectors.size(), upper);
    EXPECT_GE(sectors.size(), 1u);
  }
}

// --- Fast path == scalar reference ------------------------------------------
//
// CoalesceSectors carries shape-dependent shortcuts (direct sector-run for
// unit-stride warps, sort elision for pre-sorted patterns); its contract
// is bit-identical output to CoalesceSectorsScalar for EVERY input.

std::vector<std::uint64_t> ScalarSectors(
    const std::vector<LaneAccess>& accesses) {
  std::vector<std::uint64_t> out;
  CoalesceSectorsScalar(accesses, kSector, out);
  return out;
}

TEST(CoalesceFastPath, MatchesScalarOnCanonicalShapes) {
  const std::vector<std::vector<LaneAccess>> shapes = {
      {},                                   // empty
      {{0x1000, 8}},                        // single lane
      std::vector<LaneAccess>(32, LaneAccess{0x2000, 4}),  // broadcast
      std::vector<LaneAccess>(32, LaneAccess{0, 0}),       // all inactive
  };
  for (const auto& accesses : shapes) {
    EXPECT_EQ(Sectors(accesses), ScalarSectors(accesses));
  }
  // Full-warp unit stride at several widths and (mis)alignments — the
  // direct-run fast path.
  for (const std::uint32_t bytes : {1u, 4u, 8u, 16u, 32u, 48u}) {
    for (const std::uint64_t base : {0x10000ull, 0x10003ull, 0x1001cull}) {
      std::vector<LaneAccess> accesses;
      for (int i = 0; i < 32; ++i) {
        accesses.push_back({base + std::uint64_t(i) * bytes, bytes});
      }
      EXPECT_EQ(Sectors(accesses), ScalarSectors(accesses))
          << "bytes=" << bytes << " base=" << base;
    }
  }
}

TEST(CoalesceFastPathProperty, MatchesScalarOnRandomizedPatterns) {
  Rng rng(424242);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<LaneAccess> accesses;
    const std::uint32_t lanes = 1 + rng.NextBounded(32);
    const std::uint32_t mode = rng.NextBounded(4);
    for (std::uint32_t i = 0; i < lanes; ++i) {
      std::uint32_t bytes = 1u << rng.NextBounded(6);
      std::uint64_t addr = 0;
      switch (mode) {
        case 0:  // strided (ascending, possibly gappy)
          addr = 0x40000 + std::uint64_t(i) * (8 + rng.NextBounded(256));
          break;
        case 1:  // overlapping / duplicated
          addr = 0x40000 + rng.NextBounded(64);
          break;
        case 2:  // misaligned scattered
          addr = 0x40000 + rng.NextBounded(1 << 18) + rng.NextBounded(31);
          break;
        default:  // mixed with inactive (zero-byte) lanes
          addr = 0x40000 + rng.NextBounded(4096);
          if (rng.NextBounded(3) == 0) bytes = 0;
          break;
      }
      accesses.push_back({addr, bytes});
    }
    EXPECT_EQ(Sectors(accesses), ScalarSectors(accesses))
        << "trial=" << trial << " mode=" << mode;
  }
}

TEST(CoalesceFastPath, ToggleRoutesThroughScalar) {
  std::vector<LaneAccess> accesses;
  for (int i = 0; i < 32; ++i) {
    accesses.push_back({0x10000 + std::uint64_t(i) * 8, 8});
  }
  ASSERT_TRUE(CoalesceFastPathEnabled());
  const bool was = SetCoalesceFastPath(false);
  EXPECT_TRUE(was);
  EXPECT_FALSE(CoalesceFastPathEnabled());
  EXPECT_EQ(Sectors(accesses), ScalarSectors(accesses));
  SetCoalesceFastPath(true);
}

// Property: merging two warps' accesses never yields fewer sectors than the
// union of their separate coalescing results would suggest (sub-additivity).
TEST(CoalesceProperty, SubAdditivity) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<LaneAccess> a, b, both;
    for (int i = 0; i < 16; ++i) {
      a.push_back({0x10000 + rng.NextBounded(2048), 8});
      b.push_back({0x10000 + rng.NextBounded(2048), 8});
    }
    both = a;
    both.insert(both.end(), b.begin(), b.end());
    EXPECT_LE(Sectors(both).size(), Sectors(a).size() + Sectors(b).size());
    EXPECT_GE(Sectors(both).size(),
              std::max(Sectors(a).size(), Sectors(b).size()));
  }
}

}  // namespace
}  // namespace dgc::sim

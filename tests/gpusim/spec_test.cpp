#include "gpusim/device_spec.h"

#include <gtest/gtest.h>

namespace dgc::sim {
namespace {

TEST(DeviceSpec, PresetsAreValid) {
  EXPECT_EQ(DeviceSpec::A100_40GB().Validate(), "");
  EXPECT_EQ(DeviceSpec::A100_40GB(512).Validate(), "");
  EXPECT_EQ(DeviceSpec::V100_16GB().Validate(), "");
  EXPECT_EQ(DeviceSpec::TestDevice().Validate(), "");
}

TEST(DeviceSpec, A100Shape) {
  const DeviceSpec s = DeviceSpec::A100_40GB(64);
  EXPECT_EQ(s.num_sms, 108);
  EXPECT_EQ(s.max_threads_per_block, 1024);
  EXPECT_EQ(s.global_memory_bytes, 40 * kGiB / 64);
  EXPECT_NEAR(s.clock_ghz, 1.41, 1e-9);
}

TEST(DeviceSpec, MemoryScaleShrinksCachesProportionally) {
  const DeviceSpec full = DeviceSpec::A100_40GB(1);
  const DeviceSpec scaled = DeviceSpec::A100_40GB(512);
  EXPECT_EQ(full.l2_bytes, 40 * kMiB);
  EXPECT_EQ(full.l1_bytes, 128 * kKiB);
  // Scaled: 40MiB/512 = 80KiB (above floor); L1 hits its 4KiB floor.
  EXPECT_EQ(scaled.l2_bytes, 40 * kMiB / 512);
  EXPECT_EQ(scaled.l1_bytes, 4 * kKiB);
  // Timing constants are NOT scaled.
  EXPECT_EQ(scaled.dram_latency, full.dram_latency);
  EXPECT_DOUBLE_EQ(scaled.dram_bytes_per_cycle, full.dram_bytes_per_cycle);
}

TEST(DeviceSpec, ValidateCatchesBadConfigs) {
  DeviceSpec s = DeviceSpec::TestDevice();
  s.num_sms = 0;
  EXPECT_NE(s.Validate().find("num_sms"), std::string::npos);

  s = DeviceSpec::TestDevice();
  s.warp_size = 33;  // not a power of two
  EXPECT_NE(s.Validate().find("warp_size"), std::string::npos);

  s = DeviceSpec::TestDevice();
  s.sector_bytes = 48;
  EXPECT_FALSE(s.Validate().empty());

  s = DeviceSpec::TestDevice();
  s.dram_bytes_per_cycle = 0;
  EXPECT_NE(s.Validate().find("bandwidth"), std::string::npos);

  s = DeviceSpec::TestDevice();
  s.dram_banks_per_channel = 0;
  EXPECT_FALSE(s.Validate().empty());
}

TEST(DeviceSpec, WarpsPerBlock) {
  const DeviceSpec s = DeviceSpec::TestDevice();
  EXPECT_EQ(s.WarpsPerBlock(1), 1);
  EXPECT_EQ(s.WarpsPerBlock(32), 1);
  EXPECT_EQ(s.WarpsPerBlock(33), 2);
  EXPECT_EQ(s.WarpsPerBlock(1024), 32);
}

TEST(DeviceSpec, CyclesToSeconds) {
  DeviceSpec s;
  s.clock_ghz = 2.0;
  EXPECT_DOUBLE_EQ(s.CyclesToSeconds(2'000'000'000ull), 1.0);
}

TEST(DeviceSpec, V100IsSmallerThanA100) {
  const DeviceSpec a = DeviceSpec::A100_40GB(64);
  const DeviceSpec v = DeviceSpec::V100_16GB(64);
  EXPECT_LT(v.num_sms, a.num_sms);
  EXPECT_LT(v.dram_bytes_per_cycle, a.dram_bytes_per_cycle);
  EXPECT_LT(v.global_memory_bytes, a.global_memory_bytes);
}

}  // namespace
}  // namespace dgc::sim

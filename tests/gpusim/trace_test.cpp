#include "gpusim/trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <set>

#include "gpusim/ctx.h"
#include "gpusim/device.h"
#include "support/json.h"

namespace dgc::sim {
namespace {

LaunchResult RunTraced(Trace* trace) {
  Device dev(DeviceSpec::TestDevice());
  auto buf = *dev.Malloc(256 * sizeof(double));
  auto p = buf.Typed<double>();
  LaunchConfig cfg{.grid = {2, 1, 1}, .block = {64, 1, 1}, .trace = trace};
  auto r = dev.Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    const std::uint32_t gid = ctx.block_id * ctx.block_threads + ctx.thread_id;
    const double v = co_await ctx.Load(p + (gid % 256));
    co_await ctx.Work(25);
    co_await ctx.Store(p + (gid % 256), v + 1);
    co_await ctx.SyncThreads();
  });
  DGC_CHECK(r.ok());
  return *r;
}

TEST(Trace, RecordsEveryIssuedGroup) {
  Trace trace;
  const LaunchResult r = RunTraced(&trace);
  // Sync groups have no duration and are not traced; everything else is.
  EXPECT_LT(trace.events().size(), r.stats.warp_instructions);
  EXPECT_EQ(trace.events().size(), r.stats.load_instructions +
                                       r.stats.compute_instructions +
                                       r.stats.store_instructions);
  std::uint64_t loads = 0, works = 0, stores = 0;
  for (const TraceEvent& e : trace.events()) {
    EXPECT_LE(e.issue, e.complete);
    EXPECT_GT(e.lanes, 0u);
    EXPECT_LT(e.block, 2u);
    switch (e.kind) {
      case DeviceOp::Kind::kLoad: ++loads; break;
      case DeviceOp::Kind::kWork: ++works; break;
      case DeviceOp::Kind::kStore: ++stores; break;
      default: break;
    }
  }
  EXPECT_EQ(loads, r.stats.load_instructions);
  EXPECT_EQ(works, r.stats.compute_instructions);
  EXPECT_EQ(stores, r.stats.store_instructions);
}

TEST(Trace, MemoryEventsCarrySectors) {
  Trace trace;
  RunTraced(&trace);
  bool saw_mem_with_sectors = false;
  for (const TraceEvent& e : trace.events()) {
    if (e.kind == DeviceOp::Kind::kLoad && e.sectors > 0) {
      saw_mem_with_sectors = true;
    }
    if (e.kind == DeviceOp::Kind::kWork) EXPECT_EQ(e.sectors, 0u);
  }
  EXPECT_TRUE(saw_mem_with_sectors);
}

TEST(Trace, DisabledByDefaultCostsNothing) {
  // Same kernel without a sink: timing identical (tracing is observational).
  Trace trace;
  const auto traced = RunTraced(&trace).stats.elapsed_cycles;
  const auto plain = RunTraced(nullptr).stats.elapsed_cycles;
  EXPECT_EQ(traced, plain);
}

TEST(Trace, CapacityBoundsAndDropCounting) {
  Trace tiny(4);
  RunTraced(&tiny);
  EXPECT_EQ(tiny.events().size(), 4u);
  EXPECT_GT(tiny.dropped(), 0u);
  tiny.Clear();
  EXPECT_TRUE(tiny.events().empty());
  EXPECT_EQ(tiny.dropped(), 0u);
}

TEST(Trace, ChromeJsonIsWellFormedEnough) {
  Trace trace;
  RunTraced(&trace);
  const std::string json = trace.ToChromeJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"load")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"work")"), std::string::npos);
  // Events and commas balance: N events → N-1 commas at line ends.
  std::size_t events = 0, commas = 0;
  for (std::size_t i = 0; i + 1 < json.size(); ++i) {
    if (json[i] == '}' && json[i + 1] == ',') ++commas;
    if (json.compare(i, 9, R"({"name":")") == 0) ++events;
  }
  EXPECT_EQ(events, trace.events().size());
  EXPECT_EQ(commas, events - 1);
}

TEST(Trace, WriteChromeJsonRoundTrip) {
  Trace trace;
  RunTraced(&trace);
  const std::string path = testing::TempDir() + "/dgc_trace_test.json";
  ASSERT_TRUE(trace.WriteChromeJson(path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, trace.ToChromeJson());
  std::remove(path.c_str());
  EXPECT_FALSE(trace.WriteChromeJson("/nonexistent/t.json").ok());
}

TEST(Trace, ChromeJsonIsStrictlyValid) {
  Trace trace;
  RunTraced(&trace);
  const std::string json = trace.ToChromeJson();
  const Status valid = dgc::JsonValidate(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  // Field order is part of the export contract (diffs stay readable).
  EXPECT_NE(
      json.find(R"("ph":"X","ts":)"), std::string::npos);
  const std::size_t name = json.find("\"name\":");
  const std::size_t args = json.find("\"args\":{\"wave\":");
  ASSERT_NE(name, std::string::npos);
  ASSERT_NE(args, std::string::npos);
  EXPECT_LT(name, args);
  // An empty trace is still a valid (empty-array) document.
  EXPECT_TRUE(dgc::JsonValidate(Trace().ToChromeJson()).ok());
}

TEST(Trace, WavesTagEventsAndSeparateRows) {
  Trace trace;
  RunTraced(&trace);
  EXPECT_EQ(trace.current_wave(), 0u);
  for (const TraceEvent& e : trace.events()) EXPECT_EQ(e.wave, 0u);
  const std::size_t wave0_events = trace.events().size();

  trace.BeginWave();  // what the ensemble loader does before a retry wave
  EXPECT_EQ(trace.current_wave(), 1u);
  RunTraced(&trace);
  ASSERT_GT(trace.events().size(), wave0_events);
  for (std::size_t i = wave0_events; i < trace.events().size(); ++i) {
    EXPECT_EQ(trace.events()[i].wave, 1u);
  }

  // Same block/warp, different wave → different Perfetto row (tid).
  const std::string json = trace.ToChromeJson();
  EXPECT_TRUE(dgc::JsonValidate(json).ok());
  EXPECT_NE(json.find(R"("tid":0,"args":{"wave":0,"block":0,"warp":0)"),
            std::string::npos);
  EXPECT_NE(json.find(R"("tid":1000000,"args":{"wave":1,"block":0,"warp":0)"),
            std::string::npos);

  trace.Clear();
  EXPECT_EQ(trace.current_wave(), 0u);
}

TEST(Trace, KindNamesAreDistinct) {
  std::set<std::string_view> names;
  for (DeviceOp::Kind k :
       {DeviceOp::Kind::kLoad, DeviceOp::Kind::kLoadBatch,
        DeviceOp::Kind::kStore, DeviceOp::Kind::kStoreBatch,
        DeviceOp::Kind::kAtomic, DeviceOp::Kind::kWork, DeviceOp::Kind::kSync,
        DeviceOp::Kind::kExternal}) {
    names.insert(TraceKindName(k));
  }
  EXPECT_EQ(names.size(), 8u);
}

}  // namespace
}  // namespace dgc::sim

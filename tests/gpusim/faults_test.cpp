// Trap containment, watchdog budgets, and deterministic fault injection at
// the simulator level: traps retire the faulting lane (recorded, counted)
// while the launch itself completes; deadlock is a launch *outcome*, not a
// process error; FaultPlan specs parse, round-trip, and fire exactly where
// they say.
#include <gtest/gtest.h>

#include <memory>

#include "gpusim/barrier.h"
#include "gpusim/block.h"
#include "gpusim/ctx.h"
#include "gpusim/device.h"
#include "gpusim/faults.h"

namespace dgc::sim {
namespace {

std::unique_ptr<Device> MakeDevice() {
  return std::make_unique<Device>(DeviceSpec::TestDevice());
}

// --- FaultPlan grammar -------------------------------------------------------

TEST(FaultPlan, ParsesEveryClauseAndRoundTrips) {
  auto plan = FaultPlan::Parse(
      "seed@7; malloc-fail@3,5; rpc-fail@p25; trap@b1.w2.c5000; slow@b0.x4");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->seed, 7u);
  ASSERT_EQ(plan->malloc_fail.size(), 2u);
  EXPECT_EQ(plan->malloc_fail[0], 3u);
  EXPECT_EQ(plan->malloc_fail[1], 5u);
  EXPECT_DOUBLE_EQ(plan->rpc_fail_p, 0.25);
  ASSERT_EQ(plan->traps.size(), 1u);
  EXPECT_EQ(plan->traps[0].block, 1u);
  EXPECT_EQ(plan->traps[0].warp, 2u);
  EXPECT_EQ(plan->traps[0].cycle, 5000u);
  ASSERT_EQ(plan->slowdowns.size(), 1u);
  EXPECT_EQ(plan->slowdowns[0].factor, 4u);
  EXPECT_FALSE(plan->empty());

  // Canonical form parses back to the same plan.
  auto again = FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->ToString(), plan->ToString());
}

TEST(FaultPlan, EmptySpecYieldsEmptyPlan) {
  auto plan = FaultPlan::Parse("");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->empty());
  EXPECT_EQ(plan->ToString(), "");
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultPlan::Parse("bogus@1").ok());
  EXPECT_FALSE(FaultPlan::Parse("malloc-fail").ok());
  EXPECT_FALSE(FaultPlan::Parse("malloc-fail@zero").ok());
  EXPECT_FALSE(FaultPlan::Parse("trap@b0.w0").ok());
  EXPECT_FALSE(FaultPlan::Parse("trap@w0.b0.c0").ok());
  EXPECT_FALSE(FaultPlan::Parse("slow@b0").ok());
  EXPECT_FALSE(FaultPlan::Parse("rpc-fail@p200").ok());
}

TEST(FaultPlan, CountBasedMallocFailuresFireOnceEach) {
  auto plan = *FaultPlan::Parse("malloc-fail@2,4");
  EXPECT_FALSE(plan.NextMallocFails());  // call 1
  EXPECT_TRUE(plan.NextMallocFails());   // call 2
  EXPECT_FALSE(plan.NextMallocFails());  // call 3
  EXPECT_TRUE(plan.NextMallocFails());   // call 4
  EXPECT_FALSE(plan.NextMallocFails());  // call 5: the plan is spent
}

TEST(FaultPlan, ProbabilisticDecisionsAreSeedDeterministic) {
  auto a = *FaultPlan::Parse("seed@42;rpc-fail@p50");
  auto b = *FaultPlan::Parse("seed@42;rpc-fail@p50");
  int fails = 0;
  for (int i = 0; i < 64; ++i) {
    const bool fa = a.NextRpcFails();
    EXPECT_EQ(fa, b.NextRpcFails()) << i;
    fails += fa ? 1 : 0;
  }
  EXPECT_GT(fails, 0);   // p=50% over 64 draws: statistically certain
  EXPECT_LT(fails, 64);
}

// --- Trap containment --------------------------------------------------------

TEST(Faults, SharedMemoryExhaustionTrapsLaneNotProcess) {
  auto dev = MakeDevice();
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {32, 1, 1},
                   .shared_bytes = 64, .name = "smem-oom"};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    co_await ctx.Work(1);
    if (ctx.thread_id == 0) {
      ctx.block->SharedAlloc<double>(1024);  // far beyond the reservation
    }
    co_await ctx.Work(1);
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->outcome, LaunchOutcome::kCompleted);
  EXPECT_EQ(result->failure_count, 1u);
  EXPECT_EQ(result->stats.lane_traps, 1u);
  ASSERT_FALSE(result->failures.empty());
  EXPECT_NE(result->failures[0].find("shared memory"), std::string::npos);
}

TEST(Faults, DeviceCodeCanContainASharedMemoryTrap) {
  auto dev = MakeDevice();
  auto buf = *dev->Malloc(sizeof(std::uint32_t));
  auto p = buf.Typed<std::uint32_t>();
  *p = 0;
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {1, 1, 1}, .shared_bytes = 16};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    bool contained = false;  // co_await is illegal inside a catch handler
    try {
      ctx.block->SharedAlloc<double>(64);
    } catch (const DeviceTrap& trap) {
      EXPECT_EQ(trap.kind(), TrapKind::kOOM);
      contained = true;
    }
    if (contained) {
      co_await ctx.Store(p, std::uint32_t(1));  // recovered; keep running
    }
  });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());  // contained: no lane failure recorded
  EXPECT_EQ(result->failure_count, 0u);
  EXPECT_EQ(*p, 1u);
}

TEST(Faults, InjectedTrapKillsOnlyTheTargetWarp) {
  auto dev = MakeDevice();
  auto plan = *FaultPlan::Parse("trap@b0.w1.c1");
  auto buf = *dev->Malloc(64 * sizeof(std::uint32_t));
  auto p = buf.Typed<std::uint32_t>();
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {64, 1, 1}, .name = "inject"};
  cfg.faults = &plan;
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    co_await ctx.Work(100);
    co_await ctx.Store(p + ctx.thread_id, std::uint32_t(1));
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->outcome, LaunchOutcome::kCompleted);
  // Warp 1 = threads 32..63 all trap; warp 0 completes untouched.
  EXPECT_EQ(result->failure_count, 32u);
  EXPECT_EQ(result->stats.lane_traps, 32u);
  for (std::uint32_t t = 0; t < 32; ++t) EXPECT_EQ(p[t], 1u) << t;
  for (std::uint32_t t = 32; t < 64; ++t) EXPECT_EQ(p[t], 0u) << t;
  ASSERT_FALSE(result->failures.empty());
  EXPECT_NE(result->failures[0].find("injected"), std::string::npos);
}

TEST(Faults, SlowdownScalesComputeCycles) {
  auto run = [](FaultPlan* plan) {
    auto dev = MakeDevice();
    LaunchConfig cfg{.grid = {1, 1, 1}, .block = {32, 1, 1}, .name = "slow"};
    cfg.faults = plan;
    auto r = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
      for (int i = 0; i < 50; ++i) co_await ctx.Work(100);
    });
    return (*r).cycles;
  };
  const std::uint64_t base = run(nullptr);
  auto plan = *FaultPlan::Parse("slow@b0.x4");
  const std::uint64_t slowed = run(&plan);
  // Compute dominates this kernel, so a 4x work multiplier should show as
  // (nearly) 4x elapsed cycles; launch overhead keeps it below exactly 4x.
  EXPECT_GT(slowed, 3 * base);
}

// --- Watchdog ----------------------------------------------------------------

TEST(Faults, LaunchWatchdogRetiresSpinningLanes) {
  auto dev = MakeDevice();
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {32, 1, 1}, .name = "spin"};
  cfg.watchdog_cycles = 50000;
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    while (true) co_await ctx.Work(100);  // never terminates on its own
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->outcome, LaunchOutcome::kCompleted);  // drained, not hung
  EXPECT_FALSE(result->ok());
  EXPECT_EQ(result->failure_count, 32u);
  EXPECT_EQ(result->stats.watchdog_traps, 32u);
  ASSERT_FALSE(result->failures.empty());
  EXPECT_NE(result->failures[0].find("watchdog"), std::string::npos);
  // The launch ends promptly after the budget, not at some far horizon.
  EXPECT_LT(result->stats.elapsed_cycles, 2 * cfg.watchdog_cycles);
}

TEST(Faults, WatchdogDoesNotFireUnderBudget) {
  auto dev = MakeDevice();
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {32, 1, 1}};
  cfg.watchdog_cycles = DeviceSpec::TestDevice().DefaultWatchdogCycles();
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    for (int i = 0; i < 10; ++i) co_await ctx.Work(100);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->stats.watchdog_traps, 0u);
}

// --- Deadlock is an outcome, not an error ------------------------------------

TEST(Faults, DeadlockIsRecordedAsOutcome) {
  auto dev = MakeDevice();
  Barrier never("never-releases");
  never.AddParticipants(2);  // only one lane will ever arrive
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {2, 1, 1}, .name = "deadlock"};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    if (ctx.thread_id == 0) {
      co_await ctx.SyncOn(&never);  // parked forever
    }
    co_return;  // lane 1 exits without arriving (and is not a member)
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();  // not a Status error
  EXPECT_EQ(result->outcome, LaunchOutcome::kDeadlocked);
  EXPECT_FALSE(result->ok());
  EXPECT_GE(result->failure_count, 1u);
  ASSERT_FALSE(result->failures.empty());
  EXPECT_NE(result->failures[0].find("deadlock"), std::string::npos);
}

}  // namespace
}  // namespace dgc::sim

// Oversubscription stress for the threaded launch engine: more worker
// threads than physical cores, so workers time-slice against each other
// and the commit thread, rounds interleave with forced parking (the
// spin-then-park fallback in SpecTeam::WorkerLoop), and every barrier
// memory-ordering path runs under contention. Labelled `tsan` in
// tests/CMakeLists.txt: the CI thread-sanitizer job runs this suite
// explicitly (`ctest -L tsan`) — a data race in the claim/done/generation
// protocol or in the shard walker surfaces here first.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gpusim/block.h"
#include "gpusim/ctx.h"
#include "gpusim/device.h"
#include "gpusim/spec_team.h"

namespace dgc::sim {
namespace {

TEST(OversubscribeStress, UnevenPartsOnMoreWorkersThanCores) {
  // Force at least 4x the host's cores (min 8 workers) with uneven part
  // costs, so slow parts straggle into the next round's claim window —
  // the regime the acq_rel on next_ exists for.
  const unsigned hw = std::max(std::thread::hardware_concurrency(), 1u);
  const unsigned workers = std::max(4 * hw, 8u);
  constexpr unsigned kParts = 13;
  constexpr int kRounds = 500;
  std::vector<std::atomic<std::uint64_t>> hits(kParts);
  std::atomic<std::uint64_t> sink{0};
  SpecTeam team(
      workers, kParts,
      [&](unsigned part) {
        // Part cost grows with index: parts 0..3 are near-empty while
        // part 12 spins ~4k iterations, guaranteeing stragglers.
        std::uint64_t acc = 0;
        for (unsigned i = 0; i < part * part * 32; ++i) acc += i;
        sink.fetch_add(acc, std::memory_order_relaxed);
        hits[part].fetch_add(1, std::memory_order_relaxed);
      },
      /*clamp_to_hardware=*/false);
  for (int round = 0; round < kRounds; ++round) team.Run();
  for (unsigned p = 0; p < kParts; ++p) {
    EXPECT_EQ(hits[p].load(), std::uint64_t(kRounds)) << "part " << p;
  }
}

TEST(OversubscribeStress, ParkedWorkersRejoinRounds) {
  // Long idle gaps exhaust the workers' spin budget so they park on the
  // condvar; the next Run() must wake every one of them and still count
  // all parts. Oversubscribed, parking is also how stragglers yield.
  const unsigned hw = std::max(std::thread::hardware_concurrency(), 1u);
  const unsigned workers = std::max(2 * hw, 6u);
  constexpr unsigned kParts = 5;
  std::vector<std::atomic<int>> hits(kParts);
  SpecTeam team(
      workers, kParts, [&](unsigned part) { hits[part].fetch_add(1); },
      /*clamp_to_hardware=*/false);
  constexpr int kRounds = 12;
  for (int round = 0; round < kRounds; ++round) {
    team.Run();
    // Past the 2^18-iteration spin budget even on a fast core.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (unsigned p = 0; p < kParts; ++p) {
    EXPECT_EQ(hits[p].load(), kRounds) << "part " << p;
  }
}

TEST(OversubscribeStress, MultiWarpLaunchDeterministicWhenOversubscribed) {
  // The full engine with multi-warp shards at a thread count far past the
  // host's cores: stats, cycles, and memory must match the serial run
  // exactly. (On hosts with few cores SpecTeam spawns fewer — or zero —
  // workers; the walker, shard buckets, and merge barrier still run, so
  // the determinism contract is exercised either way.)
  auto run = [](unsigned launch_threads) {
    Device dev(DeviceSpec::TestDevice());
    const int blocks = 8, threads = 64, n = 1024;
    auto buf = *dev.Malloc(n * sizeof(double));
    auto p = buf.Typed<double>();
    for (int i = 0; i < n; ++i) p[i] = double(i % 7);
    LaunchConfig cfg{.grid = {std::uint32_t(blocks), 1, 1},
                     .block = {std::uint32_t(threads), 1, 1},
                     .shared_bytes = 32,
                     .name = "oversub"};
    cfg.launch_threads = launch_threads;
    cfg.launch_window_cycles = 128;  // short windows = many merge barriers
    auto r = dev.Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
      auto slot = ctx.block->SharedAt<double>(0);
      if (ctx.thread_id == 0) co_await ctx.Store(slot, 0.0);
      co_await ctx.SyncThreads();
      const std::uint32_t stride = ctx.block_threads * ctx.grid_blocks;
      double local = 0.0;
      for (std::uint32_t i = ctx.block_id * ctx.block_threads + ctx.thread_id;
           i < n; i += stride) {
        local += co_await ctx.Load(p + i);
        co_await ctx.Work(1 + (i % 4));
        co_await ctx.Store(p + i, local);
      }
      co_await ctx.AtomicAdd(slot, local);
      co_await ctx.SyncThreads();
    });
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    std::string digest =
        (*r).stats.ToString() + "@" + std::to_string((*r).cycles);
    for (int i = 0; i < n; ++i) digest += "," + std::to_string(p[i]);
    return digest;
  };
  const std::string serial = run(1);
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(serial, run(64)) << "rep " << rep;  // clamps to 8 SM shards
  }
}

}  // namespace
}  // namespace dgc::sim

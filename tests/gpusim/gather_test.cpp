// Tests for the pipelined batch-load (Gather / LoadRun) mechanism.
#include <gtest/gtest.h>

#include "gpusim/block.h"
#include "gpusim/ctx.h"
#include "gpusim/device.h"

namespace dgc::sim {
namespace {

std::unique_ptr<Device> MakeDevice() {
  return std::make_unique<Device>(DeviceSpec::TestDevice());
}

TEST(Gather, LoadsAllValuesInOrder) {
  auto dev = MakeDevice();
  const int n = 64;
  auto buf = *dev->Malloc(n * sizeof(double));
  auto p = buf.Typed<double>();
  for (int i = 0; i < n; ++i) p[i] = i * 1.5;

  std::vector<double> seen(n, 0);
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {1, 1, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    auto g = ctx.LoadRun(p, n);
    co_await g;
    for (int i = 0; i < n; ++i) seen[std::size_t(i)] = g.Result(std::uint32_t(i));
  });
  ASSERT_TRUE(result.ok());
  for (int i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(seen[std::size_t(i)], i * 1.5);
}

TEST(Gather, ArbitraryAddressesAndTypes) {
  auto dev = MakeDevice();
  auto buf = *dev->Malloc(256 * sizeof(std::uint32_t));
  auto p = buf.Typed<std::uint32_t>();
  for (int i = 0; i < 256; ++i) p[i] = std::uint32_t(i * i);

  std::uint64_t sum = 0;
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {1, 1, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    auto g = ctx.Gather<std::uint32_t>();
    for (int i = 0; i < 10; ++i) g.Add(p + i * 25);  // scattered
    co_await g;
    for (std::uint32_t i = 0; i < 10; ++i) sum += g.Result(i);
  });
  ASSERT_TRUE(result.ok());
  std::uint64_t expect = 0;
  for (int i = 0; i < 10; ++i) expect += std::uint64_t(i * 25) * (i * 25);
  EXPECT_EQ(sum, expect);
}

TEST(Gather, EmptyGatherIsReadyImmediately) {
  auto dev = MakeDevice();
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {1, 1, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    auto g = ctx.Gather<double>();
    co_await g;  // count == 0: must not suspend or deadlock
    co_await ctx.Work(1);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
}

TEST(Gather, CapacitySaturatesAtKMaxGather) {
  auto dev = MakeDevice();
  auto buf = *dev->Malloc((detail::kMaxGather + 8) * sizeof(double));
  auto p = buf.Typed<double>();
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {1, 1, 1}};
  bool full_before_extra = false;
  std::uint32_t count = 0;
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    auto g = ctx.Gather<double>();
    for (std::uint32_t i = 0; i < detail::kMaxGather + 8; ++i) {
      if (i == detail::kMaxGather) full_before_extra = g.Full();
      g.Add(p + i);
    }
    count = g.count;
    co_await g;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(full_before_extra);
  EXPECT_EQ(count, detail::kMaxGather);  // extras ignored
}

TEST(Gather, BatchIsFasterThanDependentScalarLoads) {
  // The point of the mechanism: N independent loads in one batch pay one
  // latency, N scalar loads pay N.
  auto dev = MakeDevice();
  const int n = 32, reps = 50;
  auto buf = *dev->Malloc(std::uint64_t(n) * reps * sizeof(double));
  auto p = buf.Typed<double>();

  auto run = [&](bool batched) {
    LaunchConfig cfg{.grid = {1, 1, 1}, .block = {32, 1, 1}};
    auto r = dev->Launch(cfg, [&, batched](ThreadCtx& ctx) -> DeviceTask<void> {
      double acc = 0;
      for (int rep = 0; rep < reps; ++rep) {
        auto base = p + rep * n;
        if (batched) {
          auto g = ctx.LoadRun(base, n);
          co_await g;
          for (int i = 0; i < n; ++i) acc += g.Result(std::uint32_t(i));
        } else {
          for (int i = 0; i < n; ++i) acc += co_await ctx.Load(base + i);
        }
      }
      (void)acc;
    });
    return r->stats.elapsed_cycles;
  };
  const auto scalar = run(false);
  const auto batch = run(true);
  EXPECT_GT(scalar, batch * 5);
}

TEST(Gather, CountsSectorsLikeScalarLoads) {
  auto dev = MakeDevice();
  const int n = 64;  // 64 doubles = 16 sectors
  auto buf = *dev->Malloc(n * sizeof(double));
  auto p = buf.Typed<double>();
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {1, 1, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    auto g = ctx.LoadRun(p, n);
    co_await g;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.global_sectors, 16u);
  EXPECT_DOUBLE_EQ(result->stats.CoalescingEfficiency(), 1.0);
}

TEST(Gather, WarpLanesCoalesceAcrossBatches) {
  // 32 lanes each gathering their own contiguous 2-element run over a
  // shared array: the warp instruction coalesces all 64 elements.
  auto dev = MakeDevice();
  auto buf = *dev->Malloc(64 * sizeof(double));
  auto p = buf.Typed<double>();
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {32, 1, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    auto g = ctx.LoadRun(p + ctx.thread_id * 2, 2);
    co_await g;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.global_sectors, 16u);          // 512B / 32B
  EXPECT_EQ(result->stats.load_instructions, 1u);        // one warp instr
}

TEST(Gather, MixedWithComputeAndStoresVerifies) {
  auto dev = MakeDevice();
  const std::uint32_t n = 512;
  auto in = *dev->Malloc(n * sizeof(double));
  auto out = *dev->Malloc(n * sizeof(double));
  auto pi = in.Typed<double>(), po = out.Typed<double>();
  for (std::uint32_t i = 0; i < n; ++i) pi[i] = i;

  LaunchConfig cfg{.grid = {2, 1, 1}, .block = {64, 1, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    const std::uint32_t gid = ctx.block_id * ctx.block_threads + ctx.thread_id;
    const std::uint32_t per = n / 128;
    auto g = ctx.LoadRun(pi + gid * per, per);
    co_await g;
    co_await ctx.Work(10);
    for (std::uint32_t j = 0; j < per; ++j) {
      co_await ctx.Store(po + (gid * per + j), g.Result(j) * 3.0);
    }
  });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
  for (std::uint32_t i = 0; i < n; ++i) ASSERT_DOUBLE_EQ(po[i], 3.0 * i) << i;
}

}  // namespace
}  // namespace dgc::sim

namespace dgc::sim {
namespace {

TEST(Scatter, WritesAllValues) {
  auto dev = std::make_unique<Device>(DeviceSpec::TestDevice());
  const int n = 48;
  auto buf = *dev->Malloc(n * sizeof(double));
  auto p = buf.Typed<double>();
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {1, 1, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    auto s = ctx.Scatter<double>();
    for (int i = 0; i < n; ++i) s.Add(p + i, i * 2.5);
    co_await s;
  });
  ASSERT_TRUE(result.ok());
  for (int i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(p[i], i * 2.5) << i;
  EXPECT_EQ(result->stats.store_instructions, 1u);
}

TEST(Scatter, EmptyScatterDoesNotSuspend) {
  auto dev = std::make_unique<Device>(DeviceSpec::TestDevice());
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {1, 1, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    auto s = ctx.Scatter<double>();
    co_await s;
    co_await ctx.Work(1);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
}

TEST(Scatter, BatchedStoresFasterThanScalarChain) {
  auto dev = std::make_unique<Device>(DeviceSpec::TestDevice());
  const int n = 32, reps = 40;
  auto buf = *dev->Malloc(std::uint64_t(n) * reps * sizeof(double));
  auto p = buf.Typed<double>();
  auto run = [&](bool batched) {
    LaunchConfig cfg{.grid = {1, 1, 1}, .block = {32, 1, 1}};
    auto r = dev->Launch(cfg, [&, batched](ThreadCtx& ctx) -> DeviceTask<void> {
      for (int rep = 0; rep < reps; ++rep) {
        auto base = p + rep * n;
        if (batched) {
          auto s = ctx.Scatter<double>();
          for (int i = 0; i < n; ++i) s.Add(base + i, 1.0);
          co_await s;
        } else {
          for (int i = 0; i < n; ++i) co_await ctx.Store(base + i, 1.0);
        }
      }
    });
    return r->stats.elapsed_cycles;
  };
  EXPECT_GT(run(false), run(true) * 3);
}

TEST(Scatter, GatherAfterScatterObservesValues) {
  auto dev = std::make_unique<Device>(DeviceSpec::TestDevice());
  auto buf = *dev->Malloc(64 * sizeof(std::uint64_t));
  auto p = buf.Typed<std::uint64_t>();
  std::uint64_t sum = 0;
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {1, 1, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    auto s = ctx.Scatter<std::uint64_t>();
    for (std::uint64_t i = 0; i < 64; ++i) s.Add(p + i, i + 1);
    co_await s;
    auto g = ctx.LoadRun(p, 64);
    co_await g;
    for (std::uint32_t i = 0; i < 64; ++i) sum += g.Result(i);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(sum, 64u * 65u / 2);
}

}  // namespace
}  // namespace dgc::sim

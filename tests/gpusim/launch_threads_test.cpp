// Intra-launch host-thread sharding (LaunchConfig::launch_threads): the
// windowed speculate-then-commit engine must be byte-identical to the
// serial engine — stats, cycle counts, memory contents, and traces — for
// every thread count, window length, and coalescer path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gpusim/block.h"
#include "gpusim/coalesce.h"
#include "gpusim/ctx.h"
#include "gpusim/device.h"
#include "gpusim/faults.h"
#include "gpusim/trace.h"

namespace dgc::sim {
namespace {

/// One run's complete observable output, canonically serialized.
struct RunDigest {
  std::uint64_t cycles = 0;
  std::string stats;
  std::vector<double> memory;
  std::vector<TraceEvent> trace;
};

bool operator==(const TraceEvent& a, const TraceEvent& b) {
  return a.block == b.block && a.warp == b.warp && a.sm == b.sm &&
         a.kind == b.kind && a.issue == b.issue && a.complete == b.complete &&
         a.lanes == b.lanes && a.sectors == b.sectors && a.wave == b.wave;
}

/// Single-warp blocks (speculation-eligible) doing a mix of every op the
/// issue path distinguishes: strided loads/stores, a gather batch, an
/// atomic reduction, compute, a block barrier, and a HostFence — the
/// op that parks a speculative resume mid-warp.
RunDigest RunMixed(unsigned launch_threads, std::uint64_t window_cycles) {
  Device dev(DeviceSpec::TestDevice());
  const int n = 512;
  auto buf = *dev.Malloc(n * sizeof(double));
  auto acc = *dev.Malloc(sizeof(double));
  auto p = buf.Typed<double>();
  auto pa = acc.Typed<double>();
  for (int i = 0; i < n; ++i) p[i] = double(i);
  pa[0] = 0.0;

  Trace trace;
  LaunchConfig cfg{.grid = {8, 1, 1}, .block = {32, 1, 1}, .name = "mixed"};
  cfg.trace = &trace;
  cfg.launch_threads = launch_threads;
  cfg.launch_window_cycles = window_cycles;
  auto r = dev.Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    const std::uint32_t stride = ctx.block_threads * ctx.grid_blocks;
    double local = 0.0;
    for (std::uint32_t i = ctx.block_id * ctx.block_threads + ctx.thread_id;
         i < n; i += stride) {
      const double v = co_await ctx.Load(p + i);
      co_await ctx.Work(3 + (i % 5));
      co_await ctx.Store(p + i, v * 2.0 + 1.0);
      local += v;
    }
    co_await ctx.HostFence();  // parks speculative resumes mid-turn
    auto g = ctx.Gather<double>();
    for (std::uint32_t k = 0; k < 8; ++k) {
      g.Add(p + ((ctx.thread_id * 37 + k * 61) % n));
    }
    co_await g;
    for (std::uint32_t k = 0; k < 8; ++k) local += g.Result(k);
    co_await ctx.SyncThreads();
    co_await ctx.AtomicAdd(pa, local);
  });
  EXPECT_TRUE(r.ok()) << r.status().ToString();

  RunDigest digest;
  digest.cycles = (*r).cycles;
  digest.stats = (*r).stats.ToString();
  digest.memory.reserve(std::size_t(n) + 1);
  for (int i = 0; i < n; ++i) digest.memory.push_back(p[i]);
  digest.memory.push_back(pa[0]);
  digest.trace = trace.events();
  return digest;
}

void ExpectSameRun(const RunDigest& a, const RunDigest& b,
                   const std::string& label) {
  EXPECT_EQ(a.cycles, b.cycles) << label;
  EXPECT_EQ(a.stats, b.stats) << label;
  EXPECT_EQ(a.memory, b.memory) << label;
  ASSERT_EQ(a.trace.size(), b.trace.size()) << label;
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_TRUE(a.trace[i] == b.trace[i]) << label << " trace event " << i;
  }
}

TEST(LaunchThreads, ByteIdenticalAcrossThreadCountsAndWindows) {
  const RunDigest serial = RunMixed(1, 0);
  for (const unsigned threads : {2u, 4u, 8u}) {
    for (const std::uint64_t window : {std::uint64_t(1), std::uint64_t(64),
                                       std::uint64_t(4096)}) {
      ExpectSameRun(serial, RunMixed(threads, window),
                    "threads=" + std::to_string(threads) +
                        " window=" + std::to_string(window));
    }
  }
}

TEST(LaunchThreads, ByteIdenticalUnderScalarCoalescer) {
  // The precomputed-sector path must agree with the serial engine on both
  // coalescer implementations: sectors are derived off-thread only when
  // speculation ran, so a fast-path/scalar divergence would surface as a
  // threads-vs-serial diff here.
  const bool was = SetCoalesceFastPath(false);
  const RunDigest serial = RunMixed(1, 0);
  const RunDigest threaded = RunMixed(4, 0);
  SetCoalesceFastPath(was);
  ExpectSameRun(serial, threaded, "scalar coalescer, threads=4");
}

TEST(LaunchThreads, ThreadCountsBeyondSmCountClamp) {
  // TestDevice has 8 SMs; 64 requested threads must behave (and output)
  // exactly like a legal shard count rather than spawning idle shards.
  ExpectSameRun(RunMixed(1, 0), RunMixed(64, 0), "threads=64 (clamped)");
}

/// Multi-warp blocks (two warps per 64-thread block) exercising the state
/// speculation must not corrupt across sibling warps: a shared-memory
/// reduction through block barriers, shared-bank conflicts, a global
/// strided phase, and an atomic tail. Optionally runs under a fault plan
/// (a fresh one per run — consumption counters advance).
RunDigest RunMultiWarp(unsigned launch_threads, std::uint64_t window_cycles,
                       const char* fault_spec = nullptr) {
  Device dev(DeviceSpec::TestDevice());
  const int blocks = 4, threads = 64, n = 512;
  auto buf = *dev.Malloc(n * sizeof(double));
  auto out = *dev.Malloc(std::uint64_t(blocks) * sizeof(double));
  auto p = buf.Typed<double>();
  auto po = out.Typed<double>();
  for (int i = 0; i < n; ++i) p[i] = double(i % 17);
  for (int b = 0; b < blocks; ++b) po[b] = 0.0;

  FaultPlan plan;
  if (fault_spec != nullptr) plan = *FaultPlan::Parse(fault_spec);

  Trace trace;
  LaunchConfig cfg{.grid = {std::uint32_t(blocks), 1, 1},
                   .block = {std::uint32_t(threads), 1, 1},
                   .shared_bytes = 64,
                   .name = "multiwarp"};
  cfg.trace = &trace;
  if (fault_spec != nullptr) cfg.faults = &plan;
  cfg.launch_threads = launch_threads;
  cfg.launch_window_cycles = window_cycles;
  auto r = dev.Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    auto slot = ctx.block->SharedAt<double>(0);
    if (ctx.thread_id == 0) co_await ctx.Store(slot, 0.0);
    co_await ctx.SyncThreads();
    const std::uint32_t stride = ctx.block_threads * ctx.grid_blocks;
    double local = 0.0;
    for (std::uint32_t i = ctx.block_id * ctx.block_threads + ctx.thread_id;
         i < n; i += stride) {
      const double v = co_await ctx.Load(p + i);
      co_await ctx.Work(2 + (i % 3));
      co_await ctx.Store(p + i, v + 1.0);
      local += v;
    }
    co_await ctx.AtomicAdd(slot, local);
    co_await ctx.SyncThreads();
    if (ctx.thread_id == 0) {
      const double sum = co_await ctx.Load(slot);
      co_await ctx.Store(po + ctx.block_id, sum);
    }
  });
  EXPECT_TRUE(r.ok()) << r.status().ToString();

  RunDigest digest;
  digest.cycles = (*r).cycles;
  digest.stats = (*r).stats.ToString();
  for (const std::string& f : (*r).failures) digest.stats += "\n" + f;
  digest.memory.reserve(std::size_t(n + blocks));
  for (int i = 0; i < n; ++i) digest.memory.push_back(p[i]);
  for (int b = 0; b < blocks; ++b) digest.memory.push_back(po[b]);
  digest.trace = trace.events();
  return digest;
}

TEST(LaunchThreads, MultiWarpByteIdenticalAcrossThreadCountsAndWindows) {
  // Sibling warps share Block state (barrier slots, shared memory, the
  // watchdog): the earliest-block-event rule must keep speculation safe —
  // and byte-identical — with two warps per block.
  const RunDigest serial = RunMultiWarp(1, 0);
  for (const unsigned threads : {2u, 4u, 8u}) {
    for (const std::uint64_t window : {std::uint64_t(1), std::uint64_t(64),
                                       std::uint64_t(4096)}) {
      ExpectSameRun(serial, RunMultiWarp(threads, window),
                    "multiwarp threads=" + std::to_string(threads) +
                        " window=" + std::to_string(window));
    }
  }
}

TEST(LaunchThreads, FaultPlanSerializesOnlyPendingTrapTurns) {
  // A trap site far from the launch's start no longer forces the whole
  // run onto the serial engine: CanSpeculate is trap-site-aware, so only
  // the victim warp's turns at/after the trap cycle serialize. The trap
  // must fire identically (count, message, stats) at every thread count.
  const char* spec = "trap@b1.w1.c400";
  const RunDigest serial = RunMultiWarp(1, 0, spec);
  EXPECT_NE(serial.stats.find("block 1"), std::string::npos)
      << "trap site never fired — the plan no longer matches this kernel";
  for (const unsigned threads : {2u, 8u}) {
    for (const std::uint64_t window : {std::uint64_t(64),
                                       std::uint64_t(4096)}) {
      ExpectSameRun(serial, RunMultiWarp(threads, window, spec),
                    "faulted threads=" + std::to_string(threads) +
                        " window=" + std::to_string(window));
    }
  }
}

}  // namespace
}  // namespace dgc::sim

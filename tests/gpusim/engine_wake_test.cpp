// Engine duplicate-wake suppression (engine.cpp): a warp with a queued
// not-yet-dispatched wake at time <= t swallows a second Schedule(t) —
// the turn would be spurious, and before the fix the duplicate dispatch
// double-charged barrier stall accounting on wake paths that raced a
// scheduled wake. These pins are exact: any change to wake dedup, the
// trailing reschedule scan, or barrier release ordering shows up here as
// a cycle-precise diff.
#include <gtest/gtest.h>

#include "gpusim/ctx.h"
#include "gpusim/device.h"

namespace dgc::sim {
namespace {

TEST(EngineWake, TwoWarpBarrierKernelPinsExactStats) {
  Device dev(DeviceSpec::TestDevice());
  // Two warps per block: warp 1's barrier arrival wakes warp 0 at the same
  // cycle its own scheduled wake targets — the duplicate-wake shape.
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {64, 1, 1}, .name = "wake"};
  auto r = dev.Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    // Staggered: warp 0 reaches the barrier 50 cycles before warp 1, so
    // warp 1's arrival releases warp 0 while warp 0 also holds a queued
    // scheduled wake — the duplicate-wake shape.
    co_await ctx.Work(100 + 50 * (ctx.thread_id / 32));
    co_await ctx.SyncThreads();
    co_await ctx.Work(10);
  });
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE((*r).ok());

  const LaunchStats& s = (*r).stats;
  // One issue group per op per warp: (work + sync + work) x 2 warps.
  EXPECT_EQ(s.warp_instructions, 6u);
  EXPECT_EQ(s.compute_instructions, 4u);
  EXPECT_EQ(s.barrier_arrivals, 64u);
  // Work charges per warp instruction: 100 + 150 + 10 + 10.
  EXPECT_EQ(s.compute_cycles_issued, 270u);
  // Warp 0's 32 lanes each wait exactly the 50-cycle stagger at the
  // barrier: woken-once accounting makes this stable to the cycle. A
  // duplicate dispatch re-runs the barrier-stall computation and
  // inflates it.
  EXPECT_EQ(s.barrier_stall_cycles, 50u * 32u);
  EXPECT_EQ(s.elapsed_cycles, 160u);
  EXPECT_EQ((*r).cycles, 260u);
}

TEST(EngineWake, SpuriousWakeShapeIsDeterministic) {
  // Same kernel, staggered work so the barrier release lands between the
  // two warps' scheduled wakes — run twice, demand identical cycles (the
  // suppression rule is deterministic, not heuristic).
  auto run = [] {
    Device dev(DeviceSpec::TestDevice());
    LaunchConfig cfg{.grid = {2, 1, 1}, .block = {96, 1, 1}};
    auto r = dev.Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
      co_await ctx.Work(10 + 30 * (ctx.thread_id / 32));
      co_await ctx.SyncThreads();
      co_await ctx.Work(5);
    });
    EXPECT_TRUE(r.ok());
    return (*r).cycles;
  };
  const std::uint64_t first = run();
  EXPECT_EQ(first, run());
  EXPECT_GT(first, 0u);
}

}  // namespace
}  // namespace dgc::sim

// Tests for the shadow-memory sanitizer (memcheck): out-of-bounds,
// use-after-free, double/invalid free, misaligned accesses, leaks, and the
// cross-instance (ensemble isolation) checker.
#include <gtest/gtest.h>

#include "gpusim/ctx.h"
#include "gpusim/device.h"
#include "gpusim/memcheck.h"

namespace dgc::sim {
namespace {

struct Rig {
  Rig() { memcheck.Attach(device.memory()); }
  Device device{DeviceSpec::TestDevice()};
  Memcheck memcheck;
};

LaunchConfig OneWarp(Memcheck& memcheck) {
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {32, 1, 1}, .name = "memcheck"};
  cfg.memcheck = &memcheck;
  return cfg;
}

TEST(Memcheck, CleanRunHasNoFindings) {
  Rig rig;
  const int n = 256;
  auto a = *rig.device.Malloc(n * sizeof(double));
  auto b = *rig.device.Malloc(n * sizeof(double));
  auto pa = a.Typed<double>(), pb = b.Typed<double>();
  for (int i = 0; i < n; ++i) pa[i] = i;

  auto result = rig.device.Launch(
      OneWarp(rig.memcheck), [&](ThreadCtx& ctx) -> DeviceTask<void> {
        for (std::uint32_t i = ctx.thread_id; i < n; i += ctx.block_threads) {
          const double v = co_await ctx.Load(pa + i);
          co_await ctx.Store(pb + i, 2.0 * v);
        }
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok());
  EXPECT_TRUE(rig.memcheck.report().clean())
      << rig.memcheck.report().ToString();
  EXPECT_TRUE(result->memcheck.clean());
  EXPECT_EQ(result->stats.memcheck_findings, 0u);
}

TEST(Memcheck, OutOfBoundsInPaddingIsFlaggedAndAttributed) {
  Rig rig;
  // 24 requested bytes round up to a 256-byte arena slot: offset 24 is
  // backed storage but past the requested extent.
  auto buf = *rig.device.Malloc(24);
  auto p = buf.Typed<std::uint64_t>();

  auto result = rig.device.Launch(
      OneWarp(rig.memcheck), [&](ThreadCtx& ctx) -> DeviceTask<void> {
        if (ctx.thread_id != 0) co_return;
        co_await ctx.Store(p + 3, std::uint64_t{7});  // bytes [24, 32)
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok());

  const MemcheckReport& report = rig.memcheck.report();
  EXPECT_EQ(report.oob_count, 1u);
  EXPECT_EQ(report.total(), 1u);
  ASSERT_EQ(report.findings.size(), 1u);
  const MemcheckFinding& f = report.findings[0];
  EXPECT_EQ(f.kind, MemcheckErrorKind::kOutOfBounds);
  EXPECT_EQ(f.addr, buf.addr + 24);
  EXPECT_EQ(f.bytes, 8u);
  EXPECT_TRUE(f.attributed);
  EXPECT_EQ(f.block_id, 0u);
  EXPECT_EQ(f.lane_id, 0u);
  ASSERT_TRUE(f.has_region);
  EXPECT_EQ(f.region_base, buf.addr);
  EXPECT_EQ(f.region_bytes, 24u);
  EXPECT_EQ(result->stats.memcheck_findings, 1u);
  // Backed by real storage, so the store itself went through.
  EXPECT_EQ(p[3], 7u);
}

TEST(Memcheck, UseAfterFreeIsContained) {
  Rig rig;
  auto keep = *rig.device.Malloc(64);
  auto gone = *rig.device.Malloc(64);
  const DeviceAddr dead = gone.addr;
  ASSERT_TRUE(rig.device.Free(dead).ok());

  auto sink = keep.Typed<std::uint64_t>();
  auto result = rig.device.Launch(
      OneWarp(rig.memcheck), [&](ThreadCtx& ctx) -> DeviceTask<void> {
        if (ctx.thread_id != 0) co_return;
        // The pointer survives the free; the access must not touch the
        // (destroyed) backing store, and the load reads as zero.
        DevicePtr<std::uint64_t> stale{dead, nullptr};
        const std::uint64_t v = co_await ctx.Load(stale);
        co_await ctx.Store(sink, v + 1);
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok());

  const MemcheckReport& report = rig.memcheck.report();
  EXPECT_EQ(report.uaf_count, 1u);
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings[0].kind, MemcheckErrorKind::kUseAfterFree);
  EXPECT_EQ(report.findings[0].region_base, dead);
  EXPECT_EQ(keep.Typed<std::uint64_t>()[0], 1u);  // load was suppressed to 0
}

TEST(Memcheck, WildAccessIsOutOfBounds) {
  Rig rig;
  auto sink = *rig.device.Malloc(8);
  auto p = sink.Typed<std::uint64_t>();
  auto result = rig.device.Launch(
      OneWarp(rig.memcheck), [&](ThreadCtx& ctx) -> DeviceTask<void> {
        if (ctx.thread_id != 0) co_return;
        DevicePtr<std::uint64_t> wild{0x40000000, nullptr};
        co_await ctx.Store(p, co_await ctx.Load(wild));
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(rig.memcheck.report().oob_count, 1u);
  EXPECT_FALSE(rig.memcheck.report().findings[0].has_region);
}

TEST(Memcheck, DoubleFreeAndInvalidFree) {
  Rig rig;
  auto a = *rig.device.Malloc(64);
  auto b = *rig.device.Malloc(64);

  ASSERT_TRUE(rig.device.Free(a.addr).ok());
  EXPECT_FALSE(rig.device.Free(a.addr).ok());      // double free
  EXPECT_FALSE(rig.device.Free(b.addr + 8).ok());  // not an allocation base

  const MemcheckReport& report = rig.memcheck.report();
  EXPECT_EQ(report.double_free_count, 1u);
  EXPECT_EQ(report.invalid_free_count, 1u);
  ASSERT_EQ(report.findings.size(), 2u);
  EXPECT_EQ(report.findings[0].kind, MemcheckErrorKind::kDoubleFree);
  EXPECT_EQ(report.findings[0].region_base, a.addr);
  EXPECT_EQ(report.findings[1].kind, MemcheckErrorKind::kInvalidFree);
  EXPECT_EQ(report.findings[1].addr, b.addr + 8);
  // The interior free still names the region it points into.
  EXPECT_EQ(report.findings[1].region_base, b.addr);
}

TEST(Memcheck, MisalignedAccessIsFlagged) {
  Rig rig;
  auto buf = *rig.device.Malloc(64);
  auto result = rig.device.Launch(
      OneWarp(rig.memcheck), [&](ThreadCtx& ctx) -> DeviceTask<void> {
        if (ctx.thread_id != 0) co_return;
        // A 4-byte load at base+2: never naturally aligned (bases are
        // 256-byte aligned).
        DevicePtr<std::uint32_t> p{buf.addr + 2,
                                   reinterpret_cast<std::uint32_t*>(
                                       buf.host + 2)};
        (void)co_await ctx.Load(p);
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(rig.memcheck.report().misaligned_count, 1u);
  EXPECT_EQ(rig.memcheck.report().findings[0].kind,
            MemcheckErrorKind::kMisaligned);
}

TEST(Memcheck, DeviceAllocationLeakReportedAtKernelExit) {
  Rig rig;
  auto result = rig.device.Launch(
      OneWarp(rig.memcheck), [&](ThreadCtx& ctx) -> DeviceTask<void> {
        if (ctx.thread_id != 0) co_return;
        auto leaked = rig.device.Malloc(128);  // device-code alloc, no free
        EXPECT_TRUE(leaked.ok());
        co_return;
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const MemcheckReport& report = rig.memcheck.report();
  EXPECT_EQ(report.leak_count, 1u);
  ASSERT_FALSE(report.findings.empty());
  const MemcheckFinding& f = report.findings[0];
  EXPECT_EQ(f.kind, MemcheckErrorKind::kLeak);
  EXPECT_EQ(f.bytes, 128u);
  EXPECT_TRUE(f.attributed);
  EXPECT_EQ(f.thread_id, 0u);
  EXPECT_EQ(result->stats.memcheck_findings, 1u);
}

TEST(Memcheck, HostAllocationsAreNotLeaks) {
  Rig rig;
  auto buf = *rig.device.Malloc(512);  // host setup allocation, kept live
  (void)buf;
  auto result = rig.device.Launch(
      OneWarp(rig.memcheck),
      [&](ThreadCtx&) -> DeviceTask<void> { co_return; });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(rig.memcheck.report().leak_count, 0u);
}

TEST(Memcheck, CrossInstanceWriteToOwnedRegionIsFlagged) {
  Rig rig;
  auto owned = *rig.device.Malloc(64);
  rig.memcheck.TagRegion(owned.addr, /*owner=*/0, "instance 0 heap");
  rig.memcheck.SetTeamInstance(/*team=*/0, /*instance=*/1);

  auto p = owned.Typed<std::uint64_t>();
  auto result = rig.device.Launch(
      OneWarp(rig.memcheck), [&](ThreadCtx& ctx) -> DeviceTask<void> {
        if (ctx.thread_id != 0) co_return;
        (void)co_await ctx.Load(p);             // reads never race
        co_await ctx.Store(p, std::uint64_t{1});  // write crosses instances
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const MemcheckReport& report = rig.memcheck.report();
  EXPECT_EQ(report.cross_instance_count, 1u);
  ASSERT_EQ(report.findings.size(), 1u);
  const MemcheckFinding& f = report.findings[0];
  EXPECT_EQ(f.kind, MemcheckErrorKind::kCrossInstance);
  EXPECT_EQ(f.instance, 1);
  EXPECT_EQ(f.region_owner, 0);
  EXPECT_EQ(f.region_label, "instance 0 heap");
}

TEST(Memcheck, SameInstanceWriteIsClean) {
  Rig rig;
  auto owned = *rig.device.Malloc(64);
  rig.memcheck.TagRegion(owned.addr, /*owner=*/2, "instance 2 heap");
  rig.memcheck.SetTeamInstance(/*team=*/0, /*instance=*/2);
  auto p = owned.Typed<std::uint64_t>();
  auto result = rig.device.Launch(
      OneWarp(rig.memcheck), [&](ThreadCtx& ctx) -> DeviceTask<void> {
        if (ctx.thread_id != 0) co_return;
        co_await ctx.Store(p, std::uint64_t{1});
      });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(rig.memcheck.report().clean())
      << rig.memcheck.report().ToString();
}

TEST(Memcheck, SharedRegionRacesOnSecondWriter) {
  Rig rig;
  auto shared = *rig.device.Malloc(64);
  rig.memcheck.TagRegion(shared.addr, kSharedOwner, "shared global");
  auto p = shared.Typed<std::uint64_t>();

  auto write_once = [&](std::int32_t instance) {
    rig.memcheck.SetTeamInstance(0, instance);
    auto result = rig.device.Launch(
        OneWarp(rig.memcheck), [&](ThreadCtx& ctx) -> DeviceTask<void> {
          if (ctx.thread_id != 0) co_return;
          co_await ctx.Store(p, std::uint64_t(instance));
        });
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  };

  write_once(3);  // first writer claims the region
  EXPECT_EQ(rig.memcheck.report().cross_instance_count, 0u);
  write_once(3);  // same instance again: still clean
  EXPECT_EQ(rig.memcheck.report().cross_instance_count, 0u);
  write_once(4);  // a second distinct instance: the race
  EXPECT_EQ(rig.memcheck.report().cross_instance_count, 1u);
  EXPECT_EQ(rig.memcheck.report().findings[0].kind,
            MemcheckErrorKind::kCrossInstance);
}

TEST(Memcheck, AttachAdoptsPreexistingAllocations) {
  Device device(DeviceSpec::TestDevice());
  auto early = *device.Malloc(64);  // allocated before the memcheck exists
  Memcheck memcheck;
  memcheck.Attach(device.memory());

  auto p = early.Typed<std::uint64_t>();
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {32, 1, 1}};
  cfg.memcheck = &memcheck;
  auto result = device.Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    if (ctx.thread_id != 0) co_return;
    co_await ctx.Store(p, std::uint64_t{9});
  });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(memcheck.report().clean()) << memcheck.report().ToString();
  EXPECT_EQ(p[0], 9u);
}

TEST(Memcheck, ResetReportKeepsShadowMap) {
  Rig rig;
  auto a = *rig.device.Malloc(64);
  ASSERT_TRUE(rig.device.Free(a.addr).ok());
  EXPECT_FALSE(rig.device.Free(a.addr).ok());
  EXPECT_EQ(rig.memcheck.report().double_free_count, 1u);
  rig.memcheck.ResetReport();
  EXPECT_TRUE(rig.memcheck.report().clean());
  // The freed shadow survives the reset: a third free is still a double free.
  EXPECT_FALSE(rig.device.Free(a.addr).ok());
  EXPECT_EQ(rig.memcheck.report().double_free_count, 1u);
}

TEST(Memcheck, FindingCapLimitsStorageNotCounting) {
  MemcheckConfig config;
  config.max_findings = 2;
  Device device(DeviceSpec::TestDevice());
  Memcheck memcheck(config);
  memcheck.Attach(device.memory());

  auto a = *device.Malloc(64);
  ASSERT_TRUE(device.Free(a.addr).ok());
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(device.Free(a.addr).ok());
  EXPECT_EQ(memcheck.report().double_free_count, 5u);
  EXPECT_EQ(memcheck.report().findings.size(), 2u);
  EXPECT_NE(memcheck.report().ToString().find("not recorded"),
            std::string::npos);
}

}  // namespace
}  // namespace dgc::sim

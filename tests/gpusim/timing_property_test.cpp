// Property tests on the timing model: conservation laws and monotonicity
// that must hold for ANY kernel, exercised with parameterized sweeps.
#include <gtest/gtest.h>

#include "gpusim/ctx.h"
#include "gpusim/device.h"
#include "support/rng.h"

namespace dgc::sim {
namespace {

struct SweepParam {
  std::uint32_t blocks;
  std::uint32_t threads;
  std::uint32_t work_items;
};

class TimingSweep : public testing::TestWithParam<SweepParam> {};

LaunchResult RunWorkload(Device& dev, const SweepParam& p,
                         DevicePtr<double> data, std::uint32_t data_len) {
  LaunchConfig cfg{.grid = {p.blocks, 1, 1}, .block = {p.threads, 1, 1}};
  auto r = dev.Launch(cfg, [&, p](ThreadCtx& ctx) -> DeviceTask<void> {
    Rng rng(ctx.block_id * 1000 + ctx.thread_id);
    double acc = 0;
    for (std::uint32_t i = 0; i < p.work_items; ++i) {
      acc += co_await ctx.Load(data + rng.NextBounded(data_len));
      co_await ctx.Work(5 + rng.NextBounded(20));
    }
    (void)acc;
  });
  DGC_CHECK(r.ok());
  return *r;
}

TEST_P(TimingSweep, ConservationLaws) {
  const SweepParam p = GetParam();
  Device dev(DeviceSpec::TestDevice());
  const std::uint32_t n = 1 << 14;
  auto buf = *dev.Malloc(n * sizeof(double));
  const LaunchResult r = RunWorkload(dev, p, buf.Typed<double>(), n);
  const LaunchStats& s = r.stats;

  // Cache accounting: every sector either hits or misses each level it
  // reaches; L2 lookups == L1 misses (plus store write-throughs).
  EXPECT_GE(s.l1_hits + s.l1_misses, s.global_sectors);
  EXPECT_EQ(s.l2_hits + s.l2_misses, s.dram_bytes / 32 + s.l2_hits);
  // DRAM row transitions: hits + misses == DRAM sector accesses.
  EXPECT_EQ(s.dram_row_hits + s.dram_row_misses, s.dram_bytes / 32);
  // Ideal sectors never exceed actual sectors... per-instruction they can
  // (overlapping lanes), but totals must stay within a sane bound.
  EXPECT_LE(s.ideal_sectors, s.global_sectors * 2);
  // Compute issue: the SM pipes can't have done more cycles of work than
  // pipes × makespan.
  const auto& spec = dev.spec();
  EXPECT_LE(s.compute_cycles_issued,
            std::uint64_t(spec.num_sms) * std::uint64_t(spec.issue_pipes_per_sm) *
                (s.elapsed_cycles + 1));
  // Elapsed must cover the per-warp critical path lower bound: total
  // instruction count / (warps × ...) — weak but nonzero.
  EXPECT_GT(s.elapsed_cycles, 0u);
  EXPECT_EQ(s.blocks_launched, p.blocks);
}

TEST_P(TimingSweep, DeterministicAcrossRuns) {
  const SweepParam p = GetParam();
  auto run = [&] {
    Device dev(DeviceSpec::TestDevice());
    const std::uint32_t n = 1 << 14;
    auto buf = *dev.Malloc(n * sizeof(double));
    return RunWorkload(dev, p, buf.Typed<double>(), n).cycles;
  };
  EXPECT_EQ(run(), run());
}

TEST_P(TimingSweep, MoreComputeNeverFaster) {
  const SweepParam p = GetParam();
  auto run = [&](std::uint32_t extra_work) {
    Device dev(DeviceSpec::TestDevice());
    LaunchConfig cfg{.grid = {p.blocks, 1, 1}, .block = {p.threads, 1, 1}};
    auto r = dev.Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
      for (std::uint32_t i = 0; i < p.work_items; ++i) {
        co_await ctx.Work(10 + extra_work);
      }
      (void)ctx;
    });
    return r->stats.elapsed_cycles;
  };
  EXPECT_LE(run(0), run(50));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TimingSweep,
    testing::Values(SweepParam{1, 32, 16}, SweepParam{1, 256, 16},
                    SweepParam{4, 32, 16}, SweepParam{4, 64, 32},
                    SweepParam{16, 32, 8}, SweepParam{8, 128, 8},
                    SweepParam{32, 32, 4}),
    [](const testing::TestParamInfo<SweepParam>& info) {
      return "b" + std::to_string(info.param.blocks) + "t" +
             std::to_string(info.param.threads) + "w" +
             std::to_string(info.param.work_items);
    });

// --- Monotonicity in device resources ---------------------------------------

TEST(TimingModel, MoreBandwidthNeverSlower) {
  auto run = [](double bw) {
    DeviceSpec spec = DeviceSpec::TestDevice();
    spec.dram_bytes_per_cycle = bw;
    Device dev(spec);
    const std::uint32_t n = 1 << 15;
    auto buf = *dev.Malloc(n * sizeof(double));
    auto p = buf.Typed<double>();
    LaunchConfig cfg{.grid = {8, 1, 1}, .block = {256, 1, 1}};
    auto r = dev.Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
      const std::uint32_t gid = ctx.block_id * ctx.block_threads + ctx.thread_id;
      const std::uint32_t per = n / 2048;
      auto g = ctx.LoadRun(p + gid * per, per);
      co_await g;
    });
    return r->stats.elapsed_cycles;
  };
  const auto slow = run(16.0);
  const auto mid = run(64.0);
  const auto fast = run(1024.0);
  EXPECT_GE(slow, mid);
  EXPECT_GE(mid, fast);
  EXPECT_GT(slow, fast);  // strictly, for a bandwidth-bound kernel
}

TEST(TimingModel, LowerLatencyNeverSlower) {
  auto run = [](std::uint32_t dram_latency) {
    DeviceSpec spec = DeviceSpec::TestDevice();
    spec.dram_latency = dram_latency;
    Device dev(spec);
    const std::uint32_t n = 1 << 12;
    auto buf = *dev.Malloc(n * sizeof(double));
    auto p = buf.Typed<double>();
    LaunchConfig cfg{.grid = {1, 1, 1}, .block = {32, 1, 1}};
    auto r = dev.Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
      std::uint64_t x = ctx.thread_id;
      for (int i = 0; i < 32; ++i) {
        x = x * 6364136223846793005ULL + 1;
        const double v = co_await ctx.Load(p + (x % n));
        x += std::uint64_t(v) & 1;
      }
    });
    return r->stats.elapsed_cycles;
  };
  EXPECT_GT(run(600), run(150));
}

}  // namespace
}  // namespace dgc::sim

// SpecTeam (gpusim/spec_team.h): the spinning worker barrier under the
// threaded launch engine's speculation rounds. Tests force real workers
// (clamp_to_hardware = false) so the generation/claim/done protocol and
// its memory ordering run even on a single-core host.
#include "gpusim/spec_team.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace dgc::sim {
namespace {

TEST(SpecTeam, EveryPartRunsExactlyOncePerRound) {
  constexpr unsigned kParts = 7;
  constexpr int kRounds = 2000;
  std::vector<std::atomic<int>> hits(kParts);
  SpecTeam team(
      3, kParts, [&](unsigned part) { hits[part].fetch_add(1); },
      /*clamp_to_hardware=*/false);
  for (int round = 0; round < kRounds; ++round) team.Run();
  for (unsigned p = 0; p < kParts; ++p) {
    EXPECT_EQ(hits[p].load(), kRounds) << "part " << p;
  }
}

TEST(SpecTeam, RunIsAFullBarrier) {
  // Every part's write must be visible to the caller when Run() returns —
  // plain (non-atomic) slots would race if the barrier under-synchronized,
  // and tsan runs of this test would flag it.
  constexpr unsigned kParts = 5;
  std::vector<std::uint64_t> slot(kParts, 0);
  SpecTeam team(
      2, kParts, [&](unsigned part) { slot[part] += part + 1; },
      /*clamp_to_hardware=*/false);
  for (int round = 1; round <= 100; ++round) {
    team.Run();
    for (unsigned p = 0; p < kParts; ++p) {
      ASSERT_EQ(slot[p], std::uint64_t(round) * (p + 1))
          << "round " << round << " part " << p;
    }
  }
}

TEST(SpecTeam, ZeroWorkersRunsAllPartsOnCaller) {
  // The oversubscription fallback: a team told to clamp on a small host
  // (or given zero workers) serves every part on the calling thread.
  std::vector<int> hits(4, 0);
  SpecTeam team(0, 4, [&](unsigned part) { hits[part] += 1; });
  team.Run();
  team.Run();
  EXPECT_EQ(hits, (std::vector<int>{2, 2, 2, 2}));
}

TEST(SpecTeam, FirstExceptionRethrownAfterTheBarrier) {
  std::atomic<int> completed{0};
  SpecTeam team(
      2, 6,
      [&](unsigned part) {
        if (part == 3) throw std::runtime_error("part 3 failed");
        completed.fetch_add(1);
      },
      /*clamp_to_hardware=*/false);
  EXPECT_THROW(team.Run(), std::runtime_error);
  // The barrier still completed: every non-throwing part ran.
  EXPECT_EQ(completed.load(), 5);
  // The error slot resets; the next round is clean... and throws again,
  // since the job is fixed.
  EXPECT_THROW(team.Run(), std::runtime_error);
  EXPECT_EQ(completed.load(), 10);
}

TEST(SpecTeam, ImmediateDestructionJoinsLateStartingWorkers) {
  // Regression: on an oversubscribed host a worker can first be scheduled
  // after the destructor's shutdown bump, so its initial generation load
  // already includes it — it must still observe stop_ (from the wait
  // predicate) rather than park for a round that will never come.
  for (int i = 0; i < 50; ++i) {
    SpecTeam team(
        3, 4, [](unsigned) {}, /*clamp_to_hardware=*/false);
    if (i % 2 == 0) team.Run();
  }
}

TEST(SpecTeam, WorkersClampToHardware) {
  SpecTeam team(64, 4, [](unsigned) {});
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) EXPECT_LE(team.workers(), hw - 1);
  team.Run();  // still serves all parts regardless of worker count
}

}  // namespace
}  // namespace dgc::sim

#include "gpusim/memory.h"

#include <gtest/gtest.h>

#include "support/rng.h"
#include "support/units.h"

namespace dgc::sim {
namespace {

TEST(DeviceMemory, AllocateAndAccess) {
  DeviceMemory mem(1 << 20);
  auto buf = mem.Allocate(1000);
  ASSERT_TRUE(buf.ok());
  EXPECT_GE(buf->bytes, 1000u);
  EXPECT_EQ(buf->addr % 256, std::uint64_t(kGlobalBase % 256));
  EXPECT_NE(buf->host, nullptr);
  buf->host[0] = std::byte{42};
  EXPECT_EQ(mem.bytes_in_use(), buf->bytes);
}

TEST(DeviceMemory, ZeroBytesRejected) {
  DeviceMemory mem(1 << 20);
  EXPECT_FALSE(mem.Allocate(0).ok());
}

TEST(DeviceMemory, CapacityEnforced) {
  DeviceMemory mem(4096);
  auto a = mem.Allocate(2048);
  ASSERT_TRUE(a.ok());
  auto b = mem.Allocate(4096);
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), ErrorCode::kOutOfMemory);
  // Freeing makes space again.
  ASSERT_TRUE(mem.Free(a->addr).ok());
  EXPECT_TRUE(mem.Allocate(4096).ok());
}

// The OOM diagnostic must name the caller's size AND the aligned extent the
// allocator actually tried to reserve — debugging a capacity boundary with
// only one of the two is guesswork.
TEST(DeviceMemory, OomMessageReportsRequestedAndRoundedSize) {
  DeviceMemory mem(4096);
  auto b = mem.Allocate(5000);
  ASSERT_FALSE(b.ok());
  const std::string msg = b.status().ToString();
  EXPECT_NE(msg.find("requested " + FormatBytes(5000)), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("rounded to " + FormatBytes(5120)), std::string::npos)
      << msg;
  EXPECT_NE(msg.find(FormatBytes(4096)), std::string::npos) << msg;
}

TEST(DeviceMemory, DistinctAllocationsDoNotOverlap) {
  DeviceMemory mem(1 << 22);
  std::vector<DeviceBuffer> bufs;
  for (int i = 0; i < 50; ++i) {
    auto b = mem.Allocate(100 + std::uint64_t(i) * 13);
    ASSERT_TRUE(b.ok());
    bufs.push_back(*b);
  }
  for (std::size_t i = 0; i < bufs.size(); ++i) {
    for (std::size_t j = i + 1; j < bufs.size(); ++j) {
      const bool disjoint = bufs[i].addr + bufs[i].bytes <= bufs[j].addr ||
                            bufs[j].addr + bufs[j].bytes <= bufs[i].addr;
      EXPECT_TRUE(disjoint) << i << " vs " << j;
    }
  }
}

TEST(DeviceMemory, DeterministicAddresses) {
  auto run = [] {
    DeviceMemory mem(1 << 22);
    std::vector<DeviceAddr> addrs;
    std::vector<DeviceAddr> bases;
    for (int i = 0; i < 20; ++i) {
      auto b = mem.Allocate(64 + std::uint64_t(i) * 300);
      bases.push_back(b->addr);
      addrs.push_back(b->addr);
    }
    // Free every other one, then reallocate.
    for (int i = 0; i < 20; i += 2) EXPECT_TRUE(mem.Free(bases[std::size_t(i)]).ok());
    for (int i = 0; i < 5; ++i) addrs.push_back(mem.Allocate(128)->addr);
    return addrs;
  };
  EXPECT_EQ(run(), run());
}

TEST(DeviceMemory, FreeUnknownAddressFails) {
  DeviceMemory mem(1 << 20);
  EXPECT_FALSE(mem.Free(kGlobalBase + 12345).ok());
}

TEST(DeviceMemory, FreeListReuseAndCoalescing) {
  DeviceMemory mem(1 << 20);
  auto a = *mem.Allocate(1024);
  auto b = *mem.Allocate(1024);
  auto c = *mem.Allocate(1024);
  (void)c;
  ASSERT_TRUE(mem.Free(a.addr).ok());
  ASSERT_TRUE(mem.Free(b.addr).ok());
  // The coalesced hole should satisfy a 2048-byte request at a's address.
  auto d = *mem.Allocate(2048);
  EXPECT_EQ(d.addr, a.addr);
}

TEST(DeviceMemory, HostPtrTranslation) {
  DeviceMemory mem(1 << 20);
  auto buf = *mem.Allocate(512);
  EXPECT_EQ(mem.HostPtr(buf.addr), buf.host);
  EXPECT_EQ(mem.HostPtr(buf.addr + 100), buf.host + 100);
  EXPECT_EQ(mem.HostPtr(buf.addr + buf.bytes), nullptr);
  EXPECT_EQ(mem.HostPtr(kGlobalBase - 1), nullptr);
}

TEST(DeviceMemory, ContainsRange) {
  DeviceMemory mem(1 << 20);
  auto buf = *mem.Allocate(512);
  EXPECT_TRUE(mem.Contains(buf.addr, 512));
  EXPECT_TRUE(mem.Contains(buf.addr + 8, 8));
  EXPECT_FALSE(mem.Contains(buf.addr, buf.bytes + 1));
}

// Tight range semantics at the upper boundary: the one-past-the-end address
// is not part of the allocation, even for an empty range — a zero-length
// Contains there used to slip through the arithmetic.
TEST(DeviceMemory, ContainsOnePastEndIsOutside) {
  DeviceMemory mem(1 << 20);
  auto buf = *mem.Allocate(512);
  EXPECT_TRUE(mem.Contains(buf.addr, 0));
  EXPECT_TRUE(mem.Contains(buf.addr + buf.bytes - 1, 1));
  EXPECT_TRUE(mem.Contains(buf.addr + buf.bytes - 1, 0));
  EXPECT_FALSE(mem.Contains(buf.addr + buf.bytes, 0));
  EXPECT_FALSE(mem.Contains(buf.addr + buf.bytes, 1));
  // Overflow-safety: a huge length cannot wrap past the end.
  EXPECT_FALSE(mem.Contains(buf.addr, ~std::uint64_t{0}));
}

// First-fit: a freed hole is reused (and split) before the frontier grows.
TEST(DeviceMemory, FirstFitReusesAndSplitsHoles) {
  DeviceMemory mem(1 << 20);
  auto a = *mem.Allocate(1024);
  auto b = *mem.Allocate(1024);
  auto c = *mem.Allocate(1024);
  (void)c;
  ASSERT_TRUE(mem.Free(a.addr).ok());
  // The 1024-byte hole at a's address satisfies two 512-byte requests.
  auto d = *mem.Allocate(512);
  EXPECT_EQ(d.addr, a.addr);
  auto e = *mem.Allocate(512);
  EXPECT_EQ(e.addr, a.addr + 512);
  // The hole is exhausted: the next allocation extends past c.
  auto f = *mem.Allocate(512);
  EXPECT_EQ(f.addr, c.addr + c.bytes);
  (void)b;
}

// Freeing the middle allocation merges with BOTH neighbours in one step.
TEST(DeviceMemory, CoalescesWithPredecessorAndSuccessor) {
  DeviceMemory mem(1 << 20);
  auto a = *mem.Allocate(1024);
  auto b = *mem.Allocate(1024);
  auto c = *mem.Allocate(1024);
  auto d = *mem.Allocate(1024);  // keeps the merged hole off the frontier
  (void)d;
  ASSERT_TRUE(mem.Free(a.addr).ok());
  ASSERT_TRUE(mem.Free(c.addr).ok());
  ASSERT_TRUE(mem.Free(b.addr).ok());  // merges a|b|c into one 3072 hole
  auto e = *mem.Allocate(3072);
  EXPECT_EQ(e.addr, a.addr);
}

// Holes that touch the frontier are returned to it, so the address space
// does not creep upward across alloc/free cycles.
TEST(DeviceMemory, FrontierReclamation) {
  DeviceMemory mem(1 << 20);
  auto a = *mem.Allocate(1024);
  auto b = *mem.Allocate(1024);
  ASSERT_TRUE(mem.Free(a.addr).ok());  // interior hole
  ASSERT_TRUE(mem.Free(b.addr).ok());  // coalesces, then rejoins the frontier
  // A request larger than either hole starts at the very base again.
  auto c = *mem.Allocate(8192);
  EXPECT_EQ(c.addr, a.addr);
  EXPECT_EQ(c.addr, DeviceAddr(kGlobalBase));
}

TEST(DeviceMemory, PeakTracksHighWater) {
  DeviceMemory mem(1 << 20);
  auto a = *mem.Allocate(4096);
  EXPECT_EQ(mem.peak_bytes(), 4096u);
  ASSERT_TRUE(mem.Free(a.addr).ok());
  EXPECT_EQ(mem.bytes_in_use(), 0u);
  EXPECT_EQ(mem.peak_bytes(), 4096u);
}

TEST(DeviceMemory, TypedPointers) {
  DeviceMemory mem(1 << 20);
  auto buf = *mem.Allocate(64 * sizeof(double));
  DevicePtr<double> p = buf.Typed<double>();
  p[3] = 2.5;
  EXPECT_DOUBLE_EQ(buf.Typed<double>(3).host[0], 2.5);
  EXPECT_EQ((p + 3).addr, buf.addr + 3 * sizeof(double));
}

// Property: a random alloc/free workload never corrupts accounting.
TEST(DeviceMemory, RandomWorkloadInvariants) {
  DeviceMemory mem(1 << 20);
  Rng rng(2024);
  std::vector<DeviceBuffer> live;
  std::uint64_t expected_in_use = 0;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.NextBool(0.6)) {
      auto b = mem.Allocate(1 + rng.NextBounded(4096));
      if (b.ok()) {
        live.push_back(*b);
        expected_in_use += b->bytes;
      }
    } else {
      const std::size_t i = std::size_t(rng.NextBounded(live.size()));
      expected_in_use -= live[i].bytes;
      ASSERT_TRUE(mem.Free(live[i].addr).ok());
      live.erase(live.begin() + std::ptrdiff_t(i));
    }
    ASSERT_EQ(mem.bytes_in_use(), expected_in_use);
    ASSERT_EQ(mem.allocation_count(), live.size());
    ASSERT_LE(mem.bytes_in_use(), mem.capacity());
  }
}

}  // namespace
}  // namespace dgc::sim

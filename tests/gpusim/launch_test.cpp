// End-to-end kernel execution tests: coroutine kernels through the full
// warp scheduler, memory hierarchy, and event engine.
#include <gtest/gtest.h>

#include <numeric>

#include "gpusim/block.h"
#include "gpusim/ctx.h"
#include "gpusim/device.h"

namespace dgc::sim {
namespace {

std::unique_ptr<Device> MakeDevice() {
  return std::make_unique<Device>(DeviceSpec::TestDevice());
}

TEST(Launch, VectorAdd) {
  auto dev = MakeDevice();
  const int n = 1024;
  auto a = *dev->Malloc(n * sizeof(double));
  auto b = *dev->Malloc(n * sizeof(double));
  auto c = *dev->Malloc(n * sizeof(double));
  for (int i = 0; i < n; ++i) {
    a.Typed<double>()[i] = i;
    b.Typed<double>()[i] = 2.0 * i;
  }

  auto pa = a.Typed<double>(), pb = b.Typed<double>(), pc = c.Typed<double>();
  LaunchConfig cfg{.grid = {4, 1, 1}, .block = {64, 1, 1}, .name = "vecadd"};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    const std::uint32_t stride = ctx.block_threads * ctx.grid_blocks;
    for (std::uint32_t i = ctx.block_id * ctx.block_threads + ctx.thread_id;
         i < n; i += stride) {
      const double x = co_await ctx.Load(pa + i);
      const double y = co_await ctx.Load(pb + i);
      co_await ctx.Store(pc + i, x + y);
    }
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok());
  for (int i = 0; i < n; ++i) {
    ASSERT_DOUBLE_EQ(c.Typed<double>()[i], 3.0 * i) << i;
  }
  EXPECT_GT(result->cycles, 0u);
  EXPECT_EQ(result->stats.blocks_launched, 4u);
  EXPECT_GT(result->stats.load_instructions, 0u);
  EXPECT_GT(result->stats.store_instructions, 0u);
}

TEST(Launch, DeterministicCycleCounts) {
  auto run = [] {
    auto dev = MakeDevice();
    const int n = 512;
    auto a = *dev->Malloc(n * sizeof(float));
    auto p = a.Typed<float>();
    LaunchConfig cfg{.grid = {2, 1, 1}, .block = {32, 1, 1}};
    auto r = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
      for (std::uint32_t i = ctx.block_id * ctx.block_threads + ctx.thread_id;
           i < n; i += ctx.block_threads * ctx.grid_blocks) {
        co_await ctx.Store(p + i, float(i));
        co_await ctx.Work(10);
      }
    });
    return r->cycles;
  };
  EXPECT_EQ(run(), run());
}

TEST(Launch, NestedDeviceFunctions) {
  auto dev = MakeDevice();
  auto buf = *dev->Malloc(sizeof(std::uint64_t) * 32);
  auto p = buf.Typed<std::uint64_t>();

  struct Helpers {
    static DeviceTask<std::uint64_t> Inner(ThreadCtx& ctx,
                                           DevicePtr<std::uint64_t> q) {
      const std::uint64_t v = co_await ctx.Load(q);
      co_await ctx.Work(5);
      co_return v * 2;
    }
    static DeviceTask<std::uint64_t> Middle(ThreadCtx& ctx,
                                            DevicePtr<std::uint64_t> q) {
      const std::uint64_t v = co_await Inner(ctx, q);
      co_return v + 1;
    }
  };

  for (int i = 0; i < 32; ++i) p[i] = std::uint64_t(i);
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {32, 1, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    const std::uint64_t r = co_await Helpers::Middle(ctx, p + ctx.thread_id);
    co_await ctx.Store(p + ctx.thread_id, r);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
  for (std::uint64_t i = 0; i < 32; ++i) EXPECT_EQ(p[std::ptrdiff_t(i)], i * 2 + 1);
}

TEST(Launch, AtomicReductionExact) {
  auto dev = MakeDevice();
  auto buf = *dev->Malloc(sizeof(std::uint64_t));
  auto p = buf.Typed<std::uint64_t>();
  *p = 0;
  const int blocks = 8, threads = 64;
  LaunchConfig cfg{.grid = {std::uint32_t(blocks), 1, 1},
                   .block = {std::uint32_t(threads), 1, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    const std::uint64_t v =
        std::uint64_t(ctx.block_id) * ctx.block_threads + ctx.thread_id + 1;
    co_await ctx.AtomicAdd(p, v);
  });
  ASSERT_TRUE(result.ok());
  const std::uint64_t n = std::uint64_t(blocks) * threads;
  EXPECT_EQ(*p, n * (n + 1) / 2);
  EXPECT_EQ(result->stats.atomic_instructions, n / 32);  // one per warp
}

TEST(Launch, AtomicReturnsOldValue) {
  auto dev = MakeDevice();
  auto buf = *dev->Malloc(2 * sizeof(std::uint64_t));
  auto counter = buf.Typed<std::uint64_t>();
  auto seen = buf.Typed<std::uint64_t>(1);
  *counter = 0;
  *seen = 0;
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {32, 1, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    const std::uint64_t ticket = co_await ctx.AtomicAdd(counter, std::uint64_t{1});
    // Tickets must be unique in [0,32): accumulate a bitmask.
    co_await ctx.AtomicAdd(seen, std::uint64_t(1) << ticket);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*counter, 32u);
  EXPECT_EQ(*seen, ~std::uint64_t(0) >> 32);  // low 32 bits set
}

TEST(Launch, SyncThreadsOrdersPhases) {
  auto dev = MakeDevice();
  const int threads = 128;
  auto buf = *dev->Malloc(threads * sizeof(std::uint64_t));
  auto p = buf.Typed<std::uint64_t>();
  for (int i = 0; i < threads; ++i) p[i] = 1;

  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {std::uint32_t(threads), 1, 1}};
  // Phase 1: every thread writes its slot. Barrier. Phase 2: thread i reads
  // slot (i+1) % n. Without the barrier this would read stale values for
  // some interleavings; with it, every read must observe phase-1 data.
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    co_await ctx.Store(p + ctx.thread_id, std::uint64_t(ctx.thread_id) + 100);
    co_await ctx.SyncThreads();
    const std::uint64_t next =
        co_await ctx.Load(p + (ctx.thread_id + 1) % threads);
    co_await ctx.SyncThreads();
    co_await ctx.Store(p + ctx.thread_id, next);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
  for (int i = 0; i < threads; ++i) {
    EXPECT_EQ(p[i], std::uint64_t((i + 1) % threads) + 100) << i;
  }
  EXPECT_GE(result->stats.barrier_arrivals, std::uint64_t(2 * threads));
}

TEST(Launch, EarlyExitingLanesDoNotDeadlockBarrier) {
  auto dev = MakeDevice();
  auto buf = *dev->Malloc(sizeof(std::uint64_t));
  auto p = buf.Typed<std::uint64_t>();
  *p = 0;
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {64, 1, 1}};
  // Half the lanes exit immediately; the rest sync then count themselves.
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    if (ctx.thread_id % 2 == 0) co_return;
    co_await ctx.SyncThreads();
    co_await ctx.AtomicAdd(p, std::uint64_t{1});
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*p, 32u);
}

TEST(Launch, SharedMemoryBlockLocalReduction) {
  auto dev = MakeDevice();
  const int blocks = 4, threads = 64;
  auto out = *dev->Malloc(std::uint64_t(blocks) * sizeof(std::uint64_t));
  auto po = out.Typed<std::uint64_t>();
  LaunchConfig cfg{.grid = {std::uint32_t(blocks), 1, 1},
                   .block = {std::uint32_t(threads), 1, 1},
                   .shared_bytes = 64};
  // Each block reduces its thread ids into ITS OWN shared slot (the CUDA
  // `__shared__` idiom, via SharedAt). Cross-block isolation ⇒ every block
  // computes the same local sum.
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    auto slot = ctx.block->SharedAt<std::uint64_t>(0);
    if (ctx.thread_id == 0) co_await ctx.Store(slot, std::uint64_t{0});
    co_await ctx.SyncThreads();
    co_await ctx.AtomicAdd(slot, std::uint64_t(ctx.thread_id));
    co_await ctx.SyncThreads();
    if (ctx.thread_id == 0) {
      const std::uint64_t sum = co_await ctx.Load(slot);
      co_await ctx.Store(po + ctx.block_id, sum);
    }
  });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok()) << (result->failures.empty() ? "" : result->failures[0]);
  const std::uint64_t expect = std::uint64_t(threads) * (threads - 1) / 2;
  for (int b = 0; b < blocks; ++b) EXPECT_EQ(po[b], expect) << b;
  EXPECT_GT(result->stats.smem_accesses, 0u);
}

TEST(Launch, WorkOccupiesIssuePipes) {
  // One warp doing N work ops of C cycles takes at least N*C cycles.
  auto dev = MakeDevice();
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {32, 1, 1}};
  const int iters = 50;
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    for (int i = 0; i < iters; ++i) co_await ctx.Work(100);
    (void)ctx;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->stats.elapsed_cycles, std::uint64_t(iters) * 100);
  EXPECT_EQ(result->stats.compute_cycles_issued, std::uint64_t(iters) * 100);
}

TEST(Launch, ComputeThroughputSharedWithinSm) {
  // TestDevice has 2 issue pipes per SM. 4 warps of pure compute on 1 block
  // must take ~2x the single-warp time.
  auto dev = MakeDevice();
  const int iters = 20;
  auto run = [&](std::uint32_t threads) {
    LaunchConfig cfg{.grid = {1, 1, 1}, .block = {threads, 1, 1}};
    auto r = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
      for (int i = 0; i < iters; ++i) co_await ctx.Work(200);
      (void)ctx;
    });
    return r->stats.elapsed_cycles;
  };
  const auto t1 = run(32);    // 1 warp
  const auto t4 = run(128);   // 4 warps, 2 pipes
  EXPECT_GE(t4, t1 * 3 / 2);
  EXPECT_LE(t4, t1 * 3);
}

TEST(Launch, MoreBlocksThanSlotsQueue) {
  // TestDevice: 2 SMs × 4 blocks → 8 resident; launch 32 small blocks.
  auto dev = MakeDevice();
  auto buf = *dev->Malloc(32 * sizeof(std::uint64_t));
  auto p = buf.Typed<std::uint64_t>();
  LaunchConfig cfg{.grid = {32, 1, 1}, .block = {32, 1, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    if (ctx.thread_id == 0) {
      co_await ctx.Store(p + ctx.block_id, std::uint64_t(ctx.block_id) + 1);
    }
    co_await ctx.Work(500);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
  for (int i = 0; i < 32; ++i) EXPECT_EQ(p[i], std::uint64_t(i) + 1);
  EXPECT_EQ(result->stats.blocks_launched, 32u);
}

TEST(Launch, KernelExceptionReportedAsLaneFailure) {
  auto dev = MakeDevice();
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {32, 1, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    if (ctx.thread_id == 7) throw std::runtime_error("lane 7 exploded");
    co_return;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ok());
  EXPECT_EQ(result->failure_count, 1u);
  ASSERT_EQ(result->failures.size(), 1u);
  EXPECT_NE(result->failures[0].find("lane 7 exploded"), std::string::npos);
}

TEST(Launch, ExceptionPropagatesThroughNestedTasks) {
  auto dev = MakeDevice();
  struct Helpers {
    static DeviceTask<int> Thrower(ThreadCtx& ctx) {
      co_await ctx.Work(1);
      throw std::runtime_error("deep failure");
    }
    static DeviceTask<int> Caller(ThreadCtx& ctx) {
      co_return co_await Thrower(ctx);
    }
  };
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {1, 1, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    try {
      (void)co_await Helpers::Caller(ctx);
      co_await ctx.Store(DevicePtr<int>{}, 0);  // unreachable
    } catch (const std::runtime_error& e) {
      if (std::string(e.what()) != "deep failure") throw;
    }
  });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok()) << (result->failures.empty() ? "" : result->failures[0]);
}

TEST(Launch, InvalidConfigsRejected) {
  auto dev = MakeDevice();
  auto noop = [](ThreadCtx&) -> DeviceTask<void> { co_return; };
  {
    LaunchConfig cfg{.grid = {0, 1, 1}};
    EXPECT_FALSE(dev->Launch(cfg, noop).ok());
  }
  {
    LaunchConfig cfg{.block = {2048, 1, 1}};
    EXPECT_FALSE(dev->Launch(cfg, noop).ok());
  }
  {
    LaunchConfig cfg{.shared_bytes = 10u << 20};
    EXPECT_FALSE(dev->Launch(cfg, noop).ok());
  }
  EXPECT_FALSE(dev->Launch(LaunchConfig{}, KernelFn{}).ok());
}

TEST(Launch, CoalescedFasterThanStridedWhenBandwidthBound) {
  // Same element count, enough concurrent warps to saturate DRAM: the
  // strided layout moves `stride`× the bytes and must be clearly slower.
  auto dev = MakeDevice();
  const std::uint32_t n = 65536;
  const int stride = 8;
  auto buf = *dev->Malloc(std::uint64_t(n) * stride * sizeof(double));
  auto p = buf.Typed<double>();
  auto run = [&](int step) {
    LaunchConfig cfg{.grid = {8, 1, 1}, .block = {256, 1, 1}};
    auto r = dev->Launch(cfg, [&, step](ThreadCtx& ctx) -> DeviceTask<void> {
      const std::uint32_t gstride = ctx.block_threads * ctx.grid_blocks;
      double acc = 0;
      for (std::uint32_t i = ctx.block_id * ctx.block_threads + ctx.thread_id;
           i < n; i += gstride) {
        acc += co_await ctx.Load(p + std::ptrdiff_t(i) * step);
      }
      (void)acc;
    });
    return r->stats.elapsed_cycles;
  };
  const auto t_coalesced = run(1);
  const auto t_strided = run(stride);
  EXPECT_GT(t_strided, t_coalesced * 2);
}

TEST(Launch, HostCallRoundTrip) {
  auto dev = MakeDevice();
  auto buf = *dev->Malloc(32 * sizeof(std::uint64_t));
  auto p = buf.Typed<std::uint64_t>();
  int host_calls = 0;
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {32, 1, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    std::function<std::uint64_t()> handler =
        [&host_calls, tid = ctx.thread_id]() -> std::uint64_t {
      ++host_calls;
      return tid * 10;
    };
    const std::uint64_t reply = co_await ctx.HostCall(&handler, 500);
    co_await ctx.Store(p + ctx.thread_id, reply);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(host_calls, 32);
  for (std::uint64_t i = 0; i < 32; ++i) EXPECT_EQ(p[std::ptrdiff_t(i)], i * 10);
  // 32 serialized host calls at 500 cycles each dominate the runtime.
  EXPECT_GE(result->stats.elapsed_cycles, 32u * 500u);
  EXPECT_EQ(result->stats.external_calls, 32u);
}

TEST(Launch, DivergentBranchesSerialize) {
  auto dev = MakeDevice();
  auto buf = *dev->Malloc(64 * sizeof(double));
  auto p = buf.Typed<double>();
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {32, 1, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    if (ctx.thread_id % 2 == 0) {
      co_await ctx.Store(p + ctx.thread_id, 1.0);
    } else {
      co_await ctx.Work(10);
      co_await ctx.Store(p + ctx.thread_id, 2.0);
    }
  });
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.divergent_replays, 0u);
  for (int i = 0; i < 32; ++i) EXPECT_DOUBLE_EQ(p[i], i % 2 == 0 ? 1.0 : 2.0);
}

TEST(Launch, TransferCostsModelled) {
  auto dev = MakeDevice();
  auto buf = *dev->Malloc(1 << 16);
  std::vector<std::byte> host(1 << 16, std::byte{7});
  const std::uint64_t up = dev->CopyToDevice(buf, host.data(), host.size());
  EXPECT_GT(up, std::uint64_t(dev->spec().pcie_latency_cycles));
  EXPECT_EQ(buf.host[100], std::byte{7});
  buf.host[100] = std::byte{9};
  const std::uint64_t down = dev->CopyFromDevice(host.data(), buf, host.size());
  EXPECT_EQ(host[100], std::byte{9});
  EXPECT_EQ(up, down);
}

TEST(Launch, LifetimeStatsAccumulate) {
  auto dev = MakeDevice();
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {32, 1, 1}};
  auto k = [](ThreadCtx& ctx) -> DeviceTask<void> { co_await ctx.Work(10); };
  ASSERT_TRUE(dev->Launch(cfg, k).ok());
  ASSERT_TRUE(dev->Launch(cfg, k).ok());
  EXPECT_EQ(dev->launches(), 2u);
  EXPECT_EQ(dev->lifetime_stats().blocks_launched, 2u);
}

TEST(Launch, ThreeDimBlockIds) {
  auto dev = MakeDevice();
  auto buf = *dev->Malloc(64 * sizeof(std::uint32_t));
  auto p = buf.Typed<std::uint32_t>();
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {8, 8, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    // Encode (x,y) to verify the 3-D decomposition of the linear id.
    co_await ctx.Store(p + ctx.thread_id, ctx.tid3.x * 100 + ctx.tid3.y);
  });
  ASSERT_TRUE(result.ok());
  for (std::uint32_t y = 0; y < 8; ++y) {
    for (std::uint32_t x = 0; x < 8; ++x) {
      EXPECT_EQ(p[y * 8 + x], x * 100 + y);
    }
  }
}

}  // namespace
}  // namespace dgc::sim

// Focused unit tests for the coroutine task machinery and lane-granular
// barriers (the pieces everything else is built on).
#include <gtest/gtest.h>

#include "gpusim/barrier.h"
#include "gpusim/block.h"
#include "gpusim/ctx.h"
#include "gpusim/device.h"

namespace dgc::sim {
namespace {

std::unique_ptr<Device> MakeDevice() {
  return std::make_unique<Device>(DeviceSpec::TestDevice());
}

// --- DeviceTask semantics ----------------------------------------------------

TEST(DeviceTask, ValueTypesRoundTrip) {
  auto dev = MakeDevice();
  struct Helpers {
    static DeviceTask<double> Dbl(ThreadCtx& ctx) {
      co_await ctx.Work(1);
      co_return 2.5;
    }
    static DeviceTask<std::int32_t> Int(ThreadCtx& ctx) {
      co_await ctx.Work(1);
      co_return -7;
    }
    static DeviceTask<std::uint64_t> U64(ThreadCtx& ctx) {
      co_await ctx.Work(1);
      co_return ~std::uint64_t(0);
    }
  };
  double d = 0;
  std::int32_t i = 0;
  std::uint64_t u = 0;
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {1, 1, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    d = co_await Helpers::Dbl(ctx);
    i = co_await Helpers::Int(ctx);
    u = co_await Helpers::U64(ctx);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_EQ(i, -7);
  EXPECT_EQ(u, ~std::uint64_t(0));
}

TEST(DeviceTask, DeepNestingUnwindsCorrectly) {
  auto dev = MakeDevice();
  struct Helpers {
    static DeviceTask<int> Recurse(ThreadCtx& ctx, int depth) {
      if (depth == 0) {
        co_await ctx.Work(1);
        co_return 1;
      }
      const int below = co_await Recurse(ctx, depth - 1);
      co_return below + 1;
    }
  };
  int depth_reached = 0;
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {1, 1, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    depth_reached = co_await Helpers::Recurse(ctx, 64);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(depth_reached, 65);
}

TEST(DeviceTask, ExceptionInMiddleOfChainUnwindsToHandler) {
  auto dev = MakeDevice();
  struct Helpers {
    static DeviceTask<int> Level2(ThreadCtx& ctx) {
      co_await ctx.Work(1);
      throw std::runtime_error("level2");
    }
    static DeviceTask<int> Level1(ThreadCtx& ctx) {
      co_return co_await Level2(ctx) + 1;  // no handler: propagates
    }
  };
  bool caught = false;
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {1, 1, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    try {
      (void)co_await Helpers::Level1(ctx);
    } catch (const std::runtime_error& e) {
      caught = std::string(e.what()) == "level2";
    }
    co_await ctx.Work(1);  // execution continues after the handler
  });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
  EXPECT_TRUE(caught);
}

TEST(DeviceTask, ManySequentialChildTasksReuseCleanly) {
  auto dev = MakeDevice();
  struct Helpers {
    static DeviceTask<int> One(ThreadCtx& ctx, int i) {
      co_await ctx.Work(1);
      co_return i;
    }
  };
  int sum = 0;
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {1, 1, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    for (int i = 0; i < 500; ++i) sum += co_await Helpers::One(ctx, i);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(sum, 500 * 499 / 2);
}

// --- Lane-granular barriers ----------------------------------------------------

TEST(BarrierUnit, SubsetBarrierSynchronizesOnlyItsMembers) {
  // Lanes 0..15 use a custom barrier; lanes 16..31 run free. The free
  // lanes must be able to finish while the barrier half is still parked.
  auto dev = MakeDevice();
  auto buf = *dev->Malloc(2 * sizeof(std::uint64_t));
  auto before = buf.Typed<std::uint64_t>();
  auto after = buf.Typed<std::uint64_t>(1);
  *before = 0;
  *after = 0;
  Barrier half("half");
  half.AddParticipants(16);
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {32, 1, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    if (ctx.thread_id < 16) {
      ctx.lane->memberships.push_back(&half);
      co_await ctx.AtomicAdd(before, std::uint64_t{1});
      co_await ctx.SyncOn(&half);
      // Every member arrived before anyone passed.
      const std::uint64_t seen = co_await ctx.Load(before);
      if (seen != 16) throw std::runtime_error("barrier released early");
      co_await ctx.AtomicAdd(after, std::uint64_t{1});
    } else {
      co_await ctx.Work(5);
    }
  });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok()) << (result->failures.empty() ? "" : result->failures[0]);
  EXPECT_EQ(*after, 16u);
}

TEST(BarrierUnit, ReusableAcrossPhases) {
  auto dev = MakeDevice();
  auto buf = *dev->Malloc(sizeof(std::uint64_t));
  auto p = buf.Typed<std::uint64_t>();
  *p = 0;
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {64, 1, 1}};
  const int phases = 10;
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    for (int ph = 0; ph < phases; ++ph) {
      co_await ctx.AtomicAdd(p, std::uint64_t{1});
      co_await ctx.SyncThreads();
      // After each barrier, the total must be a full multiple of 64.
      const std::uint64_t v = co_await ctx.Load(p);
      if (v % 64 != 0 || v < std::uint64_t(ph + 1) * 64) {
        throw std::runtime_error("phase tearing");
      }
      co_await ctx.SyncThreads();
    }
  });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok()) << (result->failures.empty() ? "" : result->failures[0]);
  EXPECT_EQ(*p, std::uint64_t(phases) * 64);
  EXPECT_EQ(dev->lifetime_stats().barrier_arrivals,
            std::uint64_t(2 * phases) * 64);
}

TEST(BarrierUnit, ReleaseCountsAreTracked) {
  auto dev = MakeDevice();
  Barrier b("counted");
  b.AddParticipants(32);
  LaunchConfig cfg{.grid = {1, 1, 1}, .block = {32, 1, 1}};
  auto result = dev->Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    ctx.lane->memberships.push_back(&b);
    co_await ctx.SyncOn(&b);
    co_await ctx.SyncOn(&b);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(b.releases(), 2u);
}

}  // namespace
}  // namespace dgc::sim

#include "gpusim/cache.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace dgc::sim {
namespace {

TEST(SectorCache, MissThenHit) {
  SectorCache cache(1024, 32, 4);  // 8 sets × 4 ways
  EXPECT_FALSE(cache.Access(7));
  EXPECT_TRUE(cache.Access(7));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(SectorCache, ProbeDoesNotDisturb) {
  SectorCache cache(1024, 32, 4);
  cache.Access(3);
  EXPECT_TRUE(cache.Probe(3));
  EXPECT_FALSE(cache.Probe(4));
  EXPECT_EQ(cache.hits(), 0u);  // probes are not counted
}

TEST(SectorCache, LruEviction) {
  SectorCache cache(2 * 32, 32, 2);  // 1 set × 2 ways
  cache.Access(0);
  cache.Access(1);
  cache.Access(0);  // 0 most recent
  cache.Access(2);  // evicts 1
  EXPECT_TRUE(cache.Probe(0));
  EXPECT_FALSE(cache.Probe(1));
  EXPECT_TRUE(cache.Probe(2));
}

TEST(SectorCache, SetConflictsOnlyWithinSet) {
  SectorCache cache(8 * 32, 32, 1);  // 8 sets × 1 way, direct-mapped
  cache.Access(0);
  cache.Access(8);  // same set (0 % 8), evicts 0
  EXPECT_FALSE(cache.Probe(0));
  cache.Access(1);  // different set, no interference
  EXPECT_TRUE(cache.Probe(8));
}

TEST(SectorCache, ClearResets) {
  SectorCache cache(1024, 32, 4);
  cache.Access(5);
  cache.Clear();
  EXPECT_FALSE(cache.Probe(5));
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(SectorCache, WorkingSetSmallerThanCacheAlwaysHitsAfterWarmup) {
  SectorCache cache(64 * 32, 32, 4);
  for (std::uint64_t s = 0; s < 32; ++s) cache.Access(s);
  const std::uint64_t misses_after_warmup = cache.misses();
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t s = 0; s < 32; ++s) EXPECT_TRUE(cache.Access(s));
  }
  EXPECT_EQ(cache.misses(), misses_after_warmup);
}

TEST(SectorCache, StreamingNeverHits) {
  SectorCache cache(64 * 32, 32, 4);
  for (std::uint64_t s = 0; s < 10000; ++s) EXPECT_FALSE(cache.Access(s));
}

TEST(SectorCache, NonPowerOfTwoSetsStillIndexCorrectly) {
  // 3 sets × 2 ways: the masked fast path does not apply, indexing falls
  // back to modulo. Same-set conflicts must follow sector % 3.
  SectorCache cache(3 * 2 * 32, 32, 2);
  ASSERT_EQ(cache.sets(), 3u);
  cache.Access(0);
  cache.Access(3);
  cache.Access(6);  // third resident of set 0 evicts LRU (0)
  EXPECT_FALSE(cache.Probe(0));
  EXPECT_TRUE(cache.Probe(3));
  EXPECT_TRUE(cache.Probe(6));
  cache.Access(1);  // set 1: untouched by the set-0 traffic
  EXPECT_TRUE(cache.Probe(3));
  EXPECT_TRUE(cache.Probe(6));
}

// Property: with power-of-two sets the masked index must behave exactly
// like modulo — same-set residency groups are the sectors congruent mod
// sets, including ids far above 2^32 (the mask applies to the low bits).
TEST(SectorCacheProperty, MaskedIndexMatchesModulo) {
  SectorCache cache(8 * 2 * 32, 32, 2);  // 8 sets × 2 ways
  ASSERT_EQ(cache.sets(), 8u);
  const std::uint64_t big = (std::uint64_t(1) << 40) + 5;  // set 5
  cache.Access(big);
  cache.Access(5);        // same set, different tag
  EXPECT_TRUE(cache.Probe(big));
  EXPECT_TRUE(cache.Probe(5));
  cache.Access(8 * 7 + 5);  // same set: third tag evicts LRU (big)
  EXPECT_FALSE(cache.Probe(big));
  EXPECT_TRUE(cache.Probe(5));
}

// Property: hits + misses == accesses for any access pattern.
TEST(SectorCacheProperty, AccountingConsistent) {
  SectorCache cache(32 * 32, 32, 2);
  Rng rng(123);
  const int n = 5000;
  for (int i = 0; i < n; ++i) cache.Access(rng.NextBounded(256));
  EXPECT_EQ(cache.hits() + cache.misses(), std::uint64_t(n));
  EXPECT_GT(cache.hits(), 0u);  // 256 sectors over 64 slots: some locality
}

}  // namespace
}  // namespace dgc::sim

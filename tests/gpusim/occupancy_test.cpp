#include "gpusim/occupancy.h"

#include <gtest/gtest.h>

#include "gpusim/ctx.h"
#include "gpusim/device.h"

namespace dgc::sim {
namespace {

DeviceSpec A100() { return DeviceSpec::A100_40GB(); }

TEST(Occupancy, SmallBlocksLimitedByBlockSlots) {
  LaunchConfig cfg{.grid = {1000, 1, 1}, .block = {32, 1, 1}};
  auto occ = ComputeOccupancy(A100(), cfg);
  ASSERT_TRUE(occ.ok());
  EXPECT_EQ(occ->warps_per_block, 1);
  EXPECT_EQ(occ->blocks_per_sm, 32);  // A100 block-slot limit
  EXPECT_EQ(occ->limiter, "block slots");
  EXPECT_EQ(occ->warps_per_sm, 32);
  EXPECT_NEAR(occ->warp_occupancy, 0.5, 1e-9);
}

TEST(Occupancy, FullBlocksLimitedByWarpContexts) {
  LaunchConfig cfg{.grid = {64, 1, 1}, .block = {1024, 1, 1}};
  auto occ = ComputeOccupancy(A100(), cfg);
  ASSERT_TRUE(occ.ok());
  EXPECT_EQ(occ->warps_per_block, 32);
  EXPECT_EQ(occ->blocks_per_sm, 2);  // 64 warp contexts / 32
  EXPECT_EQ(occ->limiter, "warp contexts");
  EXPECT_NEAR(occ->warp_occupancy, 1.0, 1e-9);
}

TEST(Occupancy, SharedMemoryCanLimit) {
  DeviceSpec spec = A100();
  LaunchConfig cfg{.grid = {64, 1, 1},
                   .block = {32, 1, 1},
                   .shared_bytes = spec.shared_memory_per_block};
  auto occ = ComputeOccupancy(spec, cfg);
  ASSERT_TRUE(occ.ok());
  // Pool = per-block limit × 32 slots; each block takes a full per-block
  // quota → 32 fit; the slot limit coincides, so slots report first.
  EXPECT_LE(occ->blocks_per_sm, 32);

  // Make shared strictly binding: half the pool per block won't fit 32.
  DeviceSpec tight = spec;
  tight.max_blocks_per_sm = 8;
  LaunchConfig cfg2{.grid = {64, 1, 1},
                    .block = {32, 1, 1},
                    .shared_bytes = spec.shared_memory_per_block};
  auto occ2 = ComputeOccupancy(tight, cfg2);
  ASSERT_TRUE(occ2.ok());
  EXPECT_EQ(occ2->blocks_per_sm, 8);
}

TEST(Occupancy, WavesCoverTheGrid) {
  LaunchConfig cfg{.grid = {10000, 1, 1}, .block = {1024, 1, 1}};
  auto occ = ComputeOccupancy(A100(), cfg);
  ASSERT_TRUE(occ.ok());
  EXPECT_EQ(occ->resident_blocks, 2u * 108u);
  EXPECT_EQ(occ->waves, (10000 + 215) / 216);
}

TEST(Occupancy, RejectsImpossibleConfigs) {
  EXPECT_FALSE(ComputeOccupancy(A100(), {.grid = {0, 1, 1}}).ok());
  EXPECT_FALSE(ComputeOccupancy(A100(), {.block = {2048, 1, 1}}).ok());
  LaunchConfig big_smem{.shared_bytes = 10u << 20};
  EXPECT_FALSE(ComputeOccupancy(A100(), big_smem).ok());
}

TEST(Occupancy, PredictsSimulatedWaves) {
  // The calculator's wave count must match actual simulated behaviour:
  // grid = 2 waves of blocks → roughly double the single-wave makespan.
  DeviceSpec spec = DeviceSpec::TestDevice();  // 2 SMs × 4 blocks = 8
  Device dev(spec);
  auto kernel = [](ThreadCtx& ctx) -> DeviceTask<void> {
    for (int i = 0; i < 20; ++i) co_await ctx.Work(100);
    (void)ctx;
  };
  LaunchConfig one_wave{.grid = {8, 1, 1}, .block = {32, 1, 1}};
  LaunchConfig two_waves{.grid = {16, 1, 1}, .block = {32, 1, 1}};
  auto occ1 = ComputeOccupancy(spec, one_wave);
  auto occ2 = ComputeOccupancy(spec, two_waves);
  ASSERT_TRUE(occ1.ok());
  ASSERT_TRUE(occ2.ok());
  EXPECT_EQ(occ1->waves, 1u);
  EXPECT_EQ(occ2->waves, 2u);
  const auto t1 = dev.Launch(one_wave, kernel)->stats.elapsed_cycles;
  const auto t2 = dev.Launch(two_waves, kernel)->stats.elapsed_cycles;
  EXPECT_GE(t2, t1 * 3 / 2);
  EXPECT_LE(t2, t1 * 3);
}

TEST(Occupancy, MultiDimBlocksCountLinearThreads) {
  LaunchConfig cfg{.grid = {8, 1, 1}, .block = {32, 4, 1}};  // §3.1 shape
  auto occ = ComputeOccupancy(A100(), cfg);
  ASSERT_TRUE(occ.ok());
  EXPECT_EQ(occ->warps_per_block, 4);
}

}  // namespace
}  // namespace dgc::sim

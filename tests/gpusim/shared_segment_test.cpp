// Content-keyed instance-shared read-only segments (DeviceMemory): one
// physical copy per (key, size), refcounted teardown through the ordinary
// Free path, snapshot counters, and per-owner accounting.
#include <gtest/gtest.h>

#include "gpusim/memory.h"

namespace dgc::sim {
namespace {

TEST(SharedSegment, FirstAcquireMaterializesLaterAcquiresAttach) {
  DeviceMemory mem(1 << 20);
  auto a = mem.AcquireShared(0xfeed, 1024, "grid");
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->first);
  const std::uint64_t one_copy = mem.bytes_in_use();

  auto b = mem.AcquireShared(0xfeed, 1024, "grid");
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(b->first);
  EXPECT_EQ(b->buffer.addr, a->buffer.addr);
  EXPECT_EQ(b->buffer.host, a->buffer.host);
  // An attach maps the same storage: no new physical bytes.
  EXPECT_EQ(mem.bytes_in_use(), one_copy);
  EXPECT_EQ(mem.allocation_count(), 1u);
  EXPECT_TRUE(mem.IsShared(a->buffer.addr));
}

TEST(SharedSegment, DistinctKeysGetDistinctStorage) {
  DeviceMemory mem(1 << 20);
  auto a = *mem.AcquireShared(1, 512);
  auto b = *mem.AcquireShared(2, 512);
  EXPECT_NE(a.buffer.addr, b.buffer.addr);
  EXPECT_TRUE(a.first);
  EXPECT_TRUE(b.first);
}

// The map key is (content key, size): a key collision across different
// sizes must never alias storage.
TEST(SharedSegment, SameKeyDifferentSizeIsADifferentSegment) {
  DeviceMemory mem(1 << 20);
  auto a = *mem.AcquireShared(7, 512);
  auto b = *mem.AcquireShared(7, 1024);
  EXPECT_NE(a.buffer.addr, b.buffer.addr);
  EXPECT_TRUE(b.first);
}

TEST(SharedSegment, ZeroByteSegmentRejected) {
  DeviceMemory mem(1 << 20);
  EXPECT_FALSE(mem.AcquireShared(1, 0).ok());
}

TEST(SharedSegment, RefcountedTeardownReclaimsOnLastFree) {
  DeviceMemory mem(1 << 20);
  auto a = *mem.AcquireShared(9, 2048);
  auto b = *mem.AcquireShared(9, 2048);
  ASSERT_EQ(a.buffer.addr, b.buffer.addr);

  // First free drops a reference; the storage survives.
  ASSERT_TRUE(mem.Free(a.buffer.addr).ok());
  EXPECT_TRUE(mem.IsShared(a.buffer.addr));
  EXPECT_EQ(mem.bytes_in_use(), 2048u);
  EXPECT_NE(mem.HostPtr(a.buffer.addr), nullptr);

  // Last free reclaims, and the hole is reusable.
  ASSERT_TRUE(mem.Free(b.buffer.addr).ok());
  EXPECT_FALSE(mem.IsShared(a.buffer.addr));
  EXPECT_EQ(mem.bytes_in_use(), 0u);
  auto c = *mem.Allocate(2048);
  EXPECT_EQ(c.addr, a.buffer.addr);
}

TEST(SharedSegment, ReacquireAfterFullTeardownMaterializesAgain) {
  DeviceMemory mem(1 << 20);
  auto a = *mem.AcquireShared(3, 256);
  ASSERT_TRUE(mem.Free(a.buffer.addr).ok());
  auto b = *mem.AcquireShared(3, 256);
  EXPECT_TRUE(b.first);  // the old contents are gone; caller must refill
}

TEST(SharedSegment, SnapshotCountsMaterializationsAttachesAndSavings) {
  DeviceMemory mem(1 << 20);
  auto a = *mem.AcquireShared(1, 1000);  // rounds to 1024
  (void)a;
  (void)*mem.AcquireShared(1, 1000);
  (void)*mem.AcquireShared(1, 1000);
  (void)*mem.AcquireShared(2, 512);

  const DeviceMemSnapshot snap = mem.Snapshot();
  EXPECT_EQ(snap.shared_live, 2u);
  EXPECT_EQ(snap.shared_materialized, 2u);
  EXPECT_EQ(snap.shared_attaches, 2u);
  // Each attach saved one rounded copy of the 1000-byte segment.
  EXPECT_EQ(snap.shared_bytes_saved, 2 * 1024u);
  EXPECT_EQ(snap.bytes_in_use, 1024u + 512u);
  EXPECT_EQ(snap.allocation_count, 2u);
  EXPECT_EQ(snap.capacity, std::uint64_t(1) << 20);
}

TEST(SharedSegment, AcquirePropagatesOom) {
  DeviceMemory mem(4096);
  auto a = mem.AcquireShared(1, 4096);
  ASSERT_TRUE(a.ok());
  auto b = mem.AcquireShared(2, 4096);
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), ErrorCode::kOutOfMemory);
  // The failed acquire left no half-registered segment behind.
  EXPECT_EQ(mem.Snapshot().shared_live, 1u);
}

// Listener contract: OnSharedRegion fires once per physical copy, after its
// OnAlloc, and never for attaches.
TEST(SharedSegment, ListenerSeesOneSharedRegionPerCopy) {
  struct Probe : AllocationListener {
    std::vector<DeviceAddr> allocs, shared, frees;
    std::vector<std::string> labels;
    void OnAlloc(DeviceAddr addr, std::uint64_t, std::uint64_t) override {
      allocs.push_back(addr);
    }
    void OnFree(DeviceAddr addr, std::uint64_t) override {
      frees.push_back(addr);
    }
    void OnFreeFailed(DeviceAddr) override {}
    void OnSharedRegion(DeviceAddr addr, const std::string& label) override {
      shared.push_back(addr);
      labels.push_back(label);
    }
  };
  Probe probe;
  DeviceMemory mem(1 << 20);
  mem.set_listener(&probe);

  auto a = *mem.AcquireShared(5, 128, "xs[0]");
  (void)*mem.AcquireShared(5, 128, "xs[0]");
  ASSERT_EQ(probe.allocs.size(), 1u);
  ASSERT_EQ(probe.shared.size(), 1u);
  EXPECT_EQ(probe.shared[0], a.buffer.addr);
  EXPECT_EQ(probe.labels[0], "xs[0]");

  // Refcounted teardown: OnFree only on the last release.
  ASSERT_TRUE(mem.Free(a.buffer.addr).ok());
  EXPECT_TRUE(probe.frees.empty());
  ASSERT_TRUE(mem.Free(a.buffer.addr).ok());
  ASSERT_EQ(probe.frees.size(), 1u);
  EXPECT_EQ(probe.frees[0], a.buffer.addr);
}

// Per-owner accounting via the instance resolver; shared physical bytes are
// attributed to the materializing owner only.
TEST(SharedSegment, OwnerAccountingAttributesMaterializerOnly) {
  DeviceMemory mem(1 << 20);
  std::int32_t current = -1;
  mem.set_instance_resolver([&current] { return current; });

  current = 0;
  auto a = *mem.AcquireShared(11, 1024);
  auto p0 = *mem.Allocate(512);
  current = 1;
  auto b = *mem.AcquireShared(11, 1024);  // attach: costs owner 1 nothing
  auto p1 = *mem.Allocate(256);
  (void)b;

  const auto& stats = mem.owner_stats();
  ASSERT_TRUE(stats.count(0));
  ASSERT_TRUE(stats.count(1));
  EXPECT_EQ(stats.at(0).bytes_in_use, 1024u + 512u);
  EXPECT_EQ(stats.at(0).total_allocations, 2u);
  EXPECT_EQ(stats.at(1).bytes_in_use, 256u);
  EXPECT_EQ(stats.at(1).total_allocations, 1u);
  EXPECT_EQ(stats.at(1).peak_bytes, 256u);

  // Frees rebalance the same books.
  current = -1;
  ASSERT_TRUE(mem.Free(p0.addr).ok());
  ASSERT_TRUE(mem.Free(p1.addr).ok());
  ASSERT_TRUE(mem.Free(a.buffer.addr).ok());
  ASSERT_TRUE(mem.Free(a.buffer.addr).ok());
  EXPECT_EQ(stats.at(0).bytes_in_use, 0u);
  EXPECT_EQ(stats.at(0).live_allocations, 0u);
  EXPECT_EQ(stats.at(1).bytes_in_use, 0u);
  EXPECT_EQ(stats.at(0).peak_bytes, 1024u + 512u);
}

TEST(SharedSegment, UnresolvedAllocationsLandInOwnerMinusOne) {
  DeviceMemory mem(1 << 20);
  (void)*mem.Allocate(128);  // no resolver installed
  const auto& stats = mem.owner_stats();
  ASSERT_TRUE(stats.count(-1));
  EXPECT_EQ(stats.at(-1).bytes_in_use, 256u);  // rounded to alignment
}

}  // namespace
}  // namespace dgc::sim

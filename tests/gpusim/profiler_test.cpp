// Per-instance attribution and timeline sampling (gpusim/profiler.h), plus
// the LaunchStats merge-semantics split the profiler exposed.
#include "gpusim/profiler.h"

#include <gtest/gtest.h>

#include "gpusim/ctx.h"
#include "gpusim/device.h"

namespace dgc::sim {
namespace {

std::unique_ptr<Device> MakeDevice() {
  return std::make_unique<Device>(DeviceSpec::TestDevice());
}

/// Ensemble-shaped kernel: each block is one "instance" and block b does
/// b+1 units of compute per element, so instances are distinguishable in
/// the attributed counters.
LaunchResult RunInstanced(Device& dev, Profiler* profiler,
                          std::uint32_t blocks = 4) {
  auto buf = *dev.Malloc(1024 * sizeof(double));
  auto p = buf.Typed<double>();
  LaunchConfig cfg{.grid = {blocks, 1, 1}, .block = {32, 1, 1}};
  cfg.instance_of = [](std::uint32_t block_id, std::uint32_t) {
    return std::int32_t(block_id);
  };
  cfg.profiler = profiler;
  auto r = dev.Launch(cfg, [&](ThreadCtx& ctx) -> DeviceTask<void> {
    for (std::uint32_t i = ctx.block_id * ctx.block_threads + ctx.thread_id;
         i < 1024; i += ctx.block_threads * ctx.grid_blocks) {
      const double v = co_await ctx.Load(p + i);
      co_await ctx.Work(5 * (ctx.block_id + 1));
      co_await ctx.Store(p + i, v + 1);
    }
    co_await ctx.SyncThreads();
  });
  DGC_CHECK(r.ok());
  return *r;
}

/// The counters a launch bumps on the issue path (everything the fold in
/// LaunchContext::Run must conserve).
std::uint64_t IssueCounterSum(const LaunchStats& s) {
  return s.warp_instructions + s.compute_instructions + s.load_instructions +
         s.store_instructions + s.barrier_arrivals + s.divergent_replays +
         s.global_sectors + s.l1_hits + s.l1_misses + s.l2_hits + s.l2_misses +
         s.dram_bytes + s.dram_queue_cycles + s.l2_queue_cycles +
         s.barrier_stall_cycles + s.compute_cycles_issued;
}

TEST(Profiler, AttributionConservesLaunchTotals) {
  auto dev = MakeDevice();
  Profiler profiler;
  const LaunchResult r = RunInstanced(*dev, &profiler);

  // Slot 0 is the unattributed (-1) bucket, then instances in id order.
  ASSERT_GE(profiler.instances().size(), 5u);
  EXPECT_EQ(profiler.instances()[0].instance, -1);
  for (std::size_t i = 1; i < profiler.instances().size(); ++i) {
    EXPECT_EQ(profiler.instances()[i].instance, std::int32_t(i) - 1);
  }

  // Per-instance buckets partition the launch-global counters exactly.
  LaunchStats sum;
  for (const InstanceStats& inst : profiler.instances()) {
    sum.AccumulateSequential(inst.stats);
  }
  EXPECT_EQ(IssueCounterSum(sum), IssueCounterSum(r.stats));
  EXPECT_EQ(sum.warp_instructions, r.stats.warp_instructions);
  EXPECT_EQ(sum.dram_bytes, r.stats.dram_bytes);
  EXPECT_EQ(sum.barrier_arrivals, r.stats.barrier_arrivals);
}

TEST(Profiler, ProfiledRunIsBitIdenticalToUnprofiled) {
  // Profiling is observational: attaching a profiler must not change the
  // simulation (sampling happens between events, never inside one).
  auto d1 = MakeDevice(), d2 = MakeDevice();
  Profiler profiler(Profiler::Options{.sample_interval = 64});
  const LaunchResult plain = RunInstanced(*d1, nullptr);
  const LaunchResult profiled = RunInstanced(*d2, &profiler);
  EXPECT_EQ(plain.cycles, profiled.cycles);
  EXPECT_EQ(plain.stats.elapsed_cycles, profiled.stats.elapsed_cycles);
  EXPECT_EQ(IssueCounterSum(plain.stats), IssueCounterSum(profiled.stats));
  EXPECT_EQ(plain.stats.warp_instructions, profiled.stats.warp_instructions);
  EXPECT_EQ(plain.stats.dram_bytes, profiled.stats.dram_bytes);
}

TEST(Profiler, InstancesWithMoreWorkShowMoreAttributedCompute) {
  auto dev = MakeDevice();
  Profiler profiler;
  RunInstanced(*dev, &profiler);
  const auto& inst = profiler.instances();
  ASSERT_GE(inst.size(), 5u);
  // Block b runs Work(5*(b+1)): issued compute cycles must rise with the id.
  EXPECT_LT(inst[1].stats.compute_cycles_issued,
            inst[4].stats.compute_cycles_issued);
  // Every instance did the same number of loads/stores.
  EXPECT_EQ(inst[1].stats.load_instructions, inst[4].stats.load_instructions);
}

TEST(Profiler, TimelineSamplesAreOrderedAndConserveDeltas) {
  auto dev = MakeDevice();
  Profiler profiler(Profiler::Options{.sample_interval = 128});
  const LaunchResult r = RunInstanced(*dev, &profiler);

  ASSERT_GT(profiler.timeline().size(), 1u);
  EXPECT_EQ(profiler.dropped_samples(), 0u);
  std::uint64_t prev = 0, instr = 0;
  for (const TimelineSample& s : profiler.timeline()) {
    EXPECT_GT(s.cycle, prev);
    prev = s.cycle;
    EXPECT_EQ(s.wave, 0u);
    instr += s.warp_instructions;
    EXPECT_GE(s.dram_bw_occupancy, 0.0);
  }
  // Windows tile the whole launch, so the deltas sum to the total.
  EXPECT_EQ(instr, r.stats.warp_instructions);
  EXPECT_EQ(prev, r.stats.elapsed_cycles);  // final partial window ends at T
}

TEST(Profiler, TimelineCapacityDropsAreCounted) {
  auto dev = MakeDevice();
  Profiler profiler(
      Profiler::Options{.sample_interval = 16, .timeline_capacity = 2});
  const LaunchResult r = RunInstanced(*dev, &profiler);
  // 2 stored at capacity, plus the wave-closing sample that bypasses it.
  EXPECT_EQ(profiler.timeline().size(), 3u);
  EXPECT_GT(profiler.dropped_samples(), 0u);
  EXPECT_EQ(profiler.timeline().back().cycle, r.stats.elapsed_cycles);
}

TEST(Profiler, FinalPartialIntervalIsFlushedAtCapacity) {
  // The closing sample of each wave must land in the timeline even when the
  // ring is full — dropping it would truncate the stall/utilization
  // timeline short of the launch's final cycles. Pin the sample's schema:
  // it ends at the launch's last cycle and carries the tail-window deltas
  // the interior (dropped) windows no longer account for.
  auto dev = MakeDevice();
  Profiler profiler(
      Profiler::Options{.sample_interval = 16, .timeline_capacity = 1});
  const LaunchResult r = RunInstanced(*dev, &profiler);
  ASSERT_EQ(profiler.timeline().size(), 2u);  // 1 capacity + final flush
  const TimelineSample& closing = profiler.timeline().back();
  EXPECT_EQ(closing.cycle, r.stats.elapsed_cycles);
  EXPECT_EQ(closing.wave, 0u);
  // The closing window is the final partial interval, strictly shorter
  // than a full sample_interval past the last boundary would be; its cycle
  // is not a multiple of the interval unless the launch happened to align.
  EXPECT_GT(closing.cycle, profiler.timeline().front().cycle);
}

TEST(Profiler, SequentialLaunchesOpenNewWaves) {
  auto dev = MakeDevice();
  Profiler profiler(Profiler::Options{.sample_interval = 128});
  const LaunchResult first = RunInstanced(*dev, &profiler);
  const LaunchResult second = RunInstanced(*dev, &profiler);
  EXPECT_EQ(profiler.waves(), 2u);
  EXPECT_EQ(profiler.timeline().back().wave, 1u);
  // Buckets accumulate across waves with sequential semantics.
  LaunchStats sum;
  for (const InstanceStats& inst : profiler.instances()) {
    sum.AccumulateSequential(inst.stats);
  }
  EXPECT_EQ(sum.warp_instructions,
            first.stats.warp_instructions + second.stats.warp_instructions);
}

TEST(Profiler, SetInstanceElapsedOverwritesAndCreatesSlots) {
  Profiler profiler;
  profiler.SetInstanceElapsed(1, 100);
  profiler.SetInstanceElapsed(1, 250);  // final total wins, no summing
  ASSERT_EQ(profiler.instances().size(), 3u);  // -1, 0, 1
  EXPECT_EQ(profiler.instances()[2].instance, 1);
  EXPECT_EQ(profiler.instances()[2].stats.elapsed_cycles, 250u);
  EXPECT_EQ(profiler.instances()[1].stats.elapsed_cycles, 0u);
}

// --- LaunchStats merge semantics (the bug the profiler exposed) ------------

LaunchStats SampleStats(std::uint64_t elapsed) {
  LaunchStats s;
  s.elapsed_cycles = elapsed;
  s.warp_instructions = 10;
  s.dram_bytes = 64;
  s.blocks_launched = 1;
  return s;
}

TEST(LaunchStatsMerge, SequentialSumsElapsedCycles) {
  // Retry waves run back-to-back: durations add.
  LaunchStats total = SampleStats(1000);
  total.AccumulateSequential(SampleStats(400));
  EXPECT_EQ(total.elapsed_cycles, 1400u);
  EXPECT_EQ(total.warp_instructions, 20u);
  EXPECT_EQ(total.dram_bytes, 128u);
  EXPECT_EQ(total.blocks_launched, 2u);
}

TEST(LaunchStatsMerge, ConcurrentTakesMaxElapsedCycles) {
  // Co-resident instances overlap: the device was busy max(a, b) cycles,
  // not a + b. Summing here was the historical ensemble-loader bug.
  LaunchStats total = SampleStats(1000);
  total.AccumulateConcurrent(SampleStats(400));
  EXPECT_EQ(total.elapsed_cycles, 1000u);
  total.AccumulateConcurrent(SampleStats(2500));
  EXPECT_EQ(total.elapsed_cycles, 2500u);
  EXPECT_EQ(total.warp_instructions, 30u);  // throughput counters still sum
  EXPECT_EQ(total.blocks_launched, 3u);
}

TEST(LaunchStatsReport, UntouchedCachesPrintNaNotZero) {
  LaunchStats idle;
  idle.warp_instructions = 4;
  idle.compute_instructions = 4;
  const std::string report = idle.ToString();
  // A kernel that never accessed memory did not miss 100% of the time.
  EXPECT_NE(report.find("L1 n/a"), std::string::npos) << report;
  EXPECT_NE(report.find("L2 n/a"), std::string::npos) << report;
  EXPECT_NE(report.find("rows n/a"), std::string::npos) << report;
  EXPECT_EQ(report.find("0.00\n"), std::string::npos) << report;

  LaunchStats busy = idle;
  busy.l1_hits = 3;
  busy.l1_misses = 1;
  EXPECT_NE(busy.ToString().find("L1 0.75"), std::string::npos);
}

}  // namespace
}  // namespace dgc::sim

// Cross-module integration tests: the full stack (apps → ensemble loader →
// ompx → simulator) exercised as a user would, with parameterized sweeps
// over loader configurations and end-to-end properties from the paper.
#include <gtest/gtest.h>

#include "apps/amgmk.h"
#include "apps/common.h"
#include "apps/xsbench.h"
#include "dgcf/libc.h"
#include "dgcf/loader.h"
#include "dgcf/rpc.h"
#include "ensemble/loader.h"
#include "gpusim/device.h"
#include "support/str.h"

namespace dgc {
namespace {

struct LoaderSweepParam {
  const char* app;
  std::uint32_t instances;
  std::uint32_t thread_limit;
  std::uint32_t teams_per_block;
  std::uint32_t num_teams;  // 0 = one per instance
};

std::vector<std::string> ArgsFor(const std::string& app, std::uint32_t i) {
  if (app == "xsbench") {
    return {"-i", "6", "-g", "32", "-l", "64", "-s", StrFormat("%u", i + 1)};
  }
  if (app == "rsbench") {
    return {"-u", "6", "-w", "4", "-l", "64", "-s", StrFormat("%u", i + 1)};
  }
  if (app == "amgmk") {
    return {"-x", "4", "-y", "4", "-z", "4", "-s", StrFormat("%u", i + 1)};
  }
  return {"-g", "1500", "-d", "4", "-s", StrFormat("%u", i + 1)};  // pagerank
}

class LoaderSweep : public testing::TestWithParam<LoaderSweepParam> {
 protected:
  static void SetUpTestSuite() { apps::RegisterAllApps(); }
};

TEST_P(LoaderSweep, EveryInstanceVerifiesAgainstHostReference) {
  const LoaderSweepParam p = GetParam();
  sim::Device device(sim::DeviceSpec::TestDevice());
  dgcf::RpcHost rpc(device);
  dgcf::DeviceLibc libc(device);
  dgcf::AppEnv env{&device, &rpc, &libc};

  ensemble::EnsembleOptions opt;
  opt.app = p.app;
  for (std::uint32_t i = 0; i < p.instances; ++i) {
    opt.instance_args.push_back(ArgsFor(p.app, i));
  }
  opt.thread_limit = p.thread_limit;
  opt.teams_per_block = p.teams_per_block;
  opt.num_teams = p.num_teams;

  auto run = ensemble::RunEnsemble(env, opt);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->instances.size(), p.instances);
  for (std::uint32_t i = 0; i < p.instances; ++i) {
    EXPECT_TRUE(run->instances[i].completed) << "instance " << i;
    // Exit code 0 == the device kernel reproduced the host reference hash.
    EXPECT_EQ(run->instances[i].exit_code, 0) << "instance " << i;
  }
  EXPECT_EQ(run->failures.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, LoaderSweep,
    testing::Values(
        LoaderSweepParam{"xsbench", 1, 32, 1, 0},
        LoaderSweepParam{"xsbench", 6, 32, 1, 0},
        LoaderSweepParam{"xsbench", 6, 128, 1, 0},
        LoaderSweepParam{"xsbench", 8, 16, 4, 0},   // §3.1 mapping
        LoaderSweepParam{"xsbench", 8, 32, 1, 2},   // distribute, 4/team
        LoaderSweepParam{"rsbench", 6, 32, 1, 0},
        LoaderSweepParam{"rsbench", 8, 16, 2, 0},
        LoaderSweepParam{"rsbench", 5, 64, 1, 0},
        LoaderSweepParam{"amgmk", 4, 32, 1, 0},
        LoaderSweepParam{"amgmk", 6, 64, 1, 3},
        LoaderSweepParam{"amgmk", 4, 16, 2, 0},
        LoaderSweepParam{"pagerank", 3, 32, 1, 0},
        LoaderSweepParam{"pagerank", 4, 128, 1, 0},
        LoaderSweepParam{"pagerank", 4, 16, 4, 0}),
    [](const testing::TestParamInfo<LoaderSweepParam>& param_info) {
      return StrFormat("%s_n%u_t%u_m%u_teams%u", param_info.param.app,
                       param_info.param.instances, param_info.param.thread_limit,
                       param_info.param.teams_per_block, param_info.param.num_teams);
    });

// --- End-to-end paper properties ---------------------------------------------

class PaperProperties : public testing::Test {
 protected:
  static void SetUpTestSuite() { apps::RegisterAllApps(); }

  static std::uint64_t EnsembleCycles(const std::string& app,
                                      std::uint32_t instances,
                                      std::uint32_t thread_limit) {
    sim::Device device(sim::DeviceSpec::A100_40GB(512));
    dgcf::RpcHost rpc(device);
    dgcf::DeviceLibc libc(device);
    dgcf::AppEnv env{&device, &rpc, &libc};
    ensemble::EnsembleOptions opt;
    opt.app = app;
    for (std::uint32_t i = 0; i < instances; ++i) {
      opt.instance_args.push_back(ArgsFor(app, i));
    }
    opt.thread_limit = thread_limit;
    auto run = ensemble::RunEnsemble(env, opt);
    DGC_CHECK(run.ok());
    DGC_CHECK_MSG(run->all_ok(), "ensemble failed verification");
    return run->kernel_cycles;
  }
};

TEST_F(PaperProperties, EnsembleIsSubLinearButProfitable) {
  // T_N between T_1 (perfect overlap) and N*T_1 (no overlap) — and much
  // closer to T_1 (the paper's whole point).
  const auto t1 = EnsembleCycles("xsbench", 1, 32);
  const auto t8 = EnsembleCycles("xsbench", 8, 32);
  EXPECT_GE(t8, t1);
  EXPECT_LT(t8, 8 * t1);
  EXPECT_LT(t8, 2 * t1);  // ≥4x speedup at 8 instances
}

TEST_F(PaperProperties, ThreadLimit1024BeatsThreadLimit32PerInstance) {
  // §2.3: more threads per team speed up the parallel regions. Needs a
  // problem with enough parallelism to feed 1024 threads.
  auto cycles = [](std::uint32_t tl) {
    sim::Device device(sim::DeviceSpec::A100_40GB(512));
    dgcf::RpcHost rpc(device);
    dgcf::DeviceLibc libc(device);
    dgcf::AppEnv env{&device, &rpc, &libc};
    ensemble::EnsembleOptions opt;
    opt.app = "amgmk";
    opt.instance_args.push_back({"-x", "12", "-y", "12", "-z", "12"});
    opt.thread_limit = tl;
    auto run = ensemble::RunEnsemble(env, opt);
    DGC_CHECK(run.ok());
    DGC_CHECK_MSG(run->all_ok(), "verification failed");
    return run->kernel_cycles;
  };
  EXPECT_LT(cycles(1024), cycles(32));
}

TEST_F(PaperProperties, EnsembleKernelIsOneLaunch) {
  sim::Device device(sim::DeviceSpec::A100_40GB(512));
  dgcf::RpcHost rpc(device);
  dgcf::DeviceLibc libc(device);
  dgcf::AppEnv env{&device, &rpc, &libc};
  ensemble::EnsembleOptions opt;
  opt.app = "rsbench";
  for (std::uint32_t i = 0; i < 16; ++i) {
    opt.instance_args.push_back(ArgsFor("rsbench", i));
  }
  opt.thread_limit = 32;
  ASSERT_TRUE(ensemble::RunEnsemble(env, opt).ok());
  EXPECT_EQ(device.launches(), 1u);
}

TEST_F(PaperProperties, WholeStackIsDeterministic) {
  const auto a = EnsembleCycles("amgmk", 4, 64);
  const auto b = EnsembleCycles("amgmk", 4, 64);
  EXPECT_EQ(a, b);
}

TEST_F(PaperProperties, InstanceResultsMatchSingleRuns) {
  // The exit code (host-reference check) of instance i in an ensemble
  // equals that of the same instance run alone — full isolation.
  apps::RegisterAllApps();
  sim::Device device(sim::DeviceSpec::TestDevice());
  dgcf::RpcHost rpc(device);
  dgcf::DeviceLibc libc(device);
  dgcf::AppEnv env{&device, &rpc, &libc};

  for (std::uint32_t i = 0; i < 4; ++i) {
    dgcf::SingleRunOptions single{.app = "xsbench",
                                  .args = ArgsFor("xsbench", i),
                                  .thread_limit = 32};
    auto run = dgcf::RunSingleInstance(env, single);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->instances[0].exit_code, 0) << i;
  }
}

}  // namespace
}  // namespace dgc

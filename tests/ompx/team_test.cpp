// Tests for the OpenMP-style team runtime: worker state machine, parallel
// regions, reductions, and the multi-team-per-block mapping.
#include <gtest/gtest.h>

#include "ompx/league.h"
#include "ompx/mapping.h"
#include "ompx/team.h"

namespace dgc::ompx {
namespace {

using sim::Device;
using sim::DevicePtr;
using sim::DeviceSpec;
using sim::DeviceTask;
using sim::ThreadCtx;

std::unique_ptr<Device> MakeDevice() {
  return std::make_unique<Device>(DeviceSpec::TestDevice());
}

TEST(LaunchTeams, SequentialTeamMainRunsOncePerTeam) {
  auto dev = MakeDevice();
  const std::uint32_t teams = 6;
  auto buf = *dev->Malloc(teams * sizeof(std::uint64_t));
  auto p = buf.Typed<std::uint64_t>();
  TeamsConfig cfg{.num_teams = teams, .thread_limit = 64};
  auto result =
      LaunchTeams(*dev, cfg, [&](TeamCtx& team) -> DeviceTask<void> {
        // Only the initial thread executes this (sequential semantics).
        co_await team.hw->Store(p + team.team_id,
                                std::uint64_t(team.team_id) * 7 + 1);
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok()) << (result->failures.empty() ? "" : result->failures[0]);
  for (std::uint64_t t = 0; t < teams; ++t) {
    EXPECT_EQ(p[std::ptrdiff_t(t)], t * 7 + 1);
  }
}

TEST(LaunchTeams, ParallelForCoversEveryIndexExactlyOnce) {
  auto dev = MakeDevice();
  const std::uint64_t n = 1000;
  auto buf = *dev->Malloc(n * sizeof(std::uint64_t));
  auto p = buf.Typed<std::uint64_t>();
  for (std::uint64_t i = 0; i < n; ++i) p[std::ptrdiff_t(i)] = 0;

  TeamsConfig cfg{.num_teams = 1, .thread_limit = 64};
  auto result =
      LaunchTeams(*dev, cfg, [&](TeamCtx& team) -> DeviceTask<void> {
        co_await ParallelFor(team, n,
                             [&](ThreadCtx& ctx, std::uint64_t i)
                                 -> DeviceTask<void> {
                               const std::uint64_t v = co_await ctx.Load(p + i);
                               co_await ctx.Store(p + i, v + i + 1);
                             });
      });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok()) << (result->failures.empty() ? "" : result->failures[0]);
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(p[std::ptrdiff_t(i)], i + 1) << i;  // exactly one increment
  }
}

TEST(LaunchTeams, SequentialThenParallelThenSequential) {
  auto dev = MakeDevice();
  const std::uint64_t n = 256;
  auto data = *dev->Malloc(n * sizeof(double));
  auto out = *dev->Malloc(sizeof(double));
  auto pd = data.Typed<double>();
  auto po = out.Typed<double>();

  TeamsConfig cfg{.num_teams = 1, .thread_limit = 32};
  auto result =
      LaunchTeams(*dev, cfg, [&](TeamCtx& team) -> DeviceTask<void> {
        // Sequential phase 1: init.
        for (std::uint64_t i = 0; i < n; ++i) {
          co_await team.hw->Store(pd + i, 1.0);
        }
        // Parallel phase: double everything.
        co_await ParallelFor(team, n,
                             [&](ThreadCtx& ctx, std::uint64_t i)
                                 -> DeviceTask<void> {
                               const double v = co_await ctx.Load(pd + i);
                               co_await ctx.Store(pd + i, v * 2.0);
                             });
        // Sequential phase 2: sum.
        double sum = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
          sum += co_await team.hw->Load(pd + i);
        }
        co_await team.hw->Store(po, sum);
      });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok()) << (result->failures.empty() ? "" : result->failures[0]);
  EXPECT_DOUBLE_EQ(*po, 2.0 * double(n));
}

TEST(LaunchTeams, MultipleParallelRegionsStayAligned) {
  auto dev = MakeDevice();
  auto buf = *dev->Malloc(sizeof(std::uint64_t));
  auto p = buf.Typed<std::uint64_t>();
  *p = 0;
  TeamsConfig cfg{.num_teams = 1, .thread_limit = 64};
  const int regions = 5;
  auto result =
      LaunchTeams(*dev, cfg, [&](TeamCtx& team) -> DeviceTask<void> {
        for (int r = 0; r < regions; ++r) {
          co_await Parallel(team, [&](ThreadCtx& ctx, std::uint32_t,
                                      std::uint32_t) -> DeviceTask<void> {
            co_await ctx.AtomicAdd(p, std::uint64_t{1});
          });
        }
      });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok()) << (result->failures.empty() ? "" : result->failures[0]);
  EXPECT_EQ(*p, std::uint64_t(regions) * 64);
}

TEST(LaunchTeams, EveryThreadSeesReductionTotal) {
  auto dev = MakeDevice();
  const std::uint32_t threads = 32;
  TeamsConfig cfg{.num_teams = 2, .thread_limit = threads};
  auto result =
      LaunchTeams(*dev, cfg, [&](TeamCtx& team) -> DeviceTask<void> {
        co_await Parallel(team, [&](ThreadCtx&, std::uint32_t rank,
                                    std::uint32_t) -> DeviceTask<void> {
          const double total = co_await TeamReduceSum(team, double(rank) + 1);
          // Every thread, not just rank 0, sees the full team sum.
          if (total != double(threads) * (threads + 1) / 2) {
            throw std::runtime_error("bad reduction total");
          }
          co_return;
        });
      });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok()) << (result->failures.empty() ? "" : result->failures[0]);
}

TEST(LaunchTeams, TeamReduceSumTotals) {
  auto dev = MakeDevice();
  const std::uint32_t teams = 3, threads = 32;
  auto buf = *dev->Malloc(teams * sizeof(double));
  auto p = buf.Typed<double>();
  TeamsConfig cfg{.num_teams = teams, .thread_limit = threads};
  auto result =
      LaunchTeams(*dev, cfg, [&](TeamCtx& team) -> DeviceTask<void> {
        auto out = p + team.team_id;
        co_await Parallel(team, [&, out](ThreadCtx& ctx, std::uint32_t rank,
                                         std::uint32_t) -> DeviceTask<void> {
          const double total = co_await TeamReduceSum(team, double(rank) + 1);
          if (rank == 0) co_await ctx.Store(out, total);
        });
      });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok()) << (result->failures.empty() ? "" : result->failures[0]);
  for (std::uint32_t t = 0; t < teams; ++t) {
    EXPECT_DOUBLE_EQ(p[t], double(threads) * (threads + 1) / 2) << t;
  }
}

TEST(LaunchTeams, SingleThreadTeamRunsParallelInline) {
  auto dev = MakeDevice();
  auto buf = *dev->Malloc(sizeof(std::uint64_t));
  auto p = buf.Typed<std::uint64_t>();
  *p = 0;
  TeamsConfig cfg{.num_teams = 1, .thread_limit = 1};
  auto result =
      LaunchTeams(*dev, cfg, [&](TeamCtx& team) -> DeviceTask<void> {
        co_await ParallelFor(team, 10,
                             [&](ThreadCtx& ctx, std::uint64_t)
                                 -> DeviceTask<void> {
                               co_await ctx.AtomicAdd(p, std::uint64_t{1});
                             });
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*p, 10u);
}

TEST(LaunchTeams, MultiDimMappingTwoTeamsPerBlock) {
  // Paper §3.1: M=2 teams per block, block shape (threads, 2, 1). Each team
  // must behave exactly like a standalone team.
  auto dev = MakeDevice();
  const std::uint32_t teams = 8, threads = 32, m = 2;
  auto buf = *dev->Malloc(teams * sizeof(double));
  auto p = buf.Typed<double>();
  TeamsConfig cfg{.num_teams = teams,
                  .thread_limit = threads,
                  .teams_per_block = m};
  auto result =
      LaunchTeams(*dev, cfg, [&](TeamCtx& team) -> DeviceTask<void> {
        auto out = p + team.team_id;
        co_await Parallel(team, [&, out](ThreadCtx& ctx, std::uint32_t rank,
                                         std::uint32_t) -> DeviceTask<void> {
          const double total = co_await TeamReduceSum(
              team, double(team.team_id) * 100 + rank);
          if (rank == 0) co_await ctx.Store(out, total);
        });
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok()) << (result->failures.empty() ? "" : result->failures[0]);
  EXPECT_EQ(result->stats.blocks_launched, teams / m);
  for (std::uint32_t t = 0; t < teams; ++t) {
    const double expect = double(t) * 100 * threads +
                          double(threads) * (threads - 1) / 2;
    EXPECT_DOUBLE_EQ(p[t], expect) << t;
  }
}

TEST(LaunchTeams, OddTeamCountWithMultiDimPadding) {
  auto dev = MakeDevice();
  const std::uint32_t teams = 5, m = 2;
  auto buf = *dev->Malloc(teams * sizeof(std::uint64_t));
  auto p = buf.Typed<std::uint64_t>();
  TeamsConfig cfg{.num_teams = teams, .thread_limit = 16, .teams_per_block = m};
  auto result =
      LaunchTeams(*dev, cfg, [&](TeamCtx& team) -> DeviceTask<void> {
        co_await team.hw->Store(p + team.team_id, std::uint64_t{1});
      });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->stats.blocks_launched, 3u);  // ceil(5/2)
  for (std::uint32_t t = 0; t < teams; ++t) EXPECT_EQ(p[t], 1u) << t;
}

TEST(LaunchTeams, FailingTeamMainDoesNotHangWorkers) {
  auto dev = MakeDevice();
  TeamsConfig cfg{.num_teams = 2, .thread_limit = 64};
  auto result =
      LaunchTeams(*dev, cfg, [&](TeamCtx& team) -> DeviceTask<void> {
        co_await team.hw->Work(5);
        if (team.team_id == 1) throw std::runtime_error("instance failed");
        co_return;
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();  // no deadlock
  EXPECT_EQ(result->failure_count, 1u);
}

TEST(LaunchTeams, InvalidConfigsRejected) {
  auto dev = MakeDevice();
  auto noop = [](TeamCtx&) -> DeviceTask<void> { co_return; };
  EXPECT_FALSE(LaunchTeams(*dev, {.num_teams = 0}, noop).ok());
  EXPECT_FALSE(LaunchTeams(*dev, {.thread_limit = 0}, noop).ok());
  EXPECT_FALSE(
      LaunchTeams(*dev, {.thread_limit = 2048}, noop).ok());
  EXPECT_FALSE(
      LaunchTeams(*dev, {.thread_limit = 512, .teams_per_block = 4}, noop)
          .ok());
}

TEST(DataEnv, MapToCopiesAndCharges) {
  auto dev = MakeDevice();
  DataEnv env(*dev);
  std::vector<double> host{1, 2, 3, 4};
  auto buf = env.MapTo(host.data(), host.size() * sizeof(double));
  ASSERT_TRUE(buf.ok());
  EXPECT_DOUBLE_EQ(buf->Typed<double>()[2], 3.0);
  EXPECT_GT(env.transfer_cycles(), 0u);
  EXPECT_EQ(env.bytes_to_device(), 32u);
}

TEST(DataEnv, MapFromCopiesBackOnSync) {
  auto dev = MakeDevice();
  std::vector<std::uint32_t> host(4, 0);
  DataEnv env(*dev);
  auto buf = env.MapFrom(host.data(), host.size() * sizeof(std::uint32_t));
  ASSERT_TRUE(buf.ok());
  // MapFrom rounds the allocation up to the device alignment, so only the
  // host-visible prefix matters.
  for (int i = 0; i < 4; ++i) buf->Typed<std::uint32_t>()[i] = 100 + i;
  env.Sync();
  EXPECT_EQ(host[3], 103u);
}

TEST(DataEnv, ReleasesAllocationsOnDestruction) {
  auto dev = MakeDevice();
  {
    DataEnv env(*dev);
    ASSERT_TRUE(env.MapAlloc(4096).ok());
    ASSERT_TRUE(env.MapAlloc(4096).ok());
    EXPECT_EQ(dev->memory().allocation_count(), 2u);
  }
  EXPECT_EQ(dev->memory().allocation_count(), 0u);
}

TEST(DataEnv, PropagatesOom) {
  auto dev = MakeDevice();
  DataEnv env(*dev);
  auto r = env.MapAlloc(dev->spec().global_memory_bytes + 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kOutOfMemory);
}

}  // namespace
}  // namespace dgc::ompx

namespace dgc::ompx {
namespace {

using sim::DevicePtr;

TEST(Schedule, ChunkedCoversEveryIndexExactlyOnce) {
  auto dev = std::make_unique<sim::Device>(sim::DeviceSpec::TestDevice());
  const std::uint64_t n = 777;  // deliberately not a multiple of team size
  auto buf = *dev->Malloc(n * sizeof(std::uint64_t));
  auto p = buf.Typed<std::uint64_t>();
  for (std::uint64_t i = 0; i < n; ++i) p[std::ptrdiff_t(i)] = 0;

  TeamsConfig cfg{.num_teams = 1, .thread_limit = 64};
  auto result = LaunchTeams(*dev, cfg, [&](TeamCtx& team) -> sim::DeviceTask<void> {
    co_await ParallelFor(
        team, n,
        [&](sim::ThreadCtx& ctx, std::uint64_t i) -> sim::DeviceTask<void> {
          co_await ctx.AtomicAdd(p + i, std::uint64_t{1});
        },
        Schedule::kStaticChunked);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(p[std::ptrdiff_t(i)], 1u) << i;
}

TEST(Schedule, InterleavedCoalescesBetterThanChunked) {
  // The reason LLVM uses schedule(static,1) on GPUs: with interleaved
  // scheduling a warp's lanes touch consecutive elements.
  auto run = [](Schedule schedule) {
    sim::Device dev(sim::DeviceSpec::TestDevice());
    const std::uint64_t n = 1 << 14;
    auto buf = *dev.Malloc(n * sizeof(double));
    auto p = buf.Typed<double>();
    TeamsConfig cfg{.num_teams = 1, .thread_limit = 256};
    auto result = LaunchTeams(dev, cfg, [&](TeamCtx& team) -> sim::DeviceTask<void> {
      co_await ParallelFor(
          team, n,
          [&](sim::ThreadCtx& ctx, std::uint64_t i) -> sim::DeviceTask<void> {
            co_await ctx.Store(p + i, 1.0);
          },
          schedule);
    });
    DGC_CHECK(result.ok());
    return result->stats;
  };
  const auto interleaved = run(Schedule::kStaticInterleaved);
  const auto chunked = run(Schedule::kStaticChunked);
  EXPECT_LT(interleaved.global_sectors, chunked.global_sectors);
  EXPECT_GT(interleaved.CoalescingEfficiency(),
            chunked.CoalescingEfficiency());
}

TEST(TeamReduce, MinAndMax) {
  auto dev = std::make_unique<sim::Device>(sim::DeviceSpec::TestDevice());
  const std::uint32_t threads = 64;
  double got_min = 0, got_max = 0;
  TeamsConfig cfg{.num_teams = 1, .thread_limit = threads};
  auto result = LaunchTeams(*dev, cfg, [&](TeamCtx& team) -> sim::DeviceTask<void> {
    co_await Parallel(team, [&](sim::ThreadCtx&, std::uint32_t rank,
                                std::uint32_t) -> sim::DeviceTask<void> {
      // Values 7-(rank*0.5): min at the last rank, max at rank 0.
      const double v = 7.0 - 0.5 * double(rank);
      const double mn = co_await TeamReduceMin(team, v);
      const double mx = co_await TeamReduceMax(team, v);
      if (rank == 0) {
        got_min = mn;
        got_max = mx;
      }
    });
  });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok()) << (result->failures.empty() ? "" : result->failures[0]);
  EXPECT_DOUBLE_EQ(got_min, 7.0 - 0.5 * (threads - 1));
  EXPECT_DOUBLE_EQ(got_max, 7.0);
}

TEST(TeamReduce, SingleThreadTeam) {
  auto dev = std::make_unique<sim::Device>(sim::DeviceSpec::TestDevice());
  double got = 0;
  TeamsConfig cfg{.num_teams = 1, .thread_limit = 1};
  auto result = LaunchTeams(*dev, cfg, [&](TeamCtx& team) -> sim::DeviceTask<void> {
    got = co_await TeamReduceSum(team, 3.25);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
  EXPECT_DOUBLE_EQ(got, 3.25);
}

}  // namespace
}  // namespace dgc::ompx

namespace dgc::ompx {
namespace {

TEST(NestedParallel, InnerRegionSerializesPerThread) {
  // OpenMP default on devices: one level of parallelism — an inner
  // Parallel runs inline as a team of one on each encountering thread.
  auto dev = std::make_unique<sim::Device>(sim::DeviceSpec::TestDevice());
  auto buf = *dev->Malloc(2 * sizeof(std::uint64_t));
  auto outer_count = buf.Typed<std::uint64_t>();
  auto inner_count = buf.Typed<std::uint64_t>(1);
  *outer_count = 0;
  *inner_count = 0;
  TeamsConfig cfg{.num_teams = 1, .thread_limit = 32};
  auto result = LaunchTeams(*dev, cfg, [&](TeamCtx& team) -> sim::DeviceTask<void> {
    co_await Parallel(team, [&](sim::ThreadCtx& ctx, std::uint32_t,
                                std::uint32_t) -> sim::DeviceTask<void> {
      co_await ctx.AtomicAdd(outer_count, std::uint64_t{1});
      co_await Parallel(team, [&](sim::ThreadCtx& ictx, std::uint32_t irank,
                                  std::uint32_t isize) -> sim::DeviceTask<void> {
        // Inner region: a serialized team of one.
        if (irank != 0 || isize != 1) throw std::runtime_error("not serial");
        co_await ictx.AtomicAdd(inner_count, std::uint64_t{1});
      });
    });
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok()) << (result->failures.empty() ? "" : result->failures[0]);
  EXPECT_EQ(*outer_count, 32u);
  EXPECT_EQ(*inner_count, 32u);  // once per outer thread
}

}  // namespace
}  // namespace dgc::ompx

// Failure-injection tests: device code that throws must surface as lane
// failures without deadlocking teams, barriers, or the launch.
#include <gtest/gtest.h>

#include "ompx/league.h"
#include "ompx/team.h"

namespace dgc::ompx {
namespace {

using sim::Device;
using sim::DeviceSpec;
using sim::DeviceTask;
using sim::ThreadCtx;

std::unique_ptr<Device> MakeDevice() {
  return std::make_unique<Device>(DeviceSpec::TestDevice());
}

TEST(FailureInjection, WorkerThrowsInsideParallelRegion) {
  auto dev = MakeDevice();
  auto buf = *dev->Malloc(sizeof(std::uint64_t));
  auto p = buf.Typed<std::uint64_t>();
  *p = 0;
  TeamsConfig cfg{.num_teams = 1, .thread_limit = 64};
  auto result = LaunchTeams(*dev, cfg, [&](TeamCtx& team) -> DeviceTask<void> {
    co_await Parallel(team, [&](ThreadCtx& ctx, std::uint32_t rank,
                                std::uint32_t) -> DeviceTask<void> {
      if (rank == 13) throw std::runtime_error("worker 13 died");
      co_await ctx.AtomicAdd(p, std::uint64_t{1});
    });
    // The region still joins; the main thread continues sequential code.
    co_await team.hw->AtomicAdd(p, std::uint64_t{100});
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();  // no deadlock
  EXPECT_EQ(result->failure_count, 1u);
  EXPECT_EQ(*p, 63u + 100u);  // everyone but worker 13, plus the epilogue
  ASSERT_FALSE(result->failures.empty());
  EXPECT_NE(result->failures[0].find("worker 13 died"), std::string::npos);
}

TEST(FailureInjection, MainThreadThrowsBetweenRegions) {
  auto dev = MakeDevice();
  auto buf = *dev->Malloc(sizeof(std::uint64_t));
  auto p = buf.Typed<std::uint64_t>();
  *p = 0;
  TeamsConfig cfg{.num_teams = 1, .thread_limit = 64};
  auto result = LaunchTeams(*dev, cfg, [&](TeamCtx& team) -> DeviceTask<void> {
    co_await Parallel(team, [&](ThreadCtx& ctx, std::uint32_t,
                                std::uint32_t) -> DeviceTask<void> {
      co_await ctx.AtomicAdd(p, std::uint64_t{1});
    });
    throw std::runtime_error("sequential part failed");
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();  // workers released
  EXPECT_EQ(result->failure_count, 1u);
  EXPECT_EQ(*p, 64u);  // the first region completed
}

TEST(FailureInjection, MultipleTeamsFailIndependently) {
  auto dev = MakeDevice();
  auto buf = *dev->Malloc(8 * sizeof(std::uint64_t));
  auto p = buf.Typed<std::uint64_t>();
  for (int i = 0; i < 8; ++i) p[i] = 0;
  TeamsConfig cfg{.num_teams = 8, .thread_limit = 32};
  auto result = LaunchTeams(*dev, cfg, [&](TeamCtx& team) -> DeviceTask<void> {
    co_await team.hw->Work(5);
    if (team.team_id % 3 == 0) {
      throw std::runtime_error("team died");
    }
    co_await team.hw->Store(p + team.team_id, std::uint64_t{1});
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->failure_count, 3u);  // teams 0, 3, 6
  for (std::uint32_t t = 0; t < 8; ++t) {
    EXPECT_EQ(p[t], t % 3 == 0 ? 0u : 1u) << t;
  }
}

TEST(FailureInjection, WorkerThrowInMultiDimTeamDoesNotPoisonNeighbours) {
  auto dev = MakeDevice();
  auto buf = *dev->Malloc(4 * sizeof(std::uint64_t));
  auto p = buf.Typed<std::uint64_t>();
  for (int i = 0; i < 4; ++i) p[i] = 0;
  TeamsConfig cfg{.num_teams = 4, .thread_limit = 16, .teams_per_block = 2};
  auto result = LaunchTeams(*dev, cfg, [&](TeamCtx& team) -> DeviceTask<void> {
    co_await Parallel(team, [&](ThreadCtx& ctx, std::uint32_t rank,
                                std::uint32_t) -> DeviceTask<void> {
      if (team.team_id == 1 && rank == 5) throw std::runtime_error("boom");
      co_await ctx.AtomicAdd(p + team.team_id, std::uint64_t{1});
    });
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->failure_count, 1u);
  EXPECT_EQ(p[0], 16u);
  EXPECT_EQ(p[1], 15u);  // lost one worker
  EXPECT_EQ(p[2], 16u);  // same block as team 3 — unaffected
  EXPECT_EQ(p[3], 16u);
}

TEST(FailureInjection, FailureCountCapsRecordedMessages) {
  auto dev = MakeDevice();
  TeamsConfig cfg{.num_teams = 8, .thread_limit = 32};
  auto result = LaunchTeams(*dev, cfg, [&](TeamCtx& team) -> DeviceTask<void> {
    co_await Parallel(team, [&](ThreadCtx& ctx, std::uint32_t,
                                std::uint32_t) -> DeviceTask<void> {
      co_await ctx.Work(1);
      throw std::runtime_error("everyone dies");
    });
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->failure_count, 8u * 32u);
  EXPECT_LE(result->failures.size(), 16u);  // bounded recording
}

}  // namespace
}  // namespace dgc::ompx
